package quantumnet_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	quantumnet "github.com/muerp/quantumnet"
)

// TestFacadeFidelityRouting exercises the fidelity-constrained extension
// through the public API.
func TestFacadeFidelityRouting(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 5
	topo.Switches = 20
	g, err := quantumnet.Generate(topo, 21)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	router := quantumnet.FidelityRouter{
		Params:      quantumnet.DefaultParams(),
		Model:       quantumnet.DefaultFidelityModel(),
		MinFidelity: 0.8,
	}
	sol, err := quantumnet.SolveWithFidelity(prob, router)
	if err != nil {
		t.Fatalf("SolveWithFidelity: %v", err)
	}
	if err := router.ValidateSolution(prob, sol); err != nil {
		t.Fatalf("fidelity validation: %v", err)
	}
	// The constrained rate never beats the unconstrained alg3 tree.
	free, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rate() > free.Rate()*(1+1e-9) {
		t.Fatalf("fidelity-constrained rate %g beats unconstrained %g", sol.Rate(), free.Rate())
	}
}

// TestFacadeMultiGroupRouting exercises concurrent group routing through
// the public API.
func TestFacadeMultiGroupRouting(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 8
	topo.Switches = 25
	g, err := quantumnet.Generate(topo, 31)
	if err != nil {
		t.Fatal(err)
	}
	users := g.Users()
	groups := []quantumnet.EntanglementGroup{
		{Name: "qkd", Users: users[:4]},
		{Name: "dqc", Users: users[4:]},
	}
	for _, strat := range []quantumnet.GroupStrategy{quantumnet.SequentialGroups, quantumnet.RoundRobinGroups} {
		res, err := quantumnet.RouteGroups(g, groups, quantumnet.DefaultParams(), strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(res.Solutions)+len(res.Failed) != 2 {
			t.Fatalf("%s: %d solutions + %d failures, want 2 total", strat, len(res.Solutions), len(res.Failed))
		}
		if idx := res.JainIndex(groups); idx < 0 || idx > 1 {
			t.Fatalf("%s: fairness index %g outside [0,1]", strat, idx)
		}
	}
}

// TestFacadeEdgeCriticality exercises the critical-edge analysis through
// the public API.
func TestFacadeEdgeCriticality(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 4
	topo.Switches = 10
	g, err := quantumnet.Generate(topo, 41)
	if err != nil {
		t.Fatal(err)
	}
	report, err := quantumnet.AnalyzeEdgeCriticality(g, quantumnet.Solvers()[1], quantumnet.DefaultParams())
	if err != nil {
		t.Fatalf("AnalyzeEdgeCriticality: %v", err)
	}
	if report.Baseline <= 0 {
		t.Fatalf("baseline %g", report.Baseline)
	}
	if len(report.Impacts) != g.NumEdges() {
		t.Fatalf("%d impacts for %d fibers", len(report.Impacts), g.NumEdges())
	}
}

// TestFacadeGridTopology routes on the lattice model.
func TestFacadeGridTopology(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Model = quantumnet.Grid
	topo.Users = 5
	topo.Switches = 20
	g, err := quantumnet.Generate(topo, 51)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		t.Fatalf("lattice routing: %v", err)
	}
	if err := prob.Validate(sol); err != nil {
		t.Fatal(err)
	}
}

// TestFacadePurification exercises the purification API.
func TestFacadePurification(t *testing.T) {
	res, err := quantumnet.PurifyToReach(0.8, 0.95)
	if err != nil {
		t.Fatalf("PurifyToReach: %v", err)
	}
	if res.Fidelity < 0.95 || res.ExpectedPairs <= 1 {
		t.Fatalf("schedule %+v", res)
	}
	fOut, pSucc, err := quantumnet.PurifyStep(0.8)
	if err != nil || fOut <= 0.8 || pSucc <= 0 {
		t.Fatalf("PurifyStep = (%g, %g, %v)", fOut, pSucc, err)
	}
	sched, effRate, err := quantumnet.PlanPurifiedChannel(0.8, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if effRate >= 0.5 || sched.Fidelity < 0.9 {
		t.Fatalf("plan = %+v, effRate %g", sched, effRate)
	}
}

// TestFacadeSessions exercises the dynamic admission API end to end.
func TestFacadeSessions(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 8
	topo.Switches = 20
	g, err := quantumnet.Generate(topo, 61)
	if err != nil {
		t.Fatal(err)
	}
	w := quantumnet.DefaultWorkload()
	w.Requests = 40
	reqs, err := w.Generate(g, rand.New(rand.NewSource(62)))
	if err != nil {
		t.Fatal(err)
	}
	report, err := quantumnet.SimulateSessions(g, reqs, quantumnet.DefaultParams())
	if err != nil {
		t.Fatalf("SimulateSessions: %v", err)
	}
	if report.Accepted+report.Rejected != len(reqs) {
		t.Fatalf("accounted %d of %d requests", report.Accepted+report.Rejected, len(reqs))
	}
	if ratio := report.AcceptanceRatio(); ratio < 0 || ratio > 1 {
		t.Fatalf("acceptance ratio %g", ratio)
	}
}

// TestFacadeExactSolver cross-checks a heuristic against the exhaustive
// optimum through the public API.
func TestFacadeExactSolver(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 3
	topo.Switches = 5
	g, err := quantumnet.Generate(topo, 71)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gap, err := quantumnet.OptimalityGap(context.Background(), prob, quantumnet.Solvers()[1], quantumnet.ExactLimits{})
	if err != nil {
		t.Fatalf("OptimalityGap: %v", err)
	}
	if gap < 0 || gap > 1+1e-9 {
		t.Fatalf("gap = %g", gap)
	}
}

// TestFacadeNSFNet routes on the named backbone.
func TestFacadeNSFNet(t *testing.T) {
	g, err := quantumnet.NSFNet(6, 6, 81)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		t.Fatalf("routing on NSFNET: %v", err)
	}
	if err := prob.Validate(sol); err != nil {
		t.Fatal(err)
	}
	// DOT rendering of the routed backbone is well-formed.
	dot := quantumnet.DOT(g, sol)
	if !strings.HasPrefix(dot, "graph quantumnet {") || !strings.Contains(dot, "Seattle") {
		t.Fatalf("unexpected DOT output: %.80s", dot)
	}
}

// TestFacadeRepair exercises local tree repair through the public API.
func TestFacadeRepair(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 5
	topo.Switches = 18
	g, err := quantumnet.Generate(topo, 91)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first fiber of the first channel (guaranteed in use).
	ch := sol.Tree.Channels[0]
	fail, ok := g.EdgeBetween(ch.Nodes[0], ch.Nodes[1])
	if !ok {
		t.Fatal("channel fiber missing")
	}
	degraded := g.WithoutEdges([]quantumnet.EdgeID{fail.ID})
	out, err := quantumnet.RepairAfterFailures(degraded, prob.Users, sol, []quantumnet.Edge{fail}, quantumnet.DefaultParams())
	if err != nil {
		t.Fatalf("RepairAfterFailures: %v", err)
	}
	if out.Rerouted < 1 {
		t.Fatalf("nothing rerouted after failing an in-use fiber: %+v", out)
	}
	if out.Kept+out.Rerouted != len(prob.Users)-1 {
		t.Fatalf("kept %d + rerouted %d != %d channels", out.Kept, out.Rerouted, len(prob.Users)-1)
	}
}

// TestFacadeRedundancy exercises width>1 boosting through the public API.
func TestFacadeRedundancy(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 4
	topo.Switches = 15
	topo.SwitchQubits = 8
	g, err := quantumnet.Generate(topo, 92)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	base, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := quantumnet.BoostRedundancy(prob, base, 3)
	if err != nil {
		t.Fatalf("BoostRedundancy: %v", err)
	}
	if err := quantumnet.ValidateRedundant(prob, boosted); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if boosted.Rate() < base.Rate()*(1-1e-9) {
		t.Fatalf("boost lowered the rate: %g -> %g", base.Rate(), boosted.Rate())
	}
}
