// Package quantumnet is the public API of the MUERP reproduction: routing
// multi-user entanglement over a quantum Internet, after "Multi-user
// Entanglement Routing Design over Quantum Internets" (ICDCS 2024).
//
// The package re-exports the library's building blocks — network graphs,
// topology generators, the physical rate model, the paper's routing
// algorithms (Algorithms 2-4), the two evaluation baselines, the Monte
// Carlo validator and the distributed §II-B execution runtime — behind one
// import:
//
//	g, _ := quantumnet.Generate(quantumnet.DefaultTopology(), 7)
//	prob, _ := quantumnet.NewProblem(g, g.Users(), quantumnet.DefaultParams())
//	sol, _ := quantumnet.SolveConflictFree(prob)
//	fmt.Println(sol.Rate())
package quantumnet

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/muerp/quantumnet/internal/analysis"
	"github.com/muerp/quantumnet/internal/baseline"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/exact"
	"github.com/muerp/quantumnet/internal/fidelity"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/montecarlo"
	"github.com/muerp/quantumnet/internal/multigroup"
	"github.com/muerp/quantumnet/internal/purify"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/redundant"
	"github.com/muerp/quantumnet/internal/repair"
	"github.com/muerp/quantumnet/internal/runtime"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/sim"
	"github.com/muerp/quantumnet/internal/solver"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/transport"
	"github.com/muerp/quantumnet/internal/viz"
)

// Graph types.
type (
	// Graph is an undirected quantum network of users, switches and fibers.
	Graph = graph.Graph
	// Node is one vertex of the network.
	Node = graph.Node
	// NodeID identifies a node within a Graph.
	NodeID = graph.NodeID
	// Edge is one optical fiber.
	Edge = graph.Edge
	// EdgeID identifies an edge within a Graph.
	EdgeID = graph.EdgeID
	// NodeKind distinguishes users from switches.
	NodeKind = graph.NodeKind
)

// Node kinds.
const (
	KindUser   = graph.KindUser
	KindSwitch = graph.KindSwitch
)

// NewGraph returns an empty graph with the given capacity hints.
func NewGraph(nodes, edges int) *Graph { return graph.New(nodes, edges) }

// Topology generation.
type (
	// TopologyConfig parameterizes the random-network generators.
	TopologyConfig = topology.Config
	// TopologyModel selects Waxman, Watts-Strogatz or Volchenkov.
	TopologyModel = topology.Model
)

// Topology models.
const (
	Waxman        = topology.Waxman
	WattsStrogatz = topology.WattsStrogatz
	Volchenkov    = topology.Volchenkov
	Grid          = topology.Grid
)

// DefaultTopology returns the paper's §V-A network defaults.
func DefaultTopology() TopologyConfig { return topology.Default() }

// Generate draws one random network from the configuration and seed.
func Generate(cfg TopologyConfig, seed int64) (*Graph, error) {
	return topology.Generate(cfg, rand.New(rand.NewSource(seed)))
}

// NSFNet returns the classic 14-site NSFNET backbone (sites as switches
// with the given qubit budget) with `users` user nodes attached to random
// sites over short access fibers.
func NSFNet(users, switchQubits int, seed int64) (*Graph, error) {
	return topology.NSFNet(users, switchQubits, rand.New(rand.NewSource(seed)))
}

// Physical model.
type (
	// Params holds the physical constants (attenuation alpha, swap
	// probability q).
	Params = quantum.Params
	// Channel is one routed quantum channel with its Eq. 1 rate.
	Channel = quantum.Channel
	// Tree is an entanglement tree with its Eq. 2 value.
	Tree = quantum.Tree
)

// DefaultParams returns the paper's physical defaults (alpha=1e-4, q=0.9).
func DefaultParams() Params { return quantum.DefaultParams() }

// Problems and solutions.
type (
	// Problem is one MUERP instance.
	Problem = core.Problem
	// Solution is a routed entanglement tree.
	Solution = core.Solution
	// Solver is any routing scheme under the context-aware solve contract:
	// Solve(ctx, problem, options).
	Solver = core.Solver
	// SolveOptions carries per-solve inputs: an explicit RNG stream for
	// stochastic schemes and an optional Stats sink. nil is valid.
	SolveOptions = core.SolveOptions
	// SolveStats counts the work one solve performed (Dijkstra runs, edges
	// relaxed, pool traffic, channels considered/committed, reservations).
	SolveStats = core.SolveStats
)

// ErrInfeasible reports that no entanglement tree exists under the
// problem's constraints. Test with errors.Is.
var ErrInfeasible = core.ErrInfeasible

// NewProblem builds a MUERP instance for the given users.
func NewProblem(g *Graph, users []NodeID, p Params) (*Problem, error) {
	return core.NewProblem(g, users, p)
}

// AllUsersProblem builds a MUERP instance over every user in the graph.
func AllUsersProblem(g *Graph, p Params) (*Problem, error) {
	return core.AllUsersProblem(g, p)
}

// Solve routes p with the named algorithm from the solver registry —
// "alg2", "alg3", "alg4", "eqcast", "nfusion", the ablation variants or
// "exact" (see SolverNames). A cancelled ctx aborts a long solve with its
// error; opts (nil is valid) carries the RNG for stochastic schemes and an
// optional SolveStats sink. This is the canonical entry point; the
// per-algorithm functions below are deprecated shims around it.
func Solve(ctx context.Context, algorithm string, p *Problem, opts *SolveOptions) (*Solution, error) {
	entry, err := solver.Get(algorithm)
	if err != nil {
		return nil, err
	}
	return entry.Solve(ctx, p, opts)
}

// SolverNames returns every registered algorithm name in canonical plot
// order, valid as the algorithm argument of Solve.
func SolverNames() []string { return solver.Names() }

// SolveOptimal runs the paper's Algorithm 2 (optimal when every switch has
// at least 2|U| qubits).
//
// Deprecated: use Solve(ctx, "alg2", p, opts) or core's context-aware
// solvers; this shim keeps old callers compiling and never cancels.
func SolveOptimal(p *Problem) (*Solution, error) { return core.SolveOptimal(p) }

// SolveConflictFree runs the paper's Algorithm 3.
//
// Deprecated: use Solve(ctx, "alg3", p, opts).
func SolveConflictFree(p *Problem) (*Solution, error) { return core.SolveConflictFree(p) }

// SolvePrim runs the paper's Algorithm 4; rng picks the random starting
// user (nil starts from the first user deterministically).
//
// Deprecated: use Solve(ctx, "alg4", p, &SolveOptions{RNG: rng}).
func SolvePrim(p *Problem, rng *rand.Rand) (*Solution, error) { return core.SolvePrim(p, rng) }

// SolveEQCast runs the E-Q-CAST evaluation baseline.
//
// Deprecated: use Solve(ctx, "eqcast", p, opts).
func SolveEQCast(p *Problem) (*Solution, error) { return baseline.SolveEQCast(p) }

// SolveNFusion runs the N-FUSION evaluation baseline.
//
// Deprecated: use Solve(ctx, "nfusion", p, opts).
func SolveNFusion(p *Problem) (*Solution, error) { return baseline.SolveNFusion(p) }

// ExactLimits bounds the exhaustive solver's search size.
type ExactLimits = exact.Limits

// SolveExact returns the provably optimal MUERP solution of a *small*
// instance by branch-and-bound exhaustive search (MUERP is NP-hard; the
// limits guard against accidental exponential blowups). Use it as ground
// truth when assessing the heuristics. A cancelled ctx aborts the search
// within one iteration.
func SolveExact(ctx context.Context, p *Problem, lim ExactLimits, opts *SolveOptions) (*Solution, error) {
	return exact.Solve(ctx, p, lim, opts)
}

// OptimalityGap returns solver's achieved rate as a fraction of the exact
// optimum on a small instance (1 = optimal).
func OptimalityGap(ctx context.Context, p *Problem, sv Solver, lim ExactLimits) (float64, error) {
	return exact.OptimalityGap(ctx, p, sv, lim)
}

// Solvers returns the paper's evaluated routing schemes in plot order,
// derived from the solver registry (the single source of truth).
func Solvers() []Solver {
	entries := solver.Defaults()
	out := make([]Solver, len(entries))
	for i, e := range entries {
		out[i] = e.Solver()
	}
	return out
}

// Monte Carlo validation.

// MonteCarloResult is an empirical rate estimate with its analytic
// prediction and confidence interval.
type MonteCarloResult = montecarlo.Result

// Simulate estimates a solution's entanglement rate empirically over the
// given number of stochastic rounds.
func Simulate(g *Graph, sol *Solution, p Params, trials int, seed int64) (MonteCarloResult, error) {
	return montecarlo.SimulateSolution(g, sol, p, trials, rand.New(rand.NewSource(seed)))
}

// Experiments.
type (
	// ExperimentConfig parameterizes one evaluation sweep point.
	ExperimentConfig = sim.Config
	// ExperimentSeries is one regenerated figure.
	ExperimentSeries = sim.Series
)

// DefaultExperiment returns the paper's evaluation defaults (20 networks
// per point, all five algorithms).
func DefaultExperiment() ExperimentConfig { return sim.DefaultConfig() }

// RunAllFigures regenerates every figure of the paper's evaluation.
func RunAllFigures(cfg ExperimentConfig) ([]ExperimentSeries, error) { return sim.AllFigures(cfg) }

// Fidelity-aware routing (the paper's first future-work extension).
type (
	// FidelityModel holds the Werner-state fidelity-decay constants.
	FidelityModel = fidelity.Model
	// FidelityRouter bundles rate params, fidelity model and the minimum
	// acceptable end-to-end channel fidelity.
	FidelityRouter = fidelity.Router
)

// DefaultFidelityModel returns the default Werner decay constants.
func DefaultFidelityModel() FidelityModel { return fidelity.DefaultModel() }

// SolveWithFidelity routes the fidelity-constrained MUERP: every channel of
// the returned tree meets the router's fidelity floor.
func SolveWithFidelity(p *Problem, r FidelityRouter) (*Solution, error) {
	return fidelity.Solve(p, r)
}

// Concurrent multi-group routing (the paper's second future-work
// extension).
type (
	// EntanglementGroup is one independent multi-user request.
	EntanglementGroup = multigroup.Group
	// GroupStrategy selects how groups share switch capacity.
	GroupStrategy = multigroup.Strategy
	// GroupResult reports per-group outcomes.
	GroupResult = multigroup.Result
)

// Group strategies.
const (
	SequentialGroups = multigroup.Sequential
	RoundRobinGroups = multigroup.RoundRobin
)

// RouteGroups routes several independent entanglement groups over one
// shared switch-qubit budget.
func RouteGroups(g *Graph, groups []EntanglementGroup, p Params, strategy GroupStrategy) (GroupResult, error) {
	return multigroup.Route(g, groups, p, strategy)
}

// Entanglement purification (BBPSSW recurrence over Werner states).

// PurifyResult summarizes one purification schedule: output fidelity and
// the expected raw-pair cost per distilled pair.
type PurifyResult = purify.Result

// PurifyStep applies one BBPSSW round to two pairs of fidelity f.
func PurifyStep(f float64) (fOut, pSucc float64, err error) { return purify.Step(f) }

// PurifyToReach returns the smallest recurrence schedule raising fidelity f
// to at least target.
func PurifyToReach(f, target float64) (PurifyResult, error) { return purify.RoundsToReach(f, target) }

// PlanPurifiedChannel returns the purification schedule that lifts a routed
// channel (raw fidelity, raw rate) over the floor, and the channel's
// effective distilled rate.
func PlanPurifiedChannel(rawFidelity, rawRate, floor float64) (PurifyResult, float64, error) {
	return purify.PlanChannel(rawFidelity, rawRate, floor)
}

// Dynamic admission (the network as a service).
type (
	// SessionRequest is one timed entanglement-session request.
	SessionRequest = sched.Request
	// SessionOutcome is one request's admission decision.
	SessionOutcome = sched.Outcome
	// ScheduleReport aggregates an admission simulation.
	ScheduleReport = sched.Report
	// SessionWorkload parameterizes a random request stream.
	SessionWorkload = sched.Workload
)

// DefaultWorkload returns a moderate-load random session stream.
func DefaultWorkload() SessionWorkload { return sched.DefaultWorkload() }

// SimulateSessions runs the dynamic admission simulation: sessions arrive
// over time, hold their routed trees' qubits, and depart; requests that do
// not fit the residual capacity are rejected (blocked calls cleared).
func SimulateSessions(g *Graph, requests []SessionRequest, p Params) (ScheduleReport, error) {
	return sched.Simulate(g, requests, p)
}

// Tree repair after fiber failures.

// RepairOutcome reports a local repair: the fixed tree plus how many
// channels were kept vs. rerouted.
type RepairOutcome = repair.Outcome

// RepairAfterFailures keeps the surviving channels of a committed tree and
// reconnects only the pairs whose channels crossed a failed fiber, under
// the degraded network's residual capacity. degraded must already have the
// failed fibers removed (Graph.WithoutEdges).
func RepairAfterFailures(degraded *Graph, users []NodeID, sol *Solution, failed []Edge, p Params) (RepairOutcome, error) {
	return repair.AfterEdgeFailures(degraded, users, sol, failed, p)
}

// Redundant (width > 1) channels.

// RedundantSolution is an entanglement tree whose pairs may hold several
// parallel channels (the pair succeeds when any of them does).
type RedundantSolution = redundant.Solution

// BoostRedundancy converts a routed width-1 tree into a redundant one by
// greedily spending leftover switch capacity on backup channels, up to
// maxWidth channels per user pair.
func BoostRedundancy(p *Problem, base *Solution, maxWidth int) (*RedundantSolution, error) {
	return redundant.Boost(p, base, maxWidth)
}

// ValidateRedundant checks a redundant solution against the problem.
func ValidateRedundant(p *Problem, s *RedundantSolution) error { return redundant.Validate(p, s) }

// Visualization.

// DOT renders the network (and, when sol is non-nil, its routed channels)
// as Graphviz DOT.
func DOT(g *Graph, sol *Solution) string { return viz.DOT(g, sol) }

// Structural analysis.

// EdgeCriticalityReport is a full single-fiber-cut study of one network.
type EdgeCriticalityReport = analysis.Report

// AnalyzeEdgeCriticality measures, for every fiber, how the achieved
// entanglement rate changes when that fiber alone is cut (the paper's
// Fig. 7b "critical edges" observation, made per-edge).
func AnalyzeEdgeCriticality(g *Graph, solver Solver, p Params) (EdgeCriticalityReport, error) {
	return analysis.EdgeCriticality(g, solver, p)
}

// Distributed execution.
type (
	// RuntimeConfig parameterizes a distributed §II-B execution.
	RuntimeConfig = runtime.Config
	// RuntimeReport is its outcome.
	RuntimeReport = runtime.Report
)

// RunDistributed executes the request → plan → synchronized-rounds protocol
// of the paper's §II-B on an in-process message plane, with every network
// node running as its own goroutine. It routes with the given solver and
// executes the given number of entanglement rounds.
func RunDistributed(ctx context.Context, g *Graph, solver Solver, rounds int, seed int64) (RuntimeReport, error) {
	net := transport.NewInMemory()
	defer func() { _ = net.Close() }()
	report, err := runtime.Run(ctx, net, g, runtime.Config{
		Solver: solver,
		Params: quantum.DefaultParams(),
		Rounds: rounds,
		Seed:   seed,
	})
	if err != nil {
		return RuntimeReport{}, fmt.Errorf("quantumnet: distributed run: %w", err)
	}
	return report, nil
}
