module github.com/muerp/quantumnet

go 1.22
