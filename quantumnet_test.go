package quantumnet_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	quantumnet "github.com/muerp/quantumnet"
)

// TestFacadeQuickstartFlow exercises the README's quickstart path through
// the public API only.
func TestFacadeQuickstartFlow(t *testing.T) {
	g, err := quantumnet.Generate(quantumnet.DefaultTopology(), 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(g.Users()) != 10 || len(g.Switches()) != 50 {
		t.Fatalf("unexpected shape: %v", g)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatalf("AllUsersProblem: %v", err)
	}
	sol, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		t.Fatalf("SolveConflictFree: %v", err)
	}
	if err := prob.Validate(sol); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sol.Rate() <= 0 || sol.Rate() > 1 {
		t.Fatalf("rate %g out of range", sol.Rate())
	}

	mc, err := quantumnet.Simulate(g, sol, quantumnet.DefaultParams(), 100_000, 7)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !mc.Agrees(4) {
		t.Fatalf("monte carlo %g vs analytic %g (ci %g)", mc.Rate, mc.Analytic, mc.CI95)
	}
}

// TestFacadeAllSolversOnOneInstance runs each public solver on one network
// and checks the paper's expected ordering.
func TestFacadeAllSolversOnOneInstance(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.SwitchQubits = 20 // sufficient capacity: all five schemes comparable
	g, err := quantumnet.Generate(topo, 3)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, s := range quantumnet.Solvers() {
		sol, err := s.Solve(context.Background(), prob, nil)
		if err != nil {
			if errors.Is(err, quantumnet.ErrInfeasible) {
				rates[s.Name()] = 0
				continue
			}
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := prob.Validate(sol); err != nil {
			t.Fatalf("%s invalid: %v", s.Name(), err)
		}
		rates[s.Name()] = sol.Rate()
	}
	// Compare with a relative tolerance: identical trees can differ in the
	// last ulp because the heuristics multiply channel rates in a different
	// order.
	const tol = 1 + 1e-9
	if !(rates["alg2"]*tol >= rates["alg3"] && rates["alg2"]*tol >= rates["alg4"]) {
		t.Errorf("alg2 (%g) is not optimal among proposed: alg3 %g alg4 %g",
			rates["alg2"], rates["alg3"], rates["alg4"])
	}
	for _, base := range []string{"eqcast", "nfusion"} {
		if rates["alg3"] <= rates[base] {
			t.Errorf("alg3 (%g) does not beat %s (%g)", rates["alg3"], base, rates[base])
		}
	}
}

// TestFacadeProblemOverUserSubset routes a subset of users.
func TestFacadeProblemOverUserSubset(t *testing.T) {
	g, err := quantumnet.Generate(quantumnet.DefaultTopology(), 5)
	if err != nil {
		t.Fatal(err)
	}
	subset := g.Users()[:4]
	prob, err := quantumnet.NewProblem(g, subset, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := quantumnet.SolveOptimal(prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Tree.Channels) != 3 {
		t.Fatalf("subset tree has %d channels, want 3", len(sol.Tree.Channels))
	}
}

// TestFacadeManualGraphConstruction builds a network by hand via the
// exported graph API.
func TestFacadeManualGraphConstruction(t *testing.T) {
	g := quantumnet.NewGraph(3, 2)
	u0 := g.AddUser(0, 0)
	s := g.AddSwitch(500, 0, 4)
	u1 := g.AddUser(1000, 0)
	if _, err := g.AddEdge(u0, s, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(s, u1, 500); err != nil {
		t.Fatal(err)
	}
	prob, err := quantumnet.NewProblem(g, []quantumnet.NodeID{u0, u1}, quantumnet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * math.Exp(-1e-4*1000)
	if math.Abs(sol.Rate()-want) > 1e-12 {
		t.Fatalf("rate %g, want %g", sol.Rate(), want)
	}
}

// TestFacadeRunDistributed drives the §II-B protocol through the facade.
func TestFacadeRunDistributed(t *testing.T) {
	topo := quantumnet.DefaultTopology()
	topo.Users = 4
	topo.Switches = 12
	g, err := quantumnet.Generate(topo, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	report, err := quantumnet.RunDistributed(ctx, g, quantumnet.Solvers()[1], 2000, 11)
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	p := report.AnalyticRate()
	se := math.Sqrt(p * (1 - p) / float64(report.Rounds))
	if math.Abs(report.EmpiricalRate()-p) > 5*se+1e-9 {
		t.Fatalf("empirical %g vs analytic %g", report.EmpiricalRate(), p)
	}
}

// TestFacadeExperimentPipeline regenerates a small figure through the
// public experiment API.
func TestFacadeExperimentPipeline(t *testing.T) {
	cfg := quantumnet.DefaultExperiment()
	cfg.Networks = 2
	cfg.Topology.Users = 4
	cfg.Topology.Switches = 10
	series, err := quantumnet.RunAllFigures(cfg)
	if err != nil {
		t.Fatalf("RunAllFigures: %v", err)
	}
	if len(series) != 7 {
		t.Fatalf("%d series, want 7 (one per figure)", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Errorf("series %s has no points", s.Figure)
		}
	}
}
