package quantumnet_test

// Benchmarks for the extension subsystems (fidelity floors, multi-group
// routing, purification planning, dynamic admission, exact search, DOT
// rendering). These complement bench_test.go's per-figure benches.

import (
	"context"
	"math/rand"
	"testing"

	quantumnet "github.com/muerp/quantumnet"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/exact"
	"github.com/muerp/quantumnet/internal/fidelity"
	"github.com/muerp/quantumnet/internal/multigroup"
	"github.com/muerp/quantumnet/internal/purify"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/viz"
)

// BenchmarkFidelitySolve times the fidelity-constrained Prim solver on the
// paper-default network with a moderate floor.
func BenchmarkFidelitySolve(b *testing.B) {
	g := benchNetwork(b, 1)
	p := benchProblem(b, g)
	router := fidelity.Router{
		Params:      p.Params,
		Model:       fidelity.DefaultModel(),
		MinFidelity: 0.7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fidelity.Solve(p, router); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiGroupRoute times two concurrent 5-user groups over one
// shared paper-default network per strategy.
func BenchmarkMultiGroupRoute(b *testing.B) {
	for _, strat := range []multigroup.Strategy{multigroup.Sequential, multigroup.RoundRobin} {
		b.Run(strat.String(), func(b *testing.B) {
			g := benchNetwork(b, 1)
			users := g.Users()
			groups := []multigroup.Group{
				{Name: "A", Users: users[:5]},
				{Name: "B", Users: users[5:]},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := multigroup.Route(g, groups, quantum.DefaultParams(), strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPurifyPlan times a purification schedule search.
func BenchmarkPurifyPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := purify.PlanChannel(0.75, 0.3, 0.97); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerSessions times a 200-session admission simulation on
// the paper-default network.
func BenchmarkSchedulerSessions(b *testing.B) {
	g := benchNetwork(b, 1)
	w := sched.Workload{Requests: 200, MeanInterarrival: 1, MeanHold: 8, MinUsers: 2, MaxUsers: 4}
	reqs, err := w.Generate(g, rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Simulate(g, reqs, quantum.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSolve times the exhaustive optimum on a small instance.
func BenchmarkExactSolve(b *testing.B) {
	cfg := topology.Default()
	cfg.Users = 3
	cfg.Switches = 8
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Solve(context.Background(), p, exact.DefaultLimits(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDOTRender times rendering the routed paper-default network.
func BenchmarkDOTRender(b *testing.B) {
	g := benchNetwork(b, 1)
	p := benchProblem(b, g)
	sol, err := core.SolveConflictFree(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := viz.DOT(g, sol); len(out) == 0 {
			b.Fatal("empty DOT")
		}
	}
}

// BenchmarkNSFNetRouting times routing all users on the NSFNET backbone.
func BenchmarkNSFNetRouting(b *testing.B) {
	g, err := quantumnet.NSFNet(8, 6, 3)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveConflictFree(p); err != nil {
			b.Fatal(err)
		}
	}
}
