package quantumnet_test

// Benchmark harness for the paper's evaluation (§V). There is one benchmark
// per figure — each iteration regenerates that figure's full sweep at a
// reduced batch size (3 networks per point instead of the paper's 20) so
// `go test -bench .` both times the pipeline and re-derives every reported
// trend. cmd/experiments runs the same drivers at full scale and prints the
// rows; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Microbenchmarks below the figure benches time the individual building
// blocks (topology generation, Algorithm 1 channel search, each routing
// algorithm, Monte Carlo rounds, the distributed runtime).

import (
	"context"
	"math/rand"
	"testing"
	"time"

	quantumnet "github.com/muerp/quantumnet"
	"github.com/muerp/quantumnet/internal/baseline"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/montecarlo"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/runtime"
	"github.com/muerp/quantumnet/internal/sim"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/transport"
)

// benchConfig returns the experiment defaults at benchmark batch size.
func benchConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Networks = 3
	return cfg
}

// checkSeries fails the benchmark if a figure regeneration errored or came
// back empty, so a broken driver cannot masquerade as a fast one.
func checkSeries(b *testing.B, s sim.Series, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(s.Points) == 0 {
		b.Fatal("empty series")
	}
}

// BenchmarkFig5Topology regenerates Fig. 5: entanglement rate vs. topology
// (Waxman, Watts-Strogatz, Volchenkov) for all five schemes.
func BenchmarkFig5Topology(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.Fig5(cfg)
		checkSeries(b, s, err)
	}
}

// BenchmarkFig6aUsers regenerates Fig. 6a: rate vs. number of users.
func BenchmarkFig6aUsers(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.Fig6aUsers(cfg, nil)
		checkSeries(b, s, err)
	}
}

// BenchmarkFig6bSwitches regenerates Fig. 6b: rate vs. number of switches.
func BenchmarkFig6bSwitches(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.Fig6bSwitches(cfg, nil)
		checkSeries(b, s, err)
	}
}

// BenchmarkFig7aDegree regenerates Fig. 7a: rate vs. average degree.
func BenchmarkFig7aDegree(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.Fig7aDegree(cfg, nil)
		checkSeries(b, s, err)
	}
}

// BenchmarkFig7bRemoval regenerates Fig. 7b: rate vs. removed-fiber ratio
// (600 fibers, cumulative random removal until infeasible).
func BenchmarkFig7bRemoval(b *testing.B) {
	cfg := benchConfig()
	cfg.Networks = 2
	for i := 0; i < b.N; i++ {
		s, err := sim.Fig7bRemoval(cfg, 60)
		checkSeries(b, s, err)
	}
}

// BenchmarkFig8aQubits regenerates Fig. 8a: rate vs. qubits per switch.
func BenchmarkFig8aQubits(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.Fig8aQubits(cfg, nil)
		checkSeries(b, s, err)
	}
}

// BenchmarkFig8bSwapRate regenerates Fig. 8b: rate vs. swap success rate.
func BenchmarkFig8bSwapRate(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.Fig8bSwapRate(cfg, nil)
		checkSeries(b, s, err)
	}
}

// ---- ablation benches (design choices DESIGN.md calls out) ----

// BenchmarkAblationReplayOrder regenerates the Algorithm 3 phase-1 replay
// order study (descending = the paper's greedy rule vs ascending/random).
func BenchmarkAblationReplayOrder(b *testing.B) {
	cfg := benchConfig()
	cfg.Topology.SwitchQubits = 2
	for i := 0; i < b.N; i++ {
		s, err := sim.AblationReplayOrder(cfg)
		checkSeries(b, s, err)
	}
}

// BenchmarkAblationPrimStart regenerates the Algorithm 4 starting-user
// study (random start vs best of all starts).
func BenchmarkAblationPrimStart(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.AblationPrimStart(cfg)
		checkSeries(b, s, err)
	}
}

// BenchmarkAblationNFusionHub regenerates the N-FUSION hub-selection study
// (our charitable best-hub reconstruction vs a fixed hub).
func BenchmarkAblationNFusionHub(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.AblationNFusionHub(cfg)
		checkSeries(b, s, err)
	}
}

// BenchmarkAblationWaxmanAlpha regenerates the Waxman locality sweep.
func BenchmarkAblationWaxmanAlpha(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := sim.AblationWaxmanAlpha(cfg, []float64{0.1, 0.4})
		checkSeries(b, s, err)
	}
}

// ---- microbenchmarks ----

// benchNetwork draws one paper-default network.
func benchNetwork(b *testing.B, seed int64) *quantumnet.Graph {
	b.Helper()
	g, err := topology.Generate(topology.Default(), rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchProblem(b *testing.B, g *quantumnet.Graph) *core.Problem {
	b.Helper()
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTopologyGenerate times one default network draw per model.
func BenchmarkTopologyGenerate(b *testing.B) {
	for _, model := range []topology.Model{topology.Waxman, topology.WattsStrogatz, topology.Volchenkov} {
		b.Run(model.String(), func(b *testing.B) {
			cfg := topology.Default()
			cfg.Model = model
			for i := 0; i < b.N; i++ {
				if _, err := topology.Generate(cfg, rand.New(rand.NewSource(int64(i)))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithm1ChannelSearch times one single-source max-rate channel
// search on the default network (the inner loop of every routing scheme).
func BenchmarkAlgorithm1ChannelSearch(b *testing.B) {
	g := benchNetwork(b, 1)
	p := benchProblem(b, g)
	src := p.Users[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.MaxRateChannels(src, nil, nil); len(got) == 0 {
			b.Fatal("no channels found")
		}
	}
}

// BenchmarkSolvers times each routing scheme on the paper-default network.
func BenchmarkSolvers(b *testing.B) {
	g := benchNetwork(b, 1)
	boosted := g.Clone()
	boosted.SetAllSwitchQubits(20)
	solvers := []struct {
		name string
		g    *quantumnet.Graph
		s    core.Solver
	}{
		{"alg2", boosted, core.Optimal()},
		{"alg3", g, core.ConflictFree()},
		{"alg4", g, core.Prim(0)},
		{"eqcast", g, baseline.EQCast()},
		{"nfusion", g, baseline.NFusion()},
	}
	for _, tc := range solvers {
		b.Run(tc.name, func(b *testing.B) {
			p := benchProblem(b, tc.g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tc.s.Solve(context.Background(), p, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarlo times 10k stochastic rounds of a routed tree.
func BenchmarkMonteCarlo(b *testing.B) {
	g := benchNetwork(b, 1)
	p := benchProblem(b, g)
	sol, err := core.SolveConflictFree(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := montecarlo.SimulateSolution(g, sol, p.Params, 10_000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedExecution times the full §II-B protocol (request,
// plan, 100 synchronized rounds) on an in-process message plane with a
// goroutine per node.
func BenchmarkDistributedExecution(b *testing.B) {
	cfg := topology.Default()
	cfg.Users = 5
	cfg.Switches = 15
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := transport.NewInMemory()
		_, err := runtime.Run(ctx, net, g, runtime.Config{
			Solver: core.ConflictFree(),
			Params: quantum.DefaultParams(),
			Rounds: 100,
			Seed:   int64(i),
		})
		_ = net.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalityGaps regenerates the exact-vs-heuristic gap study at
// reduced instance count.
func BenchmarkOptimalityGaps(b *testing.B) {
	cfg := sim.DefaultGapConfig()
	cfg.Instances = 5
	for i := 0; i < b.N; i++ {
		s, err := sim.OptimalityGaps(cfg)
		checkSeries(b, s, err)
	}
}
