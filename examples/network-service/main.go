// Network-as-a-service scenario: entanglement sessions arrive over time
// (Poisson arrivals, exponential holding times), each reserving its routed
// tree's switch qubits for its duration. An admission controller routes
// every session on the residual capacity and rejects what no longer fits —
// the dynamic, operational counterpart of the paper's one-shot MUERP.
//
// The example sweeps the offered load and prints the classic loss-network
// picture: acceptance ratio falling and peak qubit occupancy rising as the
// network saturates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	quantumnet "github.com/muerp/quantumnet"
)

func main() {
	topo := quantumnet.DefaultTopology()
	topo.Users = 12
	topo.Switches = 30
	topo.SwitchQubits = 4
	g, err := quantumnet.Generate(topo, 77)
	if err != nil {
		log.Fatal(err)
	}
	totalQubits := 0
	for _, s := range g.Switches() {
		totalQubits += g.Node(s).Qubits
	}
	fmt.Printf("%v (%d switch qubits total)\n\n", g, totalQubits)
	fmt.Println("offered load | sessions | accepted | ratio | mean rate  | peak qubits")
	fmt.Println("-------------+----------+----------+-------+------------+------------")

	params := quantumnet.DefaultParams()
	for _, meanHold := range []float64{2, 5, 10, 20, 40} {
		w := quantumnet.SessionWorkload{
			Requests:         300,
			MeanInterarrival: 1,
			MeanHold:         meanHold, // offered load ~ hold/interarrival
			MinUsers:         2,
			MaxUsers:         4,
		}
		reqs, err := w.Generate(g, rand.New(rand.NewSource(int64(100*meanHold))))
		if err != nil {
			log.Fatal(err)
		}
		report, err := quantumnet.SimulateSessions(g, reqs, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.0f | %8d | %8d | %5.2f | %.4e | %5d / %d\n",
			meanHold, len(reqs), report.Accepted, report.AcceptanceRatio(),
			report.MeanAcceptedRate(), report.PeakQubitsInUse, totalQubits)
	}

	fmt.Println("\nHigher offered load -> lower acceptance, higher peak occupancy:")
	fmt.Println("the switches' qubit pools behave as a classic loss network.")
}
