// Distributed quantum computing scenario (the paper's §I motivation):
// a cluster of monolithic quantum processors, each limited to ~127 qubits,
// must be entangled over switches and fibers to act as one larger machine.
//
// The example builds a metropolitan-scale network, compares all five
// routing schemes on the same instance, and then actually executes the best
// plan with the distributed §II-B runtime, where every processor and switch
// runs as its own goroutine exchanging classical control messages.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	quantumnet "github.com/muerp/quantumnet"
)

func main() {
	// A denser, smaller-area deployment than the wide-area default:
	// 8 processors (users) across a 2,000 km region, 30 switches.
	topo := quantumnet.DefaultTopology()
	topo.Users = 8
	topo.Switches = 30
	topo.Area = 2000
	topo.AvgDegree = 5
	topo.SwitchQubits = 4

	g, err := quantumnet.Generate(topo, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantum data center interconnect: %v\n\n", g)

	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// Compare every scheme on the same instance.
	fmt.Println("routing scheme comparison:")
	var best quantumnet.Solver
	bestRate := -1.0
	for _, solver := range quantumnet.Solvers() {
		sol, err := solver.Solve(context.Background(), prob, nil)
		if err != nil {
			if errors.Is(err, quantumnet.ErrInfeasible) {
				fmt.Printf("  %-8s infeasible under switch capacity\n", solver.Name())
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("  %-8s rate %.4e over %d channels\n",
			solver.Name(), sol.Rate(), len(sol.Tree.Channels))
		// Track the best *implementable* scheme: alg2 assumes boosted
		// switches, so prefer the capacity-aware ones for deployment.
		if solver.Name() != "alg2" && sol.Rate() > bestRate {
			best, bestRate = solver, sol.Rate()
		}
	}
	if best == nil {
		log.Fatal("no scheme produced a deployable plan")
	}

	// Execute the winning plan distributed: processors request entanglement,
	// the controller routes and disseminates, switches perform heralded BSMs
	// in synchronized rounds.
	fmt.Printf("\nexecuting %s distributed (every node is a goroutine):\n", best.Name())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	report, err := quantumnet.RunDistributed(ctx, g, best, 20_000, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rounds:          %d\n", report.Rounds)
	fmt.Printf("  cluster-wide entanglement delivered in %d rounds (%.2f%%)\n",
		report.Successes, 100*report.EmpiricalRate())
	fmt.Printf("  analytic rate:   %.4e\n", report.AnalyticRate())
	fmt.Printf("  empirical rate:  %.4e\n", report.EmpiricalRate())
	fmt.Printf("  BSM swaps tried: %d\n", report.SwapsAttempted)
}
