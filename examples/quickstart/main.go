// Quickstart: generate a paper-default quantum network, route multi-user
// entanglement with the conflict-free heuristic (Algorithm 3), and print
// the resulting entanglement tree and rate.
package main

import (
	"fmt"
	"log"

	quantumnet "github.com/muerp/quantumnet"
)

func main() {
	// A Waxman network in a 10,000 x 10,000 km area: 10 users, 50 switches
	// with 4 qubits each, average degree 6 — the paper's defaults.
	g, err := quantumnet.Generate(quantumnet.DefaultTopology(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	// Entangle every user in the network.
	prob, err := quantumnet.AllUsersProblem(g, quantumnet.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	sol, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("entanglement rate: %.4e\n", sol.Rate())
	for i, ch := range sol.Tree.Channels {
		a, b := ch.Endpoints()
		fmt.Printf("  channel %d: user %d <-> user %d over %d links (rate %.3f)\n",
			i, a, b, ch.Links(), ch.Rate)
	}

	// Cross-check the analytic rate with 100k stochastic rounds.
	mc, err := quantumnet.Simulate(g, sol, quantumnet.DefaultParams(), 100_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte carlo:       %.4e (analytic %.4e)\n", mc.Rate, mc.Analytic)
}
