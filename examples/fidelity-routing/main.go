// Fidelity-aware routing (the paper's first listed extension): route
// entanglement under a minimum end-to-end channel fidelity.
//
// Every quantum link delivers a Werner state whose quality decays with
// fiber length, and every BSM swap compounds the degradation. With
// reliable BSMs (high q) the *rate*-optimal channel chains many short
// hops, but each hop costs *fidelity* — so tightening the fidelity floor
// forces the router onto fewer-swap channels at a lower rate. The example
// shows that trade-off on a single user pair, then routes the whole
// multi-user tree under a floor.
package main

import (
	"errors"
	"fmt"
	"log"

	quantumnet "github.com/muerp/quantumnet"
)

func main() {
	topo := quantumnet.DefaultTopology()
	topo.Users = 8
	topo.Switches = 35
	topo.AvgDegree = 8
	g, err := quantumnet.Generate(topo, 1234)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n\n", g)

	params := quantumnet.DefaultParams()
	params.SwapProb = 0.95                                  // reliable BSMs: rate favors many short hops...
	model := quantumnet.FidelityModel{W0: 0.94, Beta: 1e-5} // ...but every swap costs fidelity

	prob, err := quantumnet.AllUsersProblem(g, params)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: one user pair, sweeping the floor. Pick the pair whose
	// unconstrained best channel uses the most swaps.
	src, dst := deepestPair(g, prob, params, model)
	fmt.Printf("channel %d -> %d under increasing fidelity floors:\n", src, dst)
	fmt.Println("  floor | links | rate       | fidelity")
	for _, floor := range []float64{0, 0.80, 0.85, 0.88, 0.90, 0.93, 0.95} {
		router := quantumnet.FidelityRouter{Params: params, Model: model, MinFidelity: floor}
		ch, f, ok := router.MaxRateChannel(g, src, dst, nil)
		if !ok {
			fmt.Printf("  %5.2f |     no feasible channel\n", floor)
			continue
		}
		fmt.Printf("  %5.2f | %5d | %.4e | %.4f\n", floor, ch.Links(), ch.Rate, f)
	}

	// Part 2: the whole multi-user tree under a moderate floor.
	fmt.Println("\nwhole-tree routing:")
	for _, floor := range []float64{0, 0.80, 0.85} {
		router := quantumnet.FidelityRouter{Params: params, Model: model, MinFidelity: floor}
		sol, err := quantumnet.SolveWithFidelity(prob, router)
		if err != nil {
			if errors.Is(err, quantumnet.ErrInfeasible) {
				fmt.Printf("  floor %.2f: infeasible\n", floor)
				continue
			}
			log.Fatal(err)
		}
		if err := router.ValidateSolution(prob, sol); err != nil {
			log.Fatal(err)
		}
		_, worst := router.TreeFidelities(g, sol.Tree)
		fmt.Printf("  floor %.2f: rate %.4e, worst channel fidelity %.4f\n",
			floor, sol.Rate(), worst)
	}
}

// deepestPair returns the user pair whose unconstrained max-rate channel
// has the most links.
func deepestPair(g *quantumnet.Graph, prob *quantumnet.Problem, params quantumnet.Params, model quantumnet.FidelityModel) (quantumnet.NodeID, quantumnet.NodeID) {
	router := quantumnet.FidelityRouter{Params: params, Model: model}
	users := prob.Users
	bestA, bestB := users[0], users[1]
	bestLinks := 0
	for i, a := range users {
		for _, b := range users[i+1:] {
			if ch, _, ok := router.MaxRateChannel(g, a, b, nil); ok && ch.Links() > bestLinks {
				bestLinks, bestA, bestB = ch.Links(), a, b
			}
		}
	}
	return bestA, bestB
}
