// Quantum secret sharing scenario (paper §I): a dealer splits a secret
// among shareholder groups; each share distribution requires genuine
// multi-user entanglement among one group of shareholders.
//
// The example routes three independent shareholder groups *concurrently*
// over one shared switch-qubit budget (the paper's "multiple independent
// entanglement groups" extension), compares the sequential and round-robin
// sharing strategies, and validates every analytic rate against a Monte
// Carlo simulation of the stochastic link/swap process.
package main

import (
	"fmt"
	"log"

	quantumnet "github.com/muerp/quantumnet"
)

func main() {
	topo := quantumnet.DefaultTopology()
	topo.Users = 12 // three independent groups of four shareholders
	topo.Switches = 40
	g, err := quantumnet.Generate(topo, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n\n", g)

	params := quantumnet.DefaultParams()
	users := g.Users()
	groups := []quantumnet.EntanglementGroup{
		{Name: "board", Users: users[0:4]},
		{Name: "auditors", Users: users[4:8]},
		{Name: "escrow", Users: users[8:12]},
	}

	for _, strat := range []quantumnet.GroupStrategy{
		quantumnet.SequentialGroups,
		quantumnet.RoundRobinGroups,
	} {
		res, err := quantumnet.RouteGroups(g, groups, params, strat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %v:\n", strat)
		for _, grp := range groups {
			sol, ok := res.Solutions[grp.Name]
			if !ok {
				fmt.Printf("  %-9s FAILED: %s\n", grp.Name, res.Failed[grp.Name])
				continue
			}
			// Cross-check each analytic rate empirically.
			mc, err := quantumnet.Simulate(g, sol, params, 200_000, 1000)
			if err != nil {
				log.Fatal(err)
			}
			status := "agrees"
			if !mc.Agrees(4) {
				status = "DISAGREES"
			}
			fmt.Printf("  %-9s rate %.4e | monte carlo %.4e ±%.1e (%s)\n",
				grp.Name, sol.Rate(), mc.Rate, mc.CI95, status)
		}
		fmt.Printf("  fairness (Jain index): %.3f, worst group rate: %.4e\n\n",
			res.JainIndex(groups), res.MinRate(groups))
	}
}
