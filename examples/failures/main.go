// Fiber-failure study (the paper's Fig. 7b in miniature): take one fixed
// network and progressively cut random fibers, re-routing after every cut,
// to watch how the entanglement rate degrades — flat stretches while
// non-critical fibers die, occasional *improvements* when a cut steers the
// greedy router off a locally-attractive but globally poor channel, and
// finally collapse when a critical fiber disappears.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	quantumnet "github.com/muerp/quantumnet"
)

func main() {
	topo := quantumnet.DefaultTopology()
	topo.ExactEdges = 300
	topo.Users = 8
	topo.Switches = 40
	g, err := quantumnet.Generate(topo, 4242)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n\n", g)

	params := quantumnet.DefaultParams()

	// Before cutting anything: which fibers actually matter? The per-fiber
	// criticality analysis quantifies the paper's Fig. 7b observation that
	// only a few "critical" fibers carry the outcome.
	report, err := quantumnet.AnalyzeEdgeCriticality(g, quantumnet.Solvers()[1], params)
	if err != nil {
		log.Fatal(err)
	}
	critical := report.CriticalEdges()
	improving := report.ImprovingEdges()
	fmt.Printf("criticality: %d of %d fibers are critical (their loss kills routing);\n",
		len(critical), g.NumEdges())
	fmt.Printf("             %d fibers would IMPROVE the heuristic if cut (greedy traps)\n\n",
		len(improving))

	fmt.Println("cut fibers | surviving | alg3 rate    | note")
	fmt.Println("-----------+-----------+--------------+---------------------")
	rng := rand.New(rand.NewSource(4242))
	const step = 15
	prev := -1.0
	cut := 0
	for {
		rate, feasible := routeRate(g, params)
		note := ""
		switch {
		case !feasible:
			note = "INFEASIBLE — critical fiber lost"
		case prev >= 0 && rate > prev:
			note = "improved (greedy trap removed)"
		case prev >= 0 && rate == prev:
			note = "unchanged (no critical fiber cut)"
		}
		fmt.Printf("%10d | %9d | %12.4e | %s\n", cut, g.NumEdges(), rate, note)
		if !feasible || g.NumEdges() == 0 {
			break
		}
		prev = rate

		// Cut `step` random fibers.
		n := g.NumEdges()
		k := step
		if k > n {
			k = n
		}
		perm := rng.Perm(n)
		remove := make([]quantumnet.EdgeID, k)
		for i := 0; i < k; i++ {
			remove[i] = quantumnet.EdgeID(perm[i])
		}
		g = g.WithoutEdges(remove)
		cut += k
	}
}

// routeRate routes all users with Algorithm 3 and returns the rate.
func routeRate(g *quantumnet.Graph, params quantumnet.Params) (float64, bool) {
	prob, err := quantumnet.AllUsersProblem(g, params)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := quantumnet.SolveConflictFree(prob)
	if err != nil {
		if errors.Is(err, quantumnet.ErrInfeasible) {
			return 0, false
		}
		log.Fatal(err)
	}
	return sol.Rate(), true
}
