package graph

// BFSFrom performs a breadth-first traversal from src over nodes admitted by
// the filter and returns the set of reached nodes (including src). A nil
// filter admits every node. src itself is always admitted.
func (g *Graph) BFSFrom(src NodeID, admit func(Node) bool) map[NodeID]bool {
	if !g.HasNode(src) {
		panic("graph: BFSFrom from unknown node")
	}
	seen := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[v] {
			if seen[h.to] {
				continue
			}
			if admit != nil && !admit(g.nodes[h.to]) {
				continue
			}
			seen[h.to] = true
			queue = append(queue, h.to)
		}
	}
	return seen
}

// Connected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	return len(g.BFSFrom(0, nil)) == len(g.nodes)
}

// UsersConnected reports whether all user nodes lie in one connected
// component of the full graph (a necessary condition for any entanglement
// tree to exist). It is true when the graph has fewer than two users.
func (g *Graph) UsersConnected() bool {
	users := g.Users()
	if len(users) < 2 {
		return true
	}
	reached := g.BFSFrom(users[0], nil)
	for _, u := range users[1:] {
		if !reached[u] {
			return false
		}
	}
	return true
}

// Components returns the connected components of the graph as slices of
// node IDs, each sorted ascending, ordered by their smallest member.
func (g *Graph) Components() [][]NodeID {
	var comps [][]NodeID
	visited := make([]bool, len(g.nodes))
	for i := range g.nodes {
		if visited[i] {
			continue
		}
		reached := g.BFSFrom(NodeID(i), nil)
		comp := make([]NodeID, 0, len(reached))
		// Collect in ID order for determinism: scan the visited array range.
		for j := i; j < len(g.nodes); j++ {
			if reached[NodeID(j)] && !visited[j] {
				visited[j] = true
				comp = append(comp, NodeID(j))
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponent returns the node IDs of the largest connected component
// (ties broken by smallest member). It returns nil for an empty graph.
func (g *Graph) LargestComponent() []NodeID {
	var best []NodeID
	for _, c := range g.Components() {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}
