package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// buildTriangle returns a user-switch-user triangle:
//
//	u0 --- s2 --- u1
//	  \----------/
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3, 3)
	u0 := g.AddUser(0, 0)
	u1 := g.AddUser(10, 0)
	s2 := g.AddSwitch(5, 5, 4)
	g.MustAddEdge(u0, s2, 7)
	g.MustAddEdge(s2, u1, 7)
	g.MustAddEdge(u0, u1, 10)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0, 0)
	for i := 0; i < 5; i++ {
		id := g.AddUser(float64(i), 0)
		if id != NodeID(i) {
			t.Fatalf("node %d got ID %d", i, id)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgeRejections(t *testing.T) {
	g := New(2, 1)
	a := g.AddUser(0, 0)
	b := g.AddUser(1, 1)
	g.MustAddEdge(a, b, 5)

	tests := []struct {
		name    string
		a, b    NodeID
		length  float64
		wantErr error
	}{
		{"self loop", a, a, 1, ErrSelfLoop},
		{"duplicate", a, b, 2, ErrDuplicateEdge},
		{"duplicate reversed", b, a, 2, ErrDuplicateEdge},
		{"unknown node", a, 99, 1, ErrUnknownNode},
		{"zero length", a, b, 0, ErrBadLength},
		{"negative length", a, b, -3, ErrBadLength},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := g.AddEdge(tc.a, tc.b, tc.length)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("AddEdge(%d,%d,%g) error = %v, want %v", tc.a, tc.b, tc.length, err, tc.wantErr)
			}
		})
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{ID: 0, A: 3, B: 7}
	if got := e.Other(3); got != 7 {
		t.Fatalf("Other(3) = %d, want 7", got)
	}
	if got := e.Other(7); got != 3 {
		t.Fatalf("Other(7) = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other(5) did not panic for non-endpoint")
		}
	}()
	e.Other(5)
}

func TestEdgeBetween(t *testing.T) {
	g := buildTriangle(t)
	e, ok := g.EdgeBetween(0, 2)
	if !ok || e.Length != 7 {
		t.Fatalf("EdgeBetween(0,2) = %+v ok=%v, want length 7", e, ok)
	}
	if _, ok := g.EdgeBetween(0, 0); ok {
		t.Fatal("EdgeBetween(0,0) reported an edge")
	}
	if _, ok := g.EdgeBetween(0, 99); ok {
		t.Fatal("EdgeBetween with unknown node reported an edge")
	}
}

func TestUsersAndSwitches(t *testing.T) {
	g := buildTriangle(t)
	users := g.Users()
	if len(users) != 2 || users[0] != 0 || users[1] != 1 {
		t.Fatalf("Users() = %v, want [0 1]", users)
	}
	switches := g.Switches()
	if len(switches) != 1 || switches[0] != 2 {
		t.Fatalf("Switches() = %v, want [2]", switches)
	}
}

func TestDegreeAndAverageDegree(t *testing.T) {
	g := buildTriangle(t)
	for id, want := range map[NodeID]int{0: 2, 1: 2, 2: 2} {
		if got := g.Degree(id); got != want {
			t.Errorf("Degree(%d) = %d, want %d", id, got, want)
		}
	}
	if got := g.AverageDegree(); got != 2 {
		t.Fatalf("AverageDegree = %g, want 2", got)
	}
	if got := New(0, 0).AverageDegree(); got != 0 {
		t.Fatalf("empty AverageDegree = %g, want 0", got)
	}
}

func TestNeighborsIteration(t *testing.T) {
	g := buildTriangle(t)
	var seen []NodeID
	g.Neighbors(0, func(n Node, via Edge) bool {
		seen = append(seen, n.ID)
		return true
	})
	if len(seen) != 2 {
		t.Fatalf("node 0 has %d neighbors, want 2", len(seen))
	}
	// Early stop.
	count := 0
	g.Neighbors(0, func(Node, Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop iteration visited %d, want 1", count)
	}
}

func TestSetQubits(t *testing.T) {
	g := buildTriangle(t)
	g.SetQubits(2, 10)
	if got := g.Node(2).Qubits; got != 10 {
		t.Fatalf("Qubits = %d, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetQubits on a user did not panic")
		}
	}()
	g.SetQubits(0, 4)
}

func TestSetAllSwitchQubits(t *testing.T) {
	g := buildTriangle(t)
	g.AddSwitch(1, 1, 2)
	g.SetAllSwitchQubits(8)
	for _, s := range g.Switches() {
		if got := g.Node(s).Qubits; got != 8 {
			t.Errorf("switch %d qubits = %d, want 8", s, got)
		}
	}
	if g.Node(0).Qubits != 0 {
		t.Error("user qubits were modified")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	c.SetQubits(2, 99)
	c.MustAddEdge(c.AddUser(20, 20), 0, 5)
	if g.Node(2).Qubits == 99 {
		t.Fatal("clone mutation leaked into the qubit count")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("original changed: %s", g)
	}
}

func TestWithoutEdges(t *testing.T) {
	g := buildTriangle(t)
	direct, _ := g.EdgeBetween(0, 1)
	c := g.WithoutEdges([]EdgeID{direct.ID})
	if c.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", c.NumEdges())
	}
	if c.HasEdge(0, 1) {
		t.Fatal("removed edge still present")
	}
	if !c.HasEdge(0, 2) || !c.HasEdge(2, 1) {
		t.Fatal("surviving edges missing")
	}
	// Edge IDs are densified in the copy.
	for i, e := range c.Edges() {
		if e.ID != EdgeID(i) {
			t.Fatalf("edge %d has stale ID %d", i, e.ID)
		}
	}
	// Unknown removals are ignored; original untouched.
	same := g.WithoutEdges([]EdgeID{99})
	if same.NumEdges() != 3 {
		t.Fatalf("unknown removal changed edge count to %d", same.NumEdges())
	}
}

func TestStringSummary(t *testing.T) {
	s := buildTriangle(t).String()
	for _, want := range []string{"2 users", "1 switches", "3 edges"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	g.nodes[2].Label = "relay"
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %s vs %s", back, g)
	}
	for i := 0; i < g.NumNodes(); i++ {
		a, b := g.Node(NodeID(i)), back.Node(NodeID(i))
		if a != b {
			t.Errorf("node %d round trip: %+v != %+v", i, a, b)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(EdgeID(i)), back.Edge(EdgeID(i))
		if a != b {
			t.Errorf("edge %d round trip: %+v != %+v", i, a, b)
		}
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"bad kind", `{"nodes":[{"kind":"router","x":0,"y":0}],"edges":[]}`},
		{"bad edge ref", `{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[{"a":0,"b":5,"length":1}]}`},
		{"self loop", `{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[{"a":0,"b":0,"length":1}]}`},
		{"not json", `{{{`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadJSON accepted %q", tc.in)
			}
		})
	}
}

func TestUnknownNodePanics(t *testing.T) {
	g := buildTriangle(t)
	tests := []struct {
		name string
		fn   func()
	}{
		{"Node", func() { g.Node(99) }},
		{"Edge", func() { g.Edge(99) }},
		{"Degree", func() { g.Degree(-1) }},
		{"Neighbors", func() { g.Neighbors(99, func(Node, Edge) bool { return true }) }},
		{"NeighborIDs", func() { g.NeighborIDs(99) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
