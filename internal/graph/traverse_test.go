package graph

import "testing"

// buildTwoComponents returns a graph with components {0,1,2} and {3,4},
// where 0,3 are users and the rest switches.
func buildTwoComponents(t *testing.T) *Graph {
	t.Helper()
	g := New(5, 3)
	u0 := g.AddUser(0, 0)
	s1 := g.AddSwitch(1, 0, 4)
	s2 := g.AddSwitch(2, 0, 4)
	u3 := g.AddUser(10, 10)
	s4 := g.AddSwitch(11, 10, 4)
	g.MustAddEdge(u0, s1, 1)
	g.MustAddEdge(s1, s2, 1)
	g.MustAddEdge(u3, s4, 1)
	return g
}

func TestBFSFromReachesComponent(t *testing.T) {
	g := buildTwoComponents(t)
	seen := g.BFSFrom(0, nil)
	want := map[NodeID]bool{0: true, 1: true, 2: true}
	if len(seen) != len(want) {
		t.Fatalf("BFSFrom(0) reached %v, want %v", seen, want)
	}
	for id := range want {
		if !seen[id] {
			t.Errorf("BFSFrom(0) missed node %d", id)
		}
	}
}

func TestBFSFromWithFilter(t *testing.T) {
	g := buildTwoComponents(t)
	// Reject switches: from user 0 nothing else is reachable.
	seen := g.BFSFrom(0, func(n Node) bool { return n.Kind == KindUser })
	if len(seen) != 1 || !seen[0] {
		t.Fatalf("filtered BFS reached %v, want only the source", seen)
	}
}

func TestBFSSourceAlwaysAdmitted(t *testing.T) {
	g := buildTwoComponents(t)
	// Filter rejects everything, including (nominally) the source.
	seen := g.BFSFrom(1, func(Node) bool { return false })
	if len(seen) != 1 || !seen[1] {
		t.Fatalf("BFS with rejecting filter = %v, want {1}", seen)
	}
}

func TestConnected(t *testing.T) {
	g := buildTwoComponents(t)
	if g.Connected() {
		t.Fatal("two-component graph reported connected")
	}
	g.MustAddEdge(2, 3, 5)
	if !g.Connected() {
		t.Fatal("joined graph reported disconnected")
	}
	if !New(0, 0).Connected() {
		t.Fatal("empty graph reported disconnected")
	}
}

func TestUsersConnected(t *testing.T) {
	g := buildTwoComponents(t)
	if g.UsersConnected() {
		t.Fatal("users in different components reported connected")
	}
	g.MustAddEdge(2, 4, 5) // joins components via switches
	if !g.UsersConnected() {
		t.Fatal("users joined via switches reported disconnected")
	}

	single := New(1, 0)
	single.AddUser(0, 0)
	if !single.UsersConnected() {
		t.Fatal("single user reported disconnected")
	}
}

func TestComponents(t *testing.T) {
	g := buildTwoComponents(t)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components() = %d groups, want 2", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component = %v, want [0 1 2]", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Fatalf("second component = %v, want [3 4]", comps[1])
	}
}

func TestLargestComponent(t *testing.T) {
	g := buildTwoComponents(t)
	largest := g.LargestComponent()
	if len(largest) != 3 || largest[0] != 0 {
		t.Fatalf("LargestComponent = %v, want [0 1 2]", largest)
	}
	if got := New(0, 0).LargestComponent(); got != nil {
		t.Fatalf("empty graph LargestComponent = %v, want nil", got)
	}
}

func TestComponentsSingletons(t *testing.T) {
	g := New(3, 0)
	g.AddUser(0, 0)
	g.AddUser(1, 1)
	g.AddUser(2, 2)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("isolated nodes yielded %d components, want 3", len(comps))
	}
}
