package graph

import (
	"fmt"
	"math"

	"github.com/muerp/quantumnet/internal/pq"
)

// Unusable is the edge-weight sentinel of the precomputed-weight search
// form: an edge whose weight is +Inf is never relaxed, mirroring a
// WeightFunc that returns ok=false.
var Unusable = math.Inf(1)

// Searcher is a reusable single-source shortest-path engine over one graph.
// It owns the dist/prev/settled arrays, the indexed min-heap and the
// touched-node list of a Dijkstra run, so repeated searches allocate
// nothing: state dirtied by run k is reset in O(touched_k) at the start of
// run k+1 rather than reallocated.
//
// Two weight forms are supported. Search evaluates a WeightFunc closure per
// relaxation, exactly like Graph.Dijkstra. SearchWeights takes a
// precomputed per-edge weight slice (indexed by EdgeID, Unusable = skip),
// which lets callers that run many searches under one metric — the MUERP
// kernel computes alpha*L - ln q once per problem instead of once per
// relaxation. Transit filtering stays dynamic in both forms, because
// ledger-gated capacity changes between searches.
//
// The ShortestPaths returned by a Searcher aliases the Searcher's buffers:
// it is valid until the next Search/SearchWeights call on the same
// Searcher. A Searcher is not safe for concurrent use; concurrent callers
// use one Searcher per goroutine (see core's per-problem pool).
type Searcher struct {
	g       *Graph
	heap    *pq.IndexedMinHeap
	settled []bool
	touched []NodeID
	sp      ShortestPaths
	relaxed int64
}

// LastRelaxed returns how many successful distance improvements the most
// recent Search/SearchWeights run performed — the per-run work counter the
// solve pipeline aggregates into core.SolveStats.
func (s *Searcher) LastRelaxed() int64 { return s.relaxed }

// NewSearcher returns a Searcher for g with all scratch state allocated up
// front. The graph's topology and edge lengths must not change while the
// Searcher is in use.
func NewSearcher(g *Graph) *Searcher {
	n := g.NumNodes()
	s := &Searcher{
		g:       g,
		heap:    pq.NewIndexedMinHeap(n),
		settled: make([]bool, n),
		touched: make([]NodeID, 0, n),
		sp: ShortestPaths{
			g:    g,
			dist: make([]float64, n),
			prev: make([]NodeID, n),
		},
	}
	for i := range s.sp.dist {
		s.sp.dist[i] = math.Inf(1)
		s.sp.prev[i] = None
	}
	return s
}

// Search runs Dijkstra from src with a closure-evaluated weight, reusing
// the Searcher's scratch. Semantics match Graph.Dijkstra exactly.
func (s *Searcher) Search(src NodeID, weight WeightFunc, transit TransitFunc) *ShortestPaths {
	if weight == nil {
		panic("graph: Dijkstra needs a weight function")
	}
	return s.search(src, nil, weight, transit)
}

// SearchWeights runs Dijkstra from src with precomputed edge weights:
// weights[e] is the cost of traversing edge e, and Unusable (+Inf) marks an
// edge that must not be used. weights must cover every edge of the graph.
func (s *Searcher) SearchWeights(src NodeID, weights []float64, transit TransitFunc) *ShortestPaths {
	if len(weights) != s.g.NumEdges() {
		panic(fmt.Sprintf("graph: SearchWeights got %d weights for %d edges", len(weights), s.g.NumEdges()))
	}
	return s.search(src, weights, nil, transit)
}

// search is the shared relaxation loop. Exactly one of weights and weight
// is set. The loop body is kept identical to the historical Graph.Dijkstra
// so the two entry points produce bit-identical distances and predecessors.
func (s *Searcher) search(src NodeID, weights []float64, weight WeightFunc, transit TransitFunc) *ShortestPaths {
	g := s.g
	if !g.HasNode(src) {
		panic(fmt.Sprintf("graph: Dijkstra from unknown node %d", src))
	}

	// Undo the previous run in O(touched): only nodes that run assigned a
	// distance (all of which it recorded) carry stale state.
	for _, v := range s.touched {
		s.sp.dist[v] = math.Inf(1)
		s.sp.prev[v] = None
		s.settled[v] = false
	}
	s.touched = s.touched[:0]
	s.heap.Reset()
	s.relaxed = 0

	s.sp.Source = src
	s.sp.dist[src] = 0
	s.touched = append(s.touched, src)
	s.heap.Push(int(src), 0)
	for {
		item, d, ok := s.heap.Pop()
		if !ok {
			break
		}
		v := NodeID(item)
		s.settled[v] = true
		// A settled non-source node that may not relay still keeps its
		// distance (it is a valid destination) but must not expand.
		if v != src && transit != nil && !transit(g.nodes[v]) {
			continue
		}
		for _, h := range g.adj[v] {
			if s.settled[h.to] {
				continue
			}
			var w float64
			if weights != nil {
				w = weights[h.edge]
				if math.IsInf(w, 1) {
					continue
				}
			} else {
				var usable bool
				w, usable = weight(g.edges[h.edge])
				if !usable {
					continue
				}
			}
			if w < 0 || math.IsNaN(w) {
				panic(fmt.Sprintf("graph: negative or NaN edge weight %g on edge %d", w, h.edge))
			}
			if nd := d + w; nd < s.sp.dist[h.to] {
				s.relaxed++
				// First improvement from the virgin state marks the node
				// touched; prev stays non-None from then on.
				if s.sp.prev[h.to] == None {
					s.touched = append(s.touched, h.to)
				}
				s.sp.dist[h.to] = nd
				s.sp.prev[h.to] = v
				s.heap.PushOrDecrease(int(h.to), nd)
			}
		}
	}
	return &s.sp
}
