// Package graph provides the network-graph substrate for the MUERP
// reproduction: an undirected graph whose vertices are quantum users and
// quantum switches and whose edges are optical fibers with geometric
// lengths, plus the traversal and shortest-path machinery the routing
// algorithms are built on.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// NodeKind distinguishes the two vertex classes of the quantum Internet
// model (paper §II-A): end users that request entanglement and switches
// that relay it via Bell-state-measurement swapping.
type NodeKind int

const (
	// KindUser is a quantum user (a processor or computing node). Users are
	// assumed to have sufficient quantum memory (paper §II-A).
	KindUser NodeKind = iota + 1
	// KindSwitch is a quantum switch with a limited number of qubits.
	KindSwitch
)

// String returns a human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// NodeID identifies a node within one Graph. IDs are dense: the i-th added
// node gets ID i.
type NodeID int

// None is the sentinel NodeID used where "no node" must be expressed (for
// example, predecessor arrays).
const None NodeID = -1

// Node is a vertex of the quantum network.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// X, Y place the node in the simulation area. The paper uses a
	// 10k x 10k grid of 1 km units, so coordinates are kilometres.
	X, Y float64
	// Qubits is the quantum-memory size Q_r of a switch. Each quantum
	// channel transiting a switch consumes 2 qubits, so a switch supports
	// floor(Qubits/2) channels. The field is ignored for users, which are
	// modeled with sufficient capacity.
	Qubits int
	// Label is an optional human-readable name used by CLIs and examples.
	Label string
}

// EdgeID identifies an edge within one Graph. IDs are dense: the i-th added
// edge gets ID i; removing edges renumbers (see WithoutEdges).
type EdgeID int

// Edge is an optical fiber joining two distinct nodes. Fibers are modeled
// with unbounded quantum-link capacity (multi-core fiber, paper §II-A), so
// an edge carries no capacity field: only switch qubits constrain routing.
type Edge struct {
	ID     EdgeID
	A, B   NodeID
	Length float64 // kilometres
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e, which would indicate corrupted adjacency state.
func (e Edge) Other(v NodeID) NodeID {
	switch v {
	case e.A:
		return e.B
	case e.B:
		return e.A
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d (%d-%d)", v, e.ID, e.A, e.B))
	}
}

type halfEdge struct {
	to   NodeID
	edge EdgeID
}

// Graph is an undirected simple graph of users, switches and fibers.
//
// The zero value is an empty usable graph.
type Graph struct {
	nodes []Node
	edges []Edge
	adj   [][]halfEdge
}

// Errors returned by graph mutation.
var (
	ErrSelfLoop      = errors.New("graph: self-loops are not allowed")
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
	ErrUnknownNode   = errors.New("graph: unknown node")
	ErrBadLength     = errors.New("graph: edge length must be positive and finite")
)

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		edges: make([]Edge, 0, m),
		adj:   make([][]halfEdge, 0, n),
	}
}

// AddNode appends a node and returns its ID. The ID field of the argument
// is ignored and overwritten with the assigned dense ID.
func (g *Graph) AddNode(n Node) NodeID {
	id := NodeID(len(g.nodes))
	n.ID = id
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	return id
}

// AddUser appends a user node at (x, y) and returns its ID.
func (g *Graph) AddUser(x, y float64) NodeID {
	return g.AddNode(Node{Kind: KindUser, X: x, Y: y})
}

// AddSwitch appends a switch node at (x, y) with the given qubit count and
// returns its ID.
func (g *Graph) AddSwitch(x, y float64, qubits int) NodeID {
	return g.AddNode(Node{Kind: KindSwitch, X: x, Y: y, Qubits: qubits})
}

// AddEdge joins a and b with a fiber of the given length and returns the new
// edge's ID. It rejects self-loops, unknown endpoints, duplicate edges and
// non-positive or non-finite lengths.
func (g *Graph) AddEdge(a, b NodeID, length float64) (EdgeID, error) {
	if !g.HasNode(a) || !g.HasNode(b) {
		return 0, fmt.Errorf("%w: edge %d-%d", ErrUnknownNode, a, b)
	}
	if a == b {
		return 0, fmt.Errorf("%w: node %d", ErrSelfLoop, a)
	}
	if length <= 0 || math.IsInf(length, 0) || math.IsNaN(length) {
		return 0, fmt.Errorf("%w: got %g", ErrBadLength, length)
	}
	if g.HasEdge(a, b) {
		return 0, fmt.Errorf("%w: %d-%d", ErrDuplicateEdge, a, b)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, A: a, B: b, Length: length})
	g.adj[a] = append(g.adj[a], halfEdge{to: b, edge: id})
	g.adj[b] = append(g.adj[b], halfEdge{to: a, edge: id})
	return id, nil
}

// MustAddEdge is AddEdge for construction code where a failure is a
// programming error (tests, generators that pre-check duplicates).
func (g *Graph) MustAddEdge(a, b NodeID, length float64) EdgeID {
	id, err := g.AddEdge(a, b, length)
	if err != nil {
		panic(err)
	}
	return id
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// HasNode reports whether id is a valid node ID for this graph.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// Node returns the node with the given ID. It panics on unknown IDs: node
// IDs are produced by this graph, so an unknown ID is a programming error.
func (g *Graph) Node(id NodeID) Node {
	if !g.HasNode(id) {
		panic(fmt.Sprintf("graph: unknown node %d (have %d nodes)", id, len(g.nodes)))
	}
	return g.nodes[id]
}

// Edge returns the edge with the given ID; it panics on unknown IDs.
func (g *Graph) Edge(id EdgeID) Edge {
	if id < 0 || int(id) >= len(g.edges) {
		panic(fmt.Sprintf("graph: unknown edge %d (have %d edges)", id, len(g.edges)))
	}
	return g.edges[id]
}

// Nodes returns a copy of the node list.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Users returns the IDs of all user nodes, in ID order.
func (g *Graph) Users() []NodeID { return g.nodesOfKind(KindUser) }

// Switches returns the IDs of all switch nodes, in ID order.
func (g *Graph) Switches() []NodeID { return g.nodesOfKind(KindSwitch) }

func (g *Graph) nodesOfKind(k NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// Degree returns the number of edges incident to id.
func (g *Graph) Degree(id NodeID) int {
	if !g.HasNode(id) {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	return len(g.adj[id])
}

// AverageDegree returns 2*|E|/|V|, or 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.nodes) == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(len(g.nodes))
}

// HasEdge reports whether an edge joins a and b.
func (g *Graph) HasEdge(a, b NodeID) bool {
	_, ok := g.EdgeBetween(a, b)
	return ok
}

// EdgeBetween returns the edge joining a and b, if any. It iterates the
// smaller adjacency list of the two endpoints.
func (g *Graph) EdgeBetween(a, b NodeID) (Edge, bool) {
	if !g.HasNode(a) || !g.HasNode(b) {
		return Edge{}, false
	}
	from, to := a, b
	if len(g.adj[b]) < len(g.adj[a]) {
		from, to = b, a
	}
	for _, h := range g.adj[from] {
		if h.to == to {
			return g.edges[h.edge], true
		}
	}
	return Edge{}, false
}

// Neighbors calls fn for every edge incident to id, passing the neighbor and
// the connecting edge. Iteration stops early when fn returns false.
func (g *Graph) Neighbors(id NodeID, fn func(neighbor Node, via Edge) bool) {
	if !g.HasNode(id) {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	for _, h := range g.adj[id] {
		if !fn(g.nodes[h.to], g.edges[h.edge]) {
			return
		}
	}
}

// NeighborIDs returns the IDs of all neighbors of id.
func (g *Graph) NeighborIDs(id NodeID) []NodeID {
	if !g.HasNode(id) {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	out := make([]NodeID, len(g.adj[id]))
	for i, h := range g.adj[id] {
		out[i] = h.to
	}
	return out
}

// SetQubits replaces the qubit count of a switch. It panics when applied to
// a user: users are modeled with sufficient capacity and carry no budget.
func (g *Graph) SetQubits(id NodeID, qubits int) {
	n := g.Node(id)
	if n.Kind != KindSwitch {
		panic(fmt.Sprintf("graph: SetQubits on %s node %d", n.Kind, id))
	}
	g.nodes[id].Qubits = qubits
}

// SetPosition moves a node to (x, y). Positions are descriptive metadata
// for generators and tooling; moving a node does not change existing edge
// lengths.
func (g *Graph) SetPosition(id NodeID, x, y float64) {
	if !g.HasNode(id) {
		panic(fmt.Sprintf("graph: unknown node %d", id))
	}
	g.nodes[id].X, g.nodes[id].Y = x, y
}

// SetAllSwitchQubits sets every switch's qubit count to q, the uniform
// configuration used throughout the paper's evaluation.
func (g *Graph) SetAllSwitchQubits(q int) {
	for i := range g.nodes {
		if g.nodes[i].Kind == KindSwitch {
			g.nodes[i].Qubits = q
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: make([]Node, len(g.nodes)),
		edges: make([]Edge, len(g.edges)),
		adj:   make([][]halfEdge, len(g.adj)),
	}
	copy(c.nodes, g.nodes)
	copy(c.edges, g.edges)
	for i, hs := range g.adj {
		c.adj[i] = make([]halfEdge, len(hs))
		copy(c.adj[i], hs)
	}
	return c
}

// WithoutEdges returns a copy of g with the given edges removed. Edge IDs
// are re-densified in the copy; node IDs are preserved. Unknown edge IDs are
// ignored. Used by the fiber-removal experiment (paper Fig. 7b).
func (g *Graph) WithoutEdges(remove []EdgeID) *Graph {
	drop := make(map[EdgeID]bool, len(remove))
	for _, id := range remove {
		drop[id] = true
	}
	c := New(len(g.nodes), len(g.edges))
	for _, n := range g.nodes {
		c.AddNode(n)
	}
	for _, e := range g.edges {
		if drop[e.ID] {
			continue
		}
		if _, err := c.AddEdge(e.A, e.B, e.Length); err != nil {
			// The source graph is simple and validated, so re-adding its
			// surviving edges cannot fail.
			panic(fmt.Sprintf("graph: WithoutEdges rebuild: %v", err))
		}
	}
	return c
}

// String returns a short structural summary, e.g. "graph(62 nodes: 10 users,
// 52 switches; 180 edges)".
func (g *Graph) String() string {
	users, switches := 0, 0
	for _, n := range g.nodes {
		switch n.Kind {
		case KindUser:
			users++
		case KindSwitch:
			switches++
		}
	}
	return fmt.Sprintf("graph(%d nodes: %d users, %d switches; %d edges)",
		len(g.nodes), users, switches, len(g.edges))
}
