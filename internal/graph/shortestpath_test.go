package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildDiamond returns:
//
//	    s1
//	  /    \
//	u0      u3      upper path length 2+2=4
//	  \    /
//	    s2          lower path length 1+1=2
type diamond struct {
	g              *Graph
	u0, s1, s2, u3 NodeID
}

func buildDiamond(t *testing.T) diamond {
	t.Helper()
	g := New(4, 4)
	d := diamond{g: g}
	d.u0 = g.AddUser(0, 0)
	d.s1 = g.AddSwitch(1, 1, 4)
	d.s2 = g.AddSwitch(1, -1, 4)
	d.u3 = g.AddUser(2, 0)
	g.MustAddEdge(d.u0, d.s1, 2)
	g.MustAddEdge(d.s1, d.u3, 2)
	g.MustAddEdge(d.u0, d.s2, 1)
	g.MustAddEdge(d.s2, d.u3, 1)
	return d
}

func TestDijkstraPicksShortest(t *testing.T) {
	d := buildDiamond(t)
	sp := d.g.Dijkstra(d.u0, LengthWeight, nil)
	dist, ok := sp.DistTo(d.u3)
	if !ok || dist != 2 {
		t.Fatalf("DistTo(u3) = %g ok=%v, want 2", dist, ok)
	}
	path, ok := sp.PathTo(d.u3)
	if !ok {
		t.Fatal("PathTo(u3) unreachable")
	}
	want := []NodeID{d.u0, d.s2, d.u3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDijkstraTransitFilterReroutes(t *testing.T) {
	d := buildDiamond(t)
	// Forbid relaying through the cheap switch s2: path must go via s1.
	sp := d.g.Dijkstra(d.u0, LengthWeight, func(n Node) bool { return n.ID != d.s2 })
	dist, ok := sp.DistTo(d.u3)
	if !ok || dist != 4 {
		t.Fatalf("DistTo(u3) = %g ok=%v, want 4 via s1", dist, ok)
	}
	// s2 itself is still reachable as a destination (filter gates transit,
	// not arrival).
	if dist, ok := sp.DistTo(d.s2); !ok || dist != 1 {
		t.Fatalf("DistTo(s2) = %g ok=%v, want 1", dist, ok)
	}
}

func TestDijkstraTransitFilterBlocksAll(t *testing.T) {
	d := buildDiamond(t)
	sp := d.g.Dijkstra(d.u0, LengthWeight, func(Node) bool { return false })
	// Direct neighbors remain reachable; u3 does not.
	if !sp.Reachable(d.s1) || !sp.Reachable(d.s2) {
		t.Fatal("direct neighbors must stay reachable")
	}
	if sp.Reachable(d.u3) {
		t.Fatal("u3 reachable despite no relays allowed")
	}
	if _, ok := sp.PathTo(d.u3); ok {
		t.Fatal("PathTo returned a path to an unreachable node")
	}
}

func TestDijkstraWeightFuncCanDisableEdges(t *testing.T) {
	d := buildDiamond(t)
	// Disable the u0-s2 edge.
	blocked, _ := d.g.EdgeBetween(d.u0, d.s2)
	weight := func(e Edge) (float64, bool) {
		if e.ID == blocked.ID {
			return 0, false
		}
		return e.Length, true
	}
	sp := d.g.Dijkstra(d.u0, weight, nil)
	if dist, _ := sp.DistTo(d.u3); dist != 4 {
		t.Fatalf("DistTo(u3) = %g, want 4 (lower path disabled)", dist)
	}
}

func TestDijkstraSelfPath(t *testing.T) {
	d := buildDiamond(t)
	sp := d.g.Dijkstra(d.u0, LengthWeight, nil)
	path, ok := sp.PathTo(d.u0)
	if !ok || len(path) != 1 || path[0] != d.u0 {
		t.Fatalf("PathTo(source) = %v ok=%v, want single-node path", path, ok)
	}
	if dist, _ := sp.DistTo(d.u0); dist != 0 {
		t.Fatalf("DistTo(source) = %g, want 0", dist)
	}
}

func TestDijkstraNegativeWeightPanics(t *testing.T) {
	d := buildDiamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	d.g.Dijkstra(d.u0, func(e Edge) (float64, bool) { return -1, true }, nil)
}

// bruteShortest enumerates every simple path from src to dst whose interior
// nodes pass the filter and returns the minimum total weight.
func bruteShortest(g *Graph, src, dst NodeID, transit TransitFunc) float64 {
	best := math.Inf(1)
	visited := make(map[NodeID]bool)
	var dfs func(v NodeID, acc float64)
	dfs = func(v NodeID, acc float64) {
		if acc >= best {
			return
		}
		if v == dst {
			best = acc
			return
		}
		if v != src && transit != nil && !transit(g.Node(v)) {
			return // may not relay through v
		}
		visited[v] = true
		g.Neighbors(v, func(n Node, via Edge) bool {
			if !visited[n.ID] {
				dfs(n.ID, acc+via.Length)
			}
			return true
		})
		visited[v] = false
	}
	dfs(src, 0)
	return best
}

// randomGraph builds a small random graph with mixed node kinds.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := New(n, n*2)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			g.AddUser(rng.Float64()*10, rng.Float64()*10)
		} else {
			g.AddSwitch(rng.Float64()*10, rng.Float64()*10, 2+rng.Intn(4))
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.45 {
				g.MustAddEdge(NodeID(i), NodeID(j), 0.1+rng.Float64()*10)
			}
		}
	}
	return g
}

// TestQuickDijkstraMatchesBruteForce cross-checks Dijkstra distances against
// exhaustive path enumeration on small random graphs, both unfiltered and
// with the switches-only transit rule the routing algorithms use.
func TestQuickDijkstraMatchesBruteForce(t *testing.T) {
	switchesOnly := func(n Node) bool { return n.Kind == KindSwitch }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := randomGraph(rng, n)
		src := NodeID(rng.Intn(n))
		for _, transit := range []TransitFunc{nil, switchesOnly} {
			sp := g.Dijkstra(src, LengthWeight, transit)
			for dst := 0; dst < n; dst++ {
				want := bruteShortest(g, src, NodeID(dst), transit)
				got, ok := sp.DistTo(NodeID(dst))
				if math.IsInf(want, 1) {
					if ok {
						t.Logf("seed %d: dst %d reachable (%g) but brute force says no", seed, dst, got)
						return false
					}
					continue
				}
				if !ok || math.Abs(got-want) > 1e-9 {
					t.Logf("seed %d: dist(%d->%d) = %g, brute force %g", seed, src, dst, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDijkstraPathsAreValid checks that every reconstructed path walks
// existing edges, starts at the source, ends at the target, respects the
// transit filter, and its edge weights sum to the reported distance.
func TestQuickDijkstraPathsAreValid(t *testing.T) {
	switchesOnly := func(n Node) bool { return n.Kind == KindSwitch }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := randomGraph(rng, n)
		src := NodeID(rng.Intn(n))
		sp := g.Dijkstra(src, LengthWeight, switchesOnly)
		for dst := 0; dst < n; dst++ {
			path, ok := sp.PathTo(NodeID(dst))
			if !ok {
				continue
			}
			if path[0] != src || path[len(path)-1] != NodeID(dst) {
				return false
			}
			total := 0.0
			for i := 0; i+1 < len(path); i++ {
				e, exists := g.EdgeBetween(path[i], path[i+1])
				if !exists {
					return false
				}
				total += e.Length
			}
			for i := 1; i+1 < len(path); i++ {
				if g.Node(path[i]).Kind != KindSwitch {
					return false
				}
			}
			dist, _ := sp.DistTo(NodeID(dst))
			if math.Abs(total-dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
