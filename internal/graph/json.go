package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the serialized form of a Graph, a stable format used by
// cmd/topogen and the examples to exchange topologies.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Kind   string  `json:"kind"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Qubits int     `json:"qubits,omitempty"`
	Label  string  `json:"label,omitempty"`
}

type jsonEdge struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	Length float64 `json:"length"`
}

// MarshalJSON encodes the graph as {"nodes": [...], "edges": [...]}, with
// node references in edges given as dense indices.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Nodes: make([]jsonNode, len(g.nodes)),
		Edges: make([]jsonEdge, len(g.edges)),
	}
	for i, n := range g.nodes {
		jg.Nodes[i] = jsonNode{Kind: n.Kind.String(), X: n.X, Y: n.Y, Qubits: n.Qubits, Label: n.Label}
	}
	for i, e := range g.edges {
		jg.Edges[i] = jsonEdge{A: int(e.A), B: int(e.B), Length: e.Length}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON,
// validating node kinds and edge structure.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	fresh := New(len(jg.Nodes), len(jg.Edges))
	for i, n := range jg.Nodes {
		var kind NodeKind
		switch n.Kind {
		case "user":
			kind = KindUser
		case "switch":
			kind = KindSwitch
		default:
			return fmt.Errorf("graph: node %d has unknown kind %q", i, n.Kind)
		}
		fresh.AddNode(Node{Kind: kind, X: n.X, Y: n.Y, Qubits: n.Qubits, Label: n.Label})
	}
	for i, e := range jg.Edges {
		if _, err := fresh.AddEdge(NodeID(e.A), NodeID(e.B), e.Length); err != nil {
			return fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	*g = *fresh
	return nil
}

// WriteJSON writes the graph to w as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g); err != nil {
		return fmt.Errorf("graph: write: %w", err)
	}
	return nil
}

// ReadJSON reads a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return &g, nil
}
