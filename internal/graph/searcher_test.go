package graph

import (
	"math"
	"math/rand"
	"testing"
)

// assertSameSearch requires two runs to agree exactly: distances (bitwise),
// predecessors and reconstructed paths.
func assertSameSearch(t *testing.T, g *Graph, want, got *ShortestPaths) {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		wd, wok := want.DistTo(id)
		gd, gok := got.DistTo(id)
		if wok != gok || (wok && math.Float64bits(wd) != math.Float64bits(gd)) {
			t.Fatalf("node %d: dist (%g, %v) vs (%g, %v)", v, wd, wok, gd, gok)
		}
		if want.Prev(id) != got.Prev(id) {
			t.Fatalf("node %d: prev %d vs %d", v, want.Prev(id), got.Prev(id))
		}
		wp, wok := want.PathTo(id)
		gp, gok := got.PathTo(id)
		if wok != gok || len(wp) != len(gp) {
			t.Fatalf("node %d: path %v (%v) vs %v (%v)", v, wp, wok, gp, gok)
		}
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("node %d: path differs at hop %d: %v vs %v", v, i, wp, gp)
			}
		}
	}
}

// TestSearcherMatchesDijkstra reuses one Searcher across every source of
// random topologies and requires each run to match a fresh Dijkstra —
// the scratch-reuse reset must leave no state behind.
func TestSearcherMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	transit := func(n Node) bool { return n.Kind == KindSwitch && n.Qubits >= 2 }
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 3+rng.Intn(30))
		s := NewSearcher(g)
		for src := 0; src < g.NumNodes(); src++ {
			want := g.Dijkstra(NodeID(src), LengthWeight, transit)
			got := s.Search(NodeID(src), LengthWeight, transit)
			assertSameSearch(t, g, want, got)
		}
	}
}

// TestSearchWeightsMatchesClosure is the precomputed-weight property test:
// on random topologies, SearchWeights with a weight slice must match Search
// with the equivalent closure bit-for-bit, including edges marked Unusable
// versus a closure returning ok=false.
func TestSearchWeightsMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 3+rng.Intn(30))
		weights := make([]float64, g.NumEdges())
		for e := range weights {
			if rng.Float64() < 0.1 {
				weights[e] = Unusable
			} else {
				// An affine transform of the length, like the MUERP metric.
				weights[e] = 1e-4*g.Edge(EdgeID(e)).Length + 0.105
			}
		}
		closure := func(e Edge) (float64, bool) {
			w := weights[e.ID]
			return w, !math.IsInf(w, 1)
		}
		s := NewSearcher(g)
		for src := 0; src < g.NumNodes(); src++ {
			want := g.Dijkstra(NodeID(src), closure, nil)
			got := s.SearchWeights(NodeID(src), weights, nil)
			assertSameSearch(t, g, want, got)
		}
	}
}

// TestSearcherResultAliasing documents the contract: a Searcher's result is
// overwritten by its next run, while Dijkstra results are independent.
func TestSearcherResultAliasing(t *testing.T) {
	g := New(3, 2)
	u0 := g.AddUser(0, 0)
	s1 := g.AddSwitch(1, 0, 2)
	u1 := g.AddUser(2, 0)
	g.MustAddEdge(u0, s1, 1)
	g.MustAddEdge(s1, u1, 1)

	s := NewSearcher(g)
	first := s.Search(u0, LengthWeight, nil)
	if d, _ := first.DistTo(u1); d != 2 {
		t.Fatalf("dist u0->u1 = %g, want 2", d)
	}
	second := s.Search(u1, LengthWeight, nil)
	if first != second {
		t.Fatal("Searcher results should alias the same buffers")
	}
	if first.Source != u1 {
		t.Fatalf("aliased result source = %d, want %d", first.Source, u1)
	}
}

func TestSearchWeightsLengthMismatchPanics(t *testing.T) {
	g := New(2, 1)
	a := g.AddUser(0, 0)
	b := g.AddUser(1, 0)
	g.MustAddEdge(a, b, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SearchWeights with short weight slice did not panic")
		}
	}()
	NewSearcher(g).SearchWeights(a, []float64{}, nil)
}

func TestAppendPathTo(t *testing.T) {
	g := New(4, 3)
	u0 := g.AddUser(0, 0)
	s1 := g.AddSwitch(1, 0, 2)
	s2 := g.AddSwitch(2, 0, 2)
	u1 := g.AddUser(3, 0)
	g.MustAddEdge(u0, s1, 1)
	g.MustAddEdge(s1, s2, 1)
	g.MustAddEdge(s2, u1, 1)

	sp := g.Dijkstra(u0, LengthWeight, nil)
	buf := make([]NodeID, 0, 16)
	path, ok := sp.AppendPathTo(buf, u1)
	if !ok {
		t.Fatal("u1 unreachable")
	}
	want := []NodeID{u0, s1, s2, u1}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	if &path[0] != &buf[:1][0] {
		t.Fatal("AppendPathTo with spare capacity reallocated the buffer")
	}

	// Reuse: truncate and reconstruct a different path with the same buffer.
	path2, ok := sp.AppendPathTo(path[:0], s2)
	if !ok || len(path2) != 3 || path2[2] != s2 {
		t.Fatalf("reused buffer path = %v (ok=%v), want [%d %d %d]", path2, ok, u0, s1, s2)
	}

	// A non-empty prefix must be preserved.
	prefix := []NodeID{99}
	out, ok := sp.AppendPathTo(prefix, u1)
	if !ok || out[0] != 99 || len(out) != 5 {
		t.Fatalf("prefix not preserved: %v", out)
	}

	// Unreachable destinations leave the buffer unchanged.
	g2 := New(2, 0)
	a := g2.AddUser(0, 0)
	g2.AddUser(1, 0)
	sp2 := g2.Dijkstra(a, LengthWeight, nil)
	out, ok = sp2.AppendPathTo(prefix, 1)
	if ok || len(out) != 1 {
		t.Fatalf("unreachable AppendPathTo = (%v, %v), want prefix unchanged", out, ok)
	}
}
