package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// FuzzReadJSON hardens the topology decoder against malformed input: it
// must never panic, and anything it accepts must re-encode to an equivalent
// graph (decode/encode/decode fixpoint).
func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		`{"nodes":[],"edges":[]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0},{"kind":"switch","x":1,"y":1,"qubits":4}],
		  "edges":[{"a":0,"b":1,"length":5}]}`,
		`{"nodes":[{"kind":"router"}],"edges":[]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[{"a":0,"b":0,"length":1}]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[{"a":0,"b":7,"length":1}]}`,
		`{"edges":[{"a":-1,"b":0,"length":-5}]}`,
		`{"nodes":[{"kind":"user","x":1e308,"y":-1e308}],"edges":[]}`,
		`not json at all`,
		`{"nodes": 7}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted graph failed: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %s vs %s", back, g)
		}
	})
}

// FuzzParseAndTraverse feeds decoded graphs into the traversal and
// shortest-path machinery, which must tolerate any accepted topology.
func FuzzParseAndTraverse(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"kind":"user","x":0,"y":0},{"kind":"switch","x":1,"y":1,"qubits":2},
		{"kind":"user","x":2,"y":0}],
		"edges":[{"a":0,"b":1,"length":1},{"a":1,"b":2,"length":1}]}`))
	f.Add([]byte(`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(strings.NewReader(string(data)))
		if err != nil || g.NumNodes() == 0 {
			return
		}
		_ = g.Components()
		_ = g.Connected()
		_ = g.UsersConnected()
		sp := g.Dijkstra(0, LengthWeight, func(n Node) bool { return n.Kind == KindSwitch })
		for i := 0; i < g.NumNodes(); i++ {
			if path, ok := sp.PathTo(NodeID(i)); ok && len(path) == 0 {
				t.Fatal("reachable node with empty path")
			}
		}
	})
}

// FuzzSearcherWeightParity is the property check behind the zero-allocation
// kernel: on any accepted topology, with any (seeded) weight assignment and
// unusable-edge pattern, a reused Searcher running the precomputed-weight
// form must match the closure-weight Dijkstra bit-for-bit — distances,
// predecessors and reconstructed paths.
func FuzzSearcherWeightParity(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"kind":"user","x":0,"y":0},{"kind":"switch","x":1,"y":1,"qubits":2},
		{"kind":"user","x":2,"y":0}],
		"edges":[{"a":0,"b":1,"length":1},{"a":1,"b":2,"length":1}]}`), int64(1))
	f.Add([]byte(`{"nodes":[{"kind":"user","x":0,"y":0},{"kind":"user","x":1,"y":0},
		{"kind":"switch","x":0,"y":1,"qubits":4},{"kind":"switch","x":1,"y":1,"qubits":4}],
		"edges":[{"a":0,"b":2,"length":3},{"a":2,"b":3,"length":1},{"a":3,"b":1,"length":2},
		{"a":0,"b":3,"length":9}]}`), int64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil || g.NumNodes() == 0 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		weights := make([]float64, g.NumEdges())
		for e := range weights {
			if rng.Intn(8) == 0 {
				weights[e] = Unusable
			} else {
				weights[e] = 1e-4*g.Edge(EdgeID(e)).Length + 0.105
			}
		}
		closure := func(e Edge) (float64, bool) {
			w := weights[e.ID]
			return w, !math.IsInf(w, 1)
		}
		transit := func(n Node) bool { return n.Kind == KindSwitch && n.Qubits >= 2 }
		s := NewSearcher(g)
		for src := 0; src < g.NumNodes(); src++ {
			want := g.Dijkstra(NodeID(src), closure, transit)
			got := s.SearchWeights(NodeID(src), weights, transit)
			for v := 0; v < g.NumNodes(); v++ {
				id := NodeID(v)
				wd, wok := want.DistTo(id)
				gd, gok := got.DistTo(id)
				if wok != gok || (wok && math.Float64bits(wd) != math.Float64bits(gd)) {
					t.Fatalf("src %d node %d: dist (%g, %v) vs (%g, %v)", src, v, wd, wok, gd, gok)
				}
				if want.Prev(id) != got.Prev(id) {
					t.Fatalf("src %d node %d: prev %d vs %d", src, v, want.Prev(id), got.Prev(id))
				}
			}
		}
	})
}
