package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON hardens the topology decoder against malformed input: it
// must never panic, and anything it accepts must re-encode to an equivalent
// graph (decode/encode/decode fixpoint).
func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		`{"nodes":[],"edges":[]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0},{"kind":"switch","x":1,"y":1,"qubits":4}],
		  "edges":[{"a":0,"b":1,"length":5}]}`,
		`{"nodes":[{"kind":"router"}],"edges":[]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[{"a":0,"b":0,"length":1}]}`,
		`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[{"a":0,"b":7,"length":1}]}`,
		`{"edges":[{"a":-1,"b":0,"length":-5}]}`,
		`{"nodes":[{"kind":"user","x":1e308,"y":-1e308}],"edges":[]}`,
		`not json at all`,
		`{"nodes": 7}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted graph failed: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %s vs %s", back, g)
		}
	})
}

// FuzzParseAndTraverse feeds decoded graphs into the traversal and
// shortest-path machinery, which must tolerate any accepted topology.
func FuzzParseAndTraverse(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"kind":"user","x":0,"y":0},{"kind":"switch","x":1,"y":1,"qubits":2},
		{"kind":"user","x":2,"y":0}],
		"edges":[{"a":0,"b":1,"length":1},{"a":1,"b":2,"length":1}]}`))
	f.Add([]byte(`{"nodes":[{"kind":"user","x":0,"y":0}],"edges":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(strings.NewReader(string(data)))
		if err != nil || g.NumNodes() == 0 {
			return
		}
		_ = g.Components()
		_ = g.Connected()
		_ = g.UsersConnected()
		sp := g.Dijkstra(0, LengthWeight, func(n Node) bool { return n.Kind == KindSwitch })
		for i := 0; i < g.NumNodes(); i++ {
			if path, ok := sp.PathTo(NodeID(i)); ok && len(path) == 0 {
				t.Fatal("reachable node with empty path")
			}
		}
	})
}
