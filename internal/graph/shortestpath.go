package graph

import (
	"fmt"
	"math"
	"slices"
)

// WeightFunc gives the traversal cost of an edge. Returning ok=false marks
// the edge unusable (e.g. it would enter a switch with no free qubits).
// Weights must be non-negative for Dijkstra's invariants to hold.
type WeightFunc func(e Edge) (w float64, ok bool)

// TransitFunc reports whether a node may be used as an interior (relay)
// vertex of a path. The source and the destination are exempt: the filter
// only gates relaying *through* a node. A nil TransitFunc admits every node.
//
// MUERP channels must transit only switches with at least one free channel
// slot (2 qubits), never other users (paper Definition 2), which callers
// express through this hook.
type TransitFunc func(n Node) bool

// ShortestPaths holds the result of a single-source Dijkstra run: the
// shortest distance and predecessor for every node, under the weight and
// transit constraints supplied to the run.
//
// A ShortestPaths produced by a Searcher aliases that Searcher's scratch
// and is valid only until its next run; one produced by Graph.Dijkstra is
// independent and lives forever.
type ShortestPaths struct {
	Source NodeID
	g      *Graph
	dist   []float64
	prev   []NodeID
}

// Dijkstra computes shortest paths from src under the given edge weights and
// transit filter. It implements the relaxation loop of the paper's
// Algorithm 1 generalized to a single-source/all-destinations run (the
// optimization the paper describes for Algorithm 2's first step).
//
// The run never relaxes out of a non-source node rejected by transit, so
// every returned path's interior vertices satisfy the filter. Destination
// vertices are not filtered: a path may *end* at any node.
//
// Dijkstra is the convenience form: it builds a one-shot Searcher per call,
// so the result is independent of any scratch state. Callers that run many
// searches reuse a Searcher (and precomputed weights) instead.
func (g *Graph) Dijkstra(src NodeID, weight WeightFunc, transit TransitFunc) *ShortestPaths {
	return NewSearcher(g).Search(src, weight, transit)
}

// Reachable reports whether dst was reached from the source.
func (sp *ShortestPaths) Reachable(dst NodeID) bool {
	return !math.IsInf(sp.dist[dst], 1)
}

// DistTo returns the shortest-path distance to dst; ok is false when dst is
// unreachable.
func (sp *ShortestPaths) DistTo(dst NodeID) (float64, bool) {
	d := sp.dist[dst]
	return d, !math.IsInf(d, 1)
}

// Prev returns the predecessor of dst in the shortest-path tree, or None
// for the source and unreachable nodes.
func (sp *ShortestPaths) Prev(dst NodeID) NodeID {
	if !sp.g.HasNode(dst) {
		panic(fmt.Sprintf("graph: Prev unknown node %d", dst))
	}
	return sp.prev[dst]
}

// PathTo reconstructs the shortest path from the source to dst as a node
// sequence beginning with the source and ending with dst; ok is false when
// dst is unreachable. For dst == source it returns a single-node path.
//
// The returned slice is freshly allocated at its exact length (hops are
// counted with one prev walk before allocating), so callers may keep it.
func (sp *ShortestPaths) PathTo(dst NodeID) (path []NodeID, ok bool) {
	n, ok := sp.pathLen(dst)
	if !ok {
		return nil, false
	}
	return sp.appendPath(make([]NodeID, 0, n), dst), true
}

// AppendPathTo appends the shortest path from the source to dst onto buf
// and returns the extended slice, letting callers amortize one scratch
// buffer across many reconstructions (append semantics, like strconv's
// Append* family). ok is false when dst is unreachable, in which case buf
// is returned unchanged.
func (sp *ShortestPaths) AppendPathTo(buf []NodeID, dst NodeID) (path []NodeID, ok bool) {
	n, ok := sp.pathLen(dst)
	if !ok {
		return buf, false
	}
	if free := cap(buf) - len(buf); free < n {
		grown := make([]NodeID, len(buf), len(buf)+n)
		copy(grown, buf)
		buf = grown
	}
	return sp.appendPath(buf, dst), true
}

// pathLen walks the predecessor chain once to count the nodes of the path
// to dst; ok is false when dst is unreachable.
func (sp *ShortestPaths) pathLen(dst NodeID) (n int, ok bool) {
	if !sp.g.HasNode(dst) {
		panic(fmt.Sprintf("graph: PathTo unknown node %d", dst))
	}
	if !sp.Reachable(dst) {
		return 0, false
	}
	for v := dst; v != None; v = sp.prev[v] {
		n++
		if n > sp.g.NumNodes() {
			panic("graph: predecessor cycle in shortest-path tree")
		}
	}
	return n, true
}

// appendPath appends the source->dst path onto buf, which must have enough
// spare capacity (the appends below must not reallocate, or the in-place
// reverse would miss the caller's prefix).
func (sp *ShortestPaths) appendPath(buf []NodeID, dst NodeID) []NodeID {
	start := len(buf)
	for v := dst; v != None; v = sp.prev[v] {
		buf = append(buf, v)
	}
	slices.Reverse(buf[start:])
	return buf
}

// LengthWeight is a WeightFunc using the raw fiber length, for plain
// geometric shortest paths.
func LengthWeight(e Edge) (float64, bool) { return e.Length, true }
