package graph

import (
	"fmt"
	"math"

	"github.com/muerp/quantumnet/internal/pq"
)

// WeightFunc gives the traversal cost of an edge. Returning ok=false marks
// the edge unusable (e.g. it would enter a switch with no free qubits).
// Weights must be non-negative for Dijkstra's invariants to hold.
type WeightFunc func(e Edge) (w float64, ok bool)

// TransitFunc reports whether a node may be used as an interior (relay)
// vertex of a path. The source and the destination are exempt: the filter
// only gates relaying *through* a node. A nil TransitFunc admits every node.
//
// MUERP channels must transit only switches with at least one free channel
// slot (2 qubits), never other users (paper Definition 2), which callers
// express through this hook.
type TransitFunc func(n Node) bool

// ShortestPaths holds the result of a single-source Dijkstra run: the
// shortest distance and predecessor for every node, under the weight and
// transit constraints supplied to the run.
type ShortestPaths struct {
	Source NodeID
	g      *Graph
	dist   []float64
	prev   []NodeID
}

// Dijkstra computes shortest paths from src under the given edge weights and
// transit filter. It implements the relaxation loop of the paper's
// Algorithm 1 generalized to a single-source/all-destinations run (the
// optimization the paper describes for Algorithm 2's first step).
//
// The run never relaxes out of a non-source node rejected by transit, so
// every returned path's interior vertices satisfy the filter. Destination
// vertices are not filtered: a path may *end* at any node.
func (g *Graph) Dijkstra(src NodeID, weight WeightFunc, transit TransitFunc) *ShortestPaths {
	if !g.HasNode(src) {
		panic(fmt.Sprintf("graph: Dijkstra from unknown node %d", src))
	}
	if weight == nil {
		panic("graph: Dijkstra needs a weight function")
	}
	n := len(g.nodes)
	sp := &ShortestPaths{
		Source: src,
		g:      g,
		dist:   make([]float64, n),
		prev:   make([]NodeID, n),
	}
	for i := range sp.dist {
		sp.dist[i] = math.Inf(1)
		sp.prev[i] = None
	}
	sp.dist[src] = 0

	heap := pq.NewIndexedMinHeap(n)
	heap.Push(int(src), 0)
	settled := make([]bool, n)
	for {
		item, d, ok := heap.Pop()
		if !ok {
			break
		}
		v := NodeID(item)
		settled[v] = true
		// A settled non-source node that may not relay still keeps its
		// distance (it is a valid destination) but must not expand.
		if v != src && transit != nil && !transit(g.nodes[v]) {
			continue
		}
		for _, h := range g.adj[v] {
			if settled[h.to] {
				continue
			}
			w, usable := weight(g.edges[h.edge])
			if !usable {
				continue
			}
			if w < 0 || math.IsNaN(w) {
				panic(fmt.Sprintf("graph: negative or NaN edge weight %g on edge %d", w, h.edge))
			}
			if nd := d + w; nd < sp.dist[h.to] {
				sp.dist[h.to] = nd
				sp.prev[h.to] = v
				heap.PushOrDecrease(int(h.to), nd)
			}
		}
	}
	return sp
}

// Reachable reports whether dst was reached from the source.
func (sp *ShortestPaths) Reachable(dst NodeID) bool {
	return !math.IsInf(sp.dist[dst], 1)
}

// DistTo returns the shortest-path distance to dst; ok is false when dst is
// unreachable.
func (sp *ShortestPaths) DistTo(dst NodeID) (float64, bool) {
	d := sp.dist[dst]
	return d, !math.IsInf(d, 1)
}

// PathTo reconstructs the shortest path from the source to dst as a node
// sequence beginning with the source and ending with dst; ok is false when
// dst is unreachable. For dst == source it returns a single-node path.
func (sp *ShortestPaths) PathTo(dst NodeID) (path []NodeID, ok bool) {
	if !sp.g.HasNode(dst) {
		panic(fmt.Sprintf("graph: PathTo unknown node %d", dst))
	}
	if !sp.Reachable(dst) {
		return nil, false
	}
	for v := dst; v != None; v = sp.prev[v] {
		path = append(path, v)
		if len(path) > sp.g.NumNodes() {
			panic("graph: predecessor cycle in shortest-path tree")
		}
	}
	reverse(path)
	return path, true
}

func reverse(p []NodeID) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

// LengthWeight is a WeightFunc using the raw fiber length, for plain
// geometric shortest paths.
func LengthWeight(e Edge) (float64, bool) { return e.Length, true }
