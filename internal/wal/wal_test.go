package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collect replays the whole directory into a payload slice.
func collect(t *testing.T, dir string, from uint64) (recs [][]byte, total uint64) {
	t.Helper()
	total, err := Replay(dir, from, func(seq uint64, payload []byte) error {
		if want := from + uint64(len(recs)); seq != want {
			t.Fatalf("replay seq %d, want %d", seq, want)
		}
		recs = append(recs, payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, total
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
	}
	// Mix single appends and multi-record enqueues.
	if err := l.Append(want[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Append(want[1:50]...); err != nil {
		t.Fatalf("Append batch: %v", err)
	}
	tk := l.Enqueue(want[50:]...)
	if err := tk.Wait(); err != nil {
		t.Fatalf("Enqueue.Wait: %v", err)
	}
	if got := l.Seq(); got != 100 {
		t.Fatalf("Seq = %d, want 100", got)
	}
	m := l.Metrics()
	if m.Records != 100 {
		t.Fatalf("metrics records = %d, want 100", m.Records)
	}
	if m.Batches == 0 || m.Syncs == 0 {
		t.Fatalf("metrics batches=%d syncs=%d, want > 0", m.Batches, m.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, total := collect(t, dir, 0)
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Replaying from an offset skips the prefix but keeps the total.
	tail, total := collect(t, dir, 90)
	if total != 100 || len(tail) != 10 || !bytes.Equal(tail[0], want[90]) {
		t.Fatalf("suffix replay: %d records (total %d)", len(tail), total)
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	if total, err := Replay(filepath.Join(t.TempDir(), "nope"), 0, nil); err != nil || total != 0 {
		t.Fatalf("missing dir: total %d err %v", total, err)
	}
	if total, err := Replay(t.TempDir(), 0, nil); err != nil || total != 0 {
		t.Fatalf("empty dir: total %d err %v", total, err)
	}
}

// lastSegment returns the path of the newest segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func writeLog(t *testing.T, dir string, n int) {
	t.Helper()
	l, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	for _, tc := range []struct {
		name     string
		mutilate func([]byte) []byte
		keep     int // records expected to survive
	}{
		{"partial-frame-header", func(b []byte) []byte { return append(b, 0x03, 0x00) }, 10},
		{"partial-payload", func(b []byte) []byte { return append(b, 0x10, 0, 0, 0, 1, 2, 3, 4, 'x') }, 10},
		{"zero-length-frame", func(b []byte) []byte { return append(b, 0, 0, 0, 0, 0, 0, 0, 0) }, 10},
		{"flipped-crc-last", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, 9},
		{"flipped-payload-first", func(b []byte) []byte { b[HeaderSize+frameOverhead] ^= 0x01; return b }, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeLog(t, dir, 10)
			path := lastSegment(t, dir)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read segment: %v", err)
			}
			if err := os.WriteFile(path, tc.mutilate(b), 0o644); err != nil {
				t.Fatalf("rewrite segment: %v", err)
			}
			recs, total := collect(t, dir, 0)
			if len(recs) != tc.keep || total != uint64(tc.keep) {
				t.Fatalf("replayed %d records (total %d), want %d", len(recs), total, tc.keep)
			}
		})
	}
}

func TestScanTypedErrors(t *testing.T) {
	// Empty input: missing header, offset 0.
	var ce *CorruptError
	_, valid, err := Scan(bytes.NewReader(nil), nil)
	if !errors.As(err, &ce) || ce.Offset != 0 || valid != 0 {
		t.Fatalf("empty scan: valid %d err %v", valid, err)
	}
	// Bad magic.
	_, _, err = Scan(bytes.NewReader([]byte("NOTMAGIC")), nil)
	if !errors.As(err, &ce) || ce.Reason != "bad magic" {
		t.Fatalf("bad magic: %v", err)
	}
	// Oversized length field.
	b := append([]byte(headerMagic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	n, valid, err := Scan(bytes.NewReader(b), nil)
	if !errors.As(err, &ce) || n != 0 || valid != int64(HeaderSize) {
		t.Fatalf("oversized frame: n=%d valid=%d err=%v", n, valid, err)
	}
}

func TestCorruptionInOlderSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := l.Compact(5); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for i := 10; i < 15; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 2 {
		t.Fatalf("want 2 segments, got %d (%v)", len(segs), err)
	}
	// Damage the middle of the OLDER segment: acknowledged records are gone,
	// replay must refuse.
	b, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	b[HeaderSize+frameOverhead+1] ^= 0xff
	if err := os.WriteFile(segs[0].path, b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Replay(dir, 0, nil); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Replay error = %v, want ErrCorruptLog", err)
	}
	// But a recovery that starts past the damage (a snapshot covers it) is
	// still refused — the segment layout itself is inconsistent. Replaying
	// from seq 5 hits the same broken segment.
	if _, err := Replay(dir, 5, nil); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Replay(5) error = %v, want ErrCorruptLog", err)
	}
}

func TestTornTailSealedByRotationIsAccepted(t *testing.T) {
	// Crash leaves a torn tail; recovery truncates logically and opens a new
	// segment at the valid count. A later replay must accept the sealed torn
	// segment because its valid prefix meets the next segment's start.
	dir := t.TempDir()
	writeLog(t, dir, 10)
	path := lastSegment(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, append(b, 0xde, 0xad), 0o644); err != nil { // torn tail
		t.Fatalf("write: %v", err)
	}
	total, err := Replay(dir, 0, nil)
	if err != nil || total != 10 {
		t.Fatalf("first recovery: total %d err %v", total, err)
	}
	l, err := Create(dir, total, Options{})
	if err != nil {
		t.Fatalf("Create after crash: %v", err)
	}
	if err := l.Append([]byte("post-crash")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, total := collect(t, dir, 0)
	if total != 11 || len(recs) != 11 || string(recs[10]) != "post-crash" {
		t.Fatalf("second recovery: %d records (total %d)", len(recs), total)
	}
}

func TestCompactDeletesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	boundary, err := l.Compact(20)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if boundary != 20 {
		t.Fatalf("boundary = %d, want 20", boundary)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 || segs[0].start != 20 {
		t.Fatalf("segments after compact: %+v (%v)", segs, err)
	}
	for i := 20; i < 25; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Recovery from the snapshot point sees only the suffix.
	recs, total := collect(t, dir, 20)
	if total != 25 || len(recs) != 5 {
		t.Fatalf("post-compact replay: %d records (total %d)", len(recs), total)
	}
	// Recovery from before the snapshot point must refuse: those records
	// are gone.
	if _, err := Replay(dir, 10, nil); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Replay(10) after compact = %v, want ErrCorruptLog", err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%03d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := l.Metrics()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if m.Records != writers*per {
		t.Fatalf("records = %d, want %d", m.Records, writers*per)
	}
	if m.Batches > m.Records {
		t.Fatalf("batches %d > records %d", m.Batches, m.Records)
	}
	recs, total := collect(t, dir, 0)
	if total != writers*per || len(recs) != writers*per {
		t.Fatalf("replayed %d (total %d), want %d", len(recs), total, writers*per)
	}
	// Per-writer order must be preserved (Enqueue order is log order).
	next := make(map[int]int, writers)
	for _, r := range recs {
		var w, i int
		if _, err := fmt.Sscanf(string(r), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad record %q", r)
		}
		if i != next[w] {
			t.Fatalf("writer %d record %d out of order (want %d)", w, i, next[w])
		}
		next[w]++
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Create(t.TempDir(), 0, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestNoSyncStillReplays(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 0, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if m := l.Metrics(); m.Syncs != 0 {
		t.Fatalf("NoSync issued %d fsyncs", m.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, total := collect(t, dir, 0); total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
}
