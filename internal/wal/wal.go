// Package wal implements the append-only write-ahead log behind the
// admission daemon's durability story (DESIGN.md §7). A log is a directory
// of segment files; each segment is a fixed 8-byte header followed by
// length-prefixed, CRC32C-framed records:
//
//	segment  := header frame*
//	header   := "MUWALv1\n"                      (8 bytes)
//	frame    := len(u32 LE) crc32c(u32 LE) payload
//
// where crc32c is the Castagnoli checksum of the payload bytes. Records
// carry opaque payloads; callers bring their own encoding.
//
// Durability model: Append/Enqueue hand records to a single group-commit
// goroutine that writes every record pending at that moment and issues ONE
// fsync for the whole batch, so N concurrent appenders share one disk
// flush (classic group commit). A record's Ticket resolves only after its
// batch's fsync returns, which is what lets the service uphold its
// write-ahead contract (respond only after durable) without paying one
// fsync per request.
//
// Crash model: a crash can leave a torn suffix — a partially written frame
// at the tail of the newest segment. Scan detects it (short frame, bad
// CRC, zero or oversized length) and reports the byte offset of the valid
// prefix; recovery simply ignores everything past it. Corruption anywhere
// other than the tail of the final segment means records acknowledged as
// durable were lost and is reported as an error, never silently skipped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// headerMagic opens every segment file and versions the framing.
const headerMagic = "MUWALv1\n"

// HeaderSize is the length of the segment header in bytes.
const HeaderSize = len(headerMagic)

// frameOverhead is the per-record framing cost: u32 length + u32 CRC32C.
const frameOverhead = 8

// MaxRecordSize caps one record's payload. The cap exists so a corrupted
// length field cannot ask Scan for a multi-gigabyte allocation; admission
// records are a few hundred bytes.
const MaxRecordSize = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C (Castagnoli) checksum used by the framing.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Log errors.
var (
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorruptLog reports corruption that cannot be explained by a torn
	// tail: a damaged or missing stretch of records that were already
	// acknowledged as durable. Recovery must stop rather than mis-replay.
	ErrCorruptLog = errors.New("wal: corrupt log")
)

// CorruptError describes an invalid frame met while scanning a segment.
// Scanning a crashed log is expected to end with one of these at the torn
// tail; Offset is the byte offset of the valid prefix.
type CorruptError struct {
	// Offset is the length in bytes of the valid prefix before the bad
	// frame (including the segment header).
	Offset int64
	// Reason says what was wrong with the frame.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt frame at offset %d: %s", e.Offset, e.Reason)
}

// Scan reads frames from r, calling fn with each record payload. It returns
// the number of records read and the byte length of the valid prefix.
//
// A clean end of file returns a nil error. A torn or corrupt frame — short
// header, zero or oversized length, short payload, CRC mismatch — returns a
// *CorruptError whose Offset is the valid prefix length; the caller decides
// whether that is an acceptable torn tail (newest segment) or lost data
// (anything else). An error from fn aborts the scan and is returned as is.
// The payload passed to fn is freshly allocated and may be retained.
func Scan(r io.Reader, fn func(payload []byte) error) (records int, valid int64, err error) {
	var hdr [HeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if err == io.EOF && n == 0 {
			// A zero-byte file: no header yet, no records. Treated as a torn
			// (empty) segment rather than a clean one so callers can tell it
			// apart from a properly initialized empty log.
			return 0, 0, &CorruptError{Offset: 0, Reason: "missing header"}
		}
		return 0, 0, &CorruptError{Offset: 0, Reason: "short header"}
	}
	if string(hdr[:]) != headerMagic {
		return 0, 0, &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	return scanFrames(r, int64(HeaderSize), fn)
}

// scanFrames reads frames from r after a validated header of the given byte
// length, implementing the shared frame loop behind Scan and ScanStream.
func scanFrames(r io.Reader, headerLen int64, fn func(payload []byte) error) (records int, valid int64, err error) {
	valid = headerLen
	var frame [frameOverhead]byte
	for {
		n, err := io.ReadFull(r, frame[:])
		if err == io.EOF {
			return records, valid, nil
		}
		if err != nil {
			return records, valid, &CorruptError{Offset: valid, Reason: fmt.Sprintf("short frame header (%d bytes)", n)}
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 {
			return records, valid, &CorruptError{Offset: valid, Reason: "zero-length frame"}
		}
		if length > MaxRecordSize {
			return records, valid, &CorruptError{Offset: valid, Reason: fmt.Sprintf("frame length %d exceeds cap", length)}
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, valid, &CorruptError{Offset: valid, Reason: "short payload"}
		}
		if Checksum(payload) != sum {
			return records, valid, &CorruptError{Offset: valid, Reason: "crc mismatch"}
		}
		valid += int64(frameOverhead) + int64(length)
		records++
		if fn != nil {
			if err := fn(payload); err != nil {
				return records, valid, err
			}
		}
	}
}

// appendFrame appends one framed record to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var frame [frameOverhead]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], Checksum(payload))
	buf = append(buf, frame[:]...)
	return append(buf, payload...)
}
