package wal

import (
	"sync/atomic"
	"time"
)

// syncBucketCount is the number of finite fsync-latency buckets; one +Inf
// overflow bucket follows.
const syncBucketCount = 14

// syncBuckets are the upper bounds of the fsync-latency histogram. Spinning
// disks sit in the millisecond range, NVMe and battery-backed caches in the
// tens of microseconds; the +Inf overflow bucket catches stalls.
var syncBuckets = [syncBucketCount]time.Duration{
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	time.Second,
}

// logMetrics are the log's monotonic counters. The commit goroutine is the
// only writer of most of them, but Metrics() reads concurrently, so they
// are atomics.
type logMetrics struct {
	records     atomic.Int64
	batches     atomic.Int64
	bytes       atomic.Int64
	maxBatch    atomic.Int64
	syncs       atomic.Int64
	syncNanos   atomic.Int64
	rotations   atomic.Int64
	compactions atomic.Int64
	syncCounts  [syncBucketCount + 1]atomic.Int64
}

func (m *logMetrics) noteBatch(records, bytes int) {
	m.records.Add(int64(records))
	m.batches.Add(1)
	m.bytes.Add(int64(bytes))
	for {
		cur := m.maxBatch.Load()
		if int64(records) <= cur || m.maxBatch.CompareAndSwap(cur, int64(records)) {
			return
		}
	}
}

func (m *logMetrics) observeSync(d time.Duration) {
	m.syncs.Add(1)
	m.syncNanos.Add(int64(d))
	for i, ub := range syncBuckets {
		if d <= ub {
			m.syncCounts[i].Add(1)
			return
		}
	}
	m.syncCounts[syncBucketCount].Add(1)
}

// Metrics is a point-in-time snapshot of a log's activity, shaped for the
// daemon's /metrics document.
type Metrics struct {
	// Records is the number of records appended (committed) since open.
	Records int64 `json:"records"`
	// Batches is the number of group commits; Records/Batches is the
	// achieved fsync amortization.
	Batches int64 `json:"batches"`
	// MeanBatch is Records/Batches.
	MeanBatch float64 `json:"mean_batch"`
	// MaxBatch is the largest single group commit.
	MaxBatch int64 `json:"max_batch"`
	// Bytes is the framed bytes written.
	Bytes int64 `json:"bytes"`
	// Syncs is the number of fsyncs issued (0 under NoSync).
	Syncs int64 `json:"syncs"`
	// SyncMeanMs and SyncP99Ms summarize fsync latency. P99 is the upper
	// bound of the histogram bucket containing the 99th percentile.
	SyncMeanMs float64 `json:"sync_mean_ms"`
	SyncP99Ms  float64 `json:"sync_p99_ms"`
	// Rotations and Compactions count segment rolls and snapshot-driven
	// segment deletions.
	Rotations   int64 `json:"rotations"`
	Compactions int64 `json:"compactions"`
}

// Metrics returns a consistent-enough snapshot of the log's counters (each
// counter is read atomically; the set is not a single atomic cut).
func (l *Log) Metrics() Metrics {
	m := Metrics{
		Records:     l.m.records.Load(),
		Batches:     l.m.batches.Load(),
		MaxBatch:    l.m.maxBatch.Load(),
		Bytes:       l.m.bytes.Load(),
		Syncs:       l.m.syncs.Load(),
		Rotations:   l.m.rotations.Load(),
		Compactions: l.m.compactions.Load(),
	}
	if m.Batches > 0 {
		m.MeanBatch = float64(m.Records) / float64(m.Batches)
	}
	if m.Syncs > 0 {
		m.SyncMeanMs = float64(l.m.syncNanos.Load()) / float64(m.Syncs) / 1e6
		m.SyncP99Ms = l.m.syncPercentile(0.99, m.Syncs)
	}
	return m
}

// syncPercentile returns the upper bound (in ms) of the bucket holding the
// p-quantile of fsync latencies; 0 marks the +Inf overflow bucket.
func (m *logMetrics) syncPercentile(p float64, total int64) float64 {
	target := int64(p * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range syncBuckets {
		cum += m.syncCounts[i].Load()
		if cum >= target {
			return float64(syncBuckets[i]) / 1e6
		}
	}
	return 0
}
