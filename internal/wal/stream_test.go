package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Two streams plus a v1 log share one directory; each replay must see only
// its own records, in its own sequence space.
func TestStreamIsolation(t *testing.T) {
	dir := t.TempDir()

	v1, err := Create(dir, 0, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s0, err := CreateStream(dir, 0, 0, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := CreateStream(dir, 1, 0, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		if err := v1.Append([]byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s0.Append([]byte(fmt.Sprintf("s0-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 7; i++ {
		if err := s1.Append([]byte(fmt.Sprintf("s1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []*Log{v1, s0, s1} {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	next, err := Replay(dir, 0, func(seq uint64, p []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", seq, p))
		return nil
	})
	if err != nil || next != 5 || len(got) != 5 || got[0] != "0:v1-0" || got[4] != "4:v1-4" {
		t.Fatalf("v1 replay: next=%d err=%v got=%v", next, err, got)
	}

	for stream, want := range map[StreamID]int{0: 3, 1: 7} {
		var recs []string
		next, err := ReplayStream(dir, stream, 0, func(seq uint64, p []byte) error {
			recs = append(recs, fmt.Sprintf("%d:%s", seq, p))
			return nil
		})
		if err != nil || int(next) != want || len(recs) != want {
			t.Fatalf("stream %d replay: next=%d err=%v recs=%v", stream, next, err, recs)
		}
		for i, r := range recs {
			if r != fmt.Sprintf("%d:s%d-%d", i, stream, i) {
				t.Fatalf("stream %d record %d = %q", stream, i, r)
			}
		}
	}

	// An absent stream replays empty.
	next, err = ReplayStream(dir, 9, 0, nil)
	if err != nil || next != 0 {
		t.Fatalf("empty stream: next=%d err=%v", next, err)
	}
}

// A stream segment's header pins its stream id: scanning it as another
// stream, or as a v1 segment, must fail up front.
func TestStreamHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	s2, err := CreateStream(dir, 2, 0, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	path := streamSegmentPath(dir, 2, 0)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := ScanStream(f, 3, nil); err == nil {
		t.Fatal("wrong stream id accepted")
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Scan(f, nil); err == nil {
		t.Fatal("v1 Scan accepted a v2 stream segment")
	}
}

// Torn tails truncate silently on a stream's newest segment, and a gap in a
// stream's segments is corruption — the same contract as the v1 log.
func TestStreamTornTailAndGap(t *testing.T) {
	dir := t.TempDir()
	l, err := CreateStream(dir, 4, 0, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := streamSegmentPath(dir, 4, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	next, err := ReplayStream(dir, 4, 0, nil)
	if err != nil || next != 3 {
		t.Fatalf("torn tail: next=%d err=%v, want 3 records", next, err)
	}

	// Fabricate a gap: a second segment starting past the truncated tail.
	l2, err := CreateStream(dir, 4, 9, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("later")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayStream(dir, 4, 0, nil); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("gap not detected: %v", err)
	}
}

// Stream compaction must rotate and delete only the stream's own segments.
func TestStreamCompact(t *testing.T) {
	dir := t.TempDir()
	other, err := CreateStream(dir, 1, 0, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}

	l, err := CreateStream(dir, 0, 0, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	boundary, err := l.Compact(10)
	if err != nil || boundary != 10 {
		t.Fatalf("compact: boundary=%d err=%v", boundary, err)
	}
	for i := 10; i < 12; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}

	count := 0
	next, err := ReplayStream(dir, 0, 10, func(seq uint64, p []byte) error {
		if string(p) != fmt.Sprintf("r%d", seq) {
			t.Fatalf("record %d = %q", seq, p)
		}
		count++
		return nil
	})
	if err != nil || next != 12 || count != 2 {
		t.Fatalf("post-compact replay: next=%d count=%d err=%v", next, count, err)
	}
	// Stream 1 is untouched by stream 0's compaction.
	if next, err := ReplayStream(dir, 1, 0, nil); err != nil || next != 1 {
		t.Fatalf("stream 1 after compaction: next=%d err=%v", next, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-s00000000-") &&
			e.Name() < filepath.Base(streamSegmentPath(dir, 0, 10)) {
			t.Fatalf("compacted segment %s still present", e.Name())
		}
	}
}
