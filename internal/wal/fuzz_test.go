package wal

import (
	"bytes"
	"errors"
	"testing"
)

// validLog builds a well-formed segment image with the given payloads.
func validLog(payloads ...[]byte) []byte {
	b := []byte(headerMagic)
	for _, p := range payloads {
		b = appendFrame(b, p)
	}
	return b
}

// FuzzScan feeds arbitrary bytes to the record decoder. Whatever the input
// — truncated tails, flipped CRC bytes, zero-length or absurd-length
// frames — Scan must return either a clean EOF or a typed *CorruptError,
// never panic, and the valid prefix it reports must itself re-scan cleanly
// to the same record count (the torn-tail truncation contract).
func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(headerMagic))
	f.Add(validLog([]byte("hello"), []byte("world")))
	f.Add(validLog(bytes.Repeat([]byte{0xab}, 300)))
	// Torn tail: a valid record then a partial frame header.
	f.Add(append(validLog([]byte("ok")), 0x05, 0x00))
	// Zero-length frame after a valid record.
	f.Add(append(validLog([]byte("ok")), 0, 0, 0, 0, 0, 0, 0, 0))
	// Flipped CRC byte on the only record.
	flipped := validLog([]byte("payload"))
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// Oversized length field.
	f.Add(append([]byte(headerMagic), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0))
	// Tenant-tagged admit record (PR-9 schema): the payload shape the
	// service writes for non-default tenants. Also committed under
	// testdata/fuzz/FuzzScan so the corpus survives outside this seed list.
	f.Add(validLog([]byte(`{"t":"admit","admit":{"info":{"id":"s-1","users":[0,1],"tenant":"gold"},"tree":{"Channels":null},"next_id":1}}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, valid, err := Scan(bytes.NewReader(data), func(p []byte) error { return nil })
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside input length %d", valid, len(data))
		}
		var ce *CorruptError
		if err != nil && !errors.As(err, &ce) {
			t.Fatalf("scan returned untyped error %v", err)
		}
		if err != nil && ce.Offset != valid {
			t.Fatalf("corrupt offset %d != valid prefix %d", ce.Offset, valid)
		}
		if valid == 0 {
			if records != 0 {
				t.Fatalf("%d records in a zero-length valid prefix", records)
			}
			return
		}
		// The reported valid prefix must be a clean, complete log image.
		again, validAgain, err := Scan(bytes.NewReader(data[:valid]), nil)
		if err != nil {
			t.Fatalf("re-scan of valid prefix failed: %v", err)
		}
		if again != records || validAgain != valid {
			t.Fatalf("re-scan: %d records / %d bytes, first scan: %d / %d",
				again, validAgain, records, valid)
		}
	})
}
