package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Per-shard segment streams. A stream is an independent log identified by a
// small integer; multiple streams share one directory, each with its own
// sequence space, torn-tail policy and compaction. Stream segments use a v2
// header that embeds the stream id —
//
//	segment  := header frame*
//	header   := "MUWALv2\n" stream(u32 LE)        (12 bytes)
//
// — and stream-qualified filenames ("wal-s%08x-%016x.log"), so a v1 log and
// any number of streams coexist in a directory without interpreting each
// other's files (the v1 segment lister skips names whose middle part is not
// a plain hex sequence number, and each stream lists only its own prefix).
// The sharded admission plane gives each shard one stream, letting recovery
// replay shards independently and in parallel with per-shard snapshots.

// streamMagic opens every stream segment; the stream id follows it.
const streamMagic = "MUWALv2\n"

// StreamHeaderSize is the length of a stream segment's header in bytes.
const StreamHeaderSize = len(streamMagic) + 4

// StreamID identifies one segment stream within a log directory.
type StreamID uint32

// streamHeader renders the v2 segment header for a stream.
func streamHeader(stream StreamID) []byte {
	h := make([]byte, 0, StreamHeaderSize)
	h = append(h, streamMagic...)
	return binary.LittleEndian.AppendUint32(h, uint32(stream))
}

const streamInfix = "s"

// streamSegmentPath names a stream's segment: wal-s<stream hex>-<start hex>.log.
func streamSegmentPath(dir string, stream StreamID, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%s%08x-%016x%s",
		segPrefix, streamInfix, uint32(stream), start, segSuffix))
}

// listStreamSegments returns the stream's segments sorted by start sequence.
func listStreamSegments(dir string, stream StreamID) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := fmt.Sprintf("%s%s%08x-", segPrefix, streamInfix, uint32(stream))
	segs := make([]segment, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), segSuffix)
		start, err := strconv.ParseUint(hex, 16, 64)
		if err != nil || len(hex) != 16 {
			continue // foreign file; not ours to interpret
		}
		segs = append(segs, segment{start: start, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// ScanStream is Scan for a stream segment: it validates the v2 header and
// the embedded stream id before reading frames. The corruption contract is
// identical to Scan's.
func ScanStream(r io.Reader, stream StreamID, fn func(payload []byte) error) (records int, valid int64, err error) {
	var hdr [StreamHeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if err == io.EOF && n == 0 {
			return 0, 0, &CorruptError{Offset: 0, Reason: "missing header"}
		}
		return 0, 0, &CorruptError{Offset: 0, Reason: "short header"}
	}
	if string(hdr[:len(streamMagic)]) != streamMagic {
		return 0, 0, &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	if got := StreamID(binary.LittleEndian.Uint32(hdr[len(streamMagic):])); got != stream {
		return 0, 0, &CorruptError{Offset: 0, Reason: fmt.Sprintf("stream id %d, want %d", got, stream)}
	}
	return scanFrames(r, int64(StreamHeaderSize), fn)
}

// ReplayStream is Replay over one stream's segments: records of other
// streams (and of a v1 log) in the same directory are invisible to it. The
// torn-tail and gap policy matches Replay's.
func ReplayStream(dir string, stream StreamID, from uint64, fn func(seq uint64, payload []byte) error) (uint64, error) {
	segs, err := listStreamSegments(dir, stream)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	scanner := func(r io.Reader, fn func([]byte) error) (int, int64, error) {
		return ScanStream(r, stream, fn)
	}
	return replaySegs(segs, scanner, from, fn)
}

// CreateStream opens stream for appending in dir, starting a fresh segment
// whose first record will have sequence number start. It is Create with a
// stream identity; everything else — group commit, tickets, Compact, Close —
// behaves identically, scoped to the stream's own segments.
func CreateStream(dir string, stream StreamID, start uint64, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		stream:   stream,
		streamed: true,
		seq:      start,
		segStart: start,
		written:  start,
		notify:   make(chan struct{}, 1),
		rotateC:  make(chan rotateReq),
		done:     make(chan struct{}),
	}
	f, err := l.newSegment(start)
	if err != nil {
		return nil, err
	}
	l.f = f
	go l.commitLoop()
	return l, nil
}
