package wal

import (
	"fmt"
	"testing"
)

// BenchmarkGroupCommit measures the append→durable round trip under
// concurrent writers. Each op enqueues one ~120-byte record (the size of a
// typical admit record) and waits for its fsync; the commit loop batches
// every record queued while the previous sync was in flight, so the
// per-record cost should fall as writers pile up. The nosync variant is
// the same path without fdatasync — the floor set by framing and the
// commit-loop handoff.
func BenchmarkGroupCommit(b *testing.B) {
	payload := make([]byte, 120)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, writers := range []int{1, 8, 64} {
		for _, bench := range []struct {
			name string
			opts Options
		}{
			{"sync", Options{}},
			{"nosync", Options{NoSync: true}},
		} {
			b.Run(fmt.Sprintf("writers%d-%s", writers, bench.name), func(b *testing.B) {
				l, err := Create(b.TempDir(), 0, bench.opts)
				if err != nil {
					b.Fatalf("Create: %v", err)
				}
				defer func() { _ = l.Close() }()
				b.SetParallelism(writers)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if err := l.Enqueue(payload).Wait(); err != nil {
							b.Errorf("append: %v", err)
							return
						}
					}
				})
			})
		}
	}
}
