package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options parameterizes a Log.
type Options struct {
	// NoSync skips the per-batch fsync. Only for tests and benchmarks that
	// measure the non-durable baseline: a crash can then lose acknowledged
	// records.
	NoSync bool
}

// segment is one on-disk log file. Its Start is the sequence number of its
// first record; a segment's end is the next segment's start.
type segment struct {
	start uint64
	path  string
}

const segPrefix, segSuffix = "wal-", ".log"

func segmentPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix))
}

// listSegments returns the directory's segments sorted by start sequence.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	segs := make([]segment, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // foreign file; not ours to interpret
		}
		segs = append(segs, segment{start: start, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// Replay reads every record in the log directory in sequence order, calling
// fn(seq, payload) for each record with seq >= from, and returns the total
// record count (the next sequence number to be assigned).
//
// A torn tail — corruption at the end of the newest segment — is truncated
// silently: the damaged suffix was never acknowledged. Corruption anywhere
// else, or a gap between segments, returns ErrCorruptLog: acknowledged
// records are missing and replaying past them would rebuild wrong state.
// An empty or missing directory replays zero records.
func Replay(dir string, from uint64, fn func(seq uint64, payload []byte) error) (uint64, error) {
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return replaySegs(segs, Scan, from, fn)
}

// replaySegs is the shared replay loop behind Replay and ReplayStream: it
// walks the given segments in order with the given scanner (which validates
// the appropriate header) and applies the torn-tail policy documented on
// Replay.
func replaySegs(segs []segment, scanner func(io.Reader, func([]byte) error) (int, int64, error),
	from uint64, fn func(seq uint64, payload []byte) error) (uint64, error) {
	if len(segs) == 0 {
		return 0, nil
	}
	if segs[0].start != 0 && segs[0].start > from {
		return 0, fmt.Errorf("%w: first segment starts at record %d; records before it were compacted away but no snapshot covers them (recovering from %d)",
			ErrCorruptLog, segs[0].start, from)
	}
	seq := segs[0].start
	for i, seg := range segs {
		if seg.start != seq {
			return 0, fmt.Errorf("%w: segment %s starts at record %d, expected %d (missing records)",
				ErrCorruptLog, filepath.Base(seg.path), seg.start, seq)
		}
		f, err := os.Open(seg.path)
		if err != nil {
			return 0, err
		}
		_, _, scanErr := scanner(f, func(payload []byte) error {
			var err error
			if seq >= from && fn != nil {
				err = fn(seq, payload)
			}
			seq++
			return err
		})
		_ = f.Close()
		if scanErr != nil {
			var corrupt *CorruptError
			if !errAs(scanErr, &corrupt) {
				return 0, scanErr // fn error or I/O failure
			}
			// A torn tail is fine on the last segment. On an older segment it
			// is only fine when the valid prefix exactly meets the next
			// segment's start — the signature of a tail torn by a crash and
			// then sealed by a post-recovery rotation.
			if i == len(segs)-1 {
				return seq, nil
			}
			if seq != segs[i+1].start {
				return 0, fmt.Errorf("%w: %s: %v (valid prefix ends at record %d, next segment starts at %d)",
					ErrCorruptLog, filepath.Base(seg.path), corrupt, seq, segs[i+1].start)
			}
		} else if i < len(segs)-1 && seq != segs[i+1].start {
			return 0, fmt.Errorf("%w: segment %s ends at record %d but %s starts at %d",
				ErrCorruptLog, filepath.Base(seg.path), seq, filepath.Base(segs[i+1].path), segs[i+1].start)
		}
	}
	return seq, nil
}

// errAs is errors.As without dragging the errors import into every call.
func errAs(err error, target **CorruptError) bool {
	for err != nil {
		if ce, ok := err.(*CorruptError); ok {
			*target = ce
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// pend is one enqueued record awaiting the group-commit goroutine.
type pend struct {
	payload []byte
	t       *Ticket
}

// Ticket tracks the durability of one Enqueue call. Wait blocks until every
// record of the call has been written and fsynced (or the log failed).
type Ticket struct {
	ch chan error
}

// Wait blocks until the ticket's records are durable and returns the commit
// error, if any. Wait may be called at most once per ticket.
func (t *Ticket) Wait() error {
	if t == nil {
		return nil
	}
	return <-t.ch
}

// doneTicket returns a pre-resolved ticket carrying err.
func doneTicket(err error) *Ticket {
	ch := make(chan error, 1)
	ch <- err
	return &Ticket{ch: ch}
}

// Log is an append-only record log over a directory of segments, written by
// a single group-commit goroutine. Create it with Create; appenders call
// Enqueue (ordered, non-blocking) and Wait on the returned ticket, or
// Append to do both.
//
// A log created by CreateStream additionally carries a stream identity:
// its segments use the v2 header (magic + stream id) and stream-qualified
// filenames, so several independent streams — one per admission shard —
// share a directory without seeing each other's segments.
type Log struct {
	dir      string
	opts     Options
	stream   StreamID
	streamed bool

	mu      sync.Mutex
	pending []pend
	seq     uint64 // next sequence number to assign
	closed  bool
	err     error // sticky commit failure

	notify  chan struct{}
	rotateC chan rotateReq
	done    chan struct{}

	// Owned by the committer goroutine.
	f        *os.File
	buf      []byte
	segStart uint64
	written  uint64 // records durably committed (or written, under NoSync)
	errC     error  // committer-local sticky failure, mirrored into err

	m logMetrics
}

type rotateReq struct {
	min  uint64 // rotate only once this many records are committed
	done chan rotateResult
}

type rotateResult struct {
	boundary uint64 // start sequence of the new segment
	err      error
}

// Create opens a log for appending, starting a fresh segment whose first
// record will have sequence number start. Existing segments are left
// untouched (Compact removes them once a snapshot covers them). The
// directory is created if needed.
func Create(dir string, start uint64, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		seq:      start,
		segStart: start,
		written:  start,
		notify:   make(chan struct{}, 1),
		rotateC:  make(chan rotateReq),
		done:     make(chan struct{}),
	}
	f, err := l.newSegment(start)
	if err != nil {
		return nil, err
	}
	l.f = f
	go l.commitLoop()
	return l, nil
}

// newSegment creates (or truncates) the segment file starting at seq and
// writes its header durably. Truncation is safe: Create and rotation only
// ever open a segment name whose records do not exist yet.
func (l *Log) newSegment(seq uint64) (*os.File, error) {
	path := l.segPath(seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(l.header()); err != nil {
		_ = f.Close()
		return nil, err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := syncDir(l.dir); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Seq returns the next sequence number to be assigned, i.e. the number of
// records ever enqueued (including recovered history the log was created
// at).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Enqueue stages the given records for the next group commit and returns a
// ticket that resolves once they are durable. Records from one Enqueue are
// contiguous in the log and commit in the same fsync batch. Call order
// under the caller's own serialization is log order — which is how the
// service guarantees WAL order equals its mutation order.
func (l *Log) Enqueue(payloads ...[]byte) *Ticket {
	if len(payloads) == 0 {
		return doneTicket(nil)
	}
	l.mu.Lock()
	if l.closed || l.err != nil {
		err := l.err
		if err == nil {
			err = ErrClosed
		}
		l.mu.Unlock()
		return doneTicket(err)
	}
	t := &Ticket{ch: make(chan error, 1)}
	for _, p := range payloads {
		l.pending = append(l.pending, pend{payload: p, t: t})
	}
	l.seq += uint64(len(payloads))
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return t
}

// Append enqueues the records and blocks until they are durable.
func (l *Log) Append(payloads ...[]byte) error {
	return l.Enqueue(payloads...).Wait()
}

// commitLoop is the group-commit goroutine: it drains everything pending,
// writes it, issues one fsync for the whole batch and resolves the batch's
// tickets, then handles any rotation request.
func (l *Log) commitLoop() {
	defer close(l.done)
	var pendingRotate *rotateReq
	for {
		l.mu.Lock()
		batch := l.pending
		l.pending = nil
		closed := l.closed
		l.mu.Unlock()

		if len(batch) > 0 {
			err := l.commit(batch)
			for i := 0; i < len(batch); i++ {
				// Resolve each distinct ticket once (records of one Enqueue
				// share a ticket and are contiguous).
				if i == 0 || batch[i].t != batch[i-1].t {
					batch[i].t.ch <- err
				}
			}
			if err != nil {
				l.errC = err
				l.mu.Lock()
				l.err = err
				l.mu.Unlock()
			}
		}

		if pendingRotate != nil {
			// A sticky commit failure means written can never reach min;
			// fail the rotation instead of leaving Compact blocked.
			if l.errC != nil {
				pendingRotate.done <- rotateResult{err: l.errC}
				pendingRotate = nil
			} else if l.written >= pendingRotate.min {
				pendingRotate.done <- l.rotate()
				pendingRotate = nil
			}
		}

		if closed {
			if pendingRotate != nil {
				pendingRotate.done <- rotateResult{err: ErrClosed}
			}
			if l.f != nil {
				if !l.opts.NoSync {
					_ = l.f.Sync()
				}
				_ = l.f.Close()
			}
			return
		}
		l.mu.Lock()
		idle := len(l.pending) == 0 && !l.closed
		l.mu.Unlock()
		if !idle {
			continue
		}
		select {
		case <-l.notify:
		case r := <-l.rotateC:
			pendingRotate = &r
		}
	}
}

// commit writes one batch of records and fsyncs once.
func (l *Log) commit(batch []pend) error {
	if l.errC != nil {
		return l.errC
	}
	l.buf = l.buf[:0]
	for _, p := range batch {
		l.buf = appendFrame(l.buf, p.payload)
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if !l.opts.NoSync {
		t0 := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.m.observeSync(time.Since(t0))
	}
	l.written += uint64(len(batch))
	l.m.noteBatch(len(batch), len(l.buf))
	return nil
}

// rotate seals the current segment and starts a new one at the committed
// boundary.
func (l *Log) rotate() rotateResult {
	boundary := l.written
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return rotateResult{err: err}
		}
	}
	if err := l.f.Close(); err != nil {
		return rotateResult{err: err}
	}
	f, err := l.newSegment(boundary)
	if err != nil {
		// The old segment is closed; without a new one the log cannot
		// continue. Poison it.
		l.errC = fmt.Errorf("wal: rotate: %w", err)
		l.mu.Lock()
		l.err = l.errC
		l.mu.Unlock()
		return rotateResult{err: err}
	}
	l.f = f
	l.segStart = boundary
	l.m.rotations.Add(1)
	return rotateResult{boundary: boundary}
}

// Compact rotates to a fresh segment once every record below upTo is
// committed, then deletes the segments made fully redundant by a snapshot
// covering records [0, upTo). It returns the new segment's start sequence.
func (l *Log) Compact(upTo uint64) (uint64, error) {
	req := rotateReq{min: upTo, done: make(chan rotateResult, 1)}
	select {
	case l.rotateC <- req:
	case <-l.done:
		return 0, ErrClosed
	}
	var res rotateResult
	select {
	case res = <-req.done:
	case <-l.done:
		return 0, ErrClosed
	}
	if res.err != nil {
		return 0, res.err
	}
	segs, err := l.listOwn()
	if err != nil {
		return res.boundary, err
	}
	// A segment is disposable when its entire range [start, next.start) is
	// at or below the snapshot point. The newest segment is never deleted.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].start <= upTo {
			if err := os.Remove(segs[i].path); err != nil && !os.IsNotExist(err) {
				return res.boundary, err
			}
			l.m.compactions.Add(1)
		}
	}
	return res.boundary, nil
}

// Close flushes everything pending, fsyncs, and stops the group-commit
// goroutine. Enqueues after Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// segPath returns the segment filename for this log's stream (if any).
func (l *Log) segPath(start uint64) string {
	if l.streamed {
		return streamSegmentPath(l.dir, l.stream, start)
	}
	return segmentPath(l.dir, start)
}

// header returns the segment header this log writes: plain v1, or v2 with
// the stream id.
func (l *Log) header() []byte {
	if l.streamed {
		return streamHeader(l.stream)
	}
	return []byte(headerMagic)
}

// listOwn lists only this log's segments: its stream's when streamed, the
// directory's unqualified v1 segments otherwise.
func (l *Log) listOwn() ([]segment, error) {
	if l.streamed {
		return listStreamSegments(l.dir, l.stream)
	}
	return listSegments(l.dir)
}

// syncDir fsyncs a directory so a freshly created file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	return d.Sync()
}
