// Package multigroup routes several independent entanglement groups over
// one quantum network with a shared switch-qubit budget — the second
// extension the paper names ("concurrent routing of multiple independent
// entanglement groups", §I and §VII).
//
// Every group wants its own entanglement tree; the trees compete for
// switch qubits. Two strategies are provided:
//
//   - Sequential: route groups one after another (first come, first
//     served) with the Prim-based builder against the shared ledger.
//     Simple, but late groups can starve.
//   - RoundRobin: interleave the groups, each committing one channel per
//     turn. Capacity pressure is shared, which improves fairness when
//     groups contend for the same switches.
package multigroup

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// Group is one independent entanglement request: a named set of users that
// must form their own entanglement tree.
type Group struct {
	Name  string
	Users []graph.NodeID
}

// Strategy selects how the groups share the network.
type Strategy int

const (
	// Sequential routes whole groups in input order.
	Sequential Strategy = iota + 1
	// RoundRobin interleaves groups channel by channel.
	RoundRobin
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Result reports the outcome per group.
type Result struct {
	// Solutions maps group name to its routed tree; groups that could not
	// be completed are absent here and listed in Failed.
	Solutions map[string]*core.Solution
	// Failed maps group name to the infeasibility reason.
	Failed map[string]string
	// Work sums the channel-search work counters over all groups.
	Work core.SolveStats
}

// Rates returns each routed group's entanglement rate (failed groups score
// 0), keyed by group name.
func (r Result) Rates(groups []Group) map[string]float64 {
	out := make(map[string]float64, len(groups))
	for _, g := range groups {
		if sol, ok := r.Solutions[g.Name]; ok {
			out[g.Name] = sol.Rate()
		} else {
			out[g.Name] = 0
		}
	}
	return out
}

// MinRate returns the worst group rate (0 when any group failed).
func (r Result) MinRate(groups []Group) float64 {
	min := math.Inf(1)
	for _, rate := range r.Rates(groups) {
		if rate < min {
			min = rate
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// JainIndex returns Jain's fairness index over the group rates:
// (sum r)^2 / (n * sum r^2), in (0, 1], 1 = perfectly even.
func (r Result) JainIndex(groups []Group) float64 {
	rates := r.Rates(groups)
	if len(rates) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, rate := range rates {
		sum += rate
		sumSq += rate * rate
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(rates)) * sumSq)
}

// Routing errors.
var (
	ErrNoGroups     = errors.New("multigroup: no groups")
	ErrDupGroupName = errors.New("multigroup: duplicate group name")
	ErrBadStrategy  = errors.New("multigroup: unknown strategy")
	ErrOverlapUsers = errors.New("multigroup: groups share a user")
)

// Route routes all groups over g under one shared switch budget. Groups
// must be disjoint (a user belongs to at most one group): a user node has
// one application context in the model. Failed groups do not abort the
// others; their reasons land in Result.Failed.
func Route(g *graph.Graph, groups []Group, params quantum.Params, strategy Strategy) (Result, error) {
	return RouteContext(context.Background(), g, groups, params, strategy)
}

// RouteContext is Route with cancellation: a cancelled ctx aborts between
// channel-commit steps with its error. Per-step search work is summed into
// Result.Work.
func RouteContext(ctx context.Context, g *graph.Graph, groups []Group, params quantum.Params, strategy Strategy) (Result, error) {
	if len(groups) == 0 {
		return Result{}, ErrNoGroups
	}
	seenName := make(map[string]bool, len(groups))
	seenUser := make(map[graph.NodeID]string)
	builders := make([]*treeBuilder, 0, len(groups))
	for _, grp := range groups {
		if seenName[grp.Name] {
			return Result{}, fmt.Errorf("%w: %q", ErrDupGroupName, grp.Name)
		}
		seenName[grp.Name] = true
		for _, u := range grp.Users {
			if owner, clash := seenUser[u]; clash {
				return Result{}, fmt.Errorf("%w: user %d in %q and %q", ErrOverlapUsers, u, owner, grp.Name)
			}
			seenUser[u] = grp.Name
		}
		prob, err := core.NewProblem(g, grp.Users, params)
		if err != nil {
			return Result{}, fmt.Errorf("multigroup: group %q: %w", grp.Name, err)
		}
		builders = append(builders, newTreeBuilder(grp.Name, prob))
	}

	led := quantum.NewLedger(g)
	var work core.SolveStats
	switch strategy {
	case Sequential:
		// Whole groups in order; a stalled group is final (later groups
		// have not reserved anything it could wait for).
		for _, b := range builders {
			for b.active() {
				if ctx != nil && ctx.Err() != nil {
					return Result{}, fmt.Errorf("multigroup: %w", ctx.Err())
				}
				if !b.tryStep(led, &work) {
					b.fail(led)
				}
			}
		}
	case RoundRobin:
		// Interleave one channel per group per cycle. A group stalled in
		// one cycle retries in the next — another group may have finished
		// or failed and released capacity. Only when a whole cycle makes no
		// progress is one stalled group declared failed (refunding its
		// qubits), and the rest keep going.
		for {
			if ctx != nil && ctx.Err() != nil {
				return Result{}, fmt.Errorf("multigroup: %w", ctx.Err())
			}
			progressed := false
			active := 0
			for _, b := range builders {
				if !b.active() {
					continue
				}
				active++
				if b.tryStep(led, &work) {
					progressed = true
				}
			}
			if active == 0 {
				break
			}
			if !progressed {
				for _, b := range builders {
					if b.active() {
						b.fail(led)
						break
					}
				}
			}
		}
	default:
		return Result{}, fmt.Errorf("%w: %d", ErrBadStrategy, int(strategy))
	}

	res := Result{
		Solutions: make(map[string]*core.Solution, len(builders)),
		Failed:    make(map[string]string),
		Work:      work,
	}
	for _, b := range builders {
		if b.done() {
			sol := &core.Solution{Tree: b.tree, Algorithm: "multigroup-prim", MeasurementFactor: 1}
			if err := b.prob.Validate(sol); err != nil {
				return Result{}, fmt.Errorf("multigroup: group %q built an invalid tree: %w", b.name, err)
			}
			res.Solutions[b.name] = sol
		} else {
			reason := b.failed
			if reason == "" {
				reason = "no capacity-feasible channel to the remaining users"
			}
			res.Failed[b.name] = reason
		}
	}
	return res, nil
}

// treeBuilder grows one group's entanglement tree channel by channel, the
// Prim-style step shared by both strategies.
type treeBuilder struct {
	name   string
	prob   *core.Problem
	inTree map[graph.NodeID]bool
	tree   quantum.Tree
	failed string
}

func newTreeBuilder(name string, prob *core.Problem) *treeBuilder {
	b := &treeBuilder{
		name:   name,
		prob:   prob,
		inTree: make(map[graph.NodeID]bool, len(prob.Users)),
	}
	b.inTree[prob.Users[0]] = true
	return b
}

func (b *treeBuilder) done() bool { return len(b.inTree) == len(b.prob.Users) }

// active reports whether the builder still has work and has not failed.
func (b *treeBuilder) active() bool { return !b.done() && b.failed == "" }

// tryStep commits the group's best frontier channel under the shared
// ledger. It returns false when no capacity-feasible channel exists right
// now — a stall, which the strategy decides how to handle.
func (b *treeBuilder) tryStep(led *quantum.Ledger, st *core.SolveStats) bool {
	if !b.active() {
		return false
	}
	var best quantum.Channel
	found := false
	for _, src := range b.prob.Users {
		if !b.inTree[src] {
			continue
		}
		for _, uc := range b.prob.MaxRateChannels(src, led, st) {
			if b.inTree[uc.Dst] {
				continue
			}
			if !found || uc.Ch.Rate > best.Rate {
				best, found = uc.Ch, true
			}
		}
	}
	if !found {
		return false
	}
	if err := led.Reserve(best.Nodes); err != nil {
		panic(fmt.Sprintf("multigroup: reserve after gated search: %v", err))
	}
	st.AddReservations(1)
	st.AddCommitted(1)
	a, c := best.Endpoints()
	joined := c
	if b.inTree[c] {
		joined = a
	}
	b.inTree[joined] = true
	b.tree.Channels = append(b.tree.Channels, best)
	return true
}

// fail marks the group infeasible and refunds every qubit it had reserved,
// so a failed group cannot starve the others.
func (b *treeBuilder) fail(led *quantum.Ledger) {
	b.failed = fmt.Sprintf("%d users unreachable under shared capacity", len(b.prob.Users)-len(b.inTree))
	for _, ch := range b.tree.Channels {
		led.Release(ch.Nodes)
	}
	b.tree = quantum.Tree{}
}
