package multigroup

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"
)

// contendedNet builds two 2-user groups whose only short routes cross one
// shared switch that can carry `sharedChannels` channels; a long detour
// switch serves overflow.
func contendedNet(t *testing.T, sharedQubits int) (*graph.Graph, []Group) {
	t.Helper()
	g := graph.New(6, 8)
	g.AddUser(0, 0)                      // 0: group A
	g.AddUser(2000, 0)                   // 1: group A
	g.AddUser(0, 200)                    // 2: group B
	g.AddUser(2000, 200)                 // 3: group B
	g.AddSwitch(1000, 100, sharedQubits) // 4: shared bottleneck
	g.AddSwitch(1000, 5000, 16)          // 5: detour
	for _, u := range []graph.NodeID{0, 1, 2, 3} {
		un, s4, s5 := g.Node(u), g.Node(4), g.Node(5)
		g.MustAddEdge(u, 4, math.Hypot(un.X-s4.X, un.Y-s4.Y))
		g.MustAddEdge(u, 5, math.Hypot(un.X-s5.X, un.Y-s5.Y))
	}
	groups := []Group{
		{Name: "A", Users: []graph.NodeID{0, 1}},
		{Name: "B", Users: []graph.NodeID{2, 3}},
	}
	return g, groups
}

func TestRouteBothGroupsAmpleCapacity(t *testing.T) {
	g, groups := contendedNet(t, 8)
	for _, strat := range []Strategy{Sequential, RoundRobin} {
		t.Run(strat.String(), func(t *testing.T) {
			res, err := Route(g, groups, quantum.DefaultParams(), strat)
			if err != nil {
				t.Fatalf("Route: %v", err)
			}
			if len(res.Failed) != 0 {
				t.Fatalf("failures: %v", res.Failed)
			}
			rates := res.Rates(groups)
			for name, rate := range rates {
				if rate <= 0 {
					t.Errorf("group %s rate %g", name, rate)
				}
			}
			if idx := res.JainIndex(groups); idx < 0.9 {
				t.Errorf("uncontended fairness index %g, want ~1", idx)
			}
		})
	}
}

func TestRouteContentionForcesDetour(t *testing.T) {
	// Shared switch carries exactly one channel: one group gets the short
	// route, the other must detour (much lower rate) — but both complete.
	g, groups := contendedNet(t, 2)
	res, err := Route(g, groups, quantum.DefaultParams(), Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failures: %v", res.Failed)
	}
	rates := res.Rates(groups)
	// Sequential: group A (first) wins the bottleneck.
	if rates["A"] <= rates["B"] {
		t.Fatalf("expected first group to win the bottleneck: A=%g B=%g", rates["A"], rates["B"])
	}
	if idx := res.JainIndex(groups); idx >= 0.99 {
		t.Errorf("contended fairness index %g should show imbalance", idx)
	}
}

func TestRouteMinRateZeroOnFailure(t *testing.T) {
	g, groups := contendedNet(t, 2)
	g.SetQubits(5, 0) // remove the detour: one group must fail
	res, err := Route(g, groups, quantum.DefaultParams(), Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed groups = %v, want exactly 1", res.Failed)
	}
	if got := res.MinRate(groups); got != 0 {
		t.Fatalf("MinRate = %g, want 0", got)
	}
}

func TestRouteValidatesInput(t *testing.T) {
	g, groups := contendedNet(t, 8)
	p := quantum.DefaultParams()
	if _, err := Route(g, nil, p, Sequential); !errors.Is(err, ErrNoGroups) {
		t.Errorf("nil groups error = %v", err)
	}
	dup := []Group{groups[0], {Name: "A", Users: groups[1].Users}}
	if _, err := Route(g, dup, p, Sequential); !errors.Is(err, ErrDupGroupName) {
		t.Errorf("duplicate name error = %v", err)
	}
	overlap := []Group{groups[0], {Name: "C", Users: []graph.NodeID{1, 3}}}
	if _, err := Route(g, overlap, p, Sequential); !errors.Is(err, ErrOverlapUsers) {
		t.Errorf("overlapping users error = %v", err)
	}
	if _, err := Route(g, groups, p, Strategy(99)); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("bad strategy error = %v", err)
	}
	bad := []Group{{Name: "X", Users: []graph.NodeID{4}}} // a switch
	if _, err := Route(g, bad, p, Sequential); err == nil {
		t.Error("switch in a group accepted")
	}
}

func TestRoundRobinAtLeastAsFairUnderContention(t *testing.T) {
	// On paper-style random networks with tight switches, round-robin's
	// fairness index should on average be no worse than sequential's.
	cfg := topology.Default()
	cfg.Users = 8
	cfg.Switches = 24
	cfg.SwitchQubits = 2
	params := quantum.DefaultParams()
	var seqFair, rrFair float64
	nets := 12
	for i := 0; i < nets; i++ {
		g, err := topology.Generate(cfg, rand.New(rand.NewSource(int64(100+i))))
		if err != nil {
			t.Fatal(err)
		}
		users := g.Users()
		groups := []Group{
			{Name: "A", Users: users[0:4]},
			{Name: "B", Users: users[4:8]},
		}
		seq, err := Route(g, groups, params, Sequential)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Route(g, groups, params, RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		seqFair += seq.JainIndex(groups)
		rrFair += rr.JainIndex(groups)
	}
	if rrFair < seqFair*0.95 {
		t.Fatalf("round-robin mean fairness %.3f well below sequential %.3f",
			rrFair/float64(nets), seqFair/float64(nets))
	}
}

// TestQuickGroupTreesShareCapacitySoundly: across random nets and random
// group splits, every completed group validates on its own AND the joint
// qubit load of all trees never exceeds any switch's budget.
func TestQuickGroupTreesShareCapacitySoundly(t *testing.T) {
	f := func(seed int64, strategyRaw uint8) bool {
		strat := []Strategy{Sequential, RoundRobin}[int(strategyRaw)%2]
		rng := rand.New(rand.NewSource(seed))
		cfg := topology.Default()
		cfg.Users = 4 + 2*rng.Intn(3) // 4, 6, 8
		cfg.Switches = 10 + rng.Intn(15)
		cfg.SwitchQubits = 2 + 2*rng.Intn(3)
		g, err := topology.Generate(cfg, rng)
		if err != nil {
			t.Log(err)
			return false
		}
		users := g.Users()
		half := len(users) / 2
		groups := []Group{
			{Name: "A", Users: users[:half]},
			{Name: "B", Users: users[half:]},
		}
		res, err := Route(g, groups, quantum.DefaultParams(), strat)
		if err != nil {
			t.Log(err)
			return false
		}
		// Joint load across all completed trees.
		load := map[graph.NodeID]int{}
		for _, sol := range res.Solutions {
			for s, q := range sol.Tree.QubitLoad() {
				load[s] += q
			}
		}
		for s, q := range load {
			if q > g.Node(s).Qubits {
				t.Logf("seed %d: switch %d jointly loaded %d > %d", seed, s, q, g.Node(s).Qubits)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
