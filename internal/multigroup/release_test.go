package multigroup

import (
	"testing"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// TestFailedGroupReleasesReservations: a group that commits one channel and
// then dead-ends must refund the qubits it held.
func TestFailedGroupReleasesReservations(t *testing.T) {
	// Group users: u0 - s3 - u1 routable; u2 isolated, so the group fails
	// after committing u0-u1.
	g := graph.New(4, 2)
	g.AddUser(0, 0)       // 0
	g.AddUser(2000, 0)    // 1
	g.AddUser(9000, 9000) // 2 isolated
	g.AddSwitch(1000, 0, 2)
	g.MustAddEdge(0, 3, 1000)
	g.MustAddEdge(3, 1, 1000)

	prob, err := core.NewProblem(g, []graph.NodeID{0, 1, 2}, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	led := quantum.NewLedger(g)
	b := newTreeBuilder("doomed", prob)

	if !b.tryStep(led, nil) {
		t.Fatal("first step made no progress")
	}
	if led.Free(3) != 0 {
		t.Fatalf("switch free = %d after commit, want 0", led.Free(3))
	}
	// Next step dead-ends on the isolated user: a stall.
	if b.tryStep(led, nil) {
		t.Fatal("step progressed toward an isolated user")
	}
	b.fail(led)
	if b.failed == "" {
		t.Fatal("builder did not record failure")
	}
	if led.Free(3) != 2 {
		t.Fatalf("switch free = %d after failure, want full refund 2", led.Free(3))
	}
	// Failed builders are inert.
	if b.active() || b.tryStep(led, nil) {
		t.Fatal("failed builder still active")
	}
}

// TestRouteFailedGroupDoesNotStarveOthers: under round-robin, a group that
// fails mid-way frees its qubits so a competing group can finish.
func TestRouteFailedGroupDoesNotStarveOthers(t *testing.T) {
	// One bottleneck switch with capacity for exactly one channel. Group A
	// (u0, u1, u4-isolated) grabs it first under round-robin but then
	// fails; group B (u2, u3) must still complete through the refunded
	// switch.
	g := graph.New(6, 4)
	g.AddUser(0, 0)       // 0 A
	g.AddUser(2000, 0)    // 1 A
	g.AddUser(0, 100)     // 2 B
	g.AddUser(2000, 100)  // 3 B
	g.AddUser(9000, 9000) // 4 A, isolated
	g.AddSwitch(1000, 50, 2)
	g.MustAddEdge(0, 5, 1000)
	g.MustAddEdge(1, 5, 1000)
	g.MustAddEdge(2, 5, 1100)
	g.MustAddEdge(3, 5, 1100)

	groups := []Group{
		{Name: "A", Users: []graph.NodeID{0, 1, 4}},
		{Name: "B", Users: []graph.NodeID{2, 3}},
	}
	res, err := Route(g, groups, quantum.DefaultParams(), RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Failed["A"]; !ok {
		t.Fatalf("group A should fail (isolated user); result: %+v", res)
	}
	if _, ok := res.Solutions["B"]; !ok {
		t.Fatalf("group B starved despite A's failure: %+v", res.Failed)
	}
}
