package timesim

import (
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/fidelity"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/purify"
	"github.com/muerp/quantumnet/internal/quantum"
)

// sessCounters accumulates one session's dynamics. Merged into the Report
// (and the trace hash) when the session leaves.
type sessCounters struct {
	linkAttempts    int64
	linkSuccesses   int64
	swapAttempts    int64
	swapSuccesses   int64
	channelPairs    int64
	purifyAttempts  int64
	purifySuccesses int64
	decoheredLinks  int64
	decoheredPairs  int64
	delivered       int64
	sumFidelity     float64
}

// chanState is the live entanglement state of one routed channel: one
// stored pair per fiber link, plus at most one distilled end-to-end pair
// held in the endpoint memories.
type chanState struct {
	// nodes is the channel path (aliases the committed tree's channel).
	nodes []graph.NodeID
	// lengths holds the per-link fiber lengths.
	lengths []float64
	// linkW/linkAge track the held link-level pairs; linkW == 0 means the
	// link has no entanglement this slot.
	linkW   []float64
	linkAge []int
	// pairW/pairAge track the stored end-to-end channel pair (0 = none);
	// ready marks it as having met the fidelity floor.
	pairW   float64
	pairAge int
	ready   bool
}

// session is one admitted request's live state. After admission a session
// is touched only by its own advance calls (own RNG, own counters), so
// sessions advance in parallel without synchronization.
type session struct {
	id         int
	users      []graph.NodeID
	tree       quantum.Tree
	departSlot int
	rng        *rand.Rand
	chans      []*chanState
	ct         sessCounters
	// deliveredThisSlot feeds the per-slot window trace; reset each slot by
	// the coordinator.
	deliveredThisSlot int
}

// newChanState reads the channel's link lengths off g. g must contain every
// fiber the path uses (the caller routes on the degraded graph).
func newChanState(g *graph.Graph, nodes []graph.NodeID) *chanState {
	c := &chanState{
		nodes:   nodes,
		lengths: make([]float64, len(nodes)-1),
		linkW:   make([]float64, len(nodes)-1),
		linkAge: make([]int, len(nodes)-1),
	}
	for i := 0; i+1 < len(nodes); i++ {
		e, ok := g.EdgeBetween(nodes[i], nodes[i+1])
		if !ok {
			panic("timesim: committed channel uses a missing fiber")
		}
		c.lengths[i] = e.Length
	}
	return c
}

// rebuildChans installs a repaired tree: channels whose path survived keep
// their stored entanglement; replaced channels start cold.
func (s *session) rebuildChans(g *graph.Graph, tree quantum.Tree) {
	old := make(map[string]*chanState, len(s.chans))
	for _, c := range s.chans {
		old[pathKey(c.nodes)] = c
	}
	chans := make([]*chanState, 0, len(tree.Channels))
	for _, ch := range tree.Channels {
		if prev, ok := old[pathKey(ch.Nodes)]; ok {
			prev.nodes = ch.Nodes
			chans = append(chans, prev)
			continue
		}
		chans = append(chans, newChanState(g, ch.Nodes))
	}
	s.tree = tree
	s.chans = chans
}

func pathKey(nodes []graph.NodeID) string {
	b := make([]byte, 0, len(nodes)*8)
	for _, n := range nodes {
		v := uint64(n)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// advance runs one slot of entanglement dynamics for the session:
// age-and-expire, link generation, swap chains, purification, delivery.
func (s *session) advance(params quantum.Params, fid fidelity.Model, ttl int, minFidelity float64) {
	for _, c := range s.chans {
		s.advanceChannel(c, params, fid, ttl, minFidelity)
	}
	// Deliver when every channel holds a ready pair in the same slot.
	for _, c := range s.chans {
		if !c.ready {
			return
		}
	}
	w := 1.0
	for _, c := range s.chans {
		w *= fid.AgeWerner(c.pairW, c.pairAge)
		c.pairW, c.pairAge, c.ready = 0, 0, false
	}
	s.ct.delivered++
	s.ct.sumFidelity += fidelity.WernerToFidelity(w)
	s.deliveredThisSlot++
}

func (s *session) advanceChannel(c *chanState, params quantum.Params, fid fidelity.Model, ttl int, minFidelity float64) {
	// 1. Age every stored entanglement and discard what outlived the
	// memory TTL.
	for i := range c.linkW {
		if c.linkW[i] == 0 {
			continue
		}
		c.linkAge[i]++
		if c.linkAge[i] > ttl {
			c.linkW[i], c.linkAge[i] = 0, 0
			s.ct.decoheredLinks++
		}
	}
	if c.pairW != 0 {
		c.pairAge++
		if c.pairAge > ttl {
			c.pairW, c.pairAge, c.ready = 0, 0, false
			s.ct.decoheredPairs++
		}
	}
	// 2. A ready pair parks the channel: regenerating would waste link
	// attempts the sibling channels still need — holding is the per-slot
	// scheduling decision the floor forces.
	if c.ready {
		return
	}
	// 3. Attempt generation on every bare link.
	held := true
	for i := range c.linkW {
		if c.linkW[i] != 0 {
			continue
		}
		s.ct.linkAttempts++
		if s.rng.Float64() < params.LinkRate(c.lengths[i]) {
			s.ct.linkSuccesses++
			c.linkW[i] = fid.LinkWerner(c.lengths[i])
			c.linkAge[i] = 0
		} else {
			held = false
		}
	}
	if !held {
		return
	}
	// 4. All links held: run the swap chain. Every interior BSM must
	// succeed; the links are consumed either way.
	s.ct.swapAttempts++
	ok := true
	for j := 0; j+2 < len(c.nodes); j++ {
		if s.rng.Float64() >= params.SwapProb {
			ok = false
		}
	}
	raw := 1.0
	for i := range c.linkW {
		if ok {
			raw *= fid.AgeWerner(c.linkW[i], c.linkAge[i])
		}
		c.linkW[i], c.linkAge[i] = 0, 0
	}
	if !ok {
		return
	}
	s.ct.swapSuccesses++
	s.ct.channelPairs++
	s.mergePair(c, fid, raw, minFidelity)
}

// mergePair folds a fresh raw end-to-end pair into the channel's stored
// pair: store it when the memory is empty, otherwise purify the (aged)
// stored pair against it.
func (s *session) mergePair(c *chanState, fid fidelity.Model, raw, minFidelity float64) {
	rawF := fidelity.WernerToFidelity(raw)
	if c.pairW == 0 {
		c.pairW, c.pairAge = raw, 0
		c.ready = minFidelity <= 0 || rawF >= minFidelity
		return
	}
	storedF := fidelity.WernerToFidelity(fid.AgeWerner(c.pairW, c.pairAge))
	// BBPSSW needs both inputs above 1/2: a junk input cannot help, so keep
	// whichever single pair is better and discard the other.
	if storedF <= 0.5 || rawF <= 0.5 {
		if rawF > storedF {
			c.pairW, c.pairAge = raw, 0
			c.ready = minFidelity <= 0 || rawF >= minFidelity
		}
		return
	}
	fOut, pSucc, err := purify.StepPair(storedF, rawF)
	if err != nil {
		// Both inputs were checked to lie in (0.5, 1].
		panic("timesim: purify.StepPair: " + err.Error())
	}
	s.ct.purifyAttempts++
	if s.rng.Float64() >= pSucc {
		// Failed round destroys both pairs.
		c.pairW, c.pairAge, c.ready = 0, 0, false
		return
	}
	s.ct.purifySuccesses++
	c.pairW = fidelity.FidelityToWerner(fOut)
	c.pairAge = 0
	c.ready = minFidelity <= 0 || fOut >= minFidelity
}

// foldCounters mixes the session's final dynamics counters into the trace
// hash in a fixed order.
func (ct sessCounters) fold(h *traceHash) {
	h.fold(uint64(ct.linkAttempts))
	h.fold(uint64(ct.linkSuccesses))
	h.fold(uint64(ct.swapAttempts))
	h.fold(uint64(ct.swapSuccesses))
	h.fold(uint64(ct.channelPairs))
	h.fold(uint64(ct.purifyAttempts))
	h.fold(uint64(ct.purifySuccesses))
	h.fold(uint64(ct.decoheredLinks))
	h.fold(uint64(ct.decoheredPairs))
	h.fold(uint64(ct.delivered))
	h.fold(math.Float64bits(ct.sumFidelity))
}
