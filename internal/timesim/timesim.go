// Package timesim is the discrete-time counterpart of the repo's one-shot
// analytic pipeline: a deterministic slotted engine in the style of Pant et
// al. (arXiv:1708.07142) where link-level entanglements are (re)generated
// every slot with the Eq. 1 per-link success probability, held qubit-memory
// pairs age out after a decoherence TTL measured in slots, fidelity decays
// with age through internal/fidelity's memory model, and BBPSSW
// purification (internal/purify) becomes a per-slot scheduling decision.
//
// Sessions arrive per slot from internal/workload traffic models, are
// admitted on residual capacity with internal/sched verdict semantics,
// and are locally repaired through internal/repair when a fiber failure
// breaks a committed tree. Runs are bit-deterministic for a seed at any
// parallelism: each session advances on its own derived RNG stream, and
// all shared state (the qubit ledger, admission, repair) is mutated only
// by the coordinator between slot barriers.
package timesim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/fidelity"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/repair"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/solver"
)

// GreedyAlgorithm is the default admission scheme: the shared-capacity
// greedy tree build (Algorithm 4's growth step on the live ledger), exactly
// the rule internal/sched's admission simulation uses.
const GreedyAlgorithm = "greedy"

// ErrBadConfig reports an invalid engine configuration.
var ErrBadConfig = errors.New("timesim: invalid config")

// Config parameterizes one slotted run.
type Config struct {
	// Graph is the network. It is read-only during the run.
	Graph *graph.Graph
	// Params is the rate model; the zero value means quantum.DefaultParams.
	Params quantum.Params
	// Fid is the fidelity model (including the per-slot memory decay
	// Gamma); the zero value means fidelity.DefaultModel.
	Fid fidelity.Model
	// Slots is the simulated horizon.
	Slots int
	// MemoryTTL is the decoherence TTL: a stored pair older than this many
	// slots is discarded.
	MemoryTTL int
	// MinFidelity is the delivery floor: channel pairs below it are held
	// back and purified. Zero disables purification scheduling.
	MinFidelity float64
	// Algorithm selects the admission scheme: GreedyAlgorithm (default) or
	// any internal/solver registry name, solved on residual capacity.
	Algorithm string
	// Seed derives every RNG stream of the run.
	Seed int64
	// FailProb is the per-fiber, per-slot failure probability.
	FailProb float64
	// RepairSlots is how many slots a failed fiber stays down; <= 0 means
	// failures are permanent.
	RepairSlots int
	// Parallelism bounds the workers advancing session dynamics; <= 0
	// means runtime.GOMAXPROCS(0). Results are identical at any value.
	Parallelism int
	// WindowSlots > 0 emits a Report.Windows bucket every that many slots.
	WindowSlots int
}

func (cfg *Config) normalize() error {
	if cfg.Graph == nil {
		return fmt.Errorf("%w: nil graph", ErrBadConfig)
	}
	if cfg.Params == (quantum.Params{}) {
		cfg.Params = quantum.DefaultParams()
	}
	if cfg.Fid == (fidelity.Model{}) {
		cfg.Fid = fidelity.DefaultModel()
	}
	if err := cfg.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if err := cfg.Fid.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Slots <= 0 {
		return fmt.Errorf("%w: %d slots", ErrBadConfig, cfg.Slots)
	}
	if cfg.MemoryTTL < 1 {
		return fmt.Errorf("%w: memory TTL %d must be >= 1 slot", ErrBadConfig, cfg.MemoryTTL)
	}
	if cfg.MinFidelity < 0 || cfg.MinFidelity >= 1 || math.IsNaN(cfg.MinFidelity) {
		return fmt.Errorf("%w: fidelity floor %g must be in [0, 1)", ErrBadConfig, cfg.MinFidelity)
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = GreedyAlgorithm
	}
	if cfg.Algorithm != GreedyAlgorithm {
		if _, err := solver.Get(cfg.Algorithm); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	if cfg.FailProb < 0 || cfg.FailProb >= 1 || math.IsNaN(cfg.FailProb) {
		return fmt.Errorf("%w: fail probability %g must be in [0, 1)", ErrBadConfig, cfg.FailProb)
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.WindowSlots < 0 {
		return fmt.Errorf("%w: window of %d slots", ErrBadConfig, cfg.WindowSlots)
	}
	return nil
}

// traceHash is FNV-1a over 64-bit words: cheap, order-sensitive and stable
// across runs, which is all a golden trace needs.
type traceHash struct{ h uint64 }

func newTraceHash() *traceHash { return &traceHash{h: 14695981039346656037} }

func (t *traceHash) fold(v uint64) {
	for i := 0; i < 8; i++ {
		t.h ^= v & 0xff
		t.h *= 1099511628211
		v >>= 8
	}
}

// seedStream derives stream i of the run seed (splitmix64), so the control,
// admission and per-session RNGs never share state.
func seedStream(seed int64, i int64) *rand.Rand {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// sessionStream reserves streams 16+ for sessions.
func sessionStream(seed int64, id int) *rand.Rand { return seedStream(seed, 16+int64(id)) }

// engine is the per-run state. All fields are coordinator-owned; sessions
// only ever touch themselves.
type engine struct {
	cfg    Config
	base   *graph.Graph
	edges  []graph.Edge // base's fibers, indexed by EdgeID
	cur    *graph.Graph // base minus the currently failed fibers
	led    *quantum.Ledger
	ctrl   *rand.Rand // fiber failures
	admit  *rand.Rand // RNG-consuming admission solvers
	active []*session
	down   map[graph.EdgeID]int // base edge ID -> recovery slot
	hash   *traceHash
	rep    Report
	win    Window
}

// Run executes the slotted simulation over the request stream. Request
// arrivals and holds are in slot units (fractional arrivals land in slot
// floor(Arrival); holds round up, minimum one slot). Requests arriving at
// or after Slots are ignored.
func Run(ctx context.Context, cfg Config, reqs []sched.Request) (Report, error) {
	if err := cfg.normalize(); err != nil {
		return Report{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ordered := make([]sched.Request, len(reqs))
	copy(ordered, reqs)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, r := range ordered {
		if r.Arrival < 0 || math.IsNaN(r.Arrival) {
			return Report{}, fmt.Errorf("%w: request %d arrival %g", ErrBadConfig, r.ID, r.Arrival)
		}
		if !(r.Hold > 0) || math.IsInf(r.Hold, 1) {
			return Report{}, fmt.Errorf("%w: request %d hold %g", ErrBadConfig, r.ID, r.Hold)
		}
	}

	e := &engine{
		cfg:   cfg,
		base:  cfg.Graph,
		edges: cfg.Graph.Edges(),
		cur:   cfg.Graph,
		led:   quantum.NewLedger(cfg.Graph),
		ctrl:  seedStream(cfg.Seed, 1),
		admit: seedStream(cfg.Seed, 2),
		down:  map[graph.EdgeID]int{},
		hash:  newTraceHash(),
		rep:   Report{Slots: cfg.Slots},
	}
	e.win = Window{}

	next := 0
	for t := 0; t < cfg.Slots; t++ {
		if err := ctx.Err(); err != nil {
			return Report{}, err
		}
		e.expire(t)
		if cfg.FailProb > 0 {
			if err := e.fiberEvents(ctx, t); err != nil {
				return Report{}, err
			}
		}
		for next < len(ordered) && int(ordered[next].Arrival) <= t {
			if err := e.admitRequest(ctx, t, ordered[next]); err != nil {
				return Report{}, err
			}
			next++
		}
		if len(e.active) > e.rep.PeakActive {
			e.rep.PeakActive = len(e.active)
		}
		e.advanceAll()
		delivered := 0
		for _, s := range e.active {
			delivered += s.deliveredThisSlot
			s.deliveredThisSlot = 0
		}
		if delivered > 0 {
			e.hash.fold(uint64(t))
			e.hash.fold(uint64(delivered))
		}
		e.win.Delivered += delivered
		if cfg.WindowSlots > 0 && (t+1)%cfg.WindowSlots == 0 {
			e.flushWindow(t + 1 - cfg.WindowSlots)
		}
	}
	if cfg.WindowSlots > 0 && cfg.Slots%cfg.WindowSlots != 0 {
		e.flushWindow(cfg.Slots - cfg.Slots%cfg.WindowSlots)
	}

	// Tear down the survivors and check the ledger drained to zero — a
	// leak here means a reserve/release pairing bug, not a user error.
	for _, s := range e.active {
		core.ReleaseTree(e.led, s.tree)
		e.finalize(s)
	}
	e.active = nil
	if used := e.led.UsedQubits(); used != 0 {
		return Report{}, fmt.Errorf("timesim: internal: %d qubits still reserved after teardown", used)
	}
	e.rep.TraceHash = e.hash.h
	return e.rep, nil
}

func (e *engine) flushWindow(start int) {
	e.win.StartSlot = start
	e.win.ActiveAtEnd = len(e.active)
	e.rep.Windows = append(e.rep.Windows, e.win)
	e.win = Window{}
}

// finalize folds a departing session's dynamics into the report and hash.
func (e *engine) finalize(s *session) {
	ct := s.ct
	e.rep.LinkAttempts += ct.linkAttempts
	e.rep.LinkSuccesses += ct.linkSuccesses
	e.rep.SwapAttempts += ct.swapAttempts
	e.rep.SwapSuccesses += ct.swapSuccesses
	e.rep.ChannelPairs += ct.channelPairs
	e.rep.PurifyAttempts += ct.purifyAttempts
	e.rep.PurifySuccesses += ct.purifySuccesses
	e.rep.DecoheredLinks += ct.decoheredLinks
	e.rep.DecoheredPairs += ct.decoheredPairs
	e.rep.Delivered += ct.delivered
	e.rep.SumFidelity += ct.sumFidelity
	e.hash.fold(uint64(s.id))
	ct.fold(e.hash)
}

// expire releases sessions whose hold ended before slot t.
func (e *engine) expire(t int) {
	kept := e.active[:0]
	for _, s := range e.active {
		if s.departSlot <= t {
			core.ReleaseTree(e.led, s.tree)
			e.rep.Completed++
			e.finalize(s)
			continue
		}
		kept = append(kept, s)
	}
	e.active = kept
}

// fiberEvents recovers due fibers, samples new failures, and repairs (or
// drops) every committed tree a newly failed fiber broke.
func (e *engine) fiberEvents(ctx context.Context, t int) error {
	changed := false
	for id, until := range e.down {
		if until <= t {
			delete(e.down, id)
			e.rep.EdgeRecoveries++
			changed = true
		}
	}
	for _, edge := range e.edges {
		if _, isDown := e.down[edge.ID]; isDown {
			continue
		}
		if e.ctrl.Float64() < e.cfg.FailProb {
			until := math.MaxInt
			if e.cfg.RepairSlots > 0 {
				until = t + e.cfg.RepairSlots
			}
			e.down[edge.ID] = until
			e.rep.EdgeFailures++
			e.hash.fold(uint64(t))
			e.hash.fold(uint64(edge.ID))
			changed = true
		}
	}
	if !changed {
		return nil
	}
	ids := make([]graph.EdgeID, 0, len(e.down))
	for id := range e.down {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.cur = e.base.WithoutEdges(ids)

	gone := make(map[[2]graph.NodeID]bool, len(ids))
	downEdges := make([]graph.Edge, 0, len(ids))
	for _, id := range ids {
		edge := e.edges[id]
		a, b := edge.A, edge.B
		if a > b {
			a, b = b, a
		}
		gone[[2]graph.NodeID{a, b}] = true
		downEdges = append(downEdges, edge)
	}

	kept := e.active[:0]
	for _, s := range e.active {
		if !treeBroken(s.tree, gone) {
			kept = append(kept, s)
			continue
		}
		core.ReleaseTree(e.led, s.tree)
		sol := &core.Solution{Tree: s.tree, Algorithm: "slot", MeasurementFactor: 1}
		out, err := repair.AfterEdgeFailuresResidual(ctx, e.led, e.cur, s.users, sol, downEdges, e.cfg.Params)
		switch {
		case err == nil:
			e.rep.Repairs++
			e.rep.ReroutedChannels += out.Rerouted
			e.hash.fold(uint64(s.id))
			e.hash.fold(uint64(out.Rerouted))
			s.rebuildChans(e.cur, out.Solution.Tree)
			kept = append(kept, s)
		case errors.Is(err, core.ErrInfeasible) || errors.Is(err, quantum.ErrInteriorQubits):
			e.rep.Dropped++
			e.win.Dropped++
			e.hash.fold(uint64(s.id))
			e.hash.fold(math.MaxUint64)
			e.finalize(s)
		default:
			return fmt.Errorf("timesim: repair of session %d: %w", s.id, err)
		}
	}
	e.active = kept
	return nil
}

func treeBroken(tree quantum.Tree, gone map[[2]graph.NodeID]bool) bool {
	for _, ch := range tree.Channels {
		for i := 0; i+1 < len(ch.Nodes); i++ {
			a, b := ch.Nodes[i], ch.Nodes[i+1]
			if a > b {
				a, b = b, a
			}
			if gone[[2]graph.NodeID{a, b}] {
				return true
			}
		}
	}
	return false
}

// admitRequest routes one arrival on residual capacity and applies the
// shared sched verdict semantics: accepted sessions hold reservations until
// departure, infeasibility rejects (blocked calls cleared), a dead context
// aborts the run.
func (e *engine) admitRequest(ctx context.Context, t int, req sched.Request) error {
	e.rep.Offered++
	e.win.Offered++
	tree, err := e.route(ctx, req)
	switch sched.Classify(ctx.Err(), err) {
	case sched.VerdictAccepted:
	case sched.VerdictRejected:
		e.rep.Rejected++
		e.win.Rejected++
		e.hash.fold(uint64(req.ID))
		e.hash.fold(0)
		return nil
	default:
		return fmt.Errorf("timesim: admission of request %d: %w", req.ID, err)
	}
	hold := int(math.Ceil(req.Hold))
	if hold < 1 {
		hold = 1
	}
	s := &session{
		id:         req.ID,
		users:      req.Users,
		departSlot: t + hold,
		rng:        sessionStream(e.cfg.Seed, req.ID),
	}
	s.rebuildChans(e.cur, tree)
	e.active = append(e.active, s)
	e.rep.Admitted++
	e.win.Admitted++
	e.hash.fold(uint64(req.ID))
	e.hash.fold(uint64(len(tree.Channels)))
	return nil
}

// route solves the request on the degraded graph's residual capacity. The
// greedy scheme builds directly against the shared ledger; registry schemes
// solve a residual-capacity snapshot and then reserve their tree.
func (e *engine) route(ctx context.Context, req sched.Request) (quantum.Tree, error) {
	if e.cfg.Algorithm == GreedyAlgorithm {
		prob, err := core.NewProblem(e.cur, req.Users, e.cfg.Params)
		if err != nil {
			return quantum.Tree{}, fmt.Errorf("%w: request %d: %v", core.ErrInfeasible, req.ID, err)
		}
		return core.BuildGreedyTree(ctx, prob, e.led, &core.SolveOptions{Stats: &e.rep.Work})
	}
	entry, err := solver.Get(e.cfg.Algorithm)
	if err != nil {
		return quantum.Tree{}, err
	}
	resid := e.cur.Clone()
	for _, sw := range resid.Switches() {
		resid.SetQubits(sw, e.led.Free(sw))
	}
	prob, err := core.NewProblem(resid, req.Users, e.cfg.Params)
	if err != nil {
		return quantum.Tree{}, fmt.Errorf("%w: request %d: %v", core.ErrInfeasible, req.ID, err)
	}
	opts := &core.SolveOptions{Stats: &e.rep.Work}
	if entry.ConsumesRNG {
		opts.RNG = e.admit
	}
	sol, err := entry.Solve(ctx, prob, opts)
	if err != nil {
		return quantum.Tree{}, err
	}
	for i, ch := range sol.Tree.Channels {
		if err := e.led.Reserve(ch.Nodes); err != nil {
			for _, prev := range sol.Tree.Channels[:i] {
				e.led.Release(prev.Nodes)
			}
			return quantum.Tree{}, fmt.Errorf("timesim: internal: residual solve overcommitted: %w", err)
		}
	}
	return sol.Tree, nil
}

// advanceAll steps every active session one slot, fanning out across the
// configured parallelism. Sessions are independent (own RNG, own state),
// so the fan-out is bit-identical to the sequential loop.
func (e *engine) advanceAll() {
	n := len(e.active)
	workers := e.cfg.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, s := range e.active {
			s.advance(e.cfg.Params, e.cfg.Fid, e.cfg.MemoryTTL, e.cfg.MinFidelity)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(part []*session) {
			defer wg.Done()
			for _, s := range part {
				s.advance(e.cfg.Params, e.cfg.Fid, e.cfg.MemoryTTL, e.cfg.MinFidelity)
			}
		}(e.active[lo:hi])
	}
	wg.Wait()
}
