package timesim

import (
	"fmt"
	"strings"

	"github.com/muerp/quantumnet/internal/core"
)

// Window is one aggregation bucket of WindowSlots consecutive slots, used
// to trace load transients (diurnal cycles, flash crowds) over time.
type Window struct {
	// StartSlot is the window's first slot.
	StartSlot int `json:"start_slot"`
	// Offered/Admitted/Rejected count admission outcomes in the window.
	Offered  int `json:"offered"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// Dropped counts sessions lost to unrepairable fiber failures.
	Dropped int `json:"dropped"`
	// Delivered counts end-to-end entangled states delivered.
	Delivered int `json:"delivered"`
	// ActiveAtEnd is the number of live sessions after the window's last
	// slot.
	ActiveAtEnd int `json:"active_at_end"`
}

// Report aggregates one slotted run.
type Report struct {
	// Slots is the simulated horizon.
	Slots int `json:"slots"`
	// Offered/Admitted/Rejected count admission outcomes; Dropped counts
	// admitted sessions torn down by unrepairable fiber failures, and
	// Completed counts sessions that held to their departure slot.
	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Dropped   int `json:"dropped"`
	Completed int `json:"completed"`
	// PeakActive is the high-water mark of simultaneously held sessions.
	PeakActive int `json:"peak_active"`

	// LinkAttempts/LinkSuccesses count per-slot link-entanglement trials.
	LinkAttempts  int64 `json:"link_attempts"`
	LinkSuccesses int64 `json:"link_successes"`
	// SwapAttempts/SwapSuccesses count whole-channel swap chains.
	SwapAttempts  int64 `json:"swap_attempts"`
	SwapSuccesses int64 `json:"swap_successes"`
	// ChannelPairs counts raw end-to-end channel pairs produced by swaps.
	ChannelPairs int64 `json:"channel_pairs"`
	// PurifyAttempts/PurifySuccesses count BBPSSW rounds scheduled by the
	// fidelity floor.
	PurifyAttempts  int64 `json:"purify_attempts"`
	PurifySuccesses int64 `json:"purify_successes"`
	// DecoheredLinks/DecoheredPairs count entanglements that aged past the
	// memory TTL and were discarded.
	DecoheredLinks int64 `json:"decohered_links"`
	DecoheredPairs int64 `json:"decohered_pairs"`

	// Delivered counts full multi-user entangled states (every channel of a
	// session's tree ready in the same slot); SumFidelity sums their
	// end-to-end fidelities.
	Delivered   int64   `json:"delivered"`
	SumFidelity float64 `json:"sum_fidelity"`

	// EdgeFailures/EdgeRecoveries count fiber events; Repairs counts
	// successful local repairs and ReroutedChannels the channels they
	// replaced.
	EdgeFailures     int `json:"edge_failures"`
	EdgeRecoveries   int `json:"edge_recoveries"`
	Repairs          int `json:"repairs"`
	ReroutedChannels int `json:"rerouted_channels"`

	// Work sums the routing work over every admission and repair attempt.
	Work core.SolveStats `json:"work"`
	// TraceHash folds every admission, drop, failure and per-session
	// dynamics counter into one value: two runs agree iff they took the
	// same trajectory.
	TraceHash uint64 `json:"trace_hash"`
	// Windows is the per-window load trace (empty unless WindowSlots > 0).
	Windows []Window `json:"windows,omitempty"`
}

// DeliveredPerSlot returns the delivered end-to-end state rate.
func (r Report) DeliveredPerSlot() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Slots)
}

// MeanFidelity returns the mean fidelity over delivered states.
func (r Report) MeanFidelity() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return r.SumFidelity / float64(r.Delivered)
}

// LinkSuccessRatio returns successes/attempts (0 for an idle run).
func (r Report) LinkSuccessRatio() float64 {
	if r.LinkAttempts == 0 {
		return 0
	}
	return float64(r.LinkSuccesses) / float64(r.LinkAttempts)
}

// String renders the aligned summary block cmd/qsim prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered:         %d\n", r.Offered)
	fmt.Fprintf(&b, "admitted:        %d (%.3f)\n", r.Admitted, ratio(r.Admitted, r.Offered))
	fmt.Fprintf(&b, "rejected:        %d\n", r.Rejected)
	fmt.Fprintf(&b, "dropped:         %d\n", r.Dropped)
	fmt.Fprintf(&b, "completed:       %d\n", r.Completed)
	fmt.Fprintf(&b, "peak active:     %d\n", r.PeakActive)
	fmt.Fprintf(&b, "delivered:       %d states (%.6g per slot), mean fidelity %.6g\n",
		r.Delivered, r.DeliveredPerSlot(), r.MeanFidelity())
	fmt.Fprintf(&b, "links:           %d attempts, %d successes (%.3f)\n",
		r.LinkAttempts, r.LinkSuccesses, r.LinkSuccessRatio())
	fmt.Fprintf(&b, "swaps:           %d chains, %d succeeded\n", r.SwapAttempts, r.SwapSuccesses)
	fmt.Fprintf(&b, "channel pairs:   %d raw, purify %d/%d rounds\n",
		r.ChannelPairs, r.PurifySuccesses, r.PurifyAttempts)
	fmt.Fprintf(&b, "decohered:       %d link pairs, %d channel pairs\n",
		r.DecoheredLinks, r.DecoheredPairs)
	fmt.Fprintf(&b, "fiber events:    %d failures, %d recoveries, %d repairs (%d channels rerouted)\n",
		r.EdgeFailures, r.EdgeRecoveries, r.Repairs, r.ReroutedChannels)
	fmt.Fprintf(&b, "trace hash:      %016x", r.TraceHash)
	return b.String()
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
