package timesim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/muerp/quantumnet/internal/core"

	"github.com/muerp/quantumnet/internal/fidelity"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/workload"
)

// testGraph builds a small dense network: 6 users around a 4-switch ring
// with chords, enough capacity for a handful of concurrent sessions.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New(0, 0)
	var sw []graph.NodeID
	for i := 0; i < 4; i++ {
		sw = append(sw, g.AddSwitch(float64(i%2)*3000, float64(i/2)*3000, 12))
	}
	g.MustAddEdge(sw[0], sw[1], 3000)
	g.MustAddEdge(sw[1], sw[3], 3000)
	g.MustAddEdge(sw[3], sw[2], 3000)
	g.MustAddEdge(sw[2], sw[0], 3000)
	g.MustAddEdge(sw[0], sw[3], 4200)
	g.MustAddEdge(sw[1], sw[2], 4200)
	for i := 0; i < 6; i++ {
		u := g.AddUser(-1000, float64(i)*1200)
		g.MustAddEdge(u, sw[i%4], 1500)
		g.MustAddEdge(u, sw[(i+1)%4], 2100)
	}
	return g
}

// testRequests samples a Poisson stream of small sessions over the horizon.
func testRequests(t testing.TB, g *graph.Graph, rate float64, slots int, seed int64) []sched.Request {
	t.Helper()
	arr, err := workload.Arrivals(workload.Poisson{Lambda: rate}, float64(slots), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Draw{MeanHold: 25, MinUsers: 2, MaxUsers: 3}.Sessions(g, arr, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func baseConfig(g *graph.Graph) Config {
	return Config{
		Graph:     g,
		Params:    quantum.Params{Alpha: 4e-4, SwapProb: 0.9},
		Fid:       fidelity.Model{W0: 0.98, Beta: 2e-5, Gamma: 0.01},
		Slots:     300,
		MemoryTTL: 8,
		Seed:      42,
	}
}

// The full report of a seeded run is pinned: any change to the engine's
// trajectory — admission order, RNG stream layout, dynamics rules — shows
// up as a diff here and must be deliberate.
func TestGoldenTrace(t *testing.T) {
	g := testGraph(t)
	rep, err := Run(context.Background(), baseConfig(g), testRequests(t, g, 0.2, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	const wantHash = uint64(0xdada792db170f90d)
	if rep.TraceHash != wantHash {
		t.Errorf("trace hash %#x, want %#x\nfull report:\n%s", rep.TraceHash, wantHash, rep)
	}
	if rep.Offered != 65 || rep.Admitted != 64 || rep.Rejected != 1 {
		t.Errorf("admissions drifted: offered %d admitted %d rejected %d", rep.Offered, rep.Admitted, rep.Rejected)
	}
	if rep.Delivered == 0 || rep.DecoheredLinks == 0 {
		t.Errorf("dynamics look dead: %+v", rep)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(t, g, 0.25, 300, 11)
	a, err := Run(context.Background(), baseConfig(g), reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), baseConfig(g), reqs)
	if err != nil {
		t.Fatal(err)
	}
	a.Work, b.Work = core.SolveStats{}, core.SolveStats{} // pool counters vary with scheduling
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	cfg := baseConfig(g)
	cfg.Seed = 43
	c, err := Run(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if c.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced the same trace")
	}
}

// Parallel slot advance must be bit-identical to the sequential loop; this
// is also the -race exercise for the concurrent path.
func TestParallelMatchesSequential(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(t, g, 0.3, 300, 13)
	seq := baseConfig(g)
	seq.Parallelism = 1
	par := baseConfig(g)
	par.Parallelism = 4
	a, err := Run(context.Background(), seq, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), par, reqs)
	if err != nil {
		t.Fatal(err)
	}
	a.Work, b.Work = core.SolveStats{}, core.SolveStats{} // pool counters vary with scheduling
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallelism changed the run:\n%s\nvs\n%s", a, b)
	}
}

// A longer memory TTL can only help: more slots to collect sibling links
// before the stored ones decohere.
func TestLongerTTLDeliversMore(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(t, g, 0.2, 300, 17)
	short := baseConfig(g)
	short.MemoryTTL = 1
	long := baseConfig(g)
	long.MemoryTTL = 16
	a, err := Run(context.Background(), short, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), long, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Delivered <= a.Delivered {
		t.Fatalf("TTL 16 delivered %d <= TTL 1 delivered %d", b.Delivered, a.Delivered)
	}
	if a.DecoheredLinks == 0 {
		t.Fatal("TTL 1 run never decohered a link")
	}
}

// A fidelity floor schedules purification rounds, trades delivered count
// for delivered quality.
func TestPurificationFloor(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(t, g, 0.2, 300, 19)
	free := baseConfig(g)
	floored := baseConfig(g)
	floored.MinFidelity = 0.9
	a, err := Run(context.Background(), free, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), floored, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if b.PurifyAttempts == 0 {
		t.Fatal("floor scheduled no purification")
	}
	if a.PurifyAttempts != 0 {
		t.Fatalf("floorless run purified %d times", a.PurifyAttempts)
	}
	if b.Delivered >= a.Delivered {
		t.Errorf("floored run delivered %d >= unfloored %d", b.Delivered, a.Delivered)
	}
	if b.MeanFidelity() <= a.MeanFidelity() {
		t.Errorf("floored mean fidelity %g <= unfloored %g", b.MeanFidelity(), a.MeanFidelity())
	}
}

// Fiber failures must trigger local repairs (or drops) and still tear down
// to an empty ledger (Run checks that internally).
func TestFiberFailuresRepairOrDrop(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(t, g, 0.25, 300, 23)
	cfg := baseConfig(g)
	cfg.FailProb = 0.004
	cfg.RepairSlots = 25
	rep, err := Run(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgeFailures == 0 {
		t.Fatal("no fiber ever failed")
	}
	if rep.Repairs+rep.Dropped == 0 {
		t.Fatal("failures never touched a committed tree")
	}
	if rep.EdgeRecoveries == 0 {
		t.Fatal("no fiber ever recovered")
	}
}

// Registry algorithms admit through a residual-capacity snapshot; the run
// must behave like the greedy one (sessions admitted, ledger drained).
func TestRegistryAlgorithmAdmission(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(t, g, 0.15, 200, 29)
	for _, alg := range []string{"alg3", "alg4"} {
		cfg := baseConfig(g)
		cfg.Slots = 200
		cfg.Algorithm = alg
		rep, err := Run(context.Background(), cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.Admitted == 0 {
			t.Fatalf("%s admitted nothing", alg)
		}
		again, err := Run(context.Background(), cfg, reqs)
		if err != nil {
			t.Fatalf("%s rerun: %v", alg, err)
		}
		if again.TraceHash != rep.TraceHash {
			t.Fatalf("%s is not deterministic", alg)
		}
	}
}

func TestWindowsPartitionTheRun(t *testing.T) {
	g := testGraph(t)
	reqs := testRequests(t, g, 0.3, 300, 31)
	cfg := baseConfig(g)
	cfg.WindowSlots = 64
	rep, err := Run(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) != 5 { // 4 full windows of 64 + one 44-slot tail
		t.Fatalf("got %d windows, want 5", len(rep.Windows))
	}
	var offered, admitted, rejected, delivered int
	for i, w := range rep.Windows {
		if w.StartSlot != i*64 {
			t.Errorf("window %d starts at %d", i, w.StartSlot)
		}
		offered += w.Offered
		admitted += w.Admitted
		rejected += w.Rejected
		delivered += w.Delivered
	}
	if offered != rep.Offered || admitted != rep.Admitted || rejected != rep.Rejected {
		t.Errorf("window sums (%d, %d, %d) disagree with report (%d, %d, %d)",
			offered, admitted, rejected, rep.Offered, rep.Admitted, rep.Rejected)
	}
	if int64(delivered) != rep.Delivered {
		t.Errorf("windows deliver %d, report %d", delivered, rep.Delivered)
	}
}

func TestBadConfig(t *testing.T) {
	g := testGraph(t)
	good := baseConfig(g)
	reqs := testRequests(t, g, 0.1, 50, 1)
	for name, mutate := range map[string]func(*Config){
		"nil graph":     func(c *Config) { c.Graph = nil },
		"zero slots":    func(c *Config) { c.Slots = 0 },
		"zero ttl":      func(c *Config) { c.MemoryTTL = 0 },
		"floor 1":       func(c *Config) { c.MinFidelity = 1 },
		"neg fail":      func(c *Config) { c.FailProb = -0.5 },
		"fail 1":        func(c *Config) { c.FailProb = 1 },
		"unknown alg":   func(c *Config) { c.Algorithm = "nope" },
		"neg window":    func(c *Config) { c.WindowSlots = -1 },
		"bad fidelity":  func(c *Config) { c.Fid = fidelity.Model{W0: 2, Beta: 0} },
		"bad swap prob": func(c *Config) { c.Params = quantum.Params{Alpha: 1e-4, SwapProb: 2} },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg, reqs); err == nil {
			t.Errorf("%s: Run succeeded", name)
		}
	}
	bad := []sched.Request{{ID: 0, Users: g.Users()[:2], Arrival: -1, Hold: 5}}
	if _, err := Run(context.Background(), good, bad); err == nil {
		t.Error("negative arrival accepted")
	}
	bad[0] = sched.Request{ID: 0, Users: g.Users()[:2], Arrival: 1, Hold: 0}
	if _, err := Run(context.Background(), good, bad); err == nil {
		t.Error("zero hold accepted")
	}
}

func TestContextCancelAborts(t *testing.T) {
	g := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, baseConfig(g), testRequests(t, g, 0.2, 300, 3)); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}
