package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/muerp/quantumnet/internal/baseline"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/stats"
	"github.com/muerp/quantumnet/internal/topology"
)

// This file implements the ablation studies DESIGN.md calls out: each one
// isolates a design choice of an algorithm (or of our baseline
// reconstruction) and measures what it is worth on the paper's default
// workload.

// variant is one arm of an ablation: a name and a routing function that
// scores one network (0 = infeasible).
type variant struct {
	name string
	rate func(g *graph.Graph, rng *rand.Rand) (float64, error)
}

// runAblation draws cfg.Networks networks and scores every variant on each.
func runAblation(label string, cfg Config, variants []variant) (PointResult, error) {
	if cfg.Networks <= 0 {
		return PointResult{}, errors.New("sim: Networks must be positive")
	}
	point := PointResult{Label: label, Summary: make(map[string]stats.Summary, len(variants))}
	rates := make(map[string][]float64, len(variants))
	for i := 0; i < cfg.Networks; i++ {
		rng := rand.New(rand.NewSource(networkSeed(cfg.Seed, i)))
		g, err := topology.Generate(cfg.Topology, rng)
		if err != nil {
			return PointResult{}, fmt.Errorf("sim: ablation network %d: %w", i, err)
		}
		trial := TrialResult{Network: i, Rates: map[string]float64{}, Failures: map[string]string{}}
		for _, v := range variants {
			rate, err := v.rate(g, rng)
			if err != nil {
				if errors.Is(err, core.ErrInfeasible) {
					rate = 0
					trial.Failures[v.name] = err.Error()
				} else {
					return PointResult{}, fmt.Errorf("sim: ablation %s on network %d: %w", v.name, i, err)
				}
			}
			trial.Rates[v.name] = rate
			rates[v.name] = append(rates[v.name], rate)
		}
		point.Trials = append(point.Trials, trial)
	}
	for _, v := range variants {
		point.Summary[v.name] = stats.Summarize(rates[v.name])
	}
	return point, nil
}

// AblationReplayOrder compares Algorithm 3's phase-1 replay orders
// (descending = the paper's greedy rule, ascending = adversarial, random).
// The greedy rule should dominate, quantifying the "retain the channel with
// the maximum entanglement rate" decision.
func AblationReplayOrder(cfg Config) (Series, error) {
	mk := func(order core.ReplayOrder) func(*graph.Graph, *rand.Rand) (float64, error) {
		return func(g *graph.Graph, rng *rand.Rand) (float64, error) {
			prob, err := core.AllUsersProblem(g, cfg.Params)
			if err != nil {
				return 0, err
			}
			sol, err := core.SolveConflictFreeOrdered(prob, order, rng)
			if err != nil {
				return 0, err
			}
			if err := prob.Validate(sol); err != nil {
				return 0, err
			}
			return sol.Rate(), nil
		}
	}
	point, err := runAblation("replay-order", cfg, []variant{
		{name: "descending", rate: mk(core.ReplayDescending)},
		{name: "ascending", rate: mk(core.ReplayAscending)},
		{name: "random", rate: mk(core.ReplayRandom)},
	})
	if err != nil {
		return Series{}, err
	}
	return Series{
		Figure: "ablation-replay",
		Title:  "Algorithm 3 phase-1 replay order (paper rule = descending)",
		XLabel: "ablation",
		Points: []PointResult{point},
	}, nil
}

// AblationPrimStart compares Algorithm 4's random starting user against the
// best over all starts, bounding the value a smarter start could add.
func AblationPrimStart(cfg Config) (Series, error) {
	random := func(g *graph.Graph, rng *rand.Rand) (float64, error) {
		prob, err := core.AllUsersProblem(g, cfg.Params)
		if err != nil {
			return 0, err
		}
		sol, err := core.SolvePrim(prob, rng)
		if err != nil {
			return 0, err
		}
		return sol.Rate(), nil
	}
	best := func(g *graph.Graph, _ *rand.Rand) (float64, error) {
		prob, err := core.AllUsersProblem(g, cfg.Params)
		if err != nil {
			return 0, err
		}
		sol, err := core.SolvePrimBestOfAllStarts(prob)
		if err != nil {
			return 0, err
		}
		return sol.Rate(), nil
	}
	point, err := runAblation("prim-start", cfg, []variant{
		{name: "random-start", rate: random},
		{name: "best-start", rate: best},
	})
	if err != nil {
		return Series{}, err
	}
	return Series{
		Figure: "ablation-prim-start",
		Title:  "Algorithm 4 starting user: paper's random pick vs best of all starts",
		XLabel: "ablation",
		Points: []PointResult{point},
	}, nil
}

// AblationNFusionHub compares our charitable best-hub N-FUSION against
// pinning the hub to the first user, bounding how much the reconstruction
// choice flatters the baseline.
func AblationNFusionHub(cfg Config) (Series, error) {
	best := func(g *graph.Graph, _ *rand.Rand) (float64, error) {
		prob, err := core.AllUsersProblem(g, cfg.Params)
		if err != nil {
			return 0, err
		}
		sol, err := baseline.SolveNFusion(prob)
		if err != nil {
			return 0, err
		}
		return sol.Rate(), nil
	}
	fixed := func(g *graph.Graph, _ *rand.Rand) (float64, error) {
		prob, err := core.AllUsersProblem(g, cfg.Params)
		if err != nil {
			return 0, err
		}
		sol, err := baseline.SolveNFusionFixedHub(prob, prob.Users[0])
		if err != nil {
			return 0, err
		}
		return sol.Rate(), nil
	}
	point, err := runAblation("nfusion-hub", cfg, []variant{
		{name: "best-hub", rate: best},
		{name: "first-hub", rate: fixed},
	})
	if err != nil {
		return Series{}, err
	}
	return Series{
		Figure: "ablation-nfusion-hub",
		Title:  "N-FUSION hub selection: best user vs first user",
		XLabel: "ablation",
		Points: []PointResult{point},
	}, nil
}

// AblationWaxmanAlpha sweeps the Waxman locality parameter, showing how the
// generator's distance bias (not part of the paper's sweep) moves absolute
// rates: larger alpha = longer fibers = lower rates across the board.
func AblationWaxmanAlpha(cfg Config, alphas []float64) (Series, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.1, 0.2, 0.4, 0.8}
	}
	s := Series{
		Figure: "ablation-waxman-alpha",
		Title:  "Waxman locality parameter vs entanglement rate",
		XLabel: "waxman alpha",
	}
	for _, a := range alphas {
		c := cfg
		c.Topology.WaxmanAlpha = a
		c.Topology.Model = topology.Waxman
		point, err := RunPoint(fmt.Sprintf("alpha=%g", a), a, c)
		if err != nil {
			return Series{}, fmt.Errorf("waxman alpha %g: %w", a, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// AllAblations runs every ablation study.
func AllAblations(cfg Config) ([]Series, error) {
	type gen struct {
		name string
		run  func() (Series, error)
	}
	gens := []gen{
		{"replay", func() (Series, error) { return AblationReplayOrder(cfg) }},
		{"prim-start", func() (Series, error) { return AblationPrimStart(cfg) }},
		{"nfusion-hub", func() (Series, error) { return AblationNFusionHub(cfg) }},
		{"waxman-alpha", func() (Series, error) { return AblationWaxmanAlpha(cfg, nil) }},
	}
	out := make([]Series, 0, len(gens))
	for _, g := range gens {
		s, err := g.run()
		if err != nil {
			return nil, fmt.Errorf("sim: ablation %s: %w", g.name, err)
		}
		out = append(out, s)
	}
	return out, nil
}
