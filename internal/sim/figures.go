package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/stats"
	"github.com/muerp/quantumnet/internal/topology"
)

// Series is one figure's worth of results: a sweep of PointResults.
type Series struct {
	// Figure identifies the paper figure being regenerated ("fig5", ...).
	Figure string
	// Title is a human-readable description.
	Title string
	// XLabel names the sweep variable.
	XLabel string
	Points []PointResult
}

// Fig5 regenerates Fig. 5: entanglement rate vs. network topology, running
// the full algorithm suite on Waxman, Watts-Strogatz and Volchenkov
// networks at the default parameters.
func Fig5(cfg Config) (Series, error) {
	s := Series{Figure: "fig5", Title: "Entanglement rate vs. network topology", XLabel: "topology"}
	for i, model := range []topology.Model{topology.Waxman, topology.WattsStrogatz, topology.Volchenkov} {
		c := cfg
		c.Topology.Model = model
		point, err := RunPoint(model.String(), float64(i), c)
		if err != nil {
			return Series{}, fmt.Errorf("fig5 %s: %w", model, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// Fig6aUsers regenerates Fig. 6a: entanglement rate vs. the number of users
// to entangle.
func Fig6aUsers(cfg Config, userCounts []int) (Series, error) {
	if len(userCounts) == 0 {
		userCounts = []int{4, 6, 8, 10, 12, 14}
	}
	s := Series{Figure: "fig6a", Title: "Entanglement rate vs. number of users", XLabel: "users"}
	for _, n := range userCounts {
		c := cfg
		c.Topology.Users = n
		point, err := RunPoint(fmt.Sprintf("users=%d", n), float64(n), c)
		if err != nil {
			return Series{}, fmt.Errorf("fig6a users=%d: %w", n, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// Fig6bSwitches regenerates Fig. 6b: entanglement rate vs. the number of
// switches in the network.
func Fig6bSwitches(cfg Config, switchCounts []int) (Series, error) {
	if len(switchCounts) == 0 {
		switchCounts = []int{20, 30, 40, 50}
	}
	s := Series{Figure: "fig6b", Title: "Entanglement rate vs. number of switches", XLabel: "switches"}
	for _, n := range switchCounts {
		c := cfg
		c.Topology.Switches = n
		point, err := RunPoint(fmt.Sprintf("switches=%d", n), float64(n), c)
		if err != nil {
			return Series{}, fmt.Errorf("fig6b switches=%d: %w", n, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// Fig7aDegree regenerates Fig. 7a: entanglement rate vs. the average node
// degree.
func Fig7aDegree(cfg Config, degrees []float64) (Series, error) {
	if len(degrees) == 0 {
		degrees = []float64{4, 6, 8, 10}
	}
	s := Series{Figure: "fig7a", Title: "Entanglement rate vs. average degree", XLabel: "degree"}
	for _, d := range degrees {
		c := cfg
		c.Topology.AvgDegree = d
		point, err := RunPoint(fmt.Sprintf("degree=%g", d), d, c)
		if err != nil {
			return Series{}, fmt.Errorf("fig7a degree=%g: %w", d, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// Fig7bRemoval regenerates Fig. 7b: entanglement rate vs. the ratio of
// randomly removed fibers. Per the paper: 10 users, 50 switches, 600
// fibers, 4 qubits per switch; remove 30 random fibers per step,
// cumulatively, until no algorithm can entangle the users. Each of the
// cfg.Networks networks follows its own removal sequence; results are
// averaged per removal ratio.
func Fig7bRemoval(cfg Config, step int) (Series, error) {
	if step <= 0 {
		step = 30
	}
	c := cfg
	c.Topology.ExactEdges = 600
	c.Topology.EnsureConnected = true

	algs := c.Algorithms
	if len(algs) == 0 {
		algs = AllAlgorithms()
	}
	if c.Networks <= 0 {
		return Series{}, errors.New("sim: Networks must be positive")
	}

	// ratesByStep[step][alg] accumulates rates across networks.
	var ratesByStep []map[string][]float64
	ensureStep := func(i int) map[string][]float64 {
		for len(ratesByStep) <= i {
			ratesByStep = append(ratesByStep, make(map[string][]float64, len(algs)))
		}
		return ratesByStep[i]
	}

	totalEdges := 600
	for n := 0; n < c.Networks; n++ {
		rng := rand.New(rand.NewSource(networkSeed(c.Seed, n)))
		g, err := topology.Generate(c.Topology, rng)
		if err != nil {
			return Series{}, fmt.Errorf("fig7b network %d: %w", n, err)
		}
		for stepIdx := 0; ; stepIdx++ {
			bucket := ensureStep(stepIdx)
			trial, err := runTrial(g, c, algs, rng)
			if err != nil {
				return Series{}, fmt.Errorf("fig7b network %d step %d: %w", n, stepIdx, err)
			}
			allZero := true
			for _, a := range algs {
				bucket[a] = append(bucket[a], trial.Rates[a])
				if trial.Rates[a] > 0 {
					allZero = false
				}
			}
			if allZero || g.NumEdges() == 0 {
				break
			}
			g = removeRandomEdges(g, step, rng)
		}
	}

	s := Series{Figure: "fig7b", Title: "Entanglement rate vs. removed-fiber ratio", XLabel: "removed ratio"}
	for i, bucket := range ratesByStep {
		ratio := float64(i*step) / float64(totalEdges)
		point := PointResult{
			Label:   fmt.Sprintf("removed=%.2f", ratio),
			X:       ratio,
			Summary: make(map[string]stats.Summary, len(algs)),
		}
		for _, a := range algs {
			// Networks that already died at an earlier step no longer
			// contribute trials here; score the missing entries as 0 so
			// every step averages over the full batch, as the figure does.
			xs := bucket[a]
			for len(xs) < c.Networks {
				xs = append(xs, 0)
			}
			point.Summary[a] = stats.Summarize(xs)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// removeRandomEdges returns a copy of g with n uniformly random fibers
// removed (all of them when fewer than n remain).
func removeRandomEdges(g *graph.Graph, n int, rng *rand.Rand) *graph.Graph {
	m := g.NumEdges()
	if n >= m {
		all := make([]graph.EdgeID, m)
		for i := range all {
			all[i] = graph.EdgeID(i)
		}
		return g.WithoutEdges(all)
	}
	perm := rng.Perm(m)
	remove := make([]graph.EdgeID, n)
	for i := 0; i < n; i++ {
		remove[i] = graph.EdgeID(perm[i])
	}
	return g.WithoutEdges(remove)
}

// Fig8aQubits regenerates Fig. 8a: entanglement rate vs. the number of
// qubits per switch. Algorithm 2 keeps its sufficient-capacity switches
// (2|U| qubits) at every point, as the paper states.
func Fig8aQubits(cfg Config, qubitCounts []int) (Series, error) {
	if len(qubitCounts) == 0 {
		qubitCounts = []int{2, 4, 6, 8}
	}
	s := Series{Figure: "fig8a", Title: "Entanglement rate vs. qubits per switch", XLabel: "qubits"}
	for _, q := range qubitCounts {
		c := cfg
		c.Topology.SwitchQubits = q
		point, err := RunPoint(fmt.Sprintf("qubits=%d", q), float64(q), c)
		if err != nil {
			return Series{}, fmt.Errorf("fig8a qubits=%d: %w", q, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// Fig8bSwapRate regenerates Fig. 8b: entanglement rate vs. the BSM swap
// success probability q.
func Fig8bSwapRate(cfg Config, qs []float64) (Series, error) {
	if len(qs) == 0 {
		qs = []float64{0.7, 0.8, 0.9, 1.0}
	}
	s := Series{Figure: "fig8b", Title: "Entanglement rate vs. swap success rate", XLabel: "swap rate"}
	for _, q := range qs {
		c := cfg
		c.Params.SwapProb = q
		point, err := RunPoint(fmt.Sprintf("q=%.2f", q), q, c)
		if err != nil {
			return Series{}, fmt.Errorf("fig8b q=%g: %w", q, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// AllFigures regenerates every figure of the paper's evaluation with the
// given base configuration.
func AllFigures(cfg Config) ([]Series, error) {
	type gen struct {
		name string
		run  func() (Series, error)
	}
	gens := []gen{
		{"fig5", func() (Series, error) { return Fig5(cfg) }},
		{"fig6a", func() (Series, error) { return Fig6aUsers(cfg, nil) }},
		{"fig6b", func() (Series, error) { return Fig6bSwitches(cfg, nil) }},
		{"fig7a", func() (Series, error) { return Fig7aDegree(cfg, nil) }},
		{"fig7b", func() (Series, error) { return Fig7bRemoval(cfg, 30) }},
		{"fig8a", func() (Series, error) { return Fig8aQubits(cfg, nil) }},
		{"fig8b", func() (Series, error) { return Fig8bSwapRate(cfg, nil) }},
	}
	out := make([]Series, 0, len(gens))
	for _, g := range gens {
		s, err := g.run()
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", g.name, err)
		}
		out = append(out, s)
	}
	return out, nil
}
