package sim

import (
	"strings"
	"testing"
)

func TestOptimalityGaps(t *testing.T) {
	cfg := DefaultGapConfig()
	cfg.Instances = 8
	s, err := OptimalityGaps(cfg)
	if err != nil {
		t.Fatalf("OptimalityGaps: %v", err)
	}
	if len(s.Points) != len(cfg.Qubits) {
		t.Fatalf("%d points for %d budgets", len(s.Points), len(cfg.Qubits))
	}
	for _, p := range s.Points {
		for _, alg := range []string{"alg3", "alg4", "eqcast", "nfusion"} {
			sum, ok := p.Summary[alg]
			if !ok {
				t.Fatalf("%s: missing %s", p.Label, alg)
			}
			if sum.N == 0 {
				continue // all instances skipped at this point
			}
			if sum.Mean < 0 || sum.Max > 1+1e-9 {
				t.Fatalf("%s %s: gaps outside [0,1]: %+v", p.Label, alg, sum)
			}
		}
		// The proposed heuristics must clearly beat the baselines in
		// solution quality.
		if p.Summary["alg3"].N > 0 && p.Summary["alg3"].Mean <= p.Summary["eqcast"].Mean {
			t.Errorf("%s: alg3 gap %g not above eqcast %g",
				p.Label, p.Summary["alg3"].Mean, p.Summary["eqcast"].Mean)
		}
	}
	// Renders like any other series.
	if out := s.Table(); !strings.Contains(out, "gaps") {
		t.Errorf("table rendering broken:\n%s", out)
	}
}

func TestOptimalityGapsNearOptimalHeuristics(t *testing.T) {
	// At ample capacity, alg3's mean gap should be essentially 1 (Theorem 3
	// territory); under tight capacity it stays high.
	cfg := DefaultGapConfig()
	cfg.Instances = 10
	s, err := OptimalityGaps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := s.Points[len(s.Points)-1] // largest budget
	if sum := last.Summary["alg3"]; sum.N > 0 && sum.Mean < 0.99 {
		t.Errorf("alg3 mean gap %g at ample capacity, want ~1", sum.Mean)
	}
	first := s.Points[0] // tightest budget
	if sum := first.Summary["alg3"]; sum.N > 0 && sum.Mean < 0.7 {
		t.Errorf("alg3 mean gap %g under tight capacity, unexpectedly poor", sum.Mean)
	}
}

func TestOptimalityGapsRejects(t *testing.T) {
	cfg := DefaultGapConfig()
	cfg.Instances = 0
	if _, err := OptimalityGaps(cfg); err == nil {
		t.Fatal("zero instances accepted")
	}
}
