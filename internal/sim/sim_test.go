package sim

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/muerp/quantumnet/internal/topology"
)

// quickConfig returns a small, fast experiment configuration.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Networks = 3
	cfg.Topology.Switches = 15
	cfg.Topology.Users = 5
	return cfg
}

func TestRunPointBasics(t *testing.T) {
	cfg := quickConfig()
	point, err := RunPoint("default", 0, cfg)
	if err != nil {
		t.Fatalf("RunPoint: %v", err)
	}
	if len(point.Trials) != cfg.Networks {
		t.Fatalf("%d trials, want %d", len(point.Trials), cfg.Networks)
	}
	for _, alg := range AllAlgorithms() {
		sum, ok := point.Summary[alg]
		if !ok {
			t.Fatalf("missing summary for %s", alg)
		}
		if sum.N != cfg.Networks {
			t.Fatalf("%s summarized %d trials, want %d", alg, sum.N, cfg.Networks)
		}
		if sum.Mean < 0 || sum.Mean > 1 {
			t.Fatalf("%s mean rate %g outside [0,1]", alg, sum.Mean)
		}
	}
}

func TestRunPointDeterministicBySeed(t *testing.T) {
	cfg := quickConfig()
	a, err := RunPoint("a", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPoint("b", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range AllAlgorithms() {
		if a.Summary[alg].Mean != b.Summary[alg].Mean {
			t.Fatalf("%s: same seed, different means %g vs %g", alg, a.Summary[alg].Mean, b.Summary[alg].Mean)
		}
	}
	cfg.Seed = 999
	c, err := RunPoint("c", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	different := false
	for _, alg := range AllAlgorithms() {
		if a.Summary[alg].Mean != c.Summary[alg].Mean {
			different = true
		}
	}
	if !different {
		t.Fatal("changing the seed changed nothing")
	}
}

func TestRunPointAlgorithmOrdering(t *testing.T) {
	// The paper's headline ordering on its default topology: the proposed
	// algorithms beat both baselines, and alg2 (sufficient capacity) is the
	// best of all.
	cfg := DefaultConfig()
	cfg.Networks = 8
	point, err := RunPoint("order", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alg2 := point.MeanRate(AlgOptimal)
	alg3 := point.MeanRate(AlgConflictFree)
	alg4 := point.MeanRate(AlgPrim)
	eq := point.MeanRate(AlgEQCast)
	nf := point.MeanRate(AlgNFusion)
	if !(alg2 >= alg3 && alg2 >= alg4) {
		t.Errorf("alg2 %g not the best of the proposed (%g, %g)", alg2, alg3, alg4)
	}
	for name, rate := range map[string]float64{"eqcast": eq, "nfusion": nf} {
		if alg3 <= rate || alg4 <= rate {
			t.Errorf("baseline %s (%g) not beaten by alg3 %g / alg4 %g", name, rate, alg3, alg4)
		}
	}
}

func TestRunPointSelectedAlgorithms(t *testing.T) {
	cfg := quickConfig()
	cfg.Algorithms = []string{AlgConflictFree}
	point, err := RunPoint("subset", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(point.Summary) != 1 {
		t.Fatalf("summaries for %d algorithms, want 1", len(point.Summary))
	}
}

func TestRunPointRejects(t *testing.T) {
	cfg := quickConfig()
	cfg.Networks = 0
	if _, err := RunPoint("bad", 0, cfg); err == nil {
		t.Fatal("zero networks accepted")
	}
	cfg = quickConfig()
	cfg.Algorithms = []string{"nonsense"}
	if _, err := RunPoint("bad", 0, cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	cfg = quickConfig()
	cfg.Topology.Users = 0
	if _, err := RunPoint("bad", 0, cfg); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestSolveOnBoostsOnlyAlg2(t *testing.T) {
	cfg := quickConfig()
	rng := rand.New(rand.NewSource(networkSeed(cfg.Seed, 0)))
	g, err := topology.Generate(cfg.Topology, rng)
	if err != nil {
		t.Fatal(err)
	}
	// alg2 runs on a boosted copy: the original graph is untouched.
	before := g.Node(g.Switches()[0]).Qubits
	sol, prob, err := SolveOn(g, AlgOptimal, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node(g.Switches()[0]).Qubits != before {
		t.Fatal("SolveOn mutated the input graph")
	}
	if prob.Graph == g {
		t.Fatal("alg2 should have solved on a boosted copy")
	}
	if err := prob.Validate(sol); err != nil {
		t.Fatal(err)
	}
	// alg3 solves the raw graph.
	_, prob3, err := SolveOn(g, AlgConflictFree, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if prob3.Graph != g {
		t.Fatal("alg3 should solve the original graph")
	}
}

func TestFigureDriversSmall(t *testing.T) {
	cfg := quickConfig()
	cfg.Networks = 2
	tests := []struct {
		name   string
		run    func() (Series, error)
		points int
	}{
		{"fig5", func() (Series, error) { return Fig5(cfg) }, 3},
		{"fig6a", func() (Series, error) { return Fig6aUsers(cfg, []int{3, 5}) }, 2},
		{"fig6b", func() (Series, error) { return Fig6bSwitches(cfg, []int{10, 15}) }, 2},
		{"fig7a", func() (Series, error) { return Fig7aDegree(cfg, []float64{4, 6}) }, 2},
		{"fig8a", func() (Series, error) { return Fig8aQubits(cfg, []int{2, 4}) }, 2},
		{"fig8b", func() (Series, error) { return Fig8bSwapRate(cfg, []float64{0.8, 0.9}) }, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.run()
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if len(s.Points) != tc.points {
				t.Fatalf("%s has %d points, want %d", tc.name, len(s.Points), tc.points)
			}
			if s.Figure != tc.name {
				t.Errorf("Figure = %q, want %q", s.Figure, tc.name)
			}
		})
	}
}

func TestFig7bRemoval(t *testing.T) {
	cfg := quickConfig()
	cfg.Networks = 2
	// Default topology shape for the removal experiment is pinned inside
	// the driver (600 fibers); use a big step for speed.
	s, err := Fig7bRemoval(cfg, 200)
	if err != nil {
		t.Fatalf("Fig7bRemoval: %v", err)
	}
	if len(s.Points) < 2 {
		t.Fatalf("removal sweep has %d points, want >= 2", len(s.Points))
	}
	if s.Points[0].X != 0 {
		t.Fatalf("first removal ratio = %g, want 0", s.Points[0].X)
	}
	// The last recorded step must have every algorithm at rate 0 for at
	// least one network (the termination condition), and overall mean
	// rates must not increase from full graph to fully broken.
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	for _, alg := range AllAlgorithms() {
		if last.Summary[alg].Mean > first.Summary[alg].Mean {
			t.Errorf("%s: mean rate rose from %g to %g as fibers were removed",
				alg, first.Summary[alg].Mean, last.Summary[alg].Mean)
		}
	}
}

func TestSeriesTableAndCSV(t *testing.T) {
	cfg := quickConfig()
	s, err := Fig8bSwapRate(cfg, []float64{0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	table := s.Table()
	for _, want := range []string{"fig8b", "alg2", "nfusion", "q=0.80"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	var buf strings.Builder
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	csv := buf.String()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "figure,label,x,alg2_mean") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
}

func TestImprovementOver(t *testing.T) {
	cfg := quickConfig()
	cfg.Networks = 4
	s, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratios := s.ImprovementOver(AlgConflictFree, AlgNFusion)
	if len(ratios) != len(s.Points) {
		t.Fatalf("%d ratios for %d points", len(ratios), len(s.Points))
	}
	max := s.MaxImprovementOver(AlgConflictFree, AlgNFusion)
	for _, r := range ratios {
		if r > max {
			t.Fatalf("ratio %g exceeds reported max %g", r, max)
		}
	}
	if max <= 1 {
		t.Errorf("alg3 shows no improvement over n-fusion (max ratio %g)", max)
	}
}

func TestEmptySeriesRendering(t *testing.T) {
	s := Series{Figure: "empty"}
	if got := s.Table(); !strings.Contains(got, "no data") {
		t.Errorf("empty table = %q", got)
	}
	var buf strings.Builder
	if err := s.WriteCSV(&buf); err == nil {
		t.Error("empty CSV write succeeded")
	}
}
