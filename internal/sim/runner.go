// Package sim is the experiment harness that regenerates the paper's
// evaluation (§V): it draws batches of random networks, runs the three
// proposed algorithms and the two baselines on each, validates every
// solution, and aggregates entanglement rates per the paper's protocol
// (average over 20 random networks; infeasible runs score 0).
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/solver"
	"github.com/muerp/quantumnet/internal/stats"
	"github.com/muerp/quantumnet/internal/topology"
)

// Algorithm names, in the paper's plotting order.
const (
	AlgOptimal      = "alg2"
	AlgConflictFree = "alg3"
	AlgPrim         = "alg4"
	AlgEQCast       = "eqcast"
	AlgNFusion      = "nfusion"
)

// AllAlgorithms lists the paper's evaluated routing schemes in plot order,
// derived from the solver registry (the single source of truth for
// algorithm ordering).
func AllAlgorithms() []string {
	entries := solver.Defaults()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// Config parameterizes one experiment point: a topology distribution, the
// physical parameters, and how many independent networks to average over.
type Config struct {
	Topology topology.Config
	Params   quantum.Params
	// Networks is the number of random networks per point; the paper
	// uses 20.
	Networks int
	// Seed makes the batch reproducible; network i uses a deterministic
	// stream derived from Seed and i.
	Seed int64
	// Algorithms selects the schemes to run (defaults to AllAlgorithms).
	Algorithms []string
	// SufficientCapacityForAlg2 runs sufficient-capacity schemes (Algorithm
	// 2; solver.Entry.NeedsSufficientCapacity) on a copy of each network
	// whose switches hold max(Q, 2|U|) qubits, the convention the paper
	// states for its plots ("the switches in Algorithm 2 ha[ve] 2|U| = 20
	// qubits"). Algorithm 2 is only defined under that condition; disabling
	// this runs it raw, where its tree may violate capacity.
	SufficientCapacityForAlg2 bool
	// Parallelism bounds how many networks of a batch run concurrently.
	// Values < 2 run sequentially. Results are identical either way: every
	// network draws from its own seed-derived stream.
	Parallelism int
}

// DefaultConfig returns the paper's §V-A experiment defaults. Batches run
// with one worker per available CPU, matching cmd/experiments' -parallel
// default; results are seed-deterministic regardless (set Parallelism to 1
// to force sequential runs).
func DefaultConfig() Config {
	return Config{
		Topology:                  topology.Default(),
		Params:                    quantum.DefaultParams(),
		Networks:                  20,
		Seed:                      1,
		Algorithms:                AllAlgorithms(),
		SufficientCapacityForAlg2: true,
		Parallelism:               runtime.GOMAXPROCS(0),
	}
}

// TrialResult records one network's outcome across algorithms.
type TrialResult struct {
	Network int
	// Rates maps algorithm name to the achieved multi-user entanglement
	// rate; 0 means the scheme found no feasible tree on this network.
	Rates map[string]float64
	// Failures maps algorithm name to the infeasibility reason, when any.
	Failures map[string]string
	// Work maps algorithm name to the solve's work counters (Dijkstra runs,
	// edges relaxed, pool traffic, channels, reservations).
	Work map[string]core.SolveStats
}

// PointResult aggregates all trials at one sweep point.
type PointResult struct {
	// Label names the point (e.g. "waxman" or "users=10").
	Label string
	// X is the numeric sweep coordinate where the sweep is numeric.
	X float64
	// Summary maps algorithm name to the distribution of its rates over
	// the batch (zeros included, as in the paper).
	Summary map[string]stats.Summary
	// Work maps algorithm name to its work counters summed over the batch.
	Work   map[string]core.SolveStats
	Trials []TrialResult
}

// MeanRate returns the batch-average rate of an algorithm at this point.
func (p PointResult) MeanRate(alg string) float64 { return p.Summary[alg].Mean }

// networkSeed derives the per-network RNG seed. The multiplier is an odd
// 64-bit constant (splitmix64's increment) so consecutive networks get
// well-separated streams.
func networkSeed(seed int64, i int) int64 {
	return seed + int64(i)*-7046029254386353131
}

// RunPoint draws cfg.Networks networks and runs every configured algorithm
// on each, validating all solutions against the problem they solved.
func RunPoint(label string, x float64, cfg Config) (PointResult, error) {
	if cfg.Networks <= 0 {
		return PointResult{}, errors.New("sim: Networks must be positive")
	}
	algs := cfg.Algorithms
	if len(algs) == 0 {
		algs = AllAlgorithms()
	}
	point := PointResult{
		Label:   label,
		X:       x,
		Summary: make(map[string]stats.Summary, len(algs)),
		Work:    make(map[string]core.SolveStats, len(algs)),
	}
	trials, err := runBatch(cfg, algs)
	if err != nil {
		return PointResult{}, err
	}
	point.Trials = trials
	rates := make(map[string][]float64, len(algs))
	for _, trial := range trials {
		for _, a := range algs {
			rates[a] = append(rates[a], trial.Rates[a])
			work := point.Work[a]
			trialWork := trial.Work[a]
			work.Merge(&trialWork)
			point.Work[a] = work
		}
	}
	for _, a := range algs {
		point.Summary[a] = stats.Summarize(rates[a])
	}
	return point, nil
}

// runBatch executes one network trial per batch slot, sequentially or on a
// bounded worker pool, returning trials in network order either way.
func runBatch(cfg Config, algs []string) ([]TrialResult, error) {
	one := func(i int) (TrialResult, error) {
		rng := rand.New(rand.NewSource(networkSeed(cfg.Seed, i)))
		g, err := topology.Generate(cfg.Topology, rng)
		if err != nil {
			return TrialResult{}, fmt.Errorf("sim: network %d: %w", i, err)
		}
		trial, err := runTrial(g, cfg, algs, rng)
		if err != nil {
			return TrialResult{}, fmt.Errorf("sim: network %d: %w", i, err)
		}
		trial.Network = i
		return trial, nil
	}

	trials := make([]TrialResult, cfg.Networks)
	if cfg.Parallelism < 2 {
		for i := range trials {
			trial, err := one(i)
			if err != nil {
				return nil, err
			}
			trials[i] = trial
		}
		return trials, nil
	}

	sem := make(chan struct{}, cfg.Parallelism)
	errs := make([]error, cfg.Networks)
	var wg sync.WaitGroup
	for i := range trials {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			trials[i], errs[i] = one(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return trials, nil
}

// runTrial runs every algorithm on one concrete network, resolving each
// through the solver registry. rng drives the only stochastic choice inside
// the evaluated algorithms (Algorithm 4's starting user) and is handed only
// to entries that declare ConsumesRNG, so the per-trial stream is consumed
// identically regardless of which deterministic schemes also run.
//
// Problems are built once per trial and shared across the algorithms that
// solve the same network view — one for the raw network and, when needed,
// one for the sufficient-capacity copy — so the pooled search engine
// (precomputed edge weights, Dijkstra scratch) is amortized over every
// solver in the trial instead of being rebuilt per algorithm.
func runTrial(g *graph.Graph, cfg Config, algs []string, rng *rand.Rand) (TrialResult, error) {
	trial := TrialResult{
		Rates:    make(map[string]float64, len(algs)),
		Failures: make(map[string]string, len(algs)),
		Work:     make(map[string]core.SolveStats, len(algs)),
	}
	probs := make(map[string]*core.Problem, 2)
	problem := func(e solver.Entry) (*core.Problem, error) {
		key := "base"
		if e.NeedsSufficientCapacity && cfg.SufficientCapacityForAlg2 {
			key = "sufficient"
		}
		if p, ok := probs[key]; ok {
			return p, nil
		}
		p, err := problemForEntry(g, e, cfg)
		if err != nil {
			return nil, err
		}
		probs[key] = p
		return p, nil
	}
	ctx := context.Background()
	for _, a := range algs {
		entry, err := solver.Get(a)
		if err != nil {
			return TrialResult{}, fmt.Errorf("sim: %w", err)
		}
		prob, err := problem(entry)
		if err != nil {
			return TrialResult{}, fmt.Errorf("algorithm %s: %w", a, err)
		}
		var work core.SolveStats
		opts := &core.SolveOptions{Stats: &work}
		if entry.ConsumesRNG {
			opts.RNG = rng
		}
		sol, err := entry.Solve(ctx, prob, opts)
		trial.Work[a] = work.Snapshot()
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				trial.Rates[a] = 0
				trial.Failures[a] = err.Error()
				continue
			}
			return TrialResult{}, fmt.Errorf("algorithm %s: %w", a, err)
		}
		if err := prob.Validate(sol); err != nil {
			return TrialResult{}, fmt.Errorf("algorithm %s produced an invalid tree: %w", a, err)
		}
		trial.Rates[a] = sol.Rate()
	}
	return trial, nil
}

// problemForEntry builds the problem instance a registered scheme solves on
// g under the experiment conventions: schemes that need the paper's
// sufficient-capacity condition get a copy with switches raised to 2|U|
// qubits when cfg.SufficientCapacityForAlg2 is set, everything else solves
// g as drawn.
func problemForEntry(g *graph.Graph, e solver.Entry, cfg Config) (*core.Problem, error) {
	target := g
	if e.NeedsSufficientCapacity && cfg.SufficientCapacityForAlg2 {
		need := 2 * len(g.Users())
		boosted := false
		for _, s := range g.Switches() {
			if g.Node(s).Qubits < need {
				boosted = true
				break
			}
		}
		if boosted {
			target = g.Clone()
			for _, s := range target.Switches() {
				if q := target.Node(s).Qubits; q < need {
					target.SetQubits(s, need)
				}
			}
		}
	}
	return core.AllUsersProblem(target, cfg.Params)
}

// SolveOn runs one named algorithm on a concrete network under the
// experiment conventions (the sufficient-capacity copy for schemes that
// need it, the per-call rng for schemes that consume randomness). It
// returns the solution together with the exact problem instance it solved,
// so callers can validate or inspect.
func SolveOn(g *graph.Graph, alg string, cfg Config, rng *rand.Rand) (*core.Solution, *core.Problem, error) {
	entry, err := solver.Get(alg)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	prob, err := problemForEntry(g, entry, cfg)
	if err != nil {
		return nil, nil, err
	}
	opts := &core.SolveOptions{}
	if entry.ConsumesRNG {
		opts.RNG = rng
	}
	sol, err := entry.Solve(context.Background(), prob, opts)
	if err != nil {
		return nil, nil, err
	}
	return sol, prob, nil
}

// sortedAlgorithms returns the point's algorithm names in canonical plot
// order (the registry's), restricted to those present.
func sortedAlgorithms(p PointResult) []string {
	var algs []string
	for a := range p.Summary {
		algs = append(algs, a)
	}
	solver.SortCanonical(algs)
	return algs
}
