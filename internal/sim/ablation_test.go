package sim

import "testing"

func ablationConfig() Config {
	cfg := DefaultConfig()
	cfg.Networks = 4
	cfg.Topology.Users = 6
	cfg.Topology.Switches = 18
	cfg.Topology.SwitchQubits = 2 // tight capacity so orders actually differ
	return cfg
}

func TestAblationReplayOrder(t *testing.T) {
	s, err := AblationReplayOrder(ablationConfig())
	if err != nil {
		t.Fatalf("AblationReplayOrder: %v", err)
	}
	if len(s.Points) != 1 {
		t.Fatalf("%d points, want 1", len(s.Points))
	}
	sum := s.Points[0].Summary
	for _, name := range []string{"descending", "ascending", "random"} {
		if _, ok := sum[name]; !ok {
			t.Fatalf("missing variant %q", name)
		}
	}
	// The paper's greedy (descending) rule should not lose decisively to
	// the adversarial ascending order. The gap is small in expectation —
	// phase 2 repairs most of what a bad replay order breaks — so allow a
	// few percent of sampling noise at this batch size.
	if sum["descending"].Mean < sum["ascending"].Mean*0.92 {
		t.Errorf("descending mean %g well below ascending %g — greedy rule refuted?",
			sum["descending"].Mean, sum["ascending"].Mean)
	}
}

func TestAblationPrimStart(t *testing.T) {
	s, err := AblationPrimStart(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Points[0].Summary
	if sum["best-start"].Mean < sum["random-start"].Mean-1e-12 {
		t.Errorf("best-start mean %g below random-start %g",
			sum["best-start"].Mean, sum["random-start"].Mean)
	}
}

func TestAblationNFusionHub(t *testing.T) {
	s, err := AblationNFusionHub(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Points[0].Summary
	if sum["best-hub"].Mean < sum["first-hub"].Mean-1e-12 {
		t.Errorf("best-hub mean %g below first-hub %g",
			sum["best-hub"].Mean, sum["first-hub"].Mean)
	}
}

func TestAblationWaxmanAlpha(t *testing.T) {
	cfg := ablationConfig()
	cfg.Topology.SwitchQubits = 4
	s, err := AblationWaxmanAlpha(cfg, []float64{0.1, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("%d points, want 2", len(s.Points))
	}
	// More locality bias (smaller alpha) means shorter fibers and higher
	// rates for the capacity-aware algorithms.
	lo, hi := s.Points[0], s.Points[1]
	if lo.Summary[AlgConflictFree].Mean <= hi.Summary[AlgConflictFree].Mean {
		t.Errorf("alpha=0.1 alg3 mean %g not above alpha=0.8 mean %g",
			lo.Summary[AlgConflictFree].Mean, hi.Summary[AlgConflictFree].Mean)
	}
}

func TestAllAblations(t *testing.T) {
	cfg := ablationConfig()
	cfg.Networks = 2
	series, err := AllAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4", len(series))
	}
	for _, s := range series {
		if s.Table() == "" {
			t.Errorf("series %s renders empty", s.Figure)
		}
	}
}

func TestRunAblationRejectsZeroNetworks(t *testing.T) {
	cfg := ablationConfig()
	cfg.Networks = 0
	if _, err := AblationReplayOrder(cfg); err == nil {
		t.Fatal("zero networks accepted")
	}
}
