package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/exact"
	"github.com/muerp/quantumnet/internal/solver"
	"github.com/muerp/quantumnet/internal/stats"
	"github.com/muerp/quantumnet/internal/topology"
)

// This file measures the heuristics' optimality gap: on instances small
// enough for the exact branch-and-bound solver, what fraction of the true
// optimum does each scheme achieve? The paper proves Algorithm 2 optimal
// only under sufficient capacity and gives no quality guarantee for
// Algorithms 3/4 — this study quantifies them empirically.

// GapConfig parameterizes the gap study.
type GapConfig struct {
	// Instances is the number of random small networks per point.
	Instances int
	// Users and Switches size the instances (keep them small: the exact
	// search is exponential).
	Users    int
	Switches int
	// Qubits lists the per-switch budgets to sweep (capacity pressure).
	Qubits []int
	// Seed drives instance generation.
	Seed int64
	// Limits bound the exact search; instances that exceed them are
	// skipped (counted per point).
	Limits exact.Limits
}

// DefaultGapConfig returns a study of 30 instances per point on 4-user,
// 7-switch networks across tight-to-ample budgets.
func DefaultGapConfig() GapConfig {
	return GapConfig{
		Instances: 30,
		Users:     4,
		Switches:  7,
		Qubits:    []int{2, 4, 8},
		Seed:      1,
		Limits:    exact.DefaultLimits(),
	}
}

// gapSolvers are the schemes whose quality is measured, resolved through
// the solver registry. Algorithm 2 is excluded: it is only defined under
// sufficient capacity, where Theorem 3 already proves it optimal. Algorithm
// 4 runs without an RNG, i.e. deterministically from the first user.
func gapSolvers() []core.Solver {
	names := []string{AlgConflictFree, AlgPrim, AlgEQCast, AlgNFusion}
	out := make([]core.Solver, 0, len(names))
	for _, n := range names {
		e, err := solver.Get(n)
		if err != nil {
			panic(err) // built-in names; unreachable
		}
		out = append(out, e.Solver())
	}
	return out
}

// OptimalityGaps runs the study and returns one Series point per qubit
// budget; each algorithm's summary is over its per-instance gap (achieved
// rate / exact optimum, 0 when the heuristic failed on a feasible
// instance). Instances that are infeasible even for the exact solver, or
// that exceed the search limits, are skipped.
func OptimalityGaps(cfg GapConfig) (Series, error) {
	if cfg.Instances <= 0 {
		return Series{}, errors.New("sim: gap study needs positive Instances")
	}
	if len(cfg.Qubits) == 0 {
		cfg.Qubits = DefaultGapConfig().Qubits
	}
	s := Series{
		Figure: "gaps",
		Title:  "Heuristic optimality gap vs exact optimum (small instances)",
		XLabel: "qubits",
	}
	for _, q := range cfg.Qubits {
		point, err := gapPoint(cfg, q)
		if err != nil {
			return Series{}, fmt.Errorf("sim: gap study qubits=%d: %w", q, err)
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

func gapPoint(cfg GapConfig, qubits int) (PointResult, error) {
	topo := topology.Default()
	topo.Users = cfg.Users
	topo.Switches = cfg.Switches
	topo.SwitchQubits = qubits

	solvers := gapSolvers()
	gaps := make(map[string][]float64, len(solvers))
	skipped := 0
	for i := 0; i < cfg.Instances; i++ {
		rng := rand.New(rand.NewSource(networkSeed(cfg.Seed, i)))
		g, err := topology.Generate(topo, rng)
		if err != nil {
			return PointResult{}, err
		}
		prob, err := core.AllUsersProblem(g, DefaultConfig().Params)
		if err != nil {
			return PointResult{}, err
		}
		opt, err := exact.Solve(context.Background(), prob, cfg.Limits, nil)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) ||
				errors.Is(err, exact.ErrTooLarge) || errors.Is(err, exact.ErrChannelBlowup) {
				skipped++
				continue
			}
			return PointResult{}, err
		}
		for _, sv := range solvers {
			sol, err := sv.Solve(context.Background(), prob, nil)
			if err != nil {
				if errors.Is(err, core.ErrInfeasible) {
					gaps[sv.Name()] = append(gaps[sv.Name()], 0)
					continue
				}
				return PointResult{}, err
			}
			if err := prob.Validate(sol); err != nil {
				return PointResult{}, fmt.Errorf("%s produced an invalid tree: %w", sv.Name(), err)
			}
			gaps[sv.Name()] = append(gaps[sv.Name()], sol.Rate()/opt.Rate())
		}
	}
	point := PointResult{
		Label:   fmt.Sprintf("qubits=%d (skipped %d)", qubits, skipped),
		X:       float64(qubits),
		Summary: make(map[string]stats.Summary, len(solvers)),
	}
	for _, sv := range solvers {
		point.Summary[sv.Name()] = stats.Summarize(gaps[sv.Name()])
	}
	return point, nil
}
