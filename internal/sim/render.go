package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table renders the series as a fixed-width text table with one row per
// sweep point and one column per algorithm, mirroring the paper's bar
// charts in numeric form.
func (s Series) Table() string {
	if len(s.Points) == 0 {
		return fmt.Sprintf("%s: no data\n", s.Figure)
	}
	algs := sortedAlgorithms(s.Points[0])
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.Figure, s.Title)
	fmt.Fprintf(&b, "%-16s", s.XLabel)
	for _, a := range algs {
		fmt.Fprintf(&b, "%14s", a)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-16s", p.Label)
		for _, a := range algs {
			fmt.Fprintf(&b, "%14.4e", p.Summary[a].Mean)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WorkTable renders the per-solve work counters (Dijkstra runs, edges
// relaxed, scratch-pool hits, channels considered vs. committed, ledger
// reservations) summed over each point's batch, one block per algorithm.
// Points or algorithms that recorded no work are skipped.
func (s Series) WorkTable() string {
	if len(s.Points) == 0 {
		return ""
	}
	algs := sortedAlgorithms(s.Points[0])
	var b strings.Builder
	fmt.Fprintf(&b, "%s — solve work counters\n", s.Figure)
	for _, p := range s.Points {
		for _, a := range algs {
			w, ok := p.Work[a]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-16s %-10s %s\n", p.Label, a, w.String())
		}
	}
	return b.String()
}

// WriteCSV writes the series as CSV: one row per point with mean, standard
// deviation and infeasible-count columns per algorithm.
func (s Series) WriteCSV(w io.Writer) error {
	if len(s.Points) == 0 {
		return fmt.Errorf("sim: series %s has no points", s.Figure)
	}
	algs := sortedAlgorithms(s.Points[0])
	cw := csv.NewWriter(w)
	header := []string{"figure", "label", "x"}
	for _, a := range algs {
		header = append(header, a+"_mean", a+"_std", a+"_infeasible")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sim: write csv header: %w", err)
	}
	for _, p := range s.Points {
		row := []string{s.Figure, p.Label, strconv.FormatFloat(p.X, 'g', -1, 64)}
		for _, a := range algs {
			sum := p.Summary[a]
			row = append(row,
				strconv.FormatFloat(sum.Mean, 'e', 6, 64),
				strconv.FormatFloat(sum.StdDev, 'e', 6, 64),
				strconv.Itoa(sum.Zeros),
			)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("sim: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sim: flush csv: %w", err)
	}
	return nil
}

// ImprovementOver returns, per sweep point, the ratio of alg's mean rate to
// base's mean rate (0 when the base mean is 0). The paper reports these
// ratios as percentages ("boost the entanglement rate by up to 5347%").
func (s Series) ImprovementOver(alg, base string) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		bm := p.Summary[base].Mean
		if bm > 0 {
			out[i] = p.Summary[alg].Mean / bm
		}
	}
	return out
}

// MaxImprovementOver returns the maximum improvement ratio of alg over base
// across the series' points.
func (s Series) MaxImprovementOver(alg, base string) float64 {
	best := 0.0
	for _, r := range s.ImprovementOver(alg, base) {
		if r > best {
			best = r
		}
	}
	return best
}
