package sim

import (
	"runtime"
	"testing"
)

func TestRunPointParallelMatchesSequential(t *testing.T) {
	cfg := quickConfig()
	cfg.Networks = 8
	seq, err := RunPoint("seq", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	par, err := RunPoint("par", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Trials) != len(par.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(seq.Trials), len(par.Trials))
	}
	for i := range seq.Trials {
		if seq.Trials[i].Network != par.Trials[i].Network {
			t.Fatalf("trial %d order differs", i)
		}
		for alg, rate := range seq.Trials[i].Rates {
			if par.Trials[i].Rates[alg] != rate {
				t.Fatalf("trial %d alg %s: sequential %g, parallel %g",
					i, alg, rate, par.Trials[i].Rates[alg])
			}
		}
	}
	for _, alg := range AllAlgorithms() {
		if seq.Summary[alg].Mean != par.Summary[alg].Mean {
			t.Fatalf("%s: summaries differ: %g vs %g", alg, seq.Summary[alg].Mean, par.Summary[alg].Mean)
		}
	}
}

func TestRunPointParallelPropagatesErrors(t *testing.T) {
	cfg := quickConfig()
	cfg.Parallelism = 4
	cfg.Algorithms = []string{"nonsense"}
	if _, err := RunPoint("bad", 0, cfg); err == nil {
		t.Fatal("unknown algorithm accepted in parallel mode")
	}
}
