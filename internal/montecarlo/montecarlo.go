// Package montecarlo validates routed solutions empirically: it samples the
// stochastic entanglement process — every quantum link succeeding with
// probability exp(-alpha*L) and every BSM swap with probability q — and
// measures the fraction of rounds in which the whole entanglement tree
// comes up. By construction the expectation equals the analytic Eq. 2
// value, so this package is the ground-truth check on the rate model and,
// transitively, on every routing algorithm's reported rate.
package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// Result summarizes a Monte Carlo estimation run.
type Result struct {
	Trials    int
	Successes int
	// Rate is the empirical success fraction.
	Rate float64
	// Analytic is the Eq. 2 (times measurement factor) prediction.
	Analytic float64
	// CI95 is the 95% binomial normal-approximation half-width around Rate.
	CI95 float64
}

// Agrees reports whether the analytic prediction lies within the empirical
// 95% interval widened by slack standard-error multiples (slack 0 means the
// plain interval).
func (r Result) Agrees(slack float64) bool {
	half := r.CI95 * (1 + slack)
	return math.Abs(r.Rate-r.Analytic) <= half+1e-12
}

// channelPlan precomputes one channel's per-link success probabilities and
// swap count.
type channelPlan struct {
	linkProbs []float64
	swaps     int
}

// compile turns a tree into sampling plans, validating that every channel's
// links exist in the graph.
func compile(g *graph.Graph, t quantum.Tree, p quantum.Params) ([]channelPlan, error) {
	plans := make([]channelPlan, 0, len(t.Channels))
	for i, c := range t.Channels {
		if len(c.Nodes) < 2 {
			return nil, fmt.Errorf("montecarlo: channel %d too short", i)
		}
		plan := channelPlan{swaps: len(c.Nodes) - 2}
		for j := 0; j+1 < len(c.Nodes); j++ {
			e, ok := g.EdgeBetween(c.Nodes[j], c.Nodes[j+1])
			if !ok {
				return nil, fmt.Errorf("montecarlo: channel %d: no fiber %d-%d", i, c.Nodes[j], c.Nodes[j+1])
			}
			plan.linkProbs = append(plan.linkProbs, p.LinkRate(e.Length))
		}
		plans = append(plans, plan)
	}
	return plans, nil
}

// sampleOnce draws one synchronized entanglement round: true when every
// link of every channel entangles and every swap succeeds.
func sampleOnce(plans []channelPlan, swapProb float64, extraProb float64, rng *rand.Rand) bool {
	for _, plan := range plans {
		for _, lp := range plan.linkProbs {
			if rng.Float64() >= lp {
				return false
			}
		}
		for s := 0; s < plan.swaps; s++ {
			if rng.Float64() >= swapProb {
				return false
			}
		}
	}
	if extraProb < 1 && rng.Float64() >= extraProb {
		return false
	}
	return true
}

// SimulateTree estimates the empirical entanglement rate of a tree over the
// given number of independent rounds.
func SimulateTree(g *graph.Graph, t quantum.Tree, p quantum.Params, trials int, rng *rand.Rand) (Result, error) {
	return simulate(g, t, p, 1, trials, rng)
}

// SimulateSolution estimates the empirical rate of a routed solution,
// including any terminal measurement factor (the N-FUSION baseline's GHZ
// fusion), sampled as one extra Bernoulli step per round.
func SimulateSolution(g *graph.Graph, sol *core.Solution, p quantum.Params, trials int, rng *rand.Rand) (Result, error) {
	if sol == nil {
		return Result{}, errors.New("montecarlo: nil solution")
	}
	factor := sol.MeasurementFactor
	if factor == 0 {
		factor = 1
	}
	return simulate(g, sol.Tree, p, factor, trials, rng)
}

func simulate(g *graph.Graph, t quantum.Tree, p quantum.Params, extraProb float64, trials int, rng *rand.Rand) (Result, error) {
	if trials <= 0 {
		return Result{}, fmt.Errorf("montecarlo: trials must be positive, got %d", trials)
	}
	if rng == nil {
		return Result{}, errors.New("montecarlo: nil rng")
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if extraProb < 0 || extraProb > 1 {
		return Result{}, fmt.Errorf("montecarlo: measurement factor %g outside [0,1]", extraProb)
	}
	plans, err := compile(g, t, p)
	if err != nil {
		return Result{}, err
	}
	successes := 0
	for i := 0; i < trials; i++ {
		if sampleOnce(plans, p.SwapProb, extraProb, rng) {
			successes++
		}
	}
	rate := float64(successes) / float64(trials)
	res := Result{
		Trials:    trials,
		Successes: successes,
		Rate:      rate,
		Analytic:  t.Rate() * extraProb,
		CI95:      1.96 * math.Sqrt(rate*(1-rate)/float64(trials)),
	}
	return res, nil
}
