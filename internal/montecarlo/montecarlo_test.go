package montecarlo

import (
	"math"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// threeUserStar builds the Fig. 4a network and its two-channel tree.
func threeUserStar(t *testing.T) (*graph.Graph, quantum.Tree, quantum.Params) {
	t.Helper()
	g := graph.New(4, 3)
	g.AddUser(0, 0)
	g.AddUser(2, 0)
	g.AddUser(1, 2)
	g.AddSwitch(1, 1, 4)
	for _, u := range []graph.NodeID{0, 1, 2} {
		g.MustAddEdge(u, 3, 1000)
	}
	p := quantum.DefaultParams()
	ch1, err := quantum.NewChannel(g, []graph.NodeID{0, 3, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := quantum.NewChannel(g, []graph.NodeID{0, 3, 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, quantum.Tree{Channels: []quantum.Channel{ch1, ch2}}, p
}

func TestSimulateTreeMatchesAnalytic(t *testing.T) {
	g, tree, p := threeUserStar(t)
	res, err := SimulateTree(g, tree, p, 200000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("SimulateTree: %v", err)
	}
	if res.Trials != 200000 {
		t.Fatalf("Trials = %d", res.Trials)
	}
	if !almost(res.Analytic, tree.Rate()) {
		t.Fatalf("Analytic = %g, want %g", res.Analytic, tree.Rate())
	}
	// With 200k trials the estimate should sit comfortably within 5 CI
	// half-widths of the analytic value.
	if !res.Agrees(4) {
		t.Fatalf("empirical %g vs analytic %g (CI95 %g): no agreement",
			res.Rate, res.Analytic, res.CI95)
	}
}

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSimulateEmptyTreeAlwaysSucceeds(t *testing.T) {
	g, _, p := threeUserStar(t)
	res, err := SimulateTree(g, quantum.Tree{}, p, 100, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes != 100 || res.Rate != 1 {
		t.Fatalf("empty tree: %d/%d successes", res.Successes, res.Trials)
	}
}

func TestSimulateCertainSuccess(t *testing.T) {
	// q = 1 and negligible attenuation: every round succeeds.
	g := graph.New(3, 2)
	g.AddUser(0, 0)
	g.AddSwitch(1, 0, 4)
	g.AddUser(2, 0)
	g.MustAddEdge(0, 1, 1e-9)
	g.MustAddEdge(1, 2, 1e-9)
	p := quantum.Params{Alpha: 1e-12, SwapProb: 1}
	ch, err := quantum.NewChannel(g, []graph.NodeID{0, 1, 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateTree(g, quantum.Tree{Channels: []quantum.Channel{ch}}, p, 500, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes != 500 {
		t.Fatalf("certain channel failed %d times", res.Trials-res.Successes)
	}
}

func TestSimulateSolutionAppliesMeasurementFactor(t *testing.T) {
	g, tree, p := threeUserStar(t)
	sol := &core.Solution{Tree: tree, Algorithm: "nfusion", MeasurementFactor: 0.5}
	res, err := SimulateSolution(g, sol, p, 200000, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Analytic, tree.Rate()*0.5) {
		t.Fatalf("Analytic = %g, want %g", res.Analytic, tree.Rate()*0.5)
	}
	if !res.Agrees(4) {
		t.Fatalf("factor simulation disagrees: %g vs %g (CI %g)", res.Rate, res.Analytic, res.CI95)
	}
}

func TestSimulateRejections(t *testing.T) {
	g, tree, p := threeUserStar(t)
	rng := rand.New(rand.NewSource(5))
	if _, err := SimulateTree(g, tree, p, 0, rng); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := SimulateTree(g, tree, p, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := SimulateTree(g, tree, quantum.Params{}, 10, rng); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := SimulateSolution(g, nil, p, 10, rng); err == nil {
		t.Error("nil solution accepted")
	}
	bad := &core.Solution{Tree: tree, MeasurementFactor: 1.5}
	if _, err := SimulateSolution(g, bad, p, 10, rng); err == nil {
		t.Error("measurement factor > 1 accepted")
	}
	// Channel referencing a missing fiber.
	broken := quantum.Tree{Channels: []quantum.Channel{{Nodes: []graph.NodeID{0, 2}, Rate: 0.5}}}
	if _, err := SimulateTree(g, broken, p, 10, rng); err == nil {
		t.Error("channel with missing fiber accepted")
	}
	short := quantum.Tree{Channels: []quantum.Channel{{Nodes: []graph.NodeID{0}, Rate: 0.5}}}
	if _, err := SimulateTree(g, short, p, 10, rng); err == nil {
		t.Error("one-node channel accepted")
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	g, tree, p := threeUserStar(t)
	a, err := SimulateTree(g, tree, p, 5000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTree(g, tree, p, 5000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes {
		t.Fatalf("same seed, different successes: %d vs %d", a.Successes, b.Successes)
	}
}

// TestSimulateRoutedSolutionsEndToEnd: the analytic rate the routing
// algorithms report agrees with what the stochastic process delivers, for
// every algorithm on one fixed network.
func TestSimulateRoutedSolutionsEndToEnd(t *testing.T) {
	g := graph.New(7, 12)
	g.AddUser(0, 0)
	g.AddUser(4000, 0)
	g.AddUser(2000, 3000)
	g.AddSwitch(1000, 500, 8)
	g.AddSwitch(3000, 500, 8)
	g.AddSwitch(2000, 1500, 8)
	g.AddSwitch(2000, 500, 8)
	for _, e := range [][2]graph.NodeID{
		{0, 3}, {3, 6}, {6, 4}, {4, 1}, {3, 5}, {5, 2}, {4, 5}, {6, 5},
	} {
		a, b := g.Node(e[0]), g.Node(e[1])
		g.MustAddEdge(e[0], e[1], math.Hypot(a.X-b.X, a.Y-b.Y))
	}
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	solvers := map[string]func() (*core.Solution, error){
		"alg2": func() (*core.Solution, error) { return core.SolveOptimal(p) },
		"alg3": func() (*core.Solution, error) { return core.SolveConflictFree(p) },
		"alg4": func() (*core.Solution, error) { return core.SolvePrim(p, nil) },
	}
	for name, solve := range solvers {
		t.Run(name, func(t *testing.T) {
			sol, err := solve()
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			res, err := SimulateSolution(g, sol, p.Params, 100000, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Agrees(4) {
				t.Fatalf("%s: empirical %g vs analytic %g (CI %g)", name, res.Rate, res.Analytic, res.CI95)
			}
		})
	}
}
