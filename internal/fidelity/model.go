// Package fidelity extends the MUERP model with entanglement quality, the
// first extension the paper names ("accounting for fidelity decay", §I and
// §VII). It adds a Werner-state fidelity model on top of the rate model and
// fidelity-constrained variants of the routing algorithms.
//
// Model. Every quantum link delivers a Werner state. A Werner state with
// fidelity F has Werner parameter w = (4F-1)/3, and a BSM swap of two
// Werner pairs multiplies their parameters: w_out = w1 * w2. A channel of
// links with parameters w_i therefore ends with w = prod(w_i) and fidelity
// F = (1 + 3*prod(w_i))/4. Link fidelity decays with fiber length as
// w(L) = W0 * exp(-Beta*L).
//
// The fidelity-constrained MUERP requires every channel of the tree to end
// with fidelity >= MinFidelity. Because -ln w is additive along a channel,
// the constraint is an additive budget, and channel search becomes a
// bicriteria (rate, fidelity-budget) shortest-path problem, solved here
// with a Pareto label-setting search.
package fidelity

import (
	"errors"
	"fmt"
	"math"
)

// Model holds the fidelity-decay constants.
type Model struct {
	// W0 is the Werner parameter of a zero-length link (a perfect Bell
	// pair has W0 = 1, i.e. fidelity 1).
	W0 float64
	// Beta is the Werner-parameter decay per kilometre.
	Beta float64
	// Gamma is the Werner-parameter decay per time slot spent in qubit
	// memory: a pair stored for a slots has w(a) = w * exp(-Gamma*a).
	// Zero (the default) means memories are noiseless, which keeps every
	// pre-existing Model literal and the analytic pipeline unchanged.
	Gamma float64
}

// DefaultModel returns a model where fresh pairs have fidelity ~0.985
// (w = 0.98) and fidelity decays gently with distance.
func DefaultModel() Model {
	return Model{W0: 0.98, Beta: 2e-5}
}

// ErrBadModel reports physically meaningless fidelity constants.
var ErrBadModel = errors.New("fidelity: invalid model")

// Validate checks 0 < W0 <= 1 and Beta >= 0.
func (m Model) Validate() error {
	if !(m.W0 > 0 && m.W0 <= 1) {
		return fmt.Errorf("%w: W0 %g must be in (0,1]", ErrBadModel, m.W0)
	}
	if m.Beta < 0 || math.IsNaN(m.Beta) || math.IsInf(m.Beta, 1) {
		return fmt.Errorf("%w: Beta %g must be finite and non-negative", ErrBadModel, m.Beta)
	}
	if m.Gamma < 0 || math.IsNaN(m.Gamma) || math.IsInf(m.Gamma, 1) {
		return fmt.Errorf("%w: Gamma %g must be finite and non-negative", ErrBadModel, m.Gamma)
	}
	return nil
}

// LinkWerner returns a link's Werner parameter: W0 * exp(-Beta*L).
func (m Model) LinkWerner(length float64) float64 {
	return m.W0 * math.Exp(-m.Beta*length)
}

// AgeWerner returns the Werner parameter of a pair that started at w and
// then sat in qubit memory for the given number of whole slots:
// w * exp(-Gamma*slots). Non-positive ages return w unchanged.
func (m Model) AgeWerner(w float64, slots int) float64 {
	if slots <= 0 || m.Gamma == 0 {
		return w
	}
	return w * math.Exp(-m.Gamma*float64(slots))
}

// WernerToFidelity converts a Werner parameter to fidelity: (1+3w)/4.
func WernerToFidelity(w float64) float64 { return (1 + 3*w) / 4 }

// FidelityToWerner converts a fidelity to its Werner parameter: (4F-1)/3.
func FidelityToWerner(f float64) float64 { return (4*f - 1) / 3 }

// ChannelWerner returns the end-to-end Werner parameter of a channel with
// the given link lengths: prod_i w(L_i). It returns 0 for an empty channel.
func (m Model) ChannelWerner(lengths []float64) float64 {
	if len(lengths) == 0 {
		return 0
	}
	w := 1.0
	for _, l := range lengths {
		w *= m.LinkWerner(l)
	}
	return w
}

// ChannelFidelity returns the end-to-end fidelity of a channel with the
// given link lengths.
func (m Model) ChannelFidelity(lengths []float64) float64 {
	if len(lengths) == 0 {
		return 0
	}
	return WernerToFidelity(m.ChannelWerner(lengths))
}

// LinkBudget returns the additive fidelity cost of one link,
// -ln(w(L)) = -ln(W0) + Beta*L, for use in budgeted searches.
func (m Model) LinkBudget(length float64) float64 {
	return -math.Log(m.W0) + m.Beta*length
}

// BudgetFor returns the total additive budget available to a channel that
// must end with at least minFidelity: -ln((4*minF-1)/3). It returns
// (0, false) when minFidelity is unreachable even in principle (w <= 0,
// i.e. minFidelity <= 0.25, means unconstrained and returns +Inf, true).
func BudgetFor(minFidelity float64) (float64, bool) {
	if minFidelity > 1 {
		return 0, false
	}
	w := FidelityToWerner(minFidelity)
	if w <= 0 {
		return math.Inf(1), true // any Werner state satisfies F > 0.25
	}
	return -math.Log(w), true
}
