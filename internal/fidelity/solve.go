package fidelity

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// ErrInfeasible reports that no entanglement tree satisfies both the
// capacity and the fidelity constraints. It wraps core.ErrInfeasible so
// errors.Is(err, core.ErrInfeasible) also holds.
var ErrInfeasible = fmt.Errorf("%w under the fidelity floor", core.ErrInfeasible)

// Solve routes the fidelity-constrained MUERP with a Prim-style greedy
// (the Algorithm 4 skeleton with the fidelity-constrained channel search
// as its inner oracle): grow the tree from the first user, each round
// committing the maximum-rate channel to an out-of-tree user whose
// end-to-end fidelity meets the router's floor, under live switch
// capacity.
func Solve(p *core.Problem, r Router) (*core.Solution, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	led := quantum.NewLedger(p.Graph)
	inTree := make(map[graph.NodeID]bool, len(p.Users))
	inTree[p.Users[0]] = true
	tree := quantum.Tree{}

	for len(inTree) < len(p.Users) {
		var best quantum.Channel
		found := false
		for _, src := range p.Users {
			if !inTree[src] {
				continue
			}
			for _, dst := range p.Users {
				if inTree[dst] {
					continue
				}
				ch, _, ok := r.MaxRateChannel(p.Graph, src, dst, led)
				if !ok {
					continue
				}
				if !found || ch.Rate > best.Rate {
					best, found = ch, true
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %d users unreached", ErrInfeasible, len(p.Users)-len(inTree))
		}
		if err := led.Reserve(best.Nodes); err != nil {
			panic(fmt.Sprintf("fidelity: reserve after gated search: %v", err))
		}
		// The search always starts inside the tree, so the path's far
		// endpoint is the newly joined user.
		a, b := best.Endpoints()
		joined := b
		if inTree[b] {
			joined = a
		}
		if inTree[joined] {
			panic("fidelity: committed channel joins two in-tree users")
		}
		inTree[joined] = true
		tree.Channels = append(tree.Channels, best)
	}
	return &core.Solution{Tree: tree, Algorithm: "fidelity-prim", MeasurementFactor: 1}, nil
}

// TreeFidelities returns each channel's end-to-end fidelity and the
// minimum across the tree (1 for an empty tree).
func (r Router) TreeFidelities(g *graph.Graph, t quantum.Tree) (perChannel []float64, min float64) {
	min = 1
	for _, ch := range t.Channels {
		f := r.ChannelFidelity(g, ch)
		perChannel = append(perChannel, f)
		if f < min {
			min = f
		}
	}
	return perChannel, min
}

// Validate checks a routed solution against both the base MUERP rules and
// the fidelity floor.
func (r Router) ValidateSolution(p *core.Problem, sol *core.Solution) error {
	if err := p.Validate(sol); err != nil {
		return err
	}
	_, min := r.TreeFidelities(p.Graph, sol.Tree)
	if len(sol.Tree.Channels) > 0 && min < r.MinFidelity-1e-12 {
		return fmt.Errorf("fidelity: tree minimum %g below floor %g", min, r.MinFidelity)
	}
	return nil
}
