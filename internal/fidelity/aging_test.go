package fidelity

import (
	"math"
	"testing"
)

func TestAgeWerner(t *testing.T) {
	m := Model{W0: 0.98, Beta: 2e-5, Gamma: 0.01}
	w := 0.9
	if got := m.AgeWerner(w, 0); got != w {
		t.Fatalf("age 0 changed w: %g", got)
	}
	if got := m.AgeWerner(w, -3); got != w {
		t.Fatalf("negative age changed w: %g", got)
	}
	want := w * math.Exp(-0.01*5)
	if got := m.AgeWerner(w, 5); math.Abs(got-want) > 1e-15 {
		t.Fatalf("AgeWerner(%g, 5) = %g, want %g", w, got, want)
	}
	// Aging composes: 3 slots then 2 slots equals 5 slots.
	split := m.AgeWerner(m.AgeWerner(w, 3), 2)
	if math.Abs(split-want) > 1e-15 {
		t.Fatalf("aging does not compose: %g vs %g", split, want)
	}
	// Gamma 0 is a noiseless memory.
	noiseless := Model{W0: 0.98, Beta: 2e-5}
	if got := noiseless.AgeWerner(w, 100); got != w {
		t.Fatalf("Gamma=0 aged the pair: %g", got)
	}
}

func TestValidateGamma(t *testing.T) {
	good := Model{W0: 0.98, Beta: 2e-5, Gamma: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	for _, bad := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		m := Model{W0: 0.98, Beta: 2e-5, Gamma: bad}
		if err := m.Validate(); err == nil {
			t.Errorf("Gamma %g accepted", bad)
		}
	}
}
