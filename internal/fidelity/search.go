package fidelity

import (
	"container/heap"
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// This file implements the fidelity-constrained channel search: among all
// channels from src to dst whose end-to-end fidelity meets the minimum,
// find the one with the maximum entanglement rate.
//
// Rate cost (alpha*L - ln q per link) and fidelity budget (-ln w per link)
// are both additive, so this is a resource-constrained shortest path.
// The search keeps, per node, a Pareto frontier of (rate cost, budget
// spent) labels and settles them in ascending rate-cost order; the first
// label to reach dst within budget yields the answer. Exact for
// non-negative costs; worst-case exponential label count, but the budget
// prune keeps it small on physical networks.

// searchLabel is one Pareto label.
type searchLabel struct {
	node  graph.NodeID
	dist  float64 // accumulated rate cost
	fcost float64 // accumulated fidelity budget
	prev  *searchLabel
}

// labelHeap orders labels by rate cost.
type labelHeap []*searchLabel

func (h labelHeap) Len() int           { return len(h) }
func (h labelHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h labelHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *labelHeap) Push(x any)        { *h = append(*h, x.(*searchLabel)) }
func (h *labelHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Router bundles the physical rate model, the fidelity model and the
// minimum acceptable end-to-end channel fidelity.
type Router struct {
	Params      quantum.Params
	Model       Model
	MinFidelity float64
}

// Validate checks the router's components.
func (r Router) Validate() error {
	if err := r.Params.Validate(); err != nil {
		return err
	}
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if _, ok := BudgetFor(r.MinFidelity); !ok {
		return fmt.Errorf("%w: minimum fidelity %g", ErrBadModel, r.MinFidelity)
	}
	return nil
}

// MaxRateChannel finds the maximum-rate channel from src to dst whose
// fidelity is at least MinFidelity, transiting only switches admitted by
// the ledger (nil = any switch with >= 2 installed qubits). It returns the
// channel, its end-to-end fidelity, and whether one exists.
func (r Router) MaxRateChannel(g *graph.Graph, src, dst graph.NodeID, led *quantum.Ledger) (quantum.Channel, float64, bool) {
	if src == dst {
		return quantum.Channel{}, 0, false
	}
	budget, ok := BudgetFor(r.MinFidelity)
	if !ok {
		return quantum.Channel{}, 0, false
	}
	canRelay := func(n graph.Node) bool {
		if led != nil {
			return led.CanRelay(n)
		}
		return n.Kind == graph.KindSwitch && n.Qubits >= 2
	}

	// Pareto frontiers per node.
	frontiers := make([][]*searchLabel, g.NumNodes())
	dominated := func(node graph.NodeID, dist, fcost float64) bool {
		for _, l := range frontiers[node] {
			if l.dist <= dist && l.fcost <= fcost {
				return true
			}
		}
		return false
	}

	h := &labelHeap{{node: src}}
	heap.Init(h)
	for h.Len() > 0 {
		cur := heap.Pop(h).(*searchLabel)
		if dominated(cur.node, cur.dist, cur.fcost) {
			continue
		}
		frontiers[cur.node] = append(frontiers[cur.node], cur)
		if cur.node == dst {
			return r.channelFromLabel(g, cur)
		}
		if cur.node != src && !canRelay(g.Node(cur.node)) {
			continue // valid destination label, but may not relay onward
		}
		g.Neighbors(cur.node, func(nb graph.Node, via graph.Edge) bool {
			// No revisits along this label's own path (channels are simple).
			for l := cur; l != nil; l = l.prev {
				if l.node == nb.ID {
					return true
				}
			}
			fcost := cur.fcost + r.Model.LinkBudget(via.Length)
			if fcost > budget {
				return true // would end below the fidelity floor
			}
			dist := cur.dist + r.Params.EdgeWeight(via.Length)
			if dominated(nb.ID, dist, fcost) {
				return true
			}
			heap.Push(h, &searchLabel{node: nb.ID, dist: dist, fcost: fcost, prev: cur})
			return true
		})
	}
	return quantum.Channel{}, 0, false
}

// channelFromLabel rebuilds the channel walked by a destination label.
func (r Router) channelFromLabel(g *graph.Graph, l *searchLabel) (quantum.Channel, float64, bool) {
	var path []graph.NodeID
	for cur := l; cur != nil; cur = cur.prev {
		path = append(path, cur.node)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	ch, err := quantum.NewChannel(g, path, r.Params)
	if err != nil {
		panic(fmt.Sprintf("fidelity: search produced an invalid channel: %v", err))
	}
	return ch, r.ChannelFidelity(g, ch), true
}

// ChannelFidelity computes a routed channel's end-to-end fidelity from the
// graph's fiber lengths.
func (r Router) ChannelFidelity(g *graph.Graph, ch quantum.Channel) float64 {
	lengths := make([]float64, 0, ch.Links())
	for i := 0; i+1 < len(ch.Nodes); i++ {
		e, ok := g.EdgeBetween(ch.Nodes[i], ch.Nodes[i+1])
		if !ok {
			panic(fmt.Sprintf("fidelity: channel fiber %d-%d missing", ch.Nodes[i], ch.Nodes[i+1]))
		}
		lengths = append(lengths, e.Length)
	}
	return r.Model.ChannelFidelity(lengths)
}
