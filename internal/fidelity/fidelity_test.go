package fidelity

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

func TestModelValidate(t *testing.T) {
	tests := []struct {
		name string
		m    Model
		ok   bool
	}{
		{"default", DefaultModel(), true},
		{"perfect", Model{W0: 1, Beta: 0}, true},
		{"zero w0", Model{W0: 0, Beta: 1e-5}, false},
		{"w0 above 1", Model{W0: 1.2, Beta: 1e-5}, false},
		{"negative beta", Model{W0: 0.9, Beta: -1}, false},
		{"inf beta", Model{W0: 0.9, Beta: math.Inf(1)}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestWernerFidelityConversions(t *testing.T) {
	for _, f := range []float64{0.25, 0.5, 0.8, 1} {
		w := FidelityToWerner(f)
		if got := WernerToFidelity(w); math.Abs(got-f) > 1e-12 {
			t.Errorf("round trip %g -> %g -> %g", f, w, got)
		}
	}
	if got := WernerToFidelity(1); got != 1 {
		t.Errorf("perfect Werner fidelity = %g, want 1", got)
	}
	if got := WernerToFidelity(0); got != 0.25 {
		t.Errorf("fully mixed fidelity = %g, want 0.25", got)
	}
}

func TestChannelFidelityComposition(t *testing.T) {
	m := Model{W0: 0.96, Beta: 1e-5}
	// Two 1000 km links: w = (0.96*e^-0.01)^2, F = (1+3w)/4.
	w := m.LinkWerner(1000)
	want := WernerToFidelity(w * w)
	if got := m.ChannelFidelity([]float64{1000, 1000}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ChannelFidelity = %g, want %g", got, want)
	}
	if got := m.ChannelFidelity(nil); got != 0 {
		t.Fatalf("empty channel fidelity = %g, want 0", got)
	}
}

func TestBudgetFor(t *testing.T) {
	if _, ok := BudgetFor(1.5); ok {
		t.Error("fidelity > 1 accepted")
	}
	if b, ok := BudgetFor(0.2); !ok || !math.IsInf(b, 1) {
		t.Errorf("sub-0.25 floor: (%g, %v), want (+Inf, true)", b, ok)
	}
	b, ok := BudgetFor(0.85)
	if !ok {
		t.Fatal("0.85 rejected")
	}
	// A channel is feasible iff sum(LinkBudget) <= budget iff w >= (4F-1)/3.
	m := DefaultModel()
	lengths := []float64{2000, 2000}
	sum := m.LinkBudget(2000) * 2
	feasible := sum <= b
	if got := m.ChannelFidelity(lengths) >= 0.85; got != feasible {
		t.Fatalf("budget test %v disagrees with direct fidelity %g", feasible, m.ChannelFidelity(lengths))
	}
}

// fidelityNet builds two routes from u0 to u2:
//
//	short path through one switch (high rate, high fidelity via 2 links)
//	long path through two switches (3 links, lower fidelity)
//
// plus a direct long fiber (1 link, length-dominated fidelity).
func fidelityNet(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5, 6)
	g.AddUser(0, 0)           // u0
	g.AddSwitch(1000, 0, 4)   // s1
	g.AddUser(2000, 0)        // u2
	g.AddSwitch(500, 800, 4)  // s3
	g.AddSwitch(1500, 800, 4) // s4
	g.MustAddEdge(0, 1, 1000)
	g.MustAddEdge(1, 2, 1000)
	g.MustAddEdge(0, 3, 900)
	g.MustAddEdge(3, 4, 1000)
	g.MustAddEdge(4, 2, 900)
	g.MustAddEdge(0, 2, 12000)
	return g
}

func TestMaxRateChannelUnconstrainedMatchesAlgorithmOne(t *testing.T) {
	g := fidelityNet(t)
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := Router{Params: p.Params, Model: Model{W0: 1, Beta: 0}, MinFidelity: 0}
	got, f, ok := r.MaxRateChannel(g, 0, 2, nil)
	if !ok {
		t.Fatal("no channel")
	}
	want, ok2 := p.MaxRateChannel(0, 2, nil, nil)
	if !ok2 {
		t.Fatal("algorithm 1 found no channel")
	}
	if math.Abs(got.Rate-want.Rate) > 1e-12 {
		t.Fatalf("unconstrained search rate %g != algorithm 1 rate %g", got.Rate, want.Rate)
	}
	if f != 1 {
		t.Fatalf("perfect model fidelity = %g, want 1", f)
	}
}

func TestMaxRateChannelRespectsFloor(t *testing.T) {
	g := fidelityNet(t)
	params := quantum.DefaultParams()
	// Make per-swap fidelity loss harsh so fewer links = higher fidelity.
	m := Model{W0: 0.9, Beta: 1e-6}
	// With no floor the 2-link path wins on rate.
	free := Router{Params: params, Model: m, MinFidelity: 0}
	chFree, _, ok := free.MaxRateChannel(g, 0, 2, nil)
	if !ok || chFree.Links() != 2 {
		t.Fatalf("unconstrained pick = %v links (want 2)", chFree.Links())
	}
	// 2-link fidelity: w=0.81*e^-… ~ F≈0.857; require more than that: only
	// the direct fiber (1 link, w=0.9*e^-0.012) F≈0.917 qualifies.
	tight := Router{Params: params, Model: m, MinFidelity: 0.9}
	ch, f, ok := tight.MaxRateChannel(g, 0, 2, nil)
	if !ok {
		t.Fatal("no channel meets the floor")
	}
	if ch.Links() != 1 {
		t.Fatalf("floor 0.9 pick uses %d links, want the direct fiber", ch.Links())
	}
	if f < 0.9 {
		t.Fatalf("returned fidelity %g below floor", f)
	}
	// An impossible floor yields no channel.
	if _, _, ok := (Router{Params: params, Model: m, MinFidelity: 0.99}).MaxRateChannel(g, 0, 2, nil); ok {
		t.Fatal("channel found above any achievable fidelity")
	}
}

func TestMaxRateChannelLedgerGate(t *testing.T) {
	g := fidelityNet(t)
	params := quantum.DefaultParams()
	r := Router{Params: params, Model: DefaultModel(), MinFidelity: 0.5}
	led := quantum.NewLedger(g)
	first, _, ok := r.MaxRateChannel(g, 0, 2, led)
	if !ok {
		t.Fatal("no first channel")
	}
	if err := led.Reserve(first.Nodes); err != nil {
		t.Fatal(err)
	}
	second, _, ok := r.MaxRateChannel(g, 0, 2, led)
	if !ok {
		t.Fatal("no second channel")
	}
	for _, s := range second.Interior() {
		for _, used := range first.Interior() {
			if s == used && led.Free(s) < 2 {
				t.Fatalf("second channel transits exhausted switch %d", s)
			}
		}
	}
}

func TestSolveFidelityConstrained(t *testing.T) {
	g := fidelityNet(t)
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := Router{Params: p.Params, Model: DefaultModel(), MinFidelity: 0.8}
	sol, err := Solve(p, r)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := r.ValidateSolution(p, sol); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	perChannel, min := r.TreeFidelities(g, sol.Tree)
	if len(perChannel) != len(sol.Tree.Channels) {
		t.Fatalf("%d fidelities for %d channels", len(perChannel), len(sol.Tree.Channels))
	}
	if min < 0.8 {
		t.Fatalf("minimum fidelity %g below floor", min)
	}
}

func TestSolveInfeasibleFloor(t *testing.T) {
	g := fidelityNet(t)
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := Router{Params: p.Params, Model: Model{W0: 0.8, Beta: 1e-4}, MinFidelity: 0.99}
	_, err = Solve(p, r)
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestSolveTightensWithFloor(t *testing.T) {
	// Raising the floor can only lower (or keep) the achieved rate.
	g := fidelityNet(t)
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m := Model{W0: 0.9, Beta: 1e-6}
	prev := math.Inf(1)
	for _, floor := range []float64{0, 0.5, 0.85, 0.9} {
		sol, err := Solve(p, Router{Params: p.Params, Model: m, MinFidelity: floor})
		if err != nil {
			break // floors can become infeasible; that's fine
		}
		if sol.Rate() > prev*(1+1e-9) {
			t.Fatalf("rate rose from %g to %g as the floor tightened to %g", prev, sol.Rate(), floor)
		}
		prev = sol.Rate()
	}
}

// TestQuickFidelitySearchAgainstBruteForce cross-checks the Pareto search
// with exhaustive path enumeration on small random networks.
func TestQuickFidelitySearchAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomFidelityNet(rng)
		params := quantum.DefaultParams()
		m := Model{W0: 0.85 + rng.Float64()*0.14, Beta: rng.Float64() * 1e-4}
		floor := 0.3 + rng.Float64()*0.6
		r := Router{Params: params, Model: m, MinFidelity: floor}
		users := g.Users()
		if len(users) < 2 {
			return true
		}
		src, dst := users[0], users[1]
		got, gotF, ok := r.MaxRateChannel(g, src, dst, nil)
		want, wantOK := bruteBest(g, src, dst, r)
		if ok != wantOK {
			t.Logf("seed %d: ok=%v brute=%v", seed, ok, wantOK)
			return false
		}
		if !ok {
			return true
		}
		if math.Abs(got.Rate-want) > 1e-9*want {
			t.Logf("seed %d: rate %g brute %g", seed, got.Rate, want)
			return false
		}
		return gotF >= floor-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteBest enumerates all simple channels and returns the best rate
// meeting the fidelity floor.
func bruteBest(g *graph.Graph, src, dst graph.NodeID, r Router) (float64, bool) {
	best, found := 0.0, false
	visited := map[graph.NodeID]bool{src: true}
	var lengths []float64
	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		if v == dst {
			if r.Model.ChannelFidelity(lengths) >= r.MinFidelity {
				if rate := r.Params.ChannelRate(lengths); rate > best {
					best, found = rate, true
				}
			}
			return
		}
		if v != src {
			n := g.Node(v)
			if n.Kind != graph.KindSwitch || n.Qubits < 2 {
				return
			}
		}
		g.Neighbors(v, func(nb graph.Node, via graph.Edge) bool {
			if visited[nb.ID] {
				return true
			}
			if nb.Kind == graph.KindUser && nb.ID != dst {
				return true
			}
			visited[nb.ID] = true
			lengths = append(lengths, via.Length)
			dfs(nb.ID)
			lengths = lengths[:len(lengths)-1]
			visited[nb.ID] = false
			return true
		})
	}
	dfs(src)
	return best, found
}

// randomFidelityNet builds a small random connected net.
func randomFidelityNet(rng *rand.Rand) *graph.Graph {
	users := 2
	switches := 2 + rng.Intn(4)
	n := users + switches
	g := graph.New(n, 3*n)
	for i := 0; i < users; i++ {
		g.AddUser(rng.Float64()*4000, rng.Float64()*4000)
	}
	for i := 0; i < switches; i++ {
		g.AddSwitch(rng.Float64()*4000, rng.Float64()*4000, 4)
	}
	length := func(a, b graph.NodeID) float64 {
		na, nb := g.Node(a), g.Node(b)
		return math.Max(1, math.Hypot(na.X-nb.X, na.Y-nb.Y))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a, b := graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, b, length(a, b))
	}
	for i := 0; i < n; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b && !g.HasEdge(a, b) {
			g.MustAddEdge(a, b, length(a, b))
		}
	}
	return g
}
