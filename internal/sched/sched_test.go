package sched

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/core"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"
)

// bottleneck builds 4 users around one switch that carries exactly one
// channel at a time.
func bottleneck(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5, 4)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddUser(0, 2000)
	g.AddUser(2000, 2000)
	g.AddSwitch(1000, 1000, 2)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1500)
	}
	return g
}

func TestSimulateAdmissionAndDeparture(t *testing.T) {
	g := bottleneck(t)
	params := quantum.DefaultParams()
	requests := []Request{
		{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: 0, Hold: 10},
		// Arrives while session 0 holds the switch: rejected.
		{ID: 1, Users: []graph.NodeID{2, 3}, Arrival: 5, Hold: 10},
		// Arrives after session 0 departs at t=10: accepted.
		{ID: 2, Users: []graph.NodeID{2, 3}, Arrival: 11, Hold: 10},
	}
	report, err := Simulate(g, requests, params)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if report.Accepted != 2 || report.Rejected != 1 {
		t.Fatalf("accepted/rejected = %d/%d, want 2/1", report.Accepted, report.Rejected)
	}
	if report.Outcomes[0].Request.ID != 0 || !report.Outcomes[0].Accepted {
		t.Fatalf("outcome 0: %+v", report.Outcomes[0])
	}
	if report.Outcomes[1].Accepted {
		t.Fatalf("contending request was admitted: %+v", report.Outcomes[1])
	}
	if report.Outcomes[1].Reason == "" {
		t.Fatal("rejection carries no reason")
	}
	if !report.Outcomes[2].Accepted {
		t.Fatalf("post-departure request rejected: %+v", report.Outcomes[2])
	}
	if got := report.AcceptanceRatio(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("AcceptanceRatio = %g", got)
	}
	if report.PeakQubitsInUse != 2 {
		t.Fatalf("PeakQubitsInUse = %d, want 2", report.PeakQubitsInUse)
	}
	if report.MeanAcceptedRate() <= 0 {
		t.Fatal("mean accepted rate not positive")
	}
}

func TestSimulateExactDepartureFreesInTime(t *testing.T) {
	g := bottleneck(t)
	requests := []Request{
		{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: 0, Hold: 5},
		{ID: 1, Users: []graph.NodeID{2, 3}, Arrival: 5, Hold: 5}, // departs exactly at arrival
	}
	report, err := Simulate(g, requests, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if report.Accepted != 2 {
		t.Fatalf("accepted = %d, want 2 (departure at t=5 frees the switch)", report.Accepted)
	}
}

func TestSimulateOrdersByArrival(t *testing.T) {
	g := bottleneck(t)
	// Given out of order; the t=0 one must win the switch.
	requests := []Request{
		{ID: 1, Users: []graph.NodeID{2, 3}, Arrival: 3, Hold: 100},
		{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: 0, Hold: 100},
	}
	report, err := Simulate(g, requests, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Outcomes[0].Accepted || report.Outcomes[0].Request.ID != 0 {
		t.Fatalf("first outcome: %+v", report.Outcomes[0])
	}
	if report.Outcomes[1].Accepted {
		t.Fatal("later arrival won the switch")
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	g := bottleneck(t)
	p := quantum.DefaultParams()
	tests := []struct {
		name string
		reqs []Request
	}{
		{"empty", nil},
		{"one user", []Request{{ID: 0, Users: []graph.NodeID{0}, Arrival: 0, Hold: 1}}},
		{"zero hold", []Request{{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: 0, Hold: 0}}},
		{"nan arrival", []Request{{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: math.NaN(), Hold: 1}}},
		{"switch as user", []Request{{ID: 0, Users: []graph.NodeID{0, 4}, Arrival: 0, Hold: 1}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Simulate(g, tc.reqs, p); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}

func TestWorkloadGenerate(t *testing.T) {
	cfg := topology.Default()
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultWorkload()
	reqs, err := w.Generate(g, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(reqs) != w.Requests {
		t.Fatalf("%d requests, want %d", len(reqs), w.Requests)
	}
	prev := 0.0
	for i, r := range reqs {
		if r.Arrival < prev {
			t.Fatalf("request %d arrives before its predecessor", i)
		}
		prev = r.Arrival
		if len(r.Users) < w.MinUsers || len(r.Users) > w.MaxUsers {
			t.Fatalf("request %d has %d users", i, len(r.Users))
		}
		seen := map[graph.NodeID]bool{}
		for _, u := range r.Users {
			if seen[u] {
				t.Fatalf("request %d repeats user %d", i, u)
			}
			seen[u] = true
			if g.Node(u).Kind != graph.KindUser {
				t.Fatalf("request %d contains non-user %d", i, u)
			}
		}
		if r.Hold <= 0 {
			t.Fatalf("request %d hold %g", i, r.Hold)
		}
	}
}

func TestWorkloadGenerateRejects(t *testing.T) {
	cfg := topology.Default()
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Workload{
		{Requests: 0, MeanInterarrival: 1, MeanHold: 1, MinUsers: 2, MaxUsers: 3},
		{Requests: 5, MeanInterarrival: 1, MeanHold: 1, MinUsers: 1, MaxUsers: 3},
		{Requests: 5, MeanInterarrival: 1, MeanHold: 1, MinUsers: 2, MaxUsers: 99},
		{Requests: 5, MeanInterarrival: 0, MeanHold: 1, MinUsers: 2, MaxUsers: 3},
	}
	for i, w := range bad {
		if _, err := w.Generate(g, rand.New(rand.NewSource(3))); err == nil {
			t.Errorf("workload %d accepted", i)
		}
	}
	if _, err := DefaultWorkload().Generate(g, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// TestQuickSchedulerConservation: on random workloads over random networks,
// the ledger balances — after every session departs, capacity is fully
// restored (checked indirectly: a final all-users probe behaves exactly as
// on a fresh network), and accepted+rejected == total.
func TestQuickSchedulerConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := topology.Default()
		cfg.Users = 6
		cfg.Switches = 15
		g, err := topology.Generate(cfg, rng)
		if err != nil {
			return false
		}
		w := Workload{
			Requests:         1 + rng.Intn(40),
			MeanInterarrival: 0.5 + rng.Float64(),
			MeanHold:         0.5 + rng.Float64()*4,
			MinUsers:         2,
			MaxUsers:         4,
		}
		reqs, err := w.Generate(g, rng)
		if err != nil {
			t.Log(err)
			return false
		}
		report, err := Simulate(g, reqs, quantum.DefaultParams())
		if err != nil {
			t.Log(err)
			return false
		}
		if report.Accepted+report.Rejected != len(reqs) {
			return false
		}
		if len(report.Outcomes) != len(reqs) {
			return false
		}
		// A lone request long after everything departed must be admitted
		// exactly as on a fresh network (full capacity restored).
		last := reqs[len(reqs)-1].Arrival + 1e9
		probe := []Request{{ID: 9999, Users: g.Users()[:2], Arrival: last, Hold: 1}}
		withHistory, err := Simulate(g, append(reqs, probe...), quantum.DefaultParams())
		if err != nil {
			t.Log(err)
			return false
		}
		fresh, err := Simulate(g, probe, quantum.DefaultParams())
		if err != nil {
			t.Log(err)
			return false
		}
		histOutcome := withHistory.Outcomes[len(withHistory.Outcomes)-1]
		freshOutcome := fresh.Outcomes[0]
		return histOutcome.Accepted == freshOutcome.Accepted &&
			math.Abs(histOutcome.Rate-freshOutcome.Rate) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateInfeasibleSessionLeavesNoResidue(t *testing.T) {
	// A request whose users include an unreachable one is rejected with a
	// clean rollback; the next request sees full capacity.
	g := bottleneck(t)
	iso := g.AddUser(9000, 9000)
	requests := []Request{
		{ID: 0, Users: []graph.NodeID{0, 1, iso}, Arrival: 0, Hold: 100},
		{ID: 1, Users: []graph.NodeID{0, 1}, Arrival: 1, Hold: 1},
	}
	report, err := Simulate(g, requests, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if report.Outcomes[0].Accepted {
		t.Fatal("unreachable-user session admitted")
	}
	if !report.Outcomes[1].Accepted {
		t.Fatal("rollback failed: follow-up session rejected")
	}
	if errors.Is(err, ErrBadRequest) {
		t.Fatal("infeasibility misreported as bad request")
	}
}

// TestSimulateDistinguishesErrorsFromRejections pins the admission error
// contract: infeasibility counts as a rejection; real solver errors (here,
// a user set naming a switch, which fails problem construction) and context
// cancellation propagate instead of being silently absorbed into the
// rejected count.
func TestSimulateDistinguishesErrorsFromRejections(t *testing.T) {
	g := bottleneck(t)
	params := quantum.DefaultParams()

	// Infeasible request → rejection, not an error.
	report, err := Simulate(g, []Request{
		{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: 0, Hold: 10},
		{ID: 1, Users: []graph.NodeID{2, 3}, Arrival: 1, Hold: 10},
	}, params)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if report.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", report.Rejected)
	}

	// Node 4 is a switch: problem construction fails. That is a caller
	// error and must propagate, not count as a rejection.
	_, err = Simulate(g, []Request{
		{ID: 0, Users: []graph.NodeID{0, 4}, Arrival: 0, Hold: 10},
	}, params)
	if err == nil {
		t.Fatal("switch-as-user request did not propagate an error")
	}
	if errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("construction failure misclassified as infeasibility: %v", err)
	}
}

func TestSimulateContextCancellationPropagates(t *testing.T) {
	g := bottleneck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, g, []Request{
		{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: 0, Hold: 10},
	}, quantum.DefaultParams())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled simulate error = %v, want context.Canceled", err)
	}
}

func TestReportSummaryAndJSON(t *testing.T) {
	g := bottleneck(t)
	report, err := Simulate(g, []Request{
		{ID: 0, Users: []graph.NodeID{0, 1}, Arrival: 0, Hold: 10},
		{ID: 1, Users: []graph.NodeID{2, 3}, Arrival: 1, Hold: 10},
		{ID: 2, Users: []graph.NodeID{2, 3}, Arrival: 20, Hold: 5},
	}, quantum.DefaultParams())
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	sum := report.Summary()
	if sum.Sessions != 3 || sum.Accepted != 2 || sum.Rejected != 1 {
		t.Fatalf("summary counts: %+v", sum)
	}
	if sum.Work.DijkstraRuns == 0 || sum.Work != report.Work {
		t.Fatalf("summary work counters not embedded: %+v", sum.Work)
	}
	text := report.String()
	for _, want := range []string{
		"sessions:          3",
		"accepted:          2",
		"rejected:          1",
		"acceptance ratio:  0.667",
		"peak qubits held:  2",
		"solve work:        dijkstra=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}

	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var decoded Summary
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("unmarshal summary: %v", err)
	}
	if decoded != sum {
		t.Fatalf("JSON round trip: %+v != %+v", decoded, sum)
	}
	if !strings.Contains(string(blob), `"dijkstra_runs"`) {
		t.Fatalf("SolveStats JSON tags missing: %s", blob)
	}
}
