package sched

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"
)

// TestSummaryJSONRoundTrip pins the Summary wire format: the daemon's
// /metrics embeds a Summary and the durability layer snapshots documents
// containing it, so both the field set and round-trip stability matter.
func TestSummaryJSONRoundTrip(t *testing.T) {
	g, err := topology.Generate(topology.Default(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	w := Workload{Requests: 40, MeanInterarrival: 1, MeanHold: 5, MinUsers: 2, MaxUsers: 4}
	requests, err := w.Generate(g, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	report, err := Simulate(g, requests, quantum.DefaultParams())
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	sum := report.Summary()
	if sum.Sessions == 0 || sum.Accepted == 0 {
		t.Fatalf("degenerate summary %+v", sum)
	}

	blob, err := json.Marshal(sum)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, sum) {
		t.Fatalf("round trip changed the summary:\nbefore %+v\nafter  %+v", sum, back)
	}
	// Marshal → unmarshal → marshal is a fixed point: no field is dropped,
	// renamed, or reordered between the two serializations.
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(blob2) != string(blob) {
		t.Fatalf("serialization not stable:\nfirst  %s\nsecond %s", blob, blob2)
	}

	// The wire names are part of the contract (scripts and CI jq them).
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(blob, &fields); err != nil {
		t.Fatalf("decode as map: %v", err)
	}
	for _, key := range []string{
		"sessions", "accepted", "rejected", "acceptance_ratio",
		"mean_accepted_rate", "peak_qubits_in_use", "work",
	} {
		if _, ok := fields[key]; !ok {
			t.Errorf("summary JSON lost field %q: %s", key, blob)
		}
	}
	if len(fields) != 7 {
		t.Errorf("summary JSON has %d fields, want 7: %s", len(fields), blob)
	}
}

// TestReportJSONRoundTrip pins Report's serialization contract: a Report
// marshals as its Summary (the aggregate view — per-request outcomes stay
// in memory), and decoding that JSON as a Summary loses nothing.
func TestReportJSONRoundTrip(t *testing.T) {
	g, err := topology.Generate(topology.Default(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	w := Workload{Requests: 25, MeanInterarrival: 1, MeanHold: 4, MinUsers: 2, MaxUsers: 3}
	requests, err := w.Generate(g, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	report, err := Simulate(g, requests, quantum.DefaultParams())
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}

	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	asSummary, err := json.Marshal(report.Summary())
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	if string(blob) != string(asSummary) {
		t.Fatalf("Report JSON is not its Summary JSON:\nreport  %s\nsummary %s", blob, asSummary)
	}
	var back Summary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, report.Summary()) {
		t.Fatalf("summary diverges after round trip:\nbefore %+v\nafter  %+v", report.Summary(), back)
	}
}
