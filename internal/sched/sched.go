// Package sched runs the network as a service: entanglement requests
// (multi-user sessions) arrive over time, each holding its routed tree's
// switch qubits for a duration, and an admission controller routes them on
// the *residual* capacity — the dynamic counterpart of the paper's one-shot
// MUERP, and the natural operational layer above the multigroup extension.
//
// The model is an offline discrete-event simulation: arrivals are processed
// in time order; a session accepted at time t releases its qubits at
// t + Hold; a request whose users cannot be spanned by the residual
// capacity at its arrival instant is rejected (no queueing — blocked calls
// are cleared, as in classic loss-network analysis).
package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// Request is one entanglement-session request.
type Request struct {
	// ID identifies the request in the report.
	ID int
	// Users is the set to entangle (at least 2).
	Users []graph.NodeID
	// Arrival is the request's arrival time (arbitrary units).
	Arrival float64
	// Hold is how long an accepted session keeps its qubits reserved.
	Hold float64
}

// Outcome records one request's fate.
type Outcome struct {
	Request  Request
	Accepted bool
	// Rate is the session's Eq. 2 entanglement rate when accepted.
	Rate float64
	// Reason explains a rejection.
	Reason string
}

// Report aggregates a whole simulation.
type Report struct {
	Outcomes []Outcome
	Accepted int
	Rejected int
	// PeakQubitsInUse is the maximum number of switch qubits simultaneously
	// reserved at any arrival instant.
	PeakQubitsInUse int
	// Work sums the routing work counters over every admission attempt.
	Work core.SolveStats
}

// AcceptanceRatio returns accepted / total (0 for an empty run).
func (r Report) AcceptanceRatio() float64 {
	total := r.Accepted + r.Rejected
	if total == 0 {
		return 0
	}
	return float64(r.Accepted) / float64(total)
}

// MeanAcceptedRate returns the mean Eq. 2 rate over accepted sessions.
func (r Report) MeanAcceptedRate() float64 {
	sum, n := 0.0, 0
	for _, o := range r.Outcomes {
		if o.Accepted {
			sum += o.Rate
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary is the compact, serializable face of an admission run. It is the
// ONE representation of admission results shared across the repo: cmd/qsched
// prints Summary.String(), and the muerpd daemon's /metrics endpoint embeds
// a Summary built from its live counters — neither duplicates the format.
type Summary struct {
	// Sessions counts every decided request (accepted + rejected).
	Sessions int `json:"sessions"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// AcceptanceRatio is Accepted / Sessions (0 for an empty run).
	AcceptanceRatio float64 `json:"acceptance_ratio"`
	// MeanAcceptedRate is the mean Eq. 2 rate over accepted sessions.
	MeanAcceptedRate float64 `json:"mean_accepted_rate"`
	// PeakQubitsInUse is the high-water mark of simultaneously reserved
	// switch qubits.
	PeakQubitsInUse int `json:"peak_qubits_in_use"`
	// Work sums the routing work over every admission attempt.
	Work core.SolveStats `json:"work"`
}

// Summary condenses the report.
func (r Report) Summary() Summary {
	return Summary{
		Sessions:         r.Accepted + r.Rejected,
		Accepted:         r.Accepted,
		Rejected:         r.Rejected,
		AcceptanceRatio:  r.AcceptanceRatio(),
		MeanAcceptedRate: r.MeanAcceptedRate(),
		PeakQubitsInUse:  r.PeakQubitsInUse,
		Work:             r.Work,
	}
}

// String renders the summary as the aligned block cmd/qsched prints.
func (s Summary) String() string {
	return fmt.Sprintf(
		"sessions:          %d\n"+
			"accepted:          %d\n"+
			"rejected:          %d\n"+
			"acceptance ratio:  %.3f\n"+
			"mean session rate: %.4e\n"+
			"peak qubits held:  %d\n"+
			"solve work:        %s\n",
		s.Sessions, s.Accepted, s.Rejected, s.AcceptanceRatio,
		s.MeanAcceptedRate, s.PeakQubitsInUse, s.Work)
}

// String renders the report's summary block; per-request outcomes are not
// included (range Outcomes for those).
func (r Report) String() string { return r.Summary().String() }

// MarshalJSON encodes the report as its Summary — the aggregate view, not
// the per-request outcome list (marshal Outcomes directly if needed).
func (r Report) MarshalJSON() ([]byte, error) { return json.Marshal(r.Summary()) }

// Scheduler errors.
var (
	ErrNoRequests = errors.New("sched: no requests")
	ErrBadRequest = errors.New("sched: invalid request")
)

// Verdict classifies one admission attempt's outcome. It is the ONE
// decision semantics shared by the offline simulator and the online
// daemon's schedulers (serial and speculative), which is what lets the
// differential tests compare them decision for decision.
type Verdict int

const (
	// VerdictAccepted: the solve produced a tree and its reservations hold.
	VerdictAccepted Verdict = iota
	// VerdictRejected: genuine infeasibility under residual capacity with a
	// live context — the only outcome that counts as a loss-network block.
	VerdictRejected
	// VerdictAborted: the context ended (a cancelled solve can surface a
	// spurious "unreachable" partial result, so the ctx check wins even when
	// the error also wraps ErrInfeasible) or the solver faulted internally.
	VerdictAborted
)

// Classify maps a routing attempt's (context error, solve error) pair onto
// the shared Verdict space.
func Classify(ctxErr, solveErr error) Verdict {
	switch {
	case solveErr == nil:
		return VerdictAccepted
	case ctxErr != nil:
		return VerdictAborted
	case errors.Is(solveErr, core.ErrInfeasible):
		return VerdictRejected
	default:
		return VerdictAborted
	}
}

// session is one admitted request awaiting departure.
type session struct {
	departAt float64
	tree     quantum.Tree
}

// Simulate runs the admission simulation with background context; see
// SimulateContext.
func Simulate(g *graph.Graph, requests []Request, params quantum.Params) (Report, error) {
	return SimulateContext(context.Background(), g, requests, params)
}

// SimulateContext runs the admission simulation. Requests may be given in
// any order; they are processed by arrival time (ties by ID). The graph is
// not modified. A cancelled ctx aborts between routing steps with its
// error; the per-request routing work is summed into Report.Work.
func SimulateContext(ctx context.Context, g *graph.Graph, requests []Request, params quantum.Params) (Report, error) {
	if g == nil {
		return Report{}, errors.New("sched: nil graph")
	}
	if len(requests) == 0 {
		return Report{}, ErrNoRequests
	}
	for _, req := range requests {
		if len(req.Users) < 2 {
			return Report{}, fmt.Errorf("%w: request %d has %d users", ErrBadRequest, req.ID, len(req.Users))
		}
		if req.Hold <= 0 || math.IsNaN(req.Hold) || math.IsInf(req.Hold, 0) {
			return Report{}, fmt.Errorf("%w: request %d hold %g", ErrBadRequest, req.ID, req.Hold)
		}
		if math.IsNaN(req.Arrival) || math.IsInf(req.Arrival, 0) {
			return Report{}, fmt.Errorf("%w: request %d arrival %g", ErrBadRequest, req.ID, req.Arrival)
		}
	}
	ordered := make([]Request, len(requests))
	copy(ordered, requests)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})

	led := quantum.NewLedger(g)
	var active []session
	report := Report{}
	for _, req := range ordered {
		// Departures strictly before (or at) this arrival free their qubits.
		active = expireSessions(led, active, req.Arrival)

		prob, err := core.NewProblem(g, req.Users, params)
		if err != nil {
			return Report{}, fmt.Errorf("sched: request %d: %w", req.ID, err)
		}
		tree, err := core.BuildGreedyTree(ctx, prob, led, &core.SolveOptions{Stats: &report.Work})
		// Only VerdictRejected (genuine infeasibility, live context) counts
		// as a loss-network block. VerdictAborted — context cancellation,
		// solver/ledger faults — aborts the whole simulation with the error.
		switch Classify(ctx.Err(), err) {
		case VerdictRejected:
			report.Outcomes = append(report.Outcomes, Outcome{
				Request: req, Accepted: false, Reason: err.Error(),
			})
			report.Rejected++
			continue
		case VerdictAborted:
			return Report{}, fmt.Errorf("sched: request %d: %w", req.ID, err)
		}
		active = append(active, session{departAt: req.Arrival + req.Hold, tree: tree})
		report.Outcomes = append(report.Outcomes, Outcome{Request: req, Accepted: true, Rate: tree.Rate()})
		report.Accepted++
		if used := led.UsedQubits(); used > report.PeakQubitsInUse {
			report.PeakQubitsInUse = used
		}
	}
	return report, nil
}

// expireSessions releases every session departing at or before now.
func expireSessions(led *quantum.Ledger, active []session, now float64) []session {
	remaining := active[:0]
	for _, s := range active {
		if s.departAt <= now {
			core.ReleaseTree(led, s.tree)
		} else {
			remaining = append(remaining, s)
		}
	}
	return remaining
}

// Workload parameterizes a random request stream.
type Workload struct {
	// Requests is how many to generate.
	Requests int
	// MeanInterarrival is the exponential inter-arrival mean.
	MeanInterarrival float64
	// MeanHold is the exponential session-duration mean.
	MeanHold float64
	// MinUsers and MaxUsers bound the uniformly drawn session size.
	MinUsers, MaxUsers int
}

// DefaultWorkload returns a moderate-load stream: 100 sessions of 2-4
// users, inter-arrival 1, hold 5.
func DefaultWorkload() Workload {
	return Workload{Requests: 100, MeanInterarrival: 1, MeanHold: 5, MinUsers: 2, MaxUsers: 4}
}

// Generate draws a random request stream over g's user population.
func (w Workload) Generate(g *graph.Graph, rng *rand.Rand) ([]Request, error) {
	users := g.Users()
	if w.Requests <= 0 {
		return nil, fmt.Errorf("%w: %d requests", ErrBadRequest, w.Requests)
	}
	if w.MinUsers < 2 || w.MaxUsers < w.MinUsers {
		return nil, fmt.Errorf("%w: user range [%d, %d]", ErrBadRequest, w.MinUsers, w.MaxUsers)
	}
	if w.MaxUsers > len(users) {
		return nil, fmt.Errorf("%w: sessions of up to %d users on a %d-user network",
			ErrBadRequest, w.MaxUsers, len(users))
	}
	if w.MeanInterarrival <= 0 || w.MeanHold <= 0 {
		return nil, fmt.Errorf("%w: means must be positive", ErrBadRequest)
	}
	if rng == nil {
		return nil, errors.New("sched: nil rng")
	}
	out := make([]Request, 0, w.Requests)
	now := 0.0
	for i := 0; i < w.Requests; i++ {
		now += rng.ExpFloat64() * w.MeanInterarrival
		size := w.MinUsers + rng.Intn(w.MaxUsers-w.MinUsers+1)
		perm := rng.Perm(len(users))
		members := make([]graph.NodeID, size)
		for j := 0; j < size; j++ {
			members[j] = users[perm[j]]
		}
		out = append(out, Request{
			ID:      i,
			Users:   members,
			Arrival: now,
			Hold:    rng.ExpFloat64() * w.MeanHold,
		})
	}
	return out, nil
}
