package quantum

import (
	"errors"
	"math"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

// starNetwork builds three users around one switch (Fig. 4a):
//
//	u0, u1, u2 all adjacent to s3 (4 qubits) and to each other via long
//	direct fibers.
func starNetwork(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4, 6)
	g.AddUser(0, 0)      // u0
	g.AddUser(2, 0)      // u1
	g.AddUser(1, 2)      // u2
	g.AddSwitch(1, 1, 4) // s3
	g.MustAddEdge(0, 3, 1000)
	g.MustAddEdge(1, 3, 1000)
	g.MustAddEdge(2, 3, 1000)
	g.MustAddEdge(0, 1, 9000)
	g.MustAddEdge(0, 2, 9000)
	return g
}

func mustChannel(t *testing.T, g *graph.Graph, p Params, path ...graph.NodeID) Channel {
	t.Helper()
	ch, err := NewChannel(g, path, p)
	if err != nil {
		t.Fatalf("NewChannel(%v): %v", path, err)
	}
	return ch
}

func TestTreeRateIsProduct(t *testing.T) {
	g := starNetwork(t)
	p := DefaultParams()
	c1 := mustChannel(t, g, p, 0, 3, 1)
	c2 := mustChannel(t, g, p, 0, 2)
	tree := Tree{Channels: []Channel{c1, c2}}
	want := c1.Rate * c2.Rate
	if math.Abs(tree.Rate()-want) > 1e-15 {
		t.Fatalf("Rate = %g, want %g", tree.Rate(), want)
	}
	if math.Abs(tree.LogRate()-math.Log(want)) > 1e-9 {
		t.Fatalf("LogRate = %g, want %g", tree.LogRate(), math.Log(want))
	}
}

func TestEmptyTreeRate(t *testing.T) {
	tree := Tree{}
	if tree.Rate() != 1 {
		t.Fatalf("empty Rate = %g, want 1", tree.Rate())
	}
	if tree.LogRate() != 0 {
		t.Fatalf("empty LogRate = %g, want 0", tree.LogRate())
	}
}

func TestTreeQubitLoad(t *testing.T) {
	g := starNetwork(t)
	p := DefaultParams()
	tree := Tree{Channels: []Channel{
		mustChannel(t, g, p, 0, 3, 1),
		mustChannel(t, g, p, 0, 3, 2),
	}}
	load := tree.QubitLoad()
	if got := load[3]; got != 4 {
		t.Fatalf("QubitLoad[s3] = %d, want 4 (Fig. 4a)", got)
	}
	users := tree.Users()
	for _, u := range []graph.NodeID{0, 1, 2} {
		if !users[u] {
			t.Errorf("Users() missing %d", u)
		}
	}
}

func TestValidateTreeAccepts(t *testing.T) {
	g := starNetwork(t)
	p := DefaultParams()
	// The Fig. 4a configuration: two channels through the switch.
	tree := Tree{Channels: []Channel{
		mustChannel(t, g, p, 0, 3, 1),
		mustChannel(t, g, p, 0, 3, 2),
	}}
	if err := ValidateTree(g, []graph.NodeID{0, 1, 2}, tree, p); err != nil {
		t.Fatalf("ValidateTree: %v", err)
	}
}

func TestValidateTreeSingleUser(t *testing.T) {
	g := starNetwork(t)
	if err := ValidateTree(g, []graph.NodeID{0}, Tree{}, DefaultParams()); err != nil {
		t.Fatalf("single user with no channels: %v", err)
	}
}

func TestValidateTreeRejections(t *testing.T) {
	g := starNetwork(t)
	p := DefaultParams()
	c01 := mustChannel(t, g, p, 0, 3, 1)
	c02 := mustChannel(t, g, p, 0, 3, 2)
	c01direct := mustChannel(t, g, p, 0, 1)
	c02direct := mustChannel(t, g, p, 0, 2)
	users := []graph.NodeID{0, 1, 2}

	badRate := c01
	badRate.Rate *= 2

	tightG := g.Clone()
	tightG.SetQubits(3, 2) // only one channel fits through the switch

	tests := []struct {
		name    string
		g       *graph.Graph
		users   []graph.NodeID
		tree    Tree
		wantErr error
	}{
		{"too few channels", g, users, Tree{Channels: []Channel{c01}}, ErrWrongTreeDegree},
		{"loop among users", g, users,
			Tree{Channels: []Channel{c01, c01direct}}, nil /* dup pair first */},
		{"duplicate pair", g, users,
			Tree{Channels: []Channel{c01, c01direct}}, ErrDuplicatePair},
		{"disconnected", g, users,
			Tree{Channels: []Channel{c01, c01direct}}, ErrDuplicatePair},
		{"foreign endpoint", g, []graph.NodeID{0, 1},
			Tree{Channels: []Channel{c02}}, ErrForeignUser},
		{"rate mismatch", g, users,
			Tree{Channels: []Channel{badRate, c02}}, ErrRateMismatch},
		{"over capacity", tightG, users,
			Tree{Channels: []Channel{c01, c02}}, ErrOverCapacity},
		{"empty users", g, nil, Tree{}, nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateTree(tc.g, tc.users, tc.tree, p)
			if err == nil {
				t.Fatalf("ValidateTree accepted %s", tc.name)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
		})
	}

	// A genuine loop: three channels pairwise-connecting three users.
	c12 := Tree{Channels: []Channel{c01direct, c02direct, mustChannel(t, g, p, 0, 3, 1)}}
	err := ValidateTree(g, users, c12, p)
	if !errors.Is(err, ErrWrongTreeDegree) {
		t.Fatalf("3 channels over 3 users error = %v, want ErrWrongTreeDegree", err)
	}
}

func TestValidateTreeUserListChecks(t *testing.T) {
	g := starNetwork(t)
	p := DefaultParams()
	if err := ValidateTree(g, []graph.NodeID{0, 0}, Tree{}, p); err == nil {
		t.Fatal("duplicate user accepted")
	}
	if err := ValidateTree(g, []graph.NodeID{3}, Tree{}, p); err == nil {
		t.Fatal("switch in user set accepted")
	}
	if err := ValidateTree(g, []graph.NodeID{99}, Tree{}, p); err == nil {
		t.Fatal("unknown node in user set accepted")
	}
}

func TestValidateTreeCapacityBoundary(t *testing.T) {
	g := starNetwork(t)
	p := DefaultParams()
	// Exactly at capacity (4 qubits, two channels) passes; shrinking to 3
	// fails (a channel needs 2 whole qubits).
	tree := Tree{Channels: []Channel{
		mustChannel(t, g, p, 0, 3, 1),
		mustChannel(t, g, p, 0, 3, 2),
	}}
	if err := ValidateTree(g, []graph.NodeID{0, 1, 2}, tree, p); err != nil {
		t.Fatalf("at-capacity tree rejected: %v", err)
	}
	g.SetQubits(3, 3)
	if err := ValidateTree(g, []graph.NodeID{0, 1, 2}, tree, p); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("3-qubit switch error = %v, want ErrOverCapacity", err)
	}
}
