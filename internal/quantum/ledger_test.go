package quantum

import (
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

func ledgerNetwork(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4, 3)
	g.AddUser(0, 0)      // 0
	g.AddSwitch(1, 0, 4) // 1
	g.AddSwitch(2, 0, 2) // 2
	g.AddUser(3, 0)      // 3
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(2, 3, 100)
	return g
}

func TestLedgerInitialBudgets(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	if got := l.Free(1); got != 4 {
		t.Errorf("Free(switch 1) = %d, want 4", got)
	}
	if got := l.Free(2); got != 2 {
		t.Errorf("Free(switch 2) = %d, want 2", got)
	}
	if got := l.Free(0); got != 0 {
		t.Errorf("Free(user) = %d, want 0 (users have no budget)", got)
	}
	if got := l.UsedQubits(); got != 0 {
		t.Errorf("UsedQubits = %d, want 0", got)
	}
}

func TestReserveAndRelease(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	path := []graph.NodeID{0, 1, 2, 3}
	if !l.CanCarry(path) {
		t.Fatal("fresh ledger cannot carry the channel")
	}
	if err := l.Reserve(path); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := l.Free(1); got != 2 {
		t.Errorf("Free(1) after reserve = %d, want 2", got)
	}
	if got := l.Free(2); got != 0 {
		t.Errorf("Free(2) after reserve = %d, want 0", got)
	}
	if got := l.UsedQubits(); got != 4 {
		t.Errorf("UsedQubits = %d, want 4", got)
	}
	// Switch 2 is exhausted: a second channel must be rejected atomically.
	if l.CanCarry(path) {
		t.Fatal("exhausted switch still reported able to carry")
	}
	if err := l.Reserve(path); err == nil {
		t.Fatal("Reserve over capacity succeeded")
	}
	if got := l.Free(1); got != 2 {
		t.Errorf("failed Reserve mutated Free(1) = %d, want 2", got)
	}
	l.Release(path)
	if l.Free(1) != 4 || l.Free(2) != 2 {
		t.Fatalf("Release did not restore budgets: %d, %d", l.Free(1), l.Free(2))
	}
}

func TestReserveIgnoresEndpoints(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	// Direct user-user path reserves nothing.
	if err := l.Reserve([]graph.NodeID{0, 3}); err != nil {
		t.Fatalf("Reserve direct: %v", err)
	}
	if got := l.UsedQubits(); got != 0 {
		t.Fatalf("direct channel consumed %d qubits", got)
	}
}

func TestCanRelay(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	if l.CanRelay(g.Node(0)) {
		t.Error("user reported as relay-capable")
	}
	if !l.CanRelay(g.Node(2)) {
		t.Error("switch with 2 free qubits rejected")
	}
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if l.CanRelay(g.Node(2)) {
		t.Error("exhausted switch reported relay-capable")
	}
	if !l.CanRelay(g.Node(1)) {
		t.Error("half-used switch rejected")
	}
}

func TestLedgerClone(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	c := l.Clone()
	if err := c.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if l.Free(2) != 2 {
		t.Fatal("clone mutation leaked into the original")
	}
}

func TestReleaseUnreservedPanics(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Reserve did not panic")
		}
	}()
	l.Release([]graph.NodeID{0, 1, 2, 3})
}

func TestLedgerEpochClosuresAccumulateInOrder(t *testing.T) {
	// 0 —[s1: 2q]— 1 —[s2: 4q]— 2 —[s3: 2q]— 3, users at the ends.
	g := graph.New(5, 4)
	g.AddUser(0, 0)      // 0
	g.AddSwitch(1, 0, 2) // 1
	g.AddSwitch(2, 0, 4) // 2
	g.AddSwitch(3, 0, 2) // 3
	g.AddUser(4, 0)      // 4
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(2, 3, 100)
	g.MustAddEdge(3, 4, 100)
	l := NewLedger(g)

	e0 := l.Epoch()
	if ids, ok := l.ClosedSince(e0); !ok || len(ids) != 0 {
		t.Fatalf("fresh ledger ClosedSince = %v, %v; want empty, true", ids, ok)
	}

	path := []graph.NodeID{0, 1, 2, 3, 4}
	if err := l.Reserve(path); err != nil {
		t.Fatal(err)
	}
	// Switches 1 and 3 dropped 2->0 (closed, in path order); switch 2 went
	// 4->2 and stays open.
	ids, ok := l.ClosedSince(e0)
	if !ok {
		t.Fatal("ClosedSince invalidated by Reserve-only mutation")
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("closures after first reserve = %v, want [1 3]", ids)
	}

	e1 := l.Epoch()
	if ids, ok := l.ClosedSince(e1); !ok || len(ids) != 0 {
		t.Fatalf("ClosedSince(current) = %v, %v; want empty, true", ids, ok)
	}
	// Close switch 2 via the short interior path 0-1? No: 1 is closed. Use a
	// direct reservation exercising only switch 2's drop below 2.
	if err := l.Reserve([]graph.NodeID{0, 2, 4}); err != nil {
		t.Fatal(err)
	}
	ids, ok = l.ClosedSince(e1)
	if !ok || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("closures after second reserve = %v (ok=%v), want [2]", ids, ok)
	}
	// The older epoch sees the full history.
	if ids, ok := l.ClosedSince(e0); !ok || len(ids) != 3 {
		t.Fatalf("ClosedSince(e0) = %v (ok=%v), want all three closures", ids, ok)
	}
}

func TestLedgerReleaseReopenInvalidatesEpochs(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	path := []graph.NodeID{0, 1, 2, 3}
	e0 := l.Epoch()
	if err := l.Reserve(path); err != nil {
		t.Fatal(err)
	}
	// Switch 2 (2 qubits) closed; switch 1 (4 qubits) stayed open.
	if ids, ok := l.ClosedSince(e0); !ok || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("closures = %v (ok=%v), want [2]", ids, ok)
	}
	e1 := l.Epoch()
	l.Release(path) // reopens switch 2: monotonicity broke
	if _, ok := l.ClosedSince(e0); ok {
		t.Error("epoch from before the reopening Release still validates")
	}
	if _, ok := l.ClosedSince(e1); ok {
		t.Error("epoch from the closed state still validates after reopen")
	}
	// The new generation starts clean and is monotone again.
	e2 := l.Epoch()
	if ids, ok := l.ClosedSince(e2); !ok || len(ids) != 0 {
		t.Fatalf("post-reopen ClosedSince = %v, %v; want empty, true", ids, ok)
	}
	if err := l.Reserve(path); err != nil {
		t.Fatal(err)
	}
	if ids, ok := l.ClosedSince(e2); !ok || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("post-reopen closures = %v (ok=%v), want [2]", ids, ok)
	}
}

func TestLedgerReleaseWithoutReopenKeepsEpochs(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	e0 := l.Epoch()
	// Only switch 1 (4 qubits) is interior: 4 -> 2, never below 2, and the
	// release (2 -> 4) crosses no reopening threshold either.
	if err := l.Reserve([]graph.NodeID{0, 1, 2}); err == nil {
		// Path 0-1-2 ends at switch 2, which NewChannel would reject; the
		// ledger only cares about interiors, so this is a pure capacity op.
		l.Release([]graph.NodeID{0, 1, 2})
	} else {
		t.Fatal(err)
	}
	if ids, ok := l.ClosedSince(e0); !ok || len(ids) != 0 {
		t.Fatalf("ClosedSince after non-reopening release = %v, %v; want empty, true", ids, ok)
	}
}

func TestLedgerCloneCopiesClosureHistory(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	e0 := l.Epoch()
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c := l.Clone()
	if ids, ok := c.ClosedSince(e0); !ok || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("clone ClosedSince = %v (ok=%v), want [2]", ids, ok)
	}
	// Mutating the clone must not leak closures into the original's log.
	c.Release([]graph.NodeID{0, 1, 2, 3})
	if _, ok := l.ClosedSince(e0); !ok {
		t.Fatal("clone's reopening Release invalidated the original's epochs")
	}
}

// TestLedgerConcurrentReadsRace exercises the documented concurrency
// contract under the race detector: read-only use (CanRelay during
// searches, Epoch, ClosedSince, CanCarry, Free) is safe from many
// goroutines as long as no mutation runs concurrently.
func TestLedgerConcurrentReadsRace(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	e := l.Epoch()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				_ = l.CanRelay(g.Node(1))
				_ = l.CanRelay(g.Node(2))
				_ = l.CanCarry([]graph.NodeID{0, 1, 2, 3})
				_ = l.Free(1)
				if cur := l.Epoch(); cur != e {
					t.Error("epoch changed without mutation")
					return
				}
				if ids, ok := l.ClosedSince(e); !ok || len(ids) != 0 {
					t.Error("ClosedSince inconsistent under concurrent reads")
					return
				}
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestLedgerUnknownNodePanics(t *testing.T) {
	l := NewLedger(ledgerNetwork(t))
	defer func() {
		if recover() == nil {
			t.Fatal("Free(99) did not panic")
		}
	}()
	l.Free(99)
}
