package quantum

import (
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

func ledgerNetwork(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4, 3)
	g.AddUser(0, 0)      // 0
	g.AddSwitch(1, 0, 4) // 1
	g.AddSwitch(2, 0, 2) // 2
	g.AddUser(3, 0)      // 3
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(2, 3, 100)
	return g
}

func TestLedgerInitialBudgets(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	if got := l.Free(1); got != 4 {
		t.Errorf("Free(switch 1) = %d, want 4", got)
	}
	if got := l.Free(2); got != 2 {
		t.Errorf("Free(switch 2) = %d, want 2", got)
	}
	if got := l.Free(0); got != 0 {
		t.Errorf("Free(user) = %d, want 0 (users have no budget)", got)
	}
	if got := l.UsedQubits(); got != 0 {
		t.Errorf("UsedQubits = %d, want 0", got)
	}
}

func TestReserveAndRelease(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	path := []graph.NodeID{0, 1, 2, 3}
	if !l.CanCarry(path) {
		t.Fatal("fresh ledger cannot carry the channel")
	}
	if err := l.Reserve(path); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := l.Free(1); got != 2 {
		t.Errorf("Free(1) after reserve = %d, want 2", got)
	}
	if got := l.Free(2); got != 0 {
		t.Errorf("Free(2) after reserve = %d, want 0", got)
	}
	if got := l.UsedQubits(); got != 4 {
		t.Errorf("UsedQubits = %d, want 4", got)
	}
	// Switch 2 is exhausted: a second channel must be rejected atomically.
	if l.CanCarry(path) {
		t.Fatal("exhausted switch still reported able to carry")
	}
	if err := l.Reserve(path); err == nil {
		t.Fatal("Reserve over capacity succeeded")
	}
	if got := l.Free(1); got != 2 {
		t.Errorf("failed Reserve mutated Free(1) = %d, want 2", got)
	}
	l.Release(path)
	if l.Free(1) != 4 || l.Free(2) != 2 {
		t.Fatalf("Release did not restore budgets: %d, %d", l.Free(1), l.Free(2))
	}
}

func TestReserveIgnoresEndpoints(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	// Direct user-user path reserves nothing.
	if err := l.Reserve([]graph.NodeID{0, 3}); err != nil {
		t.Fatalf("Reserve direct: %v", err)
	}
	if got := l.UsedQubits(); got != 0 {
		t.Fatalf("direct channel consumed %d qubits", got)
	}
}

func TestCanRelay(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	if l.CanRelay(g.Node(0)) {
		t.Error("user reported as relay-capable")
	}
	if !l.CanRelay(g.Node(2)) {
		t.Error("switch with 2 free qubits rejected")
	}
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if l.CanRelay(g.Node(2)) {
		t.Error("exhausted switch reported relay-capable")
	}
	if !l.CanRelay(g.Node(1)) {
		t.Error("half-used switch rejected")
	}
}

func TestLedgerClone(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	c := l.Clone()
	if err := c.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if l.Free(2) != 2 {
		t.Fatal("clone mutation leaked into the original")
	}
}

func TestReleaseUnreservedPanics(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Reserve did not panic")
		}
	}()
	l.Release([]graph.NodeID{0, 1, 2, 3})
}

func TestLedgerUnknownNodePanics(t *testing.T) {
	l := NewLedger(ledgerNetwork(t))
	defer func() {
		if recover() == nil {
			t.Fatal("Free(99) did not panic")
		}
	}()
	l.Free(99)
}
