package quantum

import (
	"errors"
	"reflect"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

// shardGraph builds a path of 4 switches (IDs 2..5) between two users.
func shardGraph(t *testing.T, qubits int) *graph.Graph {
	t.Helper()
	g := graph.New(0, 0)
	u0 := g.AddUser(0, 0)
	u1 := g.AddUser(5, 0)
	var sw []graph.NodeID
	for i := 0; i < 4; i++ {
		sw = append(sw, g.AddSwitch(float64(i+1), 0, qubits))
	}
	g.MustAddEdge(u0, sw[0], 100)
	for i := 1; i < len(sw); i++ {
		g.MustAddEdge(sw[i-1], sw[i], 100)
	}
	g.MustAddEdge(sw[len(sw)-1], u1, 100)
	return g
}

func TestSortedLoadDeterministic(t *testing.T) {
	load := map[graph.NodeID]int{5: 2, 2: 4, 9: 2}
	want := []LoadEntry{{ID: 2, Qubits: 4}, {ID: 5, Qubits: 2}, {ID: 9, Qubits: 2}}
	for i := 0; i < 10; i++ {
		if got := SortedLoad(load); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedLoad = %v, want %v", got, want)
		}
	}
	if SortedLoad(nil) != nil {
		t.Error("SortedLoad(nil) != nil")
	}
}

// ReserveLoad must mirror Reserve's budgets and closure log for the same
// per-switch demand.
func TestReserveLoadMatchesReserve(t *testing.T) {
	g := shardGraph(t, 4)
	path := []graph.NodeID{0, 2, 3, 4, 5, 1}

	byPath := NewLedger(g)
	if err := byPath.Reserve(path); err != nil {
		t.Fatal(err)
	}
	byLoad := NewLedger(g)
	load := map[graph.NodeID]int{}
	for i := 1; i+1 < len(path); i++ {
		load[path[i]] += 2
	}
	if err := byLoad.ReserveLoad(SortedLoad(load)); err != nil {
		t.Fatal(err)
	}
	a, b := byPath.ExportState(), byLoad.ExportState()
	if !reflect.DeepEqual(a.Free, b.Free) {
		t.Fatalf("free budgets diverge: %v vs %v", a.Free, b.Free)
	}
	// Path closure order follows the path; load closure order is ascending
	// ID. Here the path is ascending, so both logs must be identical.
	if !reflect.DeepEqual(a.Closed, b.Closed) {
		t.Fatalf("closure logs diverge: %v vs %v", a.Closed, b.Closed)
	}

	byPath.Release(path)
	byLoad.ReleaseLoad(SortedLoad(load))
	a, b = byPath.ExportState(), byLoad.ExportState()
	if !reflect.DeepEqual(a.Free, b.Free) || a.Gen != b.Gen {
		t.Fatalf("post-release states diverge: %+v vs %+v", a, b)
	}
}

// ReserveLoad is all-or-nothing: a slice whose last entry overdraws must
// leave the ledger untouched.
func TestReserveLoadAllOrNothing(t *testing.T) {
	g := shardGraph(t, 4)
	l := NewLedger(g)
	before := l.ExportState()
	err := l.ReserveLoad([]LoadEntry{{ID: 2, Qubits: 2}, {ID: 3, Qubits: 6}})
	if err == nil {
		t.Fatal("overdraw accepted")
	}
	if !reflect.DeepEqual(before, l.ExportState()) {
		t.Fatal("failed ReserveLoad left side effects")
	}
	if err := l.ReserveLoad([]LoadEntry{{ID: 2, Qubits: 3}}); err == nil {
		t.Fatal("odd demand accepted")
	}
	if err := l.ReserveLoad([]LoadEntry{{ID: 0, Qubits: 2}}); err == nil {
		t.Fatal("user node accepted")
	}
}

func TestReleaseLoadReopensGeneration(t *testing.T) {
	g := shardGraph(t, 4)
	l := NewLedger(g)
	entries := []LoadEntry{{ID: 2, Qubits: 4}}
	if err := l.ReserveLoad(entries); err != nil {
		t.Fatal(err)
	}
	e := l.Epoch()
	if ids, ok := l.ClosedSince(Epoch{}); !ok || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("closure log = %v ok=%v, want [2]", ids, ok)
	}
	l.ReleaseLoad(entries)
	if _, ok := l.ClosedSince(e); ok {
		t.Fatal("release reopened switch 2 but generation did not advance")
	}
	if l.Free(2) != 4 {
		t.Fatalf("free = %d, want 4", l.Free(2))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	l.ReleaseLoad(entries)
}

// ValidateSince: fresh epoch with untouched footprint passes on the fast
// path; a stale generation or touched footprint falls back to FitsLoad.
func TestValidateSince(t *testing.T) {
	g := shardGraph(t, 4)
	l := NewLedger(g)
	plan := []LoadEntry{{ID: 4, Qubits: 2}}

	e := l.Epoch()
	if !l.ValidateSince(e, plan) {
		t.Fatal("fresh plan rejected")
	}

	// A concurrent commit closes switch 3 (not in the plan): fast path holds.
	if err := l.ReserveLoad([]LoadEntry{{ID: 3, Qubits: 4}}); err != nil {
		t.Fatal(err)
	}
	if !l.ValidateSince(e, plan) {
		t.Fatal("plan rejected though closures miss its footprint")
	}

	// Drain switch 4: the closure touches the plan, and FitsLoad must
	// reject a demand the budget no longer covers.
	if err := l.ReserveLoad([]LoadEntry{{ID: 4, Qubits: 4}}); err != nil {
		t.Fatal(err)
	}
	if l.ValidateSince(e, plan) {
		t.Fatal("plan accepted though switch 4 is drained")
	}

	// Stale generation (release reopens): validation must consult FitsLoad,
	// which now passes again.
	l.ReleaseLoad([]LoadEntry{{ID: 4, Qubits: 4}})
	if _, ok := l.ClosedSince(e); ok {
		t.Fatal("generation should have moved")
	}
	if !l.ValidateSince(e, plan) {
		t.Fatal("plan rejected though capacity is back")
	}

	// Demand above 2 disables the fast path but still validates via budgets.
	big := []LoadEntry{{ID: 5, Qubits: 4}}
	if !l.ValidateSince(l.Epoch(), big) {
		t.Fatal("wide demand rejected though it fits")
	}

	if !errors.Is(ErrTxnConflict, ErrTxnConflict) {
		t.Fatal("sanity")
	}
}

func TestLoadEntriesTouch(t *testing.T) {
	entries := []LoadEntry{{ID: 2, Qubits: 2}, {ID: 4, Qubits: 2}}
	if LoadEntriesTouch(entries, []graph.NodeID{3, 5}) {
		t.Error("false touch")
	}
	if !LoadEntriesTouch(entries, []graph.NodeID{5, 4}) {
		t.Error("missed touch")
	}
	if MaxLoadEntries(entries) != 2 || MaxLoadEntries(nil) != 0 {
		t.Error("MaxLoadEntries wrong")
	}
}
