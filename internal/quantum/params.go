// Package quantum implements the physical model of the MUERP paper:
// entanglement rates of quantum links (p = exp(-alpha*L)), quantum channels
// (Eq. 1), entanglement trees (Eq. 2), and the switch-qubit accounting that
// constrains routing.
package quantum

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the physical-layer constants of the model.
type Params struct {
	// Alpha is the fiber attenuation constant per kilometre; the link
	// entanglement success rate is exp(-Alpha*L). The paper uses 1e-4.
	Alpha float64
	// SwapProb is q, the success probability of one Bell-state-measurement
	// entanglement swap at a switch. The paper's default is 0.9.
	SwapProb float64
}

// DefaultParams returns the paper's §V-A defaults: alpha = 1e-4, q = 0.9.
func DefaultParams() Params {
	return Params{Alpha: 1e-4, SwapProb: 0.9}
}

// ErrBadParams reports physically meaningless parameters.
var ErrBadParams = errors.New("quantum: invalid physical parameters")

// Validate checks that the parameters are physically meaningful:
// alpha > 0 and q in (0, 1].
func (p Params) Validate() error {
	if !(p.Alpha > 0) || math.IsInf(p.Alpha, 1) {
		return fmt.Errorf("%w: alpha %g must be positive and finite", ErrBadParams, p.Alpha)
	}
	if !(p.SwapProb > 0 && p.SwapProb <= 1) {
		return fmt.Errorf("%w: swap probability %g must be in (0, 1]", ErrBadParams, p.SwapProb)
	}
	return nil
}

// LinkRate returns the entanglement success rate of a quantum link over a
// fiber of the given length: exp(-alpha*L).
func (p Params) LinkRate(length float64) float64 {
	return math.Exp(-p.Alpha * length)
}

// EdgeWeight returns the Dijkstra edge weight of the paper's Algorithm 1:
// alpha*L - ln q. Summing it over a path of l links gives
// alpha*sum(L) + l*(-ln q); RateFromDistance undoes the transform.
func (p Params) EdgeWeight(length float64) float64 {
	return p.Alpha*length - math.Log(p.SwapProb)
}

// RateFromDistance converts a summed Algorithm-1 distance back into the
// channel entanglement rate of Eq. 1. A distance over l links is
// alpha*sum(L) + l*(-ln q), one -ln q more than the channel's l-1 swaps
// cost, so the rate is
//
//	exp(-ln q - dist) = q^(l-1) * exp(-alpha*sum(L)),
//
// matching line 27 of the paper's Algorithm 1 (RATE <- exp(-ln q - Dist)).
func (p Params) RateFromDistance(dist float64) float64 {
	return math.Exp(-math.Log(p.SwapProb) - dist)
}

// ChannelRate computes Eq. 1 directly from a channel's link lengths:
// q^(links-1) * prod_i exp(-alpha*L_i). It returns 0 for an empty length
// list, which does not describe a channel.
func (p Params) ChannelRate(lengths []float64) float64 {
	if len(lengths) == 0 {
		return 0
	}
	total := 0.0
	for _, l := range lengths {
		total += l
	}
	return p.rate(total, len(lengths))
}

// rate is the shared Eq. 1 evaluation, q^(links-1) * exp(-alpha*total).
// Every construction path funnels through it so rates stay bit-identical
// regardless of whether link lengths were summed here or by the caller.
func (p Params) rate(total float64, links int) float64 {
	return math.Pow(p.SwapProb, float64(links-1)) * math.Exp(-p.Alpha*total)
}
