package quantum

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

// ledgerRaceGraph builds 2 users bridged by nSwitches parallel 2-qubit
// switches, so every path user0-switch-user1 charges exactly one switch and
// closes it, and every release reopens it — the worst case for the closure
// generation counter.
func ledgerRaceGraph(nSwitches int) *graph.Graph {
	g := graph.New(2+nSwitches, 2*nSwitches)
	g.AddUser(0, 0)
	g.AddUser(10000, 0)
	for i := 0; i < nSwitches; i++ {
		sw := g.AddSwitch(5000, float64(i)*100, 2)
		g.MustAddEdge(0, sw, 5000)
		g.MustAddEdge(sw, 1, 5000)
	}
	return g
}

// TestLedgerSerializedMutationRace exercises the documented concurrency
// contract under the race detector: the ledger has no internal locking, so
// many goroutines hammer Reserve/Release/Epoch/ClosedSince through one
// shared mutex — the same discipline internal/service uses, where the
// admission loop and the expiry wheel share a single server mutex. Run with
// -race; any unserialized access inside the ledger would be flagged.
func TestLedgerSerializedMutationRace(t *testing.T) {
	const (
		goroutines = 8
		iterations = 400
		nSwitches  = 6
	)
	g := ledgerRaceGraph(nSwitches)
	led := NewLedger(g)
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var held [][]graph.NodeID
			for i := 0; i < iterations; i++ {
				sw := graph.NodeID(2 + rng.Intn(nSwitches))
				path := []graph.NodeID{0, sw, 1}
				mu.Lock()
				if rng.Intn(2) == 0 || len(held) == 0 {
					before := led.Epoch()
					if err := led.Reserve(path); err == nil {
						held = append(held, path)
						// Within one generation the closure log only grows.
						if closed, ok := led.ClosedSince(before); ok && len(closed) == 0 {
							mu.Unlock()
							t.Errorf("reserve of a 2-qubit switch did not close it")
							return
						}
					}
				} else {
					last := len(held) - 1
					led.Release(held[last])
					held = held[:last]
				}
				_ = led.Epoch()
				_ = led.Free(graph.NodeID(2))
				mu.Unlock()
			}
			mu.Lock()
			for _, p := range held {
				led.Release(p)
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if used := led.UsedQubits(); used != 0 {
		t.Fatalf("UsedQubits = %d after all releases, want 0", used)
	}
}

// TestLedgerConcurrentReadOnly pins the other half of the contract: with no
// mutation in flight, read-only use (CanRelay/Free/Epoch/ClosedSince) is
// safe from any number of goroutines without a lock.
func TestLedgerConcurrentReadOnly(t *testing.T) {
	const nSwitches = 6
	g := ledgerRaceGraph(nSwitches)
	led := NewLedger(g)
	// Close one switch before the readers start, so ClosedSince has content.
	if err := led.Reserve([]graph.NodeID{0, 2, 1}); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	base := Epoch{}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				for _, n := range g.Nodes() {
					_ = led.CanRelay(n)
					_ = led.Free(n.ID)
				}
				if e := led.Epoch(); e.N != 1 {
					t.Errorf("Epoch().N = %d, want 1", e.N)
					return
				}
				closed, ok := led.ClosedSince(base)
				if !ok || len(closed) != 1 || closed[0] != 2 {
					t.Errorf("ClosedSince = %v, %v", closed, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
}
