package quantum

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

// footprintNetwork is a line of switches between two users, wide enough for
// multi-entry footprints.
func footprintNetwork(tb testing.TB, switches, qubits int) *graph.Graph {
	tb.Helper()
	g := graph.New(switches+2, switches+1)
	g.AddUser(0, 0)
	for i := 1; i <= switches; i++ {
		g.AddSwitch(float64(i), 0, qubits)
	}
	g.AddUser(float64(switches+1), 0)
	for i := 0; i <= switches; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 10)
	}
	return g
}

func TestFootprintBasics(t *testing.T) {
	f := NewFootprint(8)
	if f.Len() != 0 || f.Max() != 0 {
		t.Fatalf("fresh footprint not empty: len %d max %d", f.Len(), f.Max())
	}
	f.Add(3, 2)
	f.Add(5, 4)
	f.Add(3, 2)
	if got := f.Get(3); got != 4 {
		t.Errorf("Get(3) = %d, want 4 (accumulated)", got)
	}
	if got := f.Get(5); got != 4 {
		t.Errorf("Get(5) = %d, want 4", got)
	}
	if got := f.Get(1); got != 0 {
		t.Errorf("Get(absent) = %d, want 0", got)
	}
	if got := f.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	if got := f.Max(); got != 4 {
		t.Errorf("Max = %d, want 4", got)
	}
	if !f.Touches([]graph.NodeID{1, 5}) {
		t.Error("Touches missed a loaded switch")
	}
	if f.Touches([]graph.NodeID{0, 1, 2}) {
		t.Error("Touches reported an unloaded switch")
	}
	f.Add(5, -4) // accumulate to zero removes
	if f.Get(5) != 0 || f.Len() != 1 {
		t.Errorf("Add to zero left Get(5)=%d Len=%d", f.Get(5), f.Len())
	}
	f.Remove(3)
	if f.Len() != 0 {
		t.Errorf("Remove left Len=%d", f.Len())
	}
	f.Add(2, 2)
	f.Reset()
	if f.Len() != 0 || f.Get(2) != 0 || f.Touches([]graph.NodeID{2}) {
		t.Error("Reset left residue")
	}
}

func TestFootprintNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative accumulated load did not panic")
		}
	}()
	f := NewFootprint(4)
	f.Add(1, 2)
	f.Add(1, -4)
}

func TestFootprintSortAndEntries(t *testing.T) {
	f := NewFootprint(16)
	for _, id := range []graph.NodeID{9, 2, 14, 5} {
		f.Add(id, 2)
	}
	f.Remove(2) // swap-delete scrambles order; Sort must restore determinism
	f.Add(1, 4)
	f.Sort()
	got := f.AppendEntries(nil)
	want := []LoadEntry{{ID: 1, Qubits: 4}, {ID: 5, Qubits: 2}, {ID: 9, Qubits: 2}, {ID: 14, Qubits: 2}}
	if len(got) != len(want) {
		t.Fatalf("entries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries %v, want %v", got, want)
		}
	}
	// Sparse index must be consistent after Sort.
	for _, e := range want {
		if f.Get(e.ID) != e.Qubits {
			t.Errorf("after Sort Get(%d) = %d, want %d", e.ID, f.Get(e.ID), e.Qubits)
		}
	}
}

// TestFootprintDifferentialVsMap drives a footprint and a map oracle through
// the same random add/remove/reset sequence and requires identical contents,
// Max, Touches, and ledger Fits answers at every step — the flat == map pin
// for the footprint itself.
func TestFootprintDifferentialVsMap(t *testing.T) {
	g := footprintNetwork(t, 30, 8)
	led := NewLedger(g)
	// Drain some budgets so Fits has both answers to give.
	for i := 1; i <= 30; i += 3 {
		led.free[i] = 2
	}
	rng := rand.New(rand.NewSource(20260808))
	f := NewFootprint(g.NumNodes())
	oracle := map[graph.NodeID]int{}
	for step := 0; step < 5000; step++ {
		id := graph.NodeID(1 + rng.Intn(30))
		switch rng.Intn(10) {
		case 0:
			f.Reset()
			oracle = map[graph.NodeID]int{}
		case 1:
			f.Remove(id)
			delete(oracle, id)
		default:
			f.Add(id, 2)
			oracle[id] += 2
		}
		if f.Len() != len(oracle) {
			t.Fatalf("step %d: len %d, oracle %d", step, f.Len(), len(oracle))
		}
		for oid, q := range oracle {
			if f.Get(oid) != q {
				t.Fatalf("step %d: Get(%d) = %d, oracle %d", step, oid, f.Get(oid), q)
			}
		}
		if f.Max() != MaxLoad(oracle) {
			t.Fatalf("step %d: Max %d, oracle %d", step, f.Max(), MaxLoad(oracle))
		}
		probe := []graph.NodeID{id, graph.NodeID(1 + rng.Intn(30))}
		if f.Touches(probe) != LoadTouches(oracle, probe) {
			t.Fatalf("step %d: Touches(%v) diverges from LoadTouches", step, probe)
		}
		if led.FitsFootprint(f) != led.Fits(oracle) {
			t.Fatalf("step %d: FitsFootprint diverges from Fits", step)
		}
	}
	// Sorted export equals the sorted oracle.
	f.Sort()
	got := f.AppendEntries(nil)
	want := SortedLoad(oracle)
	if len(got) != len(want) {
		t.Fatalf("entries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestReserveFootprintMatchesReserveLoad pins the footprint reserve/release
// pair byte-identical (budgets, closure log, generation) to the
// ReserveLoad/ReleaseLoad pair it mirrors.
func TestReserveFootprintMatchesReserveLoad(t *testing.T) {
	g := footprintNetwork(t, 12, 4)
	a, b := NewLedger(g), NewLedger(g)
	rng := rand.New(rand.NewSource(7))
	f := NewFootprint(g.NumNodes())
	for round := 0; round < 200; round++ {
		f.Reset()
		for n := rng.Intn(4) + 1; n > 0; n-- {
			f.Add(graph.NodeID(1+rng.Intn(12)), 2)
		}
		f.Sort()
		entries := f.AppendEntries(nil)
		errA := a.ReserveFootprint(f)
		errB := b.ReserveLoad(entries)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("round %d: ReserveFootprint err %v, ReserveLoad err %v", round, errA, errB)
		}
		if errA == nil && rng.Intn(3) == 0 {
			a.ReleaseFootprint(f)
			b.ReleaseLoad(entries)
		}
		sa, sb := a.ExportState(), b.ExportState()
		if sa.Gen != sb.Gen || len(sa.Closed) != len(sb.Closed) {
			t.Fatalf("round %d: closure history diverged: %+v vs %+v", round, sa, sb)
		}
		for i := range sa.Closed {
			if sa.Closed[i] != sb.Closed[i] {
				t.Fatalf("round %d: closure log diverged at %d", round, i)
			}
		}
		for i := range sa.Free {
			if sa.Free[i] != sb.Free[i] {
				t.Fatalf("round %d: budgets diverged at node %d", round, i)
			}
		}
		if a.Version() != b.Version() {
			t.Fatalf("round %d: versions diverged: %d vs %d", round, a.Version(), b.Version())
		}
	}
}

// TestValidateSinceFootprintMatchesMap pins the flat validate against the
// map-shaped one the speculative scheduler used, across epoch breaks,
// closure touches, and budget-drain scenarios.
func TestValidateSinceFootprintMatchesMap(t *testing.T) {
	g := footprintNetwork(t, 12, 4)
	led := NewLedger(g)
	rng := rand.New(rand.NewSource(99))
	f := NewFootprint(g.NumNodes())
	for round := 0; round < 500; round++ {
		epoch := led.Epoch()
		// Mutate: a few random reserve/release pairs move closures and gens.
		var held [][]graph.NodeID
		for n := rng.Intn(3); n > 0; n-- {
			s := 1 + rng.Intn(11)
			path := []graph.NodeID{0, graph.NodeID(s), graph.NodeID(s + 1), graph.NodeID(13)}
			if led.Reserve(path) == nil {
				held = append(held, path)
			}
		}
		for _, path := range held {
			if rng.Intn(2) == 0 {
				led.Release(path)
			}
		}
		f.Reset()
		load := map[graph.NodeID]int{}
		for n := rng.Intn(4) + 1; n > 0; n-- {
			id := graph.NodeID(1 + rng.Intn(12))
			q := 2 * (1 + rng.Intn(2))
			f.Add(id, q)
			load[id] += q
		}
		flat := led.ValidateSinceFootprint(epoch, f)
		closed, ok := led.ClosedSince(epoch)
		mapped := ok && !LoadTouches(load, closed) && MaxLoad(load) <= 2
		if !mapped {
			mapped = led.Fits(load)
		}
		if flat != mapped {
			t.Fatalf("round %d: flat validate %v, map validate %v", round, flat, mapped)
		}
	}
}

func TestValidateSliceSinceMatchesValidateSince(t *testing.T) {
	g := footprintNetwork(t, 12, 4)
	led := NewLedger(g)
	rng := rand.New(rand.NewSource(31))
	f := NewFootprint(g.NumNodes())
	for round := 0; round < 500; round++ {
		epoch := led.Epoch()
		s := 1 + rng.Intn(11)
		path := []graph.NodeID{0, graph.NodeID(s), graph.NodeID(s + 1), graph.NodeID(13)}
		reserved := led.Reserve(path) == nil
		f.Reset()
		for n := rng.Intn(4) + 1; n > 0; n-- {
			f.Add(graph.NodeID(1+rng.Intn(12)), 2)
		}
		f.Sort()
		entries := f.AppendEntries(nil)
		if got, want := led.ValidateSliceSince(epoch, f, entries), led.ValidateSince(epoch, entries); got != want {
			t.Fatalf("round %d: ValidateSliceSince %v, ValidateSince %v", round, got, want)
		}
		if reserved && rng.Intn(2) == 0 {
			led.Release(path)
		}
	}
}

func TestFootprintPoolRecycles(t *testing.T) {
	p := NewFootprintPool(8)
	f := p.Get()
	f.Add(3, 2)
	p.Put(f)
	f2 := p.Get()
	if f2.Len() != 0 {
		t.Fatal("pooled footprint returned dirty")
	}
	p.Put(f2)
	gets, news := p.Counters()
	if gets != 2 {
		t.Errorf("gets = %d, want 2", gets)
	}
	if news < 1 || news > 2 {
		t.Errorf("news = %d, want 1 or 2", news)
	}
	if f2.Cap() != 8 {
		t.Errorf("Cap = %d, want 8", f2.Cap())
	}
}

// FuzzFootprint round-trips a random op-stream through the footprint and a
// map oracle. Ops are bytes: each consumes an opcode and a node; adds use a
// fixed +2 charge and removes/resets interleave, mirroring the admission
// churn pattern.
func FuzzFootprint(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 2, 0})
	f.Add([]byte{0, 3, 0, 3, 0, 3, 1, 3})
	f.Add([]byte{2, 0, 0, 7, 3, 7, 0, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 16
		fp := NewFootprint(n)
		oracle := map[graph.NodeID]int{}
		for i := 0; i+1 < len(ops); i += 2 {
			id := graph.NodeID(ops[i+1] % n)
			switch ops[i] % 4 {
			case 0, 3:
				fp.Add(id, 2)
				oracle[id] += 2
			case 1:
				fp.Remove(id)
				delete(oracle, id)
			case 2:
				fp.Reset()
				oracle = map[graph.NodeID]int{}
			}
		}
		if fp.Len() != len(oracle) {
			t.Fatalf("len %d, oracle %d", fp.Len(), len(oracle))
		}
		for id, q := range oracle {
			if fp.Get(id) != q {
				t.Fatalf("Get(%d) = %d, oracle %d", id, fp.Get(id), q)
			}
		}
		if fp.Max() != MaxLoad(oracle) {
			t.Fatalf("Max %d, oracle %d", fp.Max(), MaxLoad(oracle))
		}
		fp.Sort()
		if !sort.SliceIsSorted(fp.Keys(), func(i, j int) bool { return fp.Keys()[i] < fp.Keys()[j] }) {
			t.Fatal("Sort left keys unsorted")
		}
		got := fp.ToMap()
		for id, q := range oracle {
			if got[id] != q {
				t.Fatalf("ToMap[%d] = %d, oracle %d", id, got[id], q)
			}
		}
		fp.Reset()
		if fp.Len() != 0 {
			t.Fatal("Reset left residue")
		}
		for id := graph.NodeID(0); int(id) < n; id++ {
			if fp.Get(id) != 0 || fp.Touches([]graph.NodeID{id}) {
				t.Fatalf("Reset left node %d dirty", id)
			}
		}
	})
}

// BenchmarkFootprintValidate measures the flat fill+validate step the
// speculative scheduler runs per admission, against its map-based
// predecessor. The flat path must report 0 allocs/op.
func BenchmarkFootprintValidate(b *testing.B) {
	g := footprintNetwork(b, 30, 8)
	led := NewLedger(g)
	path := make([]graph.NodeID, 0, 8)
	path = append(path, 0)
	for i := 5; i < 11; i++ {
		path = append(path, graph.NodeID(i))
	}
	path = append(path, 31)
	tree := Tree{Channels: []Channel{{Nodes: path, Rate: 0.5}}}
	epoch := led.Epoch()

	b.Run("flat", func(b *testing.B) {
		pool := NewFootprintPool(g.NumNodes())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fp := pool.Get()
			fp.AddTree(tree)
			if !led.ValidateSinceFootprint(epoch, fp) {
				b.Fatal("validate failed")
			}
			pool.Put(fp)
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			load := tree.QubitLoad()
			closed, ok := led.ClosedSince(epoch)
			valid := ok && !LoadTouches(load, closed) && MaxLoad(load) <= 2
			if !valid && !led.Fits(load) {
				b.Fatal("validate failed")
			}
		}
	})
}
