package quantum

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

// TestLedgerStateRoundTrip exports a mutated ledger, pushes the state
// through JSON (as the snapshot layer does), imports it into a fresh
// ledger, and requires identical budgets, epoch and closure log.
func TestLedgerStateRoundTrip(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	path := []graph.NodeID{0, 1, 2, 3}
	if err := l.Reserve(path); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	st := l.ExportState()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back LedgerState
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored := NewLedger(g)
	if err := restored.ImportState(back); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if !reflect.DeepEqual(restored.ExportState(), st) {
		t.Fatalf("restored state %+v != exported %+v", restored.ExportState(), st)
	}
	if restored.Epoch() != l.Epoch() {
		t.Fatalf("restored epoch %+v != live %+v", restored.Epoch(), l.Epoch())
	}
	if restored.Free(1) != 2 || restored.Free(2) != 0 {
		t.Fatalf("restored budgets: free(1)=%d free(2)=%d", restored.Free(1), restored.Free(2))
	}
	// The restored ledger continues the closure history: releasing the path
	// reopens switch 2 and bumps the generation on both, identically.
	l.Release(path)
	restored.Release(path)
	if restored.Epoch() != l.Epoch() {
		t.Fatalf("post-release epoch %+v != live %+v", restored.Epoch(), l.Epoch())
	}
}

// TestLedgerExportIsDeepCopy ensures later mutations don't alias the export.
func TestLedgerExportIsDeepCopy(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	st := l.ExportState()
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if st.Free[1] != 4 || len(st.Closed) != 0 {
		t.Fatalf("export mutated by later Reserve: %+v", st)
	}
}

func TestLedgerImportRejectsInvalidState(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	base := l.ExportState()

	for name, mutate := range map[string]func(*LedgerState){
		"wrong-length":    func(st *LedgerState) { st.Free = st.Free[:2] },
		"over-budget":     func(st *LedgerState) { st.Free[1] = 6 },
		"negative":        func(st *LedgerState) { st.Free[2] = -2 },
		"odd-reservation": func(st *LedgerState) { st.Free[1] = 3 },
		"charged-user":    func(st *LedgerState) { st.Free[0] = 2 },
		"closed-user":     func(st *LedgerState) { st.Closed = []graph.NodeID{0} },
		"closed-unknown":  func(st *LedgerState) { st.Closed = []graph.NodeID{99} },
	} {
		t.Run(name, func(t *testing.T) {
			st := LedgerState{Free: append([]int(nil), base.Free...), Gen: base.Gen}
			mutate(&st)
			if err := l.ImportState(st); err == nil {
				t.Fatalf("ImportState accepted %+v", st)
			}
		})
	}
	// The failed imports above must not have modified the ledger.
	if !reflect.DeepEqual(l.ExportState(), base) {
		t.Fatalf("ledger changed by rejected imports: %+v", l.ExportState())
	}
}

func TestSyncEpoch(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if n := len(l.ExportState().Closed); n != 1 {
		t.Fatalf("closures = %d, want 1 (switch 2 closed)", n)
	}
	// Same generation: a no-op.
	if err := l.SyncEpoch(l.Epoch().Gen); err != nil {
		t.Fatalf("SyncEpoch same gen: %v", err)
	}
	if n := len(l.ExportState().Closed); n != 1 {
		t.Fatalf("no-op SyncEpoch cleared the closure log")
	}
	// A later generation adopts it and clears the log, exactly what a
	// rolled-back attempt's reopening Release would have done.
	if err := l.SyncEpoch(l.Epoch().Gen + 3); err != nil {
		t.Fatalf("SyncEpoch forward: %v", err)
	}
	if e := l.Epoch(); e.Gen != 3 || e.N != 0 {
		t.Fatalf("epoch after sync = %+v, want gen 3 n 0", e)
	}
	// Going backwards is a replay bug.
	if err := l.SyncEpoch(1); err == nil {
		t.Fatal("SyncEpoch accepted a regressing generation")
	}
}
