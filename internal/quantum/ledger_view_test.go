package quantum

import (
	"reflect"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

func TestLedgerCopyFrom(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	l.Release([]graph.NodeID{0, 1, 2, 3}) // reopen switch 2: gen bump
	if err := l.Reserve([]graph.NodeID{0, 1, 3}); err != nil {
		t.Fatal(err)
	}

	view := NewLedger(g)
	// Dirty the scratch ledger first: CopyFrom must overwrite, not merge.
	if err := view.Reserve([]graph.NodeID{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	view.CopyFrom(l)
	if !reflect.DeepEqual(view.ExportState(), l.ExportState()) {
		t.Fatalf("CopyFrom state %+v != source %+v", view.ExportState(), l.ExportState())
	}
	// The view is independent: mutating it leaves the source untouched.
	view.Release([]graph.NodeID{0, 1, 3})
	if l.Free(1) != 2 {
		t.Fatal("view mutation leaked into the source ledger")
	}
	// And vice versa: the closure log is copied, not aliased.
	before := len(view.ExportState().Closed)
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := len(view.ExportState().Closed); got != before {
		t.Fatalf("source closure log grew into the view: %d -> %d entries", before, got)
	}
}

func TestLedgerCopyFromForeignGraphPanics(t *testing.T) {
	g := ledgerNetwork(t)
	l := NewLedger(g)
	other := NewLedger(ledgerNetwork(t))
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across graphs did not panic")
		}
	}()
	l.CopyFrom(other)
}

func TestLedgerFits(t *testing.T) {
	g := ledgerNetwork(t) // switch 1: 4 qubits, switch 2: 2 qubits
	l := NewLedger(g)
	if !l.Fits(map[graph.NodeID]int{1: 4, 2: 2}) {
		t.Fatal("full budgets reported as not fitting")
	}
	if l.Fits(map[graph.NodeID]int{1: 6}) {
		t.Fatal("demand above the total budget fits")
	}
	if err := l.Reserve([]graph.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Switch 1 has 2 free left, switch 2 none.
	if !l.Fits(map[graph.NodeID]int{1: 2}) {
		t.Fatal("available residual capacity reported as not fitting")
	}
	if l.Fits(map[graph.NodeID]int{1: 2, 2: 2}) {
		t.Fatal("demand on an exhausted switch fits")
	}
	if !l.Fits(nil) {
		t.Fatal("empty load must always fit")
	}
}

func TestLoadTouchesAndMaxLoad(t *testing.T) {
	load := map[graph.NodeID]int{1: 2, 5: 4}
	if LoadTouches(load, []graph.NodeID{2, 3}) {
		t.Fatal("disjoint closure set reported as touching")
	}
	if !LoadTouches(load, []graph.NodeID{3, 5}) {
		t.Fatal("overlapping closure set reported as disjoint")
	}
	if LoadTouches(load, nil) {
		t.Fatal("empty closure set touches")
	}
	if got := MaxLoad(load); got != 4 {
		t.Fatalf("MaxLoad = %d, want 4", got)
	}
	if got := MaxLoad(nil); got != 0 {
		t.Fatalf("MaxLoad(nil) = %d, want 0", got)
	}
}
