package quantum

import (
	"errors"
	"fmt"
	"strings"

	"github.com/muerp/quantumnet/internal/graph"
)

// Channel is a quantum channel (paper Definition 2): a width-1 path whose
// endpoints are quantum users and whose interior vertices are quantum
// switches, each contributing one BSM swap and consuming 2 qubits.
type Channel struct {
	// Nodes lists the path from one endpoint user to the other; interior
	// entries are switches.
	Nodes []graph.NodeID
	// Rate is the channel's entanglement rate per Eq. 1.
	Rate float64
}

// Channel construction errors.
var (
	ErrShortPath      = errors.New("quantum: a channel needs at least two nodes")
	ErrEndpointKind   = errors.New("quantum: channel endpoints must be users")
	ErrInteriorKind   = errors.New("quantum: channel interior vertices must be switches")
	ErrMissingEdge    = errors.New("quantum: consecutive channel nodes are not adjacent")
	ErrRepeatedNode   = errors.New("quantum: channel revisits a node")
	ErrInteriorQubits = errors.New("quantum: interior switch lacks the 2 qubits a channel needs")
)

// NewChannel validates path against g and computes its Eq. 1 rate.
// The path must run user -> switches... -> user along existing fibers
// without revisiting nodes. Interior switch *capacity* is not checked here —
// that is the routing algorithms' job via Ledger — but a switch with fewer
// than 2 qubits total can never carry a channel and is rejected outright.
func NewChannel(g *graph.Graph, path []graph.NodeID, p Params) (Channel, error) {
	if len(path) < 2 {
		return Channel{}, fmt.Errorf("%w: got %d", ErrShortPath, len(path))
	}
	for i, id := range path {
		if !g.HasNode(id) {
			return Channel{}, fmt.Errorf("quantum: channel node %d: %w", id, graph.ErrUnknownNode)
		}
		// Channels are a handful of hops; a prefix scan beats a map here
		// and keeps construction on the routing hot path allocation-lean.
		for _, prior := range path[:i] {
			if prior == id {
				return Channel{}, fmt.Errorf("%w: node %d", ErrRepeatedNode, id)
			}
		}
		n := g.Node(id)
		interior := i > 0 && i < len(path)-1
		switch {
		case !interior && n.Kind != graph.KindUser:
			return Channel{}, fmt.Errorf("%w: node %d is a %s", ErrEndpointKind, id, n.Kind)
		case interior && n.Kind != graph.KindSwitch:
			return Channel{}, fmt.Errorf("%w: node %d is a %s", ErrInteriorKind, id, n.Kind)
		case interior && n.Qubits < 2:
			return Channel{}, fmt.Errorf("%w: switch %d has %d", ErrInteriorQubits, id, n.Qubits)
		}
	}
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		e, ok := g.EdgeBetween(path[i], path[i+1])
		if !ok {
			return Channel{}, fmt.Errorf("%w: %d-%d", ErrMissingEdge, path[i], path[i+1])
		}
		total += e.Length
	}
	nodes := make([]graph.NodeID, len(path))
	copy(nodes, path)
	return Channel{Nodes: nodes, Rate: p.rate(total, len(path)-1)}, nil
}

// Endpoints returns the two user endpoints of the channel.
func (c Channel) Endpoints() (graph.NodeID, graph.NodeID) {
	return c.Nodes[0], c.Nodes[len(c.Nodes)-1]
}

// Links returns the number of quantum links (edges) in the channel.
func (c Channel) Links() int { return len(c.Nodes) - 1 }

// Interior returns the interior (switch) vertices of the channel, in path
// order. It returns nil for a direct user-user channel.
func (c Channel) Interior() []graph.NodeID {
	if len(c.Nodes) <= 2 {
		return nil
	}
	out := make([]graph.NodeID, len(c.Nodes)-2)
	copy(out, c.Nodes[1:len(c.Nodes)-1])
	return out
}

// String renders the channel as "u3 -[2 swaps]-> u7 (rate 1.23e-02)".
func (c Channel) String() string {
	if len(c.Nodes) == 0 {
		return "channel(empty)"
	}
	a, b := c.Endpoints()
	ids := make([]string, len(c.Nodes))
	for i, id := range c.Nodes {
		ids[i] = fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("channel %d->%d via [%s] rate %.3e", a, b, strings.Join(ids, " "), c.Rate)
}
