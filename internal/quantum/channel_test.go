package quantum

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

// lineNetwork builds u0 - s1 - s2 - u3 with unit-km fibers plus a direct
// u0-u3 fiber of length 10.
func lineNetwork(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4, 4)
	u0 := g.AddUser(0, 0)
	s1 := g.AddSwitch(1, 0, 4)
	s2 := g.AddSwitch(2, 0, 4)
	u3 := g.AddUser(3, 0)
	g.MustAddEdge(u0, s1, 1000)
	g.MustAddEdge(s1, s2, 1000)
	g.MustAddEdge(s2, u3, 1000)
	g.MustAddEdge(u0, u3, 10000)
	return g
}

func TestNewChannelComputesRate(t *testing.T) {
	g := lineNetwork(t)
	p := DefaultParams()
	ch, err := NewChannel(g, []graph.NodeID{0, 1, 2, 3}, p)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	want := math.Pow(0.9, 2) * math.Exp(-1e-4*3000)
	if math.Abs(ch.Rate-want) > 1e-12 {
		t.Fatalf("Rate = %g, want %g", ch.Rate, want)
	}
	if got := ch.Links(); got != 3 {
		t.Errorf("Links = %d, want 3", got)
	}
	a, b := ch.Endpoints()
	if a != 0 || b != 3 {
		t.Errorf("Endpoints = %d,%d, want 0,3", a, b)
	}
	interior := ch.Interior()
	if len(interior) != 2 || interior[0] != 1 || interior[1] != 2 {
		t.Errorf("Interior = %v, want [1 2]", interior)
	}
}

func TestNewChannelDirectLink(t *testing.T) {
	g := lineNetwork(t)
	ch, err := NewChannel(g, []graph.NodeID{0, 3}, DefaultParams())
	if err != nil {
		t.Fatalf("NewChannel direct: %v", err)
	}
	want := math.Exp(-1e-4 * 10000) // no swap on a direct link
	if math.Abs(ch.Rate-want) > 1e-12 {
		t.Fatalf("Rate = %g, want %g", ch.Rate, want)
	}
	if ch.Interior() != nil {
		t.Fatalf("Interior = %v, want nil", ch.Interior())
	}
}

func TestNewChannelRejections(t *testing.T) {
	g := lineNetwork(t)
	starved := g.Clone()
	starved.SetQubits(1, 1)
	p := DefaultParams()
	tests := []struct {
		name    string
		g       *graph.Graph
		path    []graph.NodeID
		wantErr error
	}{
		{"too short", g, []graph.NodeID{0}, ErrShortPath},
		{"empty", g, nil, ErrShortPath},
		{"switch endpoint", g, []graph.NodeID{1, 2}, ErrEndpointKind},
		{"user interior", g, []graph.NodeID{0, 3}, nil}, // control: valid
		{"missing edge", g, []graph.NodeID{0, 2, 3}, ErrMissingEdge},
		{"unknown node", g, []graph.NodeID{0, 99}, graph.ErrUnknownNode},
		{"repeated node", g, []graph.NodeID{0, 1, 2, 1}, ErrRepeatedNode},
		{"starved switch", starved, []graph.NodeID{0, 1, 2, 3}, ErrInteriorQubits},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewChannel(tc.g, tc.path, p)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("NewChannel(%v) = %v, want success", tc.path, err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("NewChannel(%v) error = %v, want %v", tc.path, err, tc.wantErr)
			}
		})
	}
}

func TestNewChannelUserAsInterior(t *testing.T) {
	g := graph.New(3, 2)
	u0 := g.AddUser(0, 0)
	u1 := g.AddUser(1, 0)
	u2 := g.AddUser(2, 0)
	g.MustAddEdge(u0, u1, 1000)
	g.MustAddEdge(u1, u2, 1000)
	_, err := NewChannel(g, []graph.NodeID{u0, u1, u2}, DefaultParams())
	if !errors.Is(err, ErrInteriorKind) {
		t.Fatalf("user interior error = %v, want ErrInteriorKind", err)
	}
}

func TestChannelCopiesPath(t *testing.T) {
	g := lineNetwork(t)
	path := []graph.NodeID{0, 1, 2, 3}
	ch, err := NewChannel(g, path, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	path[0] = 99
	if ch.Nodes[0] != 0 {
		t.Fatal("channel shares the caller's path slice")
	}
}

func TestChannelString(t *testing.T) {
	g := lineNetwork(t)
	ch, _ := NewChannel(g, []graph.NodeID{0, 1, 2, 3}, DefaultParams())
	s := ch.String()
	for _, want := range []string{"0->3", "rate"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if got := (Channel{}).String(); got != "channel(empty)" {
		t.Errorf("empty String() = %q", got)
	}
}
