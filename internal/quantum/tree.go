package quantum

import (
	"errors"
	"fmt"
	"math"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// Tree is an entanglement tree (paper Definition 1): users are vertices,
// channels are edges, and together they span the user set without loops.
// Its value is the product of channel rates (Eq. 2).
type Tree struct {
	Channels []Channel
}

// Rate returns the Eq. 2 value of the tree: the product of all channel
// rates. The empty tree has rate 1 (entangling a single user is trivially
// successful).
func (t Tree) Rate() float64 {
	rate := 1.0
	for _, c := range t.Channels {
		rate *= c.Rate
	}
	return rate
}

// LogRate returns ln(Rate) computed by summation, which remains finite and
// precise when the product underflows float64.
func (t Tree) LogRate() float64 {
	sum := 0.0
	for _, c := range t.Channels {
		sum += math.Log(c.Rate)
	}
	return sum
}

// Users returns the set of users touched by the tree's channels.
func (t Tree) Users() map[graph.NodeID]bool {
	users := make(map[graph.NodeID]bool, len(t.Channels)+1)
	for _, c := range t.Channels {
		a, b := c.Endpoints()
		users[a] = true
		users[b] = true
	}
	return users
}

// QubitLoad returns, per switch, the number of qubits the tree consumes
// (2 per transiting channel). It allocates a fresh map per call and exists
// for external callers and tests; the admission hot path uses the flat
// Footprint.AddTree form instead.
func (t Tree) QubitLoad() map[graph.NodeID]int {
	load := make(map[graph.NodeID]int)
	for _, c := range t.Channels {
		for _, s := range c.Interior() {
			load[s] += 2
		}
	}
	return load
}

// Tree validation errors.
var (
	ErrNotSpanning     = errors.New("quantum: tree does not span the user set")
	ErrUserLoop        = errors.New("quantum: channels form a loop among users")
	ErrForeignUser     = errors.New("quantum: channel endpoint outside the user set")
	ErrOverCapacity    = errors.New("quantum: switch qubit capacity exceeded")
	ErrRateMismatch    = errors.New("quantum: stored channel rate disagrees with Eq. 1")
	ErrDuplicatePair   = errors.New("quantum: more than one channel between a user pair")
	ErrWrongTreeDegree = errors.New("quantum: channel count differs from |U|-1")
)

// rateTolerance bounds the acceptable relative error between a stored
// channel rate and a recomputation from the graph's edge lengths.
const rateTolerance = 1e-9

// ValidateTree checks that channels form a valid MUERP solution for the
// given user set on g under params p:
//
//   - exactly |users|-1 channels, each a valid channel of g (NewChannel),
//   - endpoints drawn from users, at most one channel per user pair,
//   - the channels connect all users without loops (a spanning tree),
//   - no switch carries more channels than floor(Qubits/2),
//   - every stored rate matches an Eq. 1 recomputation.
//
// A single-user set is trivially valid with zero channels.
func ValidateTree(g *graph.Graph, users []graph.NodeID, t Tree, p Params) error {
	if len(users) == 0 {
		return errors.New("quantum: empty user set")
	}
	idx := make(map[graph.NodeID]int, len(users))
	for i, u := range users {
		if !g.HasNode(u) || g.Node(u).Kind != graph.KindUser {
			return fmt.Errorf("quantum: user set entry %d is not a user node", u)
		}
		if _, dup := idx[u]; dup {
			return fmt.Errorf("quantum: user %d listed twice", u)
		}
		idx[u] = i
	}
	if len(t.Channels) != len(users)-1 {
		return fmt.Errorf("%w: %d channels for %d users", ErrWrongTreeDegree, len(t.Channels), len(users))
	}

	uf := unionfind.New(len(users))
	seenPair := make(map[[2]int]bool, len(t.Channels))
	load := make(map[graph.NodeID]int)
	for i, c := range t.Channels {
		rebuilt, err := NewChannel(g, c.Nodes, p)
		if err != nil {
			return fmt.Errorf("quantum: channel %d: %w", i, err)
		}
		if !closeEnough(rebuilt.Rate, c.Rate) {
			return fmt.Errorf("%w: channel %d stored %.12e, computed %.12e", ErrRateMismatch, i, c.Rate, rebuilt.Rate)
		}
		a, b := c.Endpoints()
		ia, okA := idx[a]
		ib, okB := idx[b]
		if !okA || !okB {
			return fmt.Errorf("%w: channel %d endpoints %d-%d", ErrForeignUser, i, a, b)
		}
		key := [2]int{min(ia, ib), max(ia, ib)}
		if seenPair[key] {
			return fmt.Errorf("%w: users %d and %d", ErrDuplicatePair, a, b)
		}
		seenPair[key] = true
		if !uf.Union(ia, ib) {
			return fmt.Errorf("%w: adding channel %d (%d-%d)", ErrUserLoop, i, a, b)
		}
		for _, s := range c.Interior() {
			load[s] += 2
		}
	}
	if uf.Sets() != 1 {
		return fmt.Errorf("%w: %d components remain", ErrNotSpanning, uf.Sets())
	}
	for s, used := range load {
		if q := g.Node(s).Qubits; used > q {
			return fmt.Errorf("%w: switch %d uses %d of %d qubits", ErrOverCapacity, s, used, q)
		}
	}
	return nil
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rateTolerance*scale
}
