package quantum

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/muerp/quantumnet/internal/graph"
)

// Footprint is the flat, allocation-free form of a per-switch qubit load
// (Tree.QubitLoad's map shape). It is a sparse set in the graph.Searcher
// mold: a dense key list carries the touched switches in insertion order, a
// per-graph position array gives O(1) membership and lookup, and Reset
// clears only what the last use touched. One footprint is sized to one
// graph (NumNodes slots) and is reused across admissions via FootprintPool;
// the admission hot path fills it from a tree, probes it against closure
// logs and budgets, and resets it — zero allocations at steady state, where
// the map form hashed and allocated per request.
//
// A Footprint is not safe for concurrent use; pool-Get a fresh one per
// goroutine.
type Footprint struct {
	keys []graph.NodeID // touched switches, insertion order
	load []int          // demands, parallel to keys
	pos  []int32        // sparse index: pos[id] = position+1 in keys, 0 = absent
}

// NewFootprint returns an empty footprint for a graph with numNodes nodes.
// Prefer FootprintPool on hot paths.
func NewFootprint(numNodes int) *Footprint {
	return &Footprint{pos: make([]int32, numNodes)}
}

// Cap returns the number of node slots (the graph size the footprint was
// built for).
func (f *Footprint) Cap() int { return len(f.pos) }

// Len returns the number of switches carrying load.
func (f *Footprint) Len() int { return len(f.keys) }

// Keys returns the touched switches in the footprint's current order. The
// slice aliases internal storage: it is invalidated by Add/Remove/Sort/Reset
// and must not be retained.
func (f *Footprint) Keys() []graph.NodeID { return f.keys }

// Reset empties the footprint in O(touched), leaving the sparse index clean
// for the next use.
func (f *Footprint) Reset() {
	for _, id := range f.keys {
		f.pos[id] = 0
	}
	f.keys = f.keys[:0]
	f.load = f.load[:0]
}

// Add accumulates qubits of demand at switch id, inserting it if absent.
// Accumulating to exactly zero removes the switch; negative totals panic
// (they indicate a release without a matching charge, same contract as
// Ledger.Release).
func (f *Footprint) Add(id graph.NodeID, qubits int) {
	f.check(id)
	p := f.pos[id]
	if p == 0 {
		if qubits == 0 {
			return
		}
		f.keys = append(f.keys, id)
		f.load = append(f.load, qubits)
		f.pos[id] = int32(len(f.keys))
		if qubits < 0 {
			panic(fmt.Sprintf("quantum: footprint: negative load %d at switch %d", qubits, id))
		}
		return
	}
	f.load[p-1] += qubits
	switch {
	case f.load[p-1] == 0:
		f.Remove(id)
	case f.load[p-1] < 0:
		panic(fmt.Sprintf("quantum: footprint: negative load %d at switch %d", f.load[p-1], id))
	}
}

// Remove drops switch id from the footprint (no-op when absent). The dense
// order is not preserved: the last key is swapped into the hole, so call
// Sort before exporting if a deterministic order matters.
func (f *Footprint) Remove(id graph.NodeID) {
	f.check(id)
	p := f.pos[id]
	if p == 0 {
		return
	}
	last := len(f.keys) - 1
	moved := f.keys[last]
	f.keys[p-1] = moved
	f.load[p-1] = f.load[last]
	f.pos[moved] = p
	f.keys = f.keys[:last]
	f.load = f.load[:last]
	f.pos[id] = 0
}

// Get returns the demand at switch id, 0 when absent.
func (f *Footprint) Get(id graph.NodeID) int {
	f.check(id)
	p := f.pos[id]
	if p == 0 {
		return 0
	}
	return f.load[p-1]
}

// Max returns the largest per-switch demand (0 when empty) — the MaxLoad
// twin. Demand above 2 at any switch disables the closure-epoch fast path;
// see MaxLoad.
func (f *Footprint) Max() int {
	max := 0
	for _, n := range f.load {
		if n > max {
			max = n
		}
	}
	return max
}

// Touches reports whether any switch in ids carries load — the LoadTouches
// twin, O(len(ids)) against the sparse index instead of a map probe per id.
func (f *Footprint) Touches(ids []graph.NodeID) bool {
	for _, id := range ids {
		if int(id) < len(f.pos) && id >= 0 && f.pos[id] != 0 {
			return true
		}
	}
	return false
}

// Sort orders the dense keys by ascending switch ID and rebuilds the sparse
// index, giving the deterministic order ReserveLoad-style closure logs need.
func (f *Footprint) Sort() {
	sort.Sort((*footprintByID)(f))
	for i, id := range f.keys {
		f.pos[id] = int32(i + 1)
	}
}

// footprintByID sorts keys and load in lockstep without allocating a
// closure the way sort.Slice does.
type footprintByID Footprint

func (s *footprintByID) Len() int           { return len(s.keys) }
func (s *footprintByID) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *footprintByID) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.load[i], s.load[j] = s.load[j], s.load[i]
}

// AppendEntries appends the footprint as LoadEntry records in the current
// key order (Sort first for the canonical ascending-ID form) and returns the
// extended slice.
func (f *Footprint) AppendEntries(dst []LoadEntry) []LoadEntry {
	for i, id := range f.keys {
		dst = append(dst, LoadEntry{ID: id, Qubits: f.load[i]})
	}
	return dst
}

// AddEntries accumulates a load slice into the footprint.
func (f *Footprint) AddEntries(entries []LoadEntry) {
	for _, e := range entries {
		f.Add(e.ID, e.Qubits)
	}
}

// AddMap accumulates a QubitLoad-shaped map into the footprint. Key order
// is nondeterministic (map iteration); Sort before exporting.
func (f *Footprint) AddMap(load map[graph.NodeID]int) {
	for id, q := range load {
		f.Add(id, q)
	}
}

// AddTree accumulates a tree's per-switch qubit load (2 per transiting
// channel) — the flat form of Tree.QubitLoad, walking channel interiors
// without the per-channel slice copy Channel.Interior makes.
func (f *Footprint) AddTree(t Tree) {
	for _, c := range t.Channels {
		nodes := c.Nodes
		for i := 1; i+1 < len(nodes); i++ {
			f.Add(nodes[i], 2)
		}
	}
}

// ToMap exports the footprint as a fresh QubitLoad-shaped map (test and
// shim use; the hot path never calls it).
func (f *Footprint) ToMap() map[graph.NodeID]int {
	load := make(map[graph.NodeID]int, len(f.keys))
	for i, id := range f.keys {
		load[id] = f.load[i]
	}
	return load
}

func (f *Footprint) check(id graph.NodeID) {
	if id < 0 || int(id) >= len(f.pos) {
		panic(fmt.Sprintf("quantum: footprint: unknown node %d", id))
	}
}

// FootprintPool recycles footprints for one graph size, counting gets and
// fresh allocations so /metrics can report pool effectiveness (gets - news
// is the number of reuses). Put resets the footprint; a pooled footprint is
// always empty on Get.
type FootprintPool struct {
	n    int
	pool sync.Pool
	gets atomic.Int64
	news atomic.Int64
}

// NewFootprintPool returns a pool of footprints sized for numNodes nodes.
func NewFootprintPool(numNodes int) *FootprintPool {
	p := &FootprintPool{n: numNodes}
	p.pool.New = func() any {
		p.news.Add(1)
		return NewFootprint(numNodes)
	}
	return p
}

// Get returns an empty footprint, reusing a pooled one when available.
func (p *FootprintPool) Get() *Footprint {
	p.gets.Add(1)
	return p.pool.Get().(*Footprint)
}

// Put resets f and returns it to the pool.
func (p *FootprintPool) Put(f *Footprint) {
	if f == nil {
		return
	}
	f.Reset()
	p.pool.Put(f)
}

// Counters returns the number of Gets served and the number that had to
// allocate a fresh footprint.
func (p *FootprintPool) Counters() (gets, news int64) {
	return p.gets.Load(), p.news.Load()
}

// FitsFootprint is Fits over a footprint: every touched switch must have at
// least its demanded qubits free right now. It is the authoritative
// validation of the flat path — no epoch reasoning, just budget reads.
func (l *Ledger) FitsFootprint(f *Footprint) bool {
	for i, id := range f.keys {
		l.check(id)
		if l.free[id] < f.load[i] {
			return false
		}
	}
	return true
}

// ValidateSinceFootprint is ValidateSince over a footprint: a tree planned
// under epoch e still provably fits when the generation is unbroken, none of
// the closures since touch the footprint, and per-switch demand is ≤ 2;
// anything else falls back to the authoritative FitsFootprint. This is the
// speculative scheduler's validate step in flat form — one closure-log scan
// against the sparse index instead of map probes.
func (l *Ledger) ValidateSinceFootprint(e Epoch, f *Footprint) bool {
	if closed, ok := l.ClosedSince(e); ok && !f.Touches(closed) && f.Max() <= 2 {
		return true
	}
	return l.FitsFootprint(f)
}

// ReserveFootprint charges every touched switch's demand, all or nothing —
// ReserveLoad over a footprint. Closures are appended in the footprint's
// key order, so Sort first when the closure log must be deterministic.
// Demands must be positive and even, and every key must be a switch.
func (l *Ledger) ReserveFootprint(f *Footprint) error {
	for i, id := range f.keys {
		l.check(id)
		q := f.load[i]
		if q <= 0 || q%2 != 0 {
			return fmt.Errorf("quantum: reserve footprint: switch %d demand %d not a positive even count", id, q)
		}
		if l.g.Node(id).Kind != graph.KindSwitch {
			return fmt.Errorf("quantum: reserve footprint: node %d is not a switch", id)
		}
		if l.free[id] < q {
			return fmt.Errorf("quantum: reserve footprint: switch %d has %d free, need %d: %w",
				id, l.free[id], q, ErrInteriorQubits)
		}
	}
	for i, id := range f.keys {
		wasOpen := l.free[id] >= 2
		l.free[id] -= f.load[i]
		if wasOpen && l.free[id] < 2 {
			l.closed = append(l.closed, id)
		}
	}
	l.version++
	return nil
}

// ReleaseFootprint refunds a prior ReserveFootprint, with Release's reopen
// semantics: a refund lifting a switch from below 2 back to >= 2 free qubits
// starts a new closure generation. Panics on refund beyond a switch's
// budget.
func (l *Ledger) ReleaseFootprint(f *Footprint) {
	for i, id := range f.keys {
		l.check(id)
		wasClosed := l.free[id] < 2
		l.free[id] += f.load[i]
		if l.free[id] > l.g.Node(id).Qubits {
			panic(fmt.Sprintf("quantum: release of unreserved footprint at switch %d", id))
		}
		if wasClosed && l.free[id] >= 2 {
			l.gen++
			l.closed = l.closed[:0]
		}
	}
	l.version++
}
