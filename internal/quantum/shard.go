package quantum

import (
	"errors"
	"fmt"
	"sort"

	"github.com/muerp/quantumnet/internal/graph"
)

// This file holds the shard-side reservation primitives used by the sharded
// admission plane (internal/service). A cross-region entanglement tree is
// split by switch ownership into per-region load slices; each region's shard
// then reserves its slice on its own ledger under a two-phase
// prepare/commit protocol. The primitives mirror Reserve/Release exactly —
// same closure-log and generation semantics — so a shard ledger driven by a
// mix of tree reservations (local sessions) and load reservations (slices
// of cross-region sessions) replays byte-identically from its WAL stream.

// LoadEntry is one switch's share of a reservation: Qubits qubits charged at
// switch ID. Loads are always even (channels charge 2 qubits at a time).
type LoadEntry struct {
	ID     graph.NodeID `json:"id"`
	Qubits int          `json:"qubits"`
}

// ErrTxnConflict reports a failed prepare: the shard's closure history moved
// past the epoch the transaction was planned under and the plan no longer
// provably fits. The coordinator retries against a fresh view or falls back
// to its global serial path.
var ErrTxnConflict = errors.New("quantum: reservation conflicts with shard ledger")

// SortedLoad flattens a Tree.QubitLoad map into entries sorted by ascending
// switch ID. The deterministic order matters: ReserveLoad appends closures
// in entry order, and recovery replays the same entries from the WAL, so
// live and replayed closure logs match byte for byte.
func SortedLoad(load map[graph.NodeID]int) []LoadEntry {
	if len(load) == 0 {
		return nil
	}
	entries := make([]LoadEntry, 0, len(load))
	for id, q := range load {
		entries = append(entries, LoadEntry{ID: id, Qubits: q})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return entries
}

// FitsLoad is Fits over a load slice: every entry's switch must have at
// least its demanded qubits free right now.
func (l *Ledger) FitsLoad(entries []LoadEntry) bool {
	for _, e := range entries {
		l.check(e.ID)
		if l.free[e.ID] < e.Qubits {
			return false
		}
	}
	return true
}

// LoadEntriesTouch reports whether any switch in ids appears in entries —
// the slice-shaped twin of LoadTouches, used by the cross-region commit to
// pre-filter a prepared slice against the closures since its base epoch.
func LoadEntriesTouch(entries []LoadEntry, ids []graph.NodeID) bool {
	for _, id := range ids {
		for _, e := range entries {
			if e.ID == id && e.Qubits > 0 {
				return true
			}
		}
	}
	return false
}

// MaxLoadEntries returns the largest per-switch demand in entries (0 when
// empty); see MaxLoad for why demand above 2 disables the epoch fast path.
func MaxLoadEntries(entries []LoadEntry) int {
	max := 0
	for _, e := range entries {
		if e.Qubits > max {
			max = e.Qubits
		}
	}
	return max
}

// ReserveLoad charges every entry's qubits at its switch, all or nothing:
// when some switch lacks capacity it fails without side effects. Like
// Reserve, a charge that drops a switch below 2 free qubits appends it to
// the closure log; entries are applied in slice order, so pass SortedLoad
// output (or a recovered record of it) for deterministic logs. Entries must
// carry positive, even demands — channel charges come in pairs.
func (l *Ledger) ReserveLoad(entries []LoadEntry) error {
	for _, e := range entries {
		l.check(e.ID)
		if e.Qubits <= 0 || e.Qubits%2 != 0 {
			return fmt.Errorf("quantum: reserve load: switch %d demand %d not a positive even count", e.ID, e.Qubits)
		}
		if l.g.Node(e.ID).Kind != graph.KindSwitch {
			return fmt.Errorf("quantum: reserve load: node %d is not a switch", e.ID)
		}
		if l.free[e.ID] < e.Qubits {
			return fmt.Errorf("quantum: reserve load: switch %d has %d free, need %d: %w",
				e.ID, l.free[e.ID], e.Qubits, ErrInteriorQubits)
		}
	}
	for _, e := range entries {
		wasOpen := l.free[e.ID] >= 2
		l.free[e.ID] -= e.Qubits
		if wasOpen && l.free[e.ID] < 2 {
			l.closed = append(l.closed, e.ID)
		}
	}
	if len(entries) > 0 {
		l.version++
	}
	return nil
}

// ReleaseLoad refunds a prior ReserveLoad. It panics when the refund would
// exceed a switch's total budget (release without a matching reserve), and —
// exactly like Release — a refund lifting a switch from below 2 back to
// >= 2 free qubits reopens it and starts a new closure generation.
func (l *Ledger) ReleaseLoad(entries []LoadEntry) {
	for _, e := range entries {
		l.check(e.ID)
		wasClosed := l.free[e.ID] < 2
		l.free[e.ID] += e.Qubits
		if l.free[e.ID] > l.g.Node(e.ID).Qubits {
			panic(fmt.Sprintf("quantum: release of unreserved load at switch %d", e.ID))
		}
		if wasClosed && l.free[e.ID] >= 2 {
			l.gen++
			l.closed = l.closed[:0]
		}
	}
	if len(entries) > 0 {
		l.version++
	}
}

// ValidateSince is the prepare step of the cross-region protocol: it reports
// whether a load slice planned under epoch e still provably fits the ledger.
// The fast path reuses the closure-epoch argument from the speculative
// scheduler — an unbroken generation whose new closures miss the slice,
// with per-switch demand ≤ 2, proves capacity without reading budgets — and
// anything else falls back to the authoritative FitsLoad. It reads only;
// commit is ReserveLoad, abort is a no-op.
func (l *Ledger) ValidateSince(e Epoch, entries []LoadEntry) bool {
	if closed, ok := l.ClosedSince(e); ok &&
		!LoadEntriesTouch(entries, closed) && MaxLoadEntries(entries) <= 2 {
		return true
	}
	return l.FitsLoad(entries)
}

// ValidateSliceSince is ValidateSince with the touch test served by a
// footprint instead of the O(closures × entries) slice scan. The footprint
// may cover the whole tree while entries is one shard's slice: closures are
// region-local, so a footprint hit within this ledger's closures implies a
// hit in this shard's slice. The footprint's global Max is a conservative
// stand-in for the slice's (it can only send more cases to the authoritative
// FitsLoad fallback, never fewer), so the decision matches ValidateSince.
func (l *Ledger) ValidateSliceSince(e Epoch, f *Footprint, entries []LoadEntry) bool {
	if closed, ok := l.ClosedSince(e); ok && !f.Touches(closed) && f.Max() <= 2 {
		return true
	}
	return l.FitsLoad(entries)
}
