package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Alpha != 1e-4 {
		t.Errorf("Alpha = %g, want 1e-4", p.Alpha)
	}
	if p.SwapProb != 0.9 {
		t.Errorf("SwapProb = %g, want 0.9", p.SwapProb)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"defaults", DefaultParams(), false},
		{"q = 1 allowed", Params{Alpha: 1e-4, SwapProb: 1}, false},
		{"zero alpha", Params{Alpha: 0, SwapProb: 0.9}, true},
		{"negative alpha", Params{Alpha: -1, SwapProb: 0.9}, true},
		{"infinite alpha", Params{Alpha: math.Inf(1), SwapProb: 0.9}, true},
		{"NaN alpha", Params{Alpha: math.NaN(), SwapProb: 0.9}, true},
		{"zero q", Params{Alpha: 1e-4, SwapProb: 0}, true},
		{"q > 1", Params{Alpha: 1e-4, SwapProb: 1.1}, true},
		{"negative q", Params{Alpha: 1e-4, SwapProb: -0.5}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestLinkRate(t *testing.T) {
	p := Params{Alpha: 1e-4, SwapProb: 0.9}
	tests := []struct {
		length float64
		want   float64
	}{
		{0, 1},
		{1000, math.Exp(-0.1)},
		{10000, math.Exp(-1)},
	}
	for _, tc := range tests {
		if got := p.LinkRate(tc.length); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("LinkRate(%g) = %g, want %g", tc.length, got, tc.want)
		}
	}
}

func TestChannelRateMatchesEquationOne(t *testing.T) {
	p := Params{Alpha: 1e-4, SwapProb: 0.9}
	tests := []struct {
		name    string
		lengths []float64
		want    float64
	}{
		{"empty is not a channel", nil, 0},
		// Single link: no swap, rate = exp(-alpha*L).
		{"one link", []float64{1000}, math.Exp(-0.1)},
		// Two links through one switch: q * p1 * p2 (Fig. 4a's p^2*q).
		{"two links", []float64{1000, 2000}, 0.9 * math.Exp(-0.3)},
		// Four links, three swaps.
		{"four links", []float64{500, 500, 500, 500}, math.Pow(0.9, 3) * math.Exp(-0.2)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.ChannelRate(tc.lengths); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("ChannelRate(%v) = %g, want %g", tc.lengths, got, tc.want)
			}
		})
	}
}

// TestQuickWeightDistanceInverse checks the Algorithm 1 transform: for any
// channel, summing EdgeWeight over its links and applying RateFromDistance
// reproduces the direct Eq. 1 product.
func TestQuickWeightDistanceInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Alpha: 1e-5 + rng.Float64()*1e-3, SwapProb: 0.05 + rng.Float64()*0.95}
		links := 1 + rng.Intn(8)
		lengths := make([]float64, links)
		dist := 0.0
		for i := range lengths {
			lengths[i] = rng.Float64() * 5000
			dist += p.EdgeWeight(lengths[i])
		}
		direct := p.ChannelRate(lengths)
		viaLog := p.RateFromDistance(dist)
		if direct == 0 && viaLog == 0 {
			return true
		}
		return math.Abs(direct-viaLog) <= 1e-9*math.Max(direct, viaLog)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRatesAreProbabilities checks 0 < rate <= 1 for all physical
// inputs.
func TestQuickRatesAreProbabilities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Alpha: 1e-5 + rng.Float64()*1e-3, SwapProb: 0.05 + rng.Float64()*0.95}
		links := 1 + rng.Intn(10)
		lengths := make([]float64, links)
		for i := range lengths {
			lengths[i] = rng.Float64() * 10000
		}
		r := p.ChannelRate(lengths)
		return r > 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLongerChannelsNeverBetter: adding a link to a channel can only
// lower its rate (monotonicity that justifies the greedy searches).
func TestQuickLongerChannelsNeverBetter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Alpha: 1e-5 + rng.Float64()*1e-3, SwapProb: 0.05 + rng.Float64()*0.95}
		links := 1 + rng.Intn(8)
		lengths := make([]float64, links)
		for i := range lengths {
			lengths[i] = rng.Float64() * 5000
		}
		shorter := p.ChannelRate(lengths)
		longer := p.ChannelRate(append(lengths, rng.Float64()*5000))
		return longer <= shorter+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
