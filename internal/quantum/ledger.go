package quantum

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
)

// Ledger tracks the free qubits of every switch while channels are being
// committed. Each channel transiting a switch reserves 2 of its qubits
// (paper §II-C); users are modeled with sufficient capacity and are never
// charged.
//
// The zero value is not usable; construct with NewLedger.
type Ledger struct {
	free []int
	g    *graph.Graph
}

// NewLedger returns a ledger with every switch's full qubit budget free.
func NewLedger(g *graph.Graph) *Ledger {
	l := &Ledger{free: make([]int, g.NumNodes()), g: g}
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindSwitch {
			l.free[n.ID] = n.Qubits
		}
	}
	return l
}

// Free returns the number of free qubits at a switch. For users it returns
// 0; users have no budget and are never charged.
func (l *Ledger) Free(id graph.NodeID) int {
	l.check(id)
	return l.free[id]
}

// CanRelay reports whether node n may serve as a channel-interior vertex
// right now: it must be a switch with at least 2 free qubits. The signature
// matches graph.TransitFunc so a ledger can gate Dijkstra runs directly.
func (l *Ledger) CanRelay(n graph.Node) bool {
	return n.Kind == graph.KindSwitch && l.free[n.ID] >= 2
}

// CanCarry reports whether every interior switch of the path has 2 free
// qubits.
func (l *Ledger) CanCarry(path []graph.NodeID) bool {
	for i := 1; i+1 < len(path); i++ {
		if l.free[path[i]] < 2 {
			return false
		}
	}
	return true
}

// Reserve charges 2 qubits at every interior switch of the path. It fails
// without side effects when some switch lacks capacity.
func (l *Ledger) Reserve(path []graph.NodeID) error {
	if !l.CanCarry(path) {
		return fmt.Errorf("quantum: reserve %v: %w", path, ErrInteriorQubits)
	}
	for i := 1; i+1 < len(path); i++ {
		l.free[path[i]] -= 2
	}
	return nil
}

// Release refunds 2 qubits at every interior switch of the path, undoing a
// prior Reserve. It panics if the refund would exceed a switch's total
// budget, which indicates release without a matching reserve.
func (l *Ledger) Release(path []graph.NodeID) {
	for i := 1; i+1 < len(path); i++ {
		id := path[i]
		l.free[id] += 2
		if l.free[id] > l.g.Node(id).Qubits {
			panic(fmt.Sprintf("quantum: release of unreserved capacity at switch %d", id))
		}
	}
}

// Clone returns an independent copy of the ledger.
func (l *Ledger) Clone() *Ledger {
	c := &Ledger{free: make([]int, len(l.free)), g: l.g}
	copy(c.free, l.free)
	return c
}

// UsedQubits returns the total number of qubits currently reserved across
// all switches.
func (l *Ledger) UsedQubits() int {
	used := 0
	for _, n := range l.g.Nodes() {
		if n.Kind == graph.KindSwitch {
			used += n.Qubits - l.free[n.ID]
		}
	}
	return used
}

func (l *Ledger) check(id graph.NodeID) {
	if id < 0 || int(id) >= len(l.free) {
		panic(fmt.Sprintf("quantum: ledger: unknown node %d", id))
	}
}
