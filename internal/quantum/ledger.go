package quantum

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
)

// Ledger tracks the free qubits of every switch while channels are being
// committed. Each channel transiting a switch reserves 2 of its qubits
// (paper §II-C); users are modeled with sufficient capacity and are never
// charged.
//
// Besides the raw budgets, the ledger records its closure history: every
// time Reserve drops a switch below 2 free qubits the switch "closes" (it
// can no longer relay new channels) and its ID is appended to an ordered
// closure log. Within a run of Reserve-only mutations capacity is monotone —
// closed switches never reopen — which is what lets solvers cache search
// results keyed by an Epoch and revalidate them lazily (see
// internal/core's incremental search layer). A Release that lifts a switch
// back to 2 free qubits breaks that monotonicity; the ledger then starts a
// new generation, and every Epoch taken before it is invalidated wholesale
// (ClosedSince reports ok=false).
//
// Concurrency contract: a Ledger performs no locking of its own. Callers
// that share one ledger across goroutines must serialize every Reserve and
// Release — and any Epoch/ClosedSince reads that need to be consistent with
// them — behind a single mutex or a single owning goroutine. This is the
// discipline internal/service adopts: its admission loop and expiry wheel
// both mutate the ledger only while holding the one server mutex, so each
// micro-batch of solves observes a frozen closure history and the
// incremental search cache stays coherent. Purely read-only use (CanRelay
// during searches, Free, Epoch, ClosedSince) is safe from any number of
// goroutines as long as no mutation runs at the same time.
//
// The zero value is not usable; construct with NewLedger.
type Ledger struct {
	free []int
	g    *graph.Graph

	gen     uint64         // closure generation; bumped when a Release reopens a switch
	closed  []graph.NodeID // switches closed this generation, in closure order
	version uint64         // mutation counter; bumped by every state change
}

// Epoch identifies a point in a ledger's closure history: a generation plus
// the number of closures observed so far within it. Epochs taken from the
// same ledger are totally ordered within a generation; capacity can only
// shrink between an epoch and any later one of the same generation.
type Epoch struct {
	Gen uint64
	N   int
}

// Epoch returns the ledger's current closure epoch. A cached search result
// tagged with it stays conservatively valid for as long as
// ClosedSince(epoch) reports ok with no closures touching the result.
func (l *Ledger) Epoch() Epoch { return Epoch{Gen: l.gen, N: len(l.closed)} }

// Version returns the ledger's mutation counter: it changes whenever any
// Reserve/Release (path, load, or footprint form), ImportState, or SyncEpoch
// changes ledger state. Two reads returning the same version under the
// mutation lock bracket a window with no state change at all — a stronger
// guarantee than an unbroken Epoch, which only rules out reopened capacity.
// The solve cache uses version equality to replay rejections: identical
// budgets mean an identical (deterministic) solve outcome. Versions are
// in-process only and not persisted; they restart from zero on recovery.
func (l *Ledger) Version() uint64 { return l.version }

// ClosedSince returns the switches that closed (dropped below 2 free
// qubits) after epoch e was taken, in closure order. ok is false when e
// belongs to an earlier generation — some Release reopened a switch since,
// monotonicity broke, and the caller must discard everything cached at or
// before e. The returned slice aliases the ledger's log; callers must not
// retain it across further mutations.
func (l *Ledger) ClosedSince(e Epoch) (ids []graph.NodeID, ok bool) {
	if e.Gen != l.gen || e.N > len(l.closed) {
		return nil, false
	}
	return l.closed[e.N:], true
}

// NewLedger returns a ledger with every switch's full qubit budget free.
func NewLedger(g *graph.Graph) *Ledger {
	l := &Ledger{free: make([]int, g.NumNodes()), g: g}
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindSwitch {
			l.free[n.ID] = n.Qubits
		}
	}
	return l
}

// Free returns the number of free qubits at a switch. For users it returns
// 0; users have no budget and are never charged.
func (l *Ledger) Free(id graph.NodeID) int {
	l.check(id)
	return l.free[id]
}

// CanRelay reports whether node n may serve as a channel-interior vertex
// right now: it must be a switch with at least 2 free qubits. The signature
// matches graph.TransitFunc so a ledger can gate Dijkstra runs directly.
func (l *Ledger) CanRelay(n graph.Node) bool {
	return n.Kind == graph.KindSwitch && l.free[n.ID] >= 2
}

// CanCarry reports whether every interior switch of the path has 2 free
// qubits.
func (l *Ledger) CanCarry(path []graph.NodeID) bool {
	for i := 1; i+1 < len(path); i++ {
		if l.free[path[i]] < 2 {
			return false
		}
	}
	return true
}

// Reserve charges 2 qubits at every interior switch of the path. It fails
// without side effects when some switch lacks capacity. Switches the charge
// drops below 2 free qubits are appended to the closure log.
func (l *Ledger) Reserve(path []graph.NodeID) error {
	if !l.CanCarry(path) {
		return fmt.Errorf("quantum: reserve %v: %w", path, ErrInteriorQubits)
	}
	for i := 1; i+1 < len(path); i++ {
		id := path[i]
		l.free[id] -= 2
		if l.free[id] < 2 {
			l.closed = append(l.closed, id)
		}
	}
	if len(path) > 2 {
		l.version++
	}
	return nil
}

// Release refunds 2 qubits at every interior switch of the path, undoing a
// prior Reserve. It panics if the refund would exceed a switch's total
// budget, which indicates release without a matching reserve. A refund that
// lifts a switch from below 2 back to >= 2 free qubits reopens it: the
// ledger starts a new closure generation, invalidating every outstanding
// Epoch (reopened capacity can make previously cached search results
// non-optimal, so they must all be dropped, not patched).
func (l *Ledger) Release(path []graph.NodeID) {
	for i := 1; i+1 < len(path); i++ {
		id := path[i]
		l.free[id] += 2
		if l.free[id] > l.g.Node(id).Qubits {
			panic(fmt.Sprintf("quantum: release of unreserved capacity at switch %d", id))
		}
		if l.free[id] >= 2 && l.free[id]-2 < 2 {
			l.gen++
			l.closed = l.closed[:0]
		}
	}
	if len(path) > 2 {
		l.version++
	}
}

// LedgerState is the serializable image of a ledger used by the durability
// layer (internal/snapshot): the per-node free-qubit budgets plus the full
// closure history. Free is indexed by graph.NodeID and carries 0 for users.
type LedgerState struct {
	Free   []int          `json:"free"`
	Gen    uint64         `json:"gen"`
	Closed []graph.NodeID `json:"closed,omitempty"`
}

// ExportState returns a deep copy of the ledger's state, suitable for
// serialization. The caller must hold the ledger's mutation lock (the
// single-mutator contract above) while exporting.
func (l *Ledger) ExportState() LedgerState {
	st := LedgerState{Free: make([]int, len(l.free)), Gen: l.gen}
	copy(st.Free, l.free)
	if len(l.closed) > 0 {
		st.Closed = append(st.Closed, l.closed...)
	}
	return st
}

// ImportState overwrites the ledger's budgets and closure history with a
// previously exported state, validating it against the graph: the free
// vector must cover every node, stay within each switch's total budget,
// charge users nothing, and keep reservations even (channels charge 2
// qubits at a time).
func (l *Ledger) ImportState(st LedgerState) error {
	if len(st.Free) != len(l.free) {
		return fmt.Errorf("quantum: ledger state covers %d nodes, graph has %d", len(st.Free), len(l.free))
	}
	for _, n := range l.g.Nodes() {
		free := st.Free[n.ID]
		if n.Kind == graph.KindSwitch {
			if free < 0 || free > n.Qubits {
				return fmt.Errorf("quantum: ledger state: switch %d free %d outside [0, %d]", n.ID, free, n.Qubits)
			}
			if (n.Qubits-free)%2 != 0 {
				return fmt.Errorf("quantum: ledger state: switch %d holds odd reservation %d", n.ID, n.Qubits-free)
			}
		} else if free != 0 {
			return fmt.Errorf("quantum: ledger state: user %d has free %d, want 0", n.ID, free)
		}
	}
	for _, id := range st.Closed {
		if id < 0 || int(id) >= len(l.free) || l.g.Node(id).Kind != graph.KindSwitch {
			return fmt.Errorf("quantum: ledger state: closure log names invalid switch %d", id)
		}
	}
	copy(l.free, st.Free)
	l.gen = st.Gen
	l.closed = append(l.closed[:0], st.Closed...)
	l.version++
	return nil
}

// SyncEpoch adopts a later closure generation recorded by the durability
// layer. A rolled-back routing attempt (cancelled or infeasible solve)
// leaves the free budgets exactly as before but may have closed switches
// and reopened them, which bumps the generation and clears the closure log;
// replaying such an attempt is impossible, so recovery patches the epoch
// directly with the generation the live ledger reached. Regressing the
// generation is a replay-order bug and is rejected.
func (l *Ledger) SyncEpoch(gen uint64) error {
	if gen < l.gen {
		return fmt.Errorf("quantum: SyncEpoch gen %d behind current %d", gen, l.gen)
	}
	if gen > l.gen {
		l.gen = gen
		l.closed = l.closed[:0]
		l.version++
	}
	return nil
}

// Clone returns an independent copy of the ledger, closure history
// included. It is the cheap in-process snapshot — two slice copies, no
// serialization — and the way to take a consistent view of a shared ledger
// for speculative work: callers hold the ledger's mutation lock for the
// Clone call only, then solve against the copy freely. Prefer CopyFrom when
// the same scratch ledger is refreshed repeatedly.
func (l *Ledger) Clone() *Ledger {
	c := &Ledger{free: make([]int, len(l.free)), g: l.g, gen: l.gen, version: l.version}
	copy(c.free, l.free)
	if len(l.closed) > 0 {
		c.closed = append(c.closed, l.closed...)
	}
	return c
}

// CopyFrom overwrites l with src's budgets and closure history. Both
// ledgers must be over the same graph (it panics otherwise — mixing
// topologies would corrupt budgets silently). It is Clone without the
// allocations: a worker that re-snapshots a shared ledger before every
// speculative solve reuses one scratch ledger instead of allocating a copy
// per attempt. The caller must hold src's mutation lock for the duration of
// the call.
func (l *Ledger) CopyFrom(src *Ledger) {
	if l.g != src.g {
		panic("quantum: CopyFrom across different graphs")
	}
	copy(l.free, src.free)
	l.gen = src.gen
	l.closed = append(l.closed[:0], src.closed...)
	l.version = src.version
}

// Fits reports whether the ledger can absorb the given per-switch qubit
// load right now — the authoritative validation a speculative solve runs
// under the mutation lock before committing a tree built against a stale
// view (load is Tree.QubitLoad's shape: switch → qubits demanded).
func (l *Ledger) Fits(load map[graph.NodeID]int) bool {
	for id, need := range load {
		l.check(id)
		if l.free[id] < need {
			return false
		}
	}
	return true
}

// LoadTouches reports whether any switch in ids carries load — the
// conflict pre-filter between a candidate tree's footprint and the
// switches ClosedSince reports closed after the tree's base epoch. No
// touch (with an unbroken epoch and per-switch demand ≤ 2) proves every
// switch the tree needs still has the 2 free qubits a channel charges,
// without reading the budgets.
func LoadTouches(load map[graph.NodeID]int, ids []graph.NodeID) bool {
	for _, id := range ids {
		if load[id] > 0 {
			return true
		}
	}
	return false
}

// MaxLoad returns the largest per-switch demand in a load map (0 when
// empty). Demand above 2 at any switch means the epoch pre-filter alone
// cannot prove capacity — concurrent commits may have drained a still-open
// switch below the demand — and the caller must fall back to Fits.
func MaxLoad(load map[graph.NodeID]int) int {
	max := 0
	for _, n := range load {
		if n > max {
			max = n
		}
	}
	return max
}

// UsedQubits returns the total number of qubits currently reserved across
// all switches.
func (l *Ledger) UsedQubits() int {
	used := 0
	for _, n := range l.g.Nodes() {
		if n.Kind == graph.KindSwitch {
			used += n.Qubits - l.free[n.ID]
		}
	}
	return used
}

func (l *Ledger) check(id graph.NodeID) {
	if id < 0 || int(id) >= len(l.free) {
		panic(fmt.Sprintf("quantum: ledger: unknown node %d", id))
	}
}
