package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
)

// This file provides the classic NSFNET T1 backbone as a ready-made
// fixture: 14 continental-US sites and 21 long-haul links, the standard
// reference topology of the (quantum-)networking evaluation literature.
// Sites act as quantum switches; user nodes attach to randomly chosen
// sites over short metro access fibers.

// nsfSite is one backbone location with approximate continental
// coordinates in kilometres (x grows eastward, y northward).
type nsfSite struct {
	name string
	x, y float64
}

// nsfSites lists the 14 NSFNET sites.
var nsfSites = []nsfSite{
	{"Seattle", 100, 1400},
	{"PaloAlto", 150, 700},
	{"SanDiego", 350, 150},
	{"SaltLake", 900, 950},
	{"Boulder", 1300, 850},
	{"Houston", 2100, 100},
	{"Lincoln", 1900, 950},
	{"Champaign", 2500, 950},
	{"Atlanta", 2900, 350},
	{"Pittsburgh", 3150, 950},
	{"AnnArbor", 2900, 1150},
	{"Ithaca", 3400, 1200},
	{"Princeton", 3550, 1000},
	{"CollegePark", 3450, 850},
}

// nsfLinks lists the 21 backbone fibers by site index.
var nsfLinks = [][2]int{
	{0, 1}, {0, 2}, {0, 7},
	{1, 2}, {1, 3},
	{2, 5},
	{3, 4}, {3, 10},
	{4, 5}, {4, 6},
	{5, 8}, {5, 13},
	{6, 7},
	{7, 9},
	{8, 9},
	{9, 11}, {9, 12},
	{10, 11},
	{11, 12},
	{12, 13},
	{8, 13},
}

// accessFiberKM is the metro access fiber length attaching a user to its
// backbone site.
const accessFiberKM = 50

// NSFNet returns the 14-site NSFNET backbone with every site acting as a
// quantum switch of the given qubit budget, plus `users` user nodes, each
// attached to a (rng-chosen) distinct site by a 50 km access fiber. With
// more than 14 users, sites are reused round-robin over a fresh random
// order.
func NSFNet(users, switchQubits int, rng *rand.Rand) (*graph.Graph, error) {
	if users < 1 {
		return nil, fmt.Errorf("%w: users=%d", ErrBadCounts, users)
	}
	if switchQubits < 0 {
		return nil, fmt.Errorf("topology: negative switch qubits %d", switchQubits)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: nil rng")
	}
	g := graph.New(len(nsfSites)+users, len(nsfLinks)+users)
	for _, s := range nsfSites {
		g.AddNode(graph.Node{
			Kind:   graph.KindSwitch,
			X:      s.x,
			Y:      s.y,
			Qubits: switchQubits,
			Label:  s.name,
		})
	}
	for _, l := range nsfLinks {
		a, b := nsfSites[l[0]], nsfSites[l[1]]
		g.MustAddEdge(graph.NodeID(l[0]), graph.NodeID(l[1]), math.Hypot(a.x-b.x, a.y-b.y))
	}
	order := rng.Perm(len(nsfSites))
	for i := 0; i < users; i++ {
		site := order[i%len(order)]
		s := nsfSites[site]
		// Offset users slightly from their site for readable rendering.
		u := g.AddNode(graph.Node{
			Kind:  graph.KindUser,
			X:     s.x + 30,
			Y:     s.y + 30,
			Label: fmt.Sprintf("u-%s", s.name),
		})
		g.MustAddEdge(u, graph.NodeID(site), accessFiberKM)
	}
	return g, nil
}

// NSFNetSiteCount returns the number of backbone sites (14).
func NSFNetSiteCount() int { return len(nsfSites) }
