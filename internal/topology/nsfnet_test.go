package topology

import (
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

func TestNSFNetShape(t *testing.T) {
	g, err := NSFNet(6, 4, testRNG(1))
	if err != nil {
		t.Fatalf("NSFNet: %v", err)
	}
	if got := len(g.Switches()); got != 14 {
		t.Fatalf("switches = %d, want 14", got)
	}
	if got := len(g.Users()); got != 6 {
		t.Fatalf("users = %d, want 6", got)
	}
	// 21 backbone fibers + one access fiber per user.
	if got := g.NumEdges(); got != 21+6 {
		t.Fatalf("edges = %d, want 27", got)
	}
	if !g.Connected() {
		t.Fatal("NSFNET disconnected")
	}
	for _, s := range g.Switches() {
		n := g.Node(s)
		if n.Qubits != 4 {
			t.Fatalf("site %s has %d qubits", n.Label, n.Qubits)
		}
		if n.Label == "" {
			t.Fatalf("site %d unnamed", s)
		}
	}
}

func TestNSFNetDistinctSitesForFewUsers(t *testing.T) {
	g, err := NSFNet(14, 4, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// With exactly 14 users every site hosts exactly one.
	hosts := map[graph.NodeID]int{}
	for _, u := range g.Users() {
		for _, nb := range g.NeighborIDs(u) {
			hosts[nb]++
		}
	}
	for site, count := range hosts {
		if count != 1 {
			t.Fatalf("site %d hosts %d users, want 1", site, count)
		}
	}
}

func TestNSFNetManyUsersReuseSites(t *testing.T) {
	g, err := NSFNet(20, 4, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Users()); got != 20 {
		t.Fatalf("users = %d", got)
	}
	if !g.UsersConnected() {
		t.Fatal("users not connected")
	}
}

func TestNSFNetRoutable(t *testing.T) {
	g, err := NSFNet(5, 4, testRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// Every backbone fiber length is the geometric site distance.
	for _, e := range g.Edges() {
		if e.Length <= 0 {
			t.Fatalf("fiber %v has non-positive length", e)
		}
	}
	if NSFNetSiteCount() != 14 {
		t.Fatalf("NSFNetSiteCount = %d", NSFNetSiteCount())
	}
}

func TestNSFNetRejects(t *testing.T) {
	if _, err := NSFNet(0, 4, testRNG(1)); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := NSFNet(3, -1, testRNG(1)); err == nil {
		t.Error("negative qubits accepted")
	}
	if _, err := NSFNet(3, 4, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
