package topology

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/muerp/quantumnet/internal/graph"
)

// Partition is a deterministic k-way split of a topology's switches into
// regions, produced by PartitionRegions. Regions index per-shard admission
// state: each switch belongs to exactly one region, users are attached to
// the region of a neighboring switch, and boundary switches (those with a
// fiber to a switch in another region) are annotated for the cross-region
// reservation protocol.
type Partition struct {
	// K is the number of regions (0..K-1).
	K int `json:"k"`
	// Seed is the RNG seed the partitioner was run with; recorded so a
	// persisted partition can be re-derived and pinned.
	Seed int64 `json:"seed"`
	// Region maps every NodeID (users included) to its region index.
	Region []int `json:"region"`
	// Boundary lists, in ascending NodeID order, every switch incident to
	// a switch-switch fiber whose other endpoint lies in another region.
	Boundary []graph.NodeID `json:"boundary"`
	// CutEdges counts switch-switch fibers crossing region boundaries.
	CutEdges int `json:"cut_edges"`

	// regionSwitches[r] lists region r's switches in ascending ID order.
	regionSwitches [][]graph.NodeID
}

// Partitioner errors.
var (
	ErrBadRegionCount = errors.New("topology: region count must be >= 1 and <= switch count")
	ErrPartitionGraph = errors.New("topology: partition does not match graph")
)

// RegionOf returns the region of id.
func (p *Partition) RegionOf(id graph.NodeID) int { return p.Region[id] }

// Switches returns region r's switches in ascending NodeID order. The
// returned slice is shared; callers must not mutate it.
func (p *Partition) Switches(r int) []graph.NodeID { return p.regionSwitches[r] }

// IsBoundary reports whether id is an annotated boundary switch.
func (p *Partition) IsBoundary(id graph.NodeID) bool {
	i := sort.Search(len(p.Boundary), func(i int) bool { return p.Boundary[i] >= id })
	return i < len(p.Boundary) && p.Boundary[i] == id
}

// Rebuild recomputes the derived per-region switch lists after the exported
// fields were populated externally (e.g. decoded from JSON), and validates
// the partition against g: Region must cover every node with a value in
// [0, K), and the boundary/cut annotations must match the graph.
func (p *Partition) Rebuild(g *graph.Graph) error {
	if p.K < 1 || len(p.Region) != g.NumNodes() {
		return fmt.Errorf("%w: k=%d regions=%d nodes=%d",
			ErrPartitionGraph, p.K, len(p.Region), g.NumNodes())
	}
	for id, r := range p.Region {
		if r < 0 || r >= p.K {
			return fmt.Errorf("%w: node %d in region %d of %d", ErrPartitionGraph, id, r, p.K)
		}
	}
	boundary, cut := boundaryOf(g, p.Region)
	if cut != p.CutEdges || len(boundary) != len(p.Boundary) {
		return fmt.Errorf("%w: boundary/cut annotation mismatch", ErrPartitionGraph)
	}
	for i, id := range boundary {
		if p.Boundary[i] != id {
			return fmt.Errorf("%w: boundary annotation mismatch at %d", ErrPartitionGraph, id)
		}
	}
	p.regionSwitches = make([][]graph.NodeID, p.K)
	for _, sw := range g.Switches() {
		r := p.Region[sw]
		p.regionSwitches[r] = append(p.regionSwitches[r], sw)
	}
	return nil
}

// PartitionRegions splits g's switches into k regions, minimizing the number
// of cut fibers with a deterministic greedy refinement. The algorithm is:
// farthest-point seeding over switch-hop distance (the seed RNG picks only
// the first seed; ties and unreachable components are resolved in ascending
// NodeID order, so k seeds spread across disconnected components), a
// deterministic multi-source BFS growing the regions, then bounded local
// refinement passes moving switches to the neighboring region that reduces
// the cut (never emptying a region). Users attach last, balancing: a user
// with switch neighbors in several regions lands in the candidate region
// with the fewest users so far, keeping per-shard user load even. Identical
// (g, k, seed) inputs always produce identical partitions — the routing and
// durability layers depend on this for replay.
func PartitionRegions(g *graph.Graph, k int, seed int64) (*Partition, error) {
	switches := g.Switches()
	if k < 1 || k > len(switches) {
		return nil, fmt.Errorf("%w: k=%d switches=%d", ErrBadRegionCount, k, len(switches))
	}

	n := g.NumNodes()
	region := make([]int, n)
	for i := range region {
		region[i] = -1
	}

	seeds := pickSeeds(g, switches, k, seed)

	// Multi-source BFS over the switch-switch subgraph. The queue is seeded
	// in region order and neighbors are visited in ascending ID order, so
	// the assignment is deterministic; ties (two regions reaching a switch
	// in the same round) resolve to the earlier-queued, i.e. lower, region.
	queue := make([]graph.NodeID, 0, len(switches))
	for r, s := range seeds {
		region[s] = r
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, nb := range g.NeighborIDs(cur) {
			if g.Node(nb).Kind != graph.KindSwitch || region[nb] >= 0 {
				continue
			}
			region[nb] = region[cur]
			queue = append(queue, nb)
		}
	}

	// Switch components with no seed stay unassigned; fold each one into
	// the currently smallest region (ties to the lower index). Scanning in
	// ID order keeps this deterministic.
	counts := make([]int, k)
	for _, sw := range switches {
		if region[sw] >= 0 {
			counts[region[sw]]++
		}
	}
	for _, sw := range switches {
		if region[sw] >= 0 {
			continue
		}
		best := 0
		for r := 1; r < k; r++ {
			if counts[r] < counts[best] {
				best = r
			}
		}
		comp := switchComponent(g, sw, region)
		for _, id := range comp {
			region[id] = best
		}
		counts[best] += len(comp)
	}

	refine(g, switches, region, counts, k)

	// Users adopt the region of a neighboring switch. A user whose switch
	// neighbors span several regions could go to any of them; the tie breaks
	// toward the region currently holding the fewest users (then the lower
	// index), so user load spreads across shards instead of piling onto
	// whichever region owns the lowest-ID switch. Users() is in ascending ID
	// order and candidates are scanned by region index, so the pass is
	// deterministic. Isolated users — or users wired only to users — fall
	// back to region 0.
	userLoad := make([]int, k)
	candidate := make([]bool, k)
	for _, u := range g.Users() {
		for r := range candidate {
			candidate[r] = false
		}
		attached := false
		for _, nb := range g.NeighborIDs(u) {
			if g.Node(nb).Kind == graph.KindSwitch {
				candidate[region[nb]] = true
				attached = true
			}
		}
		best := 0
		if attached {
			best = -1
			for r := 0; r < k; r++ {
				if candidate[r] && (best < 0 || userLoad[r] < userLoad[best]) {
					best = r
				}
			}
		}
		region[u] = best
		userLoad[best]++
	}

	boundary, cut := boundaryOf(g, region)
	p := &Partition{K: k, Seed: seed, Region: region, Boundary: boundary, CutEdges: cut}
	p.regionSwitches = make([][]graph.NodeID, k)
	for _, sw := range switches {
		p.regionSwitches[region[sw]] = append(p.regionSwitches[region[sw]], sw)
	}
	return p, nil
}

// pickSeeds chooses k switch seeds by farthest-point sampling in hop
// distance over the switch subgraph. Only the first seed consumes
// randomness; every later pick maximizes the distance to the chosen set,
// breaking ties toward the lowest ID, and unreachable switches (disconnected
// components) count as infinitely far, so components are seeded first.
func pickSeeds(g *graph.Graph, switches []graph.NodeID, k int, seed int64) []graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	seeds := make([]graph.NodeID, 0, k)
	first := switches[rng.Intn(len(switches))]
	seeds = append(seeds, first)

	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = inf
	}
	bfsUpdate := func(src graph.NodeID) {
		if dist[src] == 0 {
			return
		}
		dist[src] = 0
		queue := []graph.NodeID{src}
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			for _, nb := range g.NeighborIDs(cur) {
				if g.Node(nb).Kind != graph.KindSwitch || dist[nb] <= dist[cur]+1 {
					continue
				}
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	bfsUpdate(first)
	for len(seeds) < k {
		var next graph.NodeID = -1
		bestDist := -1
		for _, sw := range switches {
			if dist[sw] > bestDist {
				bestDist = dist[sw]
				next = sw
			}
		}
		seeds = append(seeds, next)
		bfsUpdate(next)
	}
	return seeds
}

// switchComponent returns the unassigned switch component containing start,
// in BFS order.
func switchComponent(g *graph.Graph, start graph.NodeID, region []int) []graph.NodeID {
	comp := []graph.NodeID{start}
	seen := map[graph.NodeID]bool{start: true}
	for head := 0; head < len(comp); head++ {
		for _, nb := range g.NeighborIDs(comp[head]) {
			if g.Node(nb).Kind != graph.KindSwitch || region[nb] >= 0 || seen[nb] {
				continue
			}
			seen[nb] = true
			comp = append(comp, nb)
		}
	}
	return comp
}

// refine runs bounded greedy passes moving switches to the adjacent region
// holding the majority of their switch neighbors, which strictly reduces the
// cut. A move never empties a region, passes scan switches in ascending ID
// order, and ties keep the current region — all deterministic.
func refine(g *graph.Graph, switches []graph.NodeID, region, counts []int, k int) {
	if k < 2 {
		return
	}
	adj := make([]int, k)
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for _, sw := range switches {
			cur := region[sw]
			if counts[cur] <= 1 {
				continue
			}
			for r := range adj {
				adj[r] = 0
			}
			for _, nb := range g.NeighborIDs(sw) {
				if g.Node(nb).Kind == graph.KindSwitch {
					adj[region[nb]]++
				}
			}
			best := cur
			for r := 0; r < k; r++ {
				if adj[r] > adj[best] {
					best = r
				}
			}
			if best != cur {
				region[sw] = best
				counts[cur]--
				counts[best]++
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// boundaryOf computes the boundary switch set (ascending ID order) and the
// cut-fiber count for an assignment.
func boundaryOf(g *graph.Graph, region []int) ([]graph.NodeID, int) {
	var boundary []graph.NodeID
	cut := 0
	for _, sw := range g.Switches() {
		isBoundary := false
		for _, nb := range g.NeighborIDs(sw) {
			if g.Node(nb).Kind != graph.KindSwitch || region[nb] == region[sw] {
				continue
			}
			isBoundary = true
			if nb > sw { // count each cut fiber once
				cut++
			}
		}
		if isBoundary {
			boundary = append(boundary, sw)
		}
	}
	return boundary, cut
}
