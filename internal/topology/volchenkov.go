package topology

import (
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
)

// wireVolchenkov wires the graph with a power-law degree distribution in the
// spirit of Volchenkov & Blanchard (2002), "An algorithm generating random
// graphs with power law degree distributions".
//
// Realization (DESIGN.md substitution 4): each node i gets an expected-
// degree weight w_i ∝ (i+1)^(-1/(gamma-1)) — the Zipf sequence whose degree
// distribution follows P(k) ∝ k^(-gamma) — assigned to nodes in random
// order; pairs are then sampled without replacement with probability
// proportional to w_i*w_j (Chung-Lu) until the degree-target edge count is
// reached. Fiber lengths are the Euclidean endpoint distances.
func wireVolchenkov(g *graph.Graph, cfg Config, rng *rand.Rand) error {
	n := g.NumNodes()
	if n < 2 {
		return nil
	}
	exponent := -1.0 / (cfg.PowerLawGamma - 1)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), exponent)
	}
	// Detach hub identity from node index (and therefore from kind
	// placement) by shuffling the weight sequence.
	rng.Shuffle(n, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })

	pairs := allPairs(g, func(a, b graph.Node) float64 {
		return weights[a.ID] * weights[b.ID]
	})
	sampleEdges(g, pairs, cfg.targetEdges(), rng)
	return nil
}
