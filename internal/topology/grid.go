package topology

import (
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
)

// wireGrid wires the graph as a 2D lattice, the topology used by the
// lattice-network line of related work (e.g. Li et al., "Effective routing
// design for remote entanglement generation on quantum networks"). Nodes
// are re-placed on a ceil(sqrt(N)) x ceil(sqrt(N)) grid spanning the area
// (kinds stay where placeNodes shuffled them) and joined to their 4
// orthogonal neighbors. AvgDegree and ExactEdges are ignored: an interior
// lattice node has degree 4 by construction.
func wireGrid(g *graph.Graph, cfg Config, _ *rand.Rand) error {
	n := g.NumNodes()
	if n < 2 {
		return nil
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	spacing := cfg.Area
	if side > 1 {
		spacing = cfg.Area / float64(side-1)
	}
	// Snap nodes onto lattice points row by row.
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		g.SetPosition(graph.NodeID(i), float64(col)*spacing, float64(row)*spacing)
	}
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		if col+1 < side && i+1 < n {
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), spacing)
		}
		if row+1 < side && i+side < n {
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+side), spacing)
		}
	}
	return nil
}
