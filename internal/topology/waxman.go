package topology

import (
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
)

// wireWaxman wires the graph following Waxman (1988): the probability of a
// fiber between two nodes decays exponentially with their distance,
// P(u,v) ∝ exp(-d(u,v) / (alpha * L)), where L is the maximum pairwise
// distance. Instead of per-pair Bernoulli draws (which only hit the degree
// target in expectation), we sample exactly targetEdges() pairs without
// replacement with Waxman weights — same distance bias, deterministic edge
// count.
func wireWaxman(g *graph.Graph, cfg Config, rng *rand.Rand) error {
	maxD := maxPairDistance(g)
	if maxD == 0 {
		maxD = 1 // all nodes coincide; weights degenerate to uniform
	}
	scale := cfg.WaxmanAlpha * maxD
	pairs := allPairs(g, func(a, b graph.Node) float64 {
		return math.Exp(-distance(a, b) / scale)
	})
	sampleEdges(g, pairs, cfg.targetEdges(), rng)
	return nil
}

// maxPairDistance returns the largest pairwise Euclidean distance.
func maxPairDistance(g *graph.Graph) float64 {
	nodes := g.Nodes()
	maxD := 0.0
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if d := distance(nodes[i], nodes[j]); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}
