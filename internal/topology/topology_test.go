package topology

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/graph"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := Default()
	if c.Model != Waxman {
		t.Errorf("Model = %v, want Waxman", c.Model)
	}
	if c.Users != 10 || c.Switches != 50 {
		t.Errorf("Users/Switches = %d/%d, want 10/50", c.Users, c.Switches)
	}
	if c.Area != 10000 {
		t.Errorf("Area = %g, want 10000", c.Area)
	}
	if c.AvgDegree != 6 {
		t.Errorf("AvgDegree = %g, want 6", c.AvgDegree)
	}
	if c.SwitchQubits != 4 {
		t.Errorf("SwitchQubits = %d, want 4", c.SwitchQubits)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := Default()
		f(&c)
		return c
	}
	tests := []struct {
		name    string
		cfg     Config
		wantErr error
	}{
		{"no users", mod(func(c *Config) { c.Users = 0 }), ErrBadCounts},
		{"negative switches", mod(func(c *Config) { c.Switches = -1 }), ErrBadCounts},
		{"zero area", mod(func(c *Config) { c.Area = 0 }), ErrBadArea},
		{"zero degree", mod(func(c *Config) { c.AvgDegree = 0 }), ErrBadDegree},
		{"exact edges substitute degree", mod(func(c *Config) { c.AvgDegree = 0; c.ExactEdges = 100 }), nil},
		{"unknown model", mod(func(c *Config) { c.Model = Model(99) }), ErrBadModel},
		{"bad waxman alpha", mod(func(c *Config) { c.WaxmanAlpha = 0 }), ErrBadShape},
		{"bad rewire", mod(func(c *Config) { c.Model = WattsStrogatz; c.RewireProb = 1.5 }), ErrBadShape},
		{"bad gamma", mod(func(c *Config) { c.Model = Volchenkov; c.PowerLawGamma = 1 }), ErrBadShape},
		{"negative qubits", mod(func(c *Config) { c.SwitchQubits = -1 }), nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.name == "exact edges substitute degree" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestParseModel(t *testing.T) {
	tests := []struct {
		in   string
		want Model
		ok   bool
	}{
		{"waxman", Waxman, true},
		{"watts-strogatz", WattsStrogatz, true},
		{"ws", WattsStrogatz, true},
		{"volchenkov", Volchenkov, true},
		{"powerlaw", Volchenkov, true},
		{"erdos", 0, false},
	}
	for _, tc := range tests {
		got, err := ParseModel(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseModel(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, m := range []Model{Waxman, WattsStrogatz, Volchenkov} {
		back, err := ParseModel(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v failed: %v, %v", m, back, err)
		}
	}
}

func TestGenerateCountsAndKinds(t *testing.T) {
	for _, model := range []Model{Waxman, WattsStrogatz, Volchenkov} {
		t.Run(model.String(), func(t *testing.T) {
			cfg := Default()
			cfg.Model = model
			g, err := Generate(cfg, testRNG(1))
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if got := len(g.Users()); got != cfg.Users {
				t.Errorf("users = %d, want %d", got, cfg.Users)
			}
			if got := len(g.Switches()); got != cfg.Switches {
				t.Errorf("switches = %d, want %d", got, cfg.Switches)
			}
			for _, s := range g.Switches() {
				if q := g.Node(s).Qubits; q != cfg.SwitchQubits {
					t.Fatalf("switch %d has %d qubits, want %d", s, q, cfg.SwitchQubits)
				}
			}
			if !g.Connected() {
				t.Error("EnsureConnected graph is disconnected")
			}
		})
	}
}

func TestGenerateDegreeTarget(t *testing.T) {
	for _, model := range []Model{Waxman, WattsStrogatz, Volchenkov} {
		t.Run(model.String(), func(t *testing.T) {
			cfg := Default()
			cfg.Model = model
			g, err := Generate(cfg, testRNG(2))
			if err != nil {
				t.Fatal(err)
			}
			// Repair edges may push slightly above target; allow 25% slack.
			got := g.AverageDegree()
			if got < cfg.AvgDegree*0.75 || got > cfg.AvgDegree*1.25 {
				t.Errorf("average degree = %g, want about %g", got, cfg.AvgDegree)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Default()
	a, err := Generate(cfg, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different shape: %s vs %s", a, b)
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(graph.EdgeID(i)) != b.Edge(graph.EdgeID(i)) {
			t.Fatalf("edge %d differs between same-seed draws", i)
		}
	}
	c, err := Generate(cfg, testRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumEdges() == c.NumEdges()
	if same {
		identical := true
		for i := 0; i < a.NumEdges(); i++ {
			if a.Edge(graph.EdgeID(i)) != c.Edge(graph.EdgeID(i)) {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical networks")
		}
	}
}

func TestGenerateExactEdges(t *testing.T) {
	cfg := Default()
	cfg.ExactEdges = 600
	cfg.EnsureConnected = false
	g, err := Generate(cfg, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumEdges(); got != 600 {
		t.Fatalf("NumEdges = %d, want exactly 600", got)
	}
}

func TestGenerateWaxmanPrefersShortFibers(t *testing.T) {
	cfg := Default()
	cfg.EnsureConnected = false
	g, err := Generate(cfg, testRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, e := range g.Edges() {
		mean += e.Length
	}
	mean /= float64(g.NumEdges())
	// Uniform random pairs in a 10k square average ~5214 km apart; Waxman
	// sampling must pull the mean fiber length well below that.
	if mean >= 4000 {
		t.Fatalf("mean fiber length %g km shows no distance bias", mean)
	}
}

func TestGenerateWattsStrogatzLatticeDegree(t *testing.T) {
	cfg := Default()
	cfg.Model = WattsStrogatz
	cfg.RewireProb = 0
	cfg.EnsureConnected = false
	g, err := Generate(cfg, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// Pure ring lattice: every node has exactly K = 6 neighbors.
	for i := 0; i < g.NumNodes(); i++ {
		if d := g.Degree(graph.NodeID(i)); d != 6 {
			t.Fatalf("lattice node %d degree = %d, want 6", i, d)
		}
	}
	if !g.Connected() {
		t.Fatal("ring lattice disconnected")
	}
}

func TestGenerateVolchenkovSkewsDegrees(t *testing.T) {
	cfg := Default()
	cfg.Model = Volchenkov
	cfg.EnsureConnected = false
	cfg.Switches = 100
	g, err := Generate(cfg, testRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	maxDeg, sum := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(graph.NodeID(i))
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	meanDeg := float64(sum) / float64(g.NumNodes())
	// A power-law net has hubs several times the mean degree.
	if float64(maxDeg) < 2.5*meanDeg {
		t.Fatalf("max degree %d vs mean %.1f: no heavy tail", maxDeg, meanDeg)
	}
}

func TestGenerateRejects(t *testing.T) {
	cfg := Default()
	if _, err := Generate(cfg, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	cfg.Users = 0
	if _, err := Generate(cfg, testRNG(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRepairConnectivity(t *testing.T) {
	g := graph.New(4, 0)
	g.AddUser(0, 0)
	g.AddUser(1, 0)
	g.AddUser(10, 10)
	g.AddUser(11, 10)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	repairConnectivity(g)
	if !g.Connected() {
		t.Fatal("repair left the graph disconnected")
	}
	// The repair edge should be the geometrically shortest cross pair (1-2).
	if !g.HasEdge(1, 2) {
		t.Errorf("expected shortest repair fiber 1-2; edges: %v", g.Edges())
	}
}

// TestQuickGeneratedGraphsAreSound: for all models and seeds, generated
// networks have the right node counts, no self-loops/duplicates (guaranteed
// by graph.AddEdge), positive finite lengths consistent with endpoint
// geometry, and connectivity when requested.
func TestQuickGeneratedGraphsAreSound(t *testing.T) {
	f := func(seed int64, modelRaw uint8) bool {
		model := []Model{Waxman, WattsStrogatz, Volchenkov}[int(modelRaw)%3]
		rng := testRNG(seed)
		cfg := Default()
		cfg.Model = model
		cfg.Users = 2 + rng.Intn(8)
		cfg.Switches = rng.Intn(30)
		cfg.AvgDegree = 2 + rng.Float64()*6
		g, err := Generate(cfg, rng)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(g.Users()) != cfg.Users || len(g.Switches()) != cfg.Switches {
			return false
		}
		if !g.Connected() {
			t.Logf("model %v seed %d: disconnected", model, seed)
			return false
		}
		for _, e := range g.Edges() {
			a, b := g.Node(e.A), g.Node(e.B)
			want := math.Hypot(a.X-b.X, a.Y-b.Y)
			if e.Length <= 0 || math.Abs(e.Length-want) > 1e-6 {
				t.Logf("edge %v length %g, geometric %g", e, e.Length, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
