package topology

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

func partitionTestGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	cfg := Default()
	cfg.Users = 8
	cfg.Switches = 40
	g, err := Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g
}

// clusters builds a graph of c fully disconnected switch clusters (size
// switches each) with users/2 users attached to each of the first two
// clusters... actually one user pair per cluster.
func disconnectedClusters(t *testing.T, c, switchesPer, usersPer, qubits int) *graph.Graph {
	t.Helper()
	g := graph.New(0, 0)
	for ci := 0; ci < c; ci++ {
		var users, sws []graph.NodeID
		for i := 0; i < usersPer; i++ {
			users = append(users, g.AddUser(float64(ci*1000+i), 0))
		}
		for i := 0; i < switchesPer; i++ {
			sws = append(sws, g.AddSwitch(float64(ci*1000+i), 100, qubits))
		}
		for i := 1; i < len(sws); i++ {
			g.MustAddEdge(sws[i-1], sws[i], 100)
		}
		for i, u := range users {
			g.MustAddEdge(u, sws[i%len(sws)], 100)
		}
	}
	return g
}

// Every switch lands in exactly one region in [0, k), every region is
// non-empty, and users get a valid region too.
func TestPartitionCoversSwitches(t *testing.T) {
	g := partitionTestGraph(t, 11)
	for _, k := range []int{1, 2, 4, 8} {
		p, err := PartitionRegions(g, k, 7)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k || len(p.Region) != g.NumNodes() {
			t.Fatalf("k=%d: got K=%d len(region)=%d", k, p.K, len(p.Region))
		}
		counts := make([]int, k)
		for _, sw := range g.Switches() {
			r := p.RegionOf(sw)
			if r < 0 || r >= k {
				t.Fatalf("k=%d: switch %d in region %d", k, sw, r)
			}
			counts[r]++
		}
		total := 0
		for r, c := range counts {
			if c == 0 {
				t.Errorf("k=%d: region %d empty", k, r)
			}
			if got := len(p.Switches(r)); got != c {
				t.Errorf("k=%d: Switches(%d) has %d entries, want %d", k, r, got, c)
			}
			total += c
		}
		if total != len(g.Switches()) {
			t.Fatalf("k=%d: %d switches assigned, want %d", k, total, len(g.Switches()))
		}
		for _, u := range g.Users() {
			if r := p.RegionOf(u); r < 0 || r >= k {
				t.Fatalf("k=%d: user %d in region %d", k, u, r)
			}
		}
	}
}

// The boundary annotation must match an independent recomputation: a switch
// is boundary iff it has a switch neighbor in another region, and CutEdges
// counts each crossing switch-switch fiber once.
func TestPartitionBoundaryCorrect(t *testing.T) {
	g := partitionTestGraph(t, 23)
	for _, k := range []int{1, 2, 4, 8} {
		p, err := PartitionRegions(g, k, 3)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := map[graph.NodeID]bool{}
		cut := 0
		for _, e := range g.Edges() {
			a, b := e.A, e.B
			if g.Node(a).Kind != graph.KindSwitch || g.Node(b).Kind != graph.KindSwitch {
				continue
			}
			if p.RegionOf(a) != p.RegionOf(b) {
				want[a], want[b] = true, true
				cut++
			}
		}
		if cut != p.CutEdges {
			t.Errorf("k=%d: CutEdges=%d, recomputed %d", k, p.CutEdges, cut)
		}
		if len(want) != len(p.Boundary) {
			t.Errorf("k=%d: %d boundary switches annotated, recomputed %d",
				k, len(p.Boundary), len(want))
		}
		for _, sw := range g.Switches() {
			if want[sw] != p.IsBoundary(sw) {
				t.Errorf("k=%d: switch %d boundary=%v, want %v", k, sw, p.IsBoundary(sw), want[sw])
			}
		}
		if k == 1 && (p.CutEdges != 0 || len(p.Boundary) != 0) {
			t.Errorf("k=1 must have no boundary, got cut=%d boundary=%d", p.CutEdges, len(p.Boundary))
		}
	}
}

// A fixed (graph, k, seed) input must always produce the same partition.
func TestPartitionDeterministic(t *testing.T) {
	g := partitionTestGraph(t, 31)
	for _, k := range []int{1, 2, 4, 8} {
		a, err := PartitionRegions(g, k, 42)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for rep := 0; rep < 3; rep++ {
			b, err := PartitionRegions(g.Clone(), k, 42)
			if err != nil {
				t.Fatalf("k=%d rep=%d: %v", k, rep, err)
			}
			if !reflect.DeepEqual(a.Region, b.Region) ||
				!reflect.DeepEqual(a.Boundary, b.Boundary) || a.CutEdges != b.CutEdges {
				t.Fatalf("k=%d rep=%d: partition not deterministic", k, rep)
			}
		}
	}
}

// k disconnected clusters with k regions must partition along the components
// with an empty cut, and users must follow their cluster's switches.
func TestPartitionDisconnectedClusters(t *testing.T) {
	const clusters = 4
	g := disconnectedClusters(t, clusters, 5, 3, 4)
	p, err := PartitionRegions(g, clusters, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.CutEdges != 0 || len(p.Boundary) != 0 {
		t.Fatalf("disconnected clusters must cut nothing: cut=%d boundary=%d",
			p.CutEdges, len(p.Boundary))
	}
	// All switches of one component share a region, and users match their
	// attached switches.
	for _, comp := range g.Components() {
		want := -1
		for _, id := range comp {
			if g.Node(id).Kind != graph.KindSwitch {
				continue
			}
			if want < 0 {
				want = p.RegionOf(id)
			} else if p.RegionOf(id) != want {
				t.Fatalf("component split across regions at node %d", id)
			}
		}
		for _, id := range comp {
			if g.Node(id).Kind == graph.KindUser && p.RegionOf(id) != want {
				t.Fatalf("user %d in region %d, cluster in %d", id, p.RegionOf(id), want)
			}
		}
	}
}

// Users whose switch neighbors span several regions must spread across
// those regions by user-load instead of all following the lowest-ID switch.
func TestPartitionBalancesTiedUsers(t *testing.T) {
	// Two disconnected 3-switch chains force k=2 to cut along the
	// components; every user gets one switch in each chain, so every user's
	// attachment is a tie the balancer must break.
	g := graph.New(0, 0)
	var a, b []graph.NodeID
	for i := 0; i < 3; i++ {
		a = append(a, g.AddSwitch(float64(i), 0, 4))
		b = append(b, g.AddSwitch(float64(i), 100, 4))
	}
	for i := 1; i < 3; i++ {
		g.MustAddEdge(a[i-1], a[i], 100)
		g.MustAddEdge(b[i-1], b[i], 100)
	}
	const users = 6
	for i := 0; i < users; i++ {
		u := g.AddUser(float64(i), 50)
		g.MustAddEdge(u, a[i%3], 100)
		g.MustAddEdge(u, b[i%3], 100)
	}
	p, err := PartitionRegions(g, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for _, u := range g.Users() {
		counts[p.RegionOf(u)]++
	}
	if counts[0] != users/2 || counts[1] != users/2 {
		t.Fatalf("tied users split %v, want an even %d/%d", counts, users/2, users/2)
	}
}

// Rebuild must accept a partition round-tripped through its exported fields
// and reject tampered annotations.
func TestPartitionRebuild(t *testing.T) {
	g := partitionTestGraph(t, 5)
	p, err := PartitionRegions(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := &Partition{K: p.K, Seed: p.Seed, Region: append([]int(nil), p.Region...),
		Boundary: append([]graph.NodeID(nil), p.Boundary...), CutEdges: p.CutEdges}
	if err := q.Rebuild(g); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	for r := 0; r < q.K; r++ {
		if !reflect.DeepEqual(p.Switches(r), q.Switches(r)) {
			t.Fatalf("region %d switch list mismatch after rebuild", r)
		}
	}
	q.CutEdges++
	if err := q.Rebuild(g); err == nil {
		t.Fatal("rebuild accepted a tampered cut count")
	}
}

func TestPartitionBadInputs(t *testing.T) {
	g := partitionTestGraph(t, 2)
	if _, err := PartitionRegions(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionRegions(g, len(g.Switches())+1, 1); err == nil {
		t.Error("k > switches accepted")
	}
}
