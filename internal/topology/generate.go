package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
)

// Generate draws one random quantum network from the configuration using
// the supplied RNG. The same (config, seed) pair always yields the same
// network, which the experiment harness relies on for reproducibility.
func Generate(cfg Config, rng *rand.Rand) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: nil rng")
	}
	g := placeNodes(cfg, rng)
	var err error
	switch cfg.Model {
	case Waxman:
		err = wireWaxman(g, cfg, rng)
	case WattsStrogatz:
		err = wireWattsStrogatz(g, cfg, rng)
	case Volchenkov:
		err = wireVolchenkov(g, cfg, rng)
	case Grid:
		err = wireGrid(g, cfg, rng)
	default:
		err = fmt.Errorf("%w: %d", ErrBadModel, int(cfg.Model))
	}
	if err != nil {
		return nil, err
	}
	if cfg.EnsureConnected {
		repairConnectivity(g)
	}
	return g, nil
}

// placeNodes scatters users and switches uniformly over the area, with the
// two kinds shuffled across node indices so index-structured generators
// (the Watts-Strogatz ring) do not cluster users together.
func placeNodes(cfg Config, rng *rand.Rand) *graph.Graph {
	n := cfg.nodeCount()
	kinds := make([]graph.NodeKind, 0, n)
	for i := 0; i < cfg.Users; i++ {
		kinds = append(kinds, graph.KindUser)
	}
	for i := 0; i < cfg.Switches; i++ {
		kinds = append(kinds, graph.KindSwitch)
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	g := graph.New(n, cfg.targetEdges())
	for i, k := range kinds {
		node := graph.Node{
			Kind: k,
			X:    rng.Float64() * cfg.Area,
			Y:    rng.Float64() * cfg.Area,
		}
		if k == graph.KindSwitch {
			node.Qubits = cfg.SwitchQubits
			node.Label = fmt.Sprintf("s%d", i)
		} else {
			node.Label = fmt.Sprintf("u%d", i)
		}
		g.AddNode(node)
	}
	return g
}

// distance returns the Euclidean distance between two nodes.
func distance(a, b graph.Node) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// pair is an unordered node pair with a sampling weight.
type pair struct {
	a, b   graph.NodeID
	weight float64
}

// allPairs enumerates every unordered node pair with the given weight
// function, skipping pairs weighted <= 0.
func allPairs(g *graph.Graph, weight func(a, b graph.Node) float64) []pair {
	nodes := g.Nodes()
	pairs := make([]pair, 0, len(nodes)*(len(nodes)-1)/2)
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if w := weight(nodes[i], nodes[j]); w > 0 {
				pairs = append(pairs, pair{a: nodes[i].ID, b: nodes[j].ID, weight: w})
			}
		}
	}
	return pairs
}

// sampleEdges draws m distinct pairs without replacement, with probability
// proportional to weight, and adds them as fibers (length = Euclidean
// distance). When fewer than m positive-weight pairs exist it adds them all.
func sampleEdges(g *graph.Graph, pairs []pair, m int, rng *rand.Rand) {
	total := 0.0
	for _, p := range pairs {
		total += p.weight
	}
	live := len(pairs)
	for added := 0; added < m && live > 0 && total > 1e-300; added++ {
		r := rng.Float64() * total
		chosen := -1
		for i, p := range pairs {
			if p.weight <= 0 {
				continue
			}
			r -= p.weight
			if r <= 0 {
				chosen = i
				break
			}
		}
		if chosen < 0 {
			// Floating-point slack at the tail: take the last live pair.
			for i := len(pairs) - 1; i >= 0; i-- {
				if pairs[i].weight > 0 {
					chosen = i
					break
				}
			}
		}
		if chosen < 0 {
			return
		}
		p := pairs[chosen]
		a, b := g.Node(p.a), g.Node(p.b)
		g.MustAddEdge(p.a, p.b, distance(a, b))
		total -= p.weight
		pairs[chosen].weight = 0
		live--
	}
}

// repairConnectivity joins the graph's components with the geometrically
// shortest cross-component fibers until the graph is connected. Repair
// edges are physically plausible (shortest available) and few, so they
// perturb the degree target only marginally.
func repairConnectivity(g *graph.Graph) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		// Join the main (largest) component to its nearest other component.
		main := comps[0]
		for _, c := range comps[1:] {
			if len(c) > len(main) {
				main = c
			}
		}
		inMain := make(map[graph.NodeID]bool, len(main))
		for _, id := range main {
			inMain[id] = true
		}
		bestD := math.Inf(1)
		var bestA, bestB graph.NodeID
		for _, id := range main {
			a := g.Node(id)
			for _, other := range g.Nodes() {
				if inMain[other.ID] || g.HasEdge(id, other.ID) {
					continue
				}
				if d := distance(a, other); d < bestD {
					bestD, bestA, bestB = d, id, other.ID
				}
			}
		}
		if math.IsInf(bestD, 1) {
			return // single-node graph or no candidates; nothing to join
		}
		g.MustAddEdge(bestA, bestB, bestD)
	}
}
