// Package topology generates random quantum-network topologies following
// the paper's simulation setup (§V-A): users and switches placed uniformly
// at random in a 10k x 10k km area and wired by one of three generators —
// Waxman, Watts-Strogatz, or Volchenkov (power-law) — targeted at a given
// average node degree.
package topology

import (
	"errors"
	"fmt"
)

// Model selects the random-network generation method.
type Model int

const (
	// Waxman is the distance-decay random graph of Waxman (1988), the
	// paper's default.
	Waxman Model = iota + 1
	// WattsStrogatz is the small-world rewired ring lattice of Watts &
	// Strogatz (1998).
	WattsStrogatz
	// Volchenkov is the power-law-degree random graph in the style of
	// Volchenkov & Blanchard (2002), realized as a Chung-Lu expected-degree
	// construction with a Zipf weight sequence (see DESIGN.md,
	// substitution 4).
	Volchenkov
	// Grid is a 2D lattice with nodes snapped to grid points and fibers to
	// 4-neighbors; not part of the paper's sweep, provided for the
	// lattice-network scenarios of related work.
	Grid
)

// String returns the generator's conventional name.
func (m Model) String() string {
	switch m {
	case Waxman:
		return "waxman"
	case WattsStrogatz:
		return "watts-strogatz"
	case Volchenkov:
		return "volchenkov"
	case Grid:
		return "grid"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel maps a generator name to its Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "waxman":
		return Waxman, nil
	case "watts-strogatz", "ws":
		return WattsStrogatz, nil
	case "volchenkov", "powerlaw":
		return Volchenkov, nil
	case "grid", "lattice":
		return Grid, nil
	default:
		return 0, fmt.Errorf("topology: unknown model %q", s)
	}
}

// Config parameterizes one topology draw.
type Config struct {
	Model    Model
	Users    int
	Switches int
	// Area is the side of the square placement region in kilometres.
	Area float64
	// AvgDegree is the target average node degree D; the generated edge
	// count is round(D * N / 2). Ignored when ExactEdges > 0.
	AvgDegree float64
	// ExactEdges, when positive, fixes the number of fibers exactly (the
	// Fig. 7b experiment uses 600). Connectivity repair may add a few more.
	ExactEdges int
	// SwitchQubits is the uniform qubit budget Q installed on every switch.
	SwitchQubits int
	// WaxmanAlpha is the Waxman distance-decay scale as a fraction of the
	// maximum pairwise distance; larger values make long fibers likelier.
	WaxmanAlpha float64
	// RewireProb is the Watts-Strogatz rewiring probability beta.
	RewireProb float64
	// PowerLawGamma is the degree-distribution exponent for Volchenkov.
	PowerLawGamma float64
	// EnsureConnected adds shortest repair fibers between components until
	// the graph is connected, so every instance admits at least one
	// entanglement tree when capacity allows.
	EnsureConnected bool
}

// Default returns the paper's §V-A defaults: Waxman, 10 users, 50 switches,
// a 10k x 10k km area, average degree 6, 4 qubits per switch.
func Default() Config {
	return Config{
		Model:           Waxman,
		Users:           10,
		Switches:        50,
		Area:            10_000,
		AvgDegree:       6,
		SwitchQubits:    4,
		WaxmanAlpha:     0.2,
		RewireProb:      0.1,
		PowerLawGamma:   2.5,
		EnsureConnected: true,
	}
}

// Config validation errors.
var (
	ErrBadCounts = errors.New("topology: need at least one user and a non-negative switch count")
	ErrBadArea   = errors.New("topology: area must be positive")
	ErrBadDegree = errors.New("topology: average degree must be positive (or ExactEdges set)")
	ErrBadModel  = errors.New("topology: unknown model")
	ErrBadShape  = errors.New("topology: generator shape parameter out of range")
)

// Validate checks the configuration for structural soundness.
func (c Config) Validate() error {
	if c.Users < 1 || c.Switches < 0 {
		return fmt.Errorf("%w: users=%d switches=%d", ErrBadCounts, c.Users, c.Switches)
	}
	if c.Area <= 0 {
		return fmt.Errorf("%w: %g", ErrBadArea, c.Area)
	}
	if c.AvgDegree <= 0 && c.ExactEdges <= 0 && c.Model != Grid {
		return fmt.Errorf("%w: degree=%g exact=%d", ErrBadDegree, c.AvgDegree, c.ExactEdges)
	}
	switch c.Model {
	case Waxman:
		if c.WaxmanAlpha <= 0 {
			return fmt.Errorf("%w: waxman alpha %g", ErrBadShape, c.WaxmanAlpha)
		}
	case WattsStrogatz:
		if c.RewireProb < 0 || c.RewireProb > 1 {
			return fmt.Errorf("%w: rewire prob %g", ErrBadShape, c.RewireProb)
		}
	case Volchenkov:
		if c.PowerLawGamma <= 1 {
			return fmt.Errorf("%w: power-law gamma %g", ErrBadShape, c.PowerLawGamma)
		}
	case Grid:
		// The lattice has no shape parameters; degree settings are ignored.
	default:
		return fmt.Errorf("%w: %d", ErrBadModel, int(c.Model))
	}
	if c.SwitchQubits < 0 {
		return fmt.Errorf("topology: negative switch qubits %d", c.SwitchQubits)
	}
	return nil
}

// nodeCount returns the total node count N.
func (c Config) nodeCount() int { return c.Users + c.Switches }

// targetEdges returns the number of fibers the generator aims for.
func (c Config) targetEdges() int {
	if c.ExactEdges > 0 {
		return c.ExactEdges
	}
	return int(c.AvgDegree*float64(c.nodeCount())/2 + 0.5)
}
