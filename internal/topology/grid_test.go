package topology

import (
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
)

func TestGridPerfectSquare(t *testing.T) {
	cfg := Default()
	cfg.Model = Grid
	cfg.Users = 4
	cfg.Switches = 12 // 16 nodes = 4x4 lattice
	g, err := Generate(cfg, testRNG(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumNodes() != 16 {
		t.Fatalf("nodes = %d, want 16", g.NumNodes())
	}
	// A 4x4 lattice has 2*4*3 = 24 edges.
	if g.NumEdges() != 24 {
		t.Fatalf("edges = %d, want 24", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("lattice disconnected")
	}
	// Degrees: corners 2, edges 3, interior 4.
	counts := map[int]int{}
	for i := 0; i < g.NumNodes(); i++ {
		counts[g.Degree(graph.NodeID(i))]++
	}
	if counts[2] != 4 || counts[3] != 8 || counts[4] != 4 {
		t.Fatalf("degree histogram = %v, want 4x2, 8x3, 4x4", counts)
	}
}

func TestGridImperfectSquare(t *testing.T) {
	cfg := Default()
	cfg.Model = Grid
	cfg.Users = 3
	cfg.Switches = 8 // 11 nodes on a 4x4 frame (last row partial)
	g, err := Generate(cfg, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 11 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("partial lattice disconnected")
	}
	if len(g.Users()) != 3 || len(g.Switches()) != 8 {
		t.Fatalf("kind counts wrong: %s", g)
	}
}

func TestGridUniformFiberLengths(t *testing.T) {
	cfg := Default()
	cfg.Model = Grid
	cfg.Users = 5
	cfg.Switches = 20
	g, err := Generate(cfg, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i, e := range g.Edges() {
		if i == 0 {
			want = e.Length
			continue
		}
		if e.Length != want {
			t.Fatalf("fiber %d length %g != %g (lattice spacing must be uniform)", i, e.Length, want)
		}
	}
}

func TestGridIgnoresDegreeSettings(t *testing.T) {
	cfg := Default()
	cfg.Model = Grid
	cfg.AvgDegree = 0 // would be invalid for other models
	if err := cfg.Validate(); err != nil {
		t.Fatalf("grid with zero degree rejected: %v", err)
	}
	if _, err := Generate(cfg, testRNG(4)); err != nil {
		t.Fatalf("Generate: %v", err)
	}
}

func TestGridRoutable(t *testing.T) {
	cfg := Default()
	cfg.Model = Grid
	cfg.Users = 6
	cfg.Switches = 30
	g, err := Generate(cfg, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if !g.UsersConnected() {
		t.Fatal("users not connected on lattice")
	}
}
