package topology

import (
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
)

// wireWattsStrogatz wires the graph following Watts & Strogatz (1998):
// start from a ring lattice where every node connects to its K nearest ring
// neighbors (K = round(AvgDegree), forced even and >= 2), then rewire each
// edge's far endpoint with probability RewireProb to a uniform random node,
// avoiding self-loops and duplicates. Ring order is node-index order; since
// placeNodes shuffles kinds and positions are random, the ring carries no
// geometric meaning — fiber lengths are still the Euclidean distances
// between the endpoints, which is what makes rewired "shortcuts" long and
// lossy, the small-world effect the paper's Fig. 5 exposes.
//
// ExactEdges is not supported for this model: the lattice structure fixes
// the edge count at N*K/2.
func wireWattsStrogatz(g *graph.Graph, cfg Config, rng *rand.Rand) error {
	n := g.NumNodes()
	if n < 3 {
		if n == 2 {
			a, b := g.Node(0), g.Node(1)
			g.MustAddEdge(0, 1, distance(a, b))
		}
		return nil
	}
	k := int(cfg.AvgDegree + 0.5)
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	if k > n-1 {
		k = n - 1
		if k%2 == 1 {
			k--
		}
	}

	// Ring lattice: node i connects to i+1 .. i+k/2 (mod n).
	type ringEdge struct{ a, b graph.NodeID }
	var edges []ringEdge
	for i := 0; i < n; i++ {
		for off := 1; off <= k/2; off++ {
			j := (i + off) % n
			edges = append(edges, ringEdge{a: graph.NodeID(i), b: graph.NodeID(j)})
		}
	}

	// Rewire pass. Track adjacency in a set first so rewiring can check
	// duplicates before the graph is materialized.
	adj := make(map[[2]graph.NodeID]bool, len(edges))
	key := func(a, b graph.NodeID) [2]graph.NodeID {
		if a > b {
			a, b = b, a
		}
		return [2]graph.NodeID{a, b}
	}
	for _, e := range edges {
		adj[key(e.a, e.b)] = true
	}
	for i := range edges {
		if rng.Float64() >= cfg.RewireProb {
			continue
		}
		e := edges[i]
		// Try a handful of random targets; keep the original edge if the
		// node is saturated (all non-self targets already linked).
		for attempt := 0; attempt < 32; attempt++ {
			t := graph.NodeID(rng.Intn(n))
			if t == e.a || t == e.b || adj[key(e.a, t)] {
				continue
			}
			delete(adj, key(e.a, e.b))
			adj[key(e.a, t)] = true
			edges[i].b = t
			break
		}
	}

	for _, e := range edges {
		a, b := g.Node(e.a), g.Node(e.b)
		g.MustAddEdge(e.a, e.b, distance(a, b))
	}
	return nil
}
