package benchio

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/muerp/quantumnet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAlgorithm1ChannelSearch 	  294673	      7449 ns/op	    4464 B/op	      58 allocs/op
BenchmarkSolvers/alg2            	   29424	     81643 ns/op	   40472 B/op	     330 allocs/op
BenchmarkFig5Topology 	       2	  17527500 ns/op	 8378352 B/op	   69675 allocs/op
BenchmarkNoMem 	    1000	      1234 ns/op
PASS
ok  	github.com/muerp/quantumnet	16.464s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput), "seed")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Label != "seed" || rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Fatalf("bad header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu not parsed: %q", rep.CPU)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rep.Results), rep.Results)
	}
	first := rep.Results[0]
	if first.Name != "BenchmarkAlgorithm1ChannelSearch" || first.Iterations != 294673 ||
		first.NsPerOp != 7449 || first.BytesPerOp != 4464 || first.AllocsPerOp != 58 {
		t.Fatalf("first result wrong: %+v", first)
	}
	if got := rep.Results[1].Name; got != "BenchmarkSolvers/alg2" {
		t.Fatalf("sub-benchmark name: %q", got)
	}
	noMem := rep.Results[3]
	if noMem.BytesPerOp != -1 || noMem.AllocsPerOp != -1 || noMem.NsPerOp != 1234 {
		t.Fatalf("benchmem-less line wrong: %+v", noMem)
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkFoo\nBenchmarkBar-8   100   5 ns/op\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "BenchmarkBar-8" {
		t.Fatalf("want only BenchmarkBar-8, got %+v", rep.Results)
	}
}

func TestLoadUpsertSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 0 {
		t.Fatalf("missing file should load empty, got %+v", f)
	}
	f.Upsert(Report{Label: "seed", Results: []Result{{Name: "B", Iterations: 1, NsPerOp: 2}}})
	f.Upsert(Report{Label: "current", Results: []Result{{Name: "B", Iterations: 1, NsPerOp: 1}}})
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}

	again, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Runs) != 2 || again.Runs[0].Label != "seed" || again.Runs[1].Label != "current" {
		t.Fatalf("round trip lost runs: %+v", again.Runs)
	}

	// Upserting an existing label replaces in place, preserving order.
	again.Upsert(Report{Label: "current", Results: []Result{{Name: "B", Iterations: 5, NsPerOp: 0.5}}})
	if len(again.Runs) != 2 || again.Runs[1].Results[0].Iterations != 5 {
		t.Fatalf("upsert did not replace: %+v", again.Runs)
	}
}
