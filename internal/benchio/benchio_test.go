package benchio

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/muerp/quantumnet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAlgorithm1ChannelSearch 	  294673	      7449 ns/op	    4464 B/op	      58 allocs/op
BenchmarkSolvers/alg2            	   29424	     81643 ns/op	   40472 B/op	     330 allocs/op
BenchmarkFig5Topology 	       2	  17527500 ns/op	 8378352 B/op	   69675 allocs/op
BenchmarkNoMem 	    1000	      1234 ns/op
PASS
ok  	github.com/muerp/quantumnet	16.464s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput), "seed")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Label != "seed" || rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Fatalf("bad header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu not parsed: %q", rep.CPU)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rep.Results), rep.Results)
	}
	first := rep.Results[0]
	if first.Name != "BenchmarkAlgorithm1ChannelSearch" || first.Iterations != 294673 ||
		first.NsPerOp != 7449 || first.BytesPerOp != 4464 || first.AllocsPerOp != 58 {
		t.Fatalf("first result wrong: %+v", first)
	}
	if got := rep.Results[1].Name; got != "BenchmarkSolvers/alg2" {
		t.Fatalf("sub-benchmark name: %q", got)
	}
	noMem := rep.Results[3]
	if noMem.BytesPerOp != -1 || noMem.AllocsPerOp != -1 || noMem.NsPerOp != 1234 {
		t.Fatalf("benchmem-less line wrong: %+v", noMem)
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkFoo\nBenchmarkBar-8   100   5 ns/op\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "BenchmarkBar-8" {
		t.Fatalf("want only BenchmarkBar-8, got %+v", rep.Results)
	}
}

func TestLoadUpsertSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 0 {
		t.Fatalf("missing file should load empty, got %+v", f)
	}
	f.Upsert(Report{Label: "seed", Results: []Result{{Name: "B", Iterations: 1, NsPerOp: 2}}})
	f.Upsert(Report{Label: "current", Results: []Result{{Name: "B", Iterations: 1, NsPerOp: 1}}})
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}

	again, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Runs) != 2 || again.Runs[0].Label != "seed" || again.Runs[1].Label != "current" {
		t.Fatalf("round trip lost runs: %+v", again.Runs)
	}

	// Upserting an existing label replaces in place, preserving order.
	again.Upsert(Report{Label: "current", Results: []Result{{Name: "B", Iterations: 5, NsPerOp: 0.5}}})
	if len(again.Runs) != 2 || again.Runs[1].Results[0].Iterations != 5 {
		t.Fatalf("upsert did not replace: %+v", again.Runs)
	}
}

func TestCompare(t *testing.T) {
	old := Report{Label: "seed", Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100},
		{Name: "BenchmarkB-8", NsPerOp: 200},
		{Name: "BenchmarkGone-8", NsPerOp: 50},
	}}
	cur := Report{Label: "current", Results: []Result{
		{Name: "BenchmarkB-8", NsPerOp: 250},
		{Name: "BenchmarkA-8", NsPerOp: 90},
		{Name: "BenchmarkNew-8", NsPerOp: 7},
	}}
	deltas := Compare(old, cur)
	if len(deltas) != 2 {
		t.Fatalf("want 2 shared benchmarks, got %+v", deltas)
	}
	// Old-run order, only shared names.
	if deltas[0].Name != "BenchmarkA-8" || deltas[1].Name != "BenchmarkB-8" {
		t.Fatalf("wrong pairing order: %+v", deltas)
	}
	if deltas[0].Regressed(0.15) {
		t.Errorf("A sped up 100->90 but flagged as regressed")
	}
	if !deltas[1].Regressed(0.15) {
		t.Errorf("B slowed 200->250 (+25%%) but passed the 15%% gate")
	}
	if deltas[1].Regressed(0.30) {
		t.Errorf("B +25%% should pass a 30%% gate")
	}
}

func TestCompareDuplicateAndBadValues(t *testing.T) {
	old := Report{Results: []Result{
		{Name: "BenchmarkDup-8", NsPerOp: 10},
		{Name: "BenchmarkDup-8", NsPerOp: 99},
		{Name: "BenchmarkZero-8", NsPerOp: 0},
	}}
	cur := Report{Results: []Result{
		{Name: "BenchmarkDup-8", NsPerOp: 10},
		{Name: "BenchmarkZero-8", NsPerOp: 5},
	}}
	deltas := Compare(old, cur)
	if len(deltas) != 2 {
		t.Fatalf("want dup collapsed to one delta + zero entry, got %+v", deltas)
	}
	if deltas[0].OldNs != 10 {
		t.Errorf("duplicate name should keep first occurrence, got OldNs=%v", deltas[0].OldNs)
	}
	// A zero baseline must read as a regression, never an improvement.
	if !deltas[1].Regressed(0.15) || !math.IsInf(deltas[1].Ratio(), 1) {
		t.Errorf("zero-baseline delta = %+v; want +Inf ratio, regressed", deltas[1])
	}
}

func TestComparePairsAcrossProcSuffixes(t *testing.T) {
	old := Report{Results: []Result{{Name: "BenchmarkA/sub", NsPerOp: 100}}}
	cur := Report{Results: []Result{{Name: "BenchmarkA/sub-8", NsPerOp: 90}}}
	deltas := Compare(old, cur)
	if len(deltas) != 1 || deltas[0].NewNs != 90 {
		t.Fatalf("suffix-insensitive pairing failed: %+v", deltas)
	}
	// A digits-only final path element is not a procs suffix victim: the
	// whole name minus suffix must still be distinct names.
	if got := baseName("BenchmarkA/sub-8"); got != "BenchmarkA/sub" {
		t.Errorf("baseName = %q", got)
	}
	if got := baseName("BenchmarkA"); got != "BenchmarkA" {
		t.Errorf("baseName without suffix = %q", got)
	}
	if got := baseName("BenchmarkA-x8"); got != "BenchmarkA-x8" {
		t.Errorf("baseName with non-numeric suffix = %q", got)
	}
}

func TestCompareCarriesAllocColumns(t *testing.T) {
	old := Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 4},
	}}
	cur := Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100, BytesPerOp: 128, AllocsPerOp: 3},
	}}
	deltas := Compare(old, cur)
	if len(deltas) != 1 {
		t.Fatalf("want 1 delta, got %+v", deltas)
	}
	d := deltas[0]
	if d.OldBytes != 64 || d.NewBytes != 128 || d.OldAllocs != 4 || d.NewAllocs != 3 {
		t.Fatalf("alloc columns not carried: %+v", d)
	}
	if d.BytesRatio() != 2 || d.AllocsRatio() != 0.75 {
		t.Fatalf("ratios = %v / %v, want 2 / 0.75", d.BytesRatio(), d.AllocsRatio())
	}
}

func TestAllocRegressed(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
		want bool
	}{
		{"bytes blowup", Delta{OldBytes: 100, NewBytes: 200, OldAllocs: 4, NewAllocs: 4}, true},
		{"allocs blowup", Delta{OldBytes: 100, NewBytes: 100, OldAllocs: 4, NewAllocs: 6}, true},
		{"within threshold", Delta{OldBytes: 100, NewBytes: 110, OldAllocs: 4, NewAllocs: 4}, false},
		{"improvement", Delta{OldBytes: 100, NewBytes: 50, OldAllocs: 4, NewAllocs: 1}, false},
		// A previously allocation-free benchmark that now allocates is a
		// regression no threshold forgives.
		{"zero to some", Delta{OldBytes: 0, NewBytes: 8, OldAllocs: 0, NewAllocs: 1}, true},
		{"zero to zero", Delta{OldBytes: 0, NewBytes: 0, OldAllocs: 0, NewAllocs: 0}, false},
		// -1 marks a side recorded without -benchmem: the gate stays unarmed.
		{"no old benchmem", Delta{OldBytes: -1, NewBytes: 999, OldAllocs: -1, NewAllocs: 999}, false},
		{"no new benchmem", Delta{OldBytes: 100, NewBytes: -1, OldAllocs: 4, NewAllocs: -1}, false},
	}
	for _, tc := range cases {
		if got := tc.d.AllocRegressed(0.15); got != tc.want {
			t.Errorf("%s: AllocRegressed = %v, want %v (%+v)", tc.name, got, tc.want, tc.d)
		}
	}
	// The alloc gate must not touch the ns/op verdict.
	d := Delta{OldNs: 100, NewNs: 100, OldBytes: 100, NewBytes: 500, OldAllocs: 1, NewAllocs: 9}
	if d.Regressed(0.15) {
		t.Error("ns/op gate fired on an alloc-only regression")
	}
	if !d.AllocRegressed(0.15) {
		t.Error("alloc gate missed a 5x bytes regression")
	}
}
