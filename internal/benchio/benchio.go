// Package benchio parses `go test -bench` text output into structured
// records and maintains BENCH_kernel.json, the repo's committed
// benchmark-results file. The file holds labeled runs (e.g. "seed" for the
// pre-optimization baseline and "current" for the tree as committed) so
// perf changes ship with their own before/after evidence; `benchstat`
// remains the tool of choice for statistically sound comparisons of raw
// bench output, this file is the committed summary.
package benchio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iteration count, and the per-op
// metrics emitted under -benchmem. BytesPerOp/AllocsPerOp are -1 when the
// line carried no -benchmem columns.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is one labeled benchmark run: the environment header `go test`
// prints plus every benchmark line parsed from the output.
type Report struct {
	Label   string   `json:"label"`
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// File is the BENCH_kernel.json document: an append-only list of runs.
type File struct {
	Runs []Report `json:"runs"`
}

// Parse reads `go test -bench` output and returns the environment header
// plus one Result per benchmark line. Non-benchmark lines (PASS, ok,
// test log output) are skipped.
func Parse(r io.Reader, label string) (Report, error) {
	rep := Report{Label: label}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return Report{}, err
			}
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// parseLine decodes one benchmark result line of the form
//
//	BenchmarkName-8   1000  1234 ns/op  56 B/op  7 allocs/op
//
// ok is false for Benchmark* lines that are not result lines (e.g. the
// bare name `go test -v` prints before running one).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[2] != "ns/op" && !isMetric(fields) {
		return Result{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil // "BenchmarkX" alone or malformed: skip
	}
	res := Result{Name: fields[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// Metrics come as value/unit pairs after the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false, fmt.Errorf("benchio: bad ns/op in %q: %w", line, err)
			}
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false, fmt.Errorf("benchio: bad B/op in %q: %w", line, err)
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false, fmt.Errorf("benchio: bad allocs/op in %q: %w", line, err)
			}
		}
	}
	return res, true, nil
}

// isMetric reports whether the fields after the iteration count look like
// value/unit metric pairs.
func isMetric(fields []string) bool {
	for _, f := range fields[2:] {
		if strings.HasSuffix(f, "/op") {
			return true
		}
	}
	return false
}

// Load reads a BENCH file; a missing file is an empty one.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return File{}, nil
	}
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("benchio: %s: %w", path, err)
	}
	return f, nil
}

// Upsert replaces the run with rep's label, or appends it when the label
// is new, so regenerating "current" does not grow the file unboundedly.
func (f *File) Upsert(rep Report) {
	for i := range f.Runs {
		if f.Runs[i].Label == rep.Label {
			f.Runs[i] = rep
			return
		}
	}
	f.Runs = append(f.Runs, rep)
}

// Delta is one benchmark present in both of two compared runs, with its
// ns/op and allocation columns before and after. The allocation columns
// carry -1 when that side was recorded without -benchmem; comparisons that
// involve a -1 side never gate.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	OldBytes  int64
	NewBytes  int64
	OldAllocs int64
	NewAllocs int64
}

// Ratio is NewNs/OldNs: >1 means the benchmark got slower. A zero or
// negative old value (malformed input) yields +Inf so it is never silently
// treated as an improvement.
func (d Delta) Ratio() float64 {
	if d.OldNs <= 0 {
		return math.Inf(1)
	}
	return d.NewNs / d.OldNs
}

// Regressed reports whether the benchmark slowed down by more than the
// given fraction (0.15 = fail on >15% slower).
func (d Delta) Regressed(threshold float64) bool {
	return d.Ratio() > 1+threshold
}

// allocRatio compares one allocation column pair: NaN when either side
// lacks -benchmem data, +Inf when a previously allocation-free benchmark
// now allocates (old 0 with new > 0 is always a report-worthy regression).
func allocRatio(old, new int64) float64 {
	if old < 0 || new < 0 {
		return math.NaN()
	}
	if old == 0 {
		if new == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(new) / float64(old)
}

// BytesRatio is NewBytes/OldBytes (see allocRatio for the -1/0 edges).
func (d Delta) BytesRatio() float64 { return allocRatio(d.OldBytes, d.NewBytes) }

// AllocsRatio is NewAllocs/OldAllocs (see allocRatio for the -1/0 edges).
func (d Delta) AllocsRatio() float64 { return allocRatio(d.OldAllocs, d.NewAllocs) }

// AllocRegressed reports whether bytes/op or allocs/op grew by more than
// the given fraction. Benchmarks without -benchmem data on either side
// (column -1) never regress — the gate only arms once a baseline with
// allocation counts is committed.
func (d Delta) AllocRegressed(threshold float64) bool {
	if r := d.BytesRatio(); !math.IsNaN(r) && r > 1+threshold {
		return true
	}
	if r := d.AllocsRatio(); !math.IsNaN(r) && r > 1+threshold {
		return true
	}
	return false
}

// Compare pairs benchmarks by name across two runs and returns a Delta for
// every name present in both, in the old run's order. Names are matched
// with the `-N` GOMAXPROCS suffix stripped, so a baseline recorded on one
// core count still pairs with a run from another machine. Benchmarks only
// one side has are ignored: a renamed or newly added bench is not a
// regression. Duplicate names keep the first occurrence on each side.
func Compare(old, new Report) []Delta {
	newRes := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		if _, dup := newRes[baseName(r.Name)]; !dup {
			newRes[baseName(r.Name)] = r
		}
	}
	var deltas []Delta
	seen := make(map[string]bool, len(old.Results))
	for _, r := range old.Results {
		key := baseName(r.Name)
		nr, shared := newRes[key]
		if !shared || seen[key] {
			continue
		}
		seen[key] = true
		deltas = append(deltas, Delta{
			Name:      r.Name,
			OldNs:     r.NsPerOp,
			NewNs:     nr.NsPerOp,
			OldBytes:  r.BytesPerOp,
			NewBytes:  nr.BytesPerOp,
			OldAllocs: r.AllocsPerOp,
			NewAllocs: nr.AllocsPerOp,
		})
	}
	return deltas
}

// baseName strips the trailing -N procs suffix `go test -bench` appends
// ("BenchmarkX/sub-8" -> "BenchmarkX/sub").
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Save writes the file as indented JSON with a trailing newline.
func (f File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
