package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/quantum"
)

func TestSolveConflictFreeOrderedDescendingMatchesPaper(t *testing.T) {
	g := bottleneckNet(t, 2)
	p := mustProblem(t, g, quantum.DefaultParams())
	paper, err := SolveConflictFree(p)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := SolveConflictFreeOrdered(p, ReplayDescending, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rateClose(paper.Rate(), ordered.Rate()) {
		t.Fatalf("descending ablation rate %g != paper alg3 rate %g", ordered.Rate(), paper.Rate())
	}
}

func TestSolveConflictFreeOrderedAllVariantsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 15; i++ {
		g := randomNet(rng, 3+rng.Intn(3), 3+rng.Intn(4), 2+2*rng.Intn(2))
		p := mustProblem(t, g, quantum.DefaultParams())
		for _, order := range []ReplayOrder{ReplayDescending, ReplayAscending, ReplayRandom} {
			sol, err := SolveConflictFreeOrdered(p, order, rng)
			if err != nil {
				if errors.Is(err, ErrInfeasible) {
					continue
				}
				t.Fatalf("net %d order %s: %v", i, order, err)
			}
			if err := p.Validate(sol); err != nil {
				t.Fatalf("net %d order %s: invalid: %v", i, order, err)
			}
		}
	}
}

func TestSolveConflictFreeOrderedUnknownOrder(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	if _, err := SolveConflictFreeOrdered(p, ReplayOrder(42), nil); err == nil {
		t.Fatal("unknown order accepted")
	}
}

func TestReplayOrderString(t *testing.T) {
	tests := map[ReplayOrder]string{
		ReplayDescending: "descending",
		ReplayAscending:  "ascending",
		ReplayRandom:     "random",
		ReplayOrder(9):   "ReplayOrder(9)",
	}
	for order, want := range tests {
		if got := order.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(order), got, want)
		}
	}
}

func TestSolvePrimBestOfAllStartsDominatesAnyStart(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		g := randomNet(rng, 3+rng.Intn(3), 3+rng.Intn(4), 2+2*rng.Intn(2))
		p := mustProblem(t, g, quantum.DefaultParams())
		best, err := SolvePrimBestOfAllStarts(p)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			t.Fatal(err)
		}
		if err := p.Validate(best); err != nil {
			t.Fatalf("net %d: invalid: %v", i, err)
		}
		for start := range p.Users {
			sol, err := solvePrimFrom(context.Background(), p, start, nil)
			if err != nil {
				continue
			}
			if sol.Rate() > best.Rate()*(1+1e-9) {
				t.Fatalf("net %d: start %d rate %g beats best-of-starts %g",
					i, start, sol.Rate(), best.Rate())
			}
		}
	}
}

func TestSolvePrimBestOfAllStartsInfeasible(t *testing.T) {
	g := bottleneckNet(t, 2)
	g.SetQubits(3, 0)
	g.SetQubits(4, 0)
	p := mustProblem(t, g, quantum.DefaultParams())
	if _, err := SolvePrimBestOfAllStarts(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}
