package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/quantum"
)

// sameTree reports whether two solutions describe bitwise-identical trees.
func sameTree(a, b *Solution) bool {
	if len(a.Tree.Channels) != len(b.Tree.Channels) {
		return false
	}
	for k := range a.Tree.Channels {
		ca, cb := a.Tree.Channels[k], b.Tree.Channels[k]
		if math.Float64bits(ca.Rate) != math.Float64bits(cb.Rate) || len(ca.Nodes) != len(cb.Nodes) {
			return false
		}
		for i := range ca.Nodes {
			if ca.Nodes[i] != cb.Nodes[i] {
				return false
			}
		}
	}
	return true
}

// TestPrimSeedStreamAdvances pins the Prim(seed) randomness semantics: the
// Solver owns ONE rand stream, and each Solve call draws its starting user
// from that stream, so successive solves explore successive starts. (The
// regressed behavior re-seeded a fresh stream inside every Solve call, which
// made each call pick the identical "random" start.)
func TestPrimSeedStreamAdvances(t *testing.T) {
	const seed = 99
	const calls = 8

	// Find a tight-capacity instance where Algorithm 4 is feasible from
	// every start AND the starts the reference stream will draw do not all
	// yield the same tree — otherwise the test could not tell a stuck
	// stream from an advancing one.
	gen := rand.New(rand.NewSource(17))
	var p *Problem
	var fromStart []*Solution
search:
	for trial := 0; trial < 200; trial++ {
		g := randomNet(gen, 6, 12, 2)
		cand := mustProblem(t, g, quantum.DefaultParams())
		sols := make([]*Solution, len(cand.Users))
		for i := range cand.Users {
			sol, err := solvePrimFrom(nil, cand, i, nil)
			if err != nil {
				continue search
			}
			sols[i] = sol
		}
		ref := rand.New(rand.NewSource(seed))
		first := ref.Intn(len(cand.Users))
		for c := 1; c < calls; c++ {
			if draw := ref.Intn(len(cand.Users)); !sameTree(sols[draw], sols[first]) {
				p, fromStart = cand, sols
				break search
			}
		}
	}
	if p == nil {
		t.Fatal("no discriminating instance found; adjust the generator seed")
	}

	// Each Solve call must reproduce solvePrimFrom at the NEXT start the
	// reference stream draws — byte-identical trees, call after call.
	solver := Prim(seed)
	ref := rand.New(rand.NewSource(seed))
	advanced := false
	first := -1
	for c := 0; c < calls; c++ {
		want := ref.Intn(len(p.Users))
		if c == 0 {
			first = want
		} else if !sameTree(fromStart[want], fromStart[first]) {
			advanced = true
		}
		got, err := solver.Solve(context.Background(), p, nil)
		if err != nil {
			t.Fatalf("call %d: %v", c, err)
		}
		if !sameTree(fromStart[want], got) {
			t.Fatalf("call %d: tree does not match start %d from the shared stream", c, want)
		}
	}
	if !advanced {
		t.Fatal("reference draws never left the first start; instance search is broken")
	}

	// An explicit SolveOptions.RNG must take precedence over the stream.
	got, err := solver.Solve(context.Background(), p, &SolveOptions{RNG: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	if want := fromStart[rand.New(rand.NewSource(seed)).Intn(len(p.Users))]; !sameTree(want, got) {
		t.Fatal("explicit SolveOptions.RNG did not override the solver's own stream")
	}
}
