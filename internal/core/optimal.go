package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// This file implements the paper's Algorithm 2: the optimal algorithm under
// the sufficient-capacity condition Q_r >= 2|U|.
//
// Step 1 finds, for every user pair, the maximum-entanglement-rate channel
// (one single-source Algorithm-1 run per user, the optimization the paper's
// complexity analysis describes). Step 2 selects channels in descending
// rate order, Kruskal-style, joining users with a union-find until one
// union spans U. Theorem 3 proves the result optimal when every switch has
// at least 2|U| qubits.

// candidate pairs a channel with the user-set indices of its endpoints.
type candidate struct {
	ch     quantum.Channel
	ia, ib int // indices into Problem.Users
}

// allPairsChannels returns the max-rate channel for every user pair that is
// connected under the static capacity rule, as Algorithm 2 step 1. The
// single-source searches are independent by construction, so they fan out
// across the machine; see allPairsChannelsParallel for the determinism
// argument. A cancelled ctx aborts between single-source bursts.
func (p *Problem) allPairsChannels(ctx context.Context, st *SolveStats) ([]candidate, error) {
	return p.allPairsChannelsParallel(ctx, runtime.GOMAXPROCS(0), st)
}

// allPairsChannelsParallel runs Algorithm 2 step 1 on up to workers
// goroutines. Each user's single-source search writes only its own slot of
// perSrc and searches on its own pooled scratch, and slots are merged in
// ascending user order afterwards — so the candidate list (order, channels,
// rates, bit-for-bit) is identical for every worker count, including the
// sequential workers <= 1 path. Cancellation is checked before every
// single-source burst; a cancelled ctx returns ctx.Err.
func (p *Problem) allPairsChannelsParallel(ctx context.Context, workers int, st *SolveStats) ([]candidate, error) {
	n := len(p.Users)
	perSrc := make([][]candidate, n)
	collect := func(sc *searchCtx, i int) {
		sp := p.channelSearch(sc, p.Users[i], nil, st)
		var out []candidate
		for j := i + 1; j < n; j++ {
			if ch, ok := p.channelFromSearch(sc, sp, p.Users[j], st); ok {
				out = append(out, candidate{ch: ch, ia: i, ib: j})
			}
		}
		perSrc[i] = out
	}

	// The last user is only ever a destination (j > i), so n-1 sources.
	if workers > n-1 {
		workers = n - 1
	}
	if workers <= 1 {
		sc := p.acquireCtx(st)
		for i := 0; i < n-1; i++ {
			if err := ctxErr(ctx); err != nil {
				p.releaseCtx(sc)
				return nil, err
			}
			collect(sc, i)
		}
		p.releaseCtx(sc)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sc := p.acquireCtx(st)
				defer p.releaseCtx(sc)
				for {
					if ctxErr(ctx) != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n-1 {
						return
					}
					collect(sc, i)
				}
			}()
		}
		wg.Wait()
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
	}

	total := 0
	for _, out := range perSrc {
		total += len(out)
	}
	cands := make([]candidate, 0, total)
	for _, out := range perSrc {
		cands = append(cands, out...)
	}
	return cands, nil
}

// sortByRateDesc orders candidates by descending entanglement rate, with a
// deterministic endpoint-index tiebreak so runs are reproducible.
func sortByRateDesc(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ch.Rate != cands[j].ch.Rate {
			return cands[i].ch.Rate > cands[j].ch.Rate
		}
		if cands[i].ia != cands[j].ia {
			return cands[i].ia < cands[j].ia
		}
		return cands[i].ib < cands[j].ib
	})
}

// SolveOptimal runs Algorithm 2 with background context and no options; see
// SolveOptimalContext for the full contract.
func SolveOptimal(p *Problem) (*Solution, error) {
	return SolveOptimalContext(context.Background(), p, nil)
}

// SolveOptimalContext implements Algorithm 2 under the SolveFunc contract.
// Under the sufficient condition Q_r >= 2|U| for all switches
// (Problem.SufficientCapacity) the result is the optimal MUERP solution
// (Theorem 3) and always respects capacity.
//
// Without the condition the returned tree maximizes each pairwise channel
// independently but may overload switches; Algorithm 3
// (SolveConflictFreeContext) exists precisely to repair that. The only hard
// failure mode is users that cannot be connected at all, reported as
// ErrInfeasible.
func SolveOptimalContext(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error) {
	st := opts.StatsSink()
	cands, err := p.allPairsChannels(ctx, st)
	if err != nil {
		return nil, fmt.Errorf("algorithm 2: %w", err)
	}
	sortByRateDesc(cands)

	uf := unionfind.New(len(p.Users))
	tree := quantum.Tree{}
	for _, c := range cands {
		if uf.Connected(c.ia, c.ib) {
			continue
		}
		uf.Union(c.ia, c.ib)
		tree.Channels = append(tree.Channels, c.ch)
		st.AddCommitted(1)
		if uf.Sets() == 1 {
			break
		}
	}
	if uf.Sets() != 1 {
		return nil, fmt.Errorf("%w: users span %d disconnected groups (algorithm 2)", ErrInfeasible, uf.Sets())
	}
	return &Solution{Tree: tree, Algorithm: "alg2", MeasurementFactor: 1}, nil
}
