package core

import (
	"fmt"
	"sort"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// This file implements the paper's Algorithm 2: the optimal algorithm under
// the sufficient-capacity condition Q_r >= 2|U|.
//
// Step 1 finds, for every user pair, the maximum-entanglement-rate channel
// (one single-source Algorithm-1 run per user, the optimization the paper's
// complexity analysis describes). Step 2 selects channels in descending
// rate order, Kruskal-style, joining users with a union-find until one
// union spans U. Theorem 3 proves the result optimal when every switch has
// at least 2|U| qubits.

// candidate pairs a channel with the user-set indices of its endpoints.
type candidate struct {
	ch     quantum.Channel
	ia, ib int // indices into Problem.Users
}

// allPairsChannels returns the max-rate channel for every user pair that is
// connected under the static capacity rule, as Algorithm 2 step 1.
func (p *Problem) allPairsChannels() []candidate {
	idx := make(map[graph.NodeID]int, len(p.Users))
	for i, u := range p.Users {
		idx[u] = i
	}
	var cands []candidate
	for i, src := range p.Users {
		sp := p.channelSearch(src, nil)
		for j := i + 1; j < len(p.Users); j++ {
			dst := p.Users[j]
			if ch, ok := p.channelFromSearch(sp, dst); ok {
				cands = append(cands, candidate{ch: ch, ia: idx[src], ib: idx[dst]})
			}
		}
	}
	return cands
}

// sortByRateDesc orders candidates by descending entanglement rate, with a
// deterministic endpoint-index tiebreak so runs are reproducible.
func sortByRateDesc(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ch.Rate != cands[j].ch.Rate {
			return cands[i].ch.Rate > cands[j].ch.Rate
		}
		if cands[i].ia != cands[j].ia {
			return cands[i].ia < cands[j].ia
		}
		return cands[i].ib < cands[j].ib
	})
}

// SolveOptimal implements Algorithm 2. Under the sufficient condition
// Q_r >= 2|U| for all switches (Problem.SufficientCapacity) the result is
// the optimal MUERP solution (Theorem 3) and always respects capacity.
//
// Without the condition the returned tree maximizes each pairwise channel
// independently but may overload switches; Algorithm 3 (SolveConflictFree)
// exists precisely to repair that. The only hard failure mode is users that
// cannot be connected at all, reported as ErrInfeasible.
func SolveOptimal(p *Problem) (*Solution, error) {
	cands := p.allPairsChannels()
	sortByRateDesc(cands)

	uf := unionfind.New(len(p.Users))
	tree := quantum.Tree{}
	for _, c := range cands {
		if uf.Connected(c.ia, c.ib) {
			continue
		}
		uf.Union(c.ia, c.ib)
		tree.Channels = append(tree.Channels, c.ch)
		if uf.Sets() == 1 {
			break
		}
	}
	if uf.Sets() != 1 {
		return nil, fmt.Errorf("%w: users span %d disconnected groups (algorithm 2)", ErrInfeasible, uf.Sets())
	}
	return &Solution{Tree: tree, Algorithm: "alg2", MeasurementFactor: 1}, nil
}
