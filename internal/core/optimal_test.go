package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// fourUserNet builds a connected net of 4 users and 3 well-provisioned
// switches.
func fourUserNet(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(7, 10)
	g.AddUser(0, 0)        // u0
	g.AddUser(100, 0)      // u1
	g.AddUser(0, 100)      // u2
	g.AddUser(100, 100)    // u3
	g.AddSwitch(50, 0, 16) // s4
	g.AddSwitch(0, 50, 16) // s5
	g.AddSwitch(50, 50, 16)
	g.MustAddEdge(0, 4, 500)
	g.MustAddEdge(4, 1, 500)
	g.MustAddEdge(0, 5, 600)
	g.MustAddEdge(5, 2, 600)
	g.MustAddEdge(1, 6, 700)
	g.MustAddEdge(6, 3, 700)
	g.MustAddEdge(2, 6, 800)
	return g
}

func TestSolveOptimalBasic(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	sol, err := SolveOptimal(p)
	if err != nil {
		t.Fatalf("SolveOptimal: %v", err)
	}
	if got := len(sol.Tree.Channels); got != len(p.Users)-1 {
		t.Fatalf("tree has %d channels, want %d", got, len(p.Users)-1)
	}
	if err := p.Validate(sol); err != nil {
		t.Fatalf("solution invalid: %v", err)
	}
	if sol.Algorithm != "alg2" {
		t.Errorf("Algorithm = %q, want alg2", sol.Algorithm)
	}
	if sol.Rate() <= 0 || sol.Rate() > 1 {
		t.Errorf("Rate = %g outside (0,1]", sol.Rate())
	}
}

func TestSolveOptimalInfeasibleWhenDisconnected(t *testing.T) {
	g := graph.New(3, 1)
	g.AddUser(0, 0)
	g.AddUser(1, 0)
	g.AddUser(50, 50) // unreachable
	g.MustAddEdge(0, 1, 100)
	p := mustProblem(t, g, quantum.DefaultParams())
	_, err := SolveOptimal(p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestSolveOptimalSingleUser(t *testing.T) {
	g := graph.New(1, 0)
	g.AddUser(0, 0)
	p := mustProblem(t, g, quantum.DefaultParams())
	sol, err := SolveOptimal(p)
	if err != nil {
		t.Fatalf("SolveOptimal single user: %v", err)
	}
	if len(sol.Tree.Channels) != 0 || sol.Rate() != 1 {
		t.Fatalf("single-user solution = %d channels rate %g, want empty rate 1", len(sol.Tree.Channels), sol.Rate())
	}
}

func TestSolveOptimalTwoUsersPicksBestChannel(t *testing.T) {
	g := graph.New(3, 3)
	g.AddUser(0, 0)
	g.AddSwitch(1, 0, 8)
	g.AddUser(2, 0)
	g.MustAddEdge(0, 1, 1000)
	g.MustAddEdge(1, 2, 1000)
	g.MustAddEdge(0, 2, 20000)
	p := mustProblem(t, g, quantum.DefaultParams())
	sol, err := SolveOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := p.MaxRateChannel(0, 2, nil, nil)
	if !ok {
		t.Fatal("no channel")
	}
	if !rateClose(sol.Rate(), want.Rate) {
		t.Fatalf("two-user tree rate %g != best channel rate %g", sol.Rate(), want.Rate)
	}
}

// TestQuickOptimalMatchesBruteForce verifies Theorem 3: under the
// sufficient condition Q >= 2|U|, Algorithm 2's rate equals the exhaustive
// optimum over all capacity-feasible entanglement trees.
func TestQuickOptimalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		users := 2 + rng.Intn(2) // 2-3 users keeps brute force tractable
		switches := 1 + rng.Intn(3)
		g := randomNet(rng, users, switches, 2*users) // sufficient capacity
		params := quantum.Params{Alpha: 1e-4, SwapProb: 0.5 + rng.Float64()*0.5}
		p, err := AllUsersProblem(g, params)
		if err != nil {
			t.Log(err)
			return false
		}
		if !p.SufficientCapacity() {
			t.Log("fixture violates the sufficient condition")
			return false
		}
		sol, err := SolveOptimal(p)
		want, feasible := bruteForceOptimal(t, p)
		if err != nil {
			if errors.Is(err, ErrInfeasible) && !feasible {
				return true
			}
			t.Logf("seed %d: SolveOptimal error %v (brute feasible=%v)", seed, err, feasible)
			return false
		}
		if !feasible {
			t.Logf("seed %d: algorithm found a tree where brute force found none", seed)
			return false
		}
		if err := p.Validate(sol); err != nil {
			t.Logf("seed %d: invalid solution: %v", seed, err)
			return false
		}
		if !rateClose(sol.Rate(), want) {
			t.Logf("seed %d: rate %g, brute-force optimum %g", seed, sol.Rate(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOptimalAlwaysValid: on any connected random net (even without
// sufficient capacity the tree structure must be sound; capacity may be
// violated, which Validate would flag, so validate against a boosted copy).
func TestQuickOptimalAlwaysValidStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomNet(rng, 2+rng.Intn(4), 2+rng.Intn(6), 2)
		p, err := AllUsersProblem(g, quantum.DefaultParams())
		if err != nil {
			return false
		}
		sol, err := SolveOptimal(p)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		boosted := g.Clone()
		boosted.SetAllSwitchQubits(2 * len(p.Users))
		bp, err := AllUsersProblem(boosted, quantum.DefaultParams())
		if err != nil {
			return false
		}
		return bp.Validate(sol) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
