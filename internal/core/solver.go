package core

import "math/rand"

// Solver is anything that can route a MUERP instance. The paper's three
// algorithms and the two comparison baselines all implement it, which lets
// the simulation harness, the benchmarks and the public facade treat them
// uniformly.
type Solver interface {
	// Name is a short stable identifier ("alg2", "alg3", ...), used as the
	// column key in experiment output.
	Name() string
	// Solve routes the problem. It returns ErrInfeasible (wrapped) when no
	// entanglement tree exists under the problem's constraints; the
	// evaluation scores that outcome as rate 0, per the paper's setup.
	Solve(p *Problem) (*Solution, error)
}

// SolverFunc adapts a function to the Solver interface.
type SolverFunc struct {
	ID string
	Fn func(*Problem) (*Solution, error)
}

// Name implements Solver.
func (s SolverFunc) Name() string { return s.ID }

// Solve implements Solver.
func (s SolverFunc) Solve(p *Problem) (*Solution, error) { return s.Fn(p) }

// Optimal returns Algorithm 2 as a Solver.
func Optimal() Solver {
	return SolverFunc{ID: "alg2", Fn: SolveOptimal}
}

// ConflictFree returns Algorithm 3 as a Solver.
func ConflictFree() Solver {
	return SolverFunc{ID: "alg3", Fn: SolveConflictFree}
}

// Prim returns Algorithm 4 as a Solver. A non-zero seed picks the random
// starting user from that seed per Solve call; seed 0 starts deterministically
// from the first user.
func Prim(seed int64) Solver {
	return SolverFunc{ID: "alg4", Fn: func(p *Problem) (*Solution, error) {
		if seed == 0 {
			return SolvePrim(p, nil)
		}
		return SolvePrim(p, rand.New(rand.NewSource(seed)))
	}}
}
