package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
)

// This file defines the repo's single solve contract. Every routing scheme —
// the paper's Algorithms 2-4, the evaluation baselines, the ablation
// variants and the exact branch-and-bound — is exposed as a SolveFunc and
// dispatched through the internal/solver registry. The contract carries a
// context (long solves are abortable) and per-solve options: an explicit
// randomness stream and an optional work-counter sink.

// SolveOptions carries the per-solve inputs that are not part of the
// Problem itself. A nil *SolveOptions is valid and means "no randomness, no
// stats collection"; the accessors below are nil-safe.
type SolveOptions struct {
	// RNG drives the solver's stochastic choices (Algorithm 4's random
	// starting user, the random replay-order ablation). nil means the solver
	// makes its deterministic default choice instead.
	RNG *rand.Rand
	// Stats, when non-nil, accumulates the solve's work counters. Read it
	// after Solve returns; solvers that fan searches out across goroutines
	// update it atomically.
	Stats *SolveStats
}

// Rand returns the options' randomness stream, nil-safe.
func (o *SolveOptions) Rand() *rand.Rand {
	if o == nil {
		return nil
	}
	return o.RNG
}

// StatsSink returns the options' stats collector, nil-safe (nil = discard).
func (o *SolveOptions) StatsSink() *SolveStats {
	if o == nil {
		return nil
	}
	return o.Stats
}

// SolveStats counts the work one solve performed, threaded through the
// kernel layers: the Dijkstra engine, the per-problem search-context pool,
// the candidate-channel extraction and the capacity ledger. All Add methods
// are nil-safe (a nil receiver discards) and atomic, because solvers may
// fan searches out across goroutines; read the fields only after the solve
// returns, or through Snapshot.
type SolveStats struct {
	// DijkstraRuns counts single-source channel searches.
	DijkstraRuns int64 `json:"dijkstra_runs"`
	// EdgesRelaxed counts successful distance improvements across all runs.
	EdgesRelaxed int64 `json:"edges_relaxed"`
	// PoolHits / PoolMisses count search-context checkouts served from the
	// per-problem pool vs. freshly allocated.
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
	// ChannelsConsidered counts candidate channels extracted from searches;
	// ChannelsCommitted counts the ones that made the final tree.
	ChannelsConsidered int64 `json:"channels_considered"`
	ChannelsCommitted  int64 `json:"channels_committed"`
	// LedgerReservations counts successful qubit reservations (including
	// ones later rolled back by backtracking solvers).
	LedgerReservations int64 `json:"ledger_reservations"`
	// CacheHits counts candidates the incremental cross-union/frontier
	// search committed straight from its cache — popped, revalidated against
	// the ledger's closure epoch, and found still optimal with no re-search.
	CacheHits int64 `json:"cache_hits"`
	// CacheInvalidations counts popped candidates that had gone stale (an
	// endpoint union merged or an interior switch closed) and forced a
	// single-source re-search of just that candidate's source.
	CacheInvalidations int64 `json:"cache_invalidations"`
	// SearchesSaved counts the single-source Dijkstra runs the incremental
	// layer avoided relative to the exhaustive per-round sweep the solvers
	// used to do (exhaustive-equivalent runs minus runs actually performed).
	SearchesSaved int64 `json:"searches_saved"`
}

// AddSearch records one Dijkstra run that relaxed n edges.
func (s *SolveStats) AddSearch(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.DijkstraRuns, 1)
	atomic.AddInt64(&s.EdgesRelaxed, n)
}

// AddPool records one search-context checkout.
func (s *SolveStats) AddPool(hit bool) {
	if s == nil {
		return
	}
	if hit {
		atomic.AddInt64(&s.PoolHits, 1)
	} else {
		atomic.AddInt64(&s.PoolMisses, 1)
	}
}

// AddConsidered records n extracted candidate channels.
func (s *SolveStats) AddConsidered(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.ChannelsConsidered, n)
}

// AddCommitted records n channels committed to the final tree.
func (s *SolveStats) AddCommitted(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.ChannelsCommitted, n)
}

// AddReservations records n successful ledger reservations.
func (s *SolveStats) AddReservations(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.LedgerReservations, n)
}

// AddCacheHit records one cached candidate committed without a re-search.
func (s *SolveStats) AddCacheHit() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.CacheHits, 1)
}

// AddCacheInvalidation records one stale cached candidate that forced a
// single-source re-search.
func (s *SolveStats) AddCacheInvalidation() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.CacheInvalidations, 1)
}

// AddSearchesSaved records n single-source searches avoided relative to the
// exhaustive sweep.
func (s *SolveStats) AddSearchesSaved(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.SearchesSaved, n)
}

// Merge adds o's counters into s (nil-safe on both sides). Unlike the Add
// methods it is not atomic: merge only after the contributing solves are
// done.
func (s *SolveStats) Merge(o *SolveStats) {
	if s == nil || o == nil {
		return
	}
	s.DijkstraRuns += o.DijkstraRuns
	s.EdgesRelaxed += o.EdgesRelaxed
	s.PoolHits += o.PoolHits
	s.PoolMisses += o.PoolMisses
	s.ChannelsConsidered += o.ChannelsConsidered
	s.ChannelsCommitted += o.ChannelsCommitted
	s.LedgerReservations += o.LedgerReservations
	s.CacheHits += o.CacheHits
	s.CacheInvalidations += o.CacheInvalidations
	s.SearchesSaved += o.SearchesSaved
}

// Snapshot returns a consistent copy using atomic loads, safe to call while
// a solve is still running.
func (s *SolveStats) Snapshot() SolveStats {
	if s == nil {
		return SolveStats{}
	}
	return SolveStats{
		DijkstraRuns:       atomic.LoadInt64(&s.DijkstraRuns),
		EdgesRelaxed:       atomic.LoadInt64(&s.EdgesRelaxed),
		PoolHits:           atomic.LoadInt64(&s.PoolHits),
		PoolMisses:         atomic.LoadInt64(&s.PoolMisses),
		ChannelsConsidered: atomic.LoadInt64(&s.ChannelsConsidered),
		ChannelsCommitted:  atomic.LoadInt64(&s.ChannelsCommitted),
		LedgerReservations: atomic.LoadInt64(&s.LedgerReservations),
		CacheHits:          atomic.LoadInt64(&s.CacheHits),
		CacheInvalidations: atomic.LoadInt64(&s.CacheInvalidations),
		SearchesSaved:      atomic.LoadInt64(&s.SearchesSaved),
	}
}

// String renders the counters in the compact form the CLIs print.
func (s SolveStats) String() string {
	return fmt.Sprintf("dijkstra=%d relaxed=%d pool=%d/%d channels=%d/%d reservations=%d cache=%d/%d saved=%d",
		s.DijkstraRuns, s.EdgesRelaxed, s.PoolHits, s.PoolMisses,
		s.ChannelsConsidered, s.ChannelsCommitted, s.LedgerReservations,
		s.CacheHits, s.CacheInvalidations, s.SearchesSaved)
}

// ctxErr reports whether the solve should abort: a non-nil error is the
// context's cancellation cause. A nil context never cancels (convenience
// for legacy entry points).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// SolveFunc is the single solve contract every routing scheme implements:
// route p, honoring ctx cancellation (checked inside the channel-search
// burst loops, so long solves abort within one search round) and the
// per-solve options. It returns ErrInfeasible (wrapped) when no
// entanglement tree exists under the problem's constraints.
type SolveFunc func(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error)

// Solver is anything that can route a MUERP instance under the SolveFunc
// contract. The simulation harness, the benchmarks, the distributed runtime
// and the public facade all treat routing schemes uniformly through it.
type Solver interface {
	// Name is a short stable identifier ("alg2", "alg3", ...), used as the
	// column key in experiment output and as the registry key.
	Name() string
	// Solve routes the problem; see SolveFunc for the contract.
	Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error)
}

// SolverFunc adapts a SolveFunc to the Solver interface.
type SolverFunc struct {
	ID string
	Fn SolveFunc
}

// Name implements Solver.
func (s SolverFunc) Name() string { return s.ID }

// Solve implements Solver.
func (s SolverFunc) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error) {
	return s.Fn(ctx, p, opts)
}

// Optimal returns Algorithm 2 as a Solver.
func Optimal() Solver {
	return SolverFunc{ID: "alg2", Fn: SolveOptimalContext}
}

// ConflictFree returns Algorithm 3 as a Solver.
func ConflictFree() Solver {
	return SolverFunc{ID: "alg3", Fn: SolveConflictFreeContext}
}

// Prim returns Algorithm 4 as a Solver. Seed semantics:
//
//   - seed == 0: every Solve call starts deterministically from the first
//     user (unless the call's SolveOptions carries an RNG).
//   - seed != 0: the Solver owns ONE rand stream seeded with seed, and each
//     Solve call draws its starting user from that stream — successive
//     solves of the same Solver explore different starts. (It used to
//     re-seed a fresh stream per call, which made every solve pick the
//     identical "random" start; TestPrimSeedStreamAdvances pins the fixed
//     behavior.) A stream-owning Solver is stateful and must not be used
//     from concurrent goroutines.
//
// An explicit SolveOptions.RNG always takes precedence over the stream.
func Prim(seed int64) Solver {
	var stream *rand.Rand
	if seed != 0 {
		stream = rand.New(rand.NewSource(seed))
	}
	return SolverFunc{ID: "alg4", Fn: func(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error) {
		if opts.Rand() == nil && stream != nil {
			opts = &SolveOptions{RNG: stream, Stats: opts.StatsSink()}
		}
		return SolvePrimContext(ctx, p, opts)
	}}
}
