// Package core implements the paper's primary contribution: the Multi-user
// Entanglement Routing Problem (MUERP) and its routing algorithms —
// Algorithm 1 (maximum-entanglement-rate channel), Algorithm 2 (optimal
// under sufficient switch capacity), Algorithm 3 (conflict-free heuristic)
// and Algorithm 4 (Prim-based heuristic).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// Problem is one MUERP instance: a quantum network, the set of users to
// entangle, and the physical parameters that define link and swap rates.
//
// A Problem also owns the search engine its algorithms run on: the
// Algorithm 1 edge weights (alpha*L - ln q) precomputed once per instance,
// and a pool of reusable Dijkstra scratch buffers shared by every search
// the instance performs (see channel.go). Both are built lazily on first
// search, so a zero-extra-field construction stays valid; the graph's
// topology and edge lengths must not change after the first search.
type Problem struct {
	Graph  *graph.Graph
	Users  []graph.NodeID
	Params quantum.Params

	engineOnce  sync.Once
	edgeWeights []float64 // weight of edge e under the Algorithm 1 metric
	searchers   sync.Pool // of *searchCtx, one per concurrently searching goroutine
}

// Problem construction and solving errors.
var (
	ErrNoUsers    = errors.New("core: a problem needs at least one user")
	ErrNotAUser   = errors.New("core: user set entry is not a user node")
	ErrDupUser    = errors.New("core: duplicate user in user set")
	ErrInfeasible = errors.New("core: no feasible entanglement tree exists")
)

// NewProblem validates and builds a MUERP instance. The user slice is
// copied; callers keep ownership of theirs.
func NewProblem(g *graph.Graph, users []graph.NodeID, p quantum.Params) (*Problem, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(users) == 0 {
		return nil, ErrNoUsers
	}
	seen := make(map[graph.NodeID]bool, len(users))
	for _, u := range users {
		if !g.HasNode(u) || g.Node(u).Kind != graph.KindUser {
			return nil, fmt.Errorf("%w: node %d", ErrNotAUser, u)
		}
		if seen[u] {
			return nil, fmt.Errorf("%w: node %d", ErrDupUser, u)
		}
		seen[u] = true
	}
	us := make([]graph.NodeID, len(users))
	copy(us, users)
	return &Problem{Graph: g, Users: us, Params: p}, nil
}

// AllUsersProblem builds a problem over every user node in the graph, the
// configuration used throughout the paper's evaluation.
func AllUsersProblem(g *graph.Graph, p quantum.Params) (*Problem, error) {
	return NewProblem(g, g.Users(), p)
}

// SufficientCapacity reports whether every switch satisfies the paper's
// sufficient condition Q_r >= 2|U| (Theorem 3), under which Algorithm 2 is
// optimal and a feasible solution is guaranteed to exist whenever the users
// are connected at all.
func (p *Problem) SufficientCapacity() bool {
	need := 2 * len(p.Users)
	for _, id := range p.Graph.Switches() {
		if p.Graph.Node(id).Qubits < need {
			return false
		}
	}
	return true
}

// Solution is a routed entanglement tree plus metadata about how it was
// obtained.
type Solution struct {
	// Tree is the set of committed quantum channels spanning the users.
	Tree quantum.Tree
	// Algorithm names the solver that produced the tree ("alg2", "alg3",
	// "alg4", "eqcast", "nfusion").
	Algorithm string
	// MeasurementFactor scales the tree rate for schemes whose terminal
	// measurement differs from pure pairwise BSM swapping. It is 1 for the
	// paper's algorithms; the N-FUSION baseline uses it for its GHZ fusion
	// success probability.
	MeasurementFactor float64
}

// Rate returns the solution's multi-user entanglement rate: the Eq. 2 tree
// value scaled by the measurement factor.
func (s *Solution) Rate() float64 {
	f := s.MeasurementFactor
	if f == 0 {
		f = 1
	}
	return s.Tree.Rate() * f
}

// LogRate returns ln(Rate()), stable against underflow.
func (s *Solution) LogRate() float64 {
	f := s.MeasurementFactor
	if f == 0 {
		f = 1
	}
	return s.Tree.LogRate() + math.Log(f)
}

// Validate checks the solution against the problem's graph, user set,
// capacities and rate model.
func (p *Problem) Validate(s *Solution) error {
	if s == nil {
		return errors.New("core: nil solution")
	}
	return quantum.ValidateTree(p.Graph, p.Users, s.Tree, p.Params)
}
