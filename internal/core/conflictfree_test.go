package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// bottleneckNet builds a net where all three users' best channels cross one
// central switch that can only carry limitChannels of them; a longer detour
// switch exists for the overflow.
//
//	u0 --1000-- c --1000-- u1
//	            |
//	u2 --------1000
//	u0 --4000-- d --4000-- u1   (detour, worse rate)
//	u2 --4000-- d
func bottleneckNet(t *testing.T, centralQubits int) *graph.Graph {
	t.Helper()
	g := graph.New(5, 9)
	g.AddUser(0, 0)                  // u0
	g.AddUser(2, 0)                  // u1
	g.AddUser(1, 2)                  // u2
	g.AddSwitch(1, 0, centralQubits) // c = 3
	g.AddSwitch(1, -2, 16)           // d = 4
	for _, u := range []graph.NodeID{0, 1, 2} {
		g.MustAddEdge(u, 3, 1000)
		g.MustAddEdge(u, 4, 4000)
	}
	return g
}

func TestSolveConflictFreeNoConflicts(t *testing.T) {
	g := bottleneckNet(t, 16)
	p := mustProblem(t, g, quantum.DefaultParams())
	opt, err := SolveOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := SolveConflictFree(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(cf); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !rateClose(opt.Rate(), cf.Rate()) {
		t.Fatalf("with ample capacity alg3 rate %g != alg2 rate %g", cf.Rate(), opt.Rate())
	}
	if cf.Algorithm != "alg3" {
		t.Errorf("Algorithm = %q, want alg3", cf.Algorithm)
	}
}

func TestSolveConflictFreeResolvesConflict(t *testing.T) {
	// Central switch carries only one channel; the second tree edge must
	// take the detour through switch d.
	g := bottleneckNet(t, 2)
	p := mustProblem(t, g, quantum.DefaultParams())
	sol, err := SolveConflictFree(p)
	if err != nil {
		t.Fatalf("SolveConflictFree: %v", err)
	}
	if err := p.Validate(sol); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	usedDetour := false
	for _, ch := range sol.Tree.Channels {
		for _, s := range ch.Interior() {
			if s == 4 {
				usedDetour = true
			}
		}
	}
	if !usedDetour {
		t.Fatalf("expected the overflow channel to reroute via the detour switch; tree: %v", sol.Tree.Channels)
	}
	// And it must be worse than the unconstrained optimum.
	opt, err := SolveOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rate() >= opt.Rate() {
		t.Fatalf("constrained rate %g not below unconstrained %g", sol.Rate(), opt.Rate())
	}
}

func TestSolveConflictFreeInfeasible(t *testing.T) {
	// Only the central switch exists and it can carry one channel: three
	// users cannot be spanned.
	g := graph.New(4, 3)
	g.AddUser(0, 0)
	g.AddUser(2, 0)
	g.AddUser(1, 2)
	g.AddSwitch(1, 0, 2)
	for _, u := range []graph.NodeID{0, 1, 2} {
		g.MustAddEdge(u, 3, 1000)
	}
	p := mustProblem(t, g, quantum.DefaultParams())
	_, err := SolveConflictFree(p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestSolveConflictFreeFigure4aCapacity(t *testing.T) {
	// The paper's Fig. 4 example: switch with 2 qubits cannot entangle
	// three users through itself alone, but with 4 qubits it can.
	build := func(qubits int) *graph.Graph {
		g := graph.New(4, 3)
		g.AddUser(0, 0)
		g.AddUser(2, 0)
		g.AddUser(1, 2)
		g.AddSwitch(1, 1, qubits)
		for _, u := range []graph.NodeID{0, 1, 2} {
			g.MustAddEdge(u, 3, 1000)
		}
		return g
	}
	pOK := mustProblem(t, build(4), quantum.DefaultParams())
	if _, err := SolveConflictFree(pOK); err != nil {
		t.Fatalf("4-qubit switch should suffice: %v", err)
	}
	pBad := mustProblem(t, build(2), quantum.DefaultParams())
	if _, err := SolveConflictFree(pBad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("2-qubit switch error = %v, want ErrInfeasible", err)
	}
}

// TestQuickConflictFreeValidAndCapacityRespecting: every alg3 success on
// random capacity-limited nets validates (spanning, loop-free, within
// capacity); rate never exceeds the sufficient-capacity optimum.
func TestQuickConflictFreeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomNet(rng, 2+rng.Intn(4), 2+rng.Intn(5), 2+2*rng.Intn(2))
		p, err := AllUsersProblem(g, quantum.DefaultParams())
		if err != nil {
			return false
		}
		sol, err := SolveConflictFree(p)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if p.Validate(sol) != nil {
			t.Logf("seed %d: invalid solution", seed)
			return false
		}
		// Compare against the unconstrained optimum on a boosted copy.
		boosted := g.Clone()
		boosted.SetAllSwitchQubits(2 * len(p.Users))
		bp, _ := AllUsersProblem(boosted, quantum.DefaultParams())
		opt, err := SolveOptimal(bp)
		if err != nil {
			t.Logf("seed %d: boosted optimal failed: %v", seed, err)
			return false
		}
		if sol.Rate() > opt.Rate()*(1+1e-9) {
			t.Logf("seed %d: alg3 rate %g exceeds optimal %g", seed, sol.Rate(), opt.Rate())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
