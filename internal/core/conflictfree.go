package core

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// This file implements the paper's Algorithm 3, the conflict-free heuristic
// for limited switch capacity.
//
// Phase 1 replays Algorithm 2's tree in descending rate order against a live
// qubit ledger, keeping every channel that still fits and skipping the rest
// (the greedy "retain the channel with the maximum entanglement rate" rule).
// Phase 2 reconnects the unions the skipped channels left behind: each round
// it searches, under residual capacity, the maximum-rate channel joining two
// different unions and commits it, until one union spans U or no channel
// exists (infeasible).

// SolveConflictFree implements Algorithm 3. It internally obtains
// Algorithm 2's solution as its starting point, as in the paper.
func SolveConflictFree(p *Problem) (*Solution, error) {
	base, err := SolveOptimal(p)
	if err != nil {
		return nil, fmt.Errorf("algorithm 3: %w", err)
	}
	return solveConflictFreeFrom(p, base)
}

func solveConflictFreeFrom(p *Problem, base *Solution) (*Solution, error) {
	idx := make(map[graph.NodeID]int, len(p.Users))
	for i, u := range p.Users {
		idx[u] = i
	}

	// Phase 1: replay the Algorithm 2 tree under the capacity ledger.
	cands := make([]candidate, 0, len(base.Tree.Channels))
	for _, ch := range base.Tree.Channels {
		a, b := ch.Endpoints()
		cands = append(cands, candidate{ch: ch, ia: idx[a], ib: idx[b]})
	}
	sortByRateDesc(cands)

	led := quantum.NewLedger(p.Graph)
	uf := unionfind.New(len(p.Users))
	tree := quantum.Tree{}
	for _, c := range cands {
		if uf.Connected(c.ia, c.ib) {
			continue
		}
		if !led.CanCarry(c.ch.Nodes) {
			continue // conflict: the users stay in different unions for now
		}
		if err := led.Reserve(c.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after CanCarry: %v", err))
		}
		uf.Union(c.ia, c.ib)
		tree.Channels = append(tree.Channels, c.ch)
	}

	// Phase 2: greedily reconnect the remaining unions under residual
	// capacity.
	if err := p.connectUnions(led, uf, &tree, "algorithm 3"); err != nil {
		return nil, err
	}
	return &Solution{Tree: tree, Algorithm: "alg3", MeasurementFactor: 1}, nil
}

// ReconnectUnions exposes Algorithm 3's phase-2 loop to callers that seed
// the user unions and capacity ledger themselves — notably tree repair
// after fiber failures, which keeps surviving channels and reconnects the
// rest. uf must partition indices of p.Users; tree and led must reflect
// the already-committed channels.
func (p *Problem) ReconnectUnions(led *quantum.Ledger, uf *unionfind.UnionFind, tree *quantum.Tree) error {
	return p.connectUnions(led, uf, tree, "reconnect")
}

// connectUnions repeatedly commits the maximum-rate channel joining two
// different user unions until one union remains. It mutates led, uf and
// tree in place and reports ErrInfeasible when users stay separated.
// Both Algorithm 3 (phase 2) and Algorithm 4 reduce to this loop; they
// differ only in how the unions were seeded.
func (p *Problem) connectUnions(led *quantum.Ledger, uf *unionfind.UnionFind, tree *quantum.Tree, who string) error {
	for uf.Sets() > 1 {
		best, ok := p.bestCrossUnionChannel(led, uf)
		if !ok {
			return fmt.Errorf("%w: %d user groups cannot be joined under switch capacity (%s)",
				ErrInfeasible, uf.Sets(), who)
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after capacity-gated search: %v", err))
		}
		uf.Union(best.ia, best.ib)
		tree.Channels = append(tree.Channels, best.ch)
	}
	return nil
}

// bestCrossUnionChannel searches, under the ledger's residual capacity, the
// maximum-rate channel whose endpoints lie in different unions. One
// single-source Algorithm-1 run per user, as in the paper's complexity
// analysis. Ties are broken by user-set index for determinism.
func (p *Problem) bestCrossUnionChannel(led *quantum.Ledger, uf *unionfind.UnionFind) (candidate, bool) {
	sc := p.acquireCtx()
	defer p.releaseCtx(sc)
	var best candidate
	found := false
	for i, src := range p.Users {
		sp := p.channelSearch(sc, src, led)
		for j := i + 1; j < len(p.Users); j++ {
			if uf.Connected(i, j) {
				continue
			}
			ch, ok := p.channelFromSearch(sc, sp, p.Users[j])
			if !ok {
				continue
			}
			if !found || ch.Rate > best.ch.Rate {
				best = candidate{ch: ch, ia: i, ib: j}
				found = true
			}
		}
	}
	return best, found
}
