package core

import (
	"context"
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// This file implements the paper's Algorithm 3, the conflict-free heuristic
// for limited switch capacity.
//
// Phase 1 replays Algorithm 2's tree in descending rate order against a live
// qubit ledger, keeping every channel that still fits and skipping the rest
// (the greedy "retain the channel with the maximum entanglement rate" rule).
// Phase 2 reconnects the unions the skipped channels left behind: each round
// it searches, under residual capacity, the maximum-rate channel joining two
// different unions and commits it, until one union spans U or no channel
// exists (infeasible).

// SolveConflictFree runs Algorithm 3 with background context and no options;
// see SolveConflictFreeContext for the full contract.
func SolveConflictFree(p *Problem) (*Solution, error) {
	return SolveConflictFreeContext(context.Background(), p, nil)
}

// SolveConflictFreeContext implements Algorithm 3 under the SolveFunc
// contract. It internally obtains Algorithm 2's solution as its starting
// point, as in the paper.
func SolveConflictFreeContext(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error) {
	base, err := SolveOptimalContext(ctx, p, opts)
	if err != nil {
		return nil, fmt.Errorf("algorithm 3: %w", err)
	}
	return solveConflictFreeFrom(ctx, p, base, opts.StatsSink())
}

func solveConflictFreeFrom(ctx context.Context, p *Problem, base *Solution, st *SolveStats) (*Solution, error) {
	idx := make(map[graph.NodeID]int, len(p.Users))
	for i, u := range p.Users {
		idx[u] = i
	}

	// Phase 1: replay the Algorithm 2 tree under the capacity ledger.
	cands := make([]candidate, 0, len(base.Tree.Channels))
	for _, ch := range base.Tree.Channels {
		a, b := ch.Endpoints()
		cands = append(cands, candidate{ch: ch, ia: idx[a], ib: idx[b]})
	}
	sortByRateDesc(cands)

	led := quantum.NewLedger(p.Graph)
	uf := unionfind.New(len(p.Users))
	tree := quantum.Tree{}
	for _, c := range cands {
		if uf.Connected(c.ia, c.ib) {
			continue
		}
		if !led.CanCarry(c.ch.Nodes) {
			continue // conflict: the users stay in different unions for now
		}
		if err := led.Reserve(c.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after CanCarry: %v", err))
		}
		st.AddReservations(1)
		uf.Union(c.ia, c.ib)
		tree.Channels = append(tree.Channels, c.ch)
		st.AddCommitted(1)
	}

	// Phase 2: greedily reconnect the remaining unions under residual
	// capacity.
	if err := p.connectUnions(ctx, led, uf, &tree, "algorithm 3", st); err != nil {
		return nil, err
	}
	return &Solution{Tree: tree, Algorithm: "alg3", MeasurementFactor: 1}, nil
}

// ReconnectUnions exposes Algorithm 3's phase-2 loop to callers that seed
// the user unions and capacity ledger themselves — notably tree repair
// after fiber failures, which keeps surviving channels and reconnects the
// rest. uf must partition indices of p.Users; tree and led must reflect
// the already-committed channels. A nil ctx never cancels; st (nil =
// discard) collects the search work.
func (p *Problem) ReconnectUnions(ctx context.Context, led *quantum.Ledger, uf *unionfind.UnionFind, tree *quantum.Tree, st *SolveStats) error {
	return p.connectUnions(ctx, led, uf, tree, "reconnect", st)
}

// connectUnions repeatedly commits the maximum-rate channel joining two
// different user unions until one union remains. It mutates led, uf and
// tree in place and reports ErrInfeasible when users stay separated.
// Both Algorithm 3 (phase 2) and Algorithm 4 reduce to this loop; they
// differ only in how the unions were seeded.
//
// The search is incremental (see incremental.go): the first round seeds a
// per-source candidate cache, and later rounds pop lazily instead of
// re-sweeping every user, which is why alg3/alg4 no longer cost |U|
// Dijkstra runs per committed channel. The committed tree is bit-identical
// to the exhaustive sweep's (bestCrossUnionChannelExhaustive), which
// TestConnectUnionsLazyMatchesExhaustive checks on randomized networks.
func (p *Problem) connectUnions(ctx context.Context, led *quantum.Ledger, uf *unionfind.UnionFind, tree *quantum.Tree, who string, st *SolveStats) error {
	if uf.Sets() <= 1 {
		return nil
	}
	cache, err := p.newCandCache(ctx, led, crossUnionTargets{uf: uf}, st)
	if err != nil {
		return fmt.Errorf("%s: %w", who, err)
	}
	rounds := int64(0)
	for uf.Sets() > 1 {
		best, ok, err := cache.best(ctx, st)
		if err != nil {
			return fmt.Errorf("%s: %w", who, err)
		}
		if !ok {
			return fmt.Errorf("%w: %d user groups cannot be joined under switch capacity (%s)",
				ErrInfeasible, uf.Sets(), who)
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after capacity-gated search: %v", err))
		}
		st.AddReservations(1)
		uf.Union(best.ia, best.ib)
		tree.Channels = append(tree.Channels, best.ch)
		st.AddCommitted(1)
		rounds++
		if uf.Sets() > 1 {
			// Committing consumed the winning source's entry; re-seed it with
			// that source's next-best candidate under the merged unions.
			if err := cache.add(ctx, best.ia, st); err != nil {
				return fmt.Errorf("%s: %w", who, err)
			}
		}
	}
	// The exhaustive sweep would have run len(Users) single-source searches
	// per committed channel.
	st.AddSearchesSaved(rounds*int64(len(p.Users)) - cache.searches)
	return nil
}

// bestCrossUnionChannelExhaustive searches, under the ledger's residual
// capacity, the maximum-rate channel whose endpoints lie in different
// unions, with one single-source Algorithm-1 run per user as in the paper's
// complexity analysis; ctx is checked before each single-source burst. Ties
// are broken by user-set index for determinism.
//
// It is the reference the lazy cache must agree with candidate-for-candidate
// and is kept for the differential tests; production loops go through
// candCache instead.
func (p *Problem) bestCrossUnionChannelExhaustive(ctx context.Context, led *quantum.Ledger, uf *unionfind.UnionFind, st *SolveStats) (candidate, bool, error) {
	sc := p.acquireCtx(st)
	defer p.releaseCtx(sc)
	var best candidate
	found := false
	for i, src := range p.Users {
		if err := ctxErr(ctx); err != nil {
			return candidate{}, false, err
		}
		sp := p.channelSearch(sc, src, led, st)
		for j := i + 1; j < len(p.Users); j++ {
			if uf.Connected(i, j) {
				continue
			}
			ch, ok := p.channelFromSearch(sc, sp, p.Users[j], st)
			if !ok {
				continue
			}
			if !found || ch.Rate > best.ch.Rate {
				best = candidate{ch: ch, ia: i, ib: j}
				found = true
			}
		}
	}
	return best, found, nil
}

// connectUnionsExhaustive is connectUnions driven by the exhaustive
// per-round sweep, the pre-incremental behavior retained as the oracle for
// the lazy-vs-exhaustive differential tests.
func (p *Problem) connectUnionsExhaustive(ctx context.Context, led *quantum.Ledger, uf *unionfind.UnionFind, tree *quantum.Tree, who string, st *SolveStats) error {
	for uf.Sets() > 1 {
		best, ok, err := p.bestCrossUnionChannelExhaustive(ctx, led, uf, st)
		if err != nil {
			return fmt.Errorf("%s: %w", who, err)
		}
		if !ok {
			return fmt.Errorf("%w: %d user groups cannot be joined under switch capacity (%s)",
				ErrInfeasible, uf.Sets(), who)
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after capacity-gated search: %v", err))
		}
		st.AddReservations(1)
		uf.Union(best.ia, best.ib)
		tree.Channels = append(tree.Channels, best.ch)
		st.AddCommitted(1)
	}
	return nil
}
