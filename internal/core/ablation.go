package core

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// This file provides ablation variants of Algorithm 3's design choices, so
// the benchmark harness can quantify how much each choice is worth. They
// are not part of the paper's algorithms; SolveConflictFree remains the
// faithful implementation.

// ReplayOrder selects the order in which Algorithm 3's phase 1 replays the
// Algorithm 2 tree against the capacity ledger.
type ReplayOrder int

const (
	// ReplayDescending is the paper's greedy choice: retain the channels
	// with the maximum entanglement rate first.
	ReplayDescending ReplayOrder = iota + 1
	// ReplayAscending retains the worst channels first (an adversarial
	// ablation of the greedy rule).
	ReplayAscending
	// ReplayRandom replays in random order.
	ReplayRandom
)

// String returns the order's name.
func (o ReplayOrder) String() string {
	switch o {
	case ReplayDescending:
		return "descending"
	case ReplayAscending:
		return "ascending"
	case ReplayRandom:
		return "random"
	default:
		return fmt.Sprintf("ReplayOrder(%d)", int(o))
	}
}

// SolveConflictFreeOrdered is Algorithm 3 with a configurable phase-1 replay
// order, background context; see SolveConflictFreeOrderedContext.
func SolveConflictFreeOrdered(p *Problem, order ReplayOrder, rng *rand.Rand) (*Solution, error) {
	return SolveConflictFreeOrderedContext(context.Background(), p, order, &SolveOptions{RNG: rng})
}

// SolveConflictFreeOrderedContext is Algorithm 3 with a configurable phase-1
// replay order under the SolveFunc contract (opts.RNG is only used by
// ReplayRandom; nil falls back to a fixed permutation seed). With
// ReplayDescending it is exactly SolveConflictFreeContext.
func SolveConflictFreeOrderedContext(ctx context.Context, p *Problem, order ReplayOrder, opts *SolveOptions) (*Solution, error) {
	st := opts.StatsSink()
	base, err := SolveOptimalContext(ctx, p, opts)
	if err != nil {
		return nil, fmt.Errorf("algorithm 3 (%s ablation): %w", order, err)
	}

	idx := make(map[graph.NodeID]int, len(p.Users))
	for i, u := range p.Users {
		idx[u] = i
	}
	cands := make([]candidate, 0, len(base.Tree.Channels))
	for _, ch := range base.Tree.Channels {
		a, b := ch.Endpoints()
		cands = append(cands, candidate{ch: ch, ia: idx[a], ib: idx[b]})
	}
	switch order {
	case ReplayDescending:
		sortByRateDesc(cands)
	case ReplayAscending:
		sortByRateDesc(cands)
		for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
			cands[i], cands[j] = cands[j], cands[i]
		}
	case ReplayRandom:
		rng := opts.Rand()
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		// Sort first so the shuffle is deterministic per rng state.
		sortByRateDesc(cands)
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	default:
		return nil, fmt.Errorf("core: unknown replay order %d", int(order))
	}

	led := quantum.NewLedger(p.Graph)
	uf := unionfind.New(len(p.Users))
	tree := quantum.Tree{}
	for _, c := range cands {
		if uf.Connected(c.ia, c.ib) || !led.CanCarry(c.ch.Nodes) {
			continue
		}
		if err := led.Reserve(c.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after CanCarry: %v", err))
		}
		st.AddReservations(1)
		uf.Union(c.ia, c.ib)
		tree.Channels = append(tree.Channels, c.ch)
		st.AddCommitted(1)
	}
	if err := p.connectUnions(ctx, led, uf, &tree, fmt.Sprintf("algorithm 3, %s replay", order), st); err != nil {
		return nil, err
	}
	return &Solution{Tree: tree, Algorithm: "alg3-" + order.String(), MeasurementFactor: 1}, nil
}

// SolvePrimBestOfAllStarts runs Algorithm 4 once per possible starting user
// and keeps the best tree, background context; see
// SolvePrimBestOfAllStartsContext.
func SolvePrimBestOfAllStarts(p *Problem) (*Solution, error) {
	return SolvePrimBestOfAllStartsContext(context.Background(), p, nil)
}

// SolvePrimBestOfAllStartsContext runs Algorithm 4 once per possible
// starting user and keeps the best tree — the natural upper bound on what
// the random start can achieve, used to measure how much Algorithm 4 leaves
// on the table by starting randomly.
func SolvePrimBestOfAllStartsContext(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error) {
	st := opts.StatsSink()
	var best *Solution
	var firstErr error
	for start := range p.Users {
		sol, err := solvePrimFrom(ctx, p, start, st)
		if err != nil {
			if ctxErr(ctx) != nil {
				return nil, err
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || sol.Rate() > best.Rate() {
			best = sol
		}
	}
	if best == nil {
		return nil, firstErr
	}
	best.Algorithm = "alg4-beststart"
	return best, nil
}
