package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

func TestBuildGreedyTreeMatchesPrim(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		g := randomNet(rng, 3+rng.Intn(3), 3+rng.Intn(4), 4)
		p := mustProblem(t, g, quantum.DefaultParams())
		led := quantum.NewLedger(g)
		tree, err := BuildGreedyTree(context.Background(), p, led, nil)
		prim, primErr := solvePrimFrom(context.Background(), p, 0, nil)
		if (err == nil) != (primErr == nil) {
			t.Fatalf("net %d: BuildGreedyTree err=%v, prim err=%v", i, err, primErr)
		}
		if err != nil {
			continue
		}
		if !rateClose(tree.Rate(), prim.Tree.Rate()) {
			t.Fatalf("net %d: rate %g != prim-from-0 rate %g", i, tree.Rate(), prim.Tree.Rate())
		}
		// Reservations remain charged: used qubits == tree load.
		want := 0
		for _, q := range tree.QubitLoad() {
			want += q
		}
		if got := led.UsedQubits(); got != want {
			t.Fatalf("net %d: ledger holds %d qubits, tree loads %d", i, got, want)
		}
		// ReleaseTree restores the ledger exactly.
		ReleaseTree(led, tree)
		if got := led.UsedQubits(); got != 0 {
			t.Fatalf("net %d: %d qubits leaked after release", i, got)
		}
	}
}

func TestBuildGreedyTreeRollsBackOnInfeasibility(t *testing.T) {
	// u0 - s - u1 routable, u2 isolated: the build commits one channel,
	// then dead-ends and must refund it.
	g := quantumGraphWithIsolatedUser(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	led := quantum.NewLedger(g)
	_, err := BuildGreedyTree(context.Background(), p, led, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
	if got := led.UsedQubits(); got != 0 {
		t.Fatalf("%d qubits leaked after failed build", got)
	}
}

func quantumGraphWithIsolatedUser(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4, 2)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddUser(9000, 9000)
	g.AddSwitch(1000, 0, 2)
	g.MustAddEdge(0, 3, 1000)
	g.MustAddEdge(3, 1, 1000)
	return g
}

func TestBuildGreedyTreeSharedLedger(t *testing.T) {
	// Two consecutive builds against one ledger: the second sees only
	// residual capacity.
	g := bottleneckNet(t, 2)
	p := mustProblem(t, g, quantum.DefaultParams())
	led := quantum.NewLedger(g)
	first, err := BuildGreedyTree(context.Background(), p, led, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The central switch is exhausted by the first tree (or the detour
	// absorbed it) — a second identical build must still respect capacity.
	second, err := BuildGreedyTree(context.Background(), p, led, nil)
	if err == nil {
		load := map[int64]int{}
		for _, tr := range []quantum.Tree{first, second} {
			for s, q := range tr.QubitLoad() {
				load[int64(s)] += q
			}
		}
		for s, q := range load {
			if q > g.Node(graph.NodeID(s)).Qubits {
				t.Fatalf("switch %d jointly loaded %d > %d", s, q, g.Node(graph.NodeID(s)).Qubits)
			}
		}
	}
}

func TestBuildGreedyTreeNilLedger(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	if _, err := BuildGreedyTree(context.Background(), p, nil, nil); err == nil {
		t.Fatal("nil ledger accepted")
	}
}
