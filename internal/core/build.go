package core

import (
	"context"
	"fmt"

	"github.com/muerp/quantumnet/internal/quantum"
)

// BuildGreedyTree grows an entanglement tree for the problem's users
// against an externally owned qubit ledger — the Algorithm 4 greedy step
// applied to *shared* capacity, used by callers that route several requests
// over one network (the multigroup extension, the admission scheduler).
// A nil ctx never cancels; opts follows the SolveFunc contract (its RNG is
// unused — the tree always grows from the first user).
//
// On success the tree's reservations remain charged to the ledger (the
// caller owns their lifetime and can Release them later). On infeasibility
// or cancellation every reservation made during the attempt is rolled back
// and the ledger is exactly as before the call.
func BuildGreedyTree(ctx context.Context, p *Problem, led *quantum.Ledger, opts *SolveOptions) (quantum.Tree, error) {
	if led == nil {
		return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree needs a ledger")
	}
	st := opts.StatsSink()
	inTree := make([]bool, len(p.Users))
	inTree[0] = true
	tree := quantum.Tree{}

	rollback := func() {
		for _, ch := range tree.Channels {
			led.Release(ch.Nodes)
		}
	}
	// The frontier search is incremental, exactly as in solvePrimFrom; the
	// rollback Releases only run after the loop is done with the cache, so
	// the generation bump they may cause never reaches a live entry.
	cache, err := p.newCandCache(ctx, led, frontierTargets{inTree: inTree}, st)
	if err != nil {
		return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree: %w", err)
	}
	rounds := len(p.Users) - 1
	for committed := 0; committed < rounds; committed++ {
		best, ok, err := cache.best(ctx, st)
		if err != nil {
			rollback()
			return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree: %w", err)
		}
		if !ok {
			rollback()
			return quantum.Tree{}, fmt.Errorf("%w: %d users unreachable under shared capacity",
				ErrInfeasible, rounds-committed)
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			rollback()
			return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree reserve: %w", err)
		}
		st.AddReservations(1)
		inTree[best.ib] = true
		tree.Channels = append(tree.Channels, best.ch)
		st.AddCommitted(1)
		if committed+1 < rounds {
			// Re-seed the consumed winning source and seed the newly in-tree
			// user, as in solvePrimFrom.
			if err := cache.add(ctx, best.ia, st); err != nil {
				rollback()
				return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree: %w", err)
			}
			if err := cache.add(ctx, best.ib, st); err != nil {
				rollback()
				return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree: %w", err)
			}
		}
	}
	st.AddSearchesSaved(int64(rounds)*int64(rounds+1)/2 - cache.searches)
	return tree, nil
}

// ReleaseTree refunds every qubit a previously built tree reserved in the
// ledger (the inverse of the reservations BuildGreedyTree left charged).
func ReleaseTree(led *quantum.Ledger, t quantum.Tree) {
	for _, ch := range t.Channels {
		led.Release(ch.Nodes)
	}
}
