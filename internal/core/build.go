package core

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/quantum"
)

// BuildGreedyTree grows an entanglement tree for the problem's users
// against an externally owned qubit ledger — the Algorithm 4 greedy step
// applied to *shared* capacity, used by callers that route several requests
// over one network (the multigroup extension, the admission scheduler).
//
// On success the tree's reservations remain charged to the ledger (the
// caller owns their lifetime and can Release them later). On infeasibility
// every reservation made during the attempt is rolled back and the ledger
// is exactly as before the call.
func BuildGreedyTree(p *Problem, led *quantum.Ledger) (quantum.Tree, error) {
	if led == nil {
		return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree needs a ledger")
	}
	inTree := make([]bool, len(p.Users))
	inTree[0] = true
	tree := quantum.Tree{}

	rollback := func() {
		for _, ch := range tree.Channels {
			led.Release(ch.Nodes)
		}
	}
	for committed := 0; committed < len(p.Users)-1; committed++ {
		best, ok := p.bestFrontierChannel(led, inTree)
		if !ok {
			rollback()
			return quantum.Tree{}, fmt.Errorf("%w: %d users unreachable under shared capacity",
				ErrInfeasible, len(p.Users)-1-committed)
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			rollback()
			return quantum.Tree{}, fmt.Errorf("core: BuildGreedyTree reserve: %w", err)
		}
		inTree[best.ib] = true
		tree.Channels = append(tree.Channels, best.ch)
	}
	return tree, nil
}

// ReleaseTree refunds every qubit a previously built tree reserved in the
// ledger (the inverse of the reservations BuildGreedyTree left charged).
func ReleaseTree(led *quantum.Ledger, t quantum.Tree) {
	for _, ch := range t.Channels {
		led.Release(ch.Nodes)
	}
}
