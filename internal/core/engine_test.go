package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// sameCandidates requires two candidate lists to be byte-identical: same
// order, same endpoint indices, same node sequences, bitwise-equal rates.
func sameCandidates(t *testing.T, want, got []candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("candidate counts differ: %d vs %d", len(want), len(got))
	}
	for k := range want {
		w, g := want[k], got[k]
		if w.ia != g.ia || w.ib != g.ib {
			t.Fatalf("candidate %d: endpoints (%d,%d) vs (%d,%d)", k, w.ia, w.ib, g.ia, g.ib)
		}
		if math.Float64bits(w.ch.Rate) != math.Float64bits(g.ch.Rate) {
			t.Fatalf("candidate %d: rate %x vs %x", k, math.Float64bits(w.ch.Rate), math.Float64bits(g.ch.Rate))
		}
		if len(w.ch.Nodes) != len(g.ch.Nodes) {
			t.Fatalf("candidate %d: paths %v vs %v", k, w.ch.Nodes, g.ch.Nodes)
		}
		for i := range w.ch.Nodes {
			if w.ch.Nodes[i] != g.ch.Nodes[i] {
				t.Fatalf("candidate %d: paths %v vs %v", k, w.ch.Nodes, g.ch.Nodes)
			}
		}
	}
}

// TestAllPairsChannelsParallelDeterminism mirrors sim's parallel batch test
// one layer down: the parallel all-pairs fan-out of Algorithm 2 step 1 must
// produce a candidate list identical to the sequential path, bit for bit,
// at every worker count.
func TestAllPairsChannelsParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		g := randomNet(rng, 4+rng.Intn(8), 10+rng.Intn(30), 2+2*rng.Intn(6))
		p := mustProblem(t, g, quantum.DefaultParams())
		seq, err := p.allPairsChannelsParallel(nil, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 64} {
			par, err := p.allPairsChannelsParallel(nil, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameCandidates(t, seq, par)
		}
	}
}

// sameSolution requires two solutions to describe exactly the same tree.
func sameSolution(t *testing.T, want, got *Solution) {
	t.Helper()
	if len(want.Tree.Channels) != len(got.Tree.Channels) {
		t.Fatalf("tree sizes differ: %d vs %d", len(want.Tree.Channels), len(got.Tree.Channels))
	}
	for k := range want.Tree.Channels {
		w, g := want.Tree.Channels[k], got.Tree.Channels[k]
		if math.Float64bits(w.Rate) != math.Float64bits(g.Rate) || len(w.Nodes) != len(g.Nodes) {
			t.Fatalf("channel %d differs: %v vs %v", k, w, g)
		}
		for i := range w.Nodes {
			if w.Nodes[i] != g.Nodes[i] {
				t.Fatalf("channel %d paths differ: %v vs %v", k, w.Nodes, g.Nodes)
			}
		}
	}
	if math.Float64bits(want.Rate()) != math.Float64bits(got.Rate()) {
		t.Fatalf("rates differ: %g vs %g", want.Rate(), got.Rate())
	}
}

// TestSolversDeterministicUnderPooling runs each algorithm repeatedly on
// one problem instance (exercising warm pooled scratch) and on fresh
// instances, requiring identical trees and rates every time: buffer reuse
// must never leak state between searches or solves.
func TestSolversDeterministicUnderPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		g := randomNet(rng, 5, 20, 4)
		solvers := []func(*Problem) (*Solution, error){SolveOptimal, SolveConflictFree,
			func(p *Problem) (*Solution, error) { return SolvePrim(p, nil) }}
		for si, solve := range solvers {
			warm := mustProblem(t, g, quantum.DefaultParams())
			first, err1 := solve(warm)
			if err1 != nil {
				continue // infeasible on this draw; nothing to compare
			}
			for rep := 0; rep < 3; rep++ {
				again, err := solve(warm) // warm pool
				if err != nil {
					t.Fatalf("solver %d became infeasible on rerun: %v", si, err)
				}
				sameSolution(t, first, again)
				fresh, err := solve(mustProblem(t, g, quantum.DefaultParams()))
				if err != nil {
					t.Fatalf("solver %d infeasible on fresh problem: %v", si, err)
				}
				sameSolution(t, first, fresh)
			}
		}
	}
}

// TestMaxRateChannelsPooledMatchesFresh interleaves ledger-gated and static
// searches on one problem and checks each against a fresh problem instance,
// so scratch reuse across differing transit filters is covered too.
func TestMaxRateChannelsPooledMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomNet(rng, 6, 25, 4)
	warm := mustProblem(t, g, quantum.DefaultParams())
	led := quantum.NewLedger(g)
	// Burn some capacity so the gated searches differ from the static ones.
	for _, s := range g.Switches() {
		if rng.Intn(3) == 0 && led.Free(s) >= 2 {
			if err := led.Reserve([]graph.NodeID{warm.Users[0], s, warm.Users[1]}); err != nil {
				t.Fatalf("reserve: %v", err)
			}
		}
	}
	for round := 0; round < 4; round++ {
		for _, l := range []*quantum.Ledger{nil, led} {
			for _, src := range warm.Users {
				got := warm.MaxRateChannels(src, l, nil)
				want := mustProblem(t, g, quantum.DefaultParams()).MaxRateChannels(src, l, nil)
				if len(got) != len(want) {
					t.Fatalf("src %d: %d channels pooled vs %d fresh", src, len(got), len(want))
				}
				for k := range want {
					w, gc := want[k], got[k]
					if w.Dst != gc.Dst || math.Float64bits(w.Ch.Rate) != math.Float64bits(gc.Ch.Rate) {
						t.Fatalf("src %d entry %d: pooled %v vs fresh %v", src, k, gc, w)
					}
				}
			}
		}
	}
}
