package core

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/muerp/quantumnet/internal/quantum"
)

// This file implements the paper's Algorithm 4, the Prim-based heuristic:
// grow the entanglement tree from one randomly chosen user, each round
// committing the maximum-rate feasible channel from the in-tree user set U1
// to the out-set U2 and charging the switches it crosses.

// SolvePrim runs Algorithm 4 with background context; the rng (nil = start
// from the first user) is passed through as SolveOptions.RNG. See
// SolvePrimContext for the full contract.
func SolvePrim(p *Problem, rng *rand.Rand) (*Solution, error) {
	return SolvePrimContext(context.Background(), p, &SolveOptions{RNG: rng})
}

// SolvePrimContext implements Algorithm 4 under the SolveFunc contract.
// opts.RNG selects the starting user as in the paper ("randomly pick u0");
// without one the solve deterministically starts from the first user, which
// is convenient for tests.
func SolvePrimContext(ctx context.Context, p *Problem, opts *SolveOptions) (*Solution, error) {
	start := 0
	if rng := opts.Rand(); rng != nil {
		start = rng.Intn(len(p.Users))
	}
	return solvePrimFrom(ctx, p, start, opts.StatsSink())
}

// solvePrimFrom runs Algorithm 4 starting from Users[start].
//
// The U1→U2 search is incremental (see incremental.go): the start user
// seeds a one-entry candidate cache, each committed channel adds one fresh
// search for the user it pulled into the tree, and stale entries re-search
// lazily — instead of the exhaustive |U1| single-source runs per round,
// which made Algorithm 4 quadratic in searches. The committed tree is
// bit-identical to the exhaustive sweep's (bestFrontierChannelExhaustive),
// which TestPrimLazyMatchesExhaustive checks on randomized networks.
func solvePrimFrom(ctx context.Context, p *Problem, start int, st *SolveStats) (*Solution, error) {
	if start < 0 || start >= len(p.Users) {
		return nil, fmt.Errorf("core: algorithm 4: start index %d out of range", start)
	}
	led := quantum.NewLedger(p.Graph)
	inTree := make([]bool, len(p.Users))
	inTree[start] = true
	tree := quantum.Tree{}

	cache, err := p.newCandCache(ctx, led, frontierTargets{inTree: inTree}, st)
	if err != nil {
		return nil, fmt.Errorf("algorithm 4: %w", err)
	}
	rounds := len(p.Users) - 1
	for committed := 0; committed < rounds; committed++ {
		best, ok, err := cache.best(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("algorithm 4: %w", err)
		}
		if !ok {
			remaining := rounds - committed
			return nil, fmt.Errorf("%w: %d users unreachable under switch capacity (algorithm 4)",
				ErrInfeasible, remaining)
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after capacity-gated search: %v", err))
		}
		st.AddReservations(1)
		inTree[best.ib] = true
		tree.Channels = append(tree.Channels, best.ch)
		st.AddCommitted(1)
		if committed+1 < rounds {
			// Committing consumed the winning source's entry and promoted
			// best.ib into U1: re-seed the former with its next-best
			// candidate and seed the latter as a brand-new source.
			if err := cache.add(ctx, best.ia, st); err != nil {
				return nil, fmt.Errorf("algorithm 4: %w", err)
			}
			if err := cache.add(ctx, best.ib, st); err != nil {
				return nil, fmt.Errorf("algorithm 4: %w", err)
			}
		}
	}
	// The exhaustive sweep would have run |U1| searches per round:
	// 1 + 2 + ... + (|U|-1).
	st.AddSearchesSaved(int64(rounds)*int64(rounds+1)/2 - cache.searches)
	return &Solution{Tree: tree, Algorithm: "alg4", MeasurementFactor: 1}, nil
}

// bestFrontierChannelExhaustive searches the maximum-rate channel from any
// user in U1 (inTree) to any user in U2, under residual capacity; ctx is
// checked before each single-source burst. The candidate's ia is the
// in-tree endpoint's index and ib the out-set endpoint's.
//
// It is the reference the lazy cache must agree with candidate-for-candidate
// and is kept for the differential tests; production loops go through
// candCache instead.
func (p *Problem) bestFrontierChannelExhaustive(ctx context.Context, led *quantum.Ledger, inTree []bool, st *SolveStats) (candidate, bool, error) {
	sc := p.acquireCtx(st)
	defer p.releaseCtx(sc)
	var best candidate
	found := false
	for i, src := range p.Users {
		if !inTree[i] {
			continue
		}
		if err := ctxErr(ctx); err != nil {
			return candidate{}, false, err
		}
		sp := p.channelSearch(sc, src, led, st)
		for j, dst := range p.Users {
			if inTree[j] {
				continue
			}
			ch, ok := p.channelFromSearch(sc, sp, dst, st)
			if !ok {
				continue
			}
			if !found || ch.Rate > best.ch.Rate ||
				(ch.Rate == best.ch.Rate && (i < best.ia || (i == best.ia && j < best.ib))) {
				best = candidate{ch: ch, ia: i, ib: j}
				found = true
			}
		}
	}
	return best, found, nil
}
