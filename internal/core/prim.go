package core

import (
	"fmt"
	"math/rand"

	"github.com/muerp/quantumnet/internal/quantum"
)

// This file implements the paper's Algorithm 4, the Prim-based heuristic:
// grow the entanglement tree from one randomly chosen user, each round
// committing the maximum-rate feasible channel from the in-tree user set U1
// to the out-set U2 and charging the switches it crosses.

// SolvePrim implements Algorithm 4. The rng selects the starting user as in
// the paper ("randomly pick u0"); a nil rng deterministically starts from
// the first user, which is convenient for tests.
func SolvePrim(p *Problem, rng *rand.Rand) (*Solution, error) {
	start := 0
	if rng != nil {
		start = rng.Intn(len(p.Users))
	}
	return solvePrimFrom(p, start)
}

// solvePrimFrom runs Algorithm 4 starting from Users[start].
func solvePrimFrom(p *Problem, start int) (*Solution, error) {
	if start < 0 || start >= len(p.Users) {
		return nil, fmt.Errorf("core: algorithm 4: start index %d out of range", start)
	}
	led := quantum.NewLedger(p.Graph)
	inTree := make([]bool, len(p.Users))
	inTree[start] = true
	tree := quantum.Tree{}

	for committed := 0; committed < len(p.Users)-1; committed++ {
		best, ok := p.bestFrontierChannel(led, inTree)
		if !ok {
			remaining := len(p.Users) - 1 - committed
			return nil, fmt.Errorf("%w: %d users unreachable under switch capacity (algorithm 4)",
				ErrInfeasible, remaining)
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			panic(fmt.Sprintf("core: reserve after capacity-gated search: %v", err))
		}
		inTree[best.ib] = true
		tree.Channels = append(tree.Channels, best.ch)
	}
	return &Solution{Tree: tree, Algorithm: "alg4", MeasurementFactor: 1}, nil
}

// bestFrontierChannel searches the maximum-rate channel from any user in U1
// (inTree) to any user in U2, under residual capacity. The candidate's ia is
// the in-tree endpoint's index and ib the out-set endpoint's.
func (p *Problem) bestFrontierChannel(led *quantum.Ledger, inTree []bool) (candidate, bool) {
	sc := p.acquireCtx()
	defer p.releaseCtx(sc)
	var best candidate
	found := false
	for i, src := range p.Users {
		if !inTree[i] {
			continue
		}
		sp := p.channelSearch(sc, src, led)
		for j, dst := range p.Users {
			if inTree[j] {
				continue
			}
			ch, ok := p.channelFromSearch(sc, sp, dst)
			if !ok {
				continue
			}
			if !found || ch.Rate > best.ch.Rate ||
				(ch.Rate == best.ch.Rate && (i < best.ia || (i == best.ia && j < best.ib))) {
				best = candidate{ch: ch, ia: i, ib: j}
				found = true
			}
		}
	}
	return best, found
}
