package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// tradeoffNet builds two routes between u0 and u3:
//
//	direct fiber u0-u3 of length L_direct, and
//	u0 - s1 - u3 with two fibers of length L_hop each.
//
// The relayed route wins iff q * exp(-2*alpha*L_hop) > exp(-alpha*L_direct).
func tradeoffNet(t *testing.T, lDirect, lHop float64) *graph.Graph {
	t.Helper()
	g := graph.New(3, 3)
	g.AddUser(0, 0)
	g.AddSwitch(1, 1, 4)
	g.AddUser(2, 0)
	g.MustAddEdge(0, 1, lHop)
	g.MustAddEdge(1, 2, lHop)
	g.MustAddEdge(0, 2, lDirect)
	return g
}

func TestMaxRateChannelPrefersRelayWhenWorthIt(t *testing.T) {
	// Direct: exp(-1e-4*20000) = e^-2 ~= 0.135.
	// Relay: 0.9 * exp(-1e-4*2*1000) = 0.9*e^-0.2 ~= 0.737.
	g := tradeoffNet(t, 20000, 1000)
	p := mustProblem(t, g, quantum.DefaultParams())
	ch, ok := p.MaxRateChannel(0, 2, nil, nil)
	if !ok {
		t.Fatal("no channel found")
	}
	if got := ch.Links(); got != 2 {
		t.Fatalf("channel uses %d links, want relayed 2-link path (rate %g)", got, ch.Rate)
	}
}

func TestMaxRateChannelPrefersDirectWhenSwapCostly(t *testing.T) {
	// Direct: exp(-1e-4*1500) ~= 0.861.
	// Relay: 0.9 * exp(-1e-4*2*700) ~= 0.9*0.869 = 0.782.
	g := tradeoffNet(t, 1500, 700)
	p := mustProblem(t, g, quantum.DefaultParams())
	ch, ok := p.MaxRateChannel(0, 2, nil, nil)
	if !ok {
		t.Fatal("no channel found")
	}
	if got := ch.Links(); got != 1 {
		t.Fatalf("channel uses %d links, want direct fiber (rate %g)", got, ch.Rate)
	}
}

func TestMaxRateChannelStaticCapacityGate(t *testing.T) {
	g := tradeoffNet(t, 20000, 1000)
	g.SetQubits(1, 1) // switch can no longer relay at all
	p := mustProblem(t, g, quantum.DefaultParams())
	ch, ok := p.MaxRateChannel(0, 2, nil, nil)
	if !ok {
		t.Fatal("no channel found")
	}
	if ch.Links() != 1 {
		t.Fatalf("channel should fall back to the direct fiber, got %v", ch.Nodes)
	}
}

func TestMaxRateChannelLedgerGate(t *testing.T) {
	g := tradeoffNet(t, 20000, 1000)
	g.SetQubits(1, 2)
	p := mustProblem(t, g, quantum.DefaultParams())
	led := quantum.NewLedger(g)

	first, ok := p.MaxRateChannel(0, 2, led, nil)
	if !ok || first.Links() != 2 {
		t.Fatalf("first channel should use the relay, got %v ok=%v", first.Nodes, ok)
	}
	if err := led.Reserve(first.Nodes); err != nil {
		t.Fatal(err)
	}
	second, ok := p.MaxRateChannel(0, 2, led, nil)
	if !ok || second.Links() != 1 {
		t.Fatalf("second channel should fall back to direct, got %v ok=%v", second.Nodes, ok)
	}
}

func TestMaxRateChannelNeverTransitsUsers(t *testing.T) {
	// u0 - u1 - u2 chain plus a switch detour u0 - s3 - u2.
	g := graph.New(4, 4)
	g.AddUser(0, 0)
	g.AddUser(1, 0)
	g.AddUser(2, 0)
	g.AddSwitch(1, 5, 4)
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(0, 3, 8000)
	g.MustAddEdge(3, 2, 8000)
	p := mustProblem(t, g, quantum.DefaultParams())
	ch, ok := p.MaxRateChannel(0, 2, nil, nil)
	if !ok {
		t.Fatal("no channel found")
	}
	// Even though hopping through user u1 would be far shorter, channels
	// may only transit switches.
	for _, id := range ch.Interior() {
		if g.Node(id).Kind != graph.KindSwitch {
			t.Fatalf("channel transits non-switch %d: %v", id, ch.Nodes)
		}
	}
	if ch.Links() != 2 || ch.Nodes[1] != 3 {
		t.Fatalf("expected detour via switch 3, got %v", ch.Nodes)
	}
}

func TestMaxRateChannelNoRoute(t *testing.T) {
	g := graph.New(3, 1)
	g.AddUser(0, 0)
	g.AddUser(1, 0)
	g.AddUser(5, 5) // isolated
	g.MustAddEdge(0, 1, 100)
	p := mustProblem(t, g, quantum.DefaultParams())
	if _, ok := p.MaxRateChannel(0, 2, nil, nil); ok {
		t.Fatal("found a channel to an isolated user")
	}
	if _, ok := p.MaxRateChannel(0, 0, nil, nil); ok {
		t.Fatal("found a channel from a user to itself")
	}
}

func TestMaxRateChannelsMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomNet(rng, 4, 6, 4)
	p := mustProblem(t, g, quantum.DefaultParams())
	src := p.Users[0]
	batch := make(map[graph.NodeID]quantum.Channel)
	for _, uc := range p.MaxRateChannels(src, nil, nil) {
		batch[uc.Dst] = uc.Ch
	}
	for _, dst := range p.Users[1:] {
		single, okSingle := p.MaxRateChannel(src, dst, nil, nil)
		got, okBatch := batch[dst]
		if okSingle != okBatch {
			t.Fatalf("reachability disagrees for %d->%d", src, dst)
		}
		if okSingle && !rateClose(single.Rate, got.Rate) {
			t.Fatalf("rate disagrees for %d->%d: %g vs %g", src, dst, single.Rate, got.Rate)
		}
	}
}

// bruteBestChannel enumerates all channels between a pair and returns the
// best rate.
func bruteBestChannel(t *testing.T, p *Problem, src, dst graph.NodeID) (float64, bool) {
	t.Helper()
	best, found := 0.0, false
	for _, ch := range allChannels(t, p) {
		a, b := ch.Endpoints()
		if (a == src && b == dst) || (a == dst && b == src) {
			found = true
			if ch.Rate > best {
				best = ch.Rate
			}
		}
	}
	return best, found
}

// TestQuickAlgorithmOneIsOptimal cross-checks Algorithm 1 against exhaustive
// path enumeration on small random networks: the returned channel always
// has the maximum entanglement rate among all valid channels.
func TestQuickAlgorithmOneIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomNet(rng, 2+rng.Intn(2), 2+rng.Intn(4), 2+2*rng.Intn(3))
		params := quantum.Params{Alpha: 1e-4, SwapProb: 0.5 + rng.Float64()*0.5}
		p, err := AllUsersProblem(g, params)
		if err != nil {
			t.Log(err)
			return false
		}
		src, dst := p.Users[0], p.Users[1]
		got, ok := p.MaxRateChannel(src, dst, nil, nil)
		want, wantOK := bruteBestChannel(t, p, src, dst)
		if ok != wantOK {
			t.Logf("seed %d: reachability %v vs brute %v", seed, ok, wantOK)
			return false
		}
		if ok && math.Abs(got.Rate-want) > 1e-9*want {
			t.Logf("seed %d: rate %g vs brute %g", seed, got.Rate, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
