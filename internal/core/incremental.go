package core

import (
	"context"

	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// This file is the incremental channel-search layer behind Algorithm 3's
// phase 2, Algorithm 4, tree repair and the shared-capacity greedy builder.
//
// All of those loops repeatedly ask "what is the maximum-rate channel
// joining two different user groups under residual capacity?" and used to
// answer it with a full |U| single-source sweep per committed channel. But
// between commits capacity is monotone: quantum.Ledger.Reserve can only
// close switches (drop them below 2 free qubits), never reopen them, and
// user groups only ever merge. Both facts together mean a cached best
// candidate per source user can only get *worse* over time — so the globally
// best candidate can be maintained in a max-heap and revalidated lazily:
//
//   - Each source user i owns at most one heap entry: its best channel to
//     any eligible destination, tagged with the quantum.Epoch it was
//     computed at.
//   - Pop the top entry. If its endpoints are still in different groups and
//     no interior switch closed since its epoch, it is provably still the
//     global optimum (every other entry's stored rate is an upper bound on
//     that source's current best, and the deterministic (rate desc, ia, ib)
//     heap order reproduces the exhaustive sweep's tie-break exactly).
//   - Otherwise the entry is stale: re-run only that source's single-source
//     search under the current ledger and groups, reinsert, and pop again.
//   - A source whose re-search finds no candidate is dropped for good —
//     monotonicity guarantees it can never gain one within the loop.
//
// A quantum.Ledger.Release between pops breaks monotonicity (reopened
// capacity can create channels better than anything cached); the ledger
// reports it through a generation bump and the cache rebuilds itself from
// scratch. That never happens inside the solver loops, which only Reserve,
// but keeps externally seeded loops (ReconnectUnions) correct no matter
// what their callers did to the ledger in between.
//
// TestConnectUnionsLazyMatchesExhaustive and
// TestPrimLazyMatchesExhaustive check the lazy layer against the retained
// exhaustive sweeps on randomized networks; committed trees are
// bit-identical by construction.

// cacheEntry tags one source user's best candidate with the ledger closure
// epoch it was computed at.
type cacheEntry struct {
	cand  candidate
	epoch quantum.Epoch
}

// candHeap is a max-heap of per-source best candidates ordered by the
// solvers' deterministic tie-break: rate descending, then source index ia,
// then destination index ib ascending. The order makes lazy popping commit
// exactly the candidate the exhaustive ascending-index sweep would have
// picked, ties included.
type candHeap []cacheEntry

// before reports whether entry x must pop before entry y.
func (h candHeap) before(x, y cacheEntry) bool {
	if x.cand.ch.Rate != y.cand.ch.Rate {
		return x.cand.ch.Rate > y.cand.ch.Rate
	}
	if x.cand.ia != y.cand.ia {
		return x.cand.ia < y.cand.ia
	}
	return x.cand.ib < y.cand.ib
}

func (h *candHeap) push(e cacheEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.before(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *candHeap) pop() cacheEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = cacheEntry{} // release the channel backing array
	s = s[:n]
	*h = s
	for i := 0; ; {
		best := i
		if l := 2*i + 1; l < n && s.before(s[l], s[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && s.before(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// pairTargets abstracts the two "join different groups" loops over what
// counts as an eligible (source, destination) pair right now:
//
//   - cross-union (Algorithm 3 phase 2, repair): sources are all users,
//     destinations are users with a larger index in a different union;
//   - frontier (Algorithm 4, BuildGreedyTree): sources are in-tree users,
//     destinations are all out-of-tree users.
type pairTargets interface {
	// sources appends the indices eligible as search sources, in ascending
	// order (used only to (re)build the cache from scratch).
	sources(buf []int) []int
	// eligible reports whether (i, j) is currently a joinable pair with
	// source i.
	eligible(i, j int) bool
}

// crossUnionTargets adapts a union-find partition of the users.
type crossUnionTargets struct{ uf *unionfind.UnionFind }

func (t crossUnionTargets) sources(buf []int) []int {
	for i := 0; i < t.uf.Len()-1; i++ {
		buf = append(buf, i)
	}
	return buf
}

func (t crossUnionTargets) eligible(i, j int) bool {
	return j > i && !t.uf.Connected(i, j)
}

// frontierTargets adapts Algorithm 4's in-tree membership slice.
type frontierTargets struct{ inTree []bool }

func (t frontierTargets) sources(buf []int) []int {
	for i, in := range t.inTree {
		if in {
			buf = append(buf, i)
		}
	}
	return buf
}

func (t frontierTargets) eligible(i, j int) bool {
	return t.inTree[i] && !t.inTree[j]
}

// candCache is the per-solve lazy candidate cache: one heap entry per
// source user still holding a joinable candidate, revalidated against the
// ledger's closure epochs on pop.
type candCache struct {
	p       *Problem
	led     *quantum.Ledger
	targets pairTargets
	heap    candHeap
	// searches counts the single-source runs the cache performed, the
	// subtrahend of the SearchesSaved accounting its callers do.
	searches int64
	srcBuf   []int
}

// newCandCache seeds the cache with one search per currently eligible
// source. ctx is checked before every single-source burst.
func (p *Problem) newCandCache(ctx context.Context, led *quantum.Ledger, targets pairTargets, st *SolveStats) (*candCache, error) {
	c := &candCache{p: p, led: led, targets: targets}
	if err := c.rebuild(ctx, st); err != nil {
		return nil, err
	}
	return c, nil
}

// rebuild recomputes every eligible source's entry from scratch, the cold
// start and the recovery path after a ledger generation change.
func (c *candCache) rebuild(ctx context.Context, st *SolveStats) error {
	c.heap = c.heap[:0]
	c.srcBuf = c.targets.sources(c.srcBuf[:0])
	sc := c.p.acquireCtx(st)
	defer c.p.releaseCtx(sc)
	for _, i := range c.srcBuf {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if e, ok := c.computeSource(sc, i, st); ok {
			c.heap.push(e)
		}
	}
	return nil
}

// computeSource runs source i's single-source search under the current
// ledger and returns its best candidate over the currently eligible
// destinations, with the exhaustive sweeps' tie-break (ascending j, strict
// improvement). ok is false when no destination is reachable — the caller
// then drops the source, which monotonicity makes permanent.
func (c *candCache) computeSource(sc *searchCtx, i int, st *SolveStats) (cacheEntry, bool) {
	epoch := c.led.Epoch()
	sp := c.p.channelSearch(sc, c.p.Users[i], c.led, st)
	c.searches++
	var best candidate
	found := false
	for j := range c.p.Users {
		if !c.targets.eligible(i, j) {
			continue
		}
		ch, ok := c.p.channelFromSearch(sc, sp, c.p.Users[j], st)
		if !ok {
			continue
		}
		if !found || ch.Rate > best.ch.Rate {
			best = candidate{ch: ch, ia: i, ib: j}
			found = true
		}
	}
	return cacheEntry{cand: best, epoch: epoch}, found
}

// add computes and inserts a fresh entry for source i, used when Algorithm
// 4 promotes a user into the tree (making it a new search source).
func (c *candCache) add(ctx context.Context, i int, st *SolveStats) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	sc := c.p.acquireCtx(st)
	defer c.p.releaseCtx(sc)
	if e, ok := c.computeSource(sc, i, st); ok {
		c.heap.push(e)
	}
	return nil
}

// best pops the maximum-rate joinable candidate, lazily revalidating
// entries: a popped entry is committed as-is when its pair is still
// joinable and its channel's interior switches are all still open;
// otherwise only that source is re-searched and the pop repeats. ok is
// false when no source holds a joinable candidate — which, under monotone
// capacity, proves none will ever reappear within this loop.
func (c *candCache) best(ctx context.Context, st *SolveStats) (candidate, bool, error) {
	var sc *searchCtx
	defer func() {
		if sc != nil {
			c.p.releaseCtx(sc)
		}
	}()
	for len(c.heap) > 0 {
		if err := ctxErr(ctx); err != nil {
			return candidate{}, false, err
		}
		e := c.heap.pop()
		closed, ok := c.led.ClosedSince(e.epoch)
		if !ok {
			// A Release reopened a switch since this entry was computed:
			// monotonicity broke and every cached entry is suspect, including
			// sources dropped as hopeless. Start over under the new
			// generation.
			if err := c.rebuild(ctx, st); err != nil {
				return candidate{}, false, err
			}
			continue
		}
		// The pair check is always against live state; the capacity check
		// can skip the interior scan when no switch closed since the entry's
		// epoch (CanCarry is then guaranteed by construction).
		stale := !c.targets.eligible(e.cand.ia, e.cand.ib) ||
			(len(closed) > 0 && !c.led.CanCarry(e.cand.ch.Nodes))
		if !stale {
			st.AddCacheHit()
			return e.cand, true, nil
		}
		st.AddCacheInvalidation()
		if sc == nil {
			sc = c.p.acquireCtx(st)
		}
		if ne, ok := c.computeSource(sc, e.cand.ia, st); ok {
			c.heap.push(ne)
		}
	}
	return candidate{}, false, nil
}
