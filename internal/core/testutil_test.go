package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// mustProblem builds a problem over all users of g.
func mustProblem(t *testing.T, g *graph.Graph, p quantum.Params) *Problem {
	t.Helper()
	prob, err := AllUsersProblem(g, p)
	if err != nil {
		t.Fatalf("AllUsersProblem: %v", err)
	}
	return prob
}

// randomNet builds a small random network with the given user/switch counts
// and qubit budget, guaranteed connected (a random spanning tree plus random
// extra fibers).
func randomNet(rng *rand.Rand, users, switches, qubits int) *graph.Graph {
	n := users + switches
	g := graph.New(n, 2*n)
	kinds := make([]graph.NodeKind, 0, n)
	for i := 0; i < users; i++ {
		kinds = append(kinds, graph.KindUser)
	}
	for i := 0; i < switches; i++ {
		kinds = append(kinds, graph.KindSwitch)
	}
	rng.Shuffle(n, func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	for _, k := range kinds {
		if k == graph.KindUser {
			g.AddUser(rng.Float64()*5000, rng.Float64()*5000)
		} else {
			g.AddSwitch(rng.Float64()*5000, rng.Float64()*5000, qubits)
		}
	}
	length := func(a, b graph.NodeID) float64 {
		na, nb := g.Node(a), g.Node(b)
		return math.Max(1, math.Hypot(na.X-nb.X, na.Y-nb.Y))
	}
	// Random spanning tree for connectivity.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := graph.NodeID(perm[i])
		b := graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, b, length(a, b))
	}
	// Extra random fibers.
	extra := rng.Intn(n * 2)
	for i := 0; i < extra; i++ {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b || g.HasEdge(a, b) {
			continue
		}
		g.MustAddEdge(a, b, length(a, b))
	}
	return g
}

// allChannels enumerates every simple user-to-user path whose interior
// vertices are switches with at least 2 qubits, as quantum.Channels.
func allChannels(t *testing.T, p *Problem) []quantum.Channel {
	t.Helper()
	var out []quantum.Channel
	users := make(map[graph.NodeID]bool, len(p.Users))
	for _, u := range p.Users {
		users[u] = true
	}
	visited := make(map[graph.NodeID]bool)
	var path []graph.NodeID
	var dfs func(v, src graph.NodeID)
	dfs = func(v, src graph.NodeID) {
		path = append(path, v)
		visited[v] = true
		defer func() {
			path = path[:len(path)-1]
			visited[v] = false
		}()
		if v != src && users[v] {
			if src < v { // one direction per pair
				ch, err := quantum.NewChannel(p.Graph, path, p.Params)
				if err != nil {
					t.Fatalf("enumerated invalid channel %v: %v", path, err)
				}
				out = append(out, ch)
			}
			return // channels terminate at the first user reached
		}
		if v != src {
			n := p.Graph.Node(v)
			if n.Kind != graph.KindSwitch || n.Qubits < 2 {
				return
			}
		}
		for _, nb := range p.Graph.NeighborIDs(v) {
			if !visited[nb] {
				dfs(nb, src)
			}
		}
	}
	for _, u := range p.Users {
		dfs(u, u)
	}
	return out
}

// bruteForceOptimal exhaustively searches the best capacity-feasible
// entanglement tree: every (|U|-1)-subset of enumerated channels that spans
// the users without loops and within switch capacity. Returns the best rate
// and whether any feasible tree exists. Exponential; only for tiny nets.
func bruteForceOptimal(t *testing.T, p *Problem) (float64, bool) {
	t.Helper()
	chans := allChannels(t, p)
	idx := make(map[graph.NodeID]int, len(p.Users))
	for i, u := range p.Users {
		idx[u] = i
	}
	need := len(p.Users) - 1
	best, found := 0.0, false

	var rec func(start int, chosen []quantum.Channel)
	rec = func(start int, chosen []quantum.Channel) {
		if len(chosen) == need {
			uf := unionfind.New(len(p.Users))
			led := quantum.NewLedger(p.Graph)
			rate := 1.0
			for _, c := range chosen {
				a, b := c.Endpoints()
				if !uf.Union(idx[a], idx[b]) {
					return
				}
				if err := led.Reserve(c.Nodes); err != nil {
					return
				}
				rate *= c.Rate
			}
			if uf.Sets() == 1 {
				found = true
				if rate > best {
					best = rate
				}
			}
			return
		}
		for i := start; i < len(chans); i++ {
			rec(i+1, append(chosen, chans[i]))
		}
	}
	rec(0, nil)
	return best, found
}

// rateClose compares rates with relative tolerance.
func rateClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
