package core

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// This file implements the paper's Algorithm 1: finding the quantum channel
// with maximum entanglement rate between a pair of users.
//
// Eq. 1 is a product, not a sum, so the algorithm works in negative log
// space: each fiber gets weight alpha*L - ln q, making path weight
// alpha*sum(L) + l*(-ln q), and the channel rate is recovered as
// exp(ln q - dist) = q^(l-1) * exp(-alpha*sum(L)). Minimizing the
// transformed weight with Dijkstra therefore maximizes the rate.
//
// Every routing algorithm (2-4 and the baselines) reduces to repeated runs
// of this kernel, so it is engineered to allocate nothing per search: the
// edge weights are computed once per Problem (not once per relaxation), and
// each searching goroutine checks a searchCtx out of the Problem's pool,
// reusing the Dijkstra arrays, the heap and the path-reconstruction buffer
// across runs. Only the transit filter stays dynamic, because ledger-gated
// capacity changes between searches.

// searchCtx is the per-goroutine scratch of the channel-search kernel: a
// reusable single-source engine plus a path buffer for channel extraction.
// The ShortestPaths a ctx produces aliases its engine and dies at its next
// search, so a ctx must stay checked out while results are being read.
type searchCtx struct {
	s    *graph.Searcher
	path []graph.NodeID
	// fresh marks a ctx that was just allocated by the pool's New (a pool
	// miss); acquireCtx clears it, so subsequent checkouts count as hits.
	fresh bool
}

// engineInit lazily builds the Problem's search engine: the precomputed
// Algorithm 1 edge weights and the searchCtx pool.
func (p *Problem) engineInit() {
	p.engineOnce.Do(func() {
		w := make([]float64, p.Graph.NumEdges())
		for e := range w {
			w[e] = p.Params.EdgeWeight(p.Graph.Edge(graph.EdgeID(e)).Length)
		}
		p.edgeWeights = w
		p.searchers.New = func() any {
			return &searchCtx{s: graph.NewSearcher(p.Graph), path: make([]graph.NodeID, 0, 16), fresh: true}
		}
	})
}

// acquireCtx checks a search context out of the pool, recording the
// hit/miss in st. Callers must return it with releaseCtx once no
// ShortestPaths produced through it is needed.
func (p *Problem) acquireCtx(st *SolveStats) *searchCtx {
	p.engineInit()
	sc := p.searchers.Get().(*searchCtx)
	st.AddPool(!sc.fresh)
	sc.fresh = false
	return sc
}

func (p *Problem) releaseCtx(sc *searchCtx) { p.searchers.Put(sc) }

// staticTransit is the ledger-free interior-vertex rule: switches with >= 2
// installed qubits (the static Q >= 2 check on line 11 of the paper's
// Algorithm 1). Package-level so ledger-free searches allocate no closure.
func staticTransit(n graph.Node) bool {
	return n.Kind == graph.KindSwitch && n.Qubits >= 2
}

// transitFunc returns the interior-vertex admission rule for channel
// searches. With a ledger it admits switches with >= 2 free qubits (the
// live-capacity rule of Algorithms 3 and 4); without one it admits switches
// with >= 2 total qubits. Users are never admitted as interior vertices
// (Definition 2: channels run through vertices in R).
func (p *Problem) transitFunc(led *quantum.Ledger) graph.TransitFunc {
	if led != nil {
		return led.CanRelay
	}
	return staticTransit
}

// channelSearch runs the single-source variant of Algorithm 1 from src,
// under the given ledger (nil = static capacity check only), on sc's
// engine, counting the run and its relaxations into st. The returned
// ShortestPaths recovers max-rate channels to every destination through its
// Prev array, exactly as the paper's complexity discussion prescribes; it
// is valid until sc's next search.
func (p *Problem) channelSearch(sc *searchCtx, src graph.NodeID, led *quantum.Ledger, st *SolveStats) *graph.ShortestPaths {
	sp := sc.s.SearchWeights(src, p.edgeWeights, p.transitFunc(led))
	st.AddSearch(sc.s.LastRelaxed())
	return sp
}

// channelFromSearch converts the shortest path from sp's source to dst into
// a quantum.Channel with its Eq. 1 rate, reconstructing the path through
// sc's reusable buffer, counting the extracted candidate into st. ok is
// false when dst is unreachable under the search's constraints.
func (p *Problem) channelFromSearch(sc *searchCtx, sp *graph.ShortestPaths, dst graph.NodeID, st *SolveStats) (quantum.Channel, bool) {
	if dst == sp.Source {
		return quantum.Channel{}, false
	}
	path, ok := sp.AppendPathTo(sc.path[:0], dst)
	if !ok {
		return quantum.Channel{}, false
	}
	sc.path = path[:0] // keep the (possibly grown) buffer for the next call
	// The rate could equivalently be recovered from the path distance as
	// exp(ln q - dist); NewChannel recomputes it directly from Eq. 1, which
	// is also what ValidateTree later checks against.
	ch, err := quantum.NewChannel(p.Graph, path, p.Params)
	if err != nil {
		// Dijkstra with our transit filter can only emit valid channel
		// paths; a failure here is an internal invariant violation.
		panic(fmt.Sprintf("core: Algorithm 1 produced an invalid channel: %v", err))
	}
	st.AddConsidered(1)
	return ch, true
}

// MaxRateChannel implements Algorithm 1: the maximum-entanglement-rate
// channel between the users src and dst. When led is non-nil, interior
// switches must currently have 2 free qubits in it. st (nil = discard)
// collects the search work. ok is false when no channel exists under the
// constraints.
func (p *Problem) MaxRateChannel(src, dst graph.NodeID, led *quantum.Ledger, st *SolveStats) (quantum.Channel, bool) {
	if src == dst {
		return quantum.Channel{}, false
	}
	sc := p.acquireCtx(st)
	defer p.releaseCtx(sc)
	return p.channelFromSearch(sc, p.channelSearch(sc, src, led, st), dst, st)
}

// UserChannel pairs a destination user with its max-rate channel, the
// per-destination record of a single-source Algorithm 1 run.
type UserChannel struct {
	Dst graph.NodeID
	Ch  quantum.Channel
}

// MaxRateChannels runs one single-source search from src and returns the
// max-rate channel to every other user reachable under the constraints, in
// ascending Problem.Users order. st (nil = discard) collects the search
// work. (It used to return a map; the slice is cheaper and gives callers a
// deterministic iteration order, so rate ties resolve the same way on every
// run.)
func (p *Problem) MaxRateChannels(src graph.NodeID, led *quantum.Ledger, st *SolveStats) []UserChannel {
	sc := p.acquireCtx(st)
	defer p.releaseCtx(sc)
	sp := p.channelSearch(sc, src, led, st)
	out := make([]UserChannel, 0, len(p.Users)-1)
	for _, u := range p.Users {
		if u == src {
			continue
		}
		if ch, ok := p.channelFromSearch(sc, sp, u, st); ok {
			out = append(out, UserChannel{Dst: u, Ch: ch})
		}
	}
	return out
}
