package core

import (
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// This file implements the paper's Algorithm 1: finding the quantum channel
// with maximum entanglement rate between a pair of users.
//
// Eq. 1 is a product, not a sum, so the algorithm works in negative log
// space: each fiber gets weight alpha*L - ln q, making path weight
// alpha*sum(L) + l*(-ln q), and the channel rate is recovered as
// exp(ln q - dist) = q^(l-1) * exp(-alpha*sum(L)). Minimizing the
// transformed weight with Dijkstra therefore maximizes the rate.

// transitFunc returns the interior-vertex admission rule for channel
// searches. With a ledger it admits switches with >= 2 free qubits (the
// live-capacity rule of Algorithms 3 and 4); without one it admits switches
// with >= 2 total qubits (the static Q >= 2 check on line 11 of the paper's
// Algorithm 1). Users are never admitted as interior vertices
// (Definition 2: channels run through vertices in R).
func (p *Problem) transitFunc(led *quantum.Ledger) graph.TransitFunc {
	if led != nil {
		return led.CanRelay
	}
	return func(n graph.Node) bool {
		return n.Kind == graph.KindSwitch && n.Qubits >= 2
	}
}

// channelSearch runs the single-source variant of Algorithm 1 from src,
// under the given ledger (nil = static capacity check only). The returned
// ShortestPaths recovers max-rate channels to every destination through its
// Prev array, exactly as the paper's complexity discussion prescribes.
func (p *Problem) channelSearch(src graph.NodeID, led *quantum.Ledger) *graph.ShortestPaths {
	weight := func(e graph.Edge) (float64, bool) {
		return p.Params.EdgeWeight(e.Length), true
	}
	return p.Graph.Dijkstra(src, weight, p.transitFunc(led))
}

// channelFromSearch converts the shortest path from sp's source to dst into
// a quantum.Channel with its Eq. 1 rate. ok is false when dst is
// unreachable under the search's constraints.
func (p *Problem) channelFromSearch(sp *graph.ShortestPaths, dst graph.NodeID) (quantum.Channel, bool) {
	if dst == sp.Source {
		return quantum.Channel{}, false
	}
	path, ok := sp.PathTo(dst)
	if !ok {
		return quantum.Channel{}, false
	}
	// The rate could equivalently be recovered from the path distance as
	// exp(ln q - dist); NewChannel recomputes it directly from Eq. 1, which
	// is also what ValidateTree later checks against.
	ch, err := quantum.NewChannel(p.Graph, path, p.Params)
	if err != nil {
		// Dijkstra with our transit filter can only emit valid channel
		// paths; a failure here is an internal invariant violation.
		panic(fmt.Sprintf("core: Algorithm 1 produced an invalid channel: %v", err))
	}
	return ch, true
}

// MaxRateChannel implements Algorithm 1: the maximum-entanglement-rate
// channel between the users src and dst. When led is non-nil, interior
// switches must currently have 2 free qubits in it. ok is false when no
// channel exists under the constraints.
func (p *Problem) MaxRateChannel(src, dst graph.NodeID, led *quantum.Ledger) (quantum.Channel, bool) {
	if src == dst {
		return quantum.Channel{}, false
	}
	return p.channelFromSearch(p.channelSearch(src, led), dst)
}

// MaxRateChannels runs one single-source search from src and returns the
// max-rate channel to every other user reachable under the constraints,
// keyed by destination.
func (p *Problem) MaxRateChannels(src graph.NodeID, led *quantum.Ledger) map[graph.NodeID]quantum.Channel {
	sp := p.channelSearch(src, led)
	out := make(map[graph.NodeID]quantum.Channel, len(p.Users)-1)
	for _, u := range p.Users {
		if u == src {
			continue
		}
		if ch, ok := p.channelFromSearch(sp, u); ok {
			out[u] = ch
		}
	}
	return out
}
