package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// sameTreeDiff fails the test unless the two trees committed exactly the same
// channels (node sequences and rates), in the same order.
func sameTreeDiff(t *testing.T, label string, lazy, exhaustive quantum.Tree) {
	t.Helper()
	if len(lazy.Channels) != len(exhaustive.Channels) {
		t.Fatalf("%s: lazy committed %d channels, exhaustive %d",
			label, len(lazy.Channels), len(exhaustive.Channels))
	}
	for k := range lazy.Channels {
		lc, ec := lazy.Channels[k], exhaustive.Channels[k]
		if lc.Rate != ec.Rate {
			t.Fatalf("%s: channel %d rate differs: lazy %v, exhaustive %v", label, k, lc.Rate, ec.Rate)
		}
		if len(lc.Nodes) != len(ec.Nodes) {
			t.Fatalf("%s: channel %d path length differs: lazy %v, exhaustive %v", label, k, lc.Nodes, ec.Nodes)
		}
		for x := range lc.Nodes {
			if lc.Nodes[x] != ec.Nodes[x] {
				t.Fatalf("%s: channel %d path differs: lazy %v, exhaustive %v", label, k, lc.Nodes, ec.Nodes)
			}
		}
	}
}

// TestConnectUnionsLazyMatchesExhaustive is the differential proof of the
// incremental cross-union search: on randomized tight-capacity networks the
// lazy candidate cache must commit a tree bit-identical to the retained
// exhaustive per-round sweep, starting from singleton unions (the worst
// case: every user group must be joined under live capacity).
func TestConnectUnionsLazyMatchesExhaustive(t *testing.T) {
	const networks = 60
	rng := rand.New(rand.NewSource(7))
	solved, infeasible := 0, 0
	for n := 0; n < networks; n++ {
		users := 4 + rng.Intn(7)
		switches := 10 + rng.Intn(25)
		qubits := 2 + 2*rng.Intn(2) // 2 or 4: tight, so closures actually happen
		g := randomNet(rng, users, switches, qubits)
		p := mustProblem(t, g, quantum.DefaultParams())

		var lazyStats, exStats SolveStats
		lazyTree, lazyErr := func() (quantum.Tree, error) {
			tree := quantum.Tree{}
			err := p.connectUnions(context.Background(), quantum.NewLedger(g),
				unionfind.New(users), &tree, "diff-lazy", &lazyStats)
			return tree, err
		}()
		exTree, exErr := func() (quantum.Tree, error) {
			tree := quantum.Tree{}
			err := p.connectUnionsExhaustive(context.Background(), quantum.NewLedger(g),
				unionfind.New(users), &tree, "diff-exhaustive", &exStats)
			return tree, err
		}()

		if (lazyErr == nil) != (exErr == nil) {
			t.Fatalf("net %d: feasibility differs: lazy err %v, exhaustive err %v", n, lazyErr, exErr)
		}
		if lazyErr != nil {
			infeasible++
			continue
		}
		solved++
		sameTreeDiff(t, fmt.Sprintf("net %d", n), lazyTree, exTree)
		if lazyStats.DijkstraRuns > exStats.DijkstraRuns {
			t.Errorf("net %d: lazy ran more searches (%d) than exhaustive (%d)",
				n, lazyStats.DijkstraRuns, exStats.DijkstraRuns)
		}
	}
	if solved < networks/2 {
		t.Fatalf("differential coverage too thin: only %d/%d networks solved (%d infeasible)",
			solved, networks, infeasible)
	}
}

// TestConflictFreeLazyMatchesExhaustive runs the full Algorithm 3 shape:
// phase 1 replays the Algorithm 2 tree under the ledger, then the lazy and
// exhaustive phase-2 loops must reconnect the leftover unions identically.
func TestConflictFreeLazyMatchesExhaustive(t *testing.T) {
	const networks = 50
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < networks; n++ {
		users := 4 + rng.Intn(7)
		g := randomNet(rng, users, 12+rng.Intn(20), 2+2*rng.Intn(2))
		p := mustProblem(t, g, quantum.DefaultParams())
		base, err := SolveOptimal(p)
		if err != nil {
			continue // users disconnected: nothing to compare
		}

		phase1 := func() (*quantum.Ledger, *unionfind.UnionFind, quantum.Tree) {
			idx := make(map[graph.NodeID]int, users)
			for i, u := range p.Users {
				idx[u] = i
			}
			cands := make([]candidate, 0, len(base.Tree.Channels))
			for _, ch := range base.Tree.Channels {
				a, b := ch.Endpoints()
				cands = append(cands, candidate{ch: ch, ia: idx[a], ib: idx[b]})
			}
			sortByRateDesc(cands)
			led := quantum.NewLedger(g)
			uf := unionfind.New(users)
			tree := quantum.Tree{}
			for _, c := range cands {
				if uf.Connected(c.ia, c.ib) || !led.CanCarry(c.ch.Nodes) {
					continue
				}
				if err := led.Reserve(c.ch.Nodes); err != nil {
					t.Fatalf("net %d: phase-1 reserve: %v", n, err)
				}
				uf.Union(c.ia, c.ib)
				tree.Channels = append(tree.Channels, c.ch)
			}
			return led, uf, tree
		}

		led, uf, lazyTree := phase1()
		lazyErr := p.connectUnions(context.Background(), led, uf, &lazyTree, "alg3-lazy", nil)
		led, uf, exTree := phase1()
		exErr := p.connectUnionsExhaustive(context.Background(), led, uf, &exTree, "alg3-exhaustive", nil)

		if (lazyErr == nil) != (exErr == nil) {
			t.Fatalf("net %d: feasibility differs: lazy err %v, exhaustive err %v", n, lazyErr, exErr)
		}
		if lazyErr != nil {
			continue
		}
		sameTreeDiff(t, fmt.Sprintf("net %d", n), lazyTree, exTree)
	}
}

// solvePrimExhaustive is Algorithm 4 driven by the exhaustive frontier
// sweep, the pre-incremental behavior the lazy path must reproduce.
func solvePrimExhaustive(t *testing.T, p *Problem, start int, st *SolveStats) (quantum.Tree, error) {
	t.Helper()
	led := quantum.NewLedger(p.Graph)
	inTree := make([]bool, len(p.Users))
	inTree[start] = true
	tree := quantum.Tree{}
	for committed := 0; committed < len(p.Users)-1; committed++ {
		best, ok, err := p.bestFrontierChannelExhaustive(context.Background(), led, inTree, st)
		if err != nil {
			return quantum.Tree{}, err
		}
		if !ok {
			return quantum.Tree{}, ErrInfeasible
		}
		if err := led.Reserve(best.ch.Nodes); err != nil {
			t.Fatalf("exhaustive prim reserve: %v", err)
		}
		inTree[best.ib] = true
		tree.Channels = append(tree.Channels, best.ch)
	}
	return tree, nil
}

// TestPrimLazyMatchesExhaustive differentially checks the incremental
// frontier search: for every starting user of randomized tight networks,
// Algorithm 4's lazy loop must commit the exact channels of the exhaustive
// per-round sweep.
func TestPrimLazyMatchesExhaustive(t *testing.T) {
	const networks = 50
	rng := rand.New(rand.NewSource(23))
	var lazyTotal, exTotal int64
	for n := 0; n < networks; n++ {
		users := 4 + rng.Intn(6)
		g := randomNet(rng, users, 10+rng.Intn(20), 2+2*rng.Intn(2))
		p := mustProblem(t, g, quantum.DefaultParams())
		for start := 0; start < users; start++ {
			var lazyStats, exStats SolveStats
			sol, lazyErr := solvePrimFrom(context.Background(), p, start, &lazyStats)
			exTree, exErr := solvePrimExhaustive(t, p, start, &exStats)
			if (lazyErr == nil) != (exErr == nil) {
				t.Fatalf("net %d start %d: feasibility differs: lazy err %v, exhaustive err %v",
					n, start, lazyErr, exErr)
			}
			if lazyErr != nil {
				continue
			}
			sameTreeDiff(t, fmt.Sprintf("net %d start %d", n, start), sol.Tree, exTree)
			// Per-instance the lazy path never searches more; tiny nets can
			// tie (4 users: both do 6 runs), so strict savings are asserted
			// in aggregate below.
			if lazyStats.DijkstraRuns > exStats.DijkstraRuns {
				t.Errorf("net %d start %d: lazy searches %d exceed exhaustive %d",
					n, start, lazyStats.DijkstraRuns, exStats.DijkstraRuns)
			}
			lazyTotal += lazyStats.DijkstraRuns
			exTotal += exStats.DijkstraRuns
		}
	}
	if lazyTotal >= exTotal {
		t.Errorf("aggregate lazy searches %d not below exhaustive %d", lazyTotal, exTotal)
	}
}

// TestIncrementalStatsCounters checks the new SolveStats plumbing: solves
// through the lazy layer must report cache hits for every committed channel,
// searches saved relative to the exhaustive sweep, and the counters must
// survive Merge/Snapshot/String.
func TestIncrementalStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomNet(rng, 8, 30, 4)
	p := mustProblem(t, g, quantum.DefaultParams())
	var st SolveStats
	sol, err := SolvePrimContext(context.Background(), p, &SolveOptions{Stats: &st})
	if err != nil {
		t.Fatalf("SolvePrimContext: %v", err)
	}
	committed := int64(len(sol.Tree.Channels))
	if st.CacheHits != committed {
		t.Errorf("CacheHits = %d, want one per committed channel (%d)", st.CacheHits, committed)
	}
	if st.SearchesSaved <= 0 {
		t.Errorf("SearchesSaved = %d, want > 0 on an 8-user Prim solve", st.SearchesSaved)
	}
	exhaustiveEquivalent := st.DijkstraRuns + st.SearchesSaved
	want := int64(len(p.Users)-1) * int64(len(p.Users)) / 2
	if exhaustiveEquivalent != want {
		t.Errorf("DijkstraRuns+SearchesSaved = %d, want the exhaustive sweep's %d", exhaustiveEquivalent, want)
	}

	var merged SolveStats
	merged.Merge(&st)
	if merged.CacheHits != st.CacheHits || merged.CacheInvalidations != st.CacheInvalidations ||
		merged.SearchesSaved != st.SearchesSaved {
		t.Errorf("Merge dropped cache counters: %+v vs %+v", merged, st)
	}
	snap := st.Snapshot()
	if snap.CacheHits != st.CacheHits || snap.SearchesSaved != st.SearchesSaved {
		t.Errorf("Snapshot dropped cache counters: %+v vs %+v", snap, st)
	}
	for _, want := range []string{"cache=", "saved="} {
		if s := snap.String(); !containsSub(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCandCacheRebuildsAfterRelease covers the generation-change path: a
// Release that reopens a switch between connectUnions rounds must not leave
// the cache serving stale candidates. ReconnectUnions is driven manually
// with a ledger the test mutates mid-flight via the exported API.
func TestCandCacheRebuildsAfterRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomNet(rng, 6, 20, 2)
	p := mustProblem(t, g, quantum.DefaultParams())

	led := quantum.NewLedger(g)
	uf := unionfind.New(6)
	cache, err := p.newCandCache(context.Background(), led, crossUnionTargets{uf: uf}, nil)
	if err != nil {
		t.Fatalf("newCandCache: %v", err)
	}
	cand, ok, err := cache.best(context.Background(), nil)
	if err != nil || !ok {
		t.Fatalf("first best: ok=%v err=%v", ok, err)
	}
	if err := led.Reserve(cand.ch.Nodes); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	uf.Union(cand.ia, cand.ib)
	// Re-seed the consumed source, as the production loops do after a commit.
	if err := cache.add(context.Background(), cand.ia, nil); err != nil {
		t.Fatalf("add: %v", err)
	}

	// Undo the reservation: with 2-qubit switches every interior switch
	// reopens, bumping the ledger generation and invalidating all epochs.
	led.Release(cand.ch.Nodes)
	if len(cand.ch.Nodes) > 2 {
		if _, ok := led.ClosedSince(quantum.Epoch{}); ok {
			t.Fatal("Release through a closure did not change the ledger generation")
		}
	}

	// The cache must rebuild and still agree with a from-scratch exhaustive
	// sweep under the current (restored) ledger and merged unions.
	got, ok, err := cache.best(context.Background(), nil)
	if err != nil || !ok {
		t.Fatalf("post-release best: ok=%v err=%v", ok, err)
	}
	want, ok, err := p.bestCrossUnionChannelExhaustive(context.Background(), led, uf, nil)
	if err != nil || !ok {
		t.Fatalf("exhaustive reference: ok=%v err=%v", ok, err)
	}
	if got.ch.Rate != want.ch.Rate || got.ia != want.ia || got.ib != want.ib {
		t.Fatalf("post-release candidate differs: lazy (%d,%d,%v), exhaustive (%d,%d,%v)",
			got.ia, got.ib, got.ch.Rate, want.ia, want.ib, want.ch.Rate)
	}
}
