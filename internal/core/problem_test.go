package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

func TestNewProblemValidation(t *testing.T) {
	g := fourUserNet(t)
	p := quantum.DefaultParams()
	tests := []struct {
		name    string
		g       *graph.Graph
		users   []graph.NodeID
		params  quantum.Params
		wantErr error
	}{
		{"ok", g, []graph.NodeID{0, 1}, p, nil},
		{"nil graph", nil, []graph.NodeID{0}, p, nil}, // any error accepted
		{"no users", g, nil, p, ErrNoUsers},
		{"switch as user", g, []graph.NodeID{4}, p, ErrNotAUser},
		{"unknown node", g, []graph.NodeID{99}, p, ErrNotAUser},
		{"duplicate user", g, []graph.NodeID{0, 0}, p, ErrDupUser},
		{"bad params", g, []graph.NodeID{0}, quantum.Params{}, quantum.ErrBadParams},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewProblem(tc.g, tc.users, tc.params)
			if tc.name == "ok" {
				if err != nil {
					t.Fatalf("NewProblem: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid problem accepted")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestNewProblemCopiesUsers(t *testing.T) {
	g := fourUserNet(t)
	users := []graph.NodeID{0, 1}
	p, err := NewProblem(g, users, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	users[0] = 99
	if p.Users[0] != 0 {
		t.Fatal("problem shares the caller's user slice")
	}
}

func TestAllUsersProblem(t *testing.T) {
	g := fourUserNet(t)
	p, err := AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Users) != 4 {
		t.Fatalf("got %d users, want 4", len(p.Users))
	}
}

func TestSufficientCapacity(t *testing.T) {
	g := fourUserNet(t) // 4 users; switches have 16 >= 8 qubits
	p := mustProblem(t, g, quantum.DefaultParams())
	if !p.SufficientCapacity() {
		t.Fatal("16-qubit switches should satisfy Q >= 2|U| = 8")
	}
	g.SetQubits(4, 7)
	if p.SufficientCapacity() {
		t.Fatal("7-qubit switch passes Q >= 8")
	}
}

func TestSolutionRateAndMeasurementFactor(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	sol, err := SolveOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	base := sol.Tree.Rate()
	if !rateClose(sol.Rate(), base) {
		t.Fatalf("factor-1 Rate %g != tree rate %g", sol.Rate(), base)
	}
	// Zero factor is treated as unset (1), so a zero-valued Solution
	// literal behaves sanely.
	sol.MeasurementFactor = 0
	if !rateClose(sol.Rate(), base) {
		t.Fatalf("factor-0 Rate %g != tree rate %g", sol.Rate(), base)
	}
	sol.MeasurementFactor = 0.5
	if !rateClose(sol.Rate(), base/2) {
		t.Fatalf("factor-0.5 Rate %g != %g", sol.Rate(), base/2)
	}
	if math.Abs(sol.LogRate()-math.Log(base/2)) > 1e-9 {
		t.Fatalf("LogRate %g != ln(rate) %g", sol.LogRate(), math.Log(base/2))
	}
}

func TestProblemValidateRejectsNil(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	if err := p.Validate(nil); err == nil {
		t.Fatal("nil solution accepted")
	}
}

func TestSolverAdapters(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	for _, s := range []Solver{Optimal(), ConflictFree(), Prim(0), Prim(11)} {
		sol, err := s.Solve(context.Background(), p, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sol.Algorithm != s.Name() {
			t.Errorf("solution algorithm %q != solver name %q", sol.Algorithm, s.Name())
		}
		if err := p.Validate(sol); err != nil {
			t.Errorf("%s produced invalid tree: %v", s.Name(), err)
		}
	}
}
