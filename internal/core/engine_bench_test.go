package core

import (
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// benchProblem draws one paper-sized network (10 users, 100 switches) the
// way the figure sweeps do, sized like topology.Default but without the
// import cycle a topology dependency would create here.
func benchEngineProblem(b *testing.B) *Problem {
	b.Helper()
	g := randomNetB(rand.New(rand.NewSource(1)), 10, 100, 12)
	p, err := AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// randomNetB is randomNet for benchmarks (testing.B instead of testing.T).
func randomNetB(rng *rand.Rand, users, switches, qubits int) *graph.Graph {
	n := users + switches
	g := graph.New(n, 2*n)
	for i := 0; i < users; i++ {
		g.AddUser(rng.Float64()*5000, rng.Float64()*5000)
	}
	for i := 0; i < switches; i++ {
		g.AddSwitch(rng.Float64()*5000, rng.Float64()*5000, qubits)
	}
	length := func(a, b graph.NodeID) float64 {
		na, nb := g.Node(a), g.Node(b)
		dx, dy := na.X-nb.X, na.Y-nb.Y
		l := dx*dx + dy*dy
		if l < 1 {
			return 1
		}
		return l
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := graph.NodeID(perm[i])
		c := graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, c, length(a, c))
	}
	for i := 0; i < 3*n; i++ {
		a := graph.NodeID(rng.Intn(n))
		c := graph.NodeID(rng.Intn(n))
		if a == c || g.HasEdge(a, c) {
			continue
		}
		g.MustAddEdge(a, c, length(a, c))
	}
	return g
}

// BenchmarkChannelSearch times one single-source Algorithm 1 run plus
// channel extraction to every destination user — the kernel every routing
// scheme reduces to.
//
// "legacy" reconstructs the pre-engine implementation (fresh Dijkstra
// arrays and heap per search, closure-evaluated weights, append-grown
// paths); "pooled" is the production kernel (per-problem weight slice,
// reused scratch). The gap between the two is the PR's headline number,
// tracked in BENCH_kernel.json.
func BenchmarkChannelSearch(b *testing.B) {
	p := benchEngineProblem(b)
	src := p.Users[0]

	b.Run("legacy", func(b *testing.B) {
		weight := func(e graph.Edge) (float64, bool) {
			return p.Params.EdgeWeight(e.Length), true
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := p.Graph.Dijkstra(src, weight, staticTransit)
			found := 0
			for _, u := range p.Users {
				if u == src {
					continue
				}
				if path, ok := sp.PathTo(u); ok {
					if _, err := quantum.NewChannel(p.Graph, path, p.Params); err != nil {
						b.Fatal(err)
					}
					found++
				}
			}
			if found == 0 {
				b.Fatal("no channels found")
			}
		}
	})

	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := p.acquireCtx(nil)
			sp := p.channelSearch(sc, src, nil, nil)
			found := 0
			for _, u := range p.Users {
				if u == src {
					continue
				}
				if _, ok := p.channelFromSearch(sc, sp, u, nil); ok {
					found++
				}
			}
			p.releaseCtx(sc)
			if found == 0 {
				b.Fatal("no channels found")
			}
		}
	})

	// The bare search, no channel extraction: the zero-allocation floor.
	b.Run("kernel", func(b *testing.B) {
		sc := p.acquireCtx(nil)
		defer p.releaseCtx(sc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := p.channelSearch(sc, src, nil, nil)
			if _, ok := sp.DistTo(p.Users[1]); !ok {
				b.Fatal("user 1 unreachable")
			}
		}
	})
}

// BenchmarkAllPairsChannels times Algorithm 2 step 1 sequentially and with
// the parallel fan-out.
func BenchmarkAllPairsChannels(b *testing.B) {
	p := benchEngineProblem(b)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cands, err := p.allPairsChannelsParallel(nil, 1, nil); err != nil || len(cands) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cands, err := p.allPairsChannels(nil, nil); err != nil || len(cands) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}
