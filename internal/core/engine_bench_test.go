package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// benchProblem draws one paper-sized network (10 users, 100 switches) the
// way the figure sweeps do, sized like topology.Default but without the
// import cycle a topology dependency would create here.
func benchEngineProblem(b *testing.B) *Problem {
	b.Helper()
	g := randomNetB(rand.New(rand.NewSource(1)), 10, 100, 12)
	p, err := AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// randomNetB is randomNet for benchmarks (testing.B instead of testing.T).
func randomNetB(rng *rand.Rand, users, switches, qubits int) *graph.Graph {
	n := users + switches
	g := graph.New(n, 2*n)
	for i := 0; i < users; i++ {
		g.AddUser(rng.Float64()*5000, rng.Float64()*5000)
	}
	for i := 0; i < switches; i++ {
		g.AddSwitch(rng.Float64()*5000, rng.Float64()*5000, qubits)
	}
	length := func(a, b graph.NodeID) float64 {
		na, nb := g.Node(a), g.Node(b)
		dx, dy := na.X-nb.X, na.Y-nb.Y
		l := dx*dx + dy*dy
		if l < 1 {
			return 1
		}
		return l
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := graph.NodeID(perm[i])
		c := graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, c, length(a, c))
	}
	for i := 0; i < 3*n; i++ {
		a := graph.NodeID(rng.Intn(n))
		c := graph.NodeID(rng.Intn(n))
		if a == c || g.HasEdge(a, c) {
			continue
		}
		g.MustAddEdge(a, c, length(a, c))
	}
	return g
}

// BenchmarkChannelSearch times one single-source Algorithm 1 run plus
// channel extraction to every destination user — the kernel every routing
// scheme reduces to.
//
// "legacy" reconstructs the pre-engine implementation (fresh Dijkstra
// arrays and heap per search, closure-evaluated weights, append-grown
// paths); "pooled" is the production kernel (per-problem weight slice,
// reused scratch). The gap between the two is the PR's headline number,
// tracked in BENCH_kernel.json.
func BenchmarkChannelSearch(b *testing.B) {
	p := benchEngineProblem(b)
	src := p.Users[0]

	b.Run("legacy", func(b *testing.B) {
		weight := func(e graph.Edge) (float64, bool) {
			return p.Params.EdgeWeight(e.Length), true
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := p.Graph.Dijkstra(src, weight, staticTransit)
			found := 0
			for _, u := range p.Users {
				if u == src {
					continue
				}
				if path, ok := sp.PathTo(u); ok {
					if _, err := quantum.NewChannel(p.Graph, path, p.Params); err != nil {
						b.Fatal(err)
					}
					found++
				}
			}
			if found == 0 {
				b.Fatal("no channels found")
			}
		}
	})

	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := p.acquireCtx(nil)
			sp := p.channelSearch(sc, src, nil, nil)
			found := 0
			for _, u := range p.Users {
				if u == src {
					continue
				}
				if _, ok := p.channelFromSearch(sc, sp, u, nil); ok {
					found++
				}
			}
			p.releaseCtx(sc)
			if found == 0 {
				b.Fatal("no channels found")
			}
		}
	})

	// The bare search, no channel extraction: the zero-allocation floor.
	b.Run("kernel", func(b *testing.B) {
		sc := p.acquireCtx(nil)
		defer p.releaseCtx(sc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := p.channelSearch(sc, src, nil, nil)
			if _, ok := sp.DistTo(p.Users[1]); !ok {
				b.Fatal("user 1 unreachable")
			}
		}
	})
}

// BenchmarkConnectUnions times the union-joining loop both heuristics
// reduce to, in its two production shapes — Algorithm 3's phase 2
// (unions pre-seeded by the phase-1 replay) and Algorithm 4 (the frontier
// grown from one start user) — with the incremental candidate cache
// ("lazy") against the pre-incremental per-round sweep ("exhaustive").
// The lazy/exhaustive gap is this PR's headline number, tracked in
// BENCH_kernel.json.
func BenchmarkConnectUnions(b *testing.B) {
	p := benchEngineProblem(b)
	ctx := context.Background()

	// The Algorithm 3 shape needs capacity pressure or phase 2 is a no-op:
	// at the default 12 qubits the replayed Algorithm 2 tree fits whole. Two
	// qubits per switch leaves 6 unions after phase 1 on this seed while
	// staying feasible.
	gTight := randomNetB(rand.New(rand.NewSource(1)), 10, 100, 2)
	pTight, err := AllUsersProblem(gTight, quantum.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	base, err := SolveOptimal(pTight)
	if err != nil {
		b.Fatal(err)
	}
	idx := make(map[graph.NodeID]int, len(pTight.Users))
	for i, u := range pTight.Users {
		idx[u] = i
	}
	cands := make([]candidate, 0, len(base.Tree.Channels))
	for _, ch := range base.Tree.Channels {
		a, bb := ch.Endpoints()
		cands = append(cands, candidate{ch: ch, ia: idx[a], ib: idx[bb]})
	}
	sortByRateDesc(cands)
	// Phase-1 state, rebuilt per iteration: the Algorithm 2 tree replayed in
	// descending-rate order under a fresh ledger, skipping conflicts.
	phase1 := func() (*quantum.Ledger, *unionfind.UnionFind, quantum.Tree) {
		led := quantum.NewLedger(pTight.Graph)
		uf := unionfind.New(len(pTight.Users))
		tree := quantum.Tree{}
		for _, c := range cands {
			if uf.Connected(c.ia, c.ib) || !led.CanCarry(c.ch.Nodes) {
				continue
			}
			if err := led.Reserve(c.ch.Nodes); err != nil {
				b.Fatal(err)
			}
			uf.Union(c.ia, c.ib)
			tree.Channels = append(tree.Channels, c.ch)
		}
		return led, uf, tree
	}
	if _, uf, _ := phase1(); uf.Sets() <= 1 {
		b.Fatal("phase 1 left nothing for phase 2 to do; tighten the network")
	}

	b.Run("alg3phase2/lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			led, uf, tree := phase1()
			if err := pTight.connectUnions(ctx, led, uf, &tree, "bench", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("alg3phase2/exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			led, uf, tree := phase1()
			if err := pTight.connectUnionsExhaustive(ctx, led, uf, &tree, "bench", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("alg4/lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solvePrimFrom(ctx, p, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("alg4/exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			led := quantum.NewLedger(p.Graph)
			inTree := make([]bool, len(p.Users))
			inTree[0] = true
			tree := quantum.Tree{}
			for committed := 0; committed < len(p.Users)-1; committed++ {
				best, ok, err := p.bestFrontierChannelExhaustive(ctx, led, inTree, nil)
				if err != nil || !ok {
					b.Fatalf("exhaustive prim: ok=%v err=%v", ok, err)
				}
				if err := led.Reserve(best.ch.Nodes); err != nil {
					b.Fatal(err)
				}
				inTree[best.ib] = true
				tree.Channels = append(tree.Channels, best.ch)
			}
		}
	})
}

// BenchmarkAllPairsChannels times Algorithm 2 step 1 sequentially and with
// the parallel fan-out.
func BenchmarkAllPairsChannels(b *testing.B) {
	p := benchEngineProblem(b)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cands, err := p.allPairsChannelsParallel(nil, 1, nil); err != nil || len(cands) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cands, err := p.allPairsChannels(nil, nil); err != nil || len(cands) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}
