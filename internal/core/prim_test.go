package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/quantum"
)

func TestSolvePrimBasic(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	sol, err := SolvePrim(p, nil)
	if err != nil {
		t.Fatalf("SolvePrim: %v", err)
	}
	if err := p.Validate(sol); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if sol.Algorithm != "alg4" {
		t.Errorf("Algorithm = %q, want alg4", sol.Algorithm)
	}
}

func TestSolvePrimMatchesOptimalWithAmpleCapacity(t *testing.T) {
	// When capacity never binds, Prim and Kruskal build the same maximum
	// spanning tree of the pairwise max-rate channel metric (it is unique
	// for distinct rates), so alg4 == alg2.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		g := randomNet(rng, 3+rng.Intn(3), 3+rng.Intn(4), 20)
		p := mustProblem(t, g, quantum.DefaultParams())
		opt, errOpt := SolveOptimal(p)
		prim, errPrim := SolvePrim(p, nil)
		if errOpt != nil || errPrim != nil {
			t.Fatalf("solve errors: %v, %v", errOpt, errPrim)
		}
		if !rateClose(opt.Rate(), prim.Rate()) {
			t.Fatalf("net %d: prim rate %g != optimal %g", i, prim.Rate(), opt.Rate())
		}
	}
}

func TestSolvePrimRespectsCapacity(t *testing.T) {
	g := bottleneckNet(t, 2)
	p := mustProblem(t, g, quantum.DefaultParams())
	sol, err := SolvePrim(p, nil)
	if err != nil {
		t.Fatalf("SolvePrim: %v", err)
	}
	if err := p.Validate(sol); err != nil {
		t.Fatalf("capacity-violating tree: %v", err)
	}
}

func TestSolvePrimStartIndependenceOfValidity(t *testing.T) {
	g := bottleneckNet(t, 2)
	p := mustProblem(t, g, quantum.DefaultParams())
	for start := range p.Users {
		sol, err := solvePrimFrom(context.Background(), p, start, nil)
		if err != nil {
			t.Fatalf("start %d: %v", start, err)
		}
		if err := p.Validate(sol); err != nil {
			t.Fatalf("start %d: invalid: %v", start, err)
		}
	}
}

func TestSolvePrimRandomStartUsesRng(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	// Same seed, same result.
	a, err := SolvePrim(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolvePrim(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !rateClose(a.Rate(), b.Rate()) {
		t.Fatalf("same seed produced different rates: %g vs %g", a.Rate(), b.Rate())
	}
}

func TestSolvePrimInfeasible(t *testing.T) {
	g := bottleneckNet(t, 2)
	g.SetQubits(4, 0) // remove the detour's capacity
	p := mustProblem(t, g, quantum.DefaultParams())
	_, err := SolvePrim(p, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestSolvePrimBadStart(t *testing.T) {
	g := fourUserNet(t)
	p := mustProblem(t, g, quantum.DefaultParams())
	if _, err := solvePrimFrom(context.Background(), p, -1, nil); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := solvePrimFrom(context.Background(), p, len(p.Users), nil); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

// TestQuickPrimProperties: on random capacity-limited nets, every alg4
// success validates and never beats the sufficient-capacity optimum.
func TestQuickPrimProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomNet(rng, 2+rng.Intn(4), 2+rng.Intn(5), 2+2*rng.Intn(2))
		p, err := AllUsersProblem(g, quantum.DefaultParams())
		if err != nil {
			return false
		}
		sol, err := SolvePrim(p, rng)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if p.Validate(sol) != nil {
			t.Logf("seed %d: invalid solution", seed)
			return false
		}
		boosted := g.Clone()
		boosted.SetAllSwitchQubits(2 * len(p.Users))
		bp, _ := AllUsersProblem(boosted, quantum.DefaultParams())
		opt, err := SolveOptimal(bp)
		if err != nil {
			return false
		}
		return sol.Rate() <= opt.Rate()*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
