// Package snapshot stores versioned, checksummed point-in-time state dumps
// for the durability layer (DESIGN.md §7). A snapshot is one JSON file
//
//	snap-<seq, 16 hex digits>.snap
//
// whose envelope carries a format version, the WAL sequence number the
// state covers (every record below Seq is folded in), the capture time,
// and a CRC32C over the raw state bytes. Writes are atomic: the file is
// staged under a temporary name in the same directory, fsynced, renamed
// into place, and the directory is fsynced — a reader (or a crash) never
// observes a half-written snapshot. Recovery loads the NEWEST snapshot
// that decodes and checksums cleanly, skipping damaged ones, so a crash
// mid-snapshot at worst costs some extra WAL replay, never correctness.
package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Version is the snapshot envelope format version written by Save.
const Version = 1

// Snapshot errors.
var (
	// ErrNoSnapshot reports that the directory holds no loadable snapshot.
	ErrNoSnapshot = errors.New("snapshot: no valid snapshot")
	// ErrCorrupt reports an envelope that decoded but failed validation
	// (bad CRC, wrong version). Latest skips such files; Load surfaces it.
	ErrCorrupt = errors.New("snapshot: corrupt snapshot")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// envelope is the on-disk frame around the caller's state document.
type envelope struct {
	Version int             `json:"version"`
	Seq     uint64          `json:"seq"`
	TakenAt time.Time       `json:"taken_at"`
	CRC32C  uint32          `json:"crc32c"`
	State   json.RawMessage `json:"state"`
}

// Meta describes one snapshot file.
type Meta struct {
	// Seq is the WAL sequence number the snapshot covers: recovery replays
	// records with seq >= Seq on top of it.
	Seq uint64
	// TakenAt is the capture time recorded by the writer.
	TakenAt time.Time
	// Path and Size locate the file on disk.
	Path string
	Size int64
}

const prefix, suffix = "snap-", ".snap"

func path(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", prefix, seq, suffix))
}

// Save atomically writes a snapshot of state covering WAL records [0, seq)
// and returns its metadata. state must marshal to JSON.
func Save(dir string, seq uint64, takenAt time.Time, state interface{}) (Meta, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Meta{}, err
	}
	raw, err := json.Marshal(state)
	if err != nil {
		return Meta{}, fmt.Errorf("snapshot: marshal state: %w", err)
	}
	env := envelope{
		Version: Version,
		Seq:     seq,
		TakenAt: takenAt,
		CRC32C:  crc32.Checksum(raw, castagnoli),
		State:   raw,
	}
	blob, err := json.Marshal(env)
	if err != nil {
		return Meta{}, fmt.Errorf("snapshot: marshal envelope: %w", err)
	}

	final := path(dir, seq)
	tmp, err := os.CreateTemp(dir, prefix+"*.tmp")
	if err != nil {
		return Meta{}, err
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(blob); err != nil {
		return Meta{}, err
	}
	if err := tmp.Sync(); err != nil {
		return Meta{}, err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return Meta{}, err
	}
	tmp = nil
	if err := os.Rename(name, final); err != nil {
		_ = os.Remove(name)
		return Meta{}, err
	}
	if err := syncDir(dir); err != nil {
		return Meta{}, err
	}
	return Meta{Seq: seq, TakenAt: takenAt, Path: final, Size: int64(len(blob))}, nil
}

// list returns the directory's snapshot files sorted by descending seq.
func list(dir string) ([]Meta, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	metas := make([]Meta, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		metas = append(metas, Meta{Seq: seq, Path: filepath.Join(dir, name), Size: info.Size()})
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Seq > metas[j].Seq })
	return metas, nil
}

// Load reads and validates one snapshot file, unmarshalling its state into
// out (which may be nil to validate only). It returns the file's metadata.
func Load(p string, out interface{}) (Meta, error) {
	blob, err := os.ReadFile(p)
	if err != nil {
		return Meta{}, err
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return Meta{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(p), err)
	}
	if env.Version != Version {
		return Meta{}, fmt.Errorf("%w: %s: version %d, want %d", ErrCorrupt, filepath.Base(p), env.Version, Version)
	}
	if crc32.Checksum(env.State, castagnoli) != env.CRC32C {
		return Meta{}, fmt.Errorf("%w: %s: state crc mismatch", ErrCorrupt, filepath.Base(p))
	}
	if out != nil {
		if err := json.Unmarshal(env.State, out); err != nil {
			return Meta{}, fmt.Errorf("%w: %s: state: %v", ErrCorrupt, filepath.Base(p), err)
		}
	}
	return Meta{Seq: env.Seq, TakenAt: env.TakenAt, Path: p, Size: int64(len(blob))}, nil
}

// Latest loads the newest valid snapshot in dir into out, skipping files
// that fail to decode or checksum. ok is false when no valid snapshot
// exists (an empty or missing directory is not an error).
func Latest(dir string, out interface{}) (Meta, bool, error) {
	metas, err := list(dir)
	if err != nil {
		return Meta{}, false, err
	}
	for _, m := range metas {
		loaded, err := Load(m.Path, out)
		if err == nil {
			return loaded, true, nil
		}
		if !errors.Is(err, ErrCorrupt) {
			return Meta{}, false, err
		}
		// Corrupt snapshot (torn by a crash mid-write before the atomic
		// rename discipline, or bit rot): fall back to the next newest.
	}
	return Meta{}, false, nil
}

// Prune deletes all but the keep newest snapshot files.
func Prune(dir string, keep int) error {
	metas, err := list(dir)
	if err != nil {
		return err
	}
	for i, m := range metas {
		if i < keep {
			continue
		}
		if err := os.Remove(m.Path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	return d.Sync()
}
