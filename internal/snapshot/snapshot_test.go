package snapshot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type state struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	at := time.Unix(1700000000, 123456789)
	m, err := Save(dir, 42, at, state{Name: "alpha", Count: 7})
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if m.Seq != 42 || m.Size == 0 {
		t.Fatalf("meta = %+v", m)
	}
	var got state
	loaded, err := Load(m.Path, &got)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Seq != 42 || !loaded.TakenAt.Equal(at) {
		t.Fatalf("loaded meta = %+v", loaded)
	}
	if got.Name != "alpha" || got.Count != 7 {
		t.Fatalf("state = %+v", got)
	}
}

func TestLatestPicksNewestValidAndSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	for i, s := range []state{{"one", 1}, {"two", 2}, {"three", 3}} {
		if _, err := Save(dir, uint64(10*(i+1)), time.Unix(int64(i), 0), s); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	var got state
	m, ok, err := Latest(dir, &got)
	if err != nil || !ok || m.Seq != 30 || got.Name != "three" {
		t.Fatalf("Latest: meta %+v ok %v err %v state %+v", m, ok, err, got)
	}

	// Corrupt the newest: Latest must fall back to the second newest.
	b, err := os.ReadFile(m.Path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(m.Path, b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	m, ok, err = Latest(dir, &got)
	if err != nil || !ok || m.Seq != 20 || got.Name != "two" {
		t.Fatalf("Latest after corruption: meta %+v ok %v err %v state %+v", m, ok, err, got)
	}

	// Truncate the second newest mid-file (a torn write): fall back again.
	if err := os.WriteFile(m.Path, b[:10], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	m, ok, err = Latest(dir, &got)
	if err != nil || !ok || m.Seq != 10 || got.Name != "one" {
		t.Fatalf("Latest after truncation: meta %+v ok %v err %v state %+v", m, ok, err, got)
	}
}

func TestLatestEmptyDir(t *testing.T) {
	if _, ok, err := Latest(t.TempDir(), nil); ok || err != nil {
		t.Fatalf("empty dir: ok %v err %v", ok, err)
	}
	if _, ok, err := Latest(filepath.Join(t.TempDir(), "missing"), nil); ok || err != nil {
		t.Fatalf("missing dir: ok %v err %v", ok, err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 5; i++ {
		if _, err := Save(dir, uint64(i), time.Unix(int64(i), 0), state{Count: i}); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	metas, err := list(dir)
	if err != nil || len(metas) != 2 {
		t.Fatalf("after prune: %d snapshots (%v)", len(metas), err)
	}
	if metas[0].Seq != 5 || metas[1].Seq != 4 {
		t.Fatalf("kept %d and %d, want 5 and 4", metas[0].Seq, metas[1].Seq)
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, 1, time.Unix(0, 0), state{}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Unmarshalable state: Save fails before staging anything.
	if _, err := Save(dir, 2, time.Unix(0, 0), func() {}); err == nil {
		t.Fatal("Save of unmarshalable state succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}
