package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSingletons(t *testing.T) {
	u := New(5)
	if got := u.Len(); got != 5 {
		t.Fatalf("Len() = %d, want 5", got)
	}
	if got := u.Sets(); got != 5 {
		t.Fatalf("Sets() = %d, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if got := u.Find(i); got != i {
			t.Errorf("Find(%d) = %d, want %d", i, got, i)
		}
	}
}

func TestNewEmpty(t *testing.T) {
	u := New(0)
	if u.Len() != 0 || u.Sets() != 0 {
		t.Fatalf("empty structure: Len=%d Sets=%d", u.Len(), u.Sets())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestUnionMergesAndReports(t *testing.T) {
	u := New(4)
	if !u.Union(0, 1) {
		t.Fatal("first Union(0,1) = false, want true")
	}
	if u.Union(0, 1) {
		t.Fatal("repeated Union(0,1) = true, want false")
	}
	if u.Union(1, 0) {
		t.Fatal("Union(1,0) after Union(0,1) = true, want false")
	}
	if got := u.Sets(); got != 3 {
		t.Fatalf("Sets() = %d, want 3", got)
	}
}

func TestConnectedTransitivity(t *testing.T) {
	u := New(6)
	u.Union(0, 1)
	u.Union(2, 3)
	if u.Connected(0, 2) {
		t.Fatal("disjoint unions reported connected")
	}
	u.Union(1, 2)
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !u.Connected(pair[0], pair[1]) {
			t.Errorf("Connected(%d,%d) = false after chain unions", pair[0], pair[1])
		}
	}
	if u.Connected(0, 4) {
		t.Fatal("untouched element connected to a union")
	}
}

func TestSameSet(t *testing.T) {
	u := New(5)
	u.Union(0, 1)
	u.Union(1, 2)
	tests := []struct {
		name string
		xs   []int
		want bool
	}{
		{"empty", nil, true},
		{"single", []int{3}, true},
		{"whole union", []int{0, 1, 2}, true},
		{"mixed", []int{0, 1, 3}, false},
		{"two singletons", []int{3, 4}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := u.SameSet(tc.xs...); got != tc.want {
				t.Errorf("SameSet(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestFindOutOfRangePanics(t *testing.T) {
	u := New(3)
	for _, x := range []int{-1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Find(%d) did not panic", x)
				}
			}()
			u.Find(x)
		}()
	}
}

func TestSetsCountsMatchesComponents(t *testing.T) {
	u := New(10)
	// Build {0..4} and {5,6}; leave 7,8,9 singletons.
	for i := 0; i < 4; i++ {
		u.Union(i, i+1)
	}
	u.Union(5, 6)
	// {0..4}, {5,6} and the three singletons 7, 8, 9.
	if got := u.Sets(); got != 5 {
		t.Fatalf("Sets() = %d, want 5", got)
	}
}

// naiveUF is an O(n) reference implementation used by the property test.
type naiveUF struct{ label []int }

func newNaive(n int) *naiveUF {
	l := make([]int, n)
	for i := range l {
		l[i] = i
	}
	return &naiveUF{label: l}
}

func (n *naiveUF) union(a, b int) {
	la, lb := n.label[a], n.label[b]
	if la == lb {
		return
	}
	for i, l := range n.label {
		if l == lb {
			n.label[i] = la
		}
	}
}

func (n *naiveUF) connected(a, b int) bool { return n.label[a] == n.label[b] }

func (n *naiveUF) sets() int {
	seen := map[int]bool{}
	for _, l := range n.label {
		seen[l] = true
	}
	return len(seen)
}

// TestQuickAgainstNaive drives random union sequences through both the real
// structure and a brute-force labeling, checking that connectivity and set
// counts agree everywhere.
func TestQuickAgainstNaive(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		ops := int(opsRaw%64) + 1
		u := New(n)
		ref := newNaive(n)
		for i := 0; i < ops; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			merged := u.Union(a, b)
			wasConnected := ref.connected(a, b)
			ref.union(a, b)
			if merged == wasConnected {
				t.Logf("Union(%d,%d) merged=%v but naive connected=%v", a, b, merged, wasConnected)
				return false
			}
		}
		if u.Sets() != ref.sets() {
			t.Logf("Sets %d != naive %d", u.Sets(), ref.sets())
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if u.Connected(a, b) != ref.connected(a, b) {
					t.Logf("Connected(%d,%d) disagrees with naive", a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
