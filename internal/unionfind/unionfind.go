// Package unionfind provides a disjoint-set (union-find) data structure
// with path compression and union by rank.
//
// It is the connectivity substrate used by the MUERP routing algorithms
// (Algorithms 2 and 3 of the paper) to track which quantum users are already
// joined by committed quantum channels.
package unionfind

import "fmt"

// UnionFind maintains a partition of the integers [0, n) into disjoint sets.
//
// The zero value is not usable; construct with New. All methods panic when
// given an element outside [0, n): indices are internal identifiers produced
// by the caller, so an out-of-range element is a programming error, not a
// runtime condition to handle.
type UnionFind struct {
	parent []int
	rank   []byte
	sets   int
}

// New returns a UnionFind over n singleton sets {0}, {1}, ..., {n-1}.
func New(n int) *UnionFind {
	if n < 0 {
		panic(fmt.Sprintf("unionfind: negative size %d", n))
	}
	u := &UnionFind{
		parent: make([]int, n),
		rank:   make([]byte, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Len returns the number of elements the structure was built over.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Find returns the canonical representative of x's set, compressing paths
// along the way.
func (u *UnionFind) Find(x int) int {
	u.check(x)
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets containing x and y. It reports whether a merge
// happened (false when x and y were already in the same set).
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (u *UnionFind) Connected(x, y int) bool {
	return u.Find(x) == u.Find(y)
}

// SameSet reports whether every element of xs is in one set. It is true for
// empty and single-element inputs.
func (u *UnionFind) SameSet(xs ...int) bool {
	if len(xs) <= 1 {
		return true
	}
	root := u.Find(xs[0])
	for _, x := range xs[1:] {
		if u.Find(x) != root {
			return false
		}
	}
	return true
}

func (u *UnionFind) check(x int) {
	if x < 0 || x >= len(u.parent) {
		panic(fmt.Sprintf("unionfind: element %d out of range [0, %d)", x, len(u.parent)))
	}
}
