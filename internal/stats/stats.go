// Package stats provides the small set of descriptive statistics the
// experiment harness reports: means, deviations, confidence intervals and
// order statistics over per-network entanglement rates (where infeasible
// runs count as zero, per the paper's setup).
package stats

import (
	"math"
	"sort"
)

// Summary aggregates a sample of observations.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64 // sample standard deviation (n-1)
	Min, Max float64
	Median   float64
	// GeoMean is the geometric mean of the positive observations; it is 0
	// when no observation is positive. Entanglement rates span orders of
	// magnitude, so the geometric mean is the meaningful central tendency
	// alongside the paper's arithmetic average.
	GeoMean float64
	// Zeros counts observations equal to zero (infeasible routing runs).
	Zeros int
}

// Summarize computes a Summary over xs. It returns the zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	logSum, positives := 0.0, 0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x == 0 {
			s.Zeros++
		}
		if x > 0 {
			logSum += math.Log(x)
			positives++
		}
	}
	s.Mean = sum / float64(len(xs))
	if positives > 0 {
		s.GeoMean = math.Exp(logSum / float64(positives))
	}
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean of the summarized sample (1.96 * stderr). It is 0
// for samples smaller than 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// Mean returns the arithmetic mean of xs, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
