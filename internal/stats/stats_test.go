package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.Min != 3 || s.Max != 3 || s.Median != 3 {
		t.Fatalf("single summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatalf("CI95 of single sample = %g, want 0", s.CI95())
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if !almost(s.Mean, 5) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	// Sample std dev of this classic sample is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almost(s.StdDev, want) {
		t.Errorf("StdDev = %g, want %g", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", s.Min, s.Max)
	}
	if !almost(s.Median, 4.5) {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
	if s.Zeros != 0 {
		t.Errorf("Zeros = %d, want 0", s.Zeros)
	}
}

func TestSummarizeZerosAndGeoMean(t *testing.T) {
	// Entanglement-rate style sample: two infeasible runs score 0.
	xs := []float64{0, 1e-2, 1e-4, 0}
	s := Summarize(xs)
	if s.Zeros != 2 {
		t.Fatalf("Zeros = %d, want 2", s.Zeros)
	}
	// Geometric mean over positives only: sqrt(1e-2 * 1e-4) = 1e-3.
	if !almost(s.GeoMean, 1e-3) {
		t.Fatalf("GeoMean = %g, want 1e-3", s.GeoMean)
	}
	if !almost(s.Mean, (1e-2+1e-4)/4) {
		t.Fatalf("Mean = %g", s.Mean)
	}
}

func TestSummarizeAllZeros(t *testing.T) {
	s := Summarize([]float64{0, 0, 0})
	if s.GeoMean != 0 {
		t.Fatalf("GeoMean of zeros = %g, want 0", s.GeoMean)
	}
	if s.Zeros != 3 {
		t.Fatalf("Zeros = %d, want 3", s.Zeros)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
		{-1, 1},
		{2, 4},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almost(got, tc.want) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %g, want 0", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
}

// TestQuickSummaryInvariants checks order and bound invariants over random
// samples: Min <= GeoMean-over-positives, Median, Mean <= Max; Zeros counts
// exactly; CI95 shrinks with n.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		zeros := 0
		for i := range xs {
			if rng.Float64() < 0.2 {
				zeros++
			} else {
				xs[i] = rng.Float64()
			}
		}
		s := Summarize(xs)
		if s.N != n || s.Zeros != zeros {
			return false
		}
		if s.Min > s.Median+1e-12 || s.Median > s.Max+1e-12 {
			return false
		}
		if s.Mean < s.Min-1e-12 || s.Mean > s.Max+1e-12 {
			return false
		}
		if s.GeoMean > 0 && (s.GeoMean > s.Max+1e-12) {
			return false
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
