// Package purify implements recurrence entanglement purification
// (BBPSSW, Bennett et al. 1996) over Werner states, the standard mechanism
// the fidelity-aware routing literature (e.g. the paper's reference [18])
// uses to trade entanglement *rate* for entanglement *fidelity*: two noisy
// Bell pairs are consumed to probabilistically distill one better pair.
//
// Combined with internal/fidelity, this answers the practical question a
// fidelity floor raises: when no single channel reaches the floor, how many
// purification rounds (and how much rate) does it take to get there?
package purify

import (
	"errors"
	"fmt"
	"math"
)

// Purification errors.
var (
	ErrBadFidelity = errors.New("purify: fidelity must be in (0.5, 1] for purification to help")
	ErrUnreachable = errors.New("purify: target fidelity unreachable by recurrence")
	ErrBadRounds   = errors.New("purify: negative round count")
	ErrBadTarget   = errors.New("purify: target fidelity out of (0, 1]")
	errNotProbable = errors.New("purify: internal: success probability out of range")
)

// Step applies one BBPSSW recurrence round to two Werner pairs of fidelity
// f, returning the output fidelity and the success probability:
//
//	F' = (F² + ((1-F)/3)²) / P,   P = F² + 2F(1-F)/3 + 5((1-F)/3)²
//
// Purification only improves pairs with F > 1/2; lower inputs are rejected.
func Step(f float64) (fOut, pSucc float64, err error) {
	if !(f > 0.5 && f <= 1) {
		return 0, 0, fmt.Errorf("%w: got %g", ErrBadFidelity, f)
	}
	bad := (1 - f) / 3
	pSucc = f*f + 2*f*bad + 5*bad*bad
	fOut = (f*f + bad*bad) / pSucc
	if pSucc <= 0 || pSucc > 1 {
		return 0, 0, fmt.Errorf("%w: %g", errNotProbable, pSucc)
	}
	return fOut, pSucc, nil
}

// StepPair applies one BBPSSW round to two Werner pairs of *different*
// fidelities f1 and f2, the situation the slotted simulator faces when a
// freshly swapped pair is distilled against an older, decohered one:
//
//	P  = F1F2 + F1(1-F2)/3 + F2(1-F1)/3 + 5(1-F1)(1-F2)/9
//	F' = (F1F2 + (1-F1)(1-F2)/9) / P
//
// It reduces to Step when f1 == f2. Both inputs must exceed 1/2 for the
// round to be worthwhile; lower inputs are rejected.
func StepPair(f1, f2 float64) (fOut, pSucc float64, err error) {
	if !(f1 > 0.5 && f1 <= 1) {
		return 0, 0, fmt.Errorf("%w: got %g", ErrBadFidelity, f1)
	}
	if !(f2 > 0.5 && f2 <= 1) {
		return 0, 0, fmt.Errorf("%w: got %g", ErrBadFidelity, f2)
	}
	b1, b2 := (1-f1)/3, (1-f2)/3
	pSucc = f1*f2 + f1*b2 + f2*b1 + 5*b1*b2
	fOut = (f1*f2 + b1*b2) / pSucc
	if pSucc <= 0 || pSucc > 1 {
		return 0, 0, fmt.Errorf("%w: %g", errNotProbable, pSucc)
	}
	return fOut, pSucc, nil
}

// Result summarizes a recurrence schedule.
type Result struct {
	// Rounds is the number of recurrence levels applied.
	Rounds int
	// Fidelity is the output fidelity after the schedule.
	Fidelity float64
	// ExpectedPairs is the expected number of raw input pairs consumed per
	// distilled output pair: E_0 = 1, E_k = 2*E_{k-1}/p_k (failed rounds
	// discard both inputs and retry).
	ExpectedPairs float64
}

// RateFactor returns the multiplicative rate cost of the schedule: the
// distilled pair rate is the raw rate divided by ExpectedPairs.
func (r Result) RateFactor() float64 {
	if r.ExpectedPairs == 0 {
		return 0
	}
	return 1 / r.ExpectedPairs
}

// Recurrence applies `rounds` BBPSSW levels starting from fidelity f.
// Round counts of zero return the input unchanged at cost 1.
func Recurrence(f float64, rounds int) (Result, error) {
	if rounds < 0 {
		return Result{}, fmt.Errorf("%w: %d", ErrBadRounds, rounds)
	}
	if rounds == 0 {
		if !(f > 0 && f <= 1) {
			return Result{}, fmt.Errorf("%w: got %g", ErrBadTarget, f)
		}
		return Result{Rounds: 0, Fidelity: f, ExpectedPairs: 1}, nil
	}
	res := Result{Fidelity: f, ExpectedPairs: 1}
	for k := 0; k < rounds; k++ {
		fOut, pSucc, err := Step(res.Fidelity)
		if err != nil {
			return Result{}, err
		}
		res.Fidelity = fOut
		res.ExpectedPairs = 2 * res.ExpectedPairs / pSucc
		res.Rounds++
	}
	return res, nil
}

// maxRounds bounds RoundsToReach's search; recurrence converges fast, so a
// schedule deeper than this is never worth its exponential pair cost.
const maxRounds = 32

// RoundsToReach returns the smallest recurrence schedule whose output
// fidelity is at least target, starting from fidelity f. It fails with
// ErrUnreachable when the recurrence plateaus below the target (the BBPSSW
// map's fixed point is 1, but convergence per round shrinks; practically a
// cap of 32 rounds detects stalls) and with ErrBadFidelity when f <= 0.5.
func RoundsToReach(f, target float64) (Result, error) {
	if !(target > 0 && target <= 1) {
		return Result{}, fmt.Errorf("%w: %g", ErrBadTarget, target)
	}
	if f >= target {
		return Result{Rounds: 0, Fidelity: f, ExpectedPairs: 1}, nil
	}
	if !(f > 0.5) {
		return Result{}, fmt.Errorf("%w: got %g", ErrBadFidelity, f)
	}
	res := Result{Fidelity: f, ExpectedPairs: 1}
	for res.Rounds < maxRounds {
		fOut, pSucc, err := Step(res.Fidelity)
		if err != nil {
			return Result{}, err
		}
		if fOut <= res.Fidelity+1e-15 {
			return Result{}, fmt.Errorf("%w: plateau at %g < %g", ErrUnreachable, res.Fidelity, target)
		}
		res.Fidelity = fOut
		res.ExpectedPairs = 2 * res.ExpectedPairs / pSucc
		res.Rounds++
		if res.Fidelity >= target {
			return res, nil
		}
	}
	return Result{}, fmt.Errorf("%w: %g after %d rounds, target %g", ErrUnreachable, res.Fidelity, maxRounds, target)
}

// PlanChannel decides the purification schedule for one routed quantum
// channel: given the channel's raw end-to-end fidelity and entanglement
// rate, it returns the schedule meeting the fidelity floor and the
// channel's effective (distilled) rate.
func PlanChannel(rawFidelity, rawRate, floor float64) (Result, float64, error) {
	if !(rawRate >= 0 && rawRate <= 1) || math.IsNaN(rawRate) {
		return Result{}, 0, fmt.Errorf("purify: raw rate %g out of [0,1]", rawRate)
	}
	res, err := RoundsToReach(rawFidelity, floor)
	if err != nil {
		return Result{}, 0, err
	}
	return res, rawRate * res.RateFactor(), nil
}
