package purify

import (
	"math"
	"testing"
)

// StepPair with equal inputs must agree exactly with the symmetric Step.
func TestStepPairMatchesStepOnEqualInputs(t *testing.T) {
	for _, f := range []float64{0.55, 0.7, 0.85, 0.99, 1} {
		fSym, pSym, err := Step(f)
		if err != nil {
			t.Fatalf("Step(%g): %v", f, err)
		}
		fPair, pPair, err := StepPair(f, f)
		if err != nil {
			t.Fatalf("StepPair(%g, %g): %v", f, f, err)
		}
		if math.Abs(fSym-fPair) > 1e-15 || math.Abs(pSym-pPair) > 1e-15 {
			t.Errorf("f=%g: StepPair = (%g, %g), Step = (%g, %g)", f, fPair, pPair, fSym, pSym)
		}
	}
}

// The asymmetric round is symmetric in its arguments and, when one input is
// strictly better, lands between the two symmetric rounds.
func TestStepPairSymmetryAndOrdering(t *testing.T) {
	f1, f2 := 0.92, 0.68
	fa, pa, err := StepPair(f1, f2)
	if err != nil {
		t.Fatalf("StepPair: %v", err)
	}
	fb, pb, err := StepPair(f2, f1)
	if err != nil {
		t.Fatalf("StepPair swapped: %v", err)
	}
	if fa != fb || pa != pb {
		t.Fatalf("StepPair not symmetric: (%g,%g) vs (%g,%g)", fa, pa, fb, pb)
	}
	lo, _, _ := Step(f2)
	hi, _, _ := Step(f1)
	if !(fa > lo && fa < hi) {
		t.Errorf("mixed round fidelity %g not between Step(%g)=%g and Step(%g)=%g", fa, f2, lo, f1, hi)
	}
	if !(pa > 0 && pa <= 1) {
		t.Errorf("success probability %g out of (0,1]", pa)
	}
}

// Known value: F1=0.9, F2=0.7 gives
// P = 0.63 + 0.09 + 0.7/30 + 5*0.1*0.3/9 = 0.76
// F' = (0.63 + 0.03*0.1) / 0.76 = 0.633/0.76.
func TestStepPairKnownValue(t *testing.T) {
	fOut, pSucc, err := StepPair(0.9, 0.7)
	if err != nil {
		t.Fatalf("StepPair: %v", err)
	}
	wantP := 0.9*0.7 + 0.9*0.1 + 0.7*(1.0/30) + 5*(1.0/30)*0.1
	wantF := (0.9*0.7 + (1.0/30)*0.1) / wantP
	if math.Abs(pSucc-wantP) > 1e-12 || math.Abs(fOut-wantF) > 1e-12 {
		t.Errorf("StepPair(0.9, 0.7) = (%g, %g), want (%g, %g)", fOut, pSucc, wantF, wantP)
	}
}

func TestStepPairRejectsLowFidelity(t *testing.T) {
	for _, pair := range [][2]float64{{0.5, 0.9}, {0.9, 0.5}, {0.3, 0.3}, {1.2, 0.9}, {0.9, 1.2}} {
		if _, _, err := StepPair(pair[0], pair[1]); err == nil {
			t.Errorf("StepPair(%g, %g) succeeded, want error", pair[0], pair[1])
		}
	}
}
