package purify

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStepKnownValue(t *testing.T) {
	// F = 0.7: bad = 0.1, P = 0.49 + 0.14 + 0.05 = 0.68,
	// F' = (0.49 + 0.01)/0.68 = 0.7352941...
	fOut, pSucc, err := Step(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pSucc-0.68) > 1e-12 {
		t.Errorf("pSucc = %g, want 0.68", pSucc)
	}
	if math.Abs(fOut-0.5/0.68) > 1e-12 {
		t.Errorf("fOut = %g, want %g", fOut, 0.5/0.68)
	}
}

func TestStepPerfectInput(t *testing.T) {
	fOut, pSucc, err := Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if fOut != 1 || pSucc != 1 {
		t.Fatalf("Step(1) = (%g, %g), want (1, 1)", fOut, pSucc)
	}
}

func TestStepRejectsLowFidelity(t *testing.T) {
	for _, f := range []float64{0.5, 0.3, 0, -1, 1.2} {
		if _, _, err := Step(f); !errors.Is(err, ErrBadFidelity) {
			t.Errorf("Step(%g) error = %v, want ErrBadFidelity", f, err)
		}
	}
}

// TestQuickStepImproves: one round strictly improves any F in (0.5, 1) and
// returns a valid probability.
func TestQuickStepImproves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fid := 0.5 + 1e-6 + rng.Float64()*(0.5-2e-6)
		fOut, pSucc, err := Step(fid)
		if err != nil {
			return false
		}
		return fOut > fid && fOut <= 1 && pSucc > 0 && pSucc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecurrence(t *testing.T) {
	res, err := Recurrence(0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("Rounds = %d", res.Rounds)
	}
	// Manual chain must agree.
	fid, pairs := 0.8, 1.0
	for i := 0; i < 3; i++ {
		fOut, p, err := Step(fid)
		if err != nil {
			t.Fatal(err)
		}
		fid = fOut
		pairs = 2 * pairs / p
	}
	if math.Abs(res.Fidelity-fid) > 1e-12 || math.Abs(res.ExpectedPairs-pairs) > 1e-9 {
		t.Fatalf("Recurrence = %+v, manual = (%g, %g)", res, fid, pairs)
	}
	// Pair cost at least doubles per round.
	if res.ExpectedPairs < 8 {
		t.Fatalf("ExpectedPairs = %g, want >= 8 for 3 rounds", res.ExpectedPairs)
	}
	if rf := res.RateFactor(); math.Abs(rf-1/res.ExpectedPairs) > 1e-15 {
		t.Fatalf("RateFactor = %g", rf)
	}
}

func TestRecurrenceZeroRounds(t *testing.T) {
	res, err := Recurrence(0.4, 0) // below 0.5 is fine when not purifying
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity != 0.4 || res.ExpectedPairs != 1 {
		t.Fatalf("zero-round result %+v", res)
	}
	if _, err := Recurrence(0.8, -1); !errors.Is(err, ErrBadRounds) {
		t.Fatalf("negative rounds error = %v", err)
	}
}

func TestRoundsToReach(t *testing.T) {
	res, err := RoundsToReach(0.8, 0.95)
	if err != nil {
		t.Fatalf("RoundsToReach: %v", err)
	}
	if res.Fidelity < 0.95 {
		t.Fatalf("reached %g < 0.95", res.Fidelity)
	}
	// Minimality: one fewer round must fall short.
	if res.Rounds == 0 {
		t.Fatal("expected at least one round")
	}
	prev, err := Recurrence(0.8, res.Rounds-1)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Fidelity >= 0.95 {
		t.Fatalf("%d rounds already reach the target (%g)", res.Rounds-1, prev.Fidelity)
	}
}

func TestRoundsToReachAlreadyThere(t *testing.T) {
	res, err := RoundsToReach(0.9, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.ExpectedPairs != 1 || res.Fidelity != 0.9 {
		t.Fatalf("no-op schedule = %+v", res)
	}
	// Works even below the purification threshold when no rounds needed.
	if _, err := RoundsToReach(0.4, 0.3); err != nil {
		t.Fatalf("already-satisfied low fidelity rejected: %v", err)
	}
}

func TestRoundsToReachRejections(t *testing.T) {
	if _, err := RoundsToReach(0.4, 0.9); !errors.Is(err, ErrBadFidelity) {
		t.Errorf("sub-threshold error = %v", err)
	}
	if _, err := RoundsToReach(0.8, 1.5); !errors.Is(err, ErrBadTarget) {
		t.Errorf("bad target error = %v", err)
	}
	// Target 1.0 exactly is unreachable from below in finitely many rounds.
	if _, err := RoundsToReach(0.9, 1); !errors.Is(err, ErrUnreachable) {
		t.Errorf("target-1 error = %v", err)
	}
}

// TestQuickRecurrenceMonotone: fidelity increases and pair cost grows
// monotonically in the round count.
func TestQuickRecurrenceMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fid := 0.55 + rng.Float64()*0.4
		rounds := 1 + rng.Intn(6)
		var prevF, prevP float64 = fid, 1
		for k := 1; k <= rounds; k++ {
			res, err := Recurrence(fid, k)
			if err != nil {
				return false
			}
			if res.Fidelity <= prevF-1e-15 || res.ExpectedPairs < 2*prevP-1e-9 {
				return false
			}
			prevF, prevP = res.Fidelity, res.ExpectedPairs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanChannel(t *testing.T) {
	res, effRate, err := PlanChannel(0.82, 0.4, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.95 {
		t.Fatalf("fidelity %g below floor", res.Fidelity)
	}
	want := 0.4 / res.ExpectedPairs
	if math.Abs(effRate-want) > 1e-12 {
		t.Fatalf("effective rate %g, want %g", effRate, want)
	}
	if effRate >= 0.4 {
		t.Fatal("purification cannot be free")
	}
	if _, _, err := PlanChannel(0.82, 1.5, 0.9); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, _, err := PlanChannel(0.45, 0.4, 0.9); err == nil {
		t.Error("sub-threshold fidelity accepted")
	}
}
