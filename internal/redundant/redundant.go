// Package redundant lifts the paper's "at most one quantum channel between
// one pair of quantum users" assumption (§II-D), the relaxation the paper
// itself flags as a natural extension: when switch capacity is left over, a
// user pair of the entanglement tree can hold several parallel channels,
// and the pair entangles if *any* of them comes up in the round.
//
// With channels C_1..C_k between a pair, the pair's success probability is
// 1 - prod_i (1 - P(C_i)), and the tree's rate remains the product over its
// pairs. Parallel channels consume independent qubit pairs, so they respect
// the same ledger; they may share fibers (multi-core, unlimited) and even
// the same path.
package redundant

import (
	"errors"
	"fmt"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// PairChannels is one tree edge: a user pair and its parallel channels.
type PairChannels struct {
	A, B     graph.NodeID
	Channels []quantum.Channel
}

// Rate returns the pair's any-channel success probability.
func (pc PairChannels) Rate() float64 {
	fail := 1.0
	for _, ch := range pc.Channels {
		fail *= 1 - ch.Rate
	}
	return 1 - fail
}

// Solution is a redundant entanglement tree.
type Solution struct {
	Pairs []PairChannels
}

// Rate returns the tree's entanglement rate: the product of pair rates.
func (s *Solution) Rate() float64 {
	rate := 1.0
	for _, pc := range s.Pairs {
		rate *= pc.Rate()
	}
	return rate
}

// Width returns the largest channel count on any pair.
func (s *Solution) Width() int {
	w := 0
	for _, pc := range s.Pairs {
		if len(pc.Channels) > w {
			w = len(pc.Channels)
		}
	}
	return w
}

// ErrBadWidth rejects non-positive width caps.
var ErrBadWidth = errors.New("redundant: maxWidth must be at least 1")

// Boost converts a single-channel tree into a redundant one: starting from
// base's channels (width 1), it greedily adds, while capacity remains and
// every pair is below maxWidth, the backup channel with the largest
// multiplicative gain to the tree rate. maxWidth = 1 returns base's tree
// unchanged (in redundant form).
func Boost(p *core.Problem, base *core.Solution, maxWidth int) (*Solution, error) {
	if base == nil {
		return nil, errors.New("redundant: nil base solution")
	}
	if maxWidth < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadWidth, maxWidth)
	}
	led := quantum.NewLedger(p.Graph)
	sol := &Solution{}
	for _, ch := range base.Tree.Channels {
		a, b := ch.Endpoints()
		if err := led.Reserve(ch.Nodes); err != nil {
			return nil, fmt.Errorf("redundant: base tree does not fit capacity: %w", err)
		}
		sol.Pairs = append(sol.Pairs, PairChannels{A: a, B: b, Channels: []quantum.Channel{ch}})
	}

	for {
		bestGain := 1.0
		bestPair := -1
		var bestCh quantum.Channel
		for i := range sol.Pairs {
			pc := &sol.Pairs[i]
			if len(pc.Channels) >= maxWidth {
				continue
			}
			ch, ok := p.MaxRateChannel(pc.A, pc.B, led, nil)
			if !ok {
				continue
			}
			old := pc.Rate()
			gain := (1 - (1-old)*(1-ch.Rate)) / old
			if gain > bestGain+1e-15 {
				bestGain = gain
				bestPair = i
				bestCh = ch
			}
		}
		if bestPair < 0 {
			return sol, nil
		}
		if err := led.Reserve(bestCh.Nodes); err != nil {
			panic(fmt.Sprintf("redundant: reserve after gated search: %v", err))
		}
		sol.Pairs[bestPair].Channels = append(sol.Pairs[bestPair].Channels, bestCh)
	}
}

// Validate checks a redundant solution: the pairs form a spanning tree over
// the users, every channel is a valid channel of the graph joining its
// pair, and the joint qubit load of all channels respects every switch.
func Validate(p *core.Problem, s *Solution) error {
	if s == nil {
		return errors.New("redundant: nil solution")
	}
	if len(s.Pairs) != len(p.Users)-1 {
		return fmt.Errorf("redundant: %d pairs for %d users", len(s.Pairs), len(p.Users))
	}
	idx := make(map[graph.NodeID]int, len(p.Users))
	for i, u := range p.Users {
		idx[u] = i
	}
	uf := unionfind.New(len(p.Users))
	load := map[graph.NodeID]int{}
	for _, pc := range s.Pairs {
		ia, okA := idx[pc.A]
		ib, okB := idx[pc.B]
		if !okA || !okB {
			return fmt.Errorf("redundant: pair %d-%d outside the user set", pc.A, pc.B)
		}
		if !uf.Union(ia, ib) {
			return fmt.Errorf("redundant: pairs form a loop at %d-%d", pc.A, pc.B)
		}
		if len(pc.Channels) == 0 {
			return fmt.Errorf("redundant: pair %d-%d has no channels", pc.A, pc.B)
		}
		for _, ch := range pc.Channels {
			rebuilt, err := quantum.NewChannel(p.Graph, ch.Nodes, p.Params)
			if err != nil {
				return fmt.Errorf("redundant: pair %d-%d: %w", pc.A, pc.B, err)
			}
			a, b := rebuilt.Endpoints()
			if !(a == pc.A && b == pc.B || a == pc.B && b == pc.A) {
				return fmt.Errorf("redundant: channel %v does not join pair %d-%d", ch.Nodes, pc.A, pc.B)
			}
			for _, sw := range rebuilt.Interior() {
				load[sw] += 2
			}
		}
	}
	if uf.Sets() != 1 {
		return fmt.Errorf("redundant: pairs do not span the users (%d groups)", uf.Sets())
	}
	for sw, used := range load {
		if q := p.Graph.Node(sw).Qubits; used > q {
			return fmt.Errorf("redundant: switch %d uses %d of %d qubits", sw, used, q)
		}
	}
	return nil
}
