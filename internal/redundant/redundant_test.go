package redundant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"
)

// twoUserNet builds a pair of users joined by one well-provisioned switch,
// leaving room for several parallel channels.
func twoUserNet(t *testing.T, qubits int) *graph.Graph {
	t.Helper()
	g := graph.New(3, 2)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddSwitch(1000, 0, qubits)
	g.MustAddEdge(0, 2, 1000)
	g.MustAddEdge(2, 1, 1000)
	return g
}

func mustBase(t *testing.T, g *graph.Graph) (*core.Problem, *core.Solution) {
	t.Helper()
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveConflictFree(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, sol
}

func TestPairRateOrSemantics(t *testing.T) {
	pc := PairChannels{Channels: []quantum.Channel{{Rate: 0.5}, {Rate: 0.5}}}
	if got := pc.Rate(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Rate = %g, want 0.75", got)
	}
	single := PairChannels{Channels: []quantum.Channel{{Rate: 0.3}}}
	if got := single.Rate(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("single Rate = %g", got)
	}
}

func TestBoostAddsParallelChannels(t *testing.T) {
	g := twoUserNet(t, 6) // room for 3 channels through the switch
	p, base := mustBase(t, g)
	sol, err := Boost(p, base, 8)
	if err != nil {
		t.Fatalf("Boost: %v", err)
	}
	if err := Validate(p, sol); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := len(sol.Pairs[0].Channels); got != 3 {
		t.Fatalf("pair holds %d channels, want 3 (6 qubits / 2)", got)
	}
	if sol.Rate() <= base.Rate() {
		t.Fatalf("redundancy did not help: %g vs %g", sol.Rate(), base.Rate())
	}
	// Rate equals the OR-composition of the three identical channels.
	chRate := base.Tree.Channels[0].Rate
	want := 1 - math.Pow(1-chRate, 3)
	if math.Abs(sol.Rate()-want) > 1e-12 {
		t.Fatalf("Rate = %g, want %g", sol.Rate(), want)
	}
}

func TestBoostWidthCap(t *testing.T) {
	g := twoUserNet(t, 8)
	p, base := mustBase(t, g)
	sol, err := Boost(p, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Width(); got != 2 {
		t.Fatalf("Width = %d, want capped 2", got)
	}
}

func TestBoostWidthOneIsBase(t *testing.T) {
	g := twoUserNet(t, 8)
	p, base := mustBase(t, g)
	sol, err := Boost(p, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Width() != 1 {
		t.Fatalf("Width = %d", sol.Width())
	}
	if math.Abs(sol.Rate()-base.Rate()) > 1e-12 {
		t.Fatalf("width-1 rate %g != base %g", sol.Rate(), base.Rate())
	}
}

func TestBoostRejects(t *testing.T) {
	g := twoUserNet(t, 4)
	p, base := mustBase(t, g)
	if _, err := Boost(p, base, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Boost(p, nil, 2); err == nil {
		t.Error("nil base accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	g := twoUserNet(t, 6)
	p, base := mustBase(t, g)
	good, err := Boost(p, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, nil); err == nil {
		t.Error("nil solution accepted")
	}
	empty := &Solution{Pairs: []PairChannels{{A: 0, B: 1}}}
	if err := Validate(p, empty); err == nil {
		t.Error("channel-less pair accepted")
	}
	// Overload: duplicate the whole pair list so the switch is oversubscribed.
	over := &Solution{Pairs: []PairChannels{{
		A: good.Pairs[0].A, B: good.Pairs[0].B,
		Channels: append(append([]quantum.Channel{}, good.Pairs[0].Channels...),
			good.Pairs[0].Channels...),
	}}}
	if err := Validate(p, over); err == nil {
		t.Error("over-capacity solution accepted")
	}
}

// TestQuickBoostSound: on random networks, boosting never lowers the rate,
// always validates, and respects joint capacity.
func TestQuickBoostSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := topology.Default()
		cfg.Users = 3 + rng.Intn(4)
		cfg.Switches = 10 + rng.Intn(10)
		cfg.SwitchQubits = 2 + 2*rng.Intn(3)
		g, err := topology.Generate(cfg, rng)
		if err != nil {
			return false
		}
		p, err := core.AllUsersProblem(g, quantum.DefaultParams())
		if err != nil {
			return false
		}
		base, err := core.SolveConflictFree(p)
		if err != nil {
			return true // infeasible instance: nothing to boost
		}
		sol, err := Boost(p, base, 1+rng.Intn(4))
		if err != nil {
			t.Log(err)
			return false
		}
		if Validate(p, sol) != nil {
			t.Logf("seed %d: invalid boosted solution", seed)
			return false
		}
		if sol.Rate() < base.Rate()*(1-1e-9) {
			t.Logf("seed %d: boost lowered rate %g -> %g", seed, base.Rate(), sol.Rate())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBoostMonteCarloAgreement samples the OR-composed process directly and
// compares with the analytic redundant rate.
func TestBoostMonteCarloAgreement(t *testing.T) {
	g := twoUserNet(t, 6)
	p, base := mustBase(t, g)
	sol, err := Boost(p, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := p.Params
	rng := rand.New(rand.NewSource(4))
	trials := 200000
	successes := 0
	for i := 0; i < trials; i++ {
		treeUp := true
		for _, pc := range sol.Pairs {
			pairUp := false
			for _, ch := range pc.Channels {
				chUp := true
				for j := 0; j+1 < len(ch.Nodes); j++ {
					e, _ := g.EdgeBetween(ch.Nodes[j], ch.Nodes[j+1])
					if rng.Float64() >= params.LinkRate(e.Length) {
						chUp = false
						break
					}
				}
				if chUp {
					for s := 0; s < len(ch.Nodes)-2; s++ {
						if rng.Float64() >= params.SwapProb {
							chUp = false
							break
						}
					}
				}
				if chUp {
					pairUp = true
					break
				}
			}
			if !pairUp {
				treeUp = false
				break
			}
		}
		if treeUp {
			successes++
		}
	}
	got := float64(successes) / float64(trials)
	want := sol.Rate()
	se := math.Sqrt(want * (1 - want) / float64(trials))
	if math.Abs(got-want) > 5*se+1e-9 {
		t.Fatalf("monte carlo %g vs analytic %g (se %g)", got, want, se)
	}
}
