// Package baseline implements the two comparison schemes of the paper's
// evaluation (§V-A): E-Q-CAST, the multi-user extension of the Q-CAST
// two-user router, and N-FUSION, the GHZ-fusion star scheme of the MP-P
// family.
package baseline

import (
	"context"
	"fmt"
	"math"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// SolveEQCast runs the E-Q-CAST baseline with background context and no
// options; see SolveEQCastContext for the scheme.
func SolveEQCast(p *core.Problem) (*core.Solution, error) {
	return SolveEQCastContext(context.Background(), p, nil)
}

// SolveEQCastContext implements the E-Q-CAST baseline under the core
// SolveFunc contract.
//
// Q-CAST (Shi & Qian, SIGCOMM 2020) routes one user pair at a time; the
// paper extends it to multiple users by requesting the chain of consecutive
// pairs <u1,u2>, <u2,u3>, ..., <u(n-1),un> in the user set's given order.
// Each pair is served by its maximum-rate channel under the live capacity
// ledger (with channel width 1, Q-CAST's EXT routing metric reduces to the
// path success probability, i.e. exactly Algorithm 1's objective). The
// scheme's handicap relative to the paper's algorithms is structural: the
// chain's pairings are fixed in advance rather than chosen to maximize the
// tree value.
func SolveEQCastContext(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
	st := opts.StatsSink()
	led := quantum.NewLedger(p.Graph)
	tree := quantum.Tree{}
	for i := 0; i+1 < len(p.Users); i++ {
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("e-q-cast: %w", ctx.Err())
		}
		src, dst := p.Users[i], p.Users[i+1]
		ch, ok := p.MaxRateChannel(src, dst, led, st)
		if !ok {
			return nil, fmt.Errorf("%w: no channel for chain pair %d-%d (e-q-cast)",
				core.ErrInfeasible, src, dst)
		}
		if err := led.Reserve(ch.Nodes); err != nil {
			return nil, fmt.Errorf("e-q-cast: %w", err)
		}
		st.AddReservations(1)
		tree.Channels = append(tree.Channels, ch)
		st.AddCommitted(1)
	}
	return &core.Solution{Tree: tree, Algorithm: "eqcast", MeasurementFactor: 1}, nil
}

// EQCast returns the baseline as a core.Solver.
func EQCast() core.Solver {
	return core.SolverFunc{ID: "eqcast", Fn: SolveEQCastContext}
}

// SolveNFusion runs the N-FUSION baseline with background context and no
// options; see SolveNFusionContext for the scheme.
func SolveNFusion(p *core.Problem) (*core.Solution, error) {
	return SolveNFusionContext(context.Background(), p, nil)
}

// SolveNFusionContext implements the N-FUSION baseline under the core
// SolveFunc contract.
//
// Following the paper's description of the MP-P scheme ("a central user
// connecting all users"), one user acts as the hub of a star: every other
// user routes its maximum-rate channel to the hub under the capacity
// ledger, and the hub then performs an n-qubit GHZ fusion over its n-1
// received halves plus its own qubit. The fusion is modeled as n-1
// elementary merges, each succeeding with the BSM probability q, giving a
// terminal measurement factor q^(|U|-1). This preserves the paper's two
// arguments against n-fusion — a lower per-measurement success rate than a
// single BSM and an extra failure point that disrupts all users at once —
// without inventing numbers the paper does not give (see DESIGN.md,
// substitution 3).
//
// Every user is tried as the hub; the best resulting rate wins. Channels to
// the hub are committed greedily in descending rate order, recomputing
// residual-capacity routes after each commitment.
func SolveNFusionContext(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
	if len(p.Users) == 1 {
		return &core.Solution{Tree: quantum.Tree{}, Algorithm: "nfusion", MeasurementFactor: 1}, nil
	}
	st := opts.StatsSink()
	fusion := math.Pow(p.Params.SwapProb, float64(len(p.Users)-1))
	var best *core.Solution
	for _, hub := range p.Users {
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("n-fusion: %w", ctx.Err())
		}
		sol, err := solveStar(p, hub, st)
		if err != nil {
			continue
		}
		sol.MeasurementFactor = fusion
		if best == nil || sol.Rate() > best.Rate() {
			best = sol
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no user can act as a fusion hub (n-fusion)", core.ErrInfeasible)
	}
	return best, nil
}

// solveStar routes a channel from every non-hub user to hub, committing the
// currently best-rated spoke first and rerouting the rest under the
// remaining capacity.
func solveStar(p *core.Problem, hub graph.NodeID, st *core.SolveStats) (*core.Solution, error) {
	led := quantum.NewLedger(p.Graph)
	pending := make(map[graph.NodeID]bool, len(p.Users)-1)
	for _, u := range p.Users {
		if u != hub {
			pending[u] = true
		}
	}
	tree := quantum.Tree{}
	for len(pending) > 0 {
		var bestCh quantum.Channel
		var bestUser graph.NodeID
		found := false
		// MaxRateChannels yields ascending user order, so ties resolve
		// deterministically, as the old stable-order scan did.
		for _, uc := range p.MaxRateChannels(hub, led, st) {
			if !pending[uc.Dst] {
				continue
			}
			if !found || uc.Ch.Rate > bestCh.Rate {
				bestCh, bestUser, found = uc.Ch, uc.Dst, true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: user cannot reach hub %d", core.ErrInfeasible, hub)
		}
		if err := led.Reserve(bestCh.Nodes); err != nil {
			return nil, fmt.Errorf("n-fusion: %w", err)
		}
		st.AddReservations(1)
		delete(pending, bestUser)
		tree.Channels = append(tree.Channels, bestCh)
		st.AddCommitted(1)
	}
	return &core.Solution{Tree: tree, Algorithm: "nfusion"}, nil
}

// NFusion returns the baseline as a core.Solver.
func NFusion() core.Solver {
	return core.SolverFunc{ID: "nfusion", Fn: SolveNFusionContext}
}
