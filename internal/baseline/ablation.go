package baseline

import (
	"context"
	"fmt"
	"math"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
)

// SolveNFusionFixedHub is the N-FUSION baseline with the fusion hub pinned
// to one user instead of searching all users for the best one; background
// context, see SolveNFusionFixedHubContext.
func SolveNFusionFixedHub(p *core.Problem, hub graph.NodeID) (*core.Solution, error) {
	return SolveNFusionFixedHubContext(context.Background(), p, hub, nil)
}

// SolveNFusionFixedHubContext is the N-FUSION baseline with the fusion hub
// pinned to one user instead of searching all users for the best one. It
// exists for the ablation benches, which quantify how much of N-FUSION's
// score comes from our charitable best-hub search (the paper does not
// specify hub selection; see DESIGN.md substitution 3).
func SolveNFusionFixedHubContext(ctx context.Context, p *core.Problem, hub graph.NodeID, opts *core.SolveOptions) (*core.Solution, error) {
	found := false
	for _, u := range p.Users {
		if u == hub {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("baseline: hub %d is not in the user set", hub)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("n-fusion: %w", ctx.Err())
	}
	sol, err := solveStar(p, hub, opts.StatsSink())
	if err != nil {
		return nil, err
	}
	sol.MeasurementFactor = math.Pow(p.Params.SwapProb, float64(len(p.Users)-1))
	return sol, nil
}
