package baseline

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// meshNet builds 4 users and 4 well-connected switches.
func meshNet(t *testing.T, qubits int) *graph.Graph {
	t.Helper()
	g := graph.New(8, 16)
	g.AddUser(0, 0)    // 0
	g.AddUser(3000, 0) // 1
	g.AddUser(0, 3000) // 2
	g.AddUser(3000, 3000)
	sw := []graph.NodeID{
		g.AddSwitch(1000, 1000, qubits),
		g.AddSwitch(2000, 1000, qubits),
		g.AddSwitch(1000, 2000, qubits),
		g.AddSwitch(2000, 2000, qubits),
	}
	users := []graph.NodeID{0, 1, 2, 3}
	for _, u := range users {
		for _, s := range sw {
			un, sn := g.Node(u), g.Node(s)
			g.MustAddEdge(u, s, math.Hypot(un.X-sn.X, un.Y-sn.Y))
		}
	}
	g.MustAddEdge(sw[0], sw[1], 1000)
	g.MustAddEdge(sw[2], sw[3], 1000)
	return g
}

func mustProblem(t *testing.T, g *graph.Graph) *core.Problem {
	t.Helper()
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEQCastChainsConsecutivePairs(t *testing.T) {
	g := meshNet(t, 8)
	p := mustProblem(t, g)
	sol, err := SolveEQCast(p)
	if err != nil {
		t.Fatalf("SolveEQCast: %v", err)
	}
	if err := p.Validate(sol); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if sol.Algorithm != "eqcast" {
		t.Errorf("Algorithm = %q", sol.Algorithm)
	}
	// The tree must be exactly the chain <u0,u1>, <u1,u2>, <u2,u3>.
	if len(sol.Tree.Channels) != 3 {
		t.Fatalf("%d channels, want 3", len(sol.Tree.Channels))
	}
	for i, ch := range sol.Tree.Channels {
		a, b := ch.Endpoints()
		wantA, wantB := p.Users[i], p.Users[i+1]
		if !(a == wantA && b == wantB || a == wantB && b == wantA) {
			t.Errorf("channel %d joins %d-%d, want %d-%d", i, a, b, wantA, wantB)
		}
	}
}

func TestEQCastInfeasibleOnCapacity(t *testing.T) {
	// Star through a single 2-qubit switch: the chain's second pair has no
	// capacity left and no alternative route.
	g := graph.New(4, 3)
	g.AddUser(0, 0)
	g.AddUser(2, 0)
	g.AddUser(1, 2)
	g.AddSwitch(1, 1, 2)
	for _, u := range []graph.NodeID{0, 1, 2} {
		g.MustAddEdge(u, 3, 1000)
	}
	p := mustProblem(t, g)
	_, err := SolveEQCast(p)
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestEQCastNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		g := meshNet(t, 8)
		p := mustProblem(t, g)
		opt, err := core.SolveOptimal(p)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveEQCast(p)
		if err != nil {
			continue
		}
		if sol.Rate() > opt.Rate()*(1+1e-9) {
			t.Fatalf("iteration %d: eqcast %g beats optimal %g", i, sol.Rate(), opt.Rate())
		}
		_ = rng
	}
}

func TestNFusionStarShapeAndFactor(t *testing.T) {
	g := meshNet(t, 8)
	p := mustProblem(t, g)
	sol, err := SolveNFusion(p)
	if err != nil {
		t.Fatalf("SolveNFusion: %v", err)
	}
	if err := p.Validate(sol); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	wantFactor := math.Pow(0.9, float64(len(p.Users)-1))
	if math.Abs(sol.MeasurementFactor-wantFactor) > 1e-12 {
		t.Fatalf("MeasurementFactor = %g, want %g", sol.MeasurementFactor, wantFactor)
	}
	// Star shape: one user appears in every channel.
	counts := map[graph.NodeID]int{}
	for _, ch := range sol.Tree.Channels {
		a, b := ch.Endpoints()
		counts[a]++
		counts[b]++
	}
	hub := graph.NodeID(-1)
	for u, c := range counts {
		if c == len(p.Users)-1 {
			hub = u
		}
	}
	if hub < 0 {
		t.Fatalf("no hub user found; counts %v", counts)
	}
	// Rate includes the fusion factor.
	if !almostRate(sol.Rate(), sol.Tree.Rate()*wantFactor) {
		t.Fatalf("Rate %g != tree %g * factor %g", sol.Rate(), sol.Tree.Rate(), wantFactor)
	}
}

func almostRate(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestNFusionSingleUser(t *testing.T) {
	g := graph.New(1, 0)
	g.AddUser(0, 0)
	p := mustProblem(t, g)
	sol, err := SolveNFusion(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rate() != 1 {
		t.Fatalf("single-user rate = %g, want 1", sol.Rate())
	}
}

func TestNFusionInfeasible(t *testing.T) {
	g := graph.New(3, 1)
	g.AddUser(0, 0)
	g.AddUser(1, 0)
	g.AddUser(50, 50) // isolated
	g.MustAddEdge(0, 1, 100)
	p := mustProblem(t, g)
	_, err := SolveNFusion(p)
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestNFusionPenalizedBelowPairwiseSchemes(t *testing.T) {
	// On the same star network, N-FUSION's extra fusion factor must land it
	// strictly below Algorithm 3's pure-BSM tree.
	g := meshNet(t, 8)
	p := mustProblem(t, g)
	nf, err := SolveNFusion(p)
	if err != nil {
		t.Fatal(err)
	}
	alg3, err := core.SolveConflictFree(p)
	if err != nil {
		t.Fatal(err)
	}
	if nf.Rate() >= alg3.Rate() {
		t.Fatalf("n-fusion %g not below alg3 %g", nf.Rate(), alg3.Rate())
	}
}

func TestSolverAdapters(t *testing.T) {
	g := meshNet(t, 8)
	p := mustProblem(t, g)
	for _, s := range []core.Solver{EQCast(), NFusion()} {
		sol, err := s.Solve(context.Background(), p, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sol.Algorithm != s.Name() {
			t.Errorf("algorithm %q != solver %q", sol.Algorithm, s.Name())
		}
	}
}

// TestQuickBaselinesValidOrInfeasible: on random nets both baselines either
// produce a validating tree or report infeasibility; they never out-rate
// the sufficient-capacity optimum.
func TestQuickBaselinesValidOrInfeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBaselineNet(rng)
		p, err := core.AllUsersProblem(g, quantum.DefaultParams())
		if err != nil {
			return false
		}
		boosted := g.Clone()
		boosted.SetAllSwitchQubits(2 * len(p.Users))
		bp, _ := core.AllUsersProblem(boosted, quantum.DefaultParams())
		opt, optErr := core.SolveOptimal(bp)
		for _, solve := range []func(*core.Problem) (*core.Solution, error){SolveEQCast, SolveNFusion} {
			sol, err := solve(p)
			if err != nil {
				if !errors.Is(err, core.ErrInfeasible) {
					t.Logf("seed %d: unexpected error %v", seed, err)
					return false
				}
				continue
			}
			if p.Validate(sol) != nil {
				t.Logf("seed %d: invalid baseline tree", seed)
				return false
			}
			if optErr == nil && sol.Rate() > opt.Rate()*(1+1e-9) {
				t.Logf("seed %d: baseline %g beats optimal %g", seed, sol.Rate(), opt.Rate())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomBaselineNet builds a small random connected net.
func randomBaselineNet(rng *rand.Rand) *graph.Graph {
	users := 2 + rng.Intn(4)
	switches := 2 + rng.Intn(5)
	n := users + switches
	g := graph.New(n, 3*n)
	for i := 0; i < users; i++ {
		g.AddUser(rng.Float64()*5000, rng.Float64()*5000)
	}
	for i := 0; i < switches; i++ {
		g.AddSwitch(rng.Float64()*5000, rng.Float64()*5000, 2+2*rng.Intn(3))
	}
	length := func(a, b graph.NodeID) float64 {
		na, nb := g.Node(a), g.Node(b)
		return math.Max(1, math.Hypot(na.X-nb.X, na.Y-nb.Y))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a, b := graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, b, length(a, b))
	}
	for i := 0; i < n; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b && !g.HasEdge(a, b) {
			g.MustAddEdge(a, b, length(a, b))
		}
	}
	return g
}
