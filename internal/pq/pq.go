// Package pq implements an indexed binary min-heap keyed by float64
// priorities.
//
// It is the priority-queue substrate for the Dijkstra engine in
// internal/graph: items are dense integer IDs (graph node IDs), and
// DecreaseKey is O(log n) thanks to the position index.
package pq

import "fmt"

// IndexedMinHeap is a min-heap over integer items in [0, n) with float64
// priorities and O(log n) DecreaseKey.
//
// The zero value is not usable; construct with NewIndexedMinHeap.
type IndexedMinHeap struct {
	heap []int     // heap[i] = item at heap position i
	pos  []int     // pos[item] = position in heap, -1 if absent
	prio []float64 // prio[item] = current priority
}

// NewIndexedMinHeap returns an empty heap able to hold items in [0, n).
func NewIndexedMinHeap(n int) *IndexedMinHeap {
	if n < 0 {
		panic(fmt.Sprintf("pq: negative capacity %d", n))
	}
	h := &IndexedMinHeap{
		heap: make([]int, 0, n),
		pos:  make([]int, n),
		prio: make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *IndexedMinHeap) Len() int { return len(h.heap) }

// Reset empties the heap while keeping its backing arrays, so one heap can
// serve many runs without reallocating. It costs O(Len), touching only the
// position entries of items still queued.
func (h *IndexedMinHeap) Reset() {
	for _, item := range h.heap {
		h.pos[item] = -1
	}
	h.heap = h.heap[:0]
}

// Contains reports whether item is currently in the heap.
func (h *IndexedMinHeap) Contains(item int) bool {
	h.check(item)
	return h.pos[item] >= 0
}

// Priority returns the priority of item. It panics if the item is not in
// the heap.
func (h *IndexedMinHeap) Priority(item int) float64 {
	if !h.Contains(item) {
		panic(fmt.Sprintf("pq: item %d not in heap", item))
	}
	return h.prio[item]
}

// Push inserts item with the given priority. It panics if the item is
// already present.
func (h *IndexedMinHeap) Push(item int, priority float64) {
	if h.Contains(item) {
		panic(fmt.Sprintf("pq: item %d already in heap", item))
	}
	h.prio[item] = priority
	h.pos[item] = len(h.heap)
	h.heap = append(h.heap, item)
	h.up(len(h.heap) - 1)
}

// Pop removes and returns the item with the minimum priority. The boolean is
// false when the heap is empty.
func (h *IndexedMinHeap) Pop() (item int, priority float64, ok bool) {
	if len(h.heap) == 0 {
		return 0, 0, false
	}
	item = h.heap[0]
	priority = h.prio[item]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[item] = -1
	if last > 0 {
		h.down(0)
	}
	return item, priority, true
}

// DecreaseKey lowers item's priority. It panics if the item is absent or the
// new priority is higher than the current one.
func (h *IndexedMinHeap) DecreaseKey(item int, priority float64) {
	if !h.Contains(item) {
		panic(fmt.Sprintf("pq: item %d not in heap", item))
	}
	if priority > h.prio[item] {
		panic(fmt.Sprintf("pq: DecreaseKey(%d) would raise priority %g -> %g", item, h.prio[item], priority))
	}
	h.prio[item] = priority
	h.up(h.pos[item])
}

// PushOrDecrease inserts the item, or lowers its priority if it is already
// queued with a higher one. It reports whether the heap changed.
func (h *IndexedMinHeap) PushOrDecrease(item int, priority float64) bool {
	if !h.Contains(item) {
		h.Push(item, priority)
		return true
	}
	if priority < h.prio[item] {
		h.DecreaseKey(item, priority)
		return true
	}
	return false
}

func (h *IndexedMinHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[h.heap[parent]] <= h.prio[h.heap[i]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMinHeap) down(i int) {
	n := len(h.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.prio[h.heap[left]] < h.prio[h.heap[smallest]] {
			smallest = left
		}
		if right < n && h.prio[h.heap[right]] < h.prio[h.heap[smallest]] {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *IndexedMinHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *IndexedMinHeap) check(item int) {
	if item < 0 || item >= len(h.pos) {
		panic(fmt.Sprintf("pq: item %d out of range [0, %d)", item, len(h.pos)))
	}
}
