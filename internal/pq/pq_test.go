package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyPop(t *testing.T) {
	h := NewIndexedMinHeap(4)
	if _, _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
}

func TestPushPopOrdering(t *testing.T) {
	h := NewIndexedMinHeap(8)
	prios := []float64{5, 1, 3, 7, 2, 6, 0, 4}
	for item, p := range prios {
		h.Push(item, p)
	}
	for want := 0.0; want < 8; want++ {
		item, p, ok := h.Pop()
		if !ok {
			t.Fatalf("heap exhausted early at priority %g", want)
		}
		if p != want {
			t.Fatalf("popped priority %g, want %g", p, want)
		}
		if prios[item] != p {
			t.Fatalf("item %d carries priority %g, want %g", item, p, prios[item])
		}
	}
}

func TestContainsAndPriority(t *testing.T) {
	h := NewIndexedMinHeap(4)
	h.Push(2, 1.5)
	if !h.Contains(2) {
		t.Fatal("Contains(2) = false after push")
	}
	if h.Contains(1) {
		t.Fatal("Contains(1) = true, never pushed")
	}
	if got := h.Priority(2); got != 1.5 {
		t.Fatalf("Priority(2) = %g, want 1.5", got)
	}
	h.Pop()
	if h.Contains(2) {
		t.Fatal("Contains(2) = true after pop")
	}
}

func TestDecreaseKeyReordersHeap(t *testing.T) {
	h := NewIndexedMinHeap(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	item, p, _ := h.Pop()
	if item != 2 || p != 5 {
		t.Fatalf("Pop = (%d, %g), want (2, 5)", item, p)
	}
}

func TestPushOrDecrease(t *testing.T) {
	h := NewIndexedMinHeap(4)
	if !h.PushOrDecrease(1, 10) {
		t.Fatal("initial PushOrDecrease = false")
	}
	if h.PushOrDecrease(1, 15) {
		t.Fatal("raising PushOrDecrease = true, want no-op")
	}
	if !h.PushOrDecrease(1, 5) {
		t.Fatal("lowering PushOrDecrease = false")
	}
	if got := h.Priority(1); got != 5 {
		t.Fatalf("Priority(1) = %g, want 5", got)
	}
}

func TestResetAfterPartialDrain(t *testing.T) {
	h := NewIndexedMinHeap(8)
	for item, p := range []float64{5, 1, 3, 7, 2} {
		h.Push(item, p)
	}
	// Drain only part of the heap, leaving items 0, 2 and 3 queued.
	h.Pop() // item 1, priority 1
	h.Pop() // item 4, priority 2
	if h.Len() != 3 {
		t.Fatalf("Len = %d after partial drain, want 3", h.Len())
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", h.Len())
	}
	for item := 0; item < 8; item++ {
		if h.Contains(item) {
			t.Fatalf("Contains(%d) = true after Reset", item)
		}
	}
	if _, _, ok := h.Pop(); ok {
		t.Fatal("Pop after Reset reported ok")
	}

	// The reset heap must behave exactly like a fresh one, including for
	// items that were mid-heap when Reset hit.
	prios := []float64{4, 0, 6, 2, 8, 1}
	for item, p := range prios {
		h.Push(item, p)
	}
	h.DecreaseKey(2, 0.5)
	prios[2] = 0.5
	want := append([]float64(nil), prios...)
	sort.Float64s(want)
	for _, w := range want {
		_, p, ok := h.Pop()
		if !ok || p != w {
			t.Fatalf("reused heap popped %g (ok=%v), want %g", p, ok, w)
		}
	}
}

func TestResetRepeatedReuse(t *testing.T) {
	h := NewIndexedMinHeap(16)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(16)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.Float64()
			h.Push(i, prios[i])
		}
		drain := rng.Intn(n + 1)
		sort.Float64s(prios)
		for k := 0; k < drain; k++ {
			_, p, ok := h.Pop()
			if !ok || p != prios[k] {
				t.Fatalf("round %d: pop %d = %g (ok=%v), want %g", round, k, p, ok, prios[k])
			}
		}
		h.Reset()
	}
}

func TestPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func(h *IndexedMinHeap)
	}{
		{"push duplicate", func(h *IndexedMinHeap) { h.Push(0, 1); h.Push(0, 2) }},
		{"decrease absent", func(h *IndexedMinHeap) { h.DecreaseKey(0, 1) }},
		{"decrease raising", func(h *IndexedMinHeap) { h.Push(0, 1); h.DecreaseKey(0, 2) }},
		{"priority absent", func(h *IndexedMinHeap) { h.Priority(3) }},
		{"out of range", func(h *IndexedMinHeap) { h.Contains(99) }},
		{"negative capacity", func(h *IndexedMinHeap) { NewIndexedMinHeap(-1) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn(NewIndexedMinHeap(4))
		})
	}
}

// TestQuickHeapSort checks against sort.Float64s: pushing any random
// priorities and popping yields a sorted sequence, with DecreaseKey mixed in.
func TestQuickHeapSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		h := NewIndexedMinHeap(n)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.Float64() * 100
			h.Push(i, prios[i])
		}
		// Random decreases.
		for k := 0; k < n/2; k++ {
			i := rng.Intn(n)
			if !h.Contains(i) {
				continue
			}
			lower := prios[i] * rng.Float64()
			h.DecreaseKey(i, lower)
			prios[i] = lower
		}
		want := append([]float64(nil), prios...)
		sort.Float64s(want)
		for _, w := range want {
			_, p, ok := h.Pop()
			if !ok || p != w {
				t.Logf("pop %g want %g ok=%v", p, w, ok)
				return false
			}
		}
		_, _, ok := h.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
