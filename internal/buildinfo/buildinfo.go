// Package buildinfo renders the build metadata Go embeds in every binary
// (module version, VCS revision, toolchain) for the CLIs' -version flags —
// the deployability hook: "which build is this daemon?" must be answerable
// in production without guessing.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns a one-line build description, e.g.
//
//	quantumnet (devel) go1.22.0 rev 1f7f1bb (modified) built 2026-08-06T10:00:00Z
//
// Fields missing from the build info (e.g. in test binaries) are omitted.
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "quantumnet (no build info) " + runtime.Version()
	}
	var b strings.Builder
	b.WriteString("quantumnet ")
	if v := bi.Main.Version; v != "" {
		b.WriteString(v)
	} else {
		b.WriteString("(devel)")
	}
	fmt.Fprintf(&b, " %s", runtime.Version())
	var rev, t string
	modified := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			t = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		if modified {
			b.WriteString(" (modified)")
		}
	}
	if t != "" {
		fmt.Fprintf(&b, " built %s", t)
	}
	return b.String()
}
