// Package repair maintains a committed entanglement tree across fiber
// failures. Fig. 7b of the paper studies how *re-routing from scratch*
// degrades as fibers disappear; operationally a network would rather keep
// the surviving channels and re-route only the broken ones. This package
// implements that local repair and quantifies when it matches — and when it
// loses to — a full re-route.
package repair

import (
	"context"
	"errors"
	"fmt"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/solver"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// Outcome reports one repair operation.
type Outcome struct {
	// Solution is the repaired tree on the degraded network.
	Solution *core.Solution
	// Rerouted counts the channels that had to be replaced.
	Rerouted int
	// Kept counts the surviving channels that were retained.
	Kept int
}

// ErrNilInput reports missing arguments.
var ErrNilInput = errors.New("repair: nil input")

// AfterEdgeFailures repairs sol after the given fibers failed: surviving
// channels keep their reservations; channels that crossed a failed fiber
// are torn down and their user pairs reconnected greedily (maximum-rate
// channel between the split unions, the Algorithm 3 phase-2 rule) under
// the residual capacity of the degraded network.
//
// degraded must be the graph with the fibers already removed (see
// graph.WithoutEdges); failed lists the removed fibers as (A, B) endpoint
// pairs of the original graph. Returns core.ErrInfeasible when the
// surviving network cannot reconnect the users.
func AfterEdgeFailures(degraded *graph.Graph, users []graph.NodeID, sol *core.Solution, failed []graph.Edge, params quantum.Params) (Outcome, error) {
	if degraded == nil || sol == nil {
		return Outcome{}, ErrNilInput
	}
	// A fresh ledger sees the whole degraded network as free: the repaired
	// session is alone, which is the Fig. 7b single-session setting.
	return repairOn(context.Background(), quantum.NewLedger(degraded), degraded, users, sol, failed, params)
}

// AfterEdgeFailuresResidual is AfterEdgeFailures against a *shared* ledger:
// the repaired session competes for whatever capacity its neighbours left
// free. The caller must already have released the broken tree's own
// reservations (the surviving channels are re-reserved here). On any error
// every reservation this call made is released again, so the ledger is
// unchanged on failure.
func AfterEdgeFailuresResidual(ctx context.Context, led *quantum.Ledger, degraded *graph.Graph, users []graph.NodeID, sol *core.Solution, failed []graph.Edge, params quantum.Params) (Outcome, error) {
	if led == nil || degraded == nil || sol == nil {
		return Outcome{}, ErrNilInput
	}
	return repairOn(ctx, led, degraded, users, sol, failed, params)
}

// repairOn keeps sol's surviving channels, reserving them on led, and
// reconnects the broken unions under led's residual capacity. On error all
// reservations made here are rolled back.
func repairOn(ctx context.Context, led *quantum.Ledger, degraded *graph.Graph, users []graph.NodeID, sol *core.Solution, failed []graph.Edge, params quantum.Params) (out Outcome, err error) {
	prob, err := core.NewProblem(degraded, users, params)
	if err != nil {
		return Outcome{}, fmt.Errorf("repair: %w", err)
	}

	gone := make(map[[2]graph.NodeID]bool, len(failed))
	key := func(a, b graph.NodeID) [2]graph.NodeID {
		if a > b {
			a, b = b, a
		}
		return [2]graph.NodeID{a, b}
	}
	for _, e := range failed {
		gone[key(e.A, e.B)] = true
	}

	idx := make(map[graph.NodeID]int, len(users))
	for i, u := range users {
		idx[u] = i
	}

	uf := unionfind.New(len(users))
	tree := quantum.Tree{}
	kept := 0
	// Everything appended to tree has been reserved on led; undo on error.
	defer func() {
		if err != nil {
			for _, ch := range tree.Channels {
				led.Release(ch.Nodes)
			}
		}
	}()
	for _, ch := range sol.Tree.Channels {
		if channelBroken(ch, gone, key) {
			continue
		}
		// Surviving channel: recompute against the degraded graph (rates
		// are unchanged — same fibers — but this revalidates structure).
		fresh, err := quantum.NewChannel(degraded, ch.Nodes, params)
		if err != nil {
			return Outcome{}, fmt.Errorf("repair: surviving channel invalid on degraded graph: %w", err)
		}
		if err := led.Reserve(fresh.Nodes); err != nil {
			return Outcome{}, fmt.Errorf("repair: surviving channel lost its capacity: %w", err)
		}
		a, b := fresh.Endpoints()
		uf.Union(idx[a], idx[b])
		tree.Channels = append(tree.Channels, fresh)
		kept++
	}

	if err := prob.ReconnectUnions(ctx, led, uf, &tree, nil); err != nil {
		return Outcome{}, err
	}
	repaired := &core.Solution{Tree: tree, Algorithm: "repair", MeasurementFactor: 1}
	if err := prob.Validate(repaired); err != nil {
		return Outcome{}, fmt.Errorf("repair: produced an invalid tree: %w", err)
	}
	return Outcome{
		Solution: repaired,
		Rerouted: len(tree.Channels) - kept,
		Kept:     kept,
	}, nil
}

// channelBroken reports whether the channel used any failed fiber.
func channelBroken(ch quantum.Channel, gone map[[2]graph.NodeID]bool, key func(a, b graph.NodeID) [2]graph.NodeID) bool {
	for i := 0; i+1 < len(ch.Nodes); i++ {
		if gone[key(ch.Nodes[i], ch.Nodes[i+1])] {
			return true
		}
	}
	return false
}

// CompareWithReroute repairs locally and also re-routes from scratch
// (Algorithm 3) on the degraded network, returning both rates (0 for an
// infeasible side). Local repair keeps working channels but is constrained
// by their existing reservations; a full re-route is free to restructure —
// the returned pair quantifies that trade-off.
func CompareWithReroute(degraded *graph.Graph, users []graph.NodeID, sol *core.Solution, failed []graph.Edge, params quantum.Params) (repaired, rerouted float64, err error) {
	out, err := AfterEdgeFailures(degraded, users, sol, failed, params)
	switch {
	case err == nil:
		repaired = out.Solution.Rate()
	case errors.Is(err, core.ErrInfeasible):
		repaired = 0
	default:
		return 0, 0, err
	}

	prob, err := core.NewProblem(degraded, users, params)
	if err != nil {
		return 0, 0, err
	}
	entry, err := solver.Get("alg3")
	if err != nil {
		return 0, 0, err
	}
	full, err := entry.Solve(context.Background(), prob, nil)
	switch {
	case err == nil:
		rerouted = full.Rate()
	case errors.Is(err, core.ErrInfeasible):
		rerouted = 0
	default:
		return 0, 0, err
	}
	return repaired, rerouted, nil
}
