package repair

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"
)

// repairNet builds 3 users with a primary switch path and a worse backup:
//
//	u0, u1, u2 all adjacent to s3 (primary, short) and s4 (backup, long).
func repairNet(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5, 6)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddUser(1000, 1800)
	g.AddSwitch(1000, 600, 8)
	g.AddSwitch(1000, -4000, 8)
	for _, u := range []graph.NodeID{0, 1, 2} {
		g.MustAddEdge(u, 3, 1200)
		g.MustAddEdge(u, 4, 5000)
	}
	return g
}

func solve(t *testing.T, g *graph.Graph) (*core.Problem, *core.Solution) {
	t.Helper()
	prob, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveConflictFree(prob)
	if err != nil {
		t.Fatal(err)
	}
	return prob, sol
}

func TestRepairKeepsSurvivorsAndReroutesBroken(t *testing.T) {
	g := repairNet(t)
	prob, sol := solve(t, g)
	// Fail the u0-s3 fiber: exactly the channels over it must be replaced.
	failedEdge, ok := g.EdgeBetween(0, 3)
	if !ok {
		t.Fatal("missing fixture fiber")
	}
	degraded := g.WithoutEdges([]graph.EdgeID{failedEdge.ID})
	out, err := AfterEdgeFailures(degraded, prob.Users, sol, []graph.Edge{failedEdge}, prob.Params)
	if err != nil {
		t.Fatalf("AfterEdgeFailures: %v", err)
	}
	broken := 0
	for _, ch := range sol.Tree.Channels {
		for i := 0; i+1 < len(ch.Nodes); i++ {
			a, b := ch.Nodes[i], ch.Nodes[i+1]
			if (a == 0 && b == 3) || (a == 3 && b == 0) {
				broken++
				break
			}
		}
	}
	if out.Kept != len(sol.Tree.Channels)-broken {
		t.Fatalf("kept %d of %d channels, %d broken", out.Kept, len(sol.Tree.Channels), broken)
	}
	if out.Rerouted != broken {
		t.Fatalf("rerouted %d, want %d", out.Rerouted, broken)
	}
	// The repaired tree is worse than the original (the primary fiber died).
	if out.Solution.Rate() >= sol.Rate() {
		t.Fatalf("repair rate %g not below original %g", out.Solution.Rate(), sol.Rate())
	}
}

func TestRepairNoOpWhenNoChannelAffected(t *testing.T) {
	g := repairNet(t)
	prob, sol := solve(t, g)
	// Fail an unused backup fiber: the tree survives untouched.
	unused, ok := g.EdgeBetween(0, 4)
	if !ok {
		t.Fatal("missing fixture fiber")
	}
	degraded := g.WithoutEdges([]graph.EdgeID{unused.ID})
	out, err := AfterEdgeFailures(degraded, prob.Users, sol, []graph.Edge{unused}, prob.Params)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rerouted != 0 || out.Kept != len(sol.Tree.Channels) {
		t.Fatalf("no-op repair rerouted %d / kept %d", out.Rerouted, out.Kept)
	}
	if out.Solution.Rate() != sol.Rate() {
		t.Fatalf("no-op repair changed the rate: %g vs %g", out.Solution.Rate(), sol.Rate())
	}
}

func TestRepairInfeasibleWhenIsolated(t *testing.T) {
	g := repairNet(t)
	prob, sol := solve(t, g)
	// Fail both of u0's fibers: u0 is unreachable.
	e1, _ := g.EdgeBetween(0, 3)
	e2, _ := g.EdgeBetween(0, 4)
	degraded := g.WithoutEdges([]graph.EdgeID{e1.ID, e2.ID})
	_, err := AfterEdgeFailures(degraded, prob.Users, sol, []graph.Edge{e1, e2}, prob.Params)
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestCompareWithReroute(t *testing.T) {
	g := repairNet(t)
	prob, sol := solve(t, g)
	failedEdge, _ := g.EdgeBetween(0, 3)
	degraded := g.WithoutEdges([]graph.EdgeID{failedEdge.ID})
	repaired, rerouted, err := CompareWithReroute(degraded, prob.Users, sol, []graph.Edge{failedEdge}, prob.Params)
	if err != nil {
		t.Fatal(err)
	}
	if repaired <= 0 || rerouted <= 0 {
		t.Fatalf("rates %g / %g", repaired, rerouted)
	}
	// A full re-route is at least as good as the locally constrained repair.
	if repaired > rerouted*(1+1e-9) {
		t.Fatalf("local repair %g beats full re-route %g", repaired, rerouted)
	}
}

func TestRepairRejectsNil(t *testing.T) {
	g := repairNet(t)
	prob, sol := solve(t, g)
	if _, err := AfterEdgeFailures(nil, prob.Users, sol, nil, prob.Params); !errors.Is(err, ErrNilInput) {
		t.Errorf("nil graph error = %v", err)
	}
	if _, err := AfterEdgeFailures(g, prob.Users, nil, nil, prob.Params); !errors.Is(err, ErrNilInput) {
		t.Errorf("nil solution error = %v", err)
	}
}

// TestQuickRepairSound: across random networks and random single-fiber
// failures, local repair either validates (checked inside
// AfterEdgeFailures) or reports infeasibility, and both rates are
// probabilities. No dominance is asserted between repair and full
// re-route: both are heuristics, and — mirroring the paper's Fig. 7b
// observation that removals can *improve* a heuristic's tree — either side
// can win on a given instance.
func TestQuickRepairSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := topology.Default()
		cfg.Users = 4 + rng.Intn(4)
		cfg.Switches = 12 + rng.Intn(10)
		g, err := topology.Generate(cfg, rng)
		if err != nil {
			return false
		}
		prob, err := core.AllUsersProblem(g, quantum.DefaultParams())
		if err != nil {
			return false
		}
		sol, err := core.SolveConflictFree(prob)
		if err != nil {
			return errors.Is(err, core.ErrInfeasible)
		}
		fail := g.Edge(graph.EdgeID(rng.Intn(g.NumEdges())))
		degraded := g.WithoutEdges([]graph.EdgeID{fail.ID})
		repaired, rerouted, err := CompareWithReroute(degraded, prob.Users, sol, []graph.Edge{fail}, prob.Params)
		if err != nil {
			t.Log(err)
			return false
		}
		inRange := func(x float64) bool { return x >= 0 && x <= 1 }
		return inRange(repaired) && inRange(rerouted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
