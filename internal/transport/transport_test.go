package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// networkFixtures returns constructors for both transports so every test in
// this file runs against each implementation.
func networkFixtures(t *testing.T) map[string]func(t *testing.T) Network {
	t.Helper()
	return map[string]func(t *testing.T) Network{
		"inmemory": func(t *testing.T) Network {
			n := NewInMemory()
			t.Cleanup(func() { _ = n.Close() })
			return n
		},
		"tcp": func(t *testing.T) Network {
			hub, err := NewTCPHub("127.0.0.1:0")
			if err != nil {
				t.Fatalf("hub: %v", err)
			}
			n := NewTCPNetwork(hub.Addr())
			t.Cleanup(func() {
				_ = n.Close()
				_ = hub.Close()
			})
			return n
		},
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSendRecvRoundTrip(t *testing.T) {
	for name, mk := range networkFixtures(t) {
		t.Run(name, func(t *testing.T) {
			net := mk(t)
			a, err := net.Join("alice")
			if err != nil {
				t.Fatal(err)
			}
			b, err := net.Join("bob")
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Send("bob", "greet", []byte("hello")); err != nil {
				t.Fatalf("Send: %v", err)
			}
			msg, err := b.Recv(testCtx(t))
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if msg.From != "alice" || msg.To != "bob" || msg.Kind != "greet" || string(msg.Payload) != "hello" {
				t.Fatalf("got %+v", msg)
			}
		})
	}
}

func TestMessageOrderingPerSender(t *testing.T) {
	for name, mk := range networkFixtures(t) {
		t.Run(name, func(t *testing.T) {
			net := mk(t)
			a, _ := net.Join("a")
			b, _ := net.Join("b")
			const n = 50
			for i := 0; i < n; i++ {
				if err := a.Send("b", "seq", []byte{byte(i)}); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			ctx := testCtx(t)
			for i := 0; i < n; i++ {
				msg, err := b.Recv(ctx)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if msg.Payload[0] != byte(i) {
					t.Fatalf("message %d arrived out of order (got %d)", i, msg.Payload[0])
				}
			}
		})
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	for name, mk := range networkFixtures(t) {
		t.Run(name, func(t *testing.T) {
			net := mk(t)
			if _, err := net.Join("dup"); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Join("dup"); err == nil {
				t.Fatal("duplicate join accepted")
			}
		})
	}
}

func TestEmptyNameRejected(t *testing.T) {
	for name, mk := range networkFixtures(t) {
		t.Run(name, func(t *testing.T) {
			net := mk(t)
			if _, err := net.Join(""); !errors.Is(err, ErrEmptyName) {
				t.Fatalf("error = %v, want ErrEmptyName", err)
			}
		})
	}
}

func TestRecvContextCancellation(t *testing.T) {
	for name, mk := range networkFixtures(t) {
		t.Run(name, func(t *testing.T) {
			net := mk(t)
			c, _ := net.Join("lonely")
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := c.Recv(ctx)
				done <- err
			}()
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Recv error = %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv did not unblock on cancellation")
			}
		})
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	for name, mk := range networkFixtures(t) {
		t.Run(name, func(t *testing.T) {
			net := mk(t)
			c, _ := net.Join("x")
			if _, err := net.Join("y"); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			if err := c.Send("y", "k", nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("Send after close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestRecvDrainsAfterClose(t *testing.T) {
	// In-memory only: delivery then close must still hand over the queued
	// message (the TCP read loop has inherent raciness here).
	net := NewInMemory()
	defer func() { _ = net.Close() }()
	a, _ := net.Join("a")
	b, _ := net.Join("b")
	if err := a.Send("b", "k", []byte("queued")); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()
	msg, err := b.Recv(testCtx(t))
	if err != nil {
		t.Fatalf("Recv after close with queued message: %v", err)
	}
	if string(msg.Payload) != "queued" {
		t.Fatalf("got %q", msg.Payload)
	}
	// Queue now empty: next Recv reports closed.
	if _, err := b.Recv(testCtx(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Recv = %v, want ErrClosed", err)
	}
}

func TestInMemoryUnknownPeer(t *testing.T) {
	net := NewInMemory()
	defer func() { _ = net.Close() }()
	a, _ := net.Join("a")
	if err := a.Send("ghost", "k", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("Send to ghost = %v, want ErrUnknownPeer", err)
	}
}

func TestInMemoryQueueFull(t *testing.T) {
	net := NewInMemory()
	defer func() { _ = net.Close() }()
	a, _ := net.Join("a")
	if _, err := net.Join("sink"); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; i <= inMemoryQueueSize; i++ {
		if err = a.Send("sink", "k", nil); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("flooding error = %v, want ErrQueueFull", err)
	}
}

func TestInMemoryNetworkCloseUnblocksAll(t *testing.T) {
	net := NewInMemory()
	c, _ := net.Join("n")
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = net.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on network close")
	}
	if _, err := net.Join("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Join after close = %v, want ErrClosed", err)
	}
}

func TestTCPHubDropsUnknownDestination(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	net := NewTCPNetwork(hub.Addr())
	defer func() { _ = net.Close() }()
	a, err := net.Join("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", "k", nil); err != nil {
		t.Fatalf("Send: %v (tcp sends are fire-and-forget)", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hub.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if hub.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", hub.Dropped())
	}
}

func TestTCPIdentitySpoofingPrevented(t *testing.T) {
	// The hub stamps From with the registered identity regardless of what
	// the conn claims; our Conn API always sends its own name, so route one
	// message and confirm From is the hub-verified name.
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	net := NewTCPNetwork(hub.Addr())
	defer func() { _ = net.Close() }()
	a, _ := net.Join("real-name")
	b, _ := net.Join("receiver")
	if err := a.Send("receiver", "k", nil); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "real-name" {
		t.Fatalf("From = %q, want hub-stamped %q", msg.From, "real-name")
	}
}

func TestTCPDialFailure(t *testing.T) {
	net := NewTCPNetwork("127.0.0.1:1") // nothing listens on port 1
	if _, err := net.Join("x"); err == nil {
		t.Fatal("Join to dead hub succeeded")
	}
}

func TestConcurrentSendersStress(t *testing.T) {
	for name, mk := range networkFixtures(t) {
		t.Run(name, func(t *testing.T) {
			net := mk(t)
			sink, err := net.Join("sink")
			if err != nil {
				t.Fatal(err)
			}
			const senders, per = 8, 20
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				conn, err := net.Join(fmt.Sprintf("s%d", s))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(c Conn) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := c.Send("sink", "k", []byte{byte(i)}); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(conn)
			}
			ctx := testCtx(t)
			got := 0
			for got < senders*per {
				if _, err := sink.Recv(ctx); err != nil {
					t.Fatalf("recv after %d: %v", got, err)
				}
				got++
			}
			wg.Wait()
		})
	}
}
