package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// This file implements the TCP transport: a hub process that relays
// messages among named endpoints over real sockets, with gob-framed
// encoding. It demonstrates the runtime protocol over an actual network
// stack; semantics match the in-memory transport except that a message to
// an endpoint that disconnects mid-flight is dropped (counted by the hub)
// rather than reported to the sender.

// tcpHello is the first frame a client sends after connecting.
type tcpHello struct{ Name string }

// tcpHelloAck is the hub's response to a hello.
type tcpHelloAck struct{ Err string }

// TCPHub relays messages among connected endpoints.
type TCPHub struct {
	listener net.Listener

	mu      sync.Mutex
	conns   map[string]*hubConn
	dropped int
	closed  bool

	wg sync.WaitGroup
}

type hubConn struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex
}

func (h *hubConn) send(msg Message) error {
	h.wmu.Lock()
	defer h.wmu.Unlock()
	return h.enc.Encode(msg)
}

// NewTCPHub starts a hub listening on addr (e.g. "127.0.0.1:0" for an
// ephemeral port). Call Close to stop it and disconnect all endpoints.
func NewTCPHub(addr string) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	h := &TCPHub{listener: ln, conns: make(map[string]*hubConn)}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address, including the resolved port.
func (h *TCPHub) Addr() string { return h.listener.Addr().String() }

// Dropped returns the number of messages the hub could not deliver because
// the destination was unknown or disconnected.
func (h *TCPHub) Dropped() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Close stops the hub and closes every endpoint connection, then waits for
// the hub's goroutines to finish.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return nil
	}
	h.closed = true
	err := h.listener.Close()
	for name, c := range h.conns {
		_ = c.conn.Close()
		delete(h.conns, name)
	}
	h.mu.Unlock()
	h.wg.Wait()
	return err
}

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.listener.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go h.serve(conn)
	}
}

// serve registers one client and routes its messages until it disconnects.
func (h *TCPHub) serve(conn net.Conn) {
	defer h.wg.Done()
	dec := gob.NewDecoder(conn)
	hc := &hubConn{conn: conn, enc: gob.NewEncoder(conn)}

	var hello tcpHello
	if err := dec.Decode(&hello); err != nil {
		_ = conn.Close()
		return
	}
	if err := h.register(hello.Name, hc); err != nil {
		_ = hc.send(Message{Kind: kindHelloAck, Payload: encodeAck(err.Error())})
		_ = conn.Close()
		return
	}
	hc.name = hello.Name
	if err := hc.send(Message{Kind: kindHelloAck, Payload: encodeAck("")}); err != nil {
		h.unregister(hello.Name)
		_ = conn.Close()
		return
	}

	defer func() {
		h.unregister(hello.Name)
		_ = conn.Close()
	}()
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		msg.From = hello.Name // never trust the client's claimed identity
		h.route(msg)
	}
}

func (h *TCPHub) register(name string, c *hubConn) error {
	if name == "" {
		return ErrEmptyName
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errShuttingDown
	}
	if _, ok := h.conns[name]; ok {
		return fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	h.conns[name] = c
	return nil
}

func (h *TCPHub) unregister(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.conns, name)
}

func (h *TCPHub) route(msg Message) {
	h.mu.Lock()
	dst, ok := h.conns[msg.To]
	h.mu.Unlock()
	if !ok {
		h.mu.Lock()
		h.dropped++
		h.mu.Unlock()
		return
	}
	if err := dst.send(msg); err != nil {
		h.mu.Lock()
		h.dropped++
		h.mu.Unlock()
	}
}

// kindHelloAck is the reserved message kind for registration handshakes.
const kindHelloAck = "_hello_ack"

func encodeAck(errStr string) []byte {
	if errStr == "" {
		return nil
	}
	return []byte(errStr)
}

// TCPNetwork is the client-side Network for a running hub.
type TCPNetwork struct {
	addr string

	mu    sync.Mutex
	conns []*tcpConn
}

var _ Network = (*TCPNetwork)(nil)

// NewTCPNetwork returns a Network whose Join dials the hub at addr.
func NewTCPNetwork(addr string) *TCPNetwork {
	return &TCPNetwork{addr: addr}
}

// Join implements Network: it dials the hub and registers the name.
func (n *TCPNetwork) Join(name string) (Conn, error) {
	if name == "" {
		return nil, ErrEmptyName
	}
	sock, err := net.Dial("tcp", n.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial hub %s: %w", n.addr, err)
	}
	c := &tcpConn{
		name: name,
		sock: sock,
		enc:  gob.NewEncoder(sock),
		in:   make(chan Message, inMemoryQueueSize),
		done: make(chan struct{}),
	}
	if err := c.enc.Encode(tcpHello{Name: name}); err != nil {
		_ = sock.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	dec := gob.NewDecoder(sock)
	var ack Message
	if err := dec.Decode(&ack); err != nil {
		_ = sock.Close()
		return nil, fmt.Errorf("transport: hello ack: %w", err)
	}
	if ack.Kind != kindHelloAck {
		_ = sock.Close()
		return nil, fmt.Errorf("transport: unexpected first frame %q", ack.Kind)
	}
	if len(ack.Payload) > 0 {
		_ = sock.Close()
		return nil, fmt.Errorf("transport: join rejected: %s", ack.Payload)
	}
	c.wg.Add(1)
	go c.readLoop(dec)
	n.mu.Lock()
	n.conns = append(n.conns, c)
	n.mu.Unlock()
	return c, nil
}

// Close closes every connection this client-side network has opened. The
// hub itself is owned and closed by its creator.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	conns := n.conns
	n.conns = nil
	n.mu.Unlock()
	var firstErr error
	for _, c := range conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

type tcpConn struct {
	name string
	sock net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex
	in   chan Message

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ Conn = (*tcpConn)(nil)

func (c *tcpConn) readLoop(dec *gob.Decoder) {
	defer c.wg.Done()
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			c.closeOnce.Do(func() {
				close(c.done)
				_ = c.sock.Close()
			})
			return
		}
		select {
		case c.in <- msg:
		case <-c.done:
			return
		}
	}
}

func (c *tcpConn) Name() string { return c.name }

func (c *tcpConn) Send(to, kind string, payload []byte) error {
	select {
	case <-c.done:
		return fmt.Errorf("%w: conn %q", ErrClosed, c.name)
	default:
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(Message{From: c.name, To: to, Kind: kind, Payload: payload}); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return fmt.Errorf("%w: conn %q", ErrClosed, c.name)
		}
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

func (c *tcpConn) Recv(ctx context.Context) (Message, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	default:
	}
	select {
	case msg := <-c.in:
		return msg, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	case <-c.done:
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return Message{}, fmt.Errorf("%w: conn %q", ErrClosed, c.name)
		}
	}
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		_ = c.sock.Close()
	})
	c.wg.Wait()
	return nil
}
