package transport

import (
	"context"
	"fmt"
	"sync"
)

// inMemoryQueueSize bounds each endpoint's pending-message queue. The
// runtime's request/response protocol keeps queues shallow; a full queue
// indicates a stuck receiver and is surfaced as an error rather than a
// silent deadlock.
const inMemoryQueueSize = 1024

// InMemory is an in-process Network backed by per-endpoint channels.
// It is safe for concurrent use.
type InMemory struct {
	mu     sync.Mutex
	peers  map[string]*inMemoryConn
	closed bool
}

var _ Network = (*InMemory)(nil)

// NewInMemory returns an empty in-process message plane.
func NewInMemory() *InMemory {
	return &InMemory{peers: make(map[string]*inMemoryConn)}
}

// Join implements Network.
func (n *InMemory) Join(name string) (Conn, error) {
	if name == "" {
		return nil, ErrEmptyName
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errShuttingDown
	}
	if _, ok := n.peers[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	c := &inMemoryConn{
		name: name,
		net:  n,
		in:   make(chan Message, inMemoryQueueSize),
		done: make(chan struct{}),
	}
	n.peers[name] = c
	return c, nil
}

// Close implements Network.
func (n *InMemory) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for name, c := range n.peers {
		c.closeLocked()
		delete(n.peers, name)
	}
	return nil
}

// deliver routes a message to the named endpoint.
func (n *InMemory) deliver(msg Message) error {
	n.mu.Lock()
	peer, ok := n.peers[msg.To]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return errShuttingDown
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, msg.To)
	}
	select {
	case peer.in <- msg:
		return nil
	case <-peer.done:
		return fmt.Errorf("%w: peer %q closed", ErrUndelivered, msg.To)
	default:
		return fmt.Errorf("%w: peer %q", ErrQueueFull, msg.To)
	}
}

func (n *InMemory) leave(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, name)
}

type inMemoryConn struct {
	name string
	net  *InMemory
	in   chan Message

	closeOnce sync.Once
	done      chan struct{}
}

var _ Conn = (*inMemoryConn)(nil)

func (c *inMemoryConn) Name() string { return c.name }

func (c *inMemoryConn) Send(to, kind string, payload []byte) error {
	select {
	case <-c.done:
		return fmt.Errorf("%w: conn %q", ErrClosed, c.name)
	default:
	}
	return c.net.deliver(Message{From: c.name, To: to, Kind: kind, Payload: payload})
}

func (c *inMemoryConn) Recv(ctx context.Context) (Message, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	default:
	}
	select {
	case msg := <-c.in:
		return msg, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	case <-c.done:
		// Drain anything that raced with Close so no message is lost.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return Message{}, fmt.Errorf("%w: conn %q", ErrClosed, c.name)
		}
	}
}

func (c *inMemoryConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.net.leave(c.name)
	})
	return nil
}

// closeLocked is Close for use under the network's lock (it must not call
// back into the network).
func (c *inMemoryConn) closeLocked() {
	c.closeOnce.Do(func() { close(c.done) })
}
