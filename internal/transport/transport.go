// Package transport provides the classical message plane for the
// distributed entanglement runtime (internal/runtime): named endpoints
// exchanging small control messages. Two implementations are provided — an
// in-memory transport for tests and single-process simulation, and a
// TCP+gob transport demonstrating the same protocol across real sockets.
package transport

import (
	"context"
	"errors"
	"fmt"
)

// Message is one classical control message between endpoints. Payload holds
// a gob-encoded body whose schema is implied by Kind; the transport treats
// it as opaque bytes.
type Message struct {
	From    string
	To      string
	Kind    string
	Payload []byte
}

// Conn is one endpoint's connection to the message plane.
type Conn interface {
	// Name returns the endpoint name this connection was joined as.
	Name() string
	// Send delivers a message to the named endpoint. The message's From
	// field is stamped with this connection's name.
	Send(to, kind string, payload []byte) error
	// Recv blocks until a message arrives, the context is canceled, or the
	// connection closes (io.EOF-like ErrClosed).
	Recv(ctx context.Context) (Message, error)
	// Close detaches the endpoint. Further Sends to it fail.
	Close() error
}

// Network is a message plane endpoints can join by name.
type Network interface {
	// Join registers a named endpoint and returns its connection. Names
	// must be unique per network.
	Join(name string) (Conn, error)
	// Close tears down the network and every joined connection.
	Close() error
}

// Transport errors.
var (
	ErrClosed       = errors.New("transport: closed")
	ErrUnknownPeer  = errors.New("transport: unknown peer")
	ErrNameTaken    = errors.New("transport: endpoint name already joined")
	ErrQueueFull    = errors.New("transport: receive queue full")
	ErrEmptyName    = errors.New("transport: endpoint name must be non-empty")
	ErrUndelivered  = errors.New("transport: message could not be delivered")
	errShuttingDown = fmt.Errorf("%w: network shutting down", ErrClosed)
)
