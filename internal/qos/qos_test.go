package qos

import (
	"errors"
	"testing"
	"time"
)

func cfg(t *testing.T, tenants ...TenantSpec) *Config {
	t.Helper()
	c := &Config{Tenants: tenants}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c.Normalized()
}

// drain dequeues everything, returning the tenant service order.
func drain(s *Scheduler) []string {
	var order []string
	for {
		_, tenant, ok := s.Dequeue()
		if !ok {
			return order
		}
		order = append(order, tenant)
	}
}

func count(order []string) map[string]int {
	m := make(map[string]int)
	for _, t := range order {
		m[t]++
	}
	return m
}

func TestSingleTenantIsFIFO(t *testing.T) {
	s := NewScheduler(cfg(t), 64)
	for i := 0; i < 10; i++ {
		if err := s.Enqueue("", i); err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		item, tenant, ok := s.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d: empty", i)
		}
		if tenant != DefaultTenant {
			t.Fatalf("Dequeue %d: tenant %q", i, tenant)
		}
		if item.(int) != i {
			t.Fatalf("Dequeue %d: got item %v, want %d (not FIFO)", i, item, i)
		}
	}
	if _, _, ok := s.Dequeue(); ok {
		t.Fatal("Dequeue on empty scheduler returned ok")
	}
}

func TestWeightedFairness(t *testing.T) {
	c := cfg(t,
		TenantSpec{ID: "gold", Weight: 3},
		TenantSpec{ID: "bronze", Weight: 1},
	)
	s := NewScheduler(c, 256)
	for i := 0; i < 40; i++ {
		if err := s.Enqueue("gold", i); err != nil {
			t.Fatal(err)
		}
		if err := s.Enqueue("bronze", i); err != nil {
			t.Fatal(err)
		}
	}
	// While both stay backlogged (first 40 dequeues drain 30 gold + 10
	// bronze at weight 3:1), service must track the weights.
	order := drain(s)
	got := count(order[:40])
	if got["gold"] != 30 || got["bronze"] != 10 {
		t.Fatalf("first 40 dequeues: gold=%d bronze=%d, want 30/10", got["gold"], got["bronze"])
	}
	// Everything is eventually served.
	total := count(order)
	if total["gold"] != 40 || total["bronze"] != 40 {
		t.Fatalf("totals: %v, want 40 each", total)
	}
	// Per-tenant order stays FIFO under interleaving.
	next := map[string]int{}
	s2 := NewScheduler(c, 256)
	for i := 0; i < 20; i++ {
		_ = s2.Enqueue("gold", i)
		_ = s2.Enqueue("bronze", i)
	}
	for {
		item, tenant, ok := s2.Dequeue()
		if !ok {
			break
		}
		if item.(int) != next[tenant] {
			t.Fatalf("tenant %q: got item %v, want %d (per-tenant FIFO broken)", tenant, item, next[tenant])
		}
		next[tenant]++
	}
}

func TestStrictPriorityTiers(t *testing.T) {
	c := cfg(t,
		TenantSpec{ID: "urgent", Priority: 2},
		TenantSpec{ID: "batch", Priority: 0},
	)
	// Disable the anti-starvation share to observe pure strict priority.
	c.GuaranteedShare = 0
	s := NewScheduler(c, 256)
	for i := 0; i < 5; i++ {
		_ = s.Enqueue("batch", i)
		_ = s.Enqueue("urgent", i)
	}
	order := drain(s)
	want := []string{"urgent", "urgent", "urgent", "urgent", "urgent", "batch", "batch", "batch", "batch", "batch"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full order %v)", i, order[i], want[i], order)
		}
	}
}

// TestStarvationBound pins the anti-starvation guarantee: under a constant
// high-priority flood, the low tier still receives ~GuaranteedShare of the
// dequeues.
func TestStarvationBound(t *testing.T) {
	c := cfg(t,
		TenantSpec{ID: "flood", Priority: 1},
		TenantSpec{ID: "background", Priority: 0},
	)
	c.GuaranteedShare = 0.25
	s := NewScheduler(c, 1024)
	for i := 0; i < 200; i++ {
		_ = s.Enqueue("flood", i)
	}
	for i := 0; i < 100; i++ {
		_ = s.Enqueue("background", i)
	}
	lo := 0
	for i := 0; i < 100; i++ {
		_, tenant, ok := s.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d: empty", i)
		}
		if tenant == "background" {
			lo++
		}
	}
	// share 0.25 over 100 dequeues → 25 background slots (allow slack for
	// carry rounding at the window edges).
	if lo < 20 || lo > 30 {
		t.Fatalf("background served %d of 100 dequeues under flood, want ~25 (share 0.25)", lo)
	}
}

func TestGuaranteedSlotRotatesAcrossStarvedTiers(t *testing.T) {
	c := cfg(t,
		TenantSpec{ID: "hi", Priority: 2},
		TenantSpec{ID: "mid", Priority: 1},
		TenantSpec{ID: "lo", Priority: 0},
	)
	c.GuaranteedShare = 0.5
	s := NewScheduler(c, 1024)
	for i := 0; i < 300; i++ {
		_ = s.Enqueue("hi", i)
	}
	for i := 0; i < 50; i++ {
		_ = s.Enqueue("mid", i)
		_ = s.Enqueue("lo", i)
	}
	got := count(func() []string {
		var o []string
		for i := 0; i < 100; i++ {
			_, tenant, _ := s.Dequeue()
			o = append(o, tenant)
		}
		return o
	}())
	// share 0.5 → 50 guaranteed slots, rotated between the two starved
	// tiers → ~25 each.
	if got["mid"] < 20 || got["lo"] < 20 {
		t.Fatalf("starved tiers under-served: %v (want ~25 mid and ~25 lo of 100)", got)
	}
}

func TestQueueBounds(t *testing.T) {
	c := cfg(t,
		TenantSpec{ID: "small", QueueSize: 2},
		TenantSpec{ID: "big"},
	)
	s := NewScheduler(c, 4)
	if err := s.Enqueue("small", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("small", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("small", 3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue past bound: err = %v, want ErrQueueFull", err)
	}
	// Other tenants are unaffected by one tenant's full queue, up to the
	// default bound.
	for i := 0; i < 4; i++ {
		if err := s.Enqueue("big", i); err != nil {
			t.Fatalf("big enqueue %d: %v", i, err)
		}
	}
	if err := s.Enqueue("big", 5); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("big past default bound: err = %v, want ErrQueueFull", err)
	}
	// Draining frees capacity again.
	if _, _, ok := s.Dequeue(); !ok {
		t.Fatal("Dequeue: empty")
	}
	stats := s.Queues()
	if len(stats) != 3 { // small, big, default
		t.Fatalf("Queues: %v, want 3 tenants", stats)
	}
}

func TestUnknownTenantFallsBackToDefault(t *testing.T) {
	s := NewScheduler(cfg(t, TenantSpec{ID: "known"}), 16)
	if err := s.Enqueue("mystery", 1); err != nil {
		t.Fatalf("unknown tenant enqueue: %v", err)
	}
	_, tenant, ok := s.Dequeue()
	if !ok || tenant != DefaultTenant {
		t.Fatalf("unknown tenant dequeued as %q, want %q", tenant, DefaultTenant)
	}
}

func TestLimiterBurstAndRefill(t *testing.T) {
	c := cfg(t, TenantSpec{ID: "metered", RatePerSec: 2, Burst: 3})
	l := NewLimiter(c)
	base := time.Unix(1000, 0)

	// The full burst passes instantly.
	for i := 0; i < 3; i++ {
		if err := l.Allow("metered", base); err != nil {
			t.Fatalf("burst request %d throttled: %v", i, err)
		}
	}
	// The next is throttled with a retry-after matching the refill rate:
	// one token at 2/s takes 500ms.
	err := l.Allow("metered", base)
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-burst: err = %v, want ErrThrottled", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) {
		t.Fatalf("err %v does not unwrap to *ThrottleError", err)
	}
	if te.Tenant != "metered" {
		t.Fatalf("ThrottleError.Tenant = %q", te.Tenant)
	}
	if te.RetryAfter < 400*time.Millisecond || te.RetryAfter > 600*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ~500ms", te.RetryAfter)
	}

	// After 1s two tokens accrued.
	later := base.Add(time.Second)
	if err := l.Allow("metered", later); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := l.Allow("metered", later); err != nil {
		t.Fatalf("after refill, second token: %v", err)
	}
	if err := l.Allow("metered", later); !errors.Is(err, ErrThrottled) {
		t.Fatalf("third post-refill request: err = %v, want ErrThrottled", err)
	}

	// Refill never exceeds the burst.
	muchLater := base.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if err := l.Allow("metered", muchLater); err != nil {
			t.Fatalf("post-idle burst %d: %v", i, err)
		}
	}
	if err := l.Allow("metered", muchLater); !errors.Is(err, ErrThrottled) {
		t.Fatalf("burst cap not enforced: err = %v", err)
	}

	// A clock step backwards must not refill or panic.
	if err := l.Allow("metered", base); !errors.Is(err, ErrThrottled) {
		t.Fatalf("backwards clock: err = %v, want ErrThrottled", err)
	}
}

func TestLimiterUnlimitedTenants(t *testing.T) {
	l := NewLimiter(cfg(t, TenantSpec{ID: "free"}))
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if err := l.Allow("free", now); err != nil {
			t.Fatalf("unlimited tenant throttled: %v", err)
		}
		if err := l.Allow(DefaultTenant, now); err != nil {
			t.Fatalf("default tenant throttled: %v", err)
		}
	}
	var nilL *Limiter
	if err := nilL.Allow("anything", now); err != nil {
		t.Fatalf("nil limiter: %v", err)
	}
}

func TestConfigParseAndValidate(t *testing.T) {
	c, err := Parse([]byte(`{
		"tenants": [
			{"id": "gold", "weight": 3, "priority": 1, "rate_per_sec": 2.5, "max_ttl_ms": 30000},
			{"id": "default", "queue_size": 8}
		],
		"guaranteed_share": 0.2
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := c.Normalized()
	gold, ok := n.Tenant("gold")
	if !ok {
		t.Fatal("gold missing after normalize")
	}
	if gold.Burst != 3 {
		t.Fatalf("gold burst = %d, want ceil(2.5) = 3", gold.Burst)
	}
	if gold.MaxTTL() != 30*time.Second {
		t.Fatalf("gold MaxTTL = %v, want 30s", gold.MaxTTL())
	}
	if got := len(n.Tenants); got != 2 {
		t.Fatalf("normalized tenants = %d, want 2 (default not duplicated)", got)
	}
	if n.Resolve("") != DefaultTenant || n.Resolve("nobody") != DefaultTenant || n.Resolve("gold") != "gold" {
		t.Fatal("Resolve mapping wrong")
	}

	// Defaults materialize the default tenant.
	n2 := (&Config{}).Normalized()
	if _, ok := n2.Tenant(DefaultTenant); !ok {
		t.Fatal("empty config: default tenant not materialized")
	}
	if n2.GuaranteedShare != defaultGuaranteedShare {
		t.Fatalf("share = %v, want default %v", n2.GuaranteedShare, defaultGuaranteedShare)
	}

	bad := []string{
		`{"tenants":[{"id":""}]}`,
		`{"tenants":[{"id":"a"},{"id":"a"}]}`,
		`{"tenants":[{"id":"a","weight":-1}]}`,
		`{"tenants":[{"id":"a","rate_per_sec":-2}]}`,
		`{"guaranteed_share": 1.5}`,
		`{"tenants":[{"id":"a","burst":-1}]}`,
		`{"tenants":[{"id":"a","queue_size":-1}]}`,
		`{"tenants":[{"id":"a","max_ttl_ms":-5}]}`,
		`{"tenants":[{"id":"a","typo_field":1}]}`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("Parse(%s) accepted invalid config", doc)
		}
	}
}

// TestConcurrentEnqueueDequeue exercises the scheduler's internal locking
// under -race: producers on several tenants against one consumer.
func TestConcurrentEnqueueDequeue(t *testing.T) {
	c := cfg(t,
		TenantSpec{ID: "a", Weight: 2, Priority: 1},
		TenantSpec{ID: "b"},
	)
	s := NewScheduler(c, 1<<16)
	const perTenant = 2000
	done := make(chan struct{})
	for _, tenant := range []string{"a", "b", DefaultTenant} {
		tenant := tenant
		go func() {
			for i := 0; i < perTenant; i++ {
				for s.Enqueue(tenant, i) != nil {
				}
			}
			done <- struct{}{}
		}()
	}
	got := 0
	producers := 3
	for producers > 0 || s.Len() > 0 {
		if _, _, ok := s.Dequeue(); ok {
			got++
		}
		select {
		case <-done:
			producers--
		default:
		}
	}
	for got < 3*perTenant {
		if _, _, ok := s.Dequeue(); ok {
			got++
		} else {
			t.Fatalf("drained %d items, want %d", got, 3*perTenant)
		}
	}
}
