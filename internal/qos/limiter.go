package qos

import (
	"sync"
	"time"
)

// bucket is one tenant's token bucket. Tokens accrue continuously at rate
// per second up to burst; each admitted request spends one token.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// Limiter enforces per-tenant admission-rate quotas. It is safe for
// concurrent use; in the sharded plane one Limiter is shared by every
// shard so quotas are global rather than multiplied by the shard count.
//
// The caller supplies the clock reading, which keeps the limiter
// deterministic under the service layer's fake clock.
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

// NewLimiter builds a limiter over the (normalized) config. Tenants with
// RatePerSec 0 have no bucket and are never throttled.
func NewLimiter(c *Config) *Limiter {
	l := &Limiter{buckets: make(map[string]*bucket)}
	for _, t := range c.Tenants {
		if t.RatePerSec <= 0 {
			continue
		}
		burst := float64(t.Burst)
		if burst < 1 {
			burst = 1
		}
		l.buckets[t.ID] = &bucket{rate: t.RatePerSec, burst: burst, tokens: burst}
	}
	return l
}

// Allow spends one of tenant's tokens at time now. It returns nil when the
// request is within quota, or a *ThrottleError carrying the time until the
// next token when the bucket is empty. Unlimited tenants always pass.
func (l *Limiter) Allow(tenant string, now time.Time) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		return nil
	}
	if b.last.IsZero() {
		b.last = now
	}
	// Guard against non-monotonic clocks (fake clocks under test, NTP
	// steps): never refill from a negative interval.
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Nanosecond
	}
	return &ThrottleError{Tenant: tenant, RetryAfter: wait}
}
