// Package qos is the daemon's multi-tenant admission policy layer
// (DESIGN.md §11): a tenant registry (weight, strict-priority class,
// token-bucket quota), per-tenant bounded sub-queues, and a deficit-
// weighted-round-robin dequeue with an anti-starvation share for lower
// priority tiers. It decides only *ordering and admission-rate* questions —
// which queued request the admission loop should decide next, and whether a
// tenant is over its request rate. Everything downstream (solving, the
// ledger, durability) is tenant-blind and unchanged.
//
// The package is deliberately free of service dependencies: queued items
// are opaque interface values, and the caller passes its own clock readings
// into the limiter, so the scheduler is deterministic under test and
// composes with the service layer's fake clock.
package qos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// DefaultTenant is the tenant every request without a tenant name (and any
// unknown tenant name) is served under. A configuration that does not list
// it gets it appended with weight 1, no quota and the scheduler's default
// queue bound — which is exactly the pre-QoS FIFO behaviour.
const DefaultTenant = "default"

// Package errors. ThrottleError wraps ErrThrottled and carries the
// retry-after hint.
var (
	// ErrQueueFull reports a tenant sub-queue at capacity.
	ErrQueueFull = errors.New("qos: tenant queue full")
	// ErrThrottled reports a tenant over its token-bucket admission rate.
	ErrThrottled = errors.New("qos: tenant over admission rate")
)

// ThrottleError is the limiter's rejection: the tenant's bucket is empty
// and the next token accrues in RetryAfter.
type ThrottleError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("qos: tenant %q over admission rate (retry in %v)", e.Tenant, e.RetryAfter)
}

func (e *ThrottleError) Unwrap() error { return ErrThrottled }

// TenantSpec declares one tenant's service class.
type TenantSpec struct {
	// ID names the tenant; requests carry it in the POST /sessions body.
	ID string `json:"id"`
	// Weight is the tenant's DWRR share within its priority tier; tenants
	// with weight 3 dequeue three requests for every one of a weight-1
	// tenant under sustained backlog. Default 1.
	Weight int `json:"weight,omitempty"`
	// Priority is the tenant's strict tier: higher tiers are served first,
	// subject to the config's GuaranteedShare for lower tiers. Default 0.
	Priority int `json:"priority,omitempty"`
	// RatePerSec is the token-bucket refill rate gating how many requests
	// per second the tenant may submit; 0 means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth — how many requests may arrive at once
	// before throttling. Defaults to ceil(RatePerSec), at least 1.
	Burst int `json:"burst,omitempty"`
	// QueueSize bounds the tenant's admission sub-queue; 0 takes the
	// scheduler's default (the service's global queue bound).
	QueueSize int `json:"queue_size,omitempty"`
	// MaxTTLMs caps the tenant's session lifetimes in milliseconds: a
	// request asking for more is clamped to the cap (and counted in the
	// tenant's ttl_clamped metric), exactly like the server-wide MaxTTL.
	// 0 means no tenant cap — only the server-wide one applies.
	MaxTTLMs int64 `json:"max_ttl_ms,omitempty"`
}

// MaxTTL returns the tenant's session-lifetime cap as a duration; 0 means
// the tenant has no cap of its own.
func (t TenantSpec) MaxTTL() time.Duration {
	return time.Duration(t.MaxTTLMs) * time.Millisecond
}

// Config is the QoS policy document (muerpd -qos-config).
type Config struct {
	Tenants []TenantSpec `json:"tenants"`
	// GuaranteedShare is the anti-starvation fraction: under sustained
	// higher-priority backlog, lower tiers still receive at least this
	// share of dequeues. 0 means the default of 0.1; negative disables the
	// guarantee (pure strict priority).
	GuaranteedShare float64 `json:"guaranteed_share,omitempty"`
}

// defaultGuaranteedShare is the anti-starvation share applied when the
// config leaves GuaranteedShare at 0.
const defaultGuaranteedShare = 0.1

// Normalized returns a copy with every default applied: the default tenant
// appended when absent, weights raised to 1, bursts derived from rates, and
// the guaranteed share resolved. The receiver is not modified.
func (c *Config) Normalized() *Config {
	out := &Config{GuaranteedShare: c.GuaranteedShare}
	if out.GuaranteedShare == 0 {
		out.GuaranteedShare = defaultGuaranteedShare
	} else if out.GuaranteedShare < 0 {
		out.GuaranteedShare = 0
	}
	hasDefault := false
	for _, t := range c.Tenants {
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.RatePerSec > 0 && t.Burst <= 0 {
			t.Burst = int(t.RatePerSec)
			if float64(t.Burst) < t.RatePerSec {
				t.Burst++
			}
			if t.Burst < 1 {
				t.Burst = 1
			}
		}
		if t.ID == DefaultTenant {
			hasDefault = true
		}
		out.Tenants = append(out.Tenants, t)
	}
	if !hasDefault {
		out.Tenants = append(out.Tenants, TenantSpec{ID: DefaultTenant, Weight: 1})
	}
	return out
}

// Validate checks the raw (pre-normalization) policy document.
func (c *Config) Validate() error {
	seen := make(map[string]bool, len(c.Tenants))
	for i, t := range c.Tenants {
		if t.ID == "" {
			return fmt.Errorf("qos: tenant %d has no id", i)
		}
		if seen[t.ID] {
			return fmt.Errorf("qos: duplicate tenant %q", t.ID)
		}
		seen[t.ID] = true
		if t.Weight < 0 {
			return fmt.Errorf("qos: tenant %q: negative weight %d", t.ID, t.Weight)
		}
		if t.RatePerSec < 0 {
			return fmt.Errorf("qos: tenant %q: negative rate %v", t.ID, t.RatePerSec)
		}
		if t.Burst < 0 {
			return fmt.Errorf("qos: tenant %q: negative burst %d", t.ID, t.Burst)
		}
		if t.QueueSize < 0 {
			return fmt.Errorf("qos: tenant %q: negative queue size %d", t.ID, t.QueueSize)
		}
		if t.MaxTTLMs < 0 {
			return fmt.Errorf("qos: tenant %q: negative max ttl %dms", t.ID, t.MaxTTLMs)
		}
	}
	if c.GuaranteedShare >= 1 {
		return fmt.Errorf("qos: guaranteed_share must be below 1, got %v", c.GuaranteedShare)
	}
	return nil
}

// Tenant returns the spec for id, if configured.
func (c *Config) Tenant(id string) (TenantSpec, bool) {
	for _, t := range c.Tenants {
		if t.ID == id {
			return t, true
		}
	}
	return TenantSpec{}, false
}

// Resolve maps a request's tenant name onto a configured tenant: the empty
// name and any unlisted name fall back to the default tenant, so unknown
// tenants are served (and rate-limited) under the default class rather than
// rejected.
func (c *Config) Resolve(id string) string {
	if id == "" {
		return DefaultTenant
	}
	if _, ok := c.Tenant(id); ok {
		return id
	}
	return DefaultTenant
}

// Parse decodes a policy document, rejecting unknown fields so a typo in a
// tenants.json is a boot error rather than a silently ignored knob.
func Parse(b []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("qos: parse config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and parses a policy file.
func Load(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("qos: read config: %w", err)
	}
	c, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}
