package qos

import (
	"sort"
	"sync"
)

// class is one tenant's bounded FIFO sub-queue plus its DWRR accounting.
// The queue is a slice with a head index; the backing array is compacted
// once the dead prefix dominates, so sustained traffic does not grow it.
type class struct {
	spec     TenantSpec
	tier     *tier
	q        []any
	head     int
	credit   float64
	active   bool // on its tier's service ring
	maxDepth int
}

func (c *class) depth() int { return len(c.q) - c.head }

func (c *class) push(item any) {
	if c.head > 64 && c.head*2 >= len(c.q) {
		n := copy(c.q, c.q[c.head:])
		for i := n; i < len(c.q); i++ {
			c.q[i] = nil
		}
		c.q = c.q[:n]
		c.head = 0
	}
	c.q = append(c.q, item)
}

func (c *class) pop() any {
	item := c.q[c.head]
	c.q[c.head] = nil
	c.head++
	if c.head == len(c.q) {
		c.q = c.q[:0]
		c.head = 0
	}
	return item
}

// tier is one strict-priority level: the set of currently backlogged
// classes at that priority, served deficit-weighted-round-robin.
type tier struct {
	priority int
	ring     []*class // active (non-empty) classes, DWRR order
	cur      int      // ring cursor
}

// Scheduler is the multi-tenant queue in front of the admission loop:
// per-tenant bounded FIFO sub-queues, drained strict-priority-first with
// deficit-weighted round-robin inside each tier and a guaranteed
// anti-starvation share for lower tiers.
//
// It is a pure data structure — no goroutines, no clock — guarded by its
// own mutex so producers (HTTP handlers) and the single consumer (the
// admission loop) can share it. Items are opaque to the package.
type Scheduler struct {
	mu      sync.Mutex
	classes map[string]*class
	tiers   []*tier // sorted by priority, highest first
	share   float64 // guaranteed share for starved lower tiers
	carry   float64 // accumulated low-tier credit
	lowRR   int     // rotates which starved tier gets the guaranteed slot
	size    int     // total queued items
}

// NewScheduler builds the queue structure for a normalized config.
// defaultDepth bounds any tenant whose spec leaves QueueSize at 0.
func NewScheduler(c *Config, defaultDepth int) *Scheduler {
	if defaultDepth < 1 {
		defaultDepth = 1
	}
	s := &Scheduler{
		classes: make(map[string]*class, len(c.Tenants)),
		share:   c.GuaranteedShare,
	}
	tiers := make(map[int]*tier)
	for _, spec := range c.Tenants {
		t, ok := tiers[spec.Priority]
		if !ok {
			t = &tier{priority: spec.Priority}
			tiers[spec.Priority] = t
			s.tiers = append(s.tiers, t)
		}
		depth := spec.QueueSize
		if depth <= 0 {
			depth = defaultDepth
		}
		s.classes[spec.ID] = &class{spec: spec, tier: t, maxDepth: depth}
	}
	sort.Slice(s.tiers, func(i, j int) bool { return s.tiers[i].priority > s.tiers[j].priority })
	return s
}

// Enqueue appends item to tenant's sub-queue. Unknown tenants (the caller
// normally resolves names first) land on the default class. It returns
// ErrQueueFull when the tenant's bound is hit — the per-tenant bound is
// what keeps one flooding tenant from consuming the shared queue budget.
func (s *Scheduler) Enqueue(tenant string, item any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.classes[tenant]
	if !ok {
		c = s.classes[DefaultTenant]
	}
	if c.depth() >= c.maxDepth {
		return ErrQueueFull
	}
	c.push(item)
	s.size++
	if !c.active {
		c.active = true
		c.credit = 0
		c.tier.ring = append(c.tier.ring, c)
	}
	return nil
}

// Dequeue removes and returns the next item to admit, with the tenant it
// belongs to. ok is false when every queue is empty.
//
// Tier selection is strict priority, except that when lower tiers are
// backlogged behind a busy higher tier they accrue `share` credit per
// dequeue; each time that credit reaches 1 the next dequeue is granted to
// the highest starved lower tier (rotating on ties across calls), which
// bounds starvation: over any window of N dequeues under constant
// high-priority flood, lower tiers receive at least ~share*N slots.
// Inside a tier, classes are served deficit-weighted round-robin: each
// visit tops the class's credit up by its weight, and the class emits
// items until the credit is spent, so long-run throughput is proportional
// to weight. A single backlogged class degenerates to pure FIFO.
func (s *Scheduler) Dequeue() (item any, tenant string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size == 0 {
		return nil, "", false
	}
	top := -1
	lower := -1
	for i, t := range s.tiers {
		if len(t.ring) == 0 {
			continue
		}
		if top < 0 {
			top = i
		} else {
			lower = i
			break
		}
	}
	serve := s.tiers[top]
	if lower >= 0 && s.share > 0 {
		s.carry += s.share
		if s.carry >= 1 {
			s.carry--
			// Rotate among the starved lower tiers so a three-tier flood
			// does not hand every guaranteed slot to the same tier.
			starved := make([]*tier, 0, len(s.tiers)-top-1)
			for _, t := range s.tiers[top+1:] {
				if len(t.ring) > 0 {
					starved = append(starved, t)
				}
			}
			serve = starved[s.lowRR%len(starved)]
			s.lowRR++
		}
	}
	return s.dequeueTier(serve)
}

func (s *Scheduler) dequeueTier(t *tier) (any, string, bool) {
	// DWRR: advance the cursor until a class with credit emits. Each class
	// is topped up by its weight at most once per pass, so the loop
	// terminates: after one full ring rotation every class has credit ≥ 1.
	for {
		if t.cur >= len(t.ring) {
			t.cur = 0
		}
		c := t.ring[t.cur]
		if c.credit < 1 {
			c.credit += float64(c.spec.Weight)
		}
		if c.credit >= 1 {
			c.credit--
			item := c.pop()
			s.size--
			if c.depth() == 0 {
				s.deactivate(t, t.cur)
			} else if c.credit < 1 {
				t.cur++
			}
			return item, c.spec.ID, true
		}
		t.cur++
	}
}

// deactivate removes the drained class at ring index i, fixing the cursor.
func (s *Scheduler) deactivate(t *tier, i int) {
	c := t.ring[i]
	c.active = false
	c.credit = 0
	t.ring = append(t.ring[:i], t.ring[i+1:]...)
	if t.cur > i || t.cur >= len(t.ring) {
		if t.cur > 0 {
			t.cur--
		}
		if t.cur >= len(t.ring) {
			t.cur = 0
		}
	}
}

// Len reports the total number of queued items across all tenants.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// QueueStat is one tenant's instantaneous queue occupancy.
type QueueStat struct {
	Tenant   string
	Depth    int
	Capacity int
}

// Queues reports per-tenant occupancy, sorted by tenant ID for stable
// metrics output.
func (s *Scheduler) Queues() []QueueStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueueStat, 0, len(s.classes))
	for id, c := range s.classes {
		out = append(out, QueueStat{Tenant: id, Depth: c.depth(), Capacity: c.maxDepth})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
