// Package viz renders quantum networks and routed entanglement trees as
// Graphviz DOT, for inspection and documentation of routing decisions.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
)

// palette colors routed channels; channels beyond its length cycle.
var palette = []string{
	"crimson", "royalblue", "forestgreen", "darkorange",
	"purple", "teal", "goldenrod", "deeppink",
}

// DOT renders the network as an undirected Graphviz graph. When sol is
// non-nil, fibers carrying one of its quantum channels are drawn bold in
// the channel's color; idle fibers stay light gray. Users are doubled
// circles, switches are boxes labeled with their qubit budget.
func DOT(g *graph.Graph, sol *core.Solution) string {
	var b strings.Builder
	b.WriteString("graph quantumnet {\n")
	b.WriteString("  layout=neato;\n  overlap=false;\n  splines=true;\n")

	for _, n := range g.Nodes() {
		label := n.Label
		switch n.Kind {
		case graph.KindUser:
			if label == "" {
				label = fmt.Sprintf("u%d", n.ID)
			}
			fmt.Fprintf(&b, "  n%d [shape=doublecircle, style=filled, fillcolor=lightyellow, label=%q];\n",
				n.ID, label)
		case graph.KindSwitch:
			if label == "" {
				label = fmt.Sprintf("s%d", n.ID)
			}
			fmt.Fprintf(&b, "  n%d [shape=box, style=filled, fillcolor=lightblue, label=\"%s\\nQ=%d\"];\n",
				n.ID, label, n.Qubits)
		}
	}

	// Map each fiber to the channels crossing it.
	type hop struct{ a, b graph.NodeID }
	key := func(a, b graph.NodeID) hop {
		if a > b {
			a, b = b, a
		}
		return hop{a, b}
	}
	carried := map[hop][]int{}
	if sol != nil {
		for ci, ch := range sol.Tree.Channels {
			for i := 0; i+1 < len(ch.Nodes); i++ {
				k := key(ch.Nodes[i], ch.Nodes[i+1])
				carried[k] = append(carried[k], ci)
			}
		}
	}

	for _, e := range g.Edges() {
		k := key(e.A, e.B)
		if chans, ok := carried[k]; ok {
			sort.Ints(chans)
			colors := make([]string, len(chans))
			for i, c := range chans {
				colors[i] = palette[c%len(palette)]
			}
			fmt.Fprintf(&b, "  n%d -- n%d [color=%q, penwidth=2.5, label=\"%.0f km\"];\n",
				e.A, e.B, strings.Join(colors, ":"), e.Length)
			continue
		}
		fmt.Fprintf(&b, "  n%d -- n%d [color=gray80, label=\"%.0f km\", fontcolor=gray60];\n",
			e.A, e.B, e.Length)
	}
	b.WriteString("}\n")
	return b.String()
}
