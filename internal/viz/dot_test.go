package viz

import (
	"strings"
	"testing"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

func vizNet(t *testing.T) (*graph.Graph, *core.Solution) {
	t.Helper()
	g := graph.New(4, 3)
	g.AddUser(0, 0)
	g.AddSwitch(1000, 0, 4)
	g.AddUser(2000, 0)
	g.AddUser(1000, 1000)
	g.MustAddEdge(0, 1, 1000)
	g.MustAddEdge(1, 2, 1000)
	g.MustAddEdge(1, 3, 1400)
	prob, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveConflictFree(prob)
	if err != nil {
		t.Fatal(err)
	}
	return g, sol
}

func TestDOTPlainNetwork(t *testing.T) {
	g, _ := vizNet(t)
	out := DOT(g, nil)
	for _, want := range []string{
		"graph quantumnet {",
		"doublecircle", // users
		"shape=box",    // switches
		"Q=4",          // qubit budget label
		"n0 -- n1",     // fibers
		"1000 km",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "penwidth") {
		t.Error("plain network shows highlighted channels")
	}
}

func TestDOTHighlightsChannels(t *testing.T) {
	g, sol := vizNet(t)
	out := DOT(g, sol)
	if !strings.Contains(out, "penwidth=2.5") {
		t.Fatalf("no highlighted fibers:\n%s", out)
	}
	// Every fiber of every channel must be highlighted.
	highlighted := strings.Count(out, "penwidth")
	links := 0
	for _, ch := range sol.Tree.Channels {
		links += ch.Links()
	}
	// Shared fibers collapse into one line, so highlighted <= links.
	if highlighted == 0 || highlighted > links {
		t.Fatalf("%d highlighted fibers for %d channel links", highlighted, links)
	}
}

func TestDOTSharedFiberGetsMultipleColors(t *testing.T) {
	// Two channels crossing the same switch from one user share the
	// user-switch fiber only if they both start there; construct that
	// explicitly: u0->s->u1 and u0->s->u2 share fiber u0-s.
	g := graph.New(4, 3)
	g.AddUser(0, 0)
	g.AddSwitch(1000, 0, 4)
	g.AddUser(2000, 0)
	g.AddUser(2000, 1000)
	g.MustAddEdge(0, 1, 1000)
	g.MustAddEdge(1, 2, 1000)
	g.MustAddEdge(1, 3, 1400)
	p := quantum.DefaultParams()
	ch1, err := quantum.NewChannel(g, []graph.NodeID{0, 1, 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := quantum.NewChannel(g, []graph.NodeID{0, 1, 3}, p)
	if err != nil {
		t.Fatal(err)
	}
	sol := &core.Solution{Tree: quantum.Tree{Channels: []quantum.Channel{ch1, ch2}}}
	out := DOT(g, sol)
	// The shared fiber n0--n1 carries both channels: two colors joined by
	// a colon (Graphviz multicolor syntax).
	if !strings.Contains(out, "crimson:royalblue") {
		t.Fatalf("shared fiber not multi-colored:\n%s", out)
	}
}
