package solver

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// paperOrder is the canonical plot order of the paper's evaluation; the
// registry must lead with exactly these five, in this order.
var paperOrder = []string{"alg2", "alg3", "alg4", "eqcast", "nfusion"}

// starProblem builds a fixture every registered scheme can route: four
// users around one high-capacity switch hub (16 qubits >= 2|U| = 8, so even
// Algorithm 2's sufficient-capacity assumption holds without boosting).
func starProblem(t *testing.T) *core.Problem {
	t.Helper()
	g := graph.New(5, 4)
	hub := g.AddSwitch(0, 0, 16)
	for i := 0; i < 4; i++ {
		u := g.AddUser(100*float64(i+1), 0)
		g.MustAddEdge(u, hub, 100)
	}
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatalf("AllUsersProblem: %v", err)
	}
	return p
}

// splitProblem builds a fixture no scheme can route: three users, one of
// them disconnected from the other two.
func splitProblem(t *testing.T) *core.Problem {
	t.Helper()
	g := graph.New(4, 2)
	s := g.AddSwitch(0, 0, 16)
	a := g.AddUser(-100, 0)
	b := g.AddUser(100, 0)
	g.AddUser(5000, 5000) // isolated
	g.MustAddEdge(a, s, 100)
	g.MustAddEdge(b, s, 100)
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatalf("AllUsersProblem: %v", err)
	}
	return p
}

func TestRegistryNamesUniqueAndCanonical(t *testing.T) {
	entries := List()
	if len(entries) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" {
			t.Error("registered entry with empty name")
		}
		if e.Label == "" {
			t.Errorf("entry %q has no label", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate name %q", e.Name)
		}
		seen[e.Name] = true
	}
	for i, want := range paperOrder {
		if entries[i].Name != want {
			t.Errorf("entry %d = %q, want %q (canonical plot order)", i, entries[i].Name, want)
		}
		if !entries[i].Default {
			t.Errorf("paper scheme %q not marked Default", want)
		}
	}
	defaults := Defaults()
	if len(defaults) != len(paperOrder) {
		t.Fatalf("Defaults() has %d entries, want %d", len(defaults), len(paperOrder))
	}
	for i, e := range defaults {
		if e.Name != paperOrder[i] {
			t.Errorf("Defaults()[%d] = %q, want %q", i, e.Name, paperOrder[i])
		}
	}
}

func TestSortCanonical(t *testing.T) {
	names := []string{"zzz", "nfusion", "alg4", "aaa", "alg2"}
	SortCanonical(names)
	want := []string{"alg2", "alg4", "nfusion", "aaa", "zzz"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SortCanonical = %v, want %v", names, want)
		}
	}
}

func TestGetUnknownListsKnownNames(t *testing.T) {
	_, err := Get("dijkstra")
	if err == nil {
		t.Fatal("Get(dijkstra) succeeded")
	}
	for _, want := range append([]string{"dijkstra"}, Names()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestEveryRegisteredSolverSolvesFixture is the registry completeness check:
// each entry must route the star fixture, produce a valid tree under its own
// registered name, and record work counters.
func TestEveryRegisteredSolverSolvesFixture(t *testing.T) {
	for _, e := range List() {
		t.Run(e.Name, func(t *testing.T) {
			p := starProblem(t)
			var work core.SolveStats
			sol, err := e.Solve(context.Background(), p, &core.SolveOptions{Stats: &work})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if err := p.Validate(sol); err != nil {
				t.Fatalf("invalid solution: %v", err)
			}
			if sol.Rate() <= 0 {
				t.Errorf("rate = %g, want > 0", sol.Rate())
			}
			if work.ChannelsCommitted == 0 {
				t.Error("solve committed channels but recorded none in SolveStats")
			}
		})
	}
}

// TestEveryRegisteredSolverReportsInfeasible: on a fixture with a
// disconnected user every entry must fail with a wrapped core.ErrInfeasible,
// never a panic or a bare error.
func TestEveryRegisteredSolverReportsInfeasible(t *testing.T) {
	for _, e := range List() {
		t.Run(e.Name, func(t *testing.T) {
			p := splitProblem(t)
			sol, err := e.Solve(context.Background(), p, nil)
			if err == nil {
				t.Fatalf("solve succeeded with rate %g on a disconnected instance", sol.Rate())
			}
			if !errors.Is(err, core.ErrInfeasible) {
				t.Fatalf("error = %v, want wrapped core.ErrInfeasible", err)
			}
		})
	}
}

// TestRegisteredSolversHonorCancellation: an already-cancelled context must
// abort every entry before it routes anything.
func TestRegisteredSolversHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range List() {
		t.Run(e.Name, func(t *testing.T) {
			p := starProblem(t)
			_, err := e.Solve(ctx, p, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
		})
	}
}
