package solver

import (
	"context"

	"github.com/muerp/quantumnet/internal/baseline"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/exact"
)

// init registers every built-in scheme. Registration order is the canonical
// plot order: first the five schemes of the paper's evaluation, then the
// ablation variants, then the exact ground-truth solver.
func init() {
	// The paper's evaluation (§V): three proposed algorithms, two baselines.
	Register(Entry{
		Name:                    "alg2",
		Label:                   "Algorithm 2 (optimal)",
		NeedsSufficientCapacity: true,
		Default:                 true,
		Solve:                   core.SolveOptimalContext,
	})
	Register(Entry{
		Name:    "alg3",
		Label:   "Algorithm 3 (conflict-free)",
		Default: true,
		Solve:   core.SolveConflictFreeContext,
	})
	Register(Entry{
		Name:        "alg4",
		Label:       "Algorithm 4 (Prim-based)",
		ConsumesRNG: true,
		Default:     true,
		Solve:       core.SolvePrimContext,
	})
	Register(Entry{
		Name:    "eqcast",
		Label:   "E-Q-CAST",
		Default: true,
		Solve:   baseline.SolveEQCastContext,
	})
	Register(Entry{
		Name:    "nfusion",
		Label:   "N-FUSION",
		Default: true,
		Solve:   baseline.SolveNFusionContext,
	})

	// Ablation variants (not part of the paper; see core/ablation.go and
	// baseline/ablation.go).
	Register(Entry{
		Name:  "alg3-ascending",
		Label: "Algorithm 3 (ascending replay ablation)",
		Solve: func(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
			return core.SolveConflictFreeOrderedContext(ctx, p, core.ReplayAscending, opts)
		},
	})
	Register(Entry{
		Name:        "alg3-random",
		Label:       "Algorithm 3 (random replay ablation)",
		ConsumesRNG: true,
		Solve: func(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
			return core.SolveConflictFreeOrderedContext(ctx, p, core.ReplayRandom, opts)
		},
	})
	Register(Entry{
		Name:  "alg4-beststart",
		Label: "Algorithm 4 (best-of-all-starts ablation)",
		Solve: core.SolvePrimBestOfAllStartsContext,
	})
	Register(Entry{
		Name:  "nfusion-firsthub",
		Label: "N-FUSION (first-user hub ablation)",
		Solve: func(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
			return baseline.SolveNFusionFixedHubContext(ctx, p, p.Users[0], opts)
		},
	})

	// Exact branch-and-bound ground truth (default safety limits; use the
	// exact package directly for custom limits).
	Register(Entry{
		Name:  "exact",
		Label: "Exact (branch-and-bound)",
		Solve: func(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Solution, error) {
			return exact.Solve(ctx, p, exact.DefaultLimits(), opts)
		},
	})
}
