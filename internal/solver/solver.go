// Package solver is the single dispatch surface for every routing scheme in
// the repo: the paper's Algorithms 2-4, the evaluation baselines, the
// ablation variants and the exact branch-and-bound. Each scheme registers
// one Entry — its SolveFunc plus the metadata that used to live as special
// cases in the callers (does it need the sufficient-capacity network copy,
// does it consume randomness, how is it labelled in the paper's plots) —
// and every dispatch site (the sim harness, the public facade, the CLIs,
// the sched/repair/multigroup extensions) resolves schemes through Get and
// List instead of switching on names.
package solver

import (
	"fmt"
	"sort"
	"strings"

	"github.com/muerp/quantumnet/internal/core"
)

// Entry describes one registered routing scheme.
type Entry struct {
	// Name is the scheme's stable identifier — the registry key, the CLI
	// -alg value and the column key in experiment output (e.g. "alg3").
	Name string
	// Label is the human-readable name used in plots and listings (e.g.
	// "Algorithm 3 (conflict-free)").
	Label string
	// NeedsSufficientCapacity marks schemes only defined under the paper's
	// sufficient-capacity condition Q_r >= 2|U| (Algorithm 2): the
	// experiment harness solves them on a switch-boosted network copy.
	NeedsSufficientCapacity bool
	// ConsumesRNG marks schemes that draw from SolveOptions.RNG (Algorithm
	// 4's random start, the random-replay ablation). Callers that care
	// about reproducible RNG streams only hand the per-trial stream to
	// these.
	ConsumesRNG bool
	// Default marks the five schemes of the paper's evaluation, run when no
	// explicit algorithm selection is given.
	Default bool
	// Solve routes a problem under the scheme; see core.SolveFunc.
	Solve core.SolveFunc
}

// Solver adapts the entry to the core.Solver interface.
func (e Entry) Solver() core.Solver {
	return core.SolverFunc{ID: e.Name, Fn: e.Solve}
}

// registry holds entries in registration order, which is the canonical plot
// order (List's contract). Registration happens in package init functions;
// after that the registry is read-only, so no locking is needed.
var (
	registry []Entry
	byName   = map[string]int{}
)

// Register adds a scheme to the registry. It panics on an empty or duplicate
// name or a nil SolveFunc — registration happens at init time, where a panic
// is an immediate programming-error diagnostic, not a runtime failure.
func Register(e Entry) {
	if e.Name == "" {
		panic("solver: Register with empty name")
	}
	if e.Solve == nil {
		panic(fmt.Sprintf("solver: Register(%q) with nil SolveFunc", e.Name))
	}
	if _, dup := byName[e.Name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", e.Name))
	}
	byName[e.Name] = len(registry)
	registry = append(registry, e)
}

// Get returns the entry registered under name. The error of an unknown name
// lists every registered name, so CLI users see their options.
func Get(name string) (Entry, error) {
	if i, ok := byName[name]; ok {
		return registry[i], nil
	}
	return Entry{}, fmt.Errorf("solver: unknown algorithm %q (known: %s)", name, strings.Join(Names(), ", "))
}

// List returns every registered entry in canonical plot order (the
// registration order). The returned slice is a copy.
func List() []Entry {
	return append([]Entry(nil), registry...)
}

// Defaults returns the entries of the paper's evaluation (Default: true) in
// plot order.
func Defaults() []Entry {
	var out []Entry
	for _, e := range registry {
		if e.Default {
			out = append(out, e)
		}
	}
	return out
}

// Names returns every registered name in plot order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// Rank returns name's position in the canonical plot order, and whether the
// name is registered at all.
func Rank(name string) (int, bool) {
	i, ok := byName[name]
	return i, ok
}

// SortCanonical orders algorithm names in place: registered names first, in
// plot order, then unknown names alphabetically. It is the single ordering
// rule behind experiment tables, CSV columns and the facade's solver list.
func SortCanonical(names []string) {
	sort.Slice(names, func(i, j int) bool {
		oi, iOK := Rank(names[i])
		oj, jOK := Rank(names[j])
		switch {
		case iOK && jOK:
			return oi < oj
		case iOK:
			return true
		case jOK:
			return false
		default:
			return names[i] < names[j]
		}
	})
}
