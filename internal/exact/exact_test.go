package exact

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// smallNet builds a connected random net small enough for exact search.
func smallNet(rng *rand.Rand, users, switches, qubits int) *graph.Graph {
	n := users + switches
	g := graph.New(n, 2*n)
	for i := 0; i < users; i++ {
		g.AddUser(rng.Float64()*4000, rng.Float64()*4000)
	}
	for i := 0; i < switches; i++ {
		g.AddSwitch(rng.Float64()*4000, rng.Float64()*4000, qubits)
	}
	length := func(a, b graph.NodeID) float64 {
		na, nb := g.Node(a), g.Node(b)
		return math.Max(1, math.Hypot(na.X-nb.X, na.Y-nb.Y))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a, b := graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, b, length(a, b))
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b && !g.HasEdge(a, b) {
			g.MustAddEdge(a, b, length(a, b))
		}
	}
	return g
}

func mustProblem(t *testing.T, g *graph.Graph) *core.Problem {
	t.Helper()
	p, err := core.AllUsersProblem(g, quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveValidatesAndBeatsHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		g := smallNet(rng, 2+rng.Intn(2), 2+rng.Intn(3), 2+2*rng.Intn(2))
		p := mustProblem(t, g)
		opt, err := Solve(context.Background(), p, DefaultLimits(), nil)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				// Then the heuristics must fail too.
				if _, err := core.SolveConflictFree(p); !errors.Is(err, core.ErrInfeasible) {
					t.Fatalf("net %d: exact infeasible but alg3 = %v", i, err)
				}
				continue
			}
			t.Fatalf("net %d: %v", i, err)
		}
		if err := p.Validate(opt); err != nil {
			t.Fatalf("net %d: exact tree invalid: %v", i, err)
		}
		for _, solver := range []core.Solver{core.ConflictFree(), core.Prim(0)} {
			sol, err := solver.Solve(context.Background(), p, nil)
			if err != nil {
				continue // a heuristic may fail where exact succeeds
			}
			if sol.Rate() > opt.Rate()*(1+1e-9) {
				t.Fatalf("net %d: %s rate %g beats exact optimum %g",
					i, solver.Name(), sol.Rate(), opt.Rate())
			}
		}
	}
}

func TestSolveMatchesTheoremThree(t *testing.T) {
	// Under sufficient capacity, Algorithm 2 equals the exact optimum.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 15; i++ {
		users := 2 + rng.Intn(2)
		g := smallNet(rng, users, 2+rng.Intn(3), 2*users)
		p := mustProblem(t, g)
		opt, err := Solve(context.Background(), p, DefaultLimits(), nil)
		if err != nil {
			continue
		}
		alg2, err := core.SolveOptimal(p)
		if err != nil {
			t.Fatalf("net %d: alg2 failed on exact-feasible instance: %v", i, err)
		}
		if math.Abs(alg2.Rate()-opt.Rate()) > 1e-9*opt.Rate() {
			t.Fatalf("net %d: alg2 %g != exact %g under sufficient capacity",
				i, alg2.Rate(), opt.Rate())
		}
	}
}

func TestSolveRespectsLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := smallNet(rng, 3, 20, 4) // 23 nodes > default 16
	p := mustProblem(t, g)
	if _, err := Solve(context.Background(), p, DefaultLimits(), nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
	// Tiny channel cap triggers the blowup guard.
	small := smallNet(rng, 3, 5, 4)
	ps := mustProblem(t, small)
	if _, err := Solve(context.Background(), ps, Limits{MaxNodes: 16, MaxChannels: 1}, nil); !errors.Is(err, ErrChannelBlowup) {
		t.Fatalf("error = %v, want ErrChannelBlowup", err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	g := graph.New(3, 1)
	g.AddUser(0, 0)
	g.AddUser(1, 0)
	g.AddUser(50, 50)
	g.MustAddEdge(0, 1, 100)
	p := mustProblem(t, g)
	if _, err := Solve(context.Background(), p, DefaultLimits(), nil); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

// TestSolveCancellation pins the contract that a cancelled context aborts
// the branch-and-bound within one search iteration: the recursion checks the
// done channel at the top of every loop pass, latches the cause and unwinds
// every level, so the caller gets ctx.Err() back wrapped.
func TestSolveCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := smallNet(rng, 4, 8, 4)
	p := mustProblem(t, g)

	// Sanity: the instance is solvable when not cancelled...
	if _, err := Solve(context.Background(), p, DefaultLimits(), nil); err != nil && !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("uncancelled solve: %v", err)
	}

	// ...but an already-cancelled context aborts before any tree comes back.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := Solve(ctx, p, DefaultLimits(), nil)
	if sol != nil {
		t.Fatal("cancelled solve returned a solution")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestOptimalityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := smallNet(rng, 3, 4, 2)
	p := mustProblem(t, g)
	gap, err := OptimalityGap(context.Background(), p, core.ConflictFree(), DefaultLimits())
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			t.Skip("instance infeasible")
		}
		t.Fatal(err)
	}
	if gap < 0 || gap > 1+1e-9 {
		t.Fatalf("gap = %g outside [0, 1]", gap)
	}
}

// TestQuickHeuristicGapsBounded: on random tight instances no heuristic
// ever beats the exact optimum, and every heuristic failure is an honest
// ErrInfeasible. Note that heuristics MAY fail on feasible instances —
// deciding feasibility is NP-complete (paper Theorem 1), so the greedy
// searches have no completeness guarantee and occasionally dead-end where
// the exhaustive search still finds a tree. That outcome is recorded, not
// failed.
func TestQuickHeuristicGapsBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := smallNet(rng, 2+rng.Intn(2), 2+rng.Intn(3), 2)
		p, err := core.AllUsersProblem(g, quantum.DefaultParams())
		if err != nil {
			return false
		}
		opt, err := Solve(context.Background(), p, DefaultLimits(), nil)
		if err != nil {
			return errors.Is(err, core.ErrInfeasible) || errors.Is(err, ErrChannelBlowup)
		}
		for _, solver := range []core.Solver{core.ConflictFree(), core.Prim(0)} {
			sol, err := solver.Solve(context.Background(), p, nil)
			if err != nil {
				if !errors.Is(err, core.ErrInfeasible) {
					t.Logf("seed %d: %s unexpected error %v", seed, solver.Name(), err)
					return false
				}
				// A heuristic dead-end on a feasible instance: allowed
				// (Theorem 1 — feasibility itself is NP-complete).
				continue
			}
			if p.Validate(sol) != nil {
				t.Logf("seed %d: %s invalid tree", seed, solver.Name())
				return false
			}
			if sol.Rate() > opt.Rate()*(1+1e-9) {
				t.Logf("seed %d: %s beats the optimum", seed, solver.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
