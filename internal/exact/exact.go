// Package exact solves small MUERP instances optimally by exhaustive
// search. MUERP is NP-hard (paper Theorem 2), so this does not scale past
// toy networks — its purpose is ground truth: validating the heuristics'
// solution quality, quantifying their optimality gap, and powering tests.
//
// The search enumerates every simple user-to-user channel (interior
// vertices restricted to switches with >= 2 qubits), then every
// (|U|-1)-subset of channels forming a capacity-feasible spanning tree,
// with branch-and-bound pruning on the rate product.
package exact

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/unionfind"
)

// Limits guard against accidentally launching an exponential search on a
// full-size network.
type Limits struct {
	// MaxNodes caps the network size (default 16).
	MaxNodes int
	// MaxChannels caps the enumerated channel count (default 4096).
	MaxChannels int
}

// DefaultLimits returns the default safety caps.
func DefaultLimits() Limits { return Limits{MaxNodes: 16, MaxChannels: 4096} }

// Search-size errors.
var (
	ErrTooLarge      = errors.New("exact: instance exceeds search limits")
	ErrChannelBlowup = errors.New("exact: channel enumeration exceeds limits")
)

// Solve returns the optimal MUERP solution of p, or core.ErrInfeasible when
// no capacity-feasible spanning tree exists. The branch-and-bound recursion
// checks ctx once per search iteration, so a cancelled context aborts an
// in-flight solve promptly with ctx.Err(); a nil ctx never cancels. opts
// follows the core SolveFunc contract (the search is deterministic, so only
// opts.Stats is consulted).
func Solve(ctx context.Context, p *core.Problem, lim Limits, opts *core.SolveOptions) (*core.Solution, error) {
	if lim.MaxNodes <= 0 {
		lim.MaxNodes = DefaultLimits().MaxNodes
	}
	if lim.MaxChannels <= 0 {
		lim.MaxChannels = DefaultLimits().MaxChannels
	}
	if n := p.Graph.NumNodes(); n > lim.MaxNodes {
		return nil, fmt.Errorf("%w: %d nodes > %d", ErrTooLarge, n, lim.MaxNodes)
	}
	st := opts.StatsSink()
	chans, err := enumerateChannels(p, lim.MaxChannels)
	if err != nil {
		return nil, err
	}
	st.AddConsidered(int64(len(chans)))
	// Descending rate order makes the bound prune early.
	sort.SliceStable(chans, func(i, j int) bool { return chans[i].Rate > chans[j].Rate })

	idx := make(map[graph.NodeID]int, len(p.Users))
	for i, u := range p.Users {
		idx[u] = i
	}
	need := len(p.Users) - 1
	best := -1.0
	var bestTree []quantum.Channel

	led := quantum.NewLedger(p.Graph)
	var chosen []quantum.Channel

	// stop latches the context's error; once set, every recursion level
	// unwinds immediately (the per-level undo steps still run, so led and
	// uf stay consistent — not that they are reused after an abort).
	var stop error
	done := func() bool {
		if stop != nil {
			return true
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				stop = ctx.Err()
				return true
			default:
			}
		}
		return false
	}

	// rec extends the current partial tree with channels from `start` on.
	// uf tracks user connectivity; rate is the partial product.
	var rec func(start int, uf *unionfind.UnionFind, rate float64)
	rec = func(start int, uf *unionfind.UnionFind, rate float64) {
		if len(chosen) == need {
			if uf.Sets() == 1 && rate > best {
				best = rate
				bestTree = append(bestTree[:0], chosen...)
			}
			return
		}
		remaining := need - len(chosen)
		for i := start; i <= len(chans)-remaining; i++ {
			if done() {
				return
			}
			ch := chans[i]
			// Bound: even taking the best remaining channels cannot beat
			// the incumbent (channels are rate-sorted, all rates <= ch's).
			if bound := rate * pow(ch.Rate, remaining); bound <= best {
				return
			}
			a, b := ch.Endpoints()
			ia, ib := idx[a], idx[b]
			if uf.Connected(ia, ib) || !led.CanCarry(ch.Nodes) {
				continue
			}
			// Apply.
			snapshot := cloneUF(uf)
			uf.Union(ia, ib)
			if err := led.Reserve(ch.Nodes); err != nil {
				panic(fmt.Sprintf("exact: reserve after CanCarry: %v", err))
			}
			st.AddReservations(1)
			chosen = append(chosen, ch)
			rec(i+1, uf, rate*ch.Rate)
			// Undo.
			chosen = chosen[:len(chosen)-1]
			led.Release(ch.Nodes)
			*uf = *snapshot
		}
	}
	rec(0, unionfind.New(len(p.Users)), 1)
	if stop != nil {
		return nil, fmt.Errorf("exact: %w", stop)
	}

	if best < 0 {
		return nil, fmt.Errorf("%w (exact search)", core.ErrInfeasible)
	}
	st.AddCommitted(int64(len(bestTree)))
	tree := quantum.Tree{Channels: append([]quantum.Channel(nil), bestTree...)}
	return &core.Solution{Tree: tree, Algorithm: "exact", MeasurementFactor: 1}, nil
}

// OptimalityGap runs the exact solver and a heuristic side by side and
// returns heuristicRate/optimalRate in [0, 1] (1 = the heuristic was
// optimal; 0 = the heuristic failed on a feasible instance).
func OptimalityGap(ctx context.Context, p *core.Problem, solver core.Solver, lim Limits) (float64, error) {
	opt, err := Solve(ctx, p, lim, nil)
	if err != nil {
		return 0, err
	}
	sol, err := solver.Solve(ctx, p, nil)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return 0, nil
		}
		return 0, err
	}
	if err := p.Validate(sol); err != nil {
		return 0, fmt.Errorf("exact: heuristic %s produced an invalid tree: %w", solver.Name(), err)
	}
	return sol.Rate() / opt.Rate(), nil
}

// enumerateChannels lists every simple channel between user pairs.
func enumerateChannels(p *core.Problem, maxChannels int) ([]quantum.Channel, error) {
	users := make(map[graph.NodeID]bool, len(p.Users))
	for _, u := range p.Users {
		users[u] = true
	}
	var out []quantum.Channel
	visited := make(map[graph.NodeID]bool)
	var path []graph.NodeID
	var overflow error
	var dfs func(v, src graph.NodeID)
	dfs = func(v, src graph.NodeID) {
		if overflow != nil {
			return
		}
		path = append(path, v)
		visited[v] = true
		defer func() {
			path = path[:len(path)-1]
			visited[v] = false
		}()
		if v != src && users[v] {
			if src < v {
				ch, err := quantum.NewChannel(p.Graph, path, p.Params)
				if err != nil {
					overflow = fmt.Errorf("exact: enumerated invalid channel: %w", err)
					return
				}
				out = append(out, ch)
				if len(out) > maxChannels {
					overflow = fmt.Errorf("%w: more than %d channels", ErrChannelBlowup, maxChannels)
				}
			}
			return
		}
		if v != src {
			n := p.Graph.Node(v)
			if n.Kind != graph.KindSwitch || n.Qubits < 2 {
				return
			}
		}
		for _, nb := range p.Graph.NeighborIDs(v) {
			if !visited[nb] {
				dfs(nb, src)
			}
		}
	}
	for _, u := range p.Users {
		dfs(u, u)
		if overflow != nil {
			return nil, overflow
		}
	}
	return out, nil
}

// pow is x^n for small non-negative n.
func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// cloneUF snapshots a union-find for backtracking: unioning every element
// with its representative reproduces the partition.
func cloneUF(u *unionfind.UnionFind) *unionfind.UnionFind {
	c := unionfind.New(u.Len())
	for i := 0; i < u.Len(); i++ {
		c.Union(i, u.Find(i))
	}
	return c
}
