// Package analysis provides structural diagnostics over routed networks.
// Its centerpiece quantifies the paper's Fig. 7b observation that "the
// performance of our algorithm is mainly affected by some critical edges in
// the network structure": for every fiber it measures how the achieved
// entanglement rate changes when that fiber alone is cut.
package analysis

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// EdgeImpact records the effect of cutting one fiber.
type EdgeImpact struct {
	Edge graph.Edge
	// RateWithout is the entanglement rate achieved after removing the
	// fiber (0 when routing becomes infeasible).
	RateWithout float64
	// Impact is 1 - RateWithout/baseline: 0 for an irrelevant fiber, 1 for
	// one whose loss kills the entanglement entirely, negative when cutting
	// the fiber *improves* the heuristic's outcome (the paper's third
	// Fig. 7b observation).
	Impact float64
}

// Critical reports whether losing this single fiber makes multi-user
// entanglement infeasible.
func (e EdgeImpact) Critical() bool { return e.RateWithout == 0 }

// Report is the full single-fiber-cut study of one network.
type Report struct {
	// Baseline is the rate on the intact network.
	Baseline float64
	// Impacts lists every fiber, most harmful first.
	Impacts []EdgeImpact
}

// CriticalEdges returns the fibers whose individual loss breaks
// feasibility.
func (r Report) CriticalEdges() []graph.Edge {
	var out []graph.Edge
	for _, im := range r.Impacts {
		if im.Critical() {
			out = append(out, im.Edge)
		}
	}
	return out
}

// ImprovingEdges returns the fibers whose removal *raises* the achieved
// rate — fibers that bait the greedy router into a poor channel.
func (r Report) ImprovingEdges() []graph.Edge {
	var out []graph.Edge
	for _, im := range r.Impacts {
		if im.Impact < 0 {
			out = append(out, im.Edge)
		}
	}
	return out
}

// EdgeCriticality routes g's users with the solver on the intact network
// and then once per single-fiber removal, producing the full impact report.
// The cost is |E|+1 solver runs.
//
// The intact network must be routable; ErrInfeasible from the baseline is
// returned as-is.
func EdgeCriticality(g *graph.Graph, solver core.Solver, params quantum.Params) (Report, error) {
	if solver == nil {
		return Report{}, errors.New("analysis: nil solver")
	}
	baseline, err := rateOn(g, solver, params)
	if err != nil {
		return Report{}, err
	}
	if baseline == 0 {
		return Report{}, fmt.Errorf("analysis: baseline routing infeasible: %w", core.ErrInfeasible)
	}
	report := Report{Baseline: baseline}
	for _, e := range g.Edges() {
		cut := g.WithoutEdges([]graph.EdgeID{e.ID})
		rate, err := rateOn(cut, solver, params)
		if err != nil {
			return Report{}, fmt.Errorf("analysis: cutting fiber %d-%d: %w", e.A, e.B, err)
		}
		report.Impacts = append(report.Impacts, EdgeImpact{
			Edge:        e,
			RateWithout: rate,
			Impact:      1 - rate/baseline,
		})
	}
	sort.SliceStable(report.Impacts, func(i, j int) bool {
		return report.Impacts[i].Impact > report.Impacts[j].Impact
	})
	return report, nil
}

// rateOn routes all users of g and returns the achieved rate, mapping
// infeasibility to 0 (the evaluation convention).
func rateOn(g *graph.Graph, solver core.Solver, params quantum.Params) (float64, error) {
	prob, err := core.AllUsersProblem(g, params)
	if err != nil {
		return 0, err
	}
	sol, err := solver.Solve(context.Background(), prob, nil)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return 0, nil
		}
		return 0, err
	}
	if err := prob.Validate(sol); err != nil {
		return 0, fmt.Errorf("analysis: solver %s produced an invalid tree: %w", solver.Name(), err)
	}
	return sol.Rate(), nil
}
