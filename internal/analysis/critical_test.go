package analysis

import (
	"errors"
	"math"
	"testing"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/topology"

	"math/rand"
)

// bridgeNet builds a network with one obvious critical fiber: two users
// joined only through switch s, plus a redundant pair of fibers elsewhere.
//
//	u0 ==(two parallel routes via s2, s3)== u1 --(bridge via s4)-- u5
func bridgeNet(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6, 7)
	g.AddUser(0, 0)            // 0
	g.AddUser(2000, 0)         // 1
	g.AddSwitch(1000, 500, 4)  // 2
	g.AddSwitch(1000, -500, 4) // 3
	g.AddSwitch(3000, 0, 4)    // 4
	g.AddUser(4000, 0)         // 5
	g.MustAddEdge(0, 2, 1100)
	g.MustAddEdge(2, 1, 1100)
	g.MustAddEdge(0, 3, 1200)
	g.MustAddEdge(3, 1, 1200)
	g.MustAddEdge(1, 4, 1000) // bridge half 1
	g.MustAddEdge(4, 5, 1000) // bridge half 2
	return g
}

func TestEdgeCriticalityFindsBridge(t *testing.T) {
	g := bridgeNet(t)
	report, err := EdgeCriticality(g, core.ConflictFree(), quantum.DefaultParams())
	if err != nil {
		t.Fatalf("EdgeCriticality: %v", err)
	}
	if report.Baseline <= 0 {
		t.Fatalf("baseline = %g", report.Baseline)
	}
	critical := report.CriticalEdges()
	if len(critical) != 2 {
		t.Fatalf("critical edges = %v, want the two bridge fibers", critical)
	}
	for _, e := range critical {
		isBridge := (e.A == 1 && e.B == 4) || (e.A == 4 && e.B == 5)
		if !isBridge {
			t.Errorf("non-bridge fiber %d-%d flagged critical", e.A, e.B)
		}
	}
	// Impacts are sorted most-harmful first: the two critical fibers lead.
	if !report.Impacts[0].Critical() || !report.Impacts[1].Critical() {
		t.Fatalf("critical fibers not sorted first: %+v", report.Impacts[:2])
	}
}

func TestEdgeCriticalityRedundantEdgesHarmless(t *testing.T) {
	g := bridgeNet(t)
	report, err := EdgeCriticality(g, core.ConflictFree(), quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Cutting either of the redundant u0-u1 routes must not break
	// feasibility; cutting the *unused* one must not change the rate.
	harmless := 0
	for _, im := range report.Impacts {
		viaRedundant := im.Edge.A == 3 || im.Edge.B == 3 || im.Edge.A == 2 || im.Edge.B == 2
		if viaRedundant && im.Critical() {
			t.Errorf("redundant fiber %d-%d flagged critical", im.Edge.A, im.Edge.B)
		}
		if math.Abs(im.Impact) < 1e-12 {
			harmless++
		}
	}
	if harmless < 2 {
		t.Errorf("expected at least the unused backup route to be harmless, got %d harmless fibers", harmless)
	}
}

func TestEdgeCriticalityInfeasibleBaseline(t *testing.T) {
	g := graph.New(2, 0)
	g.AddUser(0, 0)
	g.AddUser(1, 1)
	_, err := EdgeCriticality(g, core.ConflictFree(), quantum.DefaultParams())
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestEdgeCriticalityNilSolver(t *testing.T) {
	if _, err := EdgeCriticality(bridgeNet(t), nil, quantum.DefaultParams()); err == nil {
		t.Fatal("nil solver accepted")
	}
}

func TestEdgeCriticalityOnRandomNetwork(t *testing.T) {
	cfg := topology.Default()
	cfg.Users = 5
	cfg.Switches = 15
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	report, err := EdgeCriticality(g, core.ConflictFree(), quantum.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Impacts) != g.NumEdges() {
		t.Fatalf("%d impacts for %d fibers", len(report.Impacts), g.NumEdges())
	}
	// Paper Fig. 7b observation 2: most fibers are not critical.
	if crit := len(report.CriticalEdges()); crit > g.NumEdges()/2 {
		t.Errorf("%d of %d fibers critical — expected a small critical set", crit, g.NumEdges())
	}
	// Sorted descending by impact.
	for i := 1; i < len(report.Impacts); i++ {
		if report.Impacts[i].Impact > report.Impacts[i-1].Impact+1e-12 {
			t.Fatalf("impacts not sorted at %d", i)
		}
	}
}
