package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/transport"
)

// controller is the central node of §II-B: it collects requests, computes
// the routing plan offline, disseminates it, then drives synchronized
// entanglement rounds and aggregates their outcomes.
type controller struct {
	conn transport.Conn
	g    *graph.Graph
	cfg  Config
	rng  *rand.Rand
}

// collectRequests blocks until every user in the network has requested
// entanglement, returning the user set in ascending ID order.
func (c *controller) collectRequests(ctx context.Context) ([]graph.NodeID, error) {
	want := len(c.g.Users())
	seen := make(map[graph.NodeID]bool, want)
	for len(seen) < want {
		msg, err := c.conn.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("runtime: controller awaiting requests: %w", err)
		}
		if msg.Kind != KindRequest {
			return nil, fmt.Errorf("runtime: controller expected request, got %q from %s", msg.Kind, msg.From)
		}
		var req RequestBody
		if err := decodeBody(msg.Payload, &req); err != nil {
			return nil, err
		}
		id := graph.NodeID(req.User)
		if !c.g.HasNode(id) || c.g.Node(id).Kind != graph.KindUser {
			return nil, fmt.Errorf("runtime: request from non-user node %d", id)
		}
		seen[id] = true
	}
	users := make([]graph.NodeID, 0, want)
	for id := range seen {
		users = append(users, id)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	return users, nil
}

// broadcast sends one message to every node of the network.
func (c *controller) broadcast(kind string, payload []byte) error {
	for _, n := range c.g.Nodes() {
		if err := c.conn.Send(nodeName(n.ID), kind, payload); err != nil {
			return fmt.Errorf("runtime: broadcast %s to node %d: %w", kind, n.ID, err)
		}
	}
	return nil
}

// makePlan converts the routed solution into its wire form.
func (c *controller) makePlan(sol *core.Solution) (PlanBody, error) {
	plan := PlanBody{
		Alpha:    c.cfg.Params.Alpha,
		SwapProb: c.cfg.Params.SwapProb,
		Rounds:   c.cfg.Rounds,
	}
	for i, ch := range sol.Tree.Channels {
		cp := ChannelPlan{Index: i, Path: make([]int64, len(ch.Nodes))}
		for j, id := range ch.Nodes {
			cp.Path[j] = int64(id)
		}
		for j := 0; j+1 < len(ch.Nodes); j++ {
			e, ok := c.g.EdgeBetween(ch.Nodes[j], ch.Nodes[j+1])
			if !ok {
				return PlanBody{}, fmt.Errorf("runtime: plan channel %d: missing fiber %d-%d", i, ch.Nodes[j], ch.Nodes[j+1])
			}
			cp.LinkLens = append(cp.LinkLens, e.Length)
		}
		plan.Channels = append(plan.Channels, cp)
	}
	return plan, nil
}

// runRounds drives the synchronized entanglement rounds and fills in the
// report's statistics.
func (c *controller) runRounds(ctx context.Context, sol *core.Solution, report *Report) error {
	plan, err := c.makePlan(sol)
	if err != nil {
		return err
	}
	planBytes, err := encodeBody(plan)
	if err != nil {
		return err
	}
	if err := c.broadcast(KindPlan, planBytes); err != nil {
		return err
	}

	totalLinks := 0
	for _, ch := range plan.Channels {
		totalLinks += len(ch.LinkLens)
	}
	report.ChannelSuccess = make([]int, len(plan.Channels))

	extra := sol.MeasurementFactor
	if extra == 0 {
		extra = 1
	}

	for round := 1; round <= c.cfg.Rounds; round++ {
		startBytes, err := encodeBody(RoundBody{Round: round})
		if err != nil {
			return err
		}
		if err := c.broadcast(KindRoundStart, startBytes); err != nil {
			return err
		}

		linkOK, err := c.collectLinkReports(ctx, plan, totalLinks, round)
		if err != nil {
			return err
		}
		report.LinksAttempted += totalLinks

		chanOK, swaps, err := c.resolveSwaps(ctx, plan, linkOK, round)
		if err != nil {
			return err
		}
		report.SwapsAttempted += swaps

		success := true
		for i, ok := range chanOK {
			if ok {
				report.ChannelSuccess[i]++
			} else {
				success = false
			}
		}
		if success && extra < 1 && c.rng.Float64() >= extra {
			success = false
		}
		if success {
			report.Successes++
		}
		resBytes, err := encodeBody(RoundResultBody{Round: round, OK: success})
		if err != nil {
			return err
		}
		for _, u := range c.g.Users() {
			if err := c.conn.Send(nodeName(u), KindRoundResult, resBytes); err != nil {
				return fmt.Errorf("runtime: round result to user %d: %w", u, err)
			}
		}
	}
	return nil
}

// collectLinkReports gathers every link outcome of one round, keyed
// [channel][link].
func (c *controller) collectLinkReports(ctx context.Context, plan PlanBody, totalLinks, round int) ([][]bool, error) {
	linkOK := make([][]bool, len(plan.Channels))
	for i, ch := range plan.Channels {
		linkOK[i] = make([]bool, len(ch.LinkLens))
	}
	seen := make(map[[2]int]bool, totalLinks)
	for len(seen) < totalLinks {
		msg, err := c.conn.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("runtime: awaiting link reports (round %d): %w", round, err)
		}
		if msg.Kind != KindLinkReport {
			return nil, fmt.Errorf("runtime: expected link report, got %q from %s", msg.Kind, msg.From)
		}
		var rep LinkReportBody
		if err := decodeBody(msg.Payload, &rep); err != nil {
			return nil, err
		}
		if rep.Round != round {
			return nil, fmt.Errorf("runtime: link report for round %d during round %d", rep.Round, round)
		}
		if rep.Channel < 0 || rep.Channel >= len(linkOK) || rep.Link < 0 || rep.Link >= len(linkOK[rep.Channel]) {
			return nil, fmt.Errorf("runtime: link report out of plan bounds (%d,%d)", rep.Channel, rep.Link)
		}
		key := [2]int{rep.Channel, rep.Link}
		if seen[key] {
			return nil, fmt.Errorf("runtime: duplicate link report (%d,%d)", rep.Channel, rep.Link)
		}
		seen[key] = true
		linkOK[rep.Channel][rep.Link] = rep.OK
	}
	return linkOK, nil
}

// resolveSwaps asks each interior switch whose two adjacent links came up
// to perform its BSM, gathers the outcomes, and returns per-channel
// success plus the number of swaps attempted.
func (c *controller) resolveSwaps(ctx context.Context, plan PlanBody, linkOK [][]bool, round int) ([]bool, int, error) {
	chanOK := make([]bool, len(plan.Channels))
	type pending struct{ channel, pos int }
	requested := make(map[pending]bool)

	for i, ch := range plan.Channels {
		ok := true
		for _, up := range linkOK[i] {
			if !up {
				ok = false
				break
			}
		}
		chanOK[i] = ok
		if !ok {
			continue // a dark link already failed the channel; no BSM needed
		}
		for pos := 1; pos+1 < len(ch.Path); pos++ {
			body, err := encodeBody(SwapBody{Round: round, Channel: i, Pos: pos})
			if err != nil {
				return nil, 0, err
			}
			sw := graph.NodeID(ch.Path[pos])
			if err := c.conn.Send(nodeName(sw), KindSwapRequest, body); err != nil {
				return nil, 0, fmt.Errorf("runtime: swap request to switch %d: %w", sw, err)
			}
			requested[pending{channel: i, pos: pos}] = true
		}
	}

	attempted := len(requested)
	for len(requested) > 0 {
		msg, err := c.conn.Recv(ctx)
		if err != nil {
			return nil, 0, fmt.Errorf("runtime: awaiting swap reports (round %d): %w", round, err)
		}
		if msg.Kind != KindSwapReport {
			return nil, 0, fmt.Errorf("runtime: expected swap report, got %q from %s", msg.Kind, msg.From)
		}
		var rep SwapBody
		if err := decodeBody(msg.Payload, &rep); err != nil {
			return nil, 0, err
		}
		if rep.Round != round {
			return nil, 0, fmt.Errorf("runtime: swap report for round %d during round %d", rep.Round, round)
		}
		key := pending{channel: rep.Channel, pos: rep.Pos}
		if !requested[key] {
			return nil, 0, fmt.Errorf("runtime: unsolicited swap report (%d,%d)", rep.Channel, rep.Pos)
		}
		delete(requested, key)
		if !rep.OK {
			chanOK[rep.Channel] = false
		}
	}
	return chanOK, attempted, nil
}
