// Package runtime executes a routed entanglement plan as a distributed
// protocol, following the paper's §II-B process: quantum users send
// entanglement requests to a central controller; the controller computes
// the routes offline with any MUERP solver and disseminates the plan over
// classical channels; then, in synchronized rounds, links attempt
// entanglement, switches perform heralded BSM swaps, and the controller
// aggregates per-round success of the whole entanglement tree.
//
// Every node (controller, users, switches) runs as its own goroutine and
// communicates exclusively through a transport.Network, so the same
// protocol runs unchanged over the in-memory plane or real TCP sockets.
package runtime

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/muerp/quantumnet/internal/graph"
)

// Message kinds of the runtime protocol, in the order they occur.
const (
	// KindRequest is sent by each user to the controller to ask for
	// entanglement (payload: RequestBody).
	KindRequest = "request"
	// KindPlan carries the routed plan from the controller to every node
	// (payload: PlanBody).
	KindPlan = "plan"
	// KindRoundStart opens one synchronized entanglement round (payload:
	// RoundBody).
	KindRoundStart = "round_start"
	// KindLinkReport carries one quantum link's heralded outcome from the
	// link's upstream owner to the controller (payload: LinkReportBody).
	KindLinkReport = "link_report"
	// KindSwapRequest asks a switch to perform one BSM for a channel whose
	// two adjacent links both came up (payload: SwapBody).
	KindSwapRequest = "swap_request"
	// KindSwapReport carries the BSM outcome back (payload: SwapBody).
	KindSwapReport = "swap_report"
	// KindRoundResult announces a round's end-to-end outcome to the users
	// (payload: RoundResultBody).
	KindRoundResult = "round_result"
	// KindStop shuts a node down (no payload).
	KindStop = "stop"
)

// RequestBody is a user's entanglement request.
type RequestBody struct {
	User int64
}

// ChannelPlan describes one quantum channel of the routed tree in wire
// form: the node path and the per-link fiber lengths (from which each node
// derives its link success probabilities locally).
type ChannelPlan struct {
	Index    int
	Path     []int64
	LinkLens []float64
}

// PlanBody is the full routing plan the controller disseminates. Every
// node receives the same plan and derives its own duties: a node owns the
// link i of a channel when it is the path's i-th vertex, and performs a
// swap for every interior position it occupies.
type PlanBody struct {
	Channels []ChannelPlan
	Alpha    float64
	SwapProb float64
	Rounds   int
}

// RoundBody opens a round.
type RoundBody struct {
	Round int
}

// LinkReportBody reports one link attempt.
type LinkReportBody struct {
	Round   int
	Channel int
	Link    int
	OK      bool
}

// SwapBody requests or reports one BSM at an interior switch position.
type SwapBody struct {
	Round   int
	Channel int
	Pos     int
	OK      bool // meaningful on report only
}

// RoundResultBody announces one round's end-to-end outcome.
type RoundResultBody struct {
	Round int
	OK    bool
}

// nodeName maps a graph node to its endpoint name on the message plane.
func nodeName(id graph.NodeID) string { return fmt.Sprintf("n%d", id) }

// ControllerName is the controller's endpoint name.
const ControllerName = "ctrl"

// encodeBody gob-encodes a payload.
func encodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("runtime: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// decodeBody gob-decodes a payload into v.
func decodeBody(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("runtime: decode %T: %w", v, err)
	}
	return nil
}
