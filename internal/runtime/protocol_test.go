package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/transport"
)

// protoFixture wires a controller endpoint and one crafted peer onto an
// in-memory plane.
type protoFixture struct {
	ctrl *controller
	peer transport.Conn
	ctx  context.Context
}

func newProtoFixture(t *testing.T) *protoFixture {
	t.Helper()
	g := testNet(t)
	net := transport.NewInMemory()
	t.Cleanup(func() { _ = net.Close() })
	ctrlConn, err := net.Join(ControllerName)
	if err != nil {
		t.Fatal(err)
	}
	// The crafted peer plays node 0 (a user in testNet).
	peer, err := net.Join(nodeName(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return &protoFixture{
		ctrl: &controller{
			conn: ctrlConn,
			g:    g,
			cfg: Config{
				Solver: core.ConflictFree(),
				Params: quantum.DefaultParams(),
				Rounds: 1,
				Seed:   1,
			},
		},
		peer: peer,
		ctx:  ctx,
	}
}

func (f *protoFixture) send(t *testing.T, kind string, body any) {
	t.Helper()
	payload, err := encodeBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.peer.Send(ControllerName, kind, payload); err != nil {
		t.Fatal(err)
	}
}

func TestCollectRequestsRejectsWrongKind(t *testing.T) {
	f := newProtoFixture(t)
	f.send(t, KindLinkReport, LinkReportBody{})
	_, err := f.ctrl.collectRequests(f.ctx)
	if err == nil || !strings.Contains(err.Error(), "expected request") {
		t.Fatalf("error = %v, want kind complaint", err)
	}
}

func TestCollectRequestsRejectsNonUser(t *testing.T) {
	f := newProtoFixture(t)
	f.send(t, KindRequest, RequestBody{User: 3}) // node 3 is a switch
	_, err := f.ctrl.collectRequests(f.ctx)
	if err == nil || !strings.Contains(err.Error(), "non-user") {
		t.Fatalf("error = %v, want non-user complaint", err)
	}
}

func TestCollectRequestsRejectsUnknownNode(t *testing.T) {
	f := newProtoFixture(t)
	f.send(t, KindRequest, RequestBody{User: 999})
	if _, err := f.ctrl.collectRequests(f.ctx); err == nil {
		t.Fatal("unknown node accepted")
	}
}

// planFixture prepares a small plan for link/swap collection tests.
func planFixture() PlanBody {
	return PlanBody{
		Channels: []ChannelPlan{{Index: 0, Path: []int64{0, 3, 1}, LinkLens: []float64{100, 100}}},
		Alpha:    1e-4,
		SwapProb: 0.9,
		Rounds:   1,
	}
}

func TestCollectLinkReportsRejectsWrongRound(t *testing.T) {
	f := newProtoFixture(t)
	f.send(t, KindLinkReport, LinkReportBody{Round: 7, Channel: 0, Link: 0, OK: true})
	_, err := f.ctrl.collectLinkReports(f.ctx, planFixture(), 2, 1)
	if err == nil || !strings.Contains(err.Error(), "round") {
		t.Fatalf("error = %v, want round complaint", err)
	}
}

func TestCollectLinkReportsRejectsDuplicate(t *testing.T) {
	f := newProtoFixture(t)
	f.send(t, KindLinkReport, LinkReportBody{Round: 1, Channel: 0, Link: 0, OK: true})
	f.send(t, KindLinkReport, LinkReportBody{Round: 1, Channel: 0, Link: 0, OK: false})
	_, err := f.ctrl.collectLinkReports(f.ctx, planFixture(), 2, 1)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("error = %v, want duplicate complaint", err)
	}
}

func TestCollectLinkReportsRejectsOutOfBounds(t *testing.T) {
	f := newProtoFixture(t)
	f.send(t, KindLinkReport, LinkReportBody{Round: 1, Channel: 5, Link: 0, OK: true})
	_, err := f.ctrl.collectLinkReports(f.ctx, planFixture(), 2, 1)
	if err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Fatalf("error = %v, want bounds complaint", err)
	}
}

func TestCollectLinkReportsCompletes(t *testing.T) {
	f := newProtoFixture(t)
	f.send(t, KindLinkReport, LinkReportBody{Round: 1, Channel: 0, Link: 0, OK: true})
	f.send(t, KindLinkReport, LinkReportBody{Round: 1, Channel: 0, Link: 1, OK: false})
	linkOK, err := f.ctrl.collectLinkReports(f.ctx, planFixture(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !linkOK[0][0] || linkOK[0][1] {
		t.Fatalf("linkOK = %v, want [true false]", linkOK[0])
	}
}

func TestResolveSwapsSkipsDarkChannels(t *testing.T) {
	f := newProtoFixture(t)
	// Link 1 failed: no swap request must be sent, channel fails outright.
	linkOK := [][]bool{{true, false}}
	chanOK, attempts, err := f.ctrl.resolveSwaps(f.ctx, planFixture(), linkOK, 1)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 0 {
		t.Fatalf("%d swap attempts on a dark channel, want 0", attempts)
	}
	if chanOK[0] {
		t.Fatal("dark channel reported successful")
	}
}

func TestResolveSwapsRejectsUnsolicited(t *testing.T) {
	f := newProtoFixture(t)
	// Prime an unsolicited swap report; with a dark channel the controller
	// expects none, so the very next Recv — if any — would be unsolicited.
	// Force the expectation path with all links up but feed a mismatched
	// position.
	// Peer must answer the controller's swap request with a wrong position.
	go func() {
		msg, err := f.peer.Recv(f.ctx)
		if err != nil {
			return
		}
		var req SwapBody
		if decodeBody(msg.Payload, &req) != nil {
			return
		}
		req.Pos = 99
		payload, _ := encodeBody(req)
		_ = f.peer.Send(ControllerName, KindSwapReport, payload)
	}()
	// The plan's only switch position is node 3 — rewire the plan so the
	// swap request goes to our crafted peer (node 0).
	plan := PlanBody{
		Channels: []ChannelPlan{{Index: 0, Path: []int64{1, 0, 2}, LinkLens: []float64{100, 100}}},
		Alpha:    1e-4, SwapProb: 0.9, Rounds: 1,
	}
	linkOK := [][]bool{{true, true}}
	_, _, err := f.ctrl.resolveSwaps(f.ctx, plan, linkOK, 1)
	if err == nil || !strings.Contains(err.Error(), "unsolicited") {
		t.Fatalf("error = %v, want unsolicited complaint", err)
	}
}
