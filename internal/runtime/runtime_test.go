package runtime

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/baseline"
	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/transport"
)

// testNet builds a 3-user network with two switch paths.
func testNet(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5, 6)
	g.AddUser(0, 0)
	g.AddUser(4000, 0)
	g.AddUser(2000, 3000)
	g.AddSwitch(1500, 500, 8)
	g.AddSwitch(2500, 1500, 8)
	for _, e := range [][2]graph.NodeID{{0, 3}, {3, 1}, {3, 4}, {4, 2}, {1, 4}} {
		a, b := g.Node(e[0]), g.Node(e[1])
		g.MustAddEdge(e[0], e[1], math.Hypot(a.X-b.X, a.Y-b.Y))
	}
	return g
}

func testConfig(rounds int) Config {
	return Config{
		Solver: core.ConflictFree(),
		Params: quantum.DefaultParams(),
		Rounds: rounds,
		Seed:   42,
	}
}

func runCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRunInMemoryProducesReport(t *testing.T) {
	g := testNet(t)
	net := transport.NewInMemory()
	defer func() { _ = net.Close() }()
	report, err := Run(runCtx(t), net, g, testConfig(500))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.Rounds != 500 {
		t.Fatalf("Rounds = %d, want 500", report.Rounds)
	}
	if report.Solution == nil || report.Solution.Algorithm != "alg3" {
		t.Fatalf("Solution = %+v", report.Solution)
	}
	if len(report.ChannelSuccess) != len(report.Solution.Tree.Channels) {
		t.Fatalf("ChannelSuccess tracks %d channels, want %d",
			len(report.ChannelSuccess), len(report.Solution.Tree.Channels))
	}
	if report.Successes < 0 || report.Successes > report.Rounds {
		t.Fatalf("Successes = %d out of %d", report.Successes, report.Rounds)
	}
	links := 0
	for _, ch := range report.Solution.Tree.Channels {
		links += ch.Links()
	}
	if report.LinksAttempted != links*report.Rounds {
		t.Fatalf("LinksAttempted = %d, want %d", report.LinksAttempted, links*report.Rounds)
	}
	// Every channel's individual success count is at least the tree's.
	for i, cs := range report.ChannelSuccess {
		if cs < report.Successes {
			t.Fatalf("channel %d succeeded %d < tree successes %d", i, cs, report.Successes)
		}
	}
}

func TestRunEmpiricalMatchesAnalytic(t *testing.T) {
	g := testNet(t)
	net := transport.NewInMemory()
	defer func() { _ = net.Close() }()
	cfg := testConfig(6000)
	report, err := Run(runCtx(t), net, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := report.AnalyticRate()
	se := math.Sqrt(p * (1 - p) / float64(report.Rounds))
	if diff := math.Abs(report.EmpiricalRate() - p); diff > 5*se+1e-9 {
		t.Fatalf("empirical %g vs analytic %g (diff %g, se %g)",
			report.EmpiricalRate(), p, diff, se)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	g := testNet(t)
	run := func() Report {
		net := transport.NewInMemory()
		defer func() { _ = net.Close() }()
		report, err := Run(runCtx(t), net, g, testConfig(2000))
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(), run()
	if a.Successes != b.Successes {
		t.Fatalf("same seed, different successes: %d vs %d", a.Successes, b.Successes)
	}
	for i := range a.ChannelSuccess {
		if a.ChannelSuccess[i] != b.ChannelSuccess[i] {
			t.Fatalf("channel %d: %d vs %d", i, a.ChannelSuccess[i], b.ChannelSuccess[i])
		}
	}
}

func TestRunOverTCP(t *testing.T) {
	g := testNet(t)
	hub, err := transport.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	net := transport.NewTCPNetwork(hub.Addr())
	defer func() { _ = net.Close() }()
	report, err := Run(runCtx(t), net, g, testConfig(300))
	if err != nil {
		t.Fatalf("Run over TCP: %v", err)
	}
	if report.Rounds != 300 {
		t.Fatalf("Rounds = %d", report.Rounds)
	}

	// Same seed over the in-memory plane gives the identical outcome: the
	// protocol's draws do not depend on transport timing.
	mem := transport.NewInMemory()
	defer func() { _ = mem.Close() }()
	memReport, err := Run(runCtx(t), mem, g, testConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if memReport.Successes != report.Successes {
		t.Fatalf("tcp %d successes, in-memory %d", report.Successes, memReport.Successes)
	}
}

func TestRunWithNFusionMeasurementFactor(t *testing.T) {
	g := testNet(t)
	net := transport.NewInMemory()
	defer func() { _ = net.Close() }()
	cfg := testConfig(6000)
	cfg.Solver = baseline.NFusion()
	report, err := Run(runCtx(t), net, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Solution.MeasurementFactor >= 1 {
		t.Fatalf("n-fusion factor = %g, want < 1", report.Solution.MeasurementFactor)
	}
	p := report.AnalyticRate()
	se := math.Sqrt(p * (1 - p) / float64(report.Rounds))
	if diff := math.Abs(report.EmpiricalRate() - p); diff > 5*se+1e-9 {
		t.Fatalf("empirical %g vs analytic %g", report.EmpiricalRate(), p)
	}
}

func TestRunConfigValidation(t *testing.T) {
	g := testNet(t)
	net := transport.NewInMemory()
	defer func() { _ = net.Close() }()
	tests := []struct {
		name string
		mod  func(*Config)
	}{
		{"nil solver", func(c *Config) { c.Solver = nil }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"bad params", func(c *Config) { c.Params = quantum.Params{} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(10)
			tc.mod(&cfg)
			if _, err := Run(runCtx(t), net, g, cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	if _, err := Run(runCtx(t), nil, g, testConfig(10)); err == nil {
		t.Fatal("nil network accepted")
	}
	userless := graph.New(1, 0)
	userless.AddSwitch(0, 0, 4)
	if _, err := Run(runCtx(t), net, userless, testConfig(10)); err == nil {
		t.Fatal("userless graph accepted")
	}
}

func TestRunInfeasibleRouting(t *testing.T) {
	// Users in two disconnected islands: the controller's solver fails and
	// Run must surface ErrInfeasible without hanging or leaking goroutines.
	g := graph.New(4, 2)
	g.AddUser(0, 0)
	g.AddUser(1, 0)
	g.AddUser(100, 100)
	g.AddSwitch(0.5, 0.5, 4)
	g.MustAddEdge(0, 3, 50)
	g.MustAddEdge(3, 1, 50)
	net := transport.NewInMemory()
	defer func() { _ = net.Close() }()
	_, err := Run(runCtx(t), net, g, testConfig(10))
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	g := testNet(t)
	net := transport.NewInMemory()
	defer func() { _ = net.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the protocol even starts
	_, err := Run(ctx, net, g, testConfig(1000))
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
}

func TestRunSequentialExecutionsOnFreshPlanes(t *testing.T) {
	// Distinct runs need distinct endpoint names; fresh networks per run is
	// the supported pattern.
	g := testNet(t)
	for i := 0; i < 3; i++ {
		net := transport.NewInMemory()
		if _, err := Run(runCtx(t), net, g, testConfig(50)); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		_ = net.Close()
	}
}

func TestReportAccessorsOnZeroValue(t *testing.T) {
	var r Report
	if r.EmpiricalRate() != 0 {
		t.Error("zero report empirical rate != 0")
	}
	if r.AnalyticRate() != 0 {
		t.Error("zero report analytic rate != 0")
	}
}

func TestRunWithEverySolver(t *testing.T) {
	g := testNet(t)
	solvers := []core.Solver{
		core.Optimal(), // testNet switches have 8 >= 2|U| = 6 qubits
		core.ConflictFree(),
		core.Prim(7),
		baseline.EQCast(),
		baseline.NFusion(),
	}
	for _, solver := range solvers {
		t.Run(solver.Name(), func(t *testing.T) {
			net := transport.NewInMemory()
			defer func() { _ = net.Close() }()
			cfg := testConfig(200)
			cfg.Solver = solver
			report, err := Run(runCtx(t), net, g, cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if report.Solution.Algorithm != solver.Name() {
				t.Fatalf("executed %q, want %q", report.Solution.Algorithm, solver.Name())
			}
			if report.Rounds != 200 {
				t.Fatalf("Rounds = %d", report.Rounds)
			}
		})
	}
}
