package runtime

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/transport"
)

// node is one quantum node's protocol endpoint: a user or a switch,
// executing its share of the entanglement plan.
type node struct {
	id   graph.NodeID
	kind graph.NodeKind
	conn transport.Conn
	rng  *rand.Rand

	// duties derived from the plan:
	plan      PlanBody
	ownedLink []linkDuty
}

// linkDuty is one quantum link this node initiates each round: the node is
// the upstream endpoint of link index Link in channel Channel.
type linkDuty struct {
	Channel int
	Link    int
	Prob    float64 // success probability exp(-alpha * length)
}

// newNode joins the message plane as the given graph node.
func newNode(net transport.Network, n graph.Node, seed int64) (*node, error) {
	conn, err := net.Join(nodeName(n.ID))
	if err != nil {
		return nil, fmt.Errorf("runtime: node %d join: %w", n.ID, err)
	}
	return &node{
		id:   n.ID,
		kind: n.Kind,
		conn: conn,
		rng:  rand.New(rand.NewSource(seed ^ (int64(n.ID)+1)*-7046029254386353131)),
	}, nil
}

// run is the node's main loop. Users first send their entanglement request;
// then every node serves plan/round/swap messages until stop. The loop exits
// on stop, context cancellation, or a transport failure.
func (n *node) run(ctx context.Context) error {
	if n.kind == graph.KindUser {
		body, err := encodeBody(RequestBody{User: int64(n.id)})
		if err != nil {
			return err
		}
		if err := n.conn.Send(ControllerName, KindRequest, body); err != nil {
			return fmt.Errorf("runtime: user %d request: %w", n.id, err)
		}
	}
	for {
		msg, err := n.conn.Recv(ctx)
		if err != nil {
			return fmt.Errorf("runtime: node %d recv: %w", n.id, err)
		}
		switch msg.Kind {
		case KindPlan:
			if err := n.acceptPlan(msg.Payload); err != nil {
				return err
			}
		case KindRoundStart:
			if err := n.startRound(msg.Payload); err != nil {
				return err
			}
		case KindSwapRequest:
			if err := n.performSwap(msg.Payload); err != nil {
				return err
			}
		case KindRoundResult:
			// Users learn the round outcome; nothing to do in simulation.
		case KindStop:
			return nil
		default:
			return fmt.Errorf("runtime: node %d: unexpected message kind %q", n.id, msg.Kind)
		}
	}
}

// acceptPlan derives this node's duties from the disseminated plan.
func (n *node) acceptPlan(payload []byte) error {
	var plan PlanBody
	if err := decodeBody(payload, &plan); err != nil {
		return err
	}
	n.plan = plan
	n.ownedLink = n.ownedLink[:0]
	for _, ch := range plan.Channels {
		for i := 0; i+1 < len(ch.Path); i++ {
			if graph.NodeID(ch.Path[i]) != n.id {
				continue
			}
			n.ownedLink = append(n.ownedLink, linkDuty{
				Channel: ch.Index,
				Link:    i,
				Prob:    math.Exp(-plan.Alpha * ch.LinkLens[i]),
			})
		}
	}
	return nil
}

// startRound attempts every owned quantum link and reports each heralded
// outcome to the controller. Draw order is fixed (plan order), so the
// node's random stream is independent of message timing.
func (n *node) startRound(payload []byte) error {
	var round RoundBody
	if err := decodeBody(payload, &round); err != nil {
		return err
	}
	for _, d := range n.ownedLink {
		ok := n.rng.Float64() < d.Prob
		body, err := encodeBody(LinkReportBody{Round: round.Round, Channel: d.Channel, Link: d.Link, OK: ok})
		if err != nil {
			return err
		}
		if err := n.conn.Send(ControllerName, KindLinkReport, body); err != nil {
			return fmt.Errorf("runtime: node %d link report: %w", n.id, err)
		}
	}
	return nil
}

// performSwap draws one BSM outcome and reports it.
func (n *node) performSwap(payload []byte) error {
	var req SwapBody
	if err := decodeBody(payload, &req); err != nil {
		return err
	}
	if n.kind != graph.KindSwitch {
		return fmt.Errorf("runtime: %s node %d asked to swap", n.kind, n.id)
	}
	req.OK = n.rng.Float64() < n.plan.SwapProb
	body, err := encodeBody(req)
	if err != nil {
		return err
	}
	if err := n.conn.Send(ControllerName, KindSwapReport, body); err != nil {
		return fmt.Errorf("runtime: switch %d swap report: %w", n.id, err)
	}
	return nil
}
