package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/transport"
)

// Config parameterizes one distributed entanglement execution.
type Config struct {
	// Solver computes the routing plan from the collected requests.
	Solver core.Solver
	// Params are the physical-layer constants shared by all nodes.
	Params quantum.Params
	// Rounds is the number of synchronized entanglement rounds to run.
	Rounds int
	// Seed derives every node's private random stream; a fixed seed makes
	// the whole distributed execution reproducible regardless of message
	// timing, because each node draws in plan order.
	Seed int64
}

// Report is the outcome of a distributed execution.
type Report struct {
	// Solution is the plan the controller computed from the requests.
	Solution *core.Solution
	// Rounds is the number of rounds executed.
	Rounds int
	// Successes counts rounds in which the full entanglement tree came up.
	Successes int
	// ChannelSuccess counts successful rounds per channel.
	ChannelSuccess []int
	// LinksAttempted and SwapsAttempted total the quantum operations
	// performed (swaps are only attempted when both adjacent links
	// heralded success).
	LinksAttempted int
	SwapsAttempted int
}

// EmpiricalRate returns the measured end-to-end entanglement rate.
func (r Report) EmpiricalRate() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Rounds)
}

// AnalyticRate returns the Eq. 2 prediction for the executed plan.
func (r Report) AnalyticRate() float64 {
	if r.Solution == nil {
		return 0
	}
	return r.Solution.Rate()
}

// Run executes the full §II-B protocol on the given network graph over the
// message plane: it joins a controller and one endpoint per graph node,
// lets the users request entanglement, routes with cfg.Solver, executes
// cfg.Rounds synchronized rounds, and returns the aggregate report.
//
// Run blocks until every goroutine it spawned has exited. Cancel ctx to
// abort a hung execution (e.g. if a transport endpoint dies); nodes and
// controller all unblock on cancellation.
func Run(ctx context.Context, net transport.Network, g *graph.Graph, cfg Config) (Report, error) {
	if net == nil || g == nil {
		return Report{}, errors.New("runtime: nil network or graph")
	}
	if cfg.Solver == nil {
		return Report{}, errors.New("runtime: config needs a solver")
	}
	if cfg.Rounds <= 0 {
		return Report{}, fmt.Errorf("runtime: rounds must be positive, got %d", cfg.Rounds)
	}
	if err := cfg.Params.Validate(); err != nil {
		return Report{}, err
	}
	if len(g.Users()) == 0 {
		return Report{}, errors.New("runtime: graph has no users")
	}

	ctrlConn, err := net.Join(ControllerName)
	if err != nil {
		return Report{}, fmt.Errorf("runtime: controller join: %w", err)
	}
	defer func() { _ = ctrlConn.Close() }()

	// Join every node before any goroutine starts, so all sends find their
	// peers registered.
	nodes := make([]*node, 0, g.NumNodes())
	for _, n := range g.Nodes() {
		nd, err := newNode(net, n, cfg.Seed)
		if err != nil {
			for _, prev := range nodes {
				_ = prev.conn.Close()
			}
			return Report{}, err
		}
		nodes = append(nodes, nd)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	nodeErrs := make(chan error, len(nodes))
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			defer func() { _ = nd.conn.Close() }()
			if err := nd.run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				nodeErrs <- err
			}
		}(nd)
	}

	ctrl := &controller{
		conn: ctrlConn,
		g:    g,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
	}
	report, ctrlErr := runController(ctx, ctrl)

	// Whatever happened, tell every node to stop, then wait for them.
	_ = ctrl.broadcast(KindStop, nil)
	cancel()
	wg.Wait()
	close(nodeErrs)

	if ctrlErr != nil {
		return Report{}, ctrlErr
	}
	for err := range nodeErrs {
		if err != nil {
			return Report{}, fmt.Errorf("runtime: node failure: %w", err)
		}
	}
	return report, nil
}

// runController executes the controller's three phases.
func runController(ctx context.Context, ctrl *controller) (Report, error) {
	users, err := ctrl.collectRequests(ctx)
	if err != nil {
		return Report{}, err
	}
	prob, err := core.NewProblem(ctrl.g, users, ctrl.cfg.Params)
	if err != nil {
		return Report{}, fmt.Errorf("runtime: building problem: %w", err)
	}
	sol, err := ctrl.cfg.Solver.Solve(ctx, prob, nil)
	if err != nil {
		return Report{}, fmt.Errorf("runtime: routing: %w", err)
	}
	if err := prob.Validate(sol); err != nil {
		return Report{}, fmt.Errorf("runtime: solver produced an invalid plan: %w", err)
	}
	report := Report{Solution: sol, Rounds: ctrl.cfg.Rounds}
	if err := ctrl.runRounds(ctx, sol, &report); err != nil {
		return Report{}, err
	}
	return report, nil
}
