package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
)

// SessionRequest is the POST /sessions body.
type SessionRequest struct {
	// Users is the set of user node IDs to entangle (at least 2).
	Users []graph.NodeID `json:"users"`
	// TTLMs is the session lifetime in milliseconds; 0 means the server
	// default, and values above the server cap are clamped.
	TTLMs int64 `json:"ttl_ms,omitempty"`
	// Tenant names the requesting tenant for QoS queuing, quotas and SLO
	// accounting; empty (or unknown) names map to the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /sessions        admit a session   → 201, 400, 409, 429, 503, 504
//	GET    /sessions/{id}   inspect a session → 200, 404
//	DELETE /sessions/{id}   release early     → 204, 404
//	GET    /metrics         counters + shared admission summary
//	GET    /topology        the served graph as JSON
//	GET    /healthz         200 while serving, 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /topology", s.handleTopology)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decode body: %v", err))
		return
	}
	if req.TTLMs < 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "ttl_ms must be >= 0")
		return
	}
	info, err := s.SubmitTenant(r.Context(), req.Tenant, req.Users, time.Duration(req.TTLMs)*time.Millisecond)
	if err != nil {
		writeSubmitError(w, s.cfg.RetryAfter, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// writeSubmitError maps a Submit outcome onto the HTTP status space; shared
// by the standalone and sharded handlers.
func writeSubmitError(w http.ResponseWriter, retryAfter time.Duration, err error) {
	var throttle *qos.ThrottleError
	switch {
	case errors.As(err, &throttle):
		// Tenant over its quota: Retry-After is the token-bucket refill time
		// rather than the static backpressure hint.
		secs := int((throttle.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		writeError(w, http.StatusTooManyRequests, "throttled", err.Error())
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell the client when to come back.
		secs := int((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		writeError(w, http.StatusTooManyRequests, "queue_full", err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", err.Error())
	case errors.Is(err, ErrInvalidRequest):
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, core.ErrInfeasible):
		// Not enough residual switch capacity right now; sessions departing
		// may free it, so clients can retry.
		writeError(w, http.StatusConflict, "infeasible", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", err.Error())
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write, but be explicit for
		// intermediaries that still read the response.
		writeError(w, 499, "canceled", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such session")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleTopology(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.cfg.Graph.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "")
		return
	}
	if s.dur != nil && s.dur.failed.Load() {
		// A WAL append failed: in-memory state is fine but can no longer be
		// promised across a crash. Operators should replace the node.
		writeError(w, http.StatusServiceUnavailable, "durability_failed", ErrDurability.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, errorBody{Error: code, Detail: detail})
}
