// Speculative parallel admission (DESIGN.md §8): the serialized micro-batch
// loop leaves every core but one idle while a batch solves, because each
// solve holds the one server mutex. The ledger's closure epochs (PR 3) are
// a readymade optimistic-concurrency primitive, so this scheduler runs the
// classic optimistic play instead:
//
//	snapshot ─▶ solve (no lock) ─▶ validate under the lock ─▶ commit
//	    ▲                                   │ conflict
//	    └────────────── retry ◀─────────────┘  (bounded; then serial fallback)
//
// Each worker takes a consistent view of the live ledger (Ledger.CopyFrom
// under the mutex — two slice copies, no serialization), solves against the
// view with core.BuildGreedyTree, and records the view's Epoch. Validation
// re-acquires the mutex and asks what moved:
//
//   - Admit candidates: ClosedSince(epoch) lists the switches that closed
//     after the view was taken. An unbroken epoch whose closures miss the
//     tree's footprint proves every switch the tree transits still has the
//     2 free qubits a channel charges — commit without reading budgets.
//     Trees that stack channels on one switch (demand > 2) and stale
//     epochs fall back to Ledger.Fits, the authoritative budget re-check.
//     Committing replays the tree's reservations on the live ledger in
//     tree order, which is exactly what WAL replay does — so the live
//     budgets AND closure log evolve as if the solve had run serially.
//   - Reject candidates: within one closure generation capacity only
//     shrinks, so "infeasible against the view" stays true at commit time
//     unless some Release reopened a switch since (generation bump). A
//     fresh generation commits the rejection; a stale one retries.
//
// Conflicts requeue the request against a fresh view for SpecRetries
// attempts; after that the request is decided serially under the mutex
// (admitOneLocked), which always terminates. WAL order stays mutation
// order because records are staged and enqueued inside the same locked
// section that mutates the ledger — the PR-5 invariant, untouched.
//
// With one worker the pipeline degenerates to snapshot → solve → commit in
// arrival order with nothing able to move between snapshot and validation,
// so decisions are identical to the serial scheduler (and to
// sched.Simulate) — pinned by TestDifferentialAgainstSimulate.
package service

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
)

// speculativeScheduler fans a micro-batch out over a fixed worker set.
// Workers are spawned per batch (decide is called by the one admission
// goroutine, so the scratch views never race); each worker owns one
// pre-allocated ledger view refreshed by CopyFrom per attempt.
type speculativeScheduler struct {
	s       *Server
	workers int
	retries int
	views   []*quantum.Ledger

	ctrs specCounters
}

// specCounters are the speculation-plane event counts surfaced in the
// /metrics speculation section.
type specCounters struct {
	solves    atomic.Int64 // speculative solve attempts, retries included
	commits   atomic.Int64 // admits that validated against the live ledger
	rejects   atomic.Int64 // infeasible decisions committed via the epoch check
	cacheHits atomic.Int64 // decisions replayed by the solve cache, no speculation run
	conflicts atomic.Int64 // validations lost to concurrent commits/releases
	retries   atomic.Int64 // re-solves after a conflict
	fallbacks atomic.Int64 // decisions made serially after the retry budget
	inflight  atomic.Int64 // solves running right now
	maxPar    atomic.Int64 // high-water inflight
	batches   atomic.Int64 // batches decided
	sumPar    atomic.Int64 // sum over batches of scheduled workers
}

func newSpeculativeScheduler(s *Server, cfg Config) *speculativeScheduler {
	sp := &speculativeScheduler{s: s, workers: cfg.Workers, retries: cfg.SpecRetries}
	if sp.workers < 1 {
		sp.workers = 1
	}
	sp.views = make([]*quantum.Ledger, sp.workers)
	for i := range sp.views {
		sp.views[i] = quantum.NewLedger(cfg.Graph)
	}
	return sp
}

func (sp *speculativeScheduler) decide(batch []*pending) {
	s := sp.s
	s.ctrs.noteBatch(len(batch))
	// Expiry runs once at the batch's admission instant, exactly as in the
	// serial scheduler; its release records are enqueued in the same locked
	// section (WAL order == mutation order).
	s.mu.Lock()
	now := s.clock.Now()
	s.expireLocked(now)
	ticket := s.enqueueRecordsLocked()
	s.mu.Unlock()
	_ = s.waitDurable(ticket)

	par := sp.workers
	if len(batch) < par {
		par = len(batch)
	}
	sp.ctrs.batches.Add(1)
	sp.ctrs.sumPar.Add(int64(par))

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(view *quantum.Ledger) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				sp.decideOne(batch[i], now, view)
			}
		}(sp.views[w])
	}
	wg.Wait()
	s.wakeExpiry()
}

// decideOne runs one request through the snapshot → solve → validate →
// commit loop and delivers its result once durable.
func (sp *speculativeScheduler) decideOne(p *pending, now time.Time, view *quantum.Ledger) {
	s := sp.s
	for attempt := 0; ; attempt++ {
		if err := p.ctx.Err(); err != nil {
			s.ctrs.canceled.Add(1)
			p.finish(admitResult{err: err})
			return
		}
		if attempt > sp.retries {
			// Retry budget spent: decide authoritatively under the mutex.
			// admitOneLocked solves against the live ledger, so it cannot
			// conflict; this bounds every request to retries+1 speculative
			// solves plus one serial one.
			sp.ctrs.fallbacks.Add(1)
			s.mu.Lock()
			info, err := s.admitOneLocked(now, p)
			ticket := s.enqueueRecordsLocked()
			s.mu.Unlock()
			_ = s.waitDurable(ticket)
			p.finish(admitResult{info: info, err: err})
			return
		}
		if attempt > 0 {
			sp.ctrs.retries.Add(1)
		}

		// Consistent view: budgets + closure history under the mutex, then
		// solve lock-free against the copy. The view's reservations are
		// scratch — CopyFrom resets them on the next attempt. The solve cache
		// is consulted under the same acquisition: a provable repeat commits
		// (or rejects) right here and skips the snapshot + solve entirely.
		s.mu.Lock()
		if s.cache != nil {
			if info, err, ok := s.cacheDecideLocked(now, p); ok {
				sp.ctrs.cacheHits.Add(1)
				ticket := s.enqueueRecordsLocked()
				s.mu.Unlock()
				_ = s.waitDurable(ticket)
				p.finish(admitResult{info: info, err: err})
				return
			}
		}
		view.CopyFrom(s.led)
		snapVersion := s.led.Version()
		s.mu.Unlock()
		epoch := view.Epoch()

		var st core.SolveStats
		sp.noteSolveStart()
		t0 := time.Now()
		tree, solveErr := core.BuildGreedyTree(p.ctx, p.prob, view, &core.SolveOptions{Stats: &st})
		s.lat.observe(time.Since(t0))
		sp.ctrs.inflight.Add(-1)

		info, err := sp.validateAndCommitLocked(p, now, epoch, snapVersion, tree, solveErr, &st)
		if err == errSpecConflict {
			sp.ctrs.conflicts.Add(1)
			continue
		}
		p.finish(admitResult{info: info, err: err})
		return
	}
}

// validateAndCommitLocked takes the mutex, folds the attempt's work
// counters in, and either commits the speculative outcome (admit or
// reject), making it durable before returning, or reports errSpecConflict
// when the live ledger moved past the view.
func (sp *speculativeScheduler) validateAndCommitLocked(p *pending, now time.Time,
	epoch quantum.Epoch, snapVersion uint64, tree quantum.Tree, solveErr error,
	st *core.SolveStats) (SessionInfo, error) {
	s := sp.s
	s.mu.Lock()
	s.work.Merge(st)

	switch sched.Classify(p.ctx.Err(), solveErr) {
	case sched.VerdictAborted:
		// No ledger impact to validate: the solve only touched the scratch
		// view, so (unlike the serial path) a rolled-back attempt never
		// bumps the live closure generation and needs no epoch record.
		s.mu.Unlock()
		if p.ctx.Err() != nil {
			s.ctrs.canceled.Add(1)
		} else {
			s.ctrs.failed.Add(1)
		}
		return SessionInfo{}, solveErr

	case sched.VerdictRejected:
		// Within one generation capacity is monotone non-increasing, so the
		// view's infeasibility still holds iff no Release reopened a switch
		// since the view was taken.
		if _, fresh := s.led.ClosedSince(epoch); !fresh {
			s.mu.Unlock()
			return SessionInfo{}, errSpecConflict
		}
		s.ctrs.rejected.Add(1)
		sp.ctrs.rejects.Add(1)
		if s.cache != nil && s.led.Version() == snapVersion {
			// Nothing moved since the snapshot, so the rejection was decided
			// against exactly the live budgets and is safe to replay on
			// version equality.
			s.cacheStoreRejectLocked(p.users, solveErr)
		}
		s.mu.Unlock()
		return SessionInfo{}, solveErr
	}

	// Admit candidate: prove the tree still fits. The epoch pre-filter
	// (unbroken generation, no closure touching the footprint, per-switch
	// demand ≤ 2) proves it without reading budgets; otherwise FitsFootprint
	// is the authoritative residual-capacity check. The footprint is a
	// pooled flat sparse set — no map allocation per validation.
	fp := s.fpPool.Get()
	fp.AddTree(tree)
	valid := s.led.ValidateSinceFootprint(epoch, fp)
	s.fpPool.Put(fp)
	if !valid {
		s.mu.Unlock()
		return SessionInfo{}, errSpecConflict
	}
	// Cache the tree only when nothing moved since the snapshot: then it was
	// solved against what are still the live budgets, and the cache entry's
	// pre-solve free counts reconstruct exactly. Decided before the reserve
	// replay below mutates the version.
	liveUnmoved := s.cache != nil && s.led.Version() == snapVersion
	// Commit: replay the reservations on the live ledger in tree order —
	// the same discipline WAL replay uses, so budgets and closure log land
	// exactly where a serial solve would have left them. Reserve cannot
	// fail after Fits; the ledger's own capacity check still guards it.
	for i, ch := range tree.Channels {
		if err := s.led.Reserve(ch.Nodes); err != nil {
			for j := 0; j < i; j++ {
				s.led.Release(tree.Channels[j].Nodes)
			}
			s.mu.Unlock()
			return SessionInfo{}, errSpecConflict
		}
	}
	info := s.commitAdmitLocked(now, p, tree)
	sp.ctrs.commits.Add(1)
	if liveUnmoved {
		s.cacheStoreAcceptLocked(p.users, tree)
	}
	ticket := s.enqueueRecordsLocked()
	s.mu.Unlock()
	// Write-ahead contract: the admit record reaches disk before the caller
	// hears the decision; concurrent workers share one group-commit fsync.
	_ = s.waitDurable(ticket)
	return info, nil
}

func (sp *speculativeScheduler) noteSolveStart() {
	sp.ctrs.solves.Add(1)
	in := sp.ctrs.inflight.Add(1)
	for {
		cur := sp.ctrs.maxPar.Load()
		if in <= cur || sp.ctrs.maxPar.CompareAndSwap(cur, in) {
			return
		}
	}
}

func (sp *speculativeScheduler) speculation() *SpeculationMetrics {
	m := &SpeculationMetrics{
		Workers:     sp.workers,
		Retries:     sp.retries,
		Solves:      sp.ctrs.solves.Load(),
		Commits:     sp.ctrs.commits.Load(),
		Rejects:     sp.ctrs.rejects.Load(),
		CacheHits:   sp.ctrs.cacheHits.Load(),
		Conflicts:   sp.ctrs.conflicts.Load(),
		Resolves:    sp.ctrs.retries.Load(),
		Fallbacks:   sp.ctrs.fallbacks.Load(),
		MaxParallel: sp.ctrs.maxPar.Load(),
	}
	if m.Solves > 0 {
		m.WastedSolveRatio = float64(m.Conflicts) / float64(m.Solves)
	}
	if b := sp.ctrs.batches.Load(); b > 0 {
		m.MeanBatchParallelism = float64(sp.ctrs.sumPar.Load()) / float64(b)
	}
	return m
}

// SpeculationMetrics is the /metrics speculation section, present only
// when the speculative scheduler is active.
type SpeculationMetrics struct {
	// Workers is the configured solve parallelism; Retries the per-request
	// conflict-retry budget before the serial fallback.
	Workers int `json:"workers"`
	Retries int `json:"retries"`
	// Solves counts speculative solve attempts (re-solves included);
	// Commits and Rejects the attempts whose outcome validated and
	// committed; Conflicts the attempts thrown away because the live
	// ledger moved past their view.
	Solves    int64 `json:"solves"`
	Commits   int64 `json:"commits"`
	Rejects   int64 `json:"rejects"`
	Conflicts int64 `json:"conflicts"`
	// CacheHits counts decisions replayed from the solve cache before any
	// snapshot or solve ran. (Cache hits inside the serial fallback count as
	// Fallbacks, not here.)
	CacheHits int64 `json:"cache_hits"`
	// Resolves counts conflict-triggered re-solves; Fallbacks the requests
	// decided serially under the mutex after the retry budget.
	Resolves  int64 `json:"resolves"`
	Fallbacks int64 `json:"fallbacks"`
	// WastedSolveRatio is Conflicts / Solves — the fraction of solve work
	// speculation discarded.
	WastedSolveRatio float64 `json:"wasted_solve_ratio"`
	// MaxParallel is the high-water mark of concurrently running solves;
	// MeanBatchParallelism the mean number of workers scheduled per batch.
	MaxParallel          int64   `json:"max_parallel"`
	MeanBatchParallelism float64 `json:"mean_batch_parallelism"`
}
