package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
	"github.com/muerp/quantumnet/internal/wal"
)

// This file is the sharded admission plane (DESIGN.md §9). The topology is
// partitioned into K regions (topology.PartitionRegions); each region gets a
// full admission Server of its own — queue, scheduler, ledger, expiry wheel,
// WAL stream and snapshot directory — over a masked clone of the topology in
// which every foreign switch has zero qubits, confining its solves to its
// region. A thin router classifies each request by its users' regions:
//
//   - single-region sessions go straight to that shard's scheduler. No
//     router lock, no coordination — shards admit in parallel.
//   - cross-region sessions are solved by the router against a stitched
//     full-topology view of every shard's budgets and committed under a
//     two-phase reserve/commit: each involved shard validates this shard's
//     slice of the tree's per-switch demand against the epoch the view was
//     taken at (quantum.ValidateSince) and reserves it, all under the
//     involved shards' locks, taken in ascending order. A validation
//     conflict aborts the attempt and re-solves against a fresh view;
//     after CrossRetries conflicts the request is decided authoritatively
//     under every shard's lock (the global-lock serial fallback).
//
// Deadlock freedom: only the cross-region coordinator ever holds more than
// one shard lock, it is itself serialized by crossMu, and it always locks
// shards in ascending index order.
//
// Rejections are only final when no shard's ledger generation moved since
// the view was taken: budgets can then only have shrunk (reservations are
// monotone within a generation), so a tree that did not fit the view cannot
// fit the live ledgers either. A generation bump means a release reopened
// capacity somewhere and the request deserves a fresh view.

// ShardedConfig parameterizes a ShardedServer. The embedded Config is the
// template every shard Server is built from (Graph must be the full
// topology; DataDir, scheduler, queue and TTL knobs apply per shard).
type ShardedConfig struct {
	Config
	// Shards is the number of regions the topology is partitioned into.
	// Default 1 (a single shard, useful as a degenerate baseline).
	Shards int
	// PartitionSeed seeds the deterministic region partitioner.
	PartitionSeed int64
	// CrossRetries bounds how many fresh-view re-solves a cross-region
	// request gets after validation conflicts before it is decided under
	// the global lock. Default 3.
	CrossRetries int
}

// ShardedServer is the sharded admission daemon: K region shards plus the
// cross-region coordinator. Construct with NewSharded; Close releases
// everything.
type ShardedServer struct {
	g       *graph.Graph
	base    Config // defaults applied; template the shards were built from
	retries int
	part    *topology.Partition
	clock   Clock
	start   time.Time
	shards  []*Server
	regions []*graph.Graph // regions[i] is shard i's masked graph

	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// crossMu serializes the cross-region coordinator; view, viewFree,
	// epochs, crossWork and the splitLoad scratch below are its state.
	crossMu   sync.Mutex
	view      *quantum.Ledger
	viewFree  []int
	epochs    []quantum.Epoch
	crossWork core.SolveStats

	// splitLoad scratch: the flat footprint holding the last split tree's
	// demand (also consulted by tryCommit's validation), the sorted-entry
	// export buffer, and reusable per-region headers. All crossMu-guarded.
	crossFP      *quantum.Footprint
	crossEntries []quantum.LoadEntry
	crossCounts  []int
	crossPlans   [][]quantum.LoadEntry

	lat *histogram // cross-region solve latency

	singleRegion atomic.Int64
	crossRegion  atomic.Int64
	prepares     atomic.Int64
	conflicts    atomic.Int64
	retried      atomic.Int64
	aborts       atomic.Int64
	fallbacks    atomic.Int64
}

// RegionGraph clones g and strips every switch outside partition region r of
// its qubits. A ledger over the clone holds zero budget at foreign switches,
// so they can never relay (quantum.Ledger.CanRelay) and every solve against
// it stays inside the region. Node IDs are preserved, which is what lets
// per-shard states compose back onto the full topology.
func RegionGraph(g *graph.Graph, part *topology.Partition, r int) *graph.Graph {
	rg := g.Clone()
	for _, sw := range g.Switches() {
		if part.RegionOf(sw) != r {
			rg.SetQubits(sw, 0)
		}
	}
	return rg
}

// PartitionPath returns the pinned-partition file inside a data directory.
func PartitionPath(dataDir string) string { return filepath.Join(dataDir, "partition.json") }

// pinPartition stores the region partition next to the pinned topology, and
// on later boots verifies the freshly computed one matches: shard WAL
// streams replay load slices by switch ID, so recovering onto different
// region boundaries would corrupt state silently.
func pinPartition(dataDir string, part *topology.Partition) error {
	b, err := json.Marshal(part)
	if err != nil {
		return err
	}
	return pinFile(PartitionPath(dataDir), b, "partition")
}

// LoadPartition reads a data directory's pinned partition and validates it
// against g. ok is false when none is pinned — an unsharded layout.
func LoadPartition(dataDir string, g *graph.Graph) (*topology.Partition, bool, error) {
	b, err := os.ReadFile(PartitionPath(dataDir))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var p topology.Partition
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, false, fmt.Errorf("service: decode %s: %w", PartitionPath(dataDir), err)
	}
	if err := p.Rebuild(g); err != nil {
		return nil, false, err
	}
	return &p, true, nil
}

// NewSharded partitions the topology, pins the environment (topology,
// params, partition) when durability is on, and starts one Server per
// region. The caller must Close the returned server.
func NewSharded(cfg ShardedConfig) (*ShardedServer, error) {
	if cfg.Graph == nil {
		return nil, errors.New("service: nil graph")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.CrossRetries <= 0 {
		cfg.CrossRetries = 3
	}
	base := cfg.Config.withDefaults()
	if err := base.Params.Validate(); err != nil {
		return nil, err
	}
	if base.QoS != nil {
		// One limiter is shared by every shard so tenant quotas stay global
		// rather than multiplying by the shard count; each shard keeps its
		// own DWRR queues (requests are already partitioned by region).
		if err := base.QoS.Validate(); err != nil {
			return nil, err
		}
		base.qosLimiter = qos.NewLimiter(base.QoS.Normalized())
	}
	part, err := topology.PartitionRegions(cfg.Graph, cfg.Shards, cfg.PartitionSeed)
	if err != nil {
		return nil, err
	}
	if base.DataDir != "" {
		if err := pinEnvironment(base.DataDir, cfg.Graph, base.Params); err != nil {
			return nil, err
		}
		if err := pinPartition(base.DataDir, part); err != nil {
			return nil, err
		}
		if base.QoS != nil {
			b, merr := json.Marshal(base.QoS.Normalized())
			if merr != nil {
				return nil, merr
			}
			if err := pinFile(QoSPath(base.DataDir), b, "qos config"); err != nil {
				return nil, err
			}
		}
	}

	s := &ShardedServer{
		g:        cfg.Graph,
		base:     base,
		retries:  cfg.CrossRetries,
		part:     part,
		clock:    base.Clock,
		start:    base.Clock.Now(),
		view:     quantum.NewLedger(cfg.Graph),
		viewFree: make([]int, cfg.Graph.NumNodes()),
		epochs:   make([]quantum.Epoch, cfg.Shards),
		lat:      newHistogram(),

		crossFP:     quantum.NewFootprint(cfg.Graph.NumNodes()),
		crossCounts: make([]int, cfg.Shards),
		crossPlans:  make([][]quantum.LoadEntry, cfg.Shards),
	}
	for r := 0; r < cfg.Shards; r++ {
		rg := RegionGraph(cfg.Graph, part, r)
		sc := base
		sc.Graph = rg
		sc.shard = &shardEnv{index: r}
		srv, err := New(sc)
		if err != nil {
			for _, sh := range s.shards {
				_ = sh.Close()
			}
			return nil, fmt.Errorf("service: start shard %d: %w", r, err)
		}
		s.shards = append(s.shards, srv)
		s.regions = append(s.regions, rg)
	}
	return s, nil
}

// Graph returns the full topology the sharded server routes on.
func (s *ShardedServer) Graph() *graph.Graph { return s.g }

// Partition returns the region partition the shards were built from.
func (s *ShardedServer) Partition() *topology.Partition { return s.part }

// Shards returns the number of region shards.
func (s *ShardedServer) Shards() int { return len(s.shards) }

// RegionGraphOf returns shard r's masked region graph.
func (s *ShardedServer) RegionGraphOf(r int) *graph.Graph { return s.regions[r] }

// Submit routes one session request: single-region user sets go straight to
// their shard's scheduler, cross-region sets through the two-phase
// coordinator. Outcomes match Server.Submit.
func (s *ShardedServer) Submit(ctx context.Context, users []graph.NodeID, ttl time.Duration) (SessionInfo, error) {
	return s.SubmitTenant(ctx, "", users, ttl)
}

// SubmitTenant is Submit with an explicit tenant name: single-region
// requests join their shard's QoS queues, cross-region requests pass the
// shared quota limiter before the two-phase coordinator.
func (s *ShardedServer) SubmitTenant(ctx context.Context, tenant string, users []graph.NodeID, ttl time.Duration) (SessionInfo, error) {
	if s.closing.Load() {
		return SessionInfo{}, ErrClosed
	}
	// Malformed sets (too few users, unknown IDs) are delegated to shard 0,
	// whose Submit rejects them with the proper accounting.
	if len(users) < 2 {
		return s.shards[0].SubmitTenant(ctx, tenant, users, ttl)
	}
	for _, u := range users {
		if u < 0 || int(u) >= s.g.NumNodes() {
			return s.shards[0].SubmitTenant(ctx, tenant, users, ttl)
		}
	}
	region := s.part.RegionOf(users[0])
	single := true
	primary := region
	for _, u := range users[1:] {
		r := s.part.RegionOf(u)
		if r != region {
			single = false
		}
		if r < primary {
			primary = r
		}
	}
	if single {
		s.singleRegion.Add(1)
		return s.shards[region].SubmitTenant(ctx, tenant, users, ttl)
	}
	return s.submitCross(ctx, tenant, users, ttl, primary)
}

// submitCross decides a cross-region request under the two-phase protocol.
// The session is homed on the primary shard (the lowest involved region),
// whose counters own the request's outcome.
func (s *ShardedServer) submitCross(ctx context.Context, tenant string, users []graph.NodeID, ttl time.Duration, primary int) (info SessionInfo, err error) {
	s.crossRegion.Add(1)
	pr := s.shards[primary]
	pr.ctrs.requests.Add(1)
	wire := pr.wireTenant(tenant)
	stat := pr.tstats.get(wire)
	if pr.qsched != nil {
		// Tenant quotas apply to cross-region traffic too (the limiter is
		// shared, so tokens spent here and on any shard draw on one bucket).
		// The DWRR queues do not: cross-region requests are serialized by
		// crossMu rather than queued behind the admission loop.
		if qerr := pr.qlim.Allow(qosName(wire), s.clock.Now()); qerr != nil {
			pr.ctrs.throttled.Add(1)
			if stat != nil {
				stat.throttled.Add(1)
			}
			return SessionInfo{}, qerr
		}
	}
	if stat != nil {
		t0 := time.Now()
		defer func() { stat.note(err, time.Since(t0)) }()
	}
	prob, err := core.NewProblem(s.g, users, s.base.Params)
	if err != nil {
		pr.ctrs.invalid.Add(1)
		return SessionInfo{}, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	if ttl <= 0 {
		ttl = s.base.DefaultTTL
	}
	if ttl > s.base.MaxTTL {
		ttl = s.base.MaxTTL
	}
	ttl = stat.clampTTL(ttl)

	s.crossMu.Lock()
	defer s.crossMu.Unlock()
	if s.closing.Load() {
		return SessionInfo{}, ErrClosed
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			pr.ctrs.canceled.Add(1)
			return SessionInfo{}, err
		}
		s.refreshView()
		tree, err := s.solveView(ctx, prob)
		if err != nil {
			switch sched.Classify(ctx.Err(), err) {
			case sched.VerdictAborted:
				if ctx.Err() != nil {
					pr.ctrs.canceled.Add(1)
				} else {
					pr.ctrs.failed.Add(1)
				}
				return SessionInfo{}, err
			case sched.VerdictRejected:
				// Final only if no shard reopened capacity since the view:
				// within a generation budgets are monotone non-increasing,
				// so an infeasible view stays infeasible on the live books.
				if s.rejectionStands() {
					pr.ctrs.rejected.Add(1)
					return SessionInfo{}, err
				}
				s.conflicts.Add(1)
			}
		} else {
			if info, ok := s.tryCommit(primary, wire, prob.Users, ttl, tree); ok {
				return info, nil
			}
			s.conflicts.Add(1)
		}
		if attempt >= s.retries {
			return s.decideGlobal(ctx, wire, prob, ttl, primary)
		}
		s.retried.Add(1)
	}
}

// refreshView stitches every shard's live budgets into the coordinator's
// full-topology view ledger, recording each shard's closure epoch. Shards
// are visited (and locked) one at a time, so the view is not one global
// atomic cut — commit-time validation under the involved shards' locks is
// what makes decisions safe, and the per-generation monotonicity argument
// is what makes rejections safe.
func (s *ShardedServer) refreshView() {
	now := s.clock.Now()
	for i, sh := range s.shards {
		sh.mu.Lock()
		// Expire due sessions first, exactly as a shard's own batch loop
		// would at this instant — the view must not count capacity that a
		// lagging expiry goroutine still holds.
		sh.expireLocked(now)
		_ = sh.enqueueRecordsLocked()
		for _, sw := range s.part.Switches(i) {
			s.viewFree[sw] = sh.led.Free(sw)
		}
		s.epochs[i] = sh.led.Epoch()
		sh.mu.Unlock()
	}
	s.importView()
}

func (s *ShardedServer) importView() {
	if err := s.view.ImportState(quantum.LedgerState{Free: s.viewFree}); err != nil {
		// The budgets came straight from live ledgers over the same node IDs.
		panic(fmt.Sprintf("service: cross-region view import: %v", err))
	}
}

// solveView routes prob on the stitched view, charging the router's latency
// histogram and work counters.
func (s *ShardedServer) solveView(ctx context.Context, prob *core.Problem) (quantum.Tree, error) {
	var st core.SolveStats
	t0 := time.Now()
	tree, err := core.BuildGreedyTree(ctx, prob, s.view, &core.SolveOptions{Stats: &st})
	s.lat.observe(time.Since(t0))
	s.crossWork.Merge(&st)
	return tree, err
}

// rejectionStands reports whether every shard's closure generation is
// unchanged since the current view was taken.
func (s *ShardedServer) rejectionStands() bool {
	for i, sh := range s.shards {
		sh.mu.Lock()
		_, ok := sh.led.ClosedSince(s.epochs[i])
		sh.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// splitLoad slices a tree's per-switch demand by owning region. The demand
// accumulates in the coordinator's flat footprint (crossMu-serialized
// scratch) instead of per-region maps, and the per-region plans are windows
// of one freshly allocated backing slice, each ascending by switch ID. The
// backing must be fresh per call — installed plans outlive the attempt
// (sessions keep them for release, WAL records serialize them off-thread) —
// but that one allocation replaces the old path's K maps + K sorted slices
// + the QubitLoad map. On return crossFP still holds the whole tree's
// demand; tryCommit's validation reads it.
func (s *ShardedServer) splitLoad(tree quantum.Tree) [][]quantum.LoadEntry {
	fp := s.crossFP
	fp.Reset()
	fp.AddTree(tree)
	fp.Sort()
	s.crossEntries = fp.AppendEntries(s.crossEntries[:0])
	entries := s.crossEntries

	counts := s.crossCounts
	for r := range counts {
		counts[r] = 0
	}
	for _, e := range entries {
		counts[s.part.RegionOf(e.ID)]++
	}
	backing := make([]quantum.LoadEntry, 0, len(entries))
	plans := s.crossPlans
	off := 0
	for r := range plans {
		// Zero-length window with capacity counts[r]: the fill loop's appends
		// land in-place, so region slices share the backing without copies.
		plans[r] = backing[off : off : off+counts[r]]
		off += counts[r]
	}
	for _, e := range entries {
		r := s.part.RegionOf(e.ID)
		plans[r] = append(plans[r], e)
	}
	return plans
}

// involvedShards lists, ascending, every shard holding part of the plan,
// always including the primary (which stores the tree even when the solve
// routed around its switches).
func (s *ShardedServer) involvedShards(plans [][]quantum.LoadEntry, primary int) []int {
	involved := make([]int, 0, len(s.shards))
	for r := range s.shards {
		if len(plans[r]) > 0 || r == primary {
			involved = append(involved, r)
		}
	}
	return involved
}

// shardTicket pairs a WAL ticket with the shard that issued it.
type shardTicket struct {
	sh *Server
	t  *wal.Ticket
}

// tryCommit is one two-phase attempt: lock the involved shards in ascending
// order, validate every slice against the epoch its view was taken at,
// reserve and install. A validation failure aborts with no side effects.
func (s *ShardedServer) tryCommit(primary int, tenant string, users []graph.NodeID, ttl time.Duration, tree quantum.Tree) (SessionInfo, bool) {
	plans := s.splitLoad(tree)
	involved := s.involvedShards(plans, primary)
	for _, r := range involved {
		s.shards[r].mu.Lock()
	}
	s.prepares.Add(1)
	ok := true
	for _, r := range involved {
		// crossFP still holds the whole tree's demand from splitLoad; the
		// closure-epoch touch test probes its sparse index instead of
		// rebuilding a per-slice map (ValidateSliceSince is decision-equal to
		// ValidateSince — a shard's closures only ever name its own switches).
		if !s.shards[r].led.ValidateSliceSince(s.epochs[r], s.crossFP, plans[r]) {
			ok = false
			break
		}
	}
	var info SessionInfo
	var tickets []shardTicket
	if ok {
		info, tickets, ok = s.installCrossLocked(primary, tenant, users, ttl, tree, plans, involved)
	}
	for i := len(involved) - 1; i >= 0; i-- {
		s.shards[involved[i]].mu.Unlock()
	}
	if !ok {
		s.aborts.Add(1)
		return SessionInfo{}, false
	}
	s.finishCross(involved, tickets)
	return info, true
}

// installCrossLocked reserves every shard's slice and installs the session
// on each involved shard — the home copy carries the tree, secondaries only
// their slice. Callers hold every involved shard's mutex; on a reservation
// failure everything already reserved is rolled back and ok is false.
func (s *ShardedServer) installCrossLocked(primary int, tenant string, users []graph.NodeID, ttl time.Duration,
	tree quantum.Tree, plans [][]quantum.LoadEntry, involved []int) (SessionInfo, []shardTicket, bool) {
	var reserved []int
	for _, r := range involved {
		if len(plans[r]) == 0 {
			continue
		}
		if err := s.shards[r].led.ReserveLoad(plans[r]); err != nil {
			for _, q := range reserved {
				s.shards[q].led.ReleaseLoad(plans[q])
			}
			return SessionInfo{}, nil, false
		}
		reserved = append(reserved, r)
	}

	pr := s.shards[primary]
	now := s.clock.Now()
	info := SessionInfo{
		ID:         fmt.Sprintf("%s%d", pr.idPrefix, pr.nextID.Add(1)),
		Users:      users,
		Tenant:     tenant,
		Rate:       tree.Rate(),
		Channels:   len(tree.Channels),
		AdmittedAt: now,
		ExpiresAt:  now.Add(ttl),
	}
	var tickets []shardTicket
	for _, r := range involved {
		sh := s.shards[r]
		sess := &session{
			info: info, expiresAt: info.ExpiresAt,
			load: plans[r], shards: involved, secondary: r != primary,
		}
		rec := &admitRecord{
			Info: info, Load: plans[r], Shards: involved,
			Secondary: r != primary, NextID: sh.nextID.Load(),
		}
		if r == primary {
			sess.tree = tree
			rec.Tree = tree
			sh.ctrs.accepted.Add(1)
			sh.sumRate += info.Rate
		}
		sh.sessions[info.ID] = sess
		heap.Push(&sh.expiry, sess)
		if used := sh.led.UsedQubits(); used > sh.peak {
			sh.peak = used
		}
		sh.appendRecordLocked(walRecord{T: recAdmit, Admit: rec})
		if t := sh.enqueueRecordsLocked(); t != nil {
			tickets = append(tickets, shardTicket{sh: sh, t: t})
		}
	}
	return info, tickets, true
}

// finishCross completes a commit outside the shard locks: wait for every
// stream's fsync (write-ahead contract) and re-arm the expiry wheels.
func (s *ShardedServer) finishCross(involved []int, tickets []shardTicket) {
	for _, st := range tickets {
		_ = st.sh.waitDurable(st.t)
	}
	for _, r := range involved {
		s.shards[r].wakeExpiry()
	}
}

// decideGlobal is the serial fallback after the retry budget: every shard
// lock is taken (ascending), the view rebuilt under them — now a true
// atomic cut — and the request decided authoritatively, so neither a
// conflict nor an unsound rejection is possible.
func (s *ShardedServer) decideGlobal(ctx context.Context, tenant string, prob *core.Problem, ttl time.Duration, primary int) (SessionInfo, error) {
	s.fallbacks.Add(1)
	pr := s.shards[primary]
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	now := s.clock.Now()
	for i, sh := range s.shards {
		sh.expireLocked(now)
		_ = sh.enqueueRecordsLocked()
		for _, sw := range s.part.Switches(i) {
			s.viewFree[sw] = sh.led.Free(sw)
		}
	}
	s.importView()
	tree, err := s.solveView(ctx, prob)
	var info SessionInfo
	var tickets []shardTicket
	var involved []int
	ok := false
	if err == nil {
		plans := s.splitLoad(tree)
		involved = s.involvedShards(plans, primary)
		s.prepares.Add(1)
		info, tickets, ok = s.installCrossLocked(primary, tenant, prob.Users, ttl, tree, plans, involved)
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	if err != nil {
		switch sched.Classify(ctx.Err(), err) {
		case sched.VerdictRejected:
			pr.ctrs.rejected.Add(1)
		case sched.VerdictAborted:
			if ctx.Err() != nil {
				pr.ctrs.canceled.Add(1)
			} else {
				pr.ctrs.failed.Add(1)
			}
		}
		return SessionInfo{}, err
	}
	if !ok {
		// Unreachable: the view was an atomic cut under every shard lock.
		s.aborts.Add(1)
		pr.ctrs.failed.Add(1)
		return SessionInfo{}, errors.New("service: cross-region commit failed under the global lock")
	}
	s.finishCross(involved, tickets)
	return info, nil
}

// shardOf resolves a session ID ("s<shard>-<n>") to its home shard.
func (s *ShardedServer) shardOf(id string) (*Server, int, bool) {
	var shard int
	var n uint64
	if _, err := fmt.Sscanf(id, "s%d-%d", &shard, &n); err != nil {
		return nil, 0, false
	}
	if shard < 0 || shard >= len(s.shards) {
		return nil, 0, false
	}
	return s.shards[shard], shard, true
}

// Session returns the live session with the given ID.
func (s *ShardedServer) Session(id string) (SessionInfo, bool) {
	sh, _, ok := s.shardOf(id)
	if !ok {
		return SessionInfo{}, false
	}
	return sh.Session(id)
}

// Delete releases a session before its TTL. Cross-region sessions fan the
// release out to every involved shard; a secondary copy already released by
// its own expiry wheel is not an error.
func (s *ShardedServer) Delete(id string) error {
	sh, idx, ok := s.shardOf(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	shards, ok := sh.sessionShards(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	err := sh.Delete(id)
	for _, r := range shards {
		if r == idx {
			continue
		}
		if qerr := s.shards[r].deleteQuiet(id); qerr != nil && err == nil {
			err = qerr
		}
	}
	return err
}

// ActiveSessions returns the number of sessions holding capacity, counting
// each cross-region session once (its home copy).
func (s *ShardedServer) ActiveSessions() int {
	total := 0
	for _, sh := range s.shards {
		active, secondary := sh.sessionCounts()
		total += active - secondary
	}
	return total
}

// Close drains and stops every shard. In-flight cross-region admissions
// finish first (crossMu); later ones bounce with ErrClosed.
func (s *ShardedServer) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		s.crossMu.Lock() // wait out an in-flight cross-region decision
		s.crossMu.Unlock()
		for _, sh := range s.shards {
			if err := sh.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// ShardStates dumps every shard's durable state as one consistent cut: all
// shard locks are held (ascending) while dumping, so each cross-region
// commit — which mutates all its shards under the same locks — appears on
// every involved shard or none. (Releases are per-shard; a session mid-
// release across expiry wheels is reported by ComposeShardStates as torn.)
func (s *ShardedServer) ShardStates() []State {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	states := make([]State, len(s.shards))
	for i, sh := range s.shards {
		states[i] = sh.stateLocked()
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	return states
}

// ComposedState merges a consistent cut of every shard's state onto the
// full topology (ComposeShardStates), for VerifyState.
func (s *ShardedServer) ComposedState() (State, []string, error) {
	return ComposeShardStates(s.g, s.part, s.ShardStates())
}

// RouterMetrics is the /metrics "router" section of a sharded server.
type RouterMetrics struct {
	Shards           int   `json:"shards"`
	PartitionSeed    int64 `json:"partition_seed"`
	CutEdges         int   `json:"cut_edges"`
	BoundarySwitches int   `json:"boundary_switches"`
	// SingleRegion and CrossRegion count routed requests by class;
	// CrossRegionRate is CrossRegion over their sum.
	SingleRegion    int64   `json:"single_region"`
	CrossRegion     int64   `json:"cross_region"`
	CrossRegionRate float64 `json:"cross_region_rate"`
	// Prepares counts two-phase commit attempts, Conflicts the attempts or
	// view rejections invalidated by concurrent shard traffic, Retries the
	// fresh-view re-solves, Aborts the prepared attempts rolled back, and
	// GlobalFallbacks the requests decided under every shard's lock.
	Prepares        int64 `json:"prepares"`
	Conflicts       int64 `json:"conflicts"`
	Retries         int64 `json:"retries"`
	Aborts          int64 `json:"aborts"`
	GlobalFallbacks int64 `json:"global_fallbacks"`
}

// ShardedMetrics is the sharded daemon's GET /metrics document: the
// aggregate view in the embedded Metrics (summed counters, merged
// histograms; peak qubits is the sum of per-shard peaks, an upper bound),
// the router's own counters, and the per-shard breakdown.
type ShardedMetrics struct {
	Metrics
	Router RouterMetrics `json:"router"`
	Shards []Metrics     `json:"shards"`
}

// mergeHistograms sums bucket-aligned histogram snapshots; means are
// count-weighted.
func mergeHistograms(snaps ...HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	var weighted float64
	for _, h := range snaps {
		if out.Buckets == nil && len(h.Buckets) > 0 {
			out.Buckets = make([]Bucket, len(h.Buckets))
			for i := range h.Buckets {
				out.Buckets[i].LeMs = h.Buckets[i].LeMs
			}
		}
		for i := range h.Buckets {
			out.Buckets[i].Count += h.Buckets[i].Count
		}
		out.Count += h.Count
		weighted += h.MeanMs * float64(h.Count)
	}
	if out.Count > 0 {
		out.MeanMs = weighted / float64(out.Count)
	}
	return out
}

// aggregateDurability folds per-shard durability sections; nil when no
// shard runs durable.
func aggregateDurability(shards []Metrics) *DurabilityMetrics {
	var out *DurabilityMetrics
	var syncMs float64
	for _, m := range shards {
		d := m.Durability
		if d == nil {
			continue
		}
		if out == nil {
			out = &DurabilityMetrics{}
		}
		if d.Failed {
			out.Failed = true
			if out.Failure == "" {
				out.Failure = d.Failure
			}
		}
		out.WALSeq += d.WALSeq
		out.WAL.Records += d.WAL.Records
		out.WAL.Batches += d.WAL.Batches
		if d.WAL.MaxBatch > out.WAL.MaxBatch {
			out.WAL.MaxBatch = d.WAL.MaxBatch
		}
		out.WAL.Bytes += d.WAL.Bytes
		out.WAL.Syncs += d.WAL.Syncs
		syncMs += d.WAL.SyncMeanMs * float64(d.WAL.Syncs)
		if d.WAL.SyncP99Ms > out.WAL.SyncP99Ms {
			out.WAL.SyncP99Ms = d.WAL.SyncP99Ms
		}
		out.WAL.Rotations += d.WAL.Rotations
		out.WAL.Compactions += d.WAL.Compactions
		if d.Snapshot.Seq > out.Snapshot.Seq {
			out.Snapshot.Seq = d.Snapshot.Seq
		}
		if d.Snapshot.AgeMs > out.Snapshot.AgeMs {
			out.Snapshot.AgeMs = d.Snapshot.AgeMs
		}
		out.Snapshot.Bytes += d.Snapshot.Bytes
		out.Snapshot.Failures += d.Snapshot.Failures
		if d.Recovery.DurationMs > out.Recovery.DurationMs {
			out.Recovery.DurationMs = d.Recovery.DurationMs
		}
		out.Recovery.WALRecords += d.Recovery.WALRecords
		out.Recovery.Sessions += d.Recovery.Sessions
		if d.Recovery.SnapshotSeq > out.Recovery.SnapshotSeq {
			out.Recovery.SnapshotSeq = d.Recovery.SnapshotSeq
		}
	}
	if out != nil {
		if out.WAL.Batches > 0 {
			out.WAL.MeanBatch = float64(out.WAL.Records) / float64(out.WAL.Batches)
		}
		if out.WAL.Syncs > 0 {
			out.WAL.SyncMeanMs = syncMs / float64(out.WAL.Syncs)
		}
	}
	return out
}

// aggregateSpeculation folds per-shard speculation sections; nil when every
// shard runs the serial scheduler.
func aggregateSpeculation(shards []Metrics) *SpeculationMetrics {
	var out *SpeculationMetrics
	var weighted float64
	for _, m := range shards {
		sp := m.Speculation
		if sp == nil {
			continue
		}
		if out == nil {
			out = &SpeculationMetrics{Workers: sp.Workers, Retries: sp.Retries}
		}
		out.Solves += sp.Solves
		out.Commits += sp.Commits
		out.Rejects += sp.Rejects
		out.CacheHits += sp.CacheHits
		out.Conflicts += sp.Conflicts
		out.Resolves += sp.Resolves
		out.Fallbacks += sp.Fallbacks
		if sp.MaxParallel > out.MaxParallel {
			out.MaxParallel = sp.MaxParallel
		}
		weighted += sp.MeanBatchParallelism * float64(sp.Solves)
	}
	if out != nil {
		if out.Solves > 0 {
			out.WastedSolveRatio = float64(out.Conflicts) / float64(out.Solves)
			out.MeanBatchParallelism = weighted / float64(out.Solves)
		}
	}
	return out
}

// aggregateSolveCache folds per-shard solve-cache sections (capacities and
// counters sum; the hit rate is recomputed over the totals); nil when every
// shard runs with the cache disabled.
func aggregateSolveCache(shards []Metrics) *SolveCacheMetrics {
	var out *SolveCacheMetrics
	for _, m := range shards {
		if m.SolveCache == nil {
			continue
		}
		if out == nil {
			out = &SolveCacheMetrics{}
		}
		out.add(m.SolveCache)
	}
	if out != nil {
		out.finish()
	}
	return out
}

// aggregateFootprintPool folds per-shard footprint-pool sections.
func aggregateFootprintPool(shards []Metrics) *FootprintPoolMetrics {
	var out *FootprintPoolMetrics
	for _, m := range shards {
		if m.FootprintPool == nil {
			continue
		}
		if out == nil {
			out = &FootprintPoolMetrics{}
		}
		out.add(m.FootprintPool)
	}
	if out != nil {
		out.finish()
	}
	return out
}

// Metrics snapshots every shard plus the router and aggregates them. Summed
// counters are exact (cross-region sessions are homed on — and counted by —
// exactly one shard); the aggregate peak is the sum of per-shard peaks,
// which bounds but may overstate the true simultaneous peak.
func (s *ShardedServer) Metrics() ShardedMetrics {
	shardM := make([]Metrics, len(s.shards))
	for i, sh := range s.shards {
		shardM[i] = sh.Metrics()
	}
	s.crossMu.Lock()
	crossWork := s.crossWork
	s.crossMu.Unlock()

	agg := Metrics{UptimeMs: float64(s.clock.Now().Sub(s.start)) / 1e6}
	var work core.SolveStats
	work.Merge(&crossWork)
	var sumRate float64
	hists := []HistogramSnapshot{s.lat.snapshot()}
	for i, m := range shardM {
		agg.Queue.Depth += m.Queue.Depth
		agg.Queue.Capacity += m.Queue.Capacity
		agg.Requests.Total += m.Requests.Total
		agg.Requests.Accepted += m.Requests.Accepted
		agg.Requests.Rejected += m.Requests.Rejected
		agg.Requests.QueueFull += m.Requests.QueueFull
		agg.Requests.Throttled += m.Requests.Throttled
		agg.Requests.Invalid += m.Requests.Invalid
		agg.Requests.Canceled += m.Requests.Canceled
		agg.Requests.Failed += m.Requests.Failed
		agg.Batches.Count += m.Batches.Count
		agg.Batches.Requests += m.Batches.Requests
		if m.Batches.MaxSize > agg.Batches.MaxSize {
			agg.Batches.MaxSize = m.Batches.MaxSize
		}
		hists = append(hists, m.SolveLatency)
		active, secondary := s.shards[i].sessionCounts()
		agg.Sessions.Active += active - secondary
		agg.Sessions.Expired += m.Sessions.Expired
		agg.Sessions.Deleted += m.Sessions.Deleted
		agg.Ledger.UsedQubits += m.Ledger.UsedQubits
		agg.Ledger.TotalQubits += m.Ledger.TotalQubits
		if m.Ledger.EpochGen > agg.Ledger.EpochGen {
			agg.Ledger.EpochGen = m.Ledger.EpochGen
		}
		agg.Admission.PeakQubitsInUse += m.Admission.PeakQubitsInUse
		work.Merge(&m.Admission.Work)
		sumRate += m.Admission.MeanAcceptedRate * float64(m.Requests.Accepted)
	}
	if agg.Batches.Count > 0 {
		agg.Batches.MeanSize = float64(agg.Batches.Requests) / float64(agg.Batches.Count)
	}
	agg.Ledger.FreeQubits = agg.Ledger.TotalQubits - agg.Ledger.UsedQubits
	agg.SolveLatency = mergeHistograms(hists...)
	acc, rej := agg.Requests.Accepted, agg.Requests.Rejected
	agg.Admission.Sessions = int(acc + rej)
	agg.Admission.Accepted = int(acc)
	agg.Admission.Rejected = int(rej)
	if acc+rej > 0 {
		agg.Admission.AcceptanceRatio = float64(acc) / float64(acc+rej)
	}
	if acc > 0 {
		agg.Admission.MeanAcceptedRate = sumRate / float64(acc)
	}
	agg.Admission.Work = work
	agg.Durability = aggregateDurability(shardM)
	agg.Speculation = aggregateSpeculation(shardM)
	agg.SolveCache = aggregateSolveCache(shardM)
	agg.FootprintPool = aggregateFootprintPool(shardM)
	agg.Tenants = aggregateTenants(shardM)

	single, cross := s.singleRegion.Load(), s.crossRegion.Load()
	rm := RouterMetrics{
		Shards:           len(s.shards),
		PartitionSeed:    s.part.Seed,
		CutEdges:         s.part.CutEdges,
		BoundarySwitches: len(s.part.Boundary),
		SingleRegion:     single,
		CrossRegion:      cross,
		Prepares:         s.prepares.Load(),
		Conflicts:        s.conflicts.Load(),
		Retries:          s.retried.Load(),
		Aborts:           s.aborts.Load(),
		GlobalFallbacks:  s.fallbacks.Load(),
	}
	if single+cross > 0 {
		rm.CrossRegionRate = float64(cross) / float64(single+cross)
	}
	return ShardedMetrics{Metrics: agg, Router: rm, Shards: shardM}
}

// Handler returns the sharded daemon's HTTP API — Server.Handler's routes
// plus GET /partition (the pinned region partition).
func (s *ShardedServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /topology", s.handleTopology)
	mux.HandleFunc("GET /partition", s.handlePartition)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *ShardedServer) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decode body: %v", err))
		return
	}
	if req.TTLMs < 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "ttl_ms must be >= 0")
		return
	}
	info, err := s.SubmitTenant(r.Context(), req.Tenant, req.Users, time.Duration(req.TTLMs)*time.Millisecond)
	if err != nil {
		writeSubmitError(w, s.base.RetryAfter, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *ShardedServer) handleGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such session")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *ShardedServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *ShardedServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *ShardedServer) handleTopology(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.g.WriteJSON(w)
}

func (s *ShardedServer) handlePartition(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.part)
}

func (s *ShardedServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "")
		return
	}
	for _, sh := range s.shards {
		if sh.dur != nil && sh.dur.failed.Load() {
			writeError(w, http.StatusServiceUnavailable, "durability_failed", ErrDurability.Error())
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
