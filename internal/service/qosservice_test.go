package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/qos"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
)

// wideBottleneck is bottleneck with a roomier switch, so several concurrent
// sessions fit and quota rejections are distinguishable from capacity ones.
func wideBottleneck(t testing.TB, qubits int) *graph.Graph {
	t.Helper()
	g := graph.New(5, 4)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddUser(0, 2000)
	g.AddUser(2000, 2000)
	g.AddSwitch(1000, 1000, qubits)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1500)
	}
	return g
}

func postTenantSession(t *testing.T, base, tenant string, users []int, ttlMs int64) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{"users": users, "ttl_ms": ttlMs, "tenant": tenant})
	resp, err := http.Post(base+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sessions: %v", err)
	}
	return resp
}

func findTenant(t *testing.T, tenants []TenantMetrics, id string) TenantMetrics {
	t.Helper()
	for _, tm := range tenants {
		if tm.ID == id {
			return tm
		}
	}
	t.Fatalf("tenant %q missing from metrics %+v", id, tenants)
	return TenantMetrics{}
}

// TestQoSQuotaThrottleHTTP pins the quota semantics end to end: a tenant
// past its token bucket gets 429 with error "throttled" and a Retry-After
// computed from the bucket's refill time, other tenants are untouched, the
// bucket refills with the (fake) clock, and the per-tenant SLO section in
// /metrics accounts each outcome to the right tenant.
func TestQoSQuotaThrottleHTTP(t *testing.T) {
	base := time.Unix(1000, 0)
	fc := newFakeClock(base)
	s := newTestServer(t, Config{
		Graph:    wideBottleneck(t, 8),
		MaxBatch: 1,
		MaxTTL:   time.Hour,
		Clock:    fc,
		QoS: &qos.Config{Tenants: []qos.TenantSpec{
			{ID: "limited", RatePerSec: 1, Burst: 1},
			{ID: "open", Weight: 2},
		}},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postTenantSession(t, ts.URL, "limited", []int{0, 1}, 3600_000)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("limited #1 status = %d, want 201", resp.StatusCode)
	}
	var info SessionInfo
	decodeInto(t, resp, &info)
	if info.Tenant != "limited" {
		t.Fatalf("session tenant = %q, want limited", info.Tenant)
	}

	// Burst spent, clock standing still: the next request must throttle.
	resp = postTenantSession(t, ts.URL, "limited", []int{2, 3}, 3600_000)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("limited #2 status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	var eb errorBody
	decodeInto(t, resp, &eb)
	if eb.Error != "throttled" {
		t.Fatalf("error code = %q, want throttled", eb.Error)
	}

	// The other tenant is unaffected by limited's empty bucket.
	resp = postTenantSession(t, ts.URL, "open", []int{2, 3}, 3600_000)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open status = %d, want 201", resp.StatusCode)
	}
	_ = resp.Body.Close()

	// One refill interval later the throttled tenant is served again.
	fc.Set(base.Add(2 * time.Second))
	resp = postTenantSession(t, ts.URL, "limited", []int{0, 2}, 3600_000)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("limited #3 status = %d, want 201", resp.StatusCode)
	}
	_ = resp.Body.Close()

	m := s.Metrics()
	if m.Requests.Throttled != 1 {
		t.Fatalf("Requests.Throttled = %d, want 1", m.Requests.Throttled)
	}
	lim := findTenant(t, m.Tenants, "limited")
	if lim.Accepted != 2 || lim.Throttled != 1 {
		t.Fatalf("limited accounting = %+v, want 2 accepted / 1 throttled", lim)
	}
	if lim.AdmissionLatency.Count != 2 {
		t.Fatalf("limited latency count = %d, want 2 (throttles are not decisions)", lim.AdmissionLatency.Count)
	}
	open := findTenant(t, m.Tenants, "open")
	if open.Accepted != 1 || open.Throttled != 0 {
		t.Fatalf("open accounting = %+v, want 1 accepted / 0 throttled", open)
	}
	def := findTenant(t, m.Tenants, qos.DefaultTenant)
	if def.Accepted != 0 {
		t.Fatalf("default tenant accounting = %+v, want untouched", def)
	}
}

// TestQoSPerTenantQueueBound pins queue isolation: a tenant with a tiny
// sub-queue gets ErrQueueFull without consuming any other tenant's budget,
// and the per-tenant queue-full counter attributes the bounce. The server
// mutex is held by the test so the admission loop cannot drain: requests
// pile up in the QoS scheduler, and Enqueue's bound check — which is
// synchronous — fires deterministically once the tiny queue holds one item.
func TestQoSPerTenantQueueBound(t *testing.T) {
	s := newTestServer(t, Config{
		Graph:    wideBottleneck(t, 8),
		MaxBatch: 1,
		MaxTTL:   time.Hour,
		QoS: &qos.Config{Tenants: []qos.TenantSpec{
			{ID: "tiny", QueueSize: 1},
			{ID: "roomy", QueueSize: 8},
		}},
	})
	s.mu.Lock()
	defer s.mu.Unlock()

	// Submit with a short deadline: when the request lands in the queue the
	// deadline fires (the loop is parked on s.mu), when the queue is full the
	// bounce is synchronous. Each queued-but-abandoned request stays queued,
	// so within a few rounds the single-slot tenant must report full.
	trySubmit := func(tenant string, users []graph.NodeID) error {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		_, err := s.SubmitTenant(ctx, tenant, users, time.Minute)
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := trySubmit("tiny", []graph.NodeID{0, 1})
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("tiny submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("tiny tenant queue never reported full")
		}
	}
	// The other tenant's sub-queue still has room: its request queues (and
	// times out waiting) rather than bouncing.
	if err := trySubmit("roomy", []graph.NodeID{0, 2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("roomy submit = %v, want queued (deadline exceeded)", err)
	}

	tiny := s.tstats.get("tiny")
	if tiny == nil || tiny.queueFull.Load() == 0 {
		t.Fatalf("tiny tenant has no queue_full bounce recorded")
	}
	if roomy := s.tstats.get("roomy"); roomy == nil || roomy.queueFull.Load() != 0 {
		t.Fatalf("roomy tenant recorded a queue_full bounce")
	}
}

// TestQoSShardedDifferential replays one trace through the sharded plane
// with and without the QoS layer (single default tenant): the queue layer
// must be semantically invisible at every shard count, and the aggregated
// tenant section must account every decision.
func TestQoSShardedDifferential(t *testing.T) {
	g := clusterGraph(t, 4, 4, 4, 4)
	w := sched.Workload{Requests: 120, MeanInterarrival: 1, MeanHold: 6, MinUsers: 2, MaxUsers: 3}
	requests, err := w.Generate(g, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	sort.SliceStable(requests, func(i, j int) bool {
		if requests[i].Arrival != requests[j].Arrival {
			return requests[i].Arrival < requests[j].Arrival
		}
		return requests[i].ID < requests[j].ID
	})
	base := time.Unix(0, 0)
	mkConfig := func(fc *fakeClock, withQoS bool) Config {
		c := Config{
			Graph:     g,
			QueueSize: 4,
			MaxBatch:  1,
			MaxTTL:    1000 * time.Hour,
			Clock:     fc,
			Scheduler: SchedulerSerial,
		}
		if withQoS {
			c.QoS = &qos.Config{}
		}
		return c
	}
	for _, k := range []int{1, 2} {
		refClock := newFakeClock(base)
		ref, err := NewSharded(ShardedConfig{Config: mkConfig(refClock, false), Shards: k, PartitionSeed: 7})
		if err != nil {
			t.Fatalf("k=%d: NewSharded: %v", k, err)
		}
		want := replayTrace(t, ref, refClock, base, requests)
		_ = ref.Close()

		fc := newFakeClock(base)
		s, err := NewSharded(ShardedConfig{Config: mkConfig(fc, true), Shards: k, PartitionSeed: 7})
		if err != nil {
			t.Fatalf("k=%d: NewSharded qos: %v", k, err)
		}
		got := replayTrace(t, s, fc, base, requests)
		for i := range want {
			if got[i].accepted != want[i].accepted {
				t.Fatalf("k=%d: request %d qos accepted=%v, plain accepted=%v",
					k, requests[i].ID, got[i].accepted, want[i].accepted)
			}
			if math.Abs(got[i].rate-want[i].rate) > 1e-15*math.Max(1, math.Abs(want[i].rate)) {
				t.Fatalf("k=%d: request %d rate %g vs %g", k, requests[i].ID, got[i].rate, want[i].rate)
			}
		}
		m := s.Metrics()
		def := findTenant(t, m.Tenants, qos.DefaultTenant)
		if def.Accepted != m.Requests.Accepted || def.Rejected != m.Requests.Rejected {
			t.Fatalf("k=%d: aggregated default tenant %+v vs requests %+v", k, def, m.Requests)
		}
		if def.AdmissionLatency.Count != def.Accepted+def.Rejected {
			t.Fatalf("k=%d: tenant latency count %d, want %d decisions",
				k, def.AdmissionLatency.Count, def.Accepted+def.Rejected)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("k=%d: Close: %v", k, err)
		}
	}
}

// TestQoSMultiTenantHammer floods a QoS server from many goroutines across
// every tenant class (weighted, prioritized, quota'd, default, unknown)
// with concurrent deletes and expiries, then verifies the final durable
// state image against the ledger invariants and cross-checks the tenant
// SLO counters against the global ones. Run under -race this is the
// concurrency pin for the QoS plane.
func TestQoSMultiTenantHammer(t *testing.T) {
	cfgT := topology.Default()
	cfgT.Users = 8
	cfgT.Switches = 16
	cfgT.SwitchQubits = 2
	g, err := topology.Generate(cfgT, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	qc := &qos.Config{
		Tenants: []qos.TenantSpec{
			{ID: "gold", Weight: 3, Priority: 1},
			{ID: "bronze", Weight: 1},
			{ID: "capped", RatePerSec: 200, Burst: 20},
		},
		GuaranteedShare: 0.25,
	}
	s := newTestServer(t, Config{
		Graph:     g,
		QueueSize: 64,
		MaxBatch:  4,
		MaxWait:   100 * time.Microsecond,
		MaxTTL:    time.Hour,
		Scheduler: SchedulerSpeculative,
		Workers:   4,
		QoS:       qc,
	})

	users := g.Users()
	tenants := []string{"gold", "bronze", "capped", "", "unknown-tenant"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				pair := []graph.NodeID{
					users[rng.Intn(len(users))],
					users[rng.Intn(len(users))],
				}
				for pair[1] == pair[0] {
					pair[1] = users[rng.Intn(len(users))]
				}
				tenant := tenants[rng.Intn(len(tenants))]
				info, err := s.SubmitTenant(context.Background(), tenant, pair, 20*time.Millisecond)
				switch {
				case err == nil:
					if rng.Intn(3) == 0 {
						_ = s.Delete(info.ID)
					}
				case errors.Is(err, core.ErrInfeasible),
					errors.Is(err, qos.ErrThrottled),
					errors.Is(err, ErrQueueFull):
				default:
					t.Errorf("tenant %q: unexpected error %v", tenant, err)
					return
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()

	if err := VerifyState(g, quantum.DefaultParams(), s.StateDump()); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
	m := s.Metrics()
	var accepted, rejected, throttled int64
	for _, tm := range m.Tenants {
		accepted += tm.Accepted
		rejected += tm.Rejected
		throttled += tm.Throttled
	}
	if accepted != m.Requests.Accepted || rejected != m.Requests.Rejected || throttled != m.Requests.Throttled {
		t.Fatalf("tenant sums %d/%d/%d disagree with request counters %d/%d/%d",
			accepted, rejected, throttled,
			m.Requests.Accepted, m.Requests.Rejected, m.Requests.Throttled)
	}
	if m.Requests.Accepted == 0 || m.Requests.Rejected == 0 {
		t.Fatalf("degenerate hammer (%d accepts, %d rejects)", m.Requests.Accepted, m.Requests.Rejected)
	}
}

// TestQoSRecoveryWithTenants drives a tenant-tagged durable trace, crashes,
// and requires the recovered state image — now carrying tenant fields in
// session infos — to serialize byte-identically, the tenants to survive a
// server restart, and the pinned qos.json to reject a policy change.
func TestQoSRecoveryWithTenants(t *testing.T) {
	dir := t.TempDir()
	cfgT := topology.Default()
	cfgT.Users = 8
	cfgT.Switches = 16
	cfgT.SwitchQubits = 2
	g, err := topology.Generate(cfgT, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	w := sched.Workload{Requests: 80, MeanInterarrival: 1, MeanHold: 6, MinUsers: 2, MaxUsers: 4}
	requests, err := w.Generate(g, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	sort.SliceStable(requests, func(i, j int) bool {
		if requests[i].Arrival != requests[j].Arrival {
			return requests[i].Arrival < requests[j].Arrival
		}
		return requests[i].ID < requests[j].ID
	})

	qc := &qos.Config{Tenants: []qos.TenantSpec{
		{ID: "gold", Weight: 3, Priority: 1},
		{ID: "bronze"},
	}}
	mk := func(fc *fakeClock, q *qos.Config) Config {
		return Config{
			Graph: g, DataDir: dir, QueueSize: 4, MaxBatch: 1,
			MaxTTL: 1000 * time.Hour, Clock: fc, QoS: q,
			SnapshotEvery: 1 << 30, SnapshotInterval: 1000 * time.Hour,
		}
	}
	base := time.Unix(0, 0)
	fc := newFakeClock(base)
	s, err := New(mk(fc, qc))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tenants := []string{"gold", "bronze", ""}
	accepted, rejected, deleted := 0, 0, 0
	for i, req := range requests {
		fc.Set(base.Add(seconds(req.Arrival)))
		info, err := s.SubmitTenant(context.Background(), tenants[i%len(tenants)], req.Users, seconds(req.Hold))
		switch {
		case err == nil:
			accepted++
			if accepted%5 == 0 {
				if err := s.Delete(info.ID); err != nil {
					t.Fatalf("Delete %s: %v", info.ID, err)
				}
				deleted++
			}
		case errors.Is(err, core.ErrInfeasible):
			rejected++
		default:
			t.Fatalf("request %d: %v", req.ID, err)
		}
	}
	if accepted == 0 || rejected == 0 || deleted == 0 {
		t.Fatalf("degenerate trace (%d/%d/%d)", accepted, rejected, deleted)
	}
	// Quiesce as durableTrace does.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.StateDump()
		pending := false
		for _, ss := range st.Sessions {
			if !ss.Info.ExpiresAt.After(fc.Now()) {
				pending = true
			}
		}
		if !pending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expiry wheel never quiesced")
		}
		time.Sleep(time.Millisecond)
	}

	dump := s.StateDump()
	want := dumpJSON(t, dump)
	tagged := 0
	for _, ss := range dump.Sessions {
		if ss.Info.Tenant != "" {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("no live session carries a tenant tag; the trace is too weak")
	}
	crash(t, s)

	rec, err := Recover(dir, g)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := dumpJSON(t, rec.State); string(got) != string(want) {
		t.Fatalf("recovered state differs\nlive:      %s\nrecovered: %s", want, got)
	}

	// A changed tenant policy must be refused against the pinned qos.json.
	if _, err := New(mk(newFakeClock(fc.Now()), &qos.Config{Tenants: []qos.TenantSpec{{ID: "gold", Weight: 7}}})); err == nil {
		t.Fatal("restart with a different QoS policy succeeded; want pin mismatch")
	}

	// The same policy restarts cleanly with identical state, tenants intact.
	s2, err := New(mk(newFakeClock(fc.Now()), qc))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() { _ = s2.Close() }()
	if got := dumpJSON(t, s2.StateDump()); string(got) != string(want) {
		t.Fatalf("restarted state differs\nbefore: %s\nafter:  %s", want, got)
	}
	for _, ss := range dump.Sessions {
		info, ok := s2.Session(ss.Info.ID)
		if !ok || info.Tenant != ss.Info.Tenant {
			t.Fatalf("session %s tenant %q not recovered (ok=%v info=%+v)", ss.Info.ID, ss.Info.Tenant, ok, info)
		}
	}
}

// TestSolveCacheWarmStart pins the PR-9 warm-start satellite: accept-tier
// user sets persist beside the snapshot, a restart re-primes them, and the
// very first post-restart repeat is a cache hit (nonzero first-batch hit
// rate) with the decision unchanged.
func TestSolveCacheWarmStart(t *testing.T) {
	dir := t.TempDir()
	g := wideBottleneck(t, 8)
	base := time.Unix(0, 0)
	mk := func(fc *fakeClock) Config {
		return Config{Graph: g, DataDir: dir, MaxBatch: 1, MaxTTL: 1000 * time.Hour, Clock: fc}
	}
	fc := newFakeClock(base)
	s1, err := New(mk(fc))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	info, err := s1.Submit(context.Background(), []graph.NodeID{0, 1}, time.Hour)
	if err != nil {
		t.Fatalf("seed session: %v", err)
	}
	wantRate := info.Rate
	if _, err := s1.Submit(context.Background(), []graph.NodeID{2, 3}, time.Hour); err != nil {
		t.Fatalf("second seed session: %v", err)
	}
	// Release everything so the restart re-primes against a free ledger.
	if err := s1.Delete(info.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s1.Close(); err != nil { // graceful: final snapshot + warm set
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(mk(newFakeClock(base)))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() { _ = s2.Close() }()
	m := s2.Metrics()
	if m.SolveCache == nil || m.SolveCache.Warmed == 0 {
		t.Fatalf("solve cache not warmed at boot: %+v", m.SolveCache)
	}
	info2, err := s2.Submit(context.Background(), []graph.NodeID{0, 1}, time.Hour)
	if err != nil {
		t.Fatalf("post-restart repeat: %v", err)
	}
	if math.Abs(info2.Rate-wantRate) > 1e-15*math.Max(1, math.Abs(wantRate)) {
		t.Fatalf("post-restart rate %g, want %g", info2.Rate, wantRate)
	}
	m = s2.Metrics()
	if hits := m.SolveCache.ExactHits + m.SolveCache.EpochHits; hits == 0 {
		t.Fatalf("first post-restart repeat missed the warmed cache: %+v", m.SolveCache)
	}
	if err := VerifyState(g, quantum.DefaultParams(), s2.StateDump()); err != nil {
		t.Fatalf("VerifyState after warm hit: %v", err)
	}
}

// TestQoSStarvationBoundUnderLoad floods a two-tier QoS server with
// high-priority traffic while a low-priority tenant keeps a steady trickle:
// the guaranteed share must keep serving the low tier (its accepted+rejected
// decision count stays nonzero), the end-to-end expression of the
// internal/qos starvation bound.
func TestQoSStarvationBoundUnderLoad(t *testing.T) {
	cfgT := topology.Default()
	cfgT.Users = 8
	cfgT.Switches = 16
	cfgT.SwitchQubits = 4
	g, err := topology.Generate(cfgT, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	s := newTestServer(t, Config{
		Graph:     g,
		QueueSize: 32,
		MaxBatch:  2,
		MaxWait:   50 * time.Microsecond,
		MaxTTL:    time.Hour,
		QoS: &qos.Config{
			Tenants: []qos.TenantSpec{
				{ID: "vip", Priority: 10, Weight: 4},
				{ID: "batch", Priority: 0, Weight: 1},
			},
			GuaranteedShare: 0.25,
		},
	})
	users := g.Users()
	var wg sync.WaitGroup
	submit := func(tenant string, n int, seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			pair := []graph.NodeID{users[rng.Intn(len(users))], 0}
			pair[1] = users[rng.Intn(len(users))]
			for pair[1] == pair[0] {
				pair[1] = users[rng.Intn(len(users))]
			}
			_, err := s.SubmitTenant(context.Background(), tenant, pair, 5*time.Millisecond)
			if err != nil && !errors.Is(err, core.ErrInfeasible) && !errors.Is(err, ErrQueueFull) {
				t.Errorf("%s: %v", tenant, err)
				return
			}
		}
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go submit("vip", 80, int64(w))
	}
	wg.Add(1)
	go submit("batch", 60, 99)
	wg.Wait()

	m := s.Metrics()
	batch := findTenant(t, m.Tenants, "batch")
	if decided := batch.Accepted + batch.Rejected; decided == 0 {
		t.Fatalf("low-priority tenant starved under flood: %+v", batch)
	}
	if err := VerifyState(g, quantum.DefaultParams(), s.StateDump()); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
}

// TestTenantMaxTTLClamp pins the per-tenant session-lifetime cap: a capped
// tenant's long request is clamped to its max_ttl_ms — the session really
// expires at the cap, freeing capacity — and each shortened request is
// counted in the tenant's ttl_clamped metric. Requests at or under the cap
// and uncapped tenants are untouched.
func TestTenantMaxTTLClamp(t *testing.T) {
	base := time.Unix(3000, 0)
	fc := newFakeClock(base)
	s := newTestServer(t, Config{
		MaxBatch: 1,
		MaxTTL:   time.Hour,
		Clock:    fc,
		QoS: &qos.Config{Tenants: []qos.TenantSpec{
			{ID: "capped", MaxTTLMs: 1000},
			{ID: "open"},
		}},
	})

	// An hour-long request from the capped tenant holds the bottleneck for
	// one second only.
	info, err := s.SubmitTenant(context.Background(), "capped", []graph.NodeID{0, 1}, time.Hour)
	if err != nil {
		t.Fatalf("capped submit: %v", err)
	}
	if got := info.ExpiresAt.Sub(info.AdmittedAt); got != time.Second {
		t.Fatalf("capped session lifetime = %v, want 1s", got)
	}
	// While it lives, a contender is rejected on capacity.
	if _, err := s.SubmitTenant(context.Background(), "open", []graph.NodeID{2, 3}, time.Minute); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("contender error = %v, want infeasible", err)
	}
	// Past the tenant cap — far before the requested hour — the capacity is
	// free again, and the uncapped tenant keeps its full requested TTL.
	fc.Set(base.Add(2 * time.Second))
	info2, err := s.SubmitTenant(context.Background(), "open", []graph.NodeID{2, 3}, time.Minute)
	if err != nil {
		t.Fatalf("post-expiry submit: %v", err)
	}
	if got := info2.ExpiresAt.Sub(info2.AdmittedAt); got != time.Minute {
		t.Fatalf("open session lifetime = %v, want 1m", got)
	}
	// An under-cap request from the capped tenant is not counted as clamped.
	fc.Set(base.Add(2 * time.Minute))
	if _, err := s.SubmitTenant(context.Background(), "capped", []graph.NodeID{0, 1}, 500*time.Millisecond); err != nil {
		t.Fatalf("under-cap submit: %v", err)
	}

	m := s.Metrics()
	capped := findTenant(t, m.Tenants, "capped")
	if capped.TTLClamped != 1 {
		t.Fatalf("capped ttl_clamped = %d, want 1", capped.TTLClamped)
	}
	if capped.MaxTTLMs != 1000 {
		t.Fatalf("capped max_ttl_ms = %d, want 1000", capped.MaxTTLMs)
	}
	if open := findTenant(t, m.Tenants, "open"); open.TTLClamped != 0 {
		t.Fatalf("open ttl_clamped = %d, want 0", open.TTLClamped)
	}
}
