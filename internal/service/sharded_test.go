package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
)

// clusterGraph builds c fully disconnected clusters, each a chain of
// switchesPer switches (qubits each) with usersPer users attached round-
// robin. Sessions cannot route between clusters, so any partition that
// keeps clusters whole is exactly respected by every feasible tree — the
// setting where sharded and unsharded admission must agree decision for
// decision.
func clusterGraph(t testing.TB, c, switchesPer, usersPer, qubits int) *graph.Graph {
	t.Helper()
	g := graph.New(0, 0)
	for ci := 0; ci < c; ci++ {
		var users, sws []graph.NodeID
		for i := 0; i < usersPer; i++ {
			users = append(users, g.AddUser(float64(ci*1000+i), 0))
		}
		for i := 0; i < switchesPer; i++ {
			sws = append(sws, g.AddSwitch(float64(ci*1000+i), 100, qubits))
		}
		for i := 1; i < len(sws); i++ {
			g.MustAddEdge(sws[i-1], sws[i], 100)
		}
		for i, u := range users {
			g.MustAddEdge(u, sws[i%len(sws)], 100)
		}
	}
	return g
}

// bridgedClusters is clusterGraph with consecutive clusters joined by one
// bridge edge each: a connected topology whose min cut is the bridges, so
// the partitioner yields cross-region sessions that are actually feasible.
func bridgedClusters(t testing.TB, c, switchesPer, usersPer, qubits int) *graph.Graph {
	t.Helper()
	g := clusterGraph(t, c, switchesPer, usersPer, qubits)
	// Switch IDs inside one cluster are contiguous; bridge the last switch
	// of each cluster to the first of the next.
	perCluster := len(g.Switches()) / c
	sws := g.Switches()
	for ci := 1; ci < c; ci++ {
		g.MustAddEdge(sws[ci*perCluster-1], sws[ci*perCluster], 100)
	}
	return g
}

// shardedTrace replays one request trace through a server and records each
// decision.
type traceOutcome struct {
	accepted bool
	rate     float64
}

type submitter interface {
	Submit(ctx context.Context, users []graph.NodeID, ttl time.Duration) (SessionInfo, error)
}

func replayTrace(t *testing.T, s submitter, fc *fakeClock, base time.Time, requests []sched.Request) []traceOutcome {
	t.Helper()
	out := make([]traceOutcome, len(requests))
	for i, req := range requests {
		fc.Set(base.Add(seconds(req.Arrival)))
		info, err := s.Submit(context.Background(), req.Users, seconds(req.Hold))
		switch {
		case err == nil:
			out[i] = traceOutcome{accepted: true, rate: info.Rate}
		case errors.Is(err, core.ErrInfeasible):
			out[i] = traceOutcome{}
		default:
			t.Fatalf("request %d: %v", req.ID, err)
		}
	}
	return out
}

// TestShardedDifferential replays one random trace through the unsharded
// server and through ShardedServer at k ∈ {1, 2, 4} over a topology of four
// disconnected clusters, and requires identical decisions and rates. The
// partitioner keeps disconnected components whole (asserted via CutEdges ==
// 0), so single-region requests solve the same masked problem and multi-
// cluster requests are infeasible everywhere — sharding must be
// semantically invisible.
func TestShardedDifferential(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		g := clusterGraph(t, 4, 4, 4, 4)
		w := sched.Workload{Requests: 120, MeanInterarrival: 1, MeanHold: 6, MinUsers: 2, MaxUsers: 3}
		requests, err := w.Generate(g, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: workload: %v", seed, err)
		}
		sort.SliceStable(requests, func(i, j int) bool {
			if requests[i].Arrival != requests[j].Arrival {
				return requests[i].Arrival < requests[j].Arrival
			}
			return requests[i].ID < requests[j].ID
		})

		base := time.Unix(0, 0)
		mkConfig := func(fc *fakeClock) Config {
			return Config{
				Graph:     g,
				QueueSize: 4,
				MaxBatch:  1,
				MaxTTL:    1000 * time.Hour,
				Clock:     fc,
				Scheduler: SchedulerSerial,
			}
		}

		refClock := newFakeClock(base)
		ref, err := New(mkConfig(refClock))
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		want := replayTrace(t, ref, refClock, base, requests)
		refM := ref.Metrics()
		_ = ref.Close()

		accepts := 0
		for _, o := range want {
			if o.accepted {
				accepts++
			}
		}
		if accepts == 0 || accepts == len(want) {
			t.Fatalf("seed %d: degenerate reference trace (%d/%d accepts)", seed, accepts, len(want))
		}

		for _, k := range []int{1, 2, 4} {
			fc := newFakeClock(base)
			s, err := NewSharded(ShardedConfig{Config: mkConfig(fc), Shards: k, PartitionSeed: 7})
			if err != nil {
				t.Fatalf("seed %d k=%d: NewSharded: %v", seed, k, err)
			}
			if s.Partition().CutEdges != 0 {
				t.Fatalf("seed %d k=%d: partition cuts %d edges on a disconnected topology",
					seed, k, s.Partition().CutEdges)
			}
			got := replayTrace(t, s, fc, base, requests)
			for i := range want {
				if got[i].accepted != want[i].accepted {
					t.Fatalf("seed %d k=%d: request %d sharded accepted=%v, unsharded accepted=%v",
						seed, k, requests[i].ID, got[i].accepted, want[i].accepted)
				}
				if math.Abs(got[i].rate-want[i].rate) > 1e-15*math.Max(1, math.Abs(want[i].rate)) {
					t.Fatalf("seed %d k=%d: request %d rate %g vs %g",
						seed, k, requests[i].ID, got[i].rate, want[i].rate)
				}
			}

			m := s.Metrics()
			if m.Admission.Accepted != refM.Admission.Accepted || m.Admission.Rejected != refM.Admission.Rejected {
				t.Fatalf("seed %d k=%d: aggregate %d/%d vs unsharded %d/%d", seed, k,
					m.Admission.Accepted, m.Admission.Rejected, refM.Admission.Accepted, refM.Admission.Rejected)
			}
			if k == 1 {
				if m.Router.CrossRegion != 0 {
					t.Fatalf("seed %d k=1: %d cross-region requests on a single shard", seed, m.Router.CrossRegion)
				}
				if m.Admission.PeakQubitsInUse != refM.Admission.PeakQubitsInUse {
					t.Fatalf("seed %d k=1: peak %d vs unsharded %d", seed,
						m.Admission.PeakQubitsInUse, refM.Admission.PeakQubitsInUse)
				}
			}
			if k == 4 && (m.Router.SingleRegion == 0 || m.Router.CrossRegion == 0) {
				t.Fatalf("seed %d k=4: router saw %d single / %d cross — trace does not exercise both paths",
					seed, m.Router.SingleRegion, m.Router.CrossRegion)
			}
			if m.Ledger.TotalQubits != refM.Ledger.TotalQubits {
				t.Fatalf("seed %d k=%d: total qubits %d vs %d", seed, k, m.Ledger.TotalQubits, refM.Ledger.TotalQubits)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("seed %d k=%d: Close: %v", seed, k, err)
			}
		}
	}
}

// regionUsers groups a graph's users by partition region and requires at
// least two regions with at least two users each.
func regionUsers(t *testing.T, g *graph.Graph, part *topology.Partition) [][]graph.NodeID {
	t.Helper()
	byRegion := make([][]graph.NodeID, part.K)
	for _, u := range g.Users() {
		r := part.RegionOf(u)
		byRegion[r] = append(byRegion[r], u)
	}
	populated := 0
	for _, us := range byRegion {
		if len(us) >= 2 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("degenerate partition: user regions %v", byRegion)
	}
	return byRegion
}

// TestShardedCrossRegion2PC hammers a bridged two-region topology with
// concurrent local and cross-region sessions (long and short TTLs plus
// early deletes), then audits the quiesced server: every shard state
// verifies against its region graph, the composed state verifies as a
// whole-topology admission state with no torn sessions, and the two-phase
// counters are consistent. A commit the composed verifier accepts is by
// construction one the full-topology ledger admits — 2PC never commits a
// tree the budgets reject.
func TestShardedCrossRegion2PC(t *testing.T) {
	g := bridgedClusters(t, 2, 5, 6, 8)
	s, err := NewSharded(ShardedConfig{
		Config: Config{
			Graph:     g,
			QueueSize: 32,
			MaxBatch:  4,
			MaxTTL:    1000 * time.Hour,
		},
		Shards:        2,
		PartitionSeed: 11,
		CrossRetries:  2,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer func() { _ = s.Close() }()
	byRegion := regionUsers(t, g, s.Partition())
	var regions []int
	for r, us := range byRegion {
		if len(us) >= 2 {
			regions = append(regions, r)
		}
	}

	var wg sync.WaitGroup
	var accepted, rejected, deleted int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 15; i++ {
				var users []graph.NodeID
				if rng.Intn(2) == 0 {
					// Local pair inside one region.
					us := byRegion[regions[rng.Intn(len(regions))]]
					a := rng.Intn(len(us))
					b := (a + 1 + rng.Intn(len(us)-1)) % len(us)
					users = []graph.NodeID{us[a], us[b]}
				} else {
					// Cross pair spanning the first two populated regions.
					ua := byRegion[regions[0]]
					ub := byRegion[regions[1]]
					users = []graph.NodeID{ua[rng.Intn(len(ua))], ub[rng.Intn(len(ub))]}
				}
				ttl := time.Hour
				if rng.Intn(4) == 0 {
					ttl = 30 * time.Millisecond // exercise expiry under load
				}
				info, err := s.Submit(context.Background(), users, ttl)
				mu.Lock()
				switch {
				case err == nil:
					accepted++
					if ttl == time.Hour && rng.Intn(3) == 0 {
						if derr := s.Delete(info.ID); derr != nil {
							t.Errorf("Delete %s: %v", info.ID, derr)
						} else {
							deleted++
						}
					}
				case errors.Is(err, core.ErrInfeasible):
					rejected++
				default:
					t.Errorf("Submit %v: %v", users, err)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if accepted == 0 {
		t.Fatal("no session accepted — the topology is too tight to exercise commits")
	}

	// Quiesce: short-TTL sessions expire on their shards' own wheels; poll
	// until no dumped session is still due and nothing is torn.
	var states []State
	var composed State
	var torn []string
	deadline := time.Now().Add(10 * time.Second)
	for {
		states = s.ShardStates()
		due := false
		for _, st := range states {
			for _, ss := range st.Sessions {
				if !ss.Info.ExpiresAt.After(time.Now()) {
					due = true
				}
			}
		}
		composed, torn, err = ComposeShardStates(g, s.Partition(), states)
		if err != nil {
			t.Fatalf("ComposeShardStates: %v", err)
		}
		if !due && len(torn) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never quiesced (due=%v torn=%v)", due, torn)
		}
		time.Sleep(time.Millisecond)
	}

	params := quantum.DefaultParams()
	for r, st := range states {
		if err := VerifyShardState(s.RegionGraphOf(r), params, st); err != nil {
			t.Fatalf("shard %d state: %v", r, err)
		}
	}
	if err := VerifyState(g, params, composed); err != nil {
		t.Fatalf("composed state: %v", err)
	}
	if got := s.ActiveSessions(); got != len(composed.Sessions) {
		t.Fatalf("ActiveSessions %d, composed state holds %d", got, len(composed.Sessions))
	}

	m := s.Metrics()
	if m.Router.SingleRegion == 0 || m.Router.CrossRegion == 0 {
		t.Fatalf("router saw %d single / %d cross — both paths must run", m.Router.SingleRegion, m.Router.CrossRegion)
	}
	if m.Router.CrossRegion > 0 && m.Router.Prepares == 0 && m.Requests.Rejected == 0 {
		t.Fatal("cross-region traffic with no prepares and no rejections")
	}
	if int64(m.Admission.Accepted) != accepted || int64(m.Admission.Rejected) != rejected {
		t.Fatalf("aggregate %d/%d, trace saw %d/%d", m.Admission.Accepted, m.Admission.Rejected, accepted, rejected)
	}
	if m.Sessions.Deleted != deleted {
		t.Fatalf("aggregate deleted %d, trace deleted %d", m.Sessions.Deleted, deleted)
	}
}

// TestShardedSessionRouting covers the ID-addressed paths: shard-prefixed
// IDs resolve to their home shard, cross-region deletes fan out to every
// involved shard, and unknown or malformed IDs miss cleanly.
func TestShardedSessionRouting(t *testing.T) {
	g := bridgedClusters(t, 2, 4, 4, 8)
	s, err := NewSharded(ShardedConfig{
		Config: Config{Graph: g, QueueSize: 8, MaxBatch: 2, MaxTTL: time.Hour},
		Shards: 2, PartitionSeed: 5,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer func() { _ = s.Close() }()
	byRegion := regionUsers(t, g, s.Partition())
	var ra, rb int = -1, -1
	for r, us := range byRegion {
		if len(us) >= 2 && ra < 0 {
			ra = r
		} else if len(us) >= 2 && rb < 0 {
			rb = r
		}
	}

	local, err := s.Submit(context.Background(), byRegion[ra][:2], time.Hour)
	if err != nil {
		t.Fatalf("local submit: %v", err)
	}
	cross, err := s.Submit(context.Background(),
		[]graph.NodeID{byRegion[ra][0], byRegion[rb][0]}, time.Hour)
	if err != nil {
		t.Fatalf("cross submit: %v", err)
	}
	if want := fmt.Sprintf("s%d-", ra); len(local.ID) < len(want) || local.ID[:len(want)] != want {
		t.Fatalf("local session ID %q not homed on shard %d", local.ID, ra)
	}
	primary := ra
	if rb < ra {
		primary = rb
	}
	if want := fmt.Sprintf("s%d-", primary); len(cross.ID) < len(want) || cross.ID[:len(want)] != want {
		t.Fatalf("cross session ID %q not homed on primary shard %d", cross.ID, primary)
	}

	for _, id := range []string{local.ID, cross.ID} {
		if got, ok := s.Session(id); !ok || got.ID != id {
			t.Fatalf("Session(%q) = %+v, %v", id, got, ok)
		}
	}
	if _, ok := s.Session("s-1"); ok {
		t.Fatal("unsharded-form ID resolved on a sharded server")
	}
	if _, ok := s.Session("bogus"); ok {
		t.Fatal("malformed ID resolved")
	}
	if got := s.ActiveSessions(); got != 2 {
		t.Fatalf("ActiveSessions = %d, want 2", got)
	}

	if err := s.Delete(cross.ID); err != nil {
		t.Fatalf("Delete cross: %v", err)
	}
	for r := range []int{0, 1} {
		if _, ok := s.shards[r].Session(cross.ID); ok {
			t.Fatalf("cross session copy survives on shard %d after Delete", r)
		}
	}
	if err := s.Delete(cross.ID); err == nil || !errors.Is(err, ErrNoSession) {
		t.Fatalf("second Delete: %v, want ErrNoSession", err)
	}
	if err := s.Delete(local.ID); err != nil {
		t.Fatalf("Delete local: %v", err)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions = %d after deletes, want 0", got)
	}

	used := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		used += sh.led.UsedQubits()
		sh.mu.Unlock()
	}
	if used != 0 {
		t.Fatalf("%d qubits still reserved after deleting every session", used)
	}
}

// shardedDurableTrace drives a durable two-shard server through a mixed
// local/cross trace with deletes and expiries on a fake clock, quiesces it
// and returns it still running (the caller crashes it).
func shardedDurableTrace(t *testing.T, dataDir string) (*ShardedServer, *graph.Graph) {
	t.Helper()
	g := bridgedClusters(t, 2, 4, 6, 6)
	base := time.Unix(0, 0)
	fc := newFakeClock(base)
	s, err := NewSharded(ShardedConfig{
		Config: Config{
			Graph:            g,
			DataDir:          dataDir,
			QueueSize:        4,
			MaxBatch:         1,
			MaxTTL:           1000 * time.Hour,
			Clock:            fc,
			SnapshotEvery:    1 << 30,
			SnapshotInterval: 1000 * time.Hour,
		},
		Shards: 2, PartitionSeed: 11,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	byRegion := regionUsers(t, g, s.Partition())
	var regions []int
	for r, us := range byRegion {
		if len(us) >= 2 {
			regions = append(regions, r)
		}
	}

	rng := rand.New(rand.NewSource(23))
	accepted, crossAccepted := 0, 0
	now := base
	for i := 0; i < 60; i++ {
		now = now.Add(500 * time.Millisecond)
		fc.Set(now)
		var users []graph.NodeID
		cross := rng.Intn(2) == 1
		if cross {
			ua, ub := byRegion[regions[0]], byRegion[regions[1]]
			users = []graph.NodeID{ua[rng.Intn(len(ua))], ub[rng.Intn(len(ub))]}
		} else {
			us := byRegion[regions[rng.Intn(len(regions))]]
			a := rng.Intn(len(us))
			b := (a + 1 + rng.Intn(len(us)-1)) % len(us)
			users = []graph.NodeID{us[a], us[b]}
		}
		ttl := 1000 * time.Hour
		if rng.Intn(3) == 0 {
			ttl = 5 * time.Second // expires mid-trace
		}
		info, err := s.Submit(context.Background(), users, ttl)
		switch {
		case err == nil:
			accepted++
			if cross {
				crossAccepted++
			}
			if rng.Intn(5) == 0 && ttl > time.Minute {
				if err := s.Delete(info.ID); err != nil {
					t.Fatalf("Delete %s: %v", info.ID, err)
				}
			}
		case errors.Is(err, core.ErrInfeasible):
		default:
			t.Fatalf("Submit %v: %v", users, err)
		}
	}
	if accepted == 0 || crossAccepted == 0 {
		t.Fatalf("degenerate durable trace: %d accepts, %d cross", accepted, crossAccepted)
	}

	// Quiesce the expiry wheels at the final clock instant.
	deadline := time.Now().Add(10 * time.Second)
	for {
		pending := false
		for _, st := range s.ShardStates() {
			for _, ss := range st.Sessions {
				if !ss.Info.ExpiresAt.After(now) {
					pending = true
				}
			}
		}
		if !pending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expiry wheels never quiesced")
		}
		time.Sleep(time.Millisecond)
	}
	if s.ActiveSessions() == 0 {
		t.Fatal("trace ended with no live sessions; recovery would be trivial")
	}
	return s, g
}

// crashSharded closes every shard's WAL stream directly — the on-disk state
// a SIGKILL leaves — without draining or snapshotting.
func crashSharded(t *testing.T, s *ShardedServer) {
	t.Helper()
	for r, sh := range s.shards {
		if err := sh.dur.log.Close(); err != nil {
			t.Fatalf("close shard %d WAL: %v", r, err)
		}
	}
}

// TestShardedRecoveryMatchesLiveState is the sharded deterministic-replay
// differential: after a hard crash, each shard's state rebuilt from its own
// WAL stream must serialize byte-identically to that shard's live dump, the
// recovered shard states must verify and compose, and a restarted sharded
// server must resume with the identical state.
func TestShardedRecoveryMatchesLiveState(t *testing.T) {
	dir := t.TempDir()
	s, g := shardedDurableTrace(t, dir)

	want := make([][]byte, s.Shards())
	for r := range want {
		want[r] = dumpJSON(t, s.shards[r].StateDump())
	}
	crashSharded(t, s)

	part, ok, err := LoadPartition(dir, g)
	if err != nil || !ok {
		t.Fatalf("LoadPartition: ok=%v err=%v", ok, err)
	}
	params := quantum.DefaultParams()
	states := make([]State, s.Shards())
	for r := 0; r < s.Shards(); r++ {
		rg := RegionGraph(g, part, r)
		rec, err := RecoverShard(dir, r, rg)
		if err != nil {
			t.Fatalf("RecoverShard %d: %v", r, err)
		}
		if got := dumpJSON(t, rec.State); string(got) != string(want[r]) {
			t.Fatalf("shard %d: recovered state differs from live dump\nlive: %s\nrec:  %s", r, want[r], got)
		}
		if err := VerifyShardState(rg, params, rec.State); err != nil {
			t.Fatalf("shard %d: recovered state does not verify: %v", r, err)
		}
		// Recovery is read-only and deterministic: run it again.
		again, err := RecoverShard(dir, r, rg)
		if err != nil {
			t.Fatalf("RecoverShard %d again: %v", r, err)
		}
		if got := dumpJSON(t, again.State); string(got) != string(want[r]) {
			t.Fatalf("shard %d: second recovery differs", r)
		}
		states[r] = rec.State
	}
	composed, torn, err := ComposeShardStates(g, part, states)
	if err != nil {
		t.Fatalf("ComposeShardStates: %v", err)
	}
	if len(torn) != 0 {
		t.Fatalf("torn sessions after clean quiesce: %v", torn)
	}
	if err := VerifyState(g, params, composed); err != nil {
		t.Fatalf("composed recovered state: %v", err)
	}

	// Restart over the same directory: the new shards must resume exactly.
	base := time.Unix(0, 0)
	s2, err := NewSharded(ShardedConfig{
		Config: Config{
			Graph:            g,
			DataDir:          dir,
			QueueSize:        4,
			MaxBatch:         1,
			MaxTTL:           1000 * time.Hour,
			Clock:            newFakeClock(base.Add(1000 * time.Hour)),
			SnapshotEvery:    1 << 30,
			SnapshotInterval: 1000 * time.Hour,
		},
		Shards: 2, PartitionSeed: 11,
	})
	if err != nil {
		t.Fatalf("restart NewSharded: %v", err)
	}
	for r := 0; r < s2.Shards(); r++ {
		if got := dumpJSON(t, s2.shards[r].StateDump()); string(got) != string(want[r]) {
			t.Fatalf("shard %d: restarted state differs from pre-crash dump", r)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close restarted server: %v", err)
	}
}

// BenchmarkShardedAdmission sweeps the shard count over a four-cluster
// bridged topology with region-local traffic plus a 20% cross-region mix:
// the shardsN / shards1 ratio is the sharding speedup (independent shard
// locks and schedulers), and the cross rows cost two-phase commits. Like
// the speculative sweep, it needs GOMAXPROCS >= N to show a speedup — on
// one core it measures router overhead instead.
func BenchmarkShardedAdmission(b *testing.B) {
	for _, bench := range []struct {
		name    string
		shards  int
		durable bool
	}{
		{name: "shards1", shards: 1},
		{name: "shards2", shards: 2},
		{name: "shards4", shards: 4},
		{name: "shards4-durable", shards: 4, durable: true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			g := bridgedClusters(b, 4, 8, 4, 8)
			cfg := ShardedConfig{
				Config: Config{
					Graph:      g,
					QueueSize:  1024,
					MaxBatch:   16,
					MaxWait:    200 * time.Microsecond,
					DefaultTTL: 2 * time.Millisecond,
					MaxTTL:     time.Second,
				},
				Shards:        bench.shards,
				PartitionSeed: 7,
			}
			if bench.durable {
				cfg.DataDir = b.TempDir()
				cfg.SnapshotEvery = 1 << 30
				cfg.SnapshotInterval = time.Hour
			}
			s, err := NewSharded(cfg)
			if err != nil {
				b.Fatalf("NewSharded: %v", err)
			}
			defer func() { _ = s.Close() }()

			part := s.Partition()
			byRegion := make([][]graph.NodeID, part.K)
			for _, u := range g.Users() {
				r := part.RegionOf(u)
				byRegion[r] = append(byRegion[r], u)
			}
			var regions []int
			for r, us := range byRegion {
				if len(us) >= 2 {
					regions = append(regions, r)
				}
			}
			if len(regions) == 0 {
				b.Fatal("no region has two users")
			}

			var accepted, rejected, other atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(benchSeed.Add(1)))
				for pb.Next() {
					var users []graph.NodeID
					if len(regions) >= 2 && rng.Intn(5) == 0 {
						ua := byRegion[regions[0]]
						ub := byRegion[regions[1]]
						users = []graph.NodeID{ua[rng.Intn(len(ua))], ub[rng.Intn(len(ub))]}
					} else {
						us := byRegion[regions[rng.Intn(len(regions))]]
						a := rng.Intn(len(us))
						c := (a + 1 + rng.Intn(len(us)-1)) % len(us)
						users = []graph.NodeID{us[a], us[c]}
					}
					_, err := s.Submit(context.Background(), users, 2*time.Millisecond)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, core.ErrInfeasible), errors.Is(err, ErrQueueFull):
						rejected.Add(1)
					default:
						other.Add(1)
					}
				}
			})
			b.StopTimer()
			if other.Load() > 0 {
				b.Fatalf("%d submissions failed with unexpected errors", other.Load())
			}
			total := accepted.Load() + rejected.Load()
			if total > 0 {
				b.ReportMetric(float64(accepted.Load())/float64(total), "accept-ratio")
			}
			m := s.Metrics()
			if routed := m.Router.SingleRegion + m.Router.CrossRegion; routed > 0 {
				b.ReportMetric(m.Router.CrossRegionRate, "cross-rate")
			}
			if m.Router.CrossRegion > 0 {
				b.ReportMetric(float64(m.Router.Conflicts)/float64(m.Router.CrossRegion), "conflict-ratio")
				b.ReportMetric(float64(m.Router.GlobalFallbacks)/float64(m.Router.CrossRegion), "fallback-ratio")
			}
		})
	}
}
