package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/quantum"
)

// bottleneck builds 4 users around one switch that carries exactly one
// channel at a time (same shape as internal/sched's tests).
func bottleneck(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New(5, 4)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddUser(0, 2000)
	g.AddUser(2000, 2000)
	g.AddSwitch(1000, 1000, 2)
	for u := graph.NodeID(0); u < 4; u++ {
		g.MustAddEdge(u, 4, 1500)
	}
	return g
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Graph == nil {
		cfg.Graph = bottleneck(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func postSession(t *testing.T, client *http.Client, base string, users []int, ttlMs int64) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{"users": users, "ttl_ms": ttlMs})
	resp, err := client.Post(base+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sessions: %v", err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// TestHTTPAdmitRejectExpire is the end-to-end smoke: the daemon accepts a
// session, rejects a contender while capacity is held, and — after the TTL
// expires — accepts a request that needed exactly that capacity, proving
// the expiry wheel freed the ledger.
func TestHTTPAdmitRejectExpire(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSession(t, ts.Client(), ts.URL, []int{0, 1}, 250)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first session status = %d, want 201", resp.StatusCode)
	}
	var info SessionInfo
	decodeInto(t, resp, &info)
	if info.ID == "" || info.Rate <= 0 || info.Channels == 0 {
		t.Fatalf("bad session info: %+v", info)
	}
	if !info.ExpiresAt.After(info.AdmittedAt) {
		t.Fatalf("expiry %v not after admission %v", info.ExpiresAt, info.AdmittedAt)
	}

	// The switch has 2 qubits and session 1 holds them: users {2,3} cannot
	// be spanned.
	resp = postSession(t, ts.Client(), ts.URL, []int{2, 3}, 250)
	var reject errorBody
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("contending session status = %d, want 409", resp.StatusCode)
	}
	decodeInto(t, resp, &reject)
	if reject.Error != "infeasible" {
		t.Fatalf("rejection error = %q, want infeasible", reject.Error)
	}

	// GET sees the live session.
	getResp, err := ts.Client().Get(ts.URL + "/sessions/" + info.ID)
	if err != nil {
		t.Fatalf("GET session: %v", err)
	}
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET session status = %d, want 200", getResp.StatusCode)
	}
	_ = getResp.Body.Close()

	// After the 250ms TTL the wheel must release the switch; poll until the
	// previously infeasible request is accepted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp = postSession(t, ts.Client(), ts.URL, []int{2, 3}, 100)
		code := resp.StatusCode
		_ = resp.Body.Close()
		if code == http.StatusCreated {
			break
		}
		if code != http.StatusConflict {
			t.Fatalf("post-expiry session status = %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("capacity never freed after TTL expiry")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The expired session is gone.
	getResp, err = ts.Client().Get(ts.URL + "/sessions/" + info.ID)
	if err != nil {
		t.Fatalf("GET expired session: %v", err)
	}
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session GET status = %d, want 404", getResp.StatusCode)
	}
	_ = getResp.Body.Close()

	m := s.Metrics()
	if m.Sessions.Expired == 0 {
		t.Fatalf("metrics report no expired sessions: %+v", m.Sessions)
	}
}

func TestHTTPDeleteFreesCapacity(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 1, DefaultTTL: time.Hour, MaxTTL: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSession(t, ts.Client(), ts.URL, []int{0, 1}, 0)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first session status = %d, want 201", resp.StatusCode)
	}
	var info SessionInfo
	decodeInto(t, resp, &info)

	resp = postSession(t, ts.Client(), ts.URL, []int{2, 3}, 0)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("contending session status = %d, want 409", resp.StatusCode)
	}
	_ = resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+info.ID, nil)
	delResp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d, want 204", delResp.StatusCode)
	}
	_ = delResp.Body.Close()

	resp = postSession(t, ts.Client(), ts.URL, []int{2, 3}, 0)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-delete session status = %d, want 201", resp.StatusCode)
	}
	_ = resp.Body.Close()

	if s.Metrics().Sessions.Deleted != 1 {
		t.Fatalf("deleted counter = %d, want 1", s.Metrics().Sessions.Deleted)
	}
}

func TestHTTPValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage", "{", http.StatusBadRequest},
		{"one user", `{"users":[0]}`, http.StatusBadRequest},
		{"switch as user", `{"users":[0,4]}`, http.StatusBadRequest},
		{"unknown node", `{"users":[0,99]}`, http.StatusBadRequest},
		{"duplicate", `{"users":[0,0]}`, http.StatusBadRequest},
		{"negative ttl", `{"users":[0,1],"ttl_ms":-5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/sessions", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		_ = resp.Body.Close()
	}

	for _, path := range []string{"/sessions/nope"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}

// TestHTTPQueueFullBackpressure stalls the admission loop by holding the
// server mutex, fills the one-slot queue, and checks the next request gets
// an immediate 429 with a Retry-After hint.
func TestHTTPQueueFullBackpressure(t *testing.T) {
	s := newTestServer(t, Config{QueueSize: 1, MaxBatch: 1, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Holding mu blocks admitBatch, so at most one queued request drains
	// into the loop and the next one sits in the channel.
	s.mu.Lock()
	var wg sync.WaitGroup
	results := make(chan int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postSession(t, ts.Client(), ts.URL, []int{0, 1}, 50)
			results <- resp.StatusCode
			_ = resp.Body.Close()
		}()
	}
	// Wait until backpressure is observable: with a 1-slot queue and one
	// request stuck in the stalled loop, at least two of the four must
	// bounce with 429.
	got429 := 0
	deadline := time.After(10 * time.Second)
	for got429 < 2 {
		select {
		case code := <-results:
			if code == http.StatusTooManyRequests {
				got429++
			}
		case <-deadline:
			s.mu.Unlock()
			t.Fatal("never saw two 429s while the loop was stalled")
		}
	}
	s.mu.Unlock()
	wg.Wait()
	close(results)
	for code := range results {
		if code == http.StatusTooManyRequests {
			got429++
		}
	}
	if got429 == 4 {
		t.Fatal("every request bounced; queue admitted nothing")
	}

	// The Retry-After header rides on a direct check.
	s.mu.Lock()
	fillDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.trySubmitNoWait(); errors.Is(err, ErrQueueFull) {
			break
		}
		if time.Now().After(fillDeadline) {
			s.mu.Unlock()
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp := postSession(t, ts.Client(), ts.URL, []int{0, 1}, 50)
	if resp.StatusCode != http.StatusTooManyRequests {
		s.mu.Unlock()
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		s.mu.Unlock()
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	_ = resp.Body.Close()
	s.mu.Unlock()

	if s.Metrics().Requests.QueueFull == 0 {
		t.Fatal("queue_full counter is zero")
	}
}

// trySubmitNoWait enqueues a fire-and-forget request, reporting ErrQueueFull
// when the queue is at capacity (test helper for backpressure checks).
func (s *Server) trySubmitNoWait() (bool, error) {
	prob, err := core.NewProblem(s.cfg.Graph, []graph.NodeID{0, 1}, s.cfg.Params)
	if err != nil {
		return false, err
	}
	p := &pending{ctx: context.Background(), prob: prob, users: prob.Users,
		ttl: 50 * time.Millisecond, result: make(chan admitResult, 1)}
	select {
	case s.queue <- p:
		return true, nil
	default:
		return false, ErrQueueFull
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		resp := postSession(t, ts.Client(), ts.URL, []int{0, 1, 2}, 40)
		_ = resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m Metrics
	decodeInto(t, resp, &m)
	if m.Requests.Total != 6 {
		t.Fatalf("requests.total = %d, want 6", m.Requests.Total)
	}
	if m.Batches.Count == 0 || m.Batches.Requests != 6 {
		t.Fatalf("batch metrics: %+v", m.Batches)
	}
	if m.SolveLatency.Count == 0 {
		t.Fatal("solve latency histogram is empty")
	}
	if m.Admission.Work.DijkstraRuns == 0 {
		t.Fatalf("admission work counters empty: %+v", m.Admission.Work)
	}
	if m.Admission.Sessions != int(m.Requests.Accepted+m.Requests.Rejected) {
		t.Fatalf("admission summary inconsistent with request counters: %+v vs %+v", m.Admission, m.Requests)
	}
	if m.Ledger.TotalQubits != 2 {
		t.Fatalf("ledger.total_qubits = %d, want 2", m.Ledger.TotalQubits)
	}
	// The shared representation is literally sched.Summary: its String
	// must render the same block qsched prints.
	if !strings.Contains(m.Admission.String(), "acceptance ratio:") {
		t.Fatalf("summary string missing shared format:\n%s", m.Admission.String())
	}
}

func TestTopologyEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/topology")
	if err != nil {
		t.Fatalf("GET /topology: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	g, err := graph.ReadJSON(resp.Body)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g.NumNodes() != 5 || len(g.Users()) != 4 {
		t.Fatalf("round-tripped topology: %d nodes, %d users", g.NumNodes(), len(g.Users()))
	}
}

// TestGracefulCloseDrains checks SIGTERM semantics: requests already queued
// still get real admission decisions, and new requests are refused.
func TestGracefulCloseDrains(t *testing.T) {
	s := newTestServer(t, Config{QueueSize: 32, MaxBatch: 4, DefaultTTL: time.Hour, MaxTTL: time.Hour})

	// Stall the loop so several requests pile up in the queue.
	s.mu.Lock()
	type outcome struct {
		err error
	}
	n := 6
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.Submit(context.Background(), []graph.NodeID{0, 1}, time.Minute)
			results <- outcome{err}
		}()
	}
	// Give the submitters time to enqueue, then release the loop and close:
	// Close must drain every queued request.
	time.Sleep(50 * time.Millisecond)
	s.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	accepted, rejected := 0, 0
	for i := 0; i < n; i++ {
		o := <-results
		switch {
		case o.err == nil:
			accepted++
		case errors.Is(o.err, core.ErrInfeasible):
			rejected++
		default:
			t.Fatalf("drained request got %v, want decision", o.err)
		}
	}
	// The bottleneck switch fits exactly one {0,1} session at a time.
	if accepted != 1 || rejected != n-1 {
		t.Fatalf("drain decided %d accepts / %d rejects, want 1/%d", accepted, rejected, n-1)
	}

	if _, err := s.Submit(context.Background(), []graph.NodeID{0, 1}, time.Minute); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Submit error = %v, want ErrClosed", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postSession(t, ts.Client(), ts.URL, []int{2, 3}, 0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close POST status = %d, want 503", resp.StatusCode)
	}
	_ = resp.Body.Close()
	healthResp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if healthResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close /healthz = %d, want 503", healthResp.StatusCode)
	}
	_ = healthResp.Body.Close()
}

func TestSubmitContextCancellation(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, []graph.NodeID{0, 1}, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestSubmitConcurrentMixedLoad(t *testing.T) {
	s := newTestServer(t, Config{QueueSize: 128, MaxBatch: 8, MaxWait: 500 * time.Microsecond,
		DefaultTTL: 5 * time.Millisecond, MaxTTL: time.Second})
	var wg sync.WaitGroup
	pairs := [][]graph.NodeID{{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 3}, {1, 2}}
	var accepted atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := s.Submit(context.Background(), pairs[(w+i)%len(pairs)], 2*time.Millisecond)
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, core.ErrInfeasible), errors.Is(err, ErrQueueFull):
				default:
					t.Errorf("unexpected Submit error: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if accepted.Load() == 0 {
		t.Fatal("no session ever admitted under mixed load")
	}
	// Wait for all TTLs to lapse; every qubit must come home.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Ledger.UsedQubits != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ledger still holds %d qubits after all TTLs", s.Metrics().Ledger.UsedQubits)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.ActiveSessions() != 0 {
		t.Fatalf("%d sessions still active", s.ActiveSessions())
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with nil graph succeeded")
	}
	g := graph.New(1, 0)
	g.AddUser(0, 0)
	if _, err := New(Config{Graph: g}); err == nil {
		t.Fatal("New with 1-user topology succeeded")
	}
	bad := bottleneck(t)
	if _, err := New(Config{Graph: bad, Params: quantum.Params{Alpha: -1, SwapProb: 2}}); err == nil {
		t.Fatal("New with invalid params succeeded")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.QueueSize != 256 || c.MaxBatch != 16 || c.MaxWait != 2*time.Millisecond ||
		c.DefaultTTL != 30*time.Second || c.MaxTTL != 10*time.Minute || c.RetryAfter != time.Second {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.Clock == nil {
		t.Fatal("no default clock")
	}
	if c2 := (Config{MaxWait: -1}).withDefaults(); c2.MaxWait != 0 {
		t.Fatalf("negative MaxWait = %v, want 0 (drain-only)", c2.MaxWait)
	}
}

func ExampleServer() {
	g := graph.New(3, 2)
	g.AddUser(0, 0)
	g.AddUser(2000, 0)
	g.AddSwitch(1000, 0, 4)
	g.MustAddEdge(0, 2, 1000)
	g.MustAddEdge(1, 2, 1000)
	s, err := New(Config{Graph: g})
	if err != nil {
		panic(err)
	}
	defer func() { _ = s.Close() }()
	info, err := s.Submit(context.Background(), []graph.NodeID{0, 1}, time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println(info.ID, info.Channels)
	// Output: s-1 1
}
