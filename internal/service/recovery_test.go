package service

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/muerp/quantumnet/internal/core"
	"github.com/muerp/quantumnet/internal/graph"
	"github.com/muerp/quantumnet/internal/sched"
	"github.com/muerp/quantumnet/internal/topology"
)

// durableTrace drives a random workload — arrivals, TTL expiries, and early
// deletes — through a durable server on a fake clock and returns the server
// still running (never Closed: the caller decides how it "crashes"). The
// trace mixes accepts, capacity rejects (which exercise epoch records) and
// deletes, and ends quiesced: no live session is expired at the returned
// clock time, so no further mutation can happen while the clock stands
// still.
func durableTrace(t *testing.T, dataDir string, seed int64, snapshotMid bool) (*Server, *fakeClock, *graph.Graph) {
	t.Helper()
	cfg := topology.Default()
	cfg.Users = 8
	cfg.Switches = 16
	cfg.SwitchQubits = 2 // tight capacity: the trace must mix accepts and rejects
	g, err := topology.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	w := sched.Workload{Requests: 80, MeanInterarrival: 1, MeanHold: 6, MinUsers: 2, MaxUsers: 4}
	requests, err := w.Generate(g, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	sort.SliceStable(requests, func(i, j int) bool {
		if requests[i].Arrival != requests[j].Arrival {
			return requests[i].Arrival < requests[j].Arrival
		}
		return requests[i].ID < requests[j].ID
	})

	base := time.Unix(0, 0)
	fc := newFakeClock(base)
	s, err := New(Config{
		Graph:            g,
		DataDir:          dataDir,
		QueueSize:        4,
		MaxBatch:         1,
		MaxTTL:           1000 * time.Hour,
		Clock:            fc,
		SnapshotEvery:    1 << 30, // snapshots only when the test asks for one
		SnapshotInterval: 1000 * time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	accepted, rejected, deleted := 0, 0, 0
	for i, req := range requests {
		fc.Set(base.Add(seconds(req.Arrival)))
		info, err := s.Submit(context.Background(), req.Users, seconds(req.Hold))
		switch {
		case err == nil:
			accepted++
			// Delete every fifth accepted session early to put release
			// records with reason "deleted" in the log.
			if accepted%5 == 0 {
				if err := s.Delete(info.ID); err != nil {
					t.Fatalf("Delete %s: %v", info.ID, err)
				}
				deleted++
			}
		case errors.Is(err, core.ErrInfeasible):
			rejected++
		default:
			t.Fatalf("request %d: %v", req.ID, err)
		}
		if snapshotMid && i == len(requests)/2 {
			s.snapshotNow()
		}
	}
	if accepted == 0 || rejected == 0 || deleted == 0 {
		t.Fatalf("degenerate trace (%d accepts, %d rejects, %d deletes) — tighten the workload", accepted, rejected, deleted)
	}

	// Quiesce: step just past the latest pending expiry until nothing held
	// by the dump can still expire at the standing clock time. Each check
	// serializes with the expiry wheel on the server mutex.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.StateDump()
		latest := fc.Now()
		pending := false
		for _, ss := range st.Sessions {
			if !ss.Info.ExpiresAt.After(latest) {
				pending = true
			}
		}
		if !pending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expiry wheel never quiesced")
		}
		time.Sleep(time.Millisecond)
	}
	if s.ActiveSessions() == 0 {
		t.Fatal("trace ended with no live sessions; recovery would be trivial")
	}
	return s, fc, g
}

// crash stops the server the hard way: flush and close the WAL directly,
// skipping Close's final snapshot and graceful drain — the on-disk state a
// SIGKILL would leave behind (minus the in-flight tail a real crash can
// lose, which is exactly the unacknowledged part).
func crash(t *testing.T, s *Server) {
	t.Helper()
	if err := s.dur.log.Close(); err != nil {
		t.Fatalf("close WAL: %v", err)
	}
}

func dumpJSON(t *testing.T, st State) []byte {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	return b
}

// TestRecoverMatchesLiveState is the deterministic-replay differential: the
// state rebuilt from disk must serialize byte-identically to the live
// server's dump — ledger budgets AND closure epoch, session table, expiry
// heap order, ID counter. Run once from a pure WAL replay and once from a
// mid-trace snapshot plus the WAL suffix.
func TestRecoverMatchesLiveState(t *testing.T) {
	for _, tc := range []struct {
		name        string
		snapshotMid bool
	}{
		{"pure-wal", false},
		{"snapshot-plus-suffix", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _, g := durableTrace(t, dir, 42, tc.snapshotMid)
			want := dumpJSON(t, s.StateDump())
			crash(t, s)

			rec, err := Recover(dir, g)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if got := dumpJSON(t, rec.State); string(got) != string(want) {
				t.Fatalf("recovered state differs from live state\nlive:      %s\nrecovered: %s", want, got)
			}
			if tc.snapshotMid {
				if rec.SnapshotSeq == 0 || rec.SnapshotPath == "" {
					t.Fatalf("expected recovery from a snapshot, got %+v", rec)
				}
			} else if rec.SnapshotSeq != 0 {
				t.Fatalf("unexpected snapshot in pure-WAL recovery: %+v", rec)
			}
			if rec.WALRecords == 0 {
				t.Fatal("recovery replayed no WAL records")
			}
			// Recover must not mutate the directory: a second run is identical.
			again, err := Recover(dir, g)
			if err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			if got := dumpJSON(t, again.State); string(got) != string(want) {
				t.Fatal("second recovery diverged — Recover mutated the data directory")
			}
		})
	}
}

// TestServerRestartRecovers boots a fresh server on the crashed data
// directory: every unexpired session must be queryable with its original
// info, the dump must match, and the revived server must keep serving and
// then restart cleanly (final snapshot, zero replay).
func TestServerRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	s1, fc, g := durableTrace(t, dir, 7, false)
	want := dumpJSON(t, s1.StateDump())
	live := s1.StateDump().Sessions
	crash(t, s1)

	fc2 := newFakeClock(fc.Now())
	s2, err := New(Config{
		Graph:    g,
		DataDir:  dir,
		MaxBatch: 1, // the fake clock never fires the batch-fill timer
		MaxTTL:   1000 * time.Hour,
		Clock:    fc2,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := dumpJSON(t, s2.StateDump()); string(got) != string(want) {
		t.Fatalf("restarted state differs\nbefore: %s\nafter:  %s", want, got)
	}
	for _, ss := range live {
		info, ok := s2.Session(ss.Info.ID)
		if !ok {
			t.Fatalf("session %s lost across restart", ss.Info.ID)
		}
		if info.Rate != ss.Info.Rate || !info.ExpiresAt.Equal(ss.Info.ExpiresAt) {
			t.Fatalf("session %s changed across restart: %+v vs %+v", ss.Info.ID, info, ss.Info)
		}
	}
	m := s2.Metrics()
	if m.Durability == nil || m.Durability.Recovery.Sessions != len(live) || m.Durability.Recovery.WALRecords == 0 {
		t.Fatalf("recovery metrics %+v, want %d sessions from a WAL replay", m.Durability, len(live))
	}

	// The revived server keeps serving: new sessions get fresh IDs (the ID
	// counter recovered, so no collision with a live session).
	users := live[0].Info.Users
	if err := s2.Delete(live[0].Info.ID); err != nil {
		t.Fatalf("Delete recovered session: %v", err)
	}
	info, err := s2.Submit(context.Background(), users, time.Hour)
	if err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	if _, clash := s2.Session(info.ID); !clash {
		t.Fatalf("new session %s not queryable", info.ID)
	}
	for _, ss := range live {
		if info.ID == ss.Info.ID {
			t.Fatalf("recovered ID counter reissued %s", info.ID)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A clean shutdown snapshots everything: the next boot replays nothing.
	s3, err := New(Config{Graph: g, DataDir: dir, MaxBatch: 1, MaxTTL: 1000 * time.Hour, Clock: newFakeClock(fc2.Now())})
	if err != nil {
		t.Fatalf("third boot: %v", err)
	}
	defer func() { _ = s3.Close() }()
	if d := s3.Metrics().Durability; d.Recovery.WALRecords != 0 {
		t.Fatalf("boot after clean shutdown replayed %d WAL records, want 0", d.Recovery.WALRecords)
	}
	if s3.ActiveSessions() != s2.ActiveSessions() {
		t.Fatalf("clean restart lost sessions: %d vs %d", s3.ActiveSessions(), s2.ActiveSessions())
	}
}

// TestRecoveryRejectsForeignTopology pins the environment: booting a data
// directory against a different graph must fail loudly instead of replaying
// node IDs onto the wrong network.
func TestRecoveryRejectsForeignTopology(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock(time.Unix(0, 0))
	s := newTestServer(t, Config{DataDir: dir, Clock: fc, MaxBatch: 1, MaxTTL: time.Hour})
	if _, err := s.Submit(context.Background(), []graph.NodeID{0, 1}, time.Hour); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	other := bottleneck(t)
	other.SetQubits(4, 6) // same shape, different capacity
	if _, err := New(Config{Graph: other, DataDir: dir, Clock: fc}); err == nil {
		t.Fatal("New accepted a data directory pinned to a different topology")
	}
}
